package specpmt

import (
	"fmt"

	"specpmt/internal/hwsim"
	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/spec"
)

// ThreadedPool is a pool with one SpecPMT engine per thread: per-thread log
// areas, a shared timestamp source ordering commits across threads, and
// merged timestamp-ordered recovery (§3.1, §4.1). Supported engines:
// "SpecSPMT" (software, spec.Pool underneath) and "SpecHPMT" (hardware,
// hwsim.Cluster underneath, including the §5.2.2 multi-thread epoch
// reclamation protocol).
//
// Like every persistent transaction in the paper, isolation is the caller's
// job (§4.3.3): coordinate access to shared locations with your own locks;
// each Thread must be driven by a single goroutine.
type ThreadedPool struct {
	dev     *pmem.Device
	heap    *pmalloc.Heap
	logs    *pmalloc.Heap
	ts      *txn.Timestamp
	cfg     Config
	threads int

	swPool  *spec.Pool
	hwClust *hwsim.Cluster
}

// OpenThreaded creates a pool with n thread engines.
func OpenThreaded(cfg Config, n int) (*ThreadedPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("specpmt: thread count must be positive")
	}
	if cfg.Size == 0 {
		cfg.Size = 256 << 20
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	if cfg.Engine != "SpecSPMT" && cfg.Engine != "SpecHPMT" {
		return nil, fmt.Errorf("specpmt: threaded pools support SpecSPMT and SpecHPMT, not %q", cfg.Engine)
	}
	prof, pl, err := resolveProfile(cfg)
	if err != nil {
		return nil, err
	}
	p := &ThreadedPool{
		dev:     pmem.NewDevice(pmem.Config{Size: cfg.Size, Profile: prof, Platform: pl}),
		ts:      &txn.Timestamp{},
		cfg:     cfg,
		threads: n,
	}
	if cfg.Tracer != nil {
		p.dev.SetTracer(cfg.Tracer)
	}
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := pmem.Addr(cfg.Size / 4)
	p.heap = pmalloc.NewHeap(dataStart, dataEnd)
	p.logs = pmalloc.NewHeap(dataEnd, pmem.Addr(cfg.Size))
	if cfg.Tracer != nil {
		clock := p.dev.NewCore()
		clock.SetTrackName("clock")
		now := func() int64 { return clock.Now() }
		p.heap.SetTracer(cfg.Tracer, "heap.data", now)
		p.logs.SetTracer(cfg.Tracer, "heap.log", now)
	}
	return p, p.attach()
}

// envs hands out one Env per thread: root slots follow the app root area.
func (p *ThreadedPool) envs() []txn.Env {
	base := appRootsOff + pmem.Addr(RootSlots*8)
	out := make([]txn.Env, p.threads)
	for i := range out {
		out[i] = txn.Env{
			Dev:     p.dev,
			Core:    p.dev.NewCore(),
			Heap:    p.heap,
			LogHeap: p.logs,
			Root:    base + pmem.Addr(i*txn.RootSize),
			TS:      p.ts,
		}
	}
	return out
}

func (p *ThreadedPool) attach() error {
	var err error
	switch p.cfg.Engine {
	case "SpecSPMT":
		opt := spec.Options{}
		if p.cfg.SpecOptions != nil {
			opt = *p.cfg.SpecOptions
		}
		p.swPool, err = spec.NewPool(p.envs(), opt)
	case "SpecHPMT":
		p.hwClust, err = hwsim.NewCluster(p.envs(), hwsim.HWOptions{})
	}
	return err
}

// Threads returns the thread count.
func (p *ThreadedPool) Threads() int { return p.threads }

// Begin opens a transaction on thread i's engine. Each thread engine must
// be used by one goroutine at a time.
func (p *ThreadedPool) Begin(i int) Tx {
	if p.swPool != nil {
		return p.swPool.Engine(i).Begin()
	}
	return p.hwClust.Engine(i).Begin()
}

// Alloc returns a line-aligned persistent region (safe for concurrent use).
func (p *ThreadedPool) Alloc(n int) (Addr, error) { return p.heap.Alloc(n) }

// ReadUint64 reads non-transactionally.
func (p *ThreadedPool) ReadUint64(a Addr) uint64 {
	core := p.dev.NewCore()
	return core.LoadUint64(a)
}

// Crash simulates a power failure across every thread.
func (p *ThreadedPool) Crash(seed uint64) error {
	if err := p.Close(); err != nil {
		return err
	}
	p.dev.Crash(sim.NewRand(seed))
	return p.attach()
}

// Recover performs the merged, timestamp-ordered multi-thread recovery.
func (p *ThreadedPool) Recover() error {
	if p.swPool != nil {
		return p.swPool.Recover()
	}
	return p.hwClust.Recover()
}

// Close shuts every thread engine down.
func (p *ThreadedPool) Close() error {
	if p.swPool != nil {
		return p.swPool.Close()
	}
	return p.hwClust.Close()
}
