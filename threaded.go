package specpmt

import (
	"fmt"

	"specpmt/internal/hwsim"
	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/stats"
	"specpmt/internal/txn"
	"specpmt/internal/txn/spec"
)

// ThreadedPool is a pool with one transaction engine per thread: per-thread
// log areas, a shared timestamp source ordering commits across threads, and
// per-engine recovery. "SpecSPMT" (software, spec.Pool underneath, with the
// paper's merged timestamp-ordered recovery of §3.1, §4.1) and "SpecHPMT"
// (hardware, hwsim.Cluster underneath, including the §5.2.2 multi-thread
// epoch reclamation protocol) keep their pool-level coordination; every
// other registered software engine (PMDK undo, SpecSPMT-Hash, Kamino-Tx,
// SPHT, ...) runs as independent per-thread engine instances over the shared
// device, each recovering its own log. Independent recovery is correct when
// threads write disjoint data — the sharded-server usage this pool targets;
// only SpecSPMT's merged recovery orders cross-thread writes to the same
// address.
//
// Like every persistent transaction in the paper, isolation is the caller's
// job (§4.3.3): coordinate access to shared locations with your own locks;
// each Thread must be driven by a single goroutine.
type ThreadedPool struct {
	dev     *pmem.Device
	heap    *pmalloc.Heap
	logs    *pmalloc.Heap
	ts      *txn.Timestamp
	cfg     Config
	threads int

	envs []txn.Env // the envs behind the current attach, one per thread

	swPool  *spec.Pool
	hwClust *hwsim.Cluster
	generic []txn.Engine

	// accumulated across crashes (each crash resets cores)
	accumNs    int64
	accumStats stats.Counters
}

// unsharedEngines lists registered engines that cannot run as independent
// per-thread instances: the single-engine hardware simulators ("SpecHPMT"
// works — via the cluster) and Kamino-Tx, whose whole-region backup copy
// assumes one engine observes every write to the data area.
var unsharedEngines = map[string]bool{
	"EDE": true, "HOOP": true, "SpecHPMT-DP": true, "Kamino-Tx": true,
}

// OpenThreaded creates a pool with n thread engines.
func OpenThreaded(cfg Config, n int) (*ThreadedPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("specpmt: thread count must be positive")
	}
	if cfg.Size == 0 {
		cfg.Size = 256 << 20
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	if unsharedEngines[cfg.Engine] {
		return nil, fmt.Errorf("specpmt: threaded pools support the per-thread software engines and SpecHPMT, not %q", cfg.Engine)
	}
	prof, pl, err := resolveProfile(cfg)
	if err != nil {
		return nil, err
	}
	p := &ThreadedPool{
		dev:     pmem.NewDevice(pmem.Config{Size: cfg.Size, Profile: prof, Platform: pl}),
		ts:      &txn.Timestamp{},
		cfg:     cfg,
		threads: n,
	}
	if cfg.Tracer != nil {
		p.dev.SetTracer(cfg.Tracer)
	}
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := pmem.Addr(cfg.Size / 4)
	heapCore := p.dev.NewCore()
	heapCore.SetTrackName("alloc.data")
	logCore := p.dev.NewCore()
	logCore.SetTrackName("alloc.log")
	if p.heap, err = pmalloc.OpenLogged(heapCore, dataStart, dataEnd); err != nil {
		return nil, fmt.Errorf("specpmt: data heap: %w", err)
	}
	if p.logs, err = pmalloc.OpenLogged(logCore, dataEnd, pmem.Addr(cfg.Size)); err != nil {
		return nil, fmt.Errorf("specpmt: log heap: %w", err)
	}
	if cfg.Tracer != nil {
		clock := p.dev.NewCore()
		clock.SetTrackName("clock")
		now := func() int64 { return clock.Now() }
		p.heap.SetTracer(cfg.Tracer, "heap.data", now)
		p.logs.SetTracer(cfg.Tracer, "heap.log", now)
	}
	return p, p.attach()
}

// newEnvs hands out one Env per thread: root slots follow the app root area.
func (p *ThreadedPool) newEnvs() []txn.Env {
	base := appRootsOff + pmem.Addr(RootSlots*8)
	out := make([]txn.Env, p.threads)
	for i := range out {
		out[i] = txn.Env{
			Dev:     p.dev,
			Core:    p.dev.NewCore(),
			Heap:    p.heap,
			LogHeap: p.logs,
			Root:    base + pmem.Addr(i*txn.RootSize),
			TS:      p.ts,
		}
	}
	return out
}

func (p *ThreadedPool) attach() error {
	p.envs = p.newEnvs()
	p.swPool, p.hwClust, p.generic = nil, nil, nil
	var err error
	switch p.cfg.Engine {
	case "SpecSPMT", "SpecSPMT-DP":
		// Both variants need the pool's merged timestamp-ordered recovery:
		// replaying each thread's chain independently would let one
		// thread's older record regress another thread's newer write to
		// the same address (e.g. the server's cross-shard MULTIs, which
		// commit other shards' cells on the executing thread).
		opt := spec.Options{}
		if p.cfg.SpecOptions != nil {
			opt = *p.cfg.SpecOptions
		}
		opt.DataPersist = opt.DataPersist || p.cfg.Engine == "SpecSPMT-DP"
		p.swPool, err = spec.NewPool(p.envs, opt)
	case "SpecHPMT":
		p.hwClust, err = hwsim.NewCluster(p.envs, hwsim.HWOptions{})
	default:
		// Independent per-thread engines over the shared device. Engines are
		// driven one-goroutine-each, so the device must keep its lock on.
		p.dev.ForceShared()
		p.generic = make([]txn.Engine, p.threads)
		for i, env := range p.envs {
			p.generic[i], err = txn.New(p.cfg.Engine, env)
			if err != nil {
				return fmt.Errorf("specpmt: threaded engine %q thread %d: %w", p.cfg.Engine, i, err)
			}
		}
	}
	return err
}

// Threads returns the thread count.
func (p *ThreadedPool) Threads() int { return p.threads }

// SpecPool returns the spec.Pool coordinating the thread engines when the
// pool runs the "SpecSPMT" engine, nil otherwise. It is the engine-level
// recovery-checker surface (spec.Pool.VerifyRecovered).
func (p *ThreadedPool) SpecPool() *spec.Pool { return p.swPool }

// Begin opens a transaction on thread i's engine. Each thread engine must
// be used by one goroutine at a time.
func (p *ThreadedPool) Begin(i int) Tx {
	switch {
	case p.swPool != nil:
		return p.swPool.Engine(i).Begin()
	case p.hwClust != nil:
		return p.hwClust.Engine(i).Begin()
	default:
		return p.generic[i].Begin()
	}
}

// engineAt returns thread i's engine for optional-interface probes
// (e.g. the deferred-fence NoteFence hook on the spec engine).
func (p *ThreadedPool) engineAt(i int) any {
	switch {
	case p.swPool != nil:
		return p.swPool.Engine(i)
	case p.hwClust != nil:
		return p.hwClust.Engine(i)
	default:
		return p.generic[i]
	}
}

// Alloc returns a line-aligned persistent region (safe for concurrent use).
func (p *ThreadedPool) Alloc(n int) (Addr, error) { return p.heap.Alloc(n) }

// DataHeap returns the pool's data-area allocator (for recovery checkers
// and fragmentation inspection).
func (p *ThreadedPool) DataHeap() *pmalloc.Heap { return p.heap }

// LogHeap returns the pool's log-area allocator.
func (p *ThreadedPool) LogHeap() *pmalloc.Heap { return p.logs }

// Free returns a region of n bytes to the allocator (safe for concurrent
// use).
func (p *ThreadedPool) Free(a Addr, n int) { p.heap.Free(a, n) }

// ReadUint64 reads non-transactionally.
func (p *ThreadedPool) ReadUint64(a Addr) uint64 {
	core := p.dev.NewCore()
	return core.LoadUint64(a)
}

// SetRoot durably stores a pool root pointer in slot i — the well-known
// location from which applications rediscover their data after a crash.
// Call it from one goroutine at a time, inside no transaction.
func (p *ThreadedPool) SetRoot(i int, v uint64) error {
	if i < 0 || i >= RootSlots {
		return fmt.Errorf("specpmt: root slot out of range")
	}
	core := p.dev.NewCore()
	at := appRootsOff + pmem.Addr(i*8)
	core.StoreUint64(at, v)
	core.PersistBarrier(at, 8, pmem.KindData)
	return nil
}

// Root reads pool root slot i.
func (p *ThreadedPool) Root(i int) uint64 {
	if i < 0 || i >= RootSlots {
		return 0
	}
	return p.ReadUint64(appRootsOff + pmem.Addr(i*8))
}

// Crash simulates a power failure across every thread.
func (p *ThreadedPool) Crash(seed uint64) error {
	if err := p.Close(); err != nil {
		return err
	}
	p.accumNs += p.maxEngineNow()
	for _, st := range p.threadStats() {
		p.accumStats.Merge(st)
	}
	p.dev.Crash(sim.NewRand(seed))
	heapCore := p.dev.NewCore()
	heapCore.SetTrackName("alloc.data")
	logCore := p.dev.NewCore()
	logCore.SetTrackName("alloc.log")
	if err := p.heap.Reattach(heapCore); err != nil {
		return fmt.Errorf("specpmt: data heap recovery: %w", err)
	}
	if err := p.logs.Reattach(logCore); err != nil {
		return fmt.Errorf("specpmt: log heap recovery: %w", err)
	}
	return p.attach()
}

// Recover restores the committed history: the merged, timestamp-ordered
// multi-thread recovery for SpecSPMT/SpecHPMT, per-engine recovery
// otherwise.
func (p *ThreadedPool) Recover() error {
	switch {
	case p.swPool != nil:
		return p.swPool.Recover()
	case p.hwClust != nil:
		return p.hwClust.Recover()
	default:
		for i, e := range p.generic {
			if err := e.Recover(); err != nil {
				return fmt.Errorf("specpmt: recovering thread %d: %w", i, err)
			}
		}
		return nil
	}
}

// Close shuts every thread engine down.
func (p *ThreadedPool) Close() error {
	switch {
	case p.swPool != nil:
		return p.swPool.Close()
	case p.hwClust != nil:
		return p.hwClust.Close()
	default:
		for _, e := range p.generic {
			if err := e.Close(); err != nil {
				return err
			}
		}
		return nil
	}
}

// threadStats returns each thread's counter set for the current attach: the
// engine's own CPU-core counters for the hardware cluster, the env core's
// otherwise.
func (p *ThreadedPool) threadStats() []*stats.Counters {
	out := make([]*stats.Counters, 0, p.threads)
	for i, env := range p.envs {
		if p.hwClust != nil {
			out = append(out, p.hwClust.Engine(i).CoreStats())
			continue
		}
		out = append(out, env.Core.Stats)
	}
	return out
}

// maxEngineNow returns the most advanced thread clock — the pool's makespan
// since the last crash.
func (p *ThreadedPool) maxEngineNow() int64 {
	var max int64
	for i, env := range p.envs {
		now := env.Core.Now()
		if p.hwClust != nil {
			now = p.hwClust.Engine(i).CoreNow()
		}
		if now > max {
			max = now
		}
	}
	return max
}

// ModeledTime returns the pool's cumulative virtual time in nanoseconds —
// the makespan across thread clocks — including time before crashes. Call
// it only while no thread is mid-transaction.
func (p *ThreadedPool) ModeledTime() int64 { return p.accumNs + p.maxEngineNow() }

// Counters returns a structured snapshot of the pool's counters summed
// across every thread, including those accumulated before crashes. Call it
// only from a quiesced pool or accept slightly stale per-thread counts: the
// counters themselves are plain integers owned by each thread's core.
func (p *ThreadedPool) Counters() Counters {
	s := p.accumStats
	for _, st := range p.threadStats() {
		s.Merge(st)
	}
	return s
}

// Stats returns a formatted snapshot of the pool's cumulative counters.
func (p *ThreadedPool) Stats() string {
	s := p.Counters()
	return s.String()
}

// Metrics returns a snapshot of the aggregate trace metrics (histograms and
// time series). The zero Metrics is returned when no Tracer is configured.
func (p *ThreadedPool) Metrics() Metrics {
	if p.cfg.Tracer == nil {
		return Metrics{}
	}
	return p.cfg.Tracer.Metrics()
}

// Thread returns a single-thread view of the pool: thread i's engine plus
// the shared heap and root slots behind one façade, satisfying the same
// pool interface persistent data structures (pds/...) build on. The view is
// bound to the current attach — Crash invalidates it; call Thread again
// after Recover. Each view must be driven by a single goroutine.
func (p *ThreadedPool) Thread(i int) *Thread {
	if i < 0 || i >= p.threads {
		return nil
	}
	return &Thread{pool: p, idx: i, core: p.envs[i].Core}
}

// Thread is one thread's view of a ThreadedPool (see ThreadedPool.Thread).
type Thread struct {
	pool *ThreadedPool
	idx  int
	core *pmem.Core
}

// Index returns the thread number this view is bound to.
func (t *Thread) Index() int { return t.idx }

// Begin opens a transaction on this thread's engine.
func (t *Thread) Begin() Tx { return t.pool.Begin(t.idx) }

// Fence issues an ordering fence on this thread's core, retiring every
// transaction the thread committed with CommitNoFence (see
// txn.DeferredCommitTx) since the previous fence. This is the coalescing
// retire step of pipelined group commit: many speculative commits, one
// fence. Must run on the goroutine driving this thread.
func (t *Thread) Fence() {
	t.core.Fence()
	if n, ok := t.pool.engineAt(t.idx).(interface{ NoteFence() }); ok {
		n.NoteFence()
	}
}

// Alloc returns a line-aligned persistent region from the shared heap.
func (t *Thread) Alloc(n int) (Addr, error) { return t.pool.heap.Alloc(n) }

// Free returns a region of n bytes to the shared heap.
func (t *Thread) Free(a Addr, n int) { t.pool.heap.Free(a, n) }

// ReadUint64 reads non-transactionally on this thread's core.
func (t *Thread) ReadUint64(a Addr) uint64 { return t.core.LoadUint64(a) }

// Read copies len(buf) bytes at a into buf, non-transactionally.
func (t *Thread) Read(a Addr, buf []byte) { t.core.Load(a, buf) }

// SetRoot durably stores a pool root pointer in slot i using this thread's
// core.
func (t *Thread) SetRoot(i int, v uint64) error {
	if i < 0 || i >= RootSlots {
		return fmt.Errorf("specpmt: root slot out of range")
	}
	at := appRootsOff + pmem.Addr(i*8)
	t.core.StoreUint64(at, v)
	t.core.PersistBarrier(at, 8, pmem.KindData)
	return nil
}

// Root reads pool root slot i on this thread's core.
func (t *Thread) Root(i int) uint64 {
	if i < 0 || i >= RootSlots {
		return 0
	}
	return t.core.LoadUint64(appRootsOff + pmem.Addr(i*8))
}

// Now returns this thread's virtual clock in nanoseconds — the modeled time
// the thread has spent, the per-request latency metric servers report.
func (t *Thread) Now() int64 { return t.core.Now() }

// Counters returns a snapshot of this thread's core counters. (For the
// SpecHPMT cluster this covers the thread's front-end core, not the
// engine-internal hardware cores — use ThreadedPool.Counters for those.)
func (t *Thread) Counters() Counters { return t.core.Stats.Snapshot() }
