package specpmt

import (
	"testing"

	"specpmt/internal/txn/spec"
)

func TestPoolQuickstartFlow(t *testing.T) {
	pool, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	tx := pool.Begin()
	tx.StoreUint64(a, 42)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := pool.ReadUint64(a); got != 42 {
		t.Fatalf("after crash+recover: %d, want 42", got)
	}
}

func TestPoolAllEnginesRoundTrip(t *testing.T) {
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			pool, err := Open(Config{Engine: name, Size: 128 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			a, _ := pool.Alloc(64)
			for v := uint64(1); v <= 5; v++ {
				tx := pool.Begin()
				tx.StoreUint64(a, v)
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if name == "no-log" {
				return // not crash consistent by design
			}
			if err := pool.Crash(7); err != nil {
				t.Fatal(err)
			}
			if err := pool.Recover(); err != nil {
				t.Fatal(err)
			}
			if got := pool.ReadUint64(a); got != 5 {
				t.Fatalf("%s: after crash+recover: %d, want 5", name, got)
			}
		})
	}
}

func TestPoolRoots(t *testing.T) {
	pool, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.SetRoot(3, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := pool.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Root(3); got != 0xDEAD {
		t.Fatalf("root slot = %#x, want 0xDEAD", got)
	}
	if err := pool.SetRoot(RootSlots, 1); err == nil {
		t.Fatal("out-of-range root slot should error")
	}
}

func TestPoolUnknownEngine(t *testing.T) {
	if _, err := Open(Config{Engine: "nonsense"}); err == nil {
		t.Fatal("unknown engine should fail Open")
	}
}

func TestPoolModeledTimeAdvances(t *testing.T) {
	pool, _ := Open(Config{})
	defer pool.Close()
	a, _ := pool.Alloc(64)
	before := pool.ModeledTime()
	tx := pool.Begin()
	tx.StoreUint64(a, 1)
	tx.Commit()
	if pool.ModeledTime() <= before {
		t.Fatal("commit should consume modeled time")
	}
}

func TestPoolAbort(t *testing.T) {
	pool, _ := Open(Config{})
	defer pool.Close()
	a, _ := pool.Alloc(64)
	tx := pool.Begin()
	tx.StoreUint64(a, 9)
	tx.Commit()
	tx = pool.Begin()
	tx.StoreUint64(a, 10)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := pool.ReadUint64(a); got != 9 {
		t.Fatalf("abort leaked: %d", got)
	}
}

func TestSwitchEngineMidLifetime(t *testing.T) {
	// §4.3.1 end to end through the facade: run under SpecSPMT, switch to
	// PMDK, keep going, crash, recover under PMDK, and see both eras.
	pool, err := Open(Config{Size: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pool.Alloc(64)
	b, _ := pool.Alloc(64)
	tx := pool.Begin()
	tx.StoreUint64(a, 1)
	tx.StoreUint64(b, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := pool.SwitchEngine("PMDK"); err != nil {
		t.Fatal(err)
	}
	tx = pool.Begin()
	tx.StoreUint64(a, 10)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = pool.Begin()
	tx.StoreUint64(b, 999) // interrupted under the new mechanism
	if err := pool.Crash(6); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if got := pool.ReadUint64(a); got != 10 {
		t.Fatalf("a=%d want 10", got)
	}
	if got := pool.ReadUint64(b); got != 2 {
		t.Fatalf("b=%d want 2 (sealed value; PMDK-era tx revoked)", got)
	}
	if pool.Engine().Name() != "PMDK" {
		t.Fatalf("engine=%q", pool.Engine().Name())
	}
}

func TestSwitchEngineRejectsNonSpec(t *testing.T) {
	pool, _ := Open(Config{Engine: "PMDK"})
	defer pool.Close()
	if err := pool.SwitchEngine("SPHT"); err == nil {
		t.Fatal("switch from PMDK should be rejected")
	}
}

// specOptionsForTest exercises the SpecOptions pass-through with an
// aggressive reclamation configuration.
var specOptionsForTest = spec.Options{BlockSize: 2048, ReclaimThreshold: 1024}

func TestPoolSpecOptionsPassThrough(t *testing.T) {
	pool, err := Open(Config{SpecOptions: &specOptionsForTest})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	a, _ := pool.Alloc(64)
	for r := uint64(1); r <= 500; r++ {
		tx := pool.Begin()
		tx.StoreUint64(a, r)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	eng := pool.Engine().(*spec.Engine)
	if eng.LiveLogBytes() > 16<<10 {
		t.Fatalf("custom reclaim threshold ignored: live log %dB", eng.LiveLogBytes())
	}
	if err := pool.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := pool.ReadUint64(a); got != 500 {
		t.Fatalf("a=%d", got)
	}
}
