// Command specpmt-load is a closed-loop load generator for specpmt-server.
// Each connection runs one goroutine issuing a mixed GET/SET/CAS/MULTI
// workload and records two latencies per request: wall time (host clock,
// includes network and queueing) and the server-reported modeled PM time
// (t=<ns> trailers). The run summary — per-op-type percentiles, throughput,
// and the server's own STATS counters — prints as JSON on stdout. The
// report embeds the seed, engine, profile, and workload knobs, so a run is
// reproducible from its report alone.
//
// Usage:
//
//	specpmt-load [-addr host:port] [-conns n] [-duration d] [-keys n]
//	             [-dist uniform|zipf] [-reads pct] [-cas pct] [-multi pct]
//	             [-multi-ops n] [-preload n] [-seed s]
//	             [-proto text|binary] [-pipeline-depth n]
//	             [-replica host:port] [-probe-every d] [-verify-replica n]
//	             [-scrape host:port] [-scrape-every d]
//	             [-cluster host:port,host:port,...]
//
// -proto selects the wire protocol (the framed binary protocol skips all
// text tokenization on both sides). -pipeline-depth N > 1 keeps a sliding
// window of N GET/SET requests in flight per connection instead of running
// closed-loop; sync points (MULTI, CAS's read-modify-write, stop) drain the
// window first. Wall latencies then include the client-side queueing of the
// window. Pipelining is incompatible with -replica's split read path.
//
// With -replica, GETs are served by the replica while writes go to the
// primary (-addr), and a prober measures replication staleness: it bumps a
// reserved key on the primary and immediately reads it back from the
// replica, reporting how stale the observed value is in wall time. After
// the run, -verify-replica N waits for the replica to drain its lag and
// compares N sampled keys against the primary; mismatches count as errors.
// Adding -replica-reads turns the replica GETs into LSN-token session reads
// (GETAT): each connection refreshes its token after every write, so the
// replica either serves read-your-writes or parks the read until it caught
// up, and the prober becomes a bounded-staleness read probe.
//
// Every GET also lands in one of the op_types entries get_snapshot /
// get_queued / get_replica, splitting read latency by serving path (MVCC
// snapshot fast path vs shard worker queue vs replica).
//
// With -scrape, the generator polls a server's admin /metrics endpoint (see
// specpmt-server -admin) every -scrape-every and embeds the time series in
// the JSON report: each point carries the unlabelled gauge/counter values
// plus per-shard-aggregated histogram means (batch size, commit latency,
// queue depth) — replication lag and batching behavior over the run's
// lifetime, not just its endpoint.
//
// With -cluster, ops route through the cluster map instead of one server:
// the listed seeds bootstrap a shared map view, each connection owns a
// cluster router that follows MOVED redirects and rides out mid-run
// migrations and failovers, and MULTI keys are redrawn until they land on
// one node (cross-node transactions are unsupported). The report then
// embeds a "cluster" section — the final map epoch, per-node op counts,
// redirect/refresh tallies — so a migration run is attributable from the
// JSON artifact alone. Incompatible with -replica and -pipeline-depth > 1.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flag"

	"specpmt/internal/cluster"
	"specpmt/internal/server"
)

// probeKey is the reserved staleness-probe key — far outside any sane
// -keys range so the workload never collides with it.
const probeKey = ^uint64(0) - 12345

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "server address (the primary when -replica is set)")
	conns := flag.Int("conns", 64, "concurrent connections (one goroutine each)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	keys := flag.Uint64("keys", 100_000, "key-space size")
	dist := flag.String("dist", "uniform", "key distribution: uniform or zipf")
	reads := flag.Int("reads", 50, "percent of single ops that are GET")
	cas := flag.Int("cas", 10, "percent of single ops that are CAS (rest are SET)")
	multi := flag.Int("multi", 5, "percent of requests that are MULTI...EXEC transactions")
	multiOps := flag.Int("multi-ops", 4, "operations per MULTI transaction")
	preload := flag.Uint64("preload", 10_000, "keys to SET before the timed run")
	seed := flag.Uint64("seed", 1, "workload seed")
	proto := flag.String("proto", "text", "wire protocol: text or binary")
	pipeDepth := flag.Int("pipeline-depth", 1, "GET/SET requests kept in flight per connection (1 = closed loop)")
	replica := flag.String("replica", "", "serve GETs from this replica and probe replication staleness")
	replicaReads := flag.Bool("replica-reads", false, "with -replica: GETs carry the session's last-seen LSN token (GETAT) so the replica serves read-your-writes or redirects; the staleness prober becomes a bounded-staleness read probe (text protocol only)")
	probeEvery := flag.Duration("probe-every", 2*time.Millisecond, "staleness probe interval (with -replica)")
	verifyReplica := flag.Int("verify-replica", 0, "after the run, wait for the replica to catch up and compare this many sampled keys against the primary")
	scrape := flag.String("scrape", "", "poll this admin /metrics endpoint during the run and embed the time series in the report")
	scrapeEvery := flag.Duration("scrape-every", 500*time.Millisecond, "scrape interval (with -scrape)")
	clusterSeeds := flag.String("cluster", "", "comma-separated data addresses of cluster nodes; route ops via the cluster map instead of -addr")
	flag.Parse()

	if *reads+*cas > 100 {
		fatalf("-reads + -cas must be <= 100")
	}
	if *dist != "uniform" && *dist != "zipf" {
		fatalf("-dist must be uniform or zipf")
	}
	if *conns <= 0 || *keys == 0 || *multiOps <= 0 {
		fatalf("-conns, -keys, and -multi-ops must be positive")
	}
	if *verifyReplica > 0 && *replica == "" {
		fatalf("-verify-replica needs -replica")
	}
	if *proto != "text" && *proto != "binary" {
		fatalf("-proto must be text or binary")
	}
	if *pipeDepth < 1 || *pipeDepth > 64 {
		fatalf("-pipeline-depth must be in 1..64")
	}
	if *pipeDepth > 1 && *replica != "" {
		fatalf("-pipeline-depth > 1 is incompatible with -replica (GETs and writes use different connections)")
	}
	if *replicaReads && *replica == "" {
		fatalf("-replica-reads needs -replica")
	}
	if *replicaReads && *proto != "text" {
		fatalf("-replica-reads needs -proto text (GETAT and LSN are text verbs)")
	}
	if *clusterSeeds != "" && *replica != "" {
		fatalf("-cluster is incompatible with -replica (the router already splits traffic by owner)")
	}
	if *clusterSeeds != "" && *pipeDepth > 1 {
		fatalf("-cluster is incompatible with -pipeline-depth > 1 (the router runs closed-loop)")
	}

	var view *cluster.View
	if *clusterSeeds != "" {
		v, err := cluster.NewView(strings.Split(*clusterSeeds, ","))
		if err != nil {
			fatalf("%v", err)
		}
		view = v
	}

	// Preload a prefix of the key space so GETs hit and CAS has a base. In
	// cluster mode each key routes to its owner; the banner (engine/profile
	// provenance) comes from shard 0's owner.
	n := *preload
	if n > *keys {
		n = *keys
	}
	var banner, negotiated string
	if view != nil {
		bc, err := server.DialProto(view.Map().Owners[0].Data, 10*time.Second, *proto)
		if err != nil {
			fatalf("%v", err)
		}
		banner = bc.Banner
		negotiated = bc.Proto()
		bc.Close()
		r := cluster.NewRouter(view, *proto)
		for k := uint64(0); k < n; k++ {
			if _, err := r.Do(server.Op{Kind: server.OpSet, Key: k, Arg1: k}); err != nil {
				fatalf("preload: %v", err)
			}
		}
		r.Close()
	} else {
		pre, err := server.DialProto(*addr, 10*time.Second, *proto)
		if err != nil {
			fatalf("%v", err)
		}
		for k := uint64(0); k < n; k++ {
			if _, err := pre.Set(k, k); err != nil {
				fatalf("preload: %v", err)
			}
		}
		banner = pre.Banner
		negotiated = pre.Proto()
		pre.Close()
	}

	var wg sync.WaitGroup
	workers := make([]*worker, *conns)
	stop := make(chan struct{})
	for i := range workers {
		w := &worker{
			cfg: cfg{
				keys: *keys, dist: *dist, reads: *reads, cas: *cas,
				multi: *multi, multiOps: *multiOps,
				proto: *proto, depth: *pipeDepth,
				replicaReads: *replicaReads,
			},
			rng:  rand.New(rand.NewSource(int64(*seed) + int64(i)*1_000_003)),
			stop: stop,
		}
		if view != nil {
			w.router = cluster.NewRouter(view, *proto)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(*addr, *replica)
		}()
	}
	var pr *prober
	if *replica != "" {
		pr = &prober{every: *probeEvery, stop: stop, tokens: *replicaReads}
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr.run(*addr, *replica)
		}()
	}
	var sc *scraper
	if *scrape != "" {
		sc = &scraper{target: *scrape, every: *scrapeEvery, stop: stop}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc.run()
		}()
	}
	start := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Addr:         *addr,
		Replica:      *replica,
		ReplicaReads: *replicaReads,
		Banner:       banner,
		Engine:       bannerField(banner, "engine"),
		Profile:      bannerField(banner, "profile"),
		Conns:        *conns,
		Duration:     elapsed.Seconds(),
		Keys:         *keys,
		Dist:         *dist,
		Seed:         *seed,
		Proto:        negotiated,
		Depth:        *pipeDepth,
		Workload: workload{
			Reads: *reads, CAS: *cas, Multi: *multi, MultiOps: *multiOps,
			Preload: n, ProbeEveryUs: float64(probeEvery.Microseconds()),
		},
		OpTypes: map[string]opReport{},
	}
	var all lats
	for _, kind := range []string{"get", "set", "cas", "multi", getSnapPath, getQueuedPath, getReplicaPath} {
		merged := lats{}
		for _, w := range workers {
			merged.wall = append(merged.wall, w.lat[kind].wall...)
			merged.model = append(merged.model, w.lat[kind].model...)
		}
		if len(merged.wall) == 0 {
			continue
		}
		rep.OpTypes[kind] = opReport{
			Ops:     len(merged.wall),
			WallUs:  percentiles(merged.wall, 1e-3),
			ModelNs: percentiles(merged.model, 1),
		}
		// The get_* entries split "get" by serving path; only the primary
		// kinds count toward the run totals.
		if !strings.HasPrefix(kind, "get_") {
			all.wall = append(all.wall, merged.wall...)
			all.model = append(all.model, merged.model...)
		}
	}
	for _, w := range workers {
		rep.Errors += w.errors
		rep.Conflicts += w.conflicts
	}
	rep.TotalOps = len(all.wall)
	rep.Throughput = float64(rep.TotalOps) / elapsed.Seconds()
	if view != nil {
		m := view.Map()
		cr := &clusterReport{
			Seeds:     strings.Split(*clusterSeeds, ","),
			Epoch:     m.Epoch,
			Shards:    m.Shards,
			Refreshes: view.Refreshes(),
		}
		byNode := map[string]uint64{}
		for _, w := range workers {
			if w.router == nil {
				continue
			}
			cr.Moved += w.router.Moved
			cr.Retries += w.router.Retries
			cr.CrossNode += w.crossNode
			for a, ops := range w.router.OpsByNode {
				byNode[a] += ops
			}
		}
		for _, nd := range m.Nodes() {
			cr.Nodes = append(cr.Nodes, nodeOps{
				Addr:   nd.Data,
				Shards: len(m.NodeShards(nd.Data)),
				Ops:    byNode[nd.Data],
			})
			delete(byNode, nd.Data)
		}
		// Nodes that served ops but left the final map (a failed-over
		// primary) still appear, attributed with zero owned shards.
		extra := make([]string, 0, len(byNode))
		for a := range byNode {
			extra = append(extra, a)
		}
		sort.Strings(extra)
		for _, a := range extra {
			cr.Nodes = append(cr.Nodes, nodeOps{Addr: a, Ops: byNode[a]})
		}
		rep.Cluster = cr
	}
	if pr != nil {
		rep.Staleness = &stalenessReport{
			Probes:      pr.probes,
			Misses:      pr.misses,
			Errors:      pr.errors,
			StaleUs:     percentiles(pr.staleNs, 1e-3),
			StaleProbes: len(pr.staleNs),
		}
		rep.Errors += pr.errors
	}

	if sc != nil {
		rep.Scrape = &scrapeReport{
			Target:   sc.target,
			EverySec: sc.every.Seconds(),
			Scrapes:  len(sc.points),
			Errors:   sc.errors,
			Points:   sc.points,
		}
		rep.Errors += sc.errors
	}

	// The server's own view of the run. In cluster mode -addr is unused;
	// each node's counters land under its address instead.
	if view != nil {
		rep.NodeStats = map[string]map[string]uint64{}
		for _, nd := range view.Map().Nodes() {
			rep.NodeStats[nd.Data] = fetchStats(nd.Data)
		}
	} else {
		rep.ServerStats = fetchStats(*addr)
	}
	if *replica != "" {
		rep.ReplicaStats = fetchStats(*replica)
	}

	if *verifyReplica > 0 {
		res, err := verify(*addr, *replica, *verifyReplica, *keys, *seed)
		if err != nil {
			fatalf("verify-replica: %v", err)
		}
		rep.Verify = res
		rep.Errors += res.Mismatches
		rep.ReplicaStats = fetchStats(*replica) // post-drain lag counters
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatalf("%v", err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "specpmt-load: "+format+"\n", args...)
	os.Exit(1)
}

// bannerField extracts key=value from the server banner.
func bannerField(banner, key string) string {
	for _, f := range strings.Fields(banner) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return v
		}
	}
	return ""
}

func fetchStats(addr string) map[string]uint64 {
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		return nil
	}
	defer c.Close()
	nums, _, err := c.Stats()
	if err != nil {
		return nil
	}
	return nums
}

// verify waits for the replica's applied LSN to reach the primary's head,
// then compares n sampled keys on both sides.
func verify(primary, replica string, n int, keys, seed uint64) (*verifyReport, error) {
	pc, err := server.Dial(primary, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer pc.Close()
	rc, err := server.Dial(replica, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer rc.Close()

	res := &verifyReport{SampledKeys: n}
	deadline := time.Now().Add(30 * time.Second)
	for {
		pstats, _, err := pc.Stats()
		if err != nil {
			return nil, err
		}
		rstats, _, err := rc.Stats()
		if err != nil {
			return nil, err
		}
		head := pstats["repl_head_lsn"]
		applied := rstats["repl_applied_lsn"]
		if applied >= head {
			res.DrainedAtLSN = applied
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("replica stuck at lsn %d, primary head %d", applied, head)
		}
		time.Sleep(20 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5eed))
	for i := 0; i < n; i++ {
		k := rng.Uint64() % keys
		pv, err := pc.Get(k)
		if err != nil {
			return nil, err
		}
		rv, err := rc.Get(k)
		if err != nil {
			return nil, err
		}
		if pv.Status != rv.Status || pv.Val != rv.Val {
			res.Mismatches++
			if len(res.Examples) < 5 {
				res.Examples = append(res.Examples,
					fmt.Sprintf("key %d: primary (%d,%d) replica (%d,%d)", k, pv.Status, pv.Val, rv.Status, rv.Val))
			}
		}
	}
	return res, nil
}

type cfg struct {
	keys                        uint64
	dist                        string
	reads, cas, multi, multiOps int
	proto                       string
	depth                       int  // in-flight GET/SET window per connection
	replicaReads                bool // GETs carry LSN tokens to the replica (GETAT)
}

// Read-path split keys for the op_types report: every GET lands in "get"
// AND one of these, by how the server served it.
const (
	getSnapPath    = "get_snapshot" // MVCC snapshot fast path (s=1 / SNAPREPLY)
	getQueuedPath  = "get_queued"   // shard worker queue
	getReplicaPath = "get_replica"  // served by the -replica follower
)

// getPath classifies one GET reply for the per-path latency split.
func getPath(onReplica, snap bool) string {
	if onReplica {
		return getReplicaPath
	}
	if snap {
		return getSnapPath
	}
	return getQueuedPath
}

// lats collects per-request latencies: wall nanoseconds (host clock) and
// modeled PM nanoseconds (server t= trailers).
type lats struct {
	wall  []int64
	model []int64
}

type worker struct {
	cfg       cfg
	rng       *rand.Rand
	stop      chan struct{}
	lat       map[string]*lats
	errors    int
	conflicts int

	// token is the connection's read-your-writes session token (-replica-
	// reads): the primary's published LSN observed after this worker's last
	// write, refreshed from every GETAT reply.
	token uint64

	// Cluster mode: the worker's private router over the shared map view.
	// crossNode counts MULTI draws discarded because the map moved between
	// the same-node check and the send.
	router    *cluster.Router
	crossNode int
}

func (w *worker) key() uint64 {
	if w.cfg.dist == "zipf" {
		// s=1.1, v=1 — a conventional skewed point; hottest keys are small.
		z := rand.NewZipf(w.rng, 1.1, 1, w.cfg.keys-1)
		return z.Uint64()
	}
	return w.rng.Uint64() % w.cfg.keys
}

func (w *worker) run(addr, replica string) {
	w.lat = map[string]*lats{
		"get": {}, "set": {}, "cas": {}, "multi": {},
		getSnapPath: {}, getQueuedPath: {}, getReplicaPath: {},
	}
	if w.router != nil {
		w.runCluster()
		return
	}
	c, err := server.DialProto(addr, 10*time.Second, w.cfg.proto)
	if err != nil {
		w.errors++
		return
	}
	defer c.Close()
	if w.cfg.depth > 1 {
		w.runPipelined(c) // -replica is rejected up front, so reader == c
		return
	}
	// In replica mode GETs go to the follower; writes (and CAS's
	// read-modify-write, which needs read-your-writes) stay on the primary.
	reader := c
	if replica != "" {
		rc, err := server.DialProto(replica, 10*time.Second, w.cfg.proto)
		if err != nil {
			w.errors++
			return
		}
		defer rc.Close()
		reader = rc
	}
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		kind, wallNs, modelNs, err := w.request(c, reader)
		if err != nil {
			w.errors++
			return
		}
		l := w.lat[kind]
		l.wall = append(l.wall, wallNs)
		l.model = append(l.model, modelNs)
	}
}

// request issues one operation and returns its type and latencies.
func (w *worker) request(c, reader *server.Client) (kind string, wallNs, modelNs int64, err error) {
	return w.requestRoll(c, reader, w.rng.Intn(100))
}

func (w *worker) requestRoll(c, reader *server.Client, roll int) (kind string, wallNs, modelNs int64, err error) {
	start := time.Now()
	switch {
	case roll < w.cfg.multi:
		ops := make([]server.Op, w.cfg.multiOps)
		for i := range ops {
			if i%2 == 0 {
				ops[i] = server.Op{Kind: server.OpSet, Key: w.key(), Arg1: w.rng.Uint64()}
			} else {
				ops[i] = server.Op{Kind: server.OpGet, Key: w.key()}
			}
		}
		_, ns, e := c.Exec(ops)
		return "multi", time.Since(start).Nanoseconds(), ns, e
	case roll < w.cfg.multi+w.cfg.reads:
		k := w.key()
		var r server.OpResult
		var e error
		if w.cfg.replicaReads && reader != c {
			// LSN-token session read: the replica holds the GET until its
			// applied LSN reaches the token, so this worker's own writes
			// are always visible. The reply refreshes the token.
			r, e = reader.GetAt(k, w.token)
			if e == nil && r.LSN > w.token {
				w.token = r.LSN
			}
		} else {
			r, e = reader.Get(k)
		}
		wallNs = time.Since(start).Nanoseconds()
		if e == nil {
			l := w.lat[getPath(reader != c, r.Snap)]
			l.wall = append(l.wall, wallNs)
			l.model = append(l.model, r.ModelNs)
		}
		return "get", wallNs, r.ModelNs, e
	case roll < w.cfg.multi+w.cfg.reads+w.cfg.cas:
		k := w.key()
		cur, e := c.Get(k)
		if e != nil {
			return "cas", 0, 0, e
		}
		old := cur.Val // NOTFOUND leaves 0; CAS then reports NOTFOUND or races
		start = time.Now()
		r, e := c.CAS(k, old, old+1)
		if e == nil && r.Status == server.StatusConflict {
			w.conflicts++
		}
		wallNs = time.Since(start).Nanoseconds()
		w.refreshToken(c, e)
		return "cas", wallNs, r.ModelNs, e
	default:
		r, e := c.Set(w.key(), w.rng.Uint64())
		wallNs = time.Since(start).Nanoseconds()
		w.refreshToken(c, e)
		return "set", wallNs, r.ModelNs, e
	}
}

// refreshToken advances the session's read-your-writes token past the write
// just acknowledged (-replica-reads only; one extra LSN round trip to the
// primary, outside the write's measured latency).
func (w *worker) refreshToken(c *server.Client, writeErr error) {
	if !w.cfg.replicaReads || writeErr != nil {
		return
	}
	if t, err := c.LSN(); err == nil && t > w.token {
		w.token = t
	}
}

// runCluster is the closed-loop body for cluster mode: every op goes
// through the worker's router, which owns redirect-following and failover
// retries. Connection errors don't kill the worker here — the router only
// surfaces an error once its whole retry budget is spent, and that counts.
func (w *worker) runCluster() {
	defer w.router.Close()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		kind, wallNs, modelNs, err := w.requestCluster()
		if err != nil {
			w.errors++
			return
		}
		l := w.lat[kind]
		l.wall = append(l.wall, wallNs)
		l.model = append(l.model, modelNs)
	}
}

// requestCluster issues one routed operation. MULTI keys are redrawn until
// every key maps to one node — cross-node transactions are unsupported —
// and a draw invalidated by a concurrent map change (ErrCrossNode from the
// router's re-check) is discarded and redrawn, not counted as an error.
func (w *worker) requestCluster() (kind string, wallNs, modelNs int64, err error) {
	roll := w.rng.Intn(100)
	start := time.Now()
	switch {
	case roll < w.cfg.multi:
		keys := make([]uint64, w.cfg.multiOps)
		ops := make([]server.Op, w.cfg.multiOps)
		for {
			for i := range keys {
				keys[i] = w.key()
			}
			if !w.router.SameNode(keys) {
				continue
			}
			for i, k := range keys {
				if i%2 == 0 {
					ops[i] = server.Op{Kind: server.OpSet, Key: k, Arg1: w.rng.Uint64()}
				} else {
					ops[i] = server.Op{Kind: server.OpGet, Key: k}
				}
			}
			_, ns, e := w.router.Exec(ops)
			if errors.Is(e, cluster.ErrCrossNode) {
				w.crossNode++
				continue
			}
			return "multi", time.Since(start).Nanoseconds(), ns, e
		}
	case roll < w.cfg.multi+w.cfg.reads:
		r, e := w.router.Do(server.Op{Kind: server.OpGet, Key: w.key()})
		wallNs = time.Since(start).Nanoseconds()
		if e == nil {
			l := w.lat[getPath(false, r.Snap)]
			l.wall = append(l.wall, wallNs)
			l.model = append(l.model, r.ModelNs)
		}
		return "get", wallNs, r.ModelNs, e
	case roll < w.cfg.multi+w.cfg.reads+w.cfg.cas:
		k := w.key()
		cur, e := w.router.Do(server.Op{Kind: server.OpGet, Key: k})
		if e != nil {
			return "cas", 0, 0, e
		}
		old := cur.Val // NOTFOUND leaves 0, matching the single-node path
		start = time.Now()
		r, e := w.router.Do(server.Op{Kind: server.OpCAS, Key: k, Arg1: old, Arg2: old + 1})
		if e == nil && r.Status == server.StatusConflict {
			w.conflicts++
		}
		return "cas", time.Since(start).Nanoseconds(), r.ModelNs, e
	default:
		r, e := w.router.Do(server.Op{Kind: server.OpSet, Key: w.key(), Arg1: w.rng.Uint64()})
		return "set", time.Since(start).Nanoseconds(), r.ModelNs, e
	}
}

// runPipelined drives one connection with a sliding window of cfg.depth
// GET/SET requests in flight: each new request is queued with SendOp, and
// once the window is full every send is paired with one RecvResult for the
// oldest outstanding request. Wall latency spans send-to-reply, so it
// includes the window's queueing. MULTI and CAS are synchronization points
// (CAS needs read-your-writes; Exec uses its own reply framing), so the
// window drains before them.
func (w *worker) runPipelined(c *server.Client) {
	type inflight struct {
		kind  string
		start time.Time
	}
	window := make([]inflight, 0, w.cfg.depth)
	recvOne := func() error {
		r, err := c.RecvResult()
		if err != nil {
			return err
		}
		f := window[0]
		copy(window, window[1:])
		window = window[:len(window)-1]
		wallNs := time.Since(f.start).Nanoseconds()
		l := w.lat[f.kind]
		l.wall = append(l.wall, wallNs)
		l.model = append(l.model, r.ModelNs)
		if f.kind == "get" {
			p := w.lat[getPath(false, r.Snap)]
			p.wall = append(p.wall, wallNs)
			p.model = append(p.model, r.ModelNs)
		}
		return nil
	}
	drain := func() error {
		for len(window) > 0 {
			if err := recvOne(); err != nil {
				return err
			}
		}
		return nil
	}
	fail := func() { w.errors++ }
	for {
		select {
		case <-w.stop:
			if drain() != nil {
				fail()
			}
			return
		default:
		}
		roll := w.rng.Intn(100)
		switch {
		case roll < w.cfg.multi || roll < w.cfg.multi+w.cfg.reads+w.cfg.cas && roll >= w.cfg.multi+w.cfg.reads:
			// Sync op: drain, then reuse the closed-loop path.
			if drain() != nil {
				fail()
				return
			}
			kind, wallNs, modelNs, err := w.requestRoll(c, c, roll)
			if err != nil {
				fail()
				return
			}
			l := w.lat[kind]
			l.wall = append(l.wall, wallNs)
			l.model = append(l.model, modelNs)
		case roll < w.cfg.multi+w.cfg.reads:
			window = append(window, inflight{kind: "get", start: time.Now()})
			if err := c.SendOp(server.Op{Kind: server.OpGet, Key: w.key()}); err != nil {
				fail()
				return
			}
		default:
			window = append(window, inflight{kind: "set", start: time.Now()})
			if err := c.SendOp(server.Op{Kind: server.OpSet, Key: w.key(), Arg1: w.rng.Uint64()}); err != nil {
				fail()
				return
			}
		}
		if len(window) >= w.cfg.depth {
			if err := recvOne(); err != nil {
				fail()
				return
			}
		}
	}
}

// prober measures replication staleness: it bumps probeKey on the primary
// with a sequence number, immediately reads it back from the replica, and
// reports the age of the write whose value it observed.
type prober struct {
	every   time.Duration
	stop    chan struct{}
	tokens  bool // bounded-staleness mode: read back via GETAT with a fresh LSN token
	probes  int
	misses  int // probe value not yet visible on the replica at all
	errors  int
	staleNs []int64
	times   []time.Time // times[i] = when sequence i+1 was written
}

func (p *prober) run(primary, replica string) {
	pc, err := server.Dial(primary, 10*time.Second)
	if err != nil {
		p.errors++
		return
	}
	defer pc.Close()
	rc, err := server.Dial(replica, 10*time.Second)
	if err != nil {
		p.errors++
		return
	}
	defer rc.Close()
	tick := time.NewTicker(p.every)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
		}
		seq++
		if _, err := pc.Set(probeKey, seq); err != nil {
			p.errors++
			return
		}
		p.times = append(p.times, time.Now())
		var r server.OpResult
		var err error
		if p.tokens {
			// Bounded-staleness probe: fetch the primary's published LSN
			// (which covers the Set just acked) and read back with it as
			// the token — the replica parks the read until it caught up,
			// so the probe measures the wait, not a miss rate.
			token, terr := pc.LSN()
			if terr != nil {
				p.errors++
				return
			}
			if r, err = rc.GetAt(probeKey, token); err != nil {
				// A replica still behind after the GETAT timeout answers
				// ERR; count it against the probe and move on.
				p.probes++
				p.misses++
				continue
			}
		} else if r, err = rc.Get(probeKey); err != nil {
			p.errors++
			return
		}
		p.probes++
		if r.Status != server.StatusValue || r.Val == 0 || r.Val > seq {
			p.misses++
			continue
		}
		p.staleNs = append(p.staleNs, time.Since(p.times[r.Val-1]).Nanoseconds())
	}
}

// pctl summarizes a latency population.
type pctl struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// percentiles sorts samples (nanoseconds) and reports them scaled by
// `scale` (1e-3 turns ns into µs).
func percentiles(samples []int64, scale float64) pctl {
	if len(samples) == 0 {
		return pctl{}
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(s[i]) * scale
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return pctl{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  float64(s[len(s)-1]) * scale,
		Mean: sum / float64(len(s)) * scale,
	}
}

type opReport struct {
	Ops int `json:"ops"`
	// WallUs is host wall-clock latency in microseconds.
	WallUs pctl `json:"wall_us"`
	// ModelNs is the server-reported modeled PM time in nanoseconds.
	ModelNs pctl `json:"model_ns"`
}

type workload struct {
	Reads        int     `json:"reads_pct"`
	CAS          int     `json:"cas_pct"`
	Multi        int     `json:"multi_pct"`
	MultiOps     int     `json:"multi_ops"`
	Preload      uint64  `json:"preload"`
	ProbeEveryUs float64 `json:"probe_every_us,omitempty"`
}

type stalenessReport struct {
	Probes      int  `json:"probes"`
	Misses      int  `json:"misses"`
	Errors      int  `json:"errors"`
	StaleProbes int  `json:"stale_probes"`
	StaleUs     pctl `json:"stale_us"`
}

type verifyReport struct {
	SampledKeys  int      `json:"sampled_keys"`
	Mismatches   int      `json:"mismatches"`
	DrainedAtLSN uint64   `json:"drained_at_lsn"`
	Examples     []string `json:"examples,omitempty"`
}

type report struct {
	Addr         string              `json:"addr"`
	Replica      string              `json:"replica,omitempty"`
	ReplicaReads bool                `json:"replica_reads,omitempty"`
	Banner       string              `json:"banner"`
	Engine       string              `json:"engine"`
	Profile      string              `json:"profile"`
	Conns        int                 `json:"conns"`
	Duration     float64             `json:"duration_sec"`
	Keys         uint64              `json:"keys"`
	Dist         string              `json:"dist"`
	Seed         uint64              `json:"seed"`
	Proto        string              `json:"proto"`
	Depth        int                 `json:"pipeline_depth"`
	Workload     workload            `json:"workload"`
	TotalOps     int                 `json:"total_ops"`
	Throughput   float64             `json:"throughput_ops_sec"`
	Errors       int                 `json:"errors"`
	Conflicts    int                 `json:"cas_conflicts"`
	OpTypes      map[string]opReport `json:"op_types"`
	Staleness    *stalenessReport    `json:"staleness,omitempty"`
	Verify       *verifyReport       `json:"verify_replica,omitempty"`
	ServerStats  map[string]uint64   `json:"server_stats,omitempty"`
	ReplicaStats map[string]uint64   `json:"replica_stats,omitempty"`
	Scrape       *scrapeReport       `json:"scrape,omitempty"`
	Cluster      *clusterReport      `json:"cluster,omitempty"`
	// NodeStats holds each cluster node's STATS counters keyed by data
	// address (cluster mode's replacement for server_stats).
	NodeStats map[string]map[string]uint64 `json:"node_stats,omitempty"`
}

// clusterReport attributes a cluster-mode run: the final map epoch (a
// mid-run migration or failover shows as an epoch the run didn't start
// with), per-node op counts, and the router fleet's redirect tallies.
type clusterReport struct {
	Seeds     []string  `json:"seeds"`
	Epoch     uint64    `json:"epoch"`
	Shards    int       `json:"shards"`
	Moved     uint64    `json:"moved_redirects"`
	Retries   uint64    `json:"retries"`
	Refreshes uint64    `json:"map_refreshes"`
	CrossNode int       `json:"cross_node_redraws"`
	Nodes     []nodeOps `json:"nodes"`
}

// nodeOps is one node's share of the run: ops the client fleet completed
// against it and the shards it owns in the final map (0 = it left the map,
// e.g. a failed-over primary that served ops before dying).
type nodeOps struct {
	Addr   string `json:"addr"`
	Shards int    `json:"owned_shards"`
	Ops    uint64 `json:"ops"`
}

// scrapeReport embeds the admin-endpoint time series gathered during the run
// (-scrape): one point per poll of /metrics, so a report carries how lag,
// batching, and queue depth evolved rather than just their final values.
type scrapeReport struct {
	Target   string        `json:"target"`
	EverySec float64       `json:"every_sec"`
	Scrapes  int           `json:"scrapes"`
	Errors   int           `json:"errors"`
	Points   []scrapePoint `json:"points"`
}

// scrapePoint is one /metrics poll: TSec is seconds since the scraper
// started; Metrics holds every unlabelled counter/gauge series plus derived
// per-shard-aggregate histogram means (specpmt_batch_jobs_mean,
// specpmt_commit_ns_mean, specpmt_queue_depth_mean).
type scrapePoint struct {
	TSec    float64            `json:"t_sec"`
	Metrics map[string]float64 `json:"metrics"`
}

// scraper polls an admin /metrics endpoint on a fixed cadence until stopped.
type scraper struct {
	target string
	every  time.Duration
	stop   chan struct{}
	points []scrapePoint
	errors int
}

func (s *scraper) run() {
	client := &http.Client{Timeout: 2 * time.Second}
	url := "http://" + s.target + "/metrics"
	start := time.Now()
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		if m, err := scrapeOnce(client, url); err != nil {
			s.errors++
		} else {
			s.points = append(s.points, scrapePoint{
				TSec:    time.Since(start).Seconds(),
				Metrics: m,
			})
		}
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
	}
}

// scrapeOnce fetches one Prometheus text exposition and reduces it to a flat
// point: unlabelled series pass through; labelled histogram _sum/_count
// series are aggregated across shards into a single mean per family.
func scrapeOnce(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	out := make(map[string]float64)
	sums := make(map[string]float64)   // histogram family -> sum of _sum series
	counts := make(map[string]float64) // histogram family -> sum of _count series
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		name := series
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name = series[:br]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			// Bucket series are too bulky for a per-point snapshot.
		case strings.HasSuffix(name, "_sum"):
			sums[strings.TrimSuffix(name, "_sum")] += val
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] += val
		default:
			// Scalar series. Labelled ones (per-op counters, per-shard
			// gauges) sum into their family total; unlabelled ones appear
			// once, so += is a plain assignment.
			out[name] += val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, n := range counts {
		if n > 0 {
			out[fam+"_mean"] = sums[fam] / n
		}
	}
	return out, nil
}
