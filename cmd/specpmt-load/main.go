// Command specpmt-load is a closed-loop load generator for specpmt-server.
// Each connection runs one goroutine issuing a mixed GET/SET/CAS/MULTI
// workload and records two latencies per request: wall time (host clock,
// includes network and queueing) and the server-reported modeled PM time
// (t=<ns> trailers). The run summary — per-op-type percentiles, throughput,
// and the server's own STATS counters — prints as JSON on stdout.
//
// Usage:
//
//	specpmt-load [-addr host:port] [-conns n] [-duration d] [-keys n]
//	             [-dist uniform|zipf] [-reads pct] [-cas pct] [-multi pct]
//	             [-multi-ops n] [-preload n] [-seed s]
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"flag"

	"specpmt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "server address")
	conns := flag.Int("conns", 64, "concurrent connections (one goroutine each)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	keys := flag.Uint64("keys", 100_000, "key-space size")
	dist := flag.String("dist", "uniform", "key distribution: uniform or zipf")
	reads := flag.Int("reads", 50, "percent of single ops that are GET")
	cas := flag.Int("cas", 10, "percent of single ops that are CAS (rest are SET)")
	multi := flag.Int("multi", 5, "percent of requests that are MULTI...EXEC transactions")
	multiOps := flag.Int("multi-ops", 4, "operations per MULTI transaction")
	preload := flag.Uint64("preload", 10_000, "keys to SET before the timed run")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	if *reads+*cas > 100 {
		fatalf("-reads + -cas must be <= 100")
	}
	if *dist != "uniform" && *dist != "zipf" {
		fatalf("-dist must be uniform or zipf")
	}
	if *conns <= 0 || *keys == 0 || *multiOps <= 0 {
		fatalf("-conns, -keys, and -multi-ops must be positive")
	}

	// Preload a prefix of the key space so GETs hit and CAS has a base.
	pre, err := server.Dial(*addr, 10*time.Second)
	if err != nil {
		fatalf("%v", err)
	}
	n := *preload
	if n > *keys {
		n = *keys
	}
	for k := uint64(0); k < n; k++ {
		if _, err := pre.Set(k, k); err != nil {
			fatalf("preload: %v", err)
		}
	}
	banner := pre.Banner
	pre.Close()

	var wg sync.WaitGroup
	workers := make([]*worker, *conns)
	stop := make(chan struct{})
	for i := range workers {
		w := &worker{
			cfg:  cfg{keys: *keys, dist: *dist, reads: *reads, cas: *cas, multi: *multi, multiOps: *multiOps},
			rng:  rand.New(rand.NewSource(int64(*seed) + int64(i)*1_000_003)),
			stop: stop,
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(*addr)
		}()
	}
	start := time.Now()
	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Addr:     *addr,
		Banner:   banner,
		Conns:    *conns,
		Duration: elapsed.Seconds(),
		Keys:     *keys,
		Dist:     *dist,
		Seed:     *seed,
		OpTypes:  map[string]opReport{},
	}
	var all lats
	for _, kind := range []string{"get", "set", "cas", "multi"} {
		merged := lats{}
		for _, w := range workers {
			merged.wall = append(merged.wall, w.lat[kind].wall...)
			merged.model = append(merged.model, w.lat[kind].model...)
		}
		if len(merged.wall) == 0 {
			continue
		}
		rep.OpTypes[kind] = opReport{
			Ops:     len(merged.wall),
			WallUs:  percentiles(merged.wall, 1e-3),
			ModelNs: percentiles(merged.model, 1),
		}
		all.wall = append(all.wall, merged.wall...)
		all.model = append(all.model, merged.model...)
	}
	for _, w := range workers {
		rep.Errors += w.errors
		rep.Conflicts += w.conflicts
	}
	rep.TotalOps = len(all.wall)
	rep.Throughput = float64(rep.TotalOps) / elapsed.Seconds()

	// The server's own view of the run.
	if c, err := server.Dial(*addr, 5*time.Second); err == nil {
		if nums, _, err := c.Stats(); err == nil {
			rep.ServerStats = nums
		}
		c.Close()
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatalf("%v", err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "specpmt-load: "+format+"\n", args...)
	os.Exit(1)
}

type cfg struct {
	keys                        uint64
	dist                        string
	reads, cas, multi, multiOps int
}

// lats collects per-request latencies: wall nanoseconds (host clock) and
// modeled PM nanoseconds (server t= trailers).
type lats struct {
	wall  []int64
	model []int64
}

type worker struct {
	cfg       cfg
	rng       *rand.Rand
	stop      chan struct{}
	lat       map[string]*lats
	errors    int
	conflicts int
}

func (w *worker) key() uint64 {
	if w.cfg.dist == "zipf" {
		// s=1.1, v=1 — a conventional skewed point; hottest keys are small.
		z := rand.NewZipf(w.rng, 1.1, 1, w.cfg.keys-1)
		return z.Uint64()
	}
	return w.rng.Uint64() % w.cfg.keys
}

func (w *worker) run(addr string) {
	w.lat = map[string]*lats{"get": {}, "set": {}, "cas": {}, "multi": {}}
	c, err := server.Dial(addr, 10*time.Second)
	if err != nil {
		w.errors++
		return
	}
	defer c.Close()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		kind, wallNs, modelNs, err := w.request(c)
		if err != nil {
			w.errors++
			return
		}
		l := w.lat[kind]
		l.wall = append(l.wall, wallNs)
		l.model = append(l.model, modelNs)
	}
}

// request issues one operation and returns its type and latencies.
func (w *worker) request(c *server.Client) (kind string, wallNs, modelNs int64, err error) {
	roll := w.rng.Intn(100)
	start := time.Now()
	switch {
	case roll < w.cfg.multi:
		ops := make([]server.Op, w.cfg.multiOps)
		for i := range ops {
			if i%2 == 0 {
				ops[i] = server.Op{Kind: server.OpSet, Key: w.key(), Arg1: w.rng.Uint64()}
			} else {
				ops[i] = server.Op{Kind: server.OpGet, Key: w.key()}
			}
		}
		_, ns, e := c.Exec(ops)
		return "multi", time.Since(start).Nanoseconds(), ns, e
	case roll < w.cfg.multi+w.cfg.reads:
		r, e := c.Get(w.key())
		return "get", time.Since(start).Nanoseconds(), r.ModelNs, e
	case roll < w.cfg.multi+w.cfg.reads+w.cfg.cas:
		k := w.key()
		cur, e := c.Get(k)
		if e != nil {
			return "cas", 0, 0, e
		}
		old := cur.Val // NOTFOUND leaves 0; CAS then reports NOTFOUND or races
		start = time.Now()
		r, e := c.CAS(k, old, old+1)
		if e == nil && r.Status == server.StatusConflict {
			w.conflicts++
		}
		return "cas", time.Since(start).Nanoseconds(), r.ModelNs, e
	default:
		r, e := c.Set(w.key(), w.rng.Uint64())
		return "set", time.Since(start).Nanoseconds(), r.ModelNs, e
	}
}

// pctl summarizes a latency population.
type pctl struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// percentiles sorts samples (nanoseconds) and reports them scaled by
// `scale` (1e-3 turns ns into µs).
func percentiles(samples []int64, scale float64) pctl {
	if len(samples) == 0 {
		return pctl{}
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(s[i]) * scale
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return pctl{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  float64(s[len(s)-1]) * scale,
		Mean: sum / float64(len(s)) * scale,
	}
}

type opReport struct {
	Ops int `json:"ops"`
	// WallUs is host wall-clock latency in microseconds.
	WallUs pctl `json:"wall_us"`
	// ModelNs is the server-reported modeled PM time in nanoseconds.
	ModelNs pctl `json:"model_ns"`
}

type report struct {
	Addr        string              `json:"addr"`
	Banner      string              `json:"banner"`
	Conns       int                 `json:"conns"`
	Duration    float64             `json:"duration_sec"`
	Keys        uint64              `json:"keys"`
	Dist        string              `json:"dist"`
	Seed        uint64              `json:"seed"`
	TotalOps    int                 `json:"total_ops"`
	Throughput  float64             `json:"throughput_ops_sec"`
	Errors      int                 `json:"errors"`
	Conflicts   int                 `json:"cas_conflicts"`
	OpTypes     map[string]opReport `json:"op_types"`
	ServerStats map[string]uint64   `json:"server_stats,omitempty"`
}
