package main

import (
	"flag"
	"fmt"

	"specpmt/internal/harness"
	"specpmt/internal/stamp"
)

// calibrate prints per-application, per-engine modeled per-transaction costs
// and overheads over the raw baseline. The stamp profiles' ComputeNs values
// were fitted against these numbers (see DESIGN.md §"Calibration"); rerun
// with -calib after changing the latency model or engine cost structure.
func calibrate(n int, seed uint64) {
	for _, p := range stamp.Profiles() {
		raw, _ := harness.RunSoftware("Raw", p, n, seed)
		spec, _ := harness.RunSoftware("SpecSPMT", p, n, seed)
		dp, _ := harness.RunSoftware("SpecSPMT-DP", p, n, seed)
		pmdk, _ := harness.RunSoftware("PMDK", p, n, seed)
		kam, _ := harness.RunSoftware("Kamino-Tx", p, n, seed)
		spht, _ := harness.RunSoftware("SPHT", p, n, seed)
		f := func(r harness.Result) float64 { return float64(r.ModeledNs) / float64(n) }
		fmt.Printf("%-14s raw=%7.0f spec=%7.0f dp=%7.0f spht=%7.0f kam=%7.0f pmdk=%7.0f | specOH=%5.0f dpOH=%6.0f kamOH=%6.0f pmdkOH=%6.0f\n",
			p.Name, f(raw), f(spec), f(dp), f(spht), f(kam), f(pmdk),
			f(spec)-f(raw), f(dp)-f(raw), f(kam)-f(raw), f(pmdk)-f(raw))
	}
}

func init() {
	calibFlag = flag.Bool("calib", false, "print per-engine per-tx cost decomposition (calibration aid)")
}

var calibFlag *bool
