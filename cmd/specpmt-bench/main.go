// Command specpmt-bench regenerates the tables and figures of the SpecPMT
// paper's evaluation (§7) on the simulated persistent memory platform.
//
// Usage:
//
//	specpmt-bench [-n txns] [-seed s] [-fig 1|12|13|14|15] [-table 1|2] [-all]
//	specpmt-bench -profile cxl-pm -fig 13                 # another media profile
//	specpmt-bench -profile list                           # enumerate media profiles
//	specpmt-bench -sweep                                  # engine x profile sensitivity
//	specpmt-bench -json                                   # machine-readable report
//	specpmt-bench -trace out.json [-trace-app vacation] [-trace-engine SpecSPMT]
//	specpmt-bench -metrics [-trace-app ...] [-trace-engine ...]
//
// Without arguments it prints every experiment. Transaction counts are
// scaled (default 300 per application); the paper's absolute numbers come
// from full STAMP runs, so compare shapes, not nanoseconds (EXPERIMENTS.md
// records paper-vs-measured for every experiment).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"specpmt/internal/harness"
	"specpmt/internal/sim"
	"specpmt/internal/stamp"
)

func main() {
	n := flag.Int("n", 300, "transactions per application")
	seed := flag.Uint64("seed", 1, "workload seed")
	fig := flag.Int("fig", 0, "print one figure (1, 12, 13, 14, 15)")
	table := flag.Int("table", 0, "print one table (1, 2)")
	all := flag.Bool("all", false, "print every experiment (default when no selection)")
	mem := flag.Bool("mem", false, "print software SpecPMT's memory-space overhead (§4/§5 motivation)")
	parallel := flag.Int("parallel", 0, "worker goroutines for independent runs (0 = NumCPU, 1 = serial); results are identical at any setting")
	chartFlag = flag.Bool("chart", false, "render figures as ASCII bar charts instead of tables")
	profileName := flag.String("profile", "", "media profile the experiments run on (default optane-adr; \"list\" enumerates the built-ins)")
	sweep := flag.Bool("sweep", false, "print the software-engine x media-profile sensitivity sweep")
	flag.Parse()
	harness.SetParallelism(*parallel)
	start := time.Now()

	if *profileName == "list" {
		fmt.Print(sim.ProfileTable())
		return
	}
	sc := harness.ScenarioConfig{Profile: sim.DefaultProfile()}
	if *profileName != "" {
		p, ok := sim.ProfileByName(*profileName)
		if !ok {
			check(fmt.Errorf("unknown media profile %q (try -profile list)", *profileName))
		}
		sc.Profile = p
	}

	if *calibFlag {
		calibrate(*n, *seed)
		return
	}
	if *jsonFlag {
		printJSON(*n, *seed, start, sc)
		return
	}
	if *traceFlag != "" || *metricsFlag {
		printTraced(*n, *seed, sc)
		return
	}
	if *mem {
		printMemOverhead(*n, *seed, sc)
		return
	}
	if *sweep {
		printSweep(*n, *seed)
		reportWall(os.Stderr, start)
		return
	}
	if *fig == 0 && *table == 0 {
		*all = true
	}
	if *all || *table == 1 {
		printTable1(sc.Profile)
	}
	if *all || *table == 2 {
		printTable2(*n, *seed)
	}
	if *all || *fig == 1 {
		printFigure1(*n, *seed, sc)
	}
	if *all || *fig == 12 {
		printFigure12(*n, *seed, sc)
	}
	if *all || *fig == 13 {
		printFigure13(*n, *seed, sc)
	}
	if *all || *fig == 14 {
		printFigure14(*n, *seed, sc)
	}
	if *all || *fig == 15 {
		printFigure15(*n, *seed, sc)
	}
	// Wall-clock summary goes to stderr so stdout stays byte-identical
	// across -parallel settings.
	reportWall(os.Stderr, start)
}

// reportWall prints host wall-clock elapsed time and run throughput.
func reportWall(w *os.File, start time.Time) {
	elapsed := time.Since(start)
	runs := harness.RunCount()
	if runs == 0 {
		return
	}
	fmt.Fprintf(w, "wall-clock: %.2fs, %d runs (%.1f runs/sec, -parallel %d)\n",
		elapsed.Seconds(), runs, float64(runs)/elapsed.Seconds(), harness.Parallelism())
}

var chartFlag *bool

// render prints a figure as a table or, with -chart, as bars.
func render(fig harness.Figure, percent bool) {
	if chartFlag != nil && *chartFlag {
		fmt.Print(fig.Chart(percent))
		return
	}
	fmt.Print(fig.Format(percent))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "specpmt-bench:", err)
		os.Exit(1)
	}
}

func printTable1(prof sim.Profile) {
	hw := prof.HW
	sw := prof.SW
	fmt.Println("Table 1: system configuration (modeled)")
	if prof.Name != sim.DefaultProfileName {
		fmt.Printf("media profile: %s — %s (domain %s)\n", prof.Name, prof.Desc, prof.Domain)
	}
	fmt.Printf("%-28s %12s %12s\n", "parameter", "hardware", "software")
	rows := []struct {
		name   string
		hw, sw int64
	}{
		{"PM read latency (ns)", hw.PMRead, sw.PMRead},
		{"PM write, random line (ns)", hw.PMWriteRandom, sw.PMWriteRandom},
		{"PM write, sequential (ns)", hw.PMWriteSeq, sw.PMWriteSeq},
		{"WPQ capacity (lines)", int64(hw.WPQLines), int64(sw.WPQLines)},
		{"WPQ acceptance RTT (ns)", hw.AcceptNs, sw.AcceptNs},
		{"CLWB issue (ns)", hw.FlushIssue, sw.FlushIssue},
		{"SFENCE issue (ns)", hw.FenceIssue, sw.FenceIssue},
	}
	for _, r := range rows {
		fmt.Printf("%-28s %12d %12d\n", r.name, r.hw, r.sw)
	}
	fmt.Println("L1 data cache: 32KB 8-way; L1/L2 TLB: 1536 entries; line 64B; page 4KB")
	fmt.Println()
}

func printTable2(n int, seed uint64) {
	fmt.Println("Table 2: size and number of transactions (paper-reported vs generated shape)")
	fmt.Printf("%-14s %10s %12s %13s | %12s %10s\n",
		"application", "avg size", "num of tx", "num updates", "gen avg size", "gen upd/tx")
	for _, r := range harness.Table2(n, seed) {
		fmt.Printf("%-14s %9.1fB %12d %13d | %11.1fB %10.1f\n",
			r.App, r.PaperAvgSize, r.PaperTxns, r.PaperUpdates, r.GeneratedAvgSize, r.GeneratedUpdPerTx)
	}
	fmt.Println()
}

func printFigure1(n int, seed uint64, sc harness.ScenarioConfig) {
	figSW, err := harness.Figure1Software(n, seed, sc)
	check(err)
	render(figSW, true)
	fmt.Println()
	figHW, err := harness.Figure1Hardware(n, seed, sc)
	check(err)
	render(figHW, true)
	fmt.Println()
}

func printFigure12(n int, seed uint64, sc harness.ScenarioConfig) {
	fig, err := harness.Figure12(n, seed, sc)
	check(err)
	render(fig, false)
	per, geo, err := harness.SpecOverhead(n, seed, sc)
	check(err)
	fmt.Printf("SpecSPMT overhead over no-transaction runs: %.0f%% geomean (paper headline: 10%%)\n", geo*100)
	for _, p := range stamp.Profiles() {
		fmt.Printf("  %-14s %6.1f%%\n", p.Name, per[p.Name]*100)
	}
	fmt.Println()
}

func printFigure13(n int, seed uint64, sc harness.ScenarioConfig) {
	fig, err := harness.Figure13(n, seed, sc)
	check(err)
	render(fig, false)
	fmt.Println()
}

func printFigure14(n int, seed uint64, sc harness.ScenarioConfig) {
	fig, err := harness.Figure14(n, seed, sc)
	check(err)
	render(fig, true)
	fmt.Println()
}

func printFigure15(n int, seed uint64, sc harness.ScenarioConfig) {
	pts, err := harness.Figure15(n, seed, sc)
	check(err)
	fmt.Println("Figure 15: speedup and write-traffic reduction vs memory consumption (epoch sweep)")
	fmt.Printf("%-12s %16s %10s %18s\n", "epoch size", "mem overhead", "speedup", "traffic reduction")
	for _, p := range pts {
		fmt.Printf("%9dKiB %15.1f%% %9.2fx %17.1f%%\n",
			p.EpochBytes>>10, p.MemOverheadPct, p.AvgSpeedup, p.TrafficReduction*100)
	}
	fmt.Println()
}

func printMemOverhead(n int, seed uint64, sc harness.ScenarioConfig) {
	rows, err := harness.SoftwareMemoryOverhead(n, seed, sc)
	check(err)
	fmt.Println("Software SpecPMT memory-space overhead (peak live log vs touched data)")
	fmt.Printf("%-14s %14s %14s %8s\n", "application", "data bytes", "peak log", "ratio")
	for _, r := range rows {
		fmt.Printf("%-14s %14d %14d %7.2fx\n", r.App, r.DataBytes, r.PeakLogBytes, r.Ratio)
	}
	fmt.Println("(the paper's motivation for hardware SpecPMT: \"it nearly triples the")
	fmt.Println(" memory space overhead\" — §5; ratios depend on the reclamation threshold)")
}

// printSweep renders the engine × media-profile sensitivity study over every
// built-in profile.
func printSweep(n int, seed uint64) {
	fig, err := harness.ProfileSweep(n, seed, nil)
	check(err)
	fmt.Print(fig.Format())
}
