package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"specpmt/internal/harness"
	"specpmt/internal/stamp"
	"specpmt/internal/stats"
)

// jsonReport is the machine-readable form of the full evaluation, for
// downstream plotting.
type jsonReport struct {
	Txns    int                     `json:"txns_per_app"`
	Seed    uint64                  `json:"seed"`
	Profile string                  `json:"profile"`
	Table2  []harness.Table2Row     `json:"table2"`
	Figures map[string]jsonFigure   `json:"figures"`
	Fig15   []harness.Figure15Point `json:"figure15"`
	Mem     []harness.MemRow        `json:"memory_overhead"`
	SpecOv  map[string]float64      `json:"specspmt_overhead"`
	// Counters is a per-engine, per-application snapshot of the simulation
	// counters (fences, flushes, PM write bytes by kind, seq/rand drain
	// lines, transactions, log lifecycle).
	Counters map[string]map[string]stats.Counters `json:"counters"`
	// Wall reports host execution time — the only section that varies
	// between runs (and across -parallel settings); every other field is a
	// deterministic function of (txns, seed).
	Wall jsonWall `json:"wall"`
}

// jsonWall is the host-side wall-clock summary of a bench invocation.
type jsonWall struct {
	ElapsedSec  float64 `json:"elapsed_sec"`
	Runs        int64   `json:"runs"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	Parallelism int     `json:"parallelism"`
}

type jsonFigure struct {
	Title   string                        `json:"title"`
	Rows    map[string]map[string]float64 `json:"rows"`
	GeoMean map[string]float64            `json:"geomean"`
}

func toJSONFigure(f harness.Figure) jsonFigure {
	out := jsonFigure{Title: f.Title, Rows: map[string]map[string]float64{}, GeoMean: f.GeoMean}
	for _, r := range f.Rows {
		out.Rows[r.Workload] = r.Values
	}
	return out
}

func init() {
	jsonFlag = flag.Bool("json", false, "emit the full evaluation as JSON")
}

var jsonFlag *bool

func printJSON(n int, seed uint64, start time.Time, sc harness.ScenarioConfig) {
	rep := jsonReport{Txns: n, Seed: seed, Profile: sc.Profile.Name, Figures: map[string]jsonFigure{}}
	rep.Table2 = harness.Table2(n, seed)
	type figFn struct {
		name string
		fn   func(int, uint64, harness.ScenarioConfig) (harness.Figure, error)
	}
	for _, f := range []figFn{
		{"figure1_software", harness.Figure1Software},
		{"figure1_hardware", harness.Figure1Hardware},
		{"figure12", harness.Figure12},
		{"figure13", harness.Figure13},
		{"figure14", harness.Figure14},
	} {
		fig, err := f.fn(n, seed, sc)
		check(err)
		rep.Figures[f.name] = toJSONFigure(fig)
	}
	pts, err := harness.Figure15(n, seed, sc)
	check(err)
	rep.Fig15 = pts
	mem, err := harness.SoftwareMemoryOverhead(n, seed, sc)
	check(err)
	rep.Mem = mem
	per, geo, err := harness.SpecOverhead(n, seed, sc)
	check(err)
	rep.SpecOv = per
	rep.SpecOv["geomean"] = geo
	rep.Counters = collectCounters(n, seed, sc)
	elapsed := time.Since(start)
	rep.Wall = jsonWall{
		ElapsedSec:  elapsed.Seconds(),
		Runs:        harness.RunCount(),
		RunsPerSec:  float64(harness.RunCount()) / elapsed.Seconds(),
		Parallelism: harness.Parallelism(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "specpmt-bench:", err)
		os.Exit(1)
	}
}

// collectCounters runs every engine over every application once and snapshots
// its structured counters — the raw material behind Figure 14's traffic bars
// and Table 2's update counts.
func collectCounters(n int, seed uint64, sc harness.ScenarioConfig) map[string]map[string]stats.Counters {
	type job struct {
		engine string
		prof   stamp.Profile
		hw     bool
	}
	var jobs []job
	for _, eng := range append([]string{harness.RawEngine}, harness.SoftwareEngines()...) {
		for _, p := range stamp.Profiles() {
			jobs = append(jobs, job{engine: eng, prof: p})
		}
	}
	for _, eng := range harness.HardwareEngines() {
		for _, p := range stamp.Profiles() {
			jobs = append(jobs, job{engine: eng, prof: p, hw: true})
		}
	}
	results := make([]stats.Counters, len(jobs))
	check(harness.ForEach(len(jobs), func(i int) error {
		j := jobs[i]
		var r harness.Result
		var err error
		if j.hw {
			r, err = harness.RunHardwareOpt(j.engine, j.prof, n, seed, nil, sc)
		} else {
			r, err = harness.RunSoftwareOpt(j.engine, j.prof, n, seed, sc)
		}
		results[i] = r.Stats
		return err
	}))
	out := map[string]map[string]stats.Counters{}
	for i, j := range jobs {
		m := out[j.engine]
		if m == nil {
			m = map[string]stats.Counters{}
			out[j.engine] = m
		}
		m[j.prof.Name] = results[i]
	}
	return out
}
