package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"specpmt/internal/harness"
)

// jsonReport is the machine-readable form of the full evaluation, for
// downstream plotting.
type jsonReport struct {
	Txns    int                     `json:"txns_per_app"`
	Seed    uint64                  `json:"seed"`
	Table2  []harness.Table2Row     `json:"table2"`
	Figures map[string]jsonFigure   `json:"figures"`
	Fig15   []harness.Figure15Point `json:"figure15"`
	Mem     []harness.MemRow        `json:"memory_overhead"`
	SpecOv  map[string]float64      `json:"specspmt_overhead"`
}

type jsonFigure struct {
	Title   string                        `json:"title"`
	Rows    map[string]map[string]float64 `json:"rows"`
	GeoMean map[string]float64            `json:"geomean"`
}

func toJSONFigure(f harness.Figure) jsonFigure {
	out := jsonFigure{Title: f.Title, Rows: map[string]map[string]float64{}, GeoMean: f.GeoMean}
	for _, r := range f.Rows {
		out.Rows[r.Workload] = r.Values
	}
	return out
}

func init() {
	jsonFlag = flag.Bool("json", false, "emit the full evaluation as JSON")
}

var jsonFlag *bool

func printJSON(n int, seed uint64) {
	rep := jsonReport{Txns: n, Seed: seed, Figures: map[string]jsonFigure{}}
	rep.Table2 = harness.Table2(n, seed)
	type figFn struct {
		name string
		fn   func(int, uint64) (harness.Figure, error)
	}
	for _, f := range []figFn{
		{"figure1_software", harness.Figure1Software},
		{"figure1_hardware", harness.Figure1Hardware},
		{"figure12", harness.Figure12},
		{"figure13", harness.Figure13},
		{"figure14", harness.Figure14},
	} {
		fig, err := f.fn(n, seed)
		check(err)
		rep.Figures[f.name] = toJSONFigure(fig)
	}
	pts, err := harness.Figure15(n, seed)
	check(err)
	rep.Fig15 = pts
	mem, err := harness.SoftwareMemoryOverhead(n, seed)
	check(err)
	rep.Mem = mem
	per, geo, err := harness.SpecOverhead(n, seed)
	check(err)
	rep.SpecOv = per
	rep.SpecOv["geomean"] = geo
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "specpmt-bench:", err)
		os.Exit(1)
	}
}
