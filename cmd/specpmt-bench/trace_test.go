package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"specpmt/internal/harness"
)

// chromeFile mirrors the subset of the Chrome trace-event format the
// exporter emits, as a consumer (Perfetto, plotting scripts) would read it.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceFlagRoundTrip exercises the -trace path end to end: run a traced
// benchmark, write the Chrome JSON to a file, and parse it back the way a
// trace viewer would.
func TestTraceFlagRoundTrip(t *testing.T) {
	for _, engine := range []string{"SpecSPMT", "EDE"} {
		tr, res, err := runTraced(engine, "vacation-low", 50, 1, harness.ScenarioConfig{})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if res.ModeledNs <= 0 {
			t.Fatalf("%s: no modeled time", engine)
		}
		path := filepath.Join(t.TempDir(), "out.json")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			t.Fatalf("%s: write: %v", engine, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var out chromeFile
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s: trace file is not valid Chrome JSON: %v", engine, err)
		}
		var commits, fences, threadNames int
		for _, e := range out.TraceEvents {
			switch {
			case e.Name == "commit" && e.Ph == "X":
				commits++
			case e.Name == "fence" && e.Ph == "X":
				fences++
			case e.Name == "thread_name" && e.Ph == "M":
				threadNames++
			}
			if e.Ph != "M" && e.TS < 0 {
				t.Fatalf("%s: negative timestamp in %q", engine, e.Name)
			}
		}
		if commits != 50 {
			t.Errorf("%s: trace holds %d commit spans, want 50", engine, commits)
		}
		if fences == 0 {
			t.Errorf("%s: no fence spans in trace", engine)
		}
		if threadNames == 0 {
			t.Errorf("%s: no thread_name metadata", engine)
		}
	}
}

// TestTraceUnknownInputs covers the error paths of the -trace dispatcher.
func TestTraceUnknownInputs(t *testing.T) {
	if _, _, err := runTraced("SpecSPMT", "no-such-app", 10, 1, harness.ScenarioConfig{}); err == nil {
		t.Error("unknown application accepted")
	}
	if _, _, err := runTraced("no-such-engine", "vacation-low", 10, 1, harness.ScenarioConfig{}); err == nil {
		t.Error("unknown engine accepted")
	}
}
