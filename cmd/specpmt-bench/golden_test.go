package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"specpmt/internal/harness"
	"specpmt/internal/sim"
)

// TestAllOutputByteIdenticalOnDefaultProfile pins the profile refactor's
// invariant: under the default optane-adr profile, the full `-all` print
// sequence (n=60, seed=1) must reproduce the pre-profile output captured in
// testdata byte for byte. Any timing, formatting, or semantics drift in the
// default path fails this test.
func TestAllOutputByteIdenticalOnDefaultProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all regeneration is slow")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "all_optane-adr_n60_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := captureStdout(t, func() {
		const n, seed = 60, 1
		sc := harness.ScenarioConfig{Profile: sim.DefaultProfile()}
		printTable1(sc.Profile)
		printTable2(n, seed)
		printFigure1(n, seed, sc)
		printFigure12(n, seed, sc)
		printFigure13(n, seed, sc)
		printFigure14(n, seed, sc)
		printFigure15(n, seed, sc)
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("-all output diverged from pre-refactor golden\ngot %d bytes, want %d bytes\n--- got ---\n%s", len(got), len(want), got)
	}
}

// TestTable1NonDefaultProfileHeader checks that a non-default profile
// announces itself (the default deliberately prints no extra line, keeping
// the golden output unchanged).
func TestTable1NonDefaultProfileHeader(t *testing.T) {
	out := captureStdout(t, func() { printTable1(sim.MustProfile("cxl-pm")) })
	if !bytes.Contains(out, []byte("media profile: cxl-pm")) {
		t.Fatalf("Table 1 under cxl-pm lacks the profile header:\n%s", out)
	}
	if !bytes.Contains(out, []byte("domain far")) {
		t.Fatalf("Table 1 under cxl-pm does not name the persistence domain:\n%s", out)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	defer func() { os.Stdout = orig }()
	fn()
	os.Stdout = orig
	w.Close()
	out := <-done
	r.Close()
	return out
}
