package main

import (
	"flag"
	"fmt"
	"os"

	"specpmt/internal/harness"
	"specpmt/internal/stamp"
	"specpmt/internal/trace"
)

func init() {
	traceFlag = flag.String("trace", "", "trace one (engine, app) run and write a Chrome trace-event JSON (open in Perfetto or chrome://tracing) to this file")
	metricsFlag = flag.Bool("metrics", false, "trace one (engine, app) run and print its histograms and time-series summary")
	traceApp = flag.String("trace-app", "vacation-low", "application profile for -trace/-metrics")
	traceEngine = flag.String("trace-engine", "SpecSPMT", "engine for -trace/-metrics (software or hardware)")
}

var (
	traceFlag   *string
	metricsFlag *bool
	traceApp    *string
	traceEngine *string
)

func profileByName(name string) (stamp.Profile, bool) {
	for _, p := range stamp.Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return stamp.Profile{}, false
}

func isHardwareEngine(name string) bool {
	for _, e := range harness.HardwareEngines() {
		if e == name {
			return true
		}
	}
	return false
}

// scWithTracer attaches a tracer to a scenario without mutating the caller's
// copy.
func scWithTracer(sc harness.ScenarioConfig, tr *trace.Tracer) harness.ScenarioConfig {
	sc.Tracer = tr
	return sc
}

// runTraced executes one (engine, app) run with an attached tracer and
// returns it together with the run result.
func runTraced(engine, app string, n int, seed uint64, sc harness.ScenarioConfig) (*trace.Tracer, harness.Result, error) {
	p, ok := profileByName(app)
	if !ok {
		return nil, harness.Result{}, fmt.Errorf("unknown application %q (see Table 2 for names)", app)
	}
	tr := trace.New()
	var res harness.Result
	var err error
	if isHardwareEngine(engine) {
		res, err = harness.RunHardwareOpt(engine, p, n, seed, nil, scWithTracer(sc, tr))
	} else {
		res, err = harness.RunSoftwareOpt(engine, p, n, seed, scWithTracer(sc, tr))
	}
	return tr, res, err
}

func printTraced(n int, seed uint64, sc harness.ScenarioConfig) {
	tr, res, err := runTraced(*traceEngine, *traceApp, n, seed, sc)
	check(err)
	fmt.Printf("traced %s/%s: %d txns, modeled %.3f ms, %d events (%d dropped)\n",
		res.Engine, res.Workload, res.Txns, float64(res.ModeledNs)/1e6,
		len(tr.Events()), tr.Dropped())
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		check(err)
		check(tr.WriteChrome(f))
		check(f.Close())
		fmt.Printf("wrote Chrome trace to %s (load it in Perfetto or chrome://tracing)\n", *traceFlag)
	}
	if *metricsFlag {
		fmt.Print(tr.Summary())
	}
}
