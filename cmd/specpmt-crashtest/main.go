// Command specpmt-crashtest tortures the crash-consistency engines:
// randomized transaction streams, power failures at random points (including
// mid-transaction, with random partial cache eviction), recovery, and
// verification of every power-fail point by the declarative recovery
// checkers (internal/recovery).
//
// Usage:
//
//	specpmt-crashtest [-engine name|all] [-seeds n] [-rounds n] [-profile name]
//	                  [-check] [-pipeline] [-churn] [-replay] [-migrate]
//	                  [-summary file] [-v]
//
// Scenarios:
//
//   - default: the basic torture — random transaction streams against a
//     single pool, crash/recover rounds, all checkers after every round.
//   - -pipeline: speculative group-commit torture — SpecSPMT transactions
//     committed with CommitNoFence in windows retired by one coalescing
//     fence, with the prefix-at-or-past-the-fence-floor checker.
//   - -churn: allocator torture — mixed-size-class alloc/free churn with
//     online compaction, stamps committed transactionally, crash every round.
//   - -replay: replication torture — a primary under client load, replica
//     power failures during replay, full checker pass once caught up.
//   - -migrate: cluster migration-cutover torture — a two-node cluster
//     under routed load with one shard migrating between the nodes, power
//     failures injected mid-pull, post-freeze, at the cutover verify, and
//     after a committed cutover (on both the new owner and the purging old
//     owner), full checker pass after every power-fail point.
//   - -check: the checker matrix — basic AND churn for the selected
//     engine(s), plus a per-scenario checker summary line.
//
// -summary writes the merged recovery-checker summary as JSON (the CI
// artifact). -engine accepts the alias "spec" for SpecSPMT.
//
// A checker violation stops that run at the failing power-fail point; its
// index is printed and the exit status is non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"specpmt/internal/crashtest"
	"specpmt/internal/recovery"
	"specpmt/internal/sim"
)

func main() {
	engine := flag.String("engine", "all", "engine to torture, or \"all\" (alias: spec = SpecSPMT)")
	seeds := flag.Int("seeds", 10, "number of random seeds per engine")
	rounds := flag.Int("rounds", 5, "crash/recover rounds (= power-fail points) per run")
	profile := flag.String("profile", "", "media profile to torture on (default optane-adr; \"list\" enumerates the built-ins)")
	check := flag.Bool("check", false, "run the recovery-checker matrix: basic + allocator-churn scenarios with checker summaries")
	pipeline := flag.Bool("pipeline", false, "torture pipelined speculative commit windows (SpecSPMT only)")
	churn := flag.Bool("churn", false, "torture the logged allocator: mixed-class alloc/free/compaction churn")
	replay := flag.Bool("replay", false, "torture replication replay: replica power failures while tailing a live primary")
	migrate := flag.Bool("migrate", false, "torture cluster migration cutover: node power failures at every phase of a live shard move")
	summaryPath := flag.String("summary", "", "write the merged recovery-checker summary JSON to this file")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	if *profile == "list" {
		fmt.Print(sim.ProfileTable())
		return
	}
	switch *engine {
	case "spec":
		*engine = "SpecSPMT"
	case "spec-hash":
		*engine = "SpecSPMT-Hash"
	}

	engines := crashtest.Engines()
	if *engine != "all" {
		engines = []string{*engine}
	}

	// The run matrix: scenario runners to execute per engine per seed.
	type runner struct {
		name    string
		perEng  bool // runs once per engine (vs once total, SpecSPMT-only)
		run     func(crashtest.Config) (crashtest.Report, error)
		summary *recovery.Summary
	}
	var matrix []runner
	switch {
	case *pipeline:
		matrix = []runner{{name: "pipeline", run: crashtest.RunSpecPipeline}}
	case *churn:
		matrix = []runner{{name: "churn", perEng: true, run: crashtest.RunAllocChurn}}
	case *replay, *migrate:
		matrix = nil // replay and migrate have their own report types; handled below
	case *check:
		matrix = []runner{
			{name: "basic", perEng: true, run: crashtest.Run},
			{name: "churn", perEng: true, run: crashtest.RunAllocChurn},
		}
	default:
		matrix = []runner{{name: "basic", perEng: true, run: crashtest.Run}}
	}

	total := recovery.Summary{Scenario: "all"}
	failed := 0
	for mi := range matrix {
		m := &matrix[mi]
		m.summary = &recovery.Summary{Scenario: m.name}
		engs := engines
		if !m.perEng {
			engs = []string{"SpecSPMT"}
		}
		for _, eng := range engs {
			for seed := uint64(1); seed <= uint64(*seeds); seed++ {
				rep, err := m.run(crashtest.Config{Engine: eng, Seed: seed, Rounds: *rounds, Profile: *profile})
				m.summary.Merge(rep.Checks)
				if err != nil {
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: %s %s seed %d: %v\n", m.name, eng, seed, err)
					failed++
					continue
				}
				if !rep.Ok() {
					failed++
					fmt.Println(rep)
					for _, v := range rep.Violations {
						fmt.Println("  ", v)
					}
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: %s %s seed %d: checker failure at power-fail point %d\n",
						m.name, eng, seed, rep.FailedAt)
				} else if *verbose {
					fmt.Println(rep)
				}
			}
		}
		fmt.Printf("%-9s %d power-fail points, %d checks, %d failed\n",
			m.name+":", m.summary.Points, m.summary.Checks, m.summary.Failed)
		total.Merge(*m.summary)
	}

	if *replay {
		sum := recovery.Summary{Scenario: "replay"}
		rengines := crashtest.ReplayEngines()
		if *engine != "all" {
			rengines = []string{*engine}
		}
		for _, eng := range rengines {
			for seed := uint64(1); seed <= uint64(*seeds); seed++ {
				rep, err := crashtest.ReplicaReplay(crashtest.ReplayConfig{Engine: eng, Seed: seed, Rounds: *rounds, Profile: *profile})
				sum.Merge(rep.Checks)
				if err != nil {
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: replay %s seed %d: %v\n", eng, seed, err)
					failed++
					continue
				}
				if !rep.Ok() {
					failed++
					fmt.Println(rep)
					for _, v := range rep.Violations {
						fmt.Println("  ", v)
					}
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: replay %s seed %d: checker failure at power-fail point %d\n",
						eng, seed, rep.FailedAt)
				} else if *verbose {
					fmt.Println(rep)
				}
			}
		}
		fmt.Printf("%-9s %d power-fail points, %d checks, %d failed\n", "replay:", sum.Points, sum.Checks, sum.Failed)
		total.Merge(sum)
	}

	if *migrate {
		sum := recovery.Summary{Scenario: "migrate"}
		mengines := crashtest.MigrateEngines()
		if *engine != "all" {
			mengines = []string{*engine}
		}
		for _, eng := range mengines {
			for seed := uint64(1); seed <= uint64(*seeds); seed++ {
				rep, err := crashtest.MigrationCutover(crashtest.MigrateConfig{Engine: eng, Seed: seed, Rounds: *rounds, Profile: *profile})
				sum.Merge(rep.Checks)
				if err != nil {
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: migrate %s seed %d: %v\n", eng, seed, err)
					failed++
					continue
				}
				if !rep.Ok() {
					failed++
					fmt.Println(rep)
					for _, v := range rep.Violations {
						fmt.Println("  ", v)
					}
					fmt.Fprintf(os.Stderr, "specpmt-crashtest: migrate %s seed %d: checker failure at power-fail point %d\n",
						eng, seed, rep.FailedAt)
				} else if *verbose {
					fmt.Println(rep)
				}
			}
		}
		fmt.Printf("%-9s %d power-fail points, %d checks, %d failed\n", "migrate:", sum.Points, sum.Checks, sum.Failed)
		total.Merge(sum)
	}

	if *summaryPath != "" {
		buf, err := json.MarshalIndent(total, "", "  ")
		if err == nil {
			err = os.WriteFile(*summaryPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-crashtest: writing summary: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "specpmt-crashtest: %d failing runs\n", failed)
		os.Exit(1)
	}
}
