// Command specpmt-crashtest tortures the crash-consistency engines:
// randomized transaction streams, power failures at random points (including
// mid-transaction, with random partial cache eviction), recovery, and oracle
// verification — repeated across multiple crash/recover/continue rounds.
//
// Usage:
//
//	specpmt-crashtest [-engine name|all] [-seeds n] [-rounds n] [-profile name] [-v]
//
// Exit status is non-zero if any run observes a consistency violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"specpmt/internal/crashtest"
	"specpmt/internal/sim"
)

func main() {
	engine := flag.String("engine", "all", "engine to torture, or \"all\"")
	seeds := flag.Int("seeds", 10, "number of random seeds per engine")
	rounds := flag.Int("rounds", 5, "crash/recover rounds per run")
	profile := flag.String("profile", "", "media profile to torture on (default optane-adr; \"list\" enumerates the built-ins)")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	if *profile == "list" {
		fmt.Print(sim.ProfileTable())
		return
	}
	engines := crashtest.Engines()
	if *engine != "all" {
		engines = []string{*engine}
	}
	failed := 0
	for _, eng := range engines {
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			rep, err := crashtest.Run(crashtest.Config{Engine: eng, Seed: seed, Rounds: *rounds, Profile: *profile})
			if err != nil {
				fmt.Fprintf(os.Stderr, "specpmt-crashtest: %s seed %d: %v\n", eng, seed, err)
				failed++
				continue
			}
			if !rep.Ok() {
				failed++
				fmt.Println(rep)
				for _, v := range rep.Violations {
					fmt.Println("  ", v)
				}
			} else if *verbose {
				fmt.Println(rep)
			}
		}
		if !*verbose {
			fmt.Printf("%-12s %d seeds x %d rounds: ok\n", eng, *seeds, *rounds)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "specpmt-crashtest: %d failing runs\n", failed)
		os.Exit(1)
	}
}
