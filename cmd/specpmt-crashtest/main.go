// Command specpmt-crashtest tortures the crash-consistency engines:
// randomized transaction streams, power failures at random points (including
// mid-transaction, with random partial cache eviction), recovery, and oracle
// verification — repeated across multiple crash/recover/continue rounds.
//
// Usage:
//
//	specpmt-crashtest [-engine name|all] [-seeds n] [-rounds n] [-profile name] [-pipeline] [-v]
//
// -pipeline switches to the speculative group-commit torture: SpecSPMT
// transactions committed with CommitNoFence in windows retired by one
// coalescing fence — the pattern the server's pipelined group commit relies
// on — with the prefix-at-or-past-the-fence-floor oracle.
//
// Exit status is non-zero if any run observes a consistency violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"specpmt/internal/crashtest"
	"specpmt/internal/sim"
)

func main() {
	engine := flag.String("engine", "all", "engine to torture, or \"all\"")
	seeds := flag.Int("seeds", 10, "number of random seeds per engine")
	rounds := flag.Int("rounds", 5, "crash/recover rounds per run")
	profile := flag.String("profile", "", "media profile to torture on (default optane-adr; \"list\" enumerates the built-ins)")
	pipeline := flag.Bool("pipeline", false, "torture pipelined speculative commit windows (SpecSPMT only)")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	if *profile == "list" {
		fmt.Print(sim.ProfileTable())
		return
	}
	run := crashtest.Run
	engines := crashtest.Engines()
	if *pipeline {
		run = func(cfg crashtest.Config) (crashtest.Report, error) { return crashtest.RunSpecPipeline(cfg) }
		engines = []string{crashtest.SpecPipelineEngine}
	} else if *engine != "all" {
		engines = []string{*engine}
	}
	failed := 0
	for _, eng := range engines {
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			rep, err := run(crashtest.Config{Engine: eng, Seed: seed, Rounds: *rounds, Profile: *profile})
			if err != nil {
				fmt.Fprintf(os.Stderr, "specpmt-crashtest: %s seed %d: %v\n", eng, seed, err)
				failed++
				continue
			}
			if !rep.Ok() {
				failed++
				fmt.Println(rep)
				for _, v := range rep.Violations {
					fmt.Println("  ", v)
				}
			} else if *verbose {
				fmt.Println(rep)
			}
		}
		if !*verbose {
			fmt.Printf("%-12s %d seeds x %d rounds: ok\n", eng, *seeds, *rounds)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "specpmt-crashtest: %d failing runs\n", failed)
		os.Exit(1)
	}
}
