// Command specpmt-inspect demonstrates the anatomy of the speculative log:
// it runs a small scripted scenario on a SpecSPMT pool, dumps the log chain
// (blocks, records, fresh/stale entries), crashes the pool mid-transaction,
// recovers, and dumps the log again — making the paper's recovery story
// (§3.1, Figure 4) visible record by record.
//
// Usage:
//
//	specpmt-inspect [-txns n] [-updates n] [-reclaim] [-seed s] [-hw] [-profile name] [-trace out.json]
//
// With -hw it instead walks hardware SpecPMT's epoch ring, page-image and
// commit records, and TLB hotness through a hot/cold workload. With -trace
// the whole scenario — including the crash and recovery — is recorded as a
// Chrome trace-event JSON (open in Perfetto or chrome://tracing), and the
// trace's aggregate metrics are printed at the end.
package main

import (
	"flag"
	"fmt"
	"os"

	"specpmt"
	"specpmt/internal/hwsim"
	"specpmt/internal/sim"
	"specpmt/internal/txn/spec"
)

func main() {
	txns := flag.Int("txns", 6, "committed transactions before the crash")
	updates := flag.Int("updates", 3, "updates per transaction")
	reclaim := flag.Bool("reclaim", false, "run an explicit reclamation cycle before the crash")
	seed := flag.Uint64("seed", 1, "crash eviction seed")
	hw := flag.Bool("hw", false, "inspect hardware SpecPMT (epochs, page images, TLB) instead")
	profile := flag.String("profile", "", "media profile the pool runs on (default optane-adr; \"list\" enumerates the built-ins)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the scenario to this file")
	flag.Parse()

	if *profile == "list" {
		fmt.Print(sim.ProfileTable())
		return
	}
	var tracer *specpmt.Tracer
	if *traceOut != "" {
		tracer = specpmt.NewTracer()
		defer writeTrace(tracer, *traceOut)
	}

	if *hw {
		inspectHardware(*txns, *seed, *profile, tracer)
		return
	}

	pool, err := specpmt.Open(specpmt.Config{
		Engine:      "SpecSPMT",
		Profile:     *profile,
		SpecOptions: &spec.Options{BlockSize: 1024, DisableReclaim: true},
		Tracer:      tracer,
	})
	check(err)
	defer pool.Close()
	eng := pool.Engine().(*spec.Engine)

	addrs := make([]specpmt.Addr, *updates)
	for i := range addrs {
		addrs[i], err = pool.Alloc(64)
		check(err)
	}

	fmt.Printf("=== running %d transactions of %d updates each\n", *txns, *updates)
	for r := 1; r <= *txns; r++ {
		tx := pool.Begin()
		for j, a := range addrs {
			tx.StoreUint64(a, uint64(r*100+j))
		}
		check(tx.Commit())
	}
	if *reclaim {
		fmt.Println("=== explicit reclamation cycle (stale records compacted)")
		check(eng.ReclaimNow())
	}
	fmt.Println("=== log before crash")
	eng.DumpLog(os.Stdout)

	fmt.Println("=== opening a transaction and crashing mid-flight")
	tx := pool.Begin()
	for j, a := range addrs {
		tx.StoreUint64(a, uint64(999000+j)) // never committed
	}
	check(pool.Crash(*seed))
	check(pool.Recover())

	fmt.Println("=== log after crash + recovery")
	eng2 := pool.Engine().(*spec.Engine)
	eng2.DumpLog(os.Stdout)

	fmt.Println("=== recovered values (uncommitted transaction revoked)")
	for j, a := range addrs {
		want := uint64(*txns*100 + j)
		got := pool.ReadUint64(a)
		status := "ok"
		if got != want {
			status = "MISMATCH"
		}
		fmt.Printf("  addr %d = %d (last committed %d) %s\n", a, got, want, status)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "specpmt-inspect:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the recorded events as Chrome trace JSON and prints the
// aggregate metrics.
func writeTrace(tr *specpmt.Tracer, path string) {
	f, err := os.Create(path)
	check(err)
	check(tr.WriteChrome(f))
	check(f.Close())
	fmt.Printf("=== wrote %d trace events to %s (Perfetto / chrome://tracing)\n",
		len(tr.Events()), path)
	fmt.Print(tr.Summary())
}

// inspectHardware drives hardware SpecPMT through a hot/cold mix and dumps
// its epoch machinery before and after a crash.
func inspectHardware(txns int, seed uint64, profile string, tracer *specpmt.Tracer) {
	pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20, Engine: "SpecHPMT", Profile: profile, Tracer: tracer})
	check(err)
	defer pool.Close()
	eng := pool.Engine().(*hwsim.SpecHPMT)

	hot, err := pool.Alloc(4096)
	check(err)
	cold := make([]specpmt.Addr, txns)
	for i := range cold {
		cold[i], err = pool.Alloc(4096)
		check(err)
	}
	fmt.Printf("=== %d transactions: 8 hot stores (one page) + 1 cold store each\n", txns)
	for r := 0; r < txns; r++ {
		tx := pool.Begin()
		for k := 0; k < 8; k++ {
			tx.StoreUint64(hot+specpmt.Addr(k*64), uint64(r))
		}
		tx.StoreUint64(cold[r], uint64(r))
		check(tx.Commit())
	}
	fmt.Println("=== hardware state before crash")
	eng.DumpState(os.Stdout)

	tx := pool.Begin()
	tx.StoreUint64(hot, 999999) // speculative, uncommitted
	check(pool.Crash(seed))
	check(pool.Recover())
	fmt.Println("=== after crash + three-step recovery (§5.1.1)")
	eng2 := pool.Engine().(*hwsim.SpecHPMT)
	eng2.DumpState(os.Stdout)
	fmt.Printf("hot word recovered to %d (last committed %d)\n",
		pool.ReadUint64(hot), txns-1)
}
