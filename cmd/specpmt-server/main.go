// Command specpmt-server serves the SpecPMT transactional key-value store
// over TCP (see internal/server for the wire protocol).
//
// Usage:
//
//	specpmt-server [-addr host:port] [-engine spec|undo|hashlog|...]
//	               [-profile optane-adr|...] [-shards n] [-pool-size bytes]
//	               [-max-batch n] [-batch-window d] [-max-conns n]
//	               [-max-inflight n]
//
// Engine names accept both registry names ("SpecSPMT", "PMDK") and short
// aliases ("spec", "undo"). SIGINT/SIGTERM drain in-flight requests and
// exit 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specpmt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "TCP listen address")
	engine := flag.String("engine", "spec", "crash-consistency engine (name or alias: spec, spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog)")
	profile := flag.String("profile", "", "simulated media profile (default optane-adr)")
	shards := flag.Int("shards", 4, "worker shards (1..16); each owns one engine thread")
	poolSize := flag.Int("pool-size", 256<<20, "persistent pool size in bytes")
	maxBatch := flag.Int("max-batch", 32, "max requests per group commit (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "how long a worker waits to fill a batch")
	maxConns := flag.Int("max-conns", 256, "max concurrent connections")
	maxInFlight := flag.Int("max-inflight", 1024, "max requests admitted to worker queues")
	flag.Parse()

	logger := log.New(os.Stderr, "specpmt-server: ", log.LstdFlags)
	s, err := server.New(server.Config{
		Addr:        *addr,
		Engine:      server.ResolveEngine(*engine),
		Profile:     *profile,
		Shards:      *shards,
		PoolSize:    *poolSize,
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFlight,
		Logf:        logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()

	select {
	case got := <-sig:
		logger.Printf("caught %v, draining", got)
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: shutdown: %v\n", err)
			os.Exit(1)
		}
		<-done // Serve returns nil once Close finishes draining
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
	}
}
