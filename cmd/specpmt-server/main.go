// Command specpmt-server serves the SpecPMT transactional key-value store
// over TCP (see internal/server for the wire protocol).
//
// Usage:
//
//	specpmt-server [-addr host:port] [-engine spec|undo|hashlog|...]
//	               [-profile optane-adr|...] [-shards n] [-pool-size bytes]
//	               [-max-batch n] [-batch-window d] [-max-conns n]
//	               [-max-inflight n] [-pipeline-depth n]
//	               [-proto auto|text|binary]
//	               [-admin host:port] [-log-format text|json] [-log-level l]
//	               [-slow-op d] [-span-buf n]
//	               [-replicate-to host:port] [-repl-sync async|ack]
//	               [-repl-batch-window d] [-repl-log-cap n]
//	               [-replica-of host:port]
//	specpmt-server -promote host:port
//
// Engine names accept both registry names ("SpecSPMT", "PMDK") and short
// aliases ("spec", "undo"). SIGINT/SIGTERM drain in-flight requests and
// exit 0.
//
// Observability (see internal/obs): -admin starts a separate HTTP listener
// exposing Prometheus metrics at /metrics, liveness at /healthz, drain-aware
// readiness at /readyz, a Chrome/Perfetto trace of recent request spans at
// /debug/spans, and the Go profiler under /debug/pprof/. Logs go to stderr
// as structured slog lines (-log-format json for machine ingestion), and
// requests slower than -slow-op are logged with a phase breakdown.
//
// Replication (see internal/repl): -replicate-to makes this server a
// primary publishing its commit log on the given address; -replica-of
// makes it a read-only replica tailing the primary's log at that address.
// -promote is an admin command: it connects to a running replica, sends
// PROMOTE, and exits — the replica detaches and starts serving writes.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specpmt/internal/obs"
	"specpmt/internal/repl"
	"specpmt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "TCP listen address")
	engine := flag.String("engine", "spec", "crash-consistency engine (name or alias: spec, spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog)")
	profile := flag.String("profile", "", "simulated media profile (default optane-adr)")
	shards := flag.Int("shards", 4, "worker shards (1..16); each owns one engine thread")
	poolSize := flag.Int("pool-size", 256<<20, "persistent pool size in bytes")
	maxBatch := flag.Int("max-batch", 32, "max requests per group commit (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "how long a worker waits to fill a batch")
	maxConns := flag.Int("max-conns", 256, "max concurrent connections")
	maxInFlight := flag.Int("max-inflight", 1024, "max requests admitted to worker queues")
	pipelineDepth := flag.Int("pipeline-depth", 1, "speculative group-commit pipeline depth: batches a shard may execute past an unretired commit fence (1 disables pipelining)")
	proto := flag.String("proto", "auto", "accepted wire protocols: auto (both), text, binary")
	adminAddr := flag.String("admin", "", "admin HTTP listen address (/metrics, /healthz, /readyz, /debug/spans, /debug/pprof); empty disables")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	slowOp := flag.Duration("slow-op", 0, "log requests slower than this wall-clock duration with a phase breakdown (0 disables)")
	spanBuf := flag.Int("span-buf", obs.DefaultSpanCap, "live request spans retained for /debug/spans")
	replicateTo := flag.String("replicate-to", "", "publish the commit log for replicas on this address (primary role)")
	replSync := flag.String("repl-sync", "async", "replication sync mode: async | ack (wait for replica acks on commit)")
	replBatchWindow := flag.Duration("repl-batch-window", 0, "how long the primary waits to coalesce records into one shipped batch")
	replLogCap := flag.Int("repl-log-cap", 0, "records retained in the primary's replication log (0 = default)")
	replicaOf := flag.String("replica-of", "", "tail the primary's commit log at this address (read-only replica role)")
	promote := flag.String("promote", "", "admin: send PROMOTE to the replica serving at this address, then exit")
	flag.Parse()

	if *promote != "" {
		c, err := server.Dial(*promote, 5*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		if err := c.Promote(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: promote: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("promoted")
		return
	}
	if *replicateTo != "" && *replicaOf != "" {
		fmt.Fprintln(os.Stderr, "specpmt-server: -replicate-to and -replica-of are mutually exclusive")
		os.Exit(1)
	}
	syncMode, err := repl.ParseSyncMode(*replSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	// One observability plane for every subsystem: the server, the
	// replication role, and the admin endpoint all share its registry,
	// span ring, and logger.
	plane := obs.NewPlane(logger, *slowOp)
	if *spanBuf > 0 {
		plane.Spans = obs.NewSpanRecorder(*spanBuf)
	} else {
		plane.Spans = nil
	}

	s, err := server.New(server.Config{
		Addr:        *addr,
		Engine:      server.ResolveEngine(*engine),
		Profile:     *profile,
		Shards:      *shards,
		PoolSize:    *poolSize,
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFlight,
		Obs:         plane,

		PipelineDepth: *pipelineDepth,
		Proto:         *proto,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}
	// Refuse to serve from a pool whose recovered state violates a
	// recovery invariant: better to fail loudly at startup than to serve
	// (and replicate) corrupt data. The run also feeds the
	// specpmt_recovery_checks metrics family.
	if err := s.SelfCheck(); err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: startup recovery self-check: %v\n", err)
		os.Exit(1)
	}
	logger.Info("startup recovery self-check passed", "engine", server.ResolveEngine(*engine), "shards", *shards)

	var primary *repl.Primary
	var replica *repl.Replica
	switch {
	case *replicateTo != "":
		primary = repl.NewPrimary(s, repl.PrimaryOptions{
			LogCap:      *replLogCap,
			BatchWindow: *replBatchWindow,
			Sync:        syncMode,
			Log:         logger.With("role", "primary"),
			Spans:       plane.Spans,
		})
		if err := primary.Start(*replicateTo); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: replication listener: %v\n", err)
			os.Exit(1)
		}
		logger.Info("primary: publishing commit log",
			"addr", primary.Addr().String(), "sync", syncMode.String())
	case *replicaOf != "":
		replica, err = repl.NewReplica(s, *replicaOf, repl.ReplicaOptions{
			Log:   logger.With("role", "replica"),
			Spans: plane.Spans,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		replica.Start()
		logger.Info("replica: tailing primary (read-only until PROMOTE)", "primary", *replicaOf)
	}

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.AdminOptions{
			Registry: s.Registry(),
			Spans:    plane.Spans,
			Log:      logger,
		})
		if err := admin.Start(*adminAddr); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: admin listener: %v\n", err)
			os.Exit(1)
		}
		admin.SetReady(true)
		logger.Info("admin endpoint serving", "addr", admin.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()

	shutdown := func() {
		// Drain ordering: readiness flips first so load balancers stop
		// routing here, then the replication role detaches, then the data
		// listener drains. The admin listener closes last — /metrics and
		// /debug/spans stay scrapeable through the whole drain.
		if admin != nil {
			admin.BeginDrain()
		}
		if replica != nil {
			replica.Close()
		}
		if primary != nil {
			primary.Close()
		}
	}
	closeAdmin := func() {
		if admin != nil {
			admin.Close()
		}
	}
	select {
	case got := <-sig:
		logger.Info("caught signal, draining", "signal", got.String())
		shutdown()
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: shutdown: %v\n", err)
			closeAdmin()
			os.Exit(1)
		}
		<-done // Serve returns nil once Close finishes draining
		closeAdmin()
	case err := <-done:
		shutdown()
		closeAdmin()
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}
