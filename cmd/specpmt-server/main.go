// Command specpmt-server serves the SpecPMT transactional key-value store
// over TCP (see internal/server for the wire protocol).
//
// Usage:
//
//	specpmt-server [-addr host:port] [-engine spec|undo|hashlog|...]
//	               [-profile optane-adr|...] [-shards n] [-pool-size bytes]
//	               [-max-batch n] [-batch-window d] [-max-conns n]
//	               [-max-inflight n] [-pipeline-depth n]
//	               [-proto auto|text|binary]
//	               [-admin host:port] [-log-format text|json] [-log-level l]
//	               [-slow-op d] [-span-buf n]
//	               [-replicate-to host:port] [-repl-sync async|ack]
//	               [-repl-batch-window d] [-repl-log-cap n]
//	               [-replica-of host:port]
//	               [-compact-every d] [-compact-frag-pct n]
//	               [-cluster | -join host:port] [-advertise host:port]
//	specpmt-server -promote host:port
//	specpmt-server -migrate shard -to host:port -seed host:port
//	specpmt-server -failover host:port -to host:port -seed host:port
//
// Engine names accept both registry names ("SpecSPMT", "PMDK") and short
// aliases ("spec", "undo"). SIGINT/SIGTERM drain in-flight requests and
// exit 0.
//
// Observability (see internal/obs): -admin starts a separate HTTP listener
// exposing Prometheus metrics at /metrics, liveness at /healthz, drain-aware
// readiness at /readyz, a Chrome/Perfetto trace of recent request spans at
// /debug/spans, and the Go profiler under /debug/pprof/. Logs go to stderr
// as structured slog lines (-log-format json for machine ingestion), and
// requests slower than -slow-op are logged with a phase breakdown.
//
// Replication (see internal/repl): -replicate-to makes this server a
// primary publishing its commit log on the given address; -replica-of
// makes it a read-only replica tailing the primary's log at that address.
// -promote is an admin command: it connects to a running replica, sends
// PROMOTE, and exits — the replica detaches and starts serving writes.
//
// Clustering (see internal/cluster): -cluster bootstraps a fresh
// single-node cluster map owning every shard; -join fetches the map from an
// existing node instead. -advertise is the data address other nodes and
// clients should dial for this node (defaults to -addr; set it when -addr
// binds a wildcard). A node that should serve as a migration source or host
// promotable replicas also needs -replicate-to, which becomes its
// advertised replication address. -migrate and -failover are coordinator
// admin commands: -migrate moves one shard to the node at -to, -failover
// retires a dead node in favor of its promoted replica at -to; both read
// the current map via -seed, drive the cutover, push the bumped map to
// every node, and exit.
//
// -compact-every enables the background heap compactor: every tick, if the
// data heap's footprint exceeds -compact-frag-pct percent of its live
// bytes and no request is in flight, the server compacts under a freeze
// (see specpmt_compactions_total / specpmt_compact_freed_bytes_total).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specpmt/internal/cluster"
	"specpmt/internal/obs"
	"specpmt/internal/repl"
	"specpmt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "TCP listen address")
	engine := flag.String("engine", "spec", "crash-consistency engine (name or alias: spec, spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog)")
	profile := flag.String("profile", "", "simulated media profile (default optane-adr)")
	shards := flag.Int("shards", 4, "worker shards (1..16); each owns one engine thread")
	poolSize := flag.Int("pool-size", 256<<20, "persistent pool size in bytes")
	maxBatch := flag.Int("max-batch", 32, "max requests per group commit (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "how long a worker waits to fill a batch")
	maxConns := flag.Int("max-conns", 256, "max concurrent connections")
	maxInFlight := flag.Int("max-inflight", 1024, "max requests admitted to worker queues")
	pipelineDepth := flag.Int("pipeline-depth", 1, "speculative group-commit pipeline depth: batches a shard may execute past an unretired commit fence (1 disables pipelining)")
	mvccOn := flag.Bool("mvcc", true, "serve GETs and read-only MULTIs lock-free from MVCC snapshots instead of the worker queues")
	proto := flag.String("proto", "auto", "accepted wire protocols: auto (both), text, binary")
	adminAddr := flag.String("admin", "", "admin HTTP listen address (/metrics, /healthz, /readyz, /debug/spans, /debug/pprof); empty disables")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	slowOp := flag.Duration("slow-op", 0, "log requests slower than this wall-clock duration with a phase breakdown (0 disables)")
	spanBuf := flag.Int("span-buf", obs.DefaultSpanCap, "live request spans retained for /debug/spans")
	replicateTo := flag.String("replicate-to", "", "publish the commit log for replicas on this address (primary role)")
	replSync := flag.String("repl-sync", "async", "replication sync mode: async | ack (wait for replica acks on commit)")
	replBatchWindow := flag.Duration("repl-batch-window", 0, "how long the primary waits to coalesce records into one shipped batch")
	replLogCap := flag.Int("repl-log-cap", 0, "records retained in the primary's replication log (0 = default)")
	replicaOf := flag.String("replica-of", "", "tail the primary's commit log at this address (read-only replica role)")
	promote := flag.String("promote", "", "admin: send PROMOTE to the replica serving at this address, then exit")
	compactEvery := flag.Duration("compact-every", 0, "background heap-compactor tick; compacts when idle and fragmented past -compact-frag-pct (0 disables)")
	compactFragPct := flag.Int("compact-frag-pct", 0, "compaction fragmentation threshold: compact when footprint exceeds this percent of live bytes (0 = default 150)")
	clusterMode := flag.Bool("cluster", false, "bootstrap a single-node cluster map owning every shard (grow it with -migrate)")
	join := flag.String("join", "", "join the cluster by fetching the map from this node's data address")
	advertise := flag.String("advertise", "", "data address other nodes and clients dial for this node (default -addr)")
	migrateShard := flag.Int("migrate", -1, "admin: migrate this shard to the node at -to, via the map at -seed, then exit")
	failoverAddr := flag.String("failover", "", "admin: fail over the dead node at this data address to its replica at -to, via the map at -seed, then exit")
	to := flag.String("to", "", "destination data address for -migrate / -failover")
	seed := flag.String("seed", "", "data address of a live cluster node to read the map from (-migrate / -failover)")
	flag.Parse()

	if *promote != "" {
		c, err := server.Dial(*promote, 5*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		if err := c.Promote(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: promote: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("promoted")
		return
	}
	if *replicateTo != "" && *replicaOf != "" {
		fmt.Fprintln(os.Stderr, "specpmt-server: -replicate-to and -replica-of are mutually exclusive")
		os.Exit(1)
	}
	syncMode, err := repl.ParseSyncMode(*replSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	// Coordinator admin commands: drive the cutover against running nodes,
	// print the resulting map epoch, and exit without serving anything.
	if *migrateShard >= 0 || *failoverAddr != "" {
		if *to == "" || *seed == "" {
			fmt.Fprintln(os.Stderr, "specpmt-server: -migrate / -failover need -to and -seed")
			os.Exit(1)
		}
		var m *cluster.Map
		if *migrateShard >= 0 {
			m, err = cluster.Migrate(*migrateShard, *to, *seed, logger.With("role", "coordinator"))
		} else {
			m, err = cluster.Failover(*failoverAddr, *to, *seed, logger.With("role", "coordinator"))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("epoch %d\n", m.Epoch)
		return
	}
	if *clusterMode && *join != "" {
		fmt.Fprintln(os.Stderr, "specpmt-server: -cluster and -join are mutually exclusive")
		os.Exit(1)
	}

	// One observability plane for every subsystem: the server, the
	// replication role, and the admin endpoint all share its registry,
	// span ring, and logger.
	plane := obs.NewPlane(logger, *slowOp)
	if *spanBuf > 0 {
		plane.Spans = obs.NewSpanRecorder(*spanBuf)
	} else {
		plane.Spans = nil
	}

	s, err := server.New(server.Config{
		Addr:        *addr,
		Engine:      server.ResolveEngine(*engine),
		Profile:     *profile,
		Shards:      *shards,
		PoolSize:    *poolSize,
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFlight,
		Obs:         plane,

		PipelineDepth:  *pipelineDepth,
		NoMVCC:         !*mvccOn,
		Proto:          *proto,
		CompactEvery:   *compactEvery,
		CompactFragPct: *compactFragPct,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}
	// Refuse to serve from a pool whose recovered state violates a
	// recovery invariant: better to fail loudly at startup than to serve
	// (and replicate) corrupt data. The run also feeds the
	// specpmt_recovery_checks metrics family.
	if err := s.SelfCheck(); err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: startup recovery self-check: %v\n", err)
		os.Exit(1)
	}
	logger.Info("startup recovery self-check passed", "engine", server.ResolveEngine(*engine), "shards", *shards)

	var primary *repl.Primary
	var replica *repl.Replica
	switch {
	case *replicateTo != "":
		primary = repl.NewPrimary(s, repl.PrimaryOptions{
			LogCap:      *replLogCap,
			BatchWindow: *replBatchWindow,
			Sync:        syncMode,
			Log:         logger.With("role", "primary"),
			Spans:       plane.Spans,
		})
		if err := primary.Start(*replicateTo); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: replication listener: %v\n", err)
			os.Exit(1)
		}
		logger.Info("primary: publishing commit log",
			"addr", primary.Addr().String(), "sync", syncMode.String())
	case *replicaOf != "":
		replica, err = repl.NewReplica(s, *replicaOf, repl.ReplicaOptions{
			Log:   logger.With("role", "replica"),
			Spans: plane.Spans,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		replica.Start()
		logger.Info("replica: tailing primary (read-only until PROMOTE)", "primary", *replicaOf)
	}

	// Cluster role: install the cluster extension verbs and either mint a
	// fresh single-node map (-cluster) or adopt an existing one (-join).
	// The node's advertised replication address is -replicate-to — a node
	// without one can still own shards but cannot serve as a migration
	// source or host promotable replicas.
	var node *cluster.Node
	if *clusterMode || *join != "" {
		adv := *advertise
		if adv == "" {
			adv = *addr
		}
		node = cluster.NewNode(s, primary, cluster.Addr{Data: adv, Repl: *replicateTo}, cluster.NodeOptions{
			Log: logger.With("role", "cluster"),
			Rec: plane.Spans,
		})
		if *join != "" {
			if err := node.Join(*join); err != nil {
				fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
				os.Exit(1)
			}
			logger.Info("cluster: joined", "seed", *join, "advertise", adv)
		} else {
			node.Bootstrap()
			logger.Info("cluster: bootstrapped single-node map", "shards", *shards, "advertise", adv)
		}
	}

	var admin *obs.Admin
	if *adminAddr != "" {
		admin = obs.NewAdmin(obs.AdminOptions{
			Registry: s.Registry(),
			Spans:    plane.Spans,
			Log:      logger,
		})
		if err := admin.Start(*adminAddr); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: admin listener: %v\n", err)
			os.Exit(1)
		}
		admin.SetReady(true)
		logger.Info("admin endpoint serving", "addr", admin.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()

	shutdown := func() {
		// Drain ordering: readiness flips first so load balancers stop
		// routing here, then the replication role detaches, then the data
		// listener drains. The admin listener closes last — /metrics and
		// /debug/spans stay scrapeable through the whole drain.
		if admin != nil {
			admin.BeginDrain()
		}
		if node != nil {
			node.Close() // stop migration pullers before the roles detach
		}
		if replica != nil {
			replica.Close()
		}
		if primary != nil {
			primary.Close()
		}
	}
	closeAdmin := func() {
		if admin != nil {
			admin.Close()
		}
	}
	select {
	case got := <-sig:
		logger.Info("caught signal, draining", "signal", got.String())
		shutdown()
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: shutdown: %v\n", err)
			closeAdmin()
			os.Exit(1)
		}
		<-done // Serve returns nil once Close finishes draining
		closeAdmin()
	case err := <-done:
		shutdown()
		closeAdmin()
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}
