// Command specpmt-server serves the SpecPMT transactional key-value store
// over TCP (see internal/server for the wire protocol).
//
// Usage:
//
//	specpmt-server [-addr host:port] [-engine spec|undo|hashlog|...]
//	               [-profile optane-adr|...] [-shards n] [-pool-size bytes]
//	               [-max-batch n] [-batch-window d] [-max-conns n]
//	               [-max-inflight n]
//	               [-replicate-to host:port] [-repl-sync async|ack]
//	               [-repl-batch-window d] [-repl-log-cap n]
//	               [-replica-of host:port]
//	specpmt-server -promote host:port
//
// Engine names accept both registry names ("SpecSPMT", "PMDK") and short
// aliases ("spec", "undo"). SIGINT/SIGTERM drain in-flight requests and
// exit 0.
//
// Replication (see internal/repl): -replicate-to makes this server a
// primary publishing its commit log on the given address; -replica-of
// makes it a read-only replica tailing the primary's log at that address.
// -promote is an admin command: it connects to a running replica, sends
// PROMOTE, and exits — the replica detaches and starts serving writes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specpmt/internal/repl"
	"specpmt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "TCP listen address")
	engine := flag.String("engine", "spec", "crash-consistency engine (name or alias: spec, spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog)")
	profile := flag.String("profile", "", "simulated media profile (default optane-adr)")
	shards := flag.Int("shards", 4, "worker shards (1..16); each owns one engine thread")
	poolSize := flag.Int("pool-size", 256<<20, "persistent pool size in bytes")
	maxBatch := flag.Int("max-batch", 32, "max requests per group commit (<=1 disables batching)")
	batchWindow := flag.Duration("batch-window", 200*time.Microsecond, "how long a worker waits to fill a batch")
	maxConns := flag.Int("max-conns", 256, "max concurrent connections")
	maxInFlight := flag.Int("max-inflight", 1024, "max requests admitted to worker queues")
	replicateTo := flag.String("replicate-to", "", "publish the commit log for replicas on this address (primary role)")
	replSync := flag.String("repl-sync", "async", "replication sync mode: async | ack (wait for replica acks on commit)")
	replBatchWindow := flag.Duration("repl-batch-window", 0, "how long the primary waits to coalesce records into one shipped batch")
	replLogCap := flag.Int("repl-log-cap", 0, "records retained in the primary's replication log (0 = default)")
	replicaOf := flag.String("replica-of", "", "tail the primary's commit log at this address (read-only replica role)")
	promote := flag.String("promote", "", "admin: send PROMOTE to the replica serving at this address, then exit")
	flag.Parse()

	if *promote != "" {
		c, err := server.Dial(*promote, 5*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		defer c.Close()
		if err := c.Promote(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: promote: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("promoted")
		return
	}
	if *replicateTo != "" && *replicaOf != "" {
		fmt.Fprintln(os.Stderr, "specpmt-server: -replicate-to and -replica-of are mutually exclusive")
		os.Exit(1)
	}
	syncMode, err := repl.ParseSyncMode(*replSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	logger := log.New(os.Stderr, "specpmt-server: ", log.LstdFlags)
	s, err := server.New(server.Config{
		Addr:        *addr,
		Engine:      server.ResolveEngine(*engine),
		Profile:     *profile,
		Shards:      *shards,
		PoolSize:    *poolSize,
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFlight,
		Logf:        logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
		os.Exit(1)
	}

	var primary *repl.Primary
	var replica *repl.Replica
	switch {
	case *replicateTo != "":
		primary = repl.NewPrimary(s, repl.PrimaryOptions{
			LogCap:      *replLogCap,
			BatchWindow: *replBatchWindow,
			Sync:        syncMode,
			Logf:        logger.Printf,
		})
		if err := primary.Start(*replicateTo); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: replication listener: %v\n", err)
			os.Exit(1)
		}
		logger.Printf("primary: publishing commit log on %s (sync=%s)", primary.Addr(), syncMode)
	case *replicaOf != "":
		replica, err = repl.NewReplica(s, *replicaOf, repl.ReplicaOptions{Logf: logger.Printf})
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
		replica.Start()
		logger.Printf("replica: tailing %s (read-only until PROMOTE)", *replicaOf)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()

	shutdown := func() {
		if replica != nil {
			replica.Close()
		}
		if primary != nil {
			primary.Close()
		}
	}
	select {
	case got := <-sig:
		logger.Printf("caught %v, draining", got)
		shutdown()
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: shutdown: %v\n", err)
			os.Exit(1)
		}
		<-done // Serve returns nil once Close finishes draining
	case err := <-done:
		shutdown()
		if err != nil {
			fmt.Fprintf(os.Stderr, "specpmt-server: %v\n", err)
			os.Exit(1)
		}
	}
}
