// Package specpmt is a Go reproduction of "SpecPMT: Speculative Logging for
// Resolving Crash Consistency Overhead of Persistent Memory" (Ye et al.,
// ASPLOS 2023).
//
// It provides speculatively persistent memory transactions — crash-atomic
// updates that log the NEW value of each datum during the transaction and
// persist the whole log record with a single fence at commit, eliminating
// both the per-update persist barriers of undo logging and the commit-path
// data persistence — together with the baselines the paper compares against
// (PMDK-style undo logging, Kamino-Tx, SPHT) and the hardware designs of §5
// (EDE, HOOP, SpecHPMT) on a simulated persistent memory device.
//
// # Quick start
//
//	pool, err := specpmt.Open(specpmt.Config{})   // SpecSPMT engine
//	defer pool.Close()
//	addr, _ := pool.Alloc(64)
//	tx := pool.Begin()
//	tx.StoreUint64(addr, 42)
//	tx.Commit()                                   // one fence, durable
//
//	pool.Crash(1)                                 // simulated power failure
//	pool.Recover()
//	v := pool.ReadUint64(addr)                    // 42
//
// The device is a simulation (this repository targets reproducibility, not
// production storage): it models CLWB/SFENCE semantics, an ADR persistence
// domain with a write pending queue, Optane-like latencies, and power
// failures with partial cache eviction. Every engine passes the same
// crash-consistency conformance battery under randomized crash points.
package specpmt

import (
	"errors"
	"fmt"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/stats"
	"specpmt/internal/trace"
	"specpmt/internal/txn"

	// Register all engines.
	_ "specpmt/internal/hwsim"
	_ "specpmt/internal/txn/kamino"
	"specpmt/internal/txn/spec"
	_ "specpmt/internal/txn/spht"
	_ "specpmt/internal/txn/undo"
)

// Tx is one open transaction: transactional loads and stores followed by
// Commit (crash-atomic, durable) or Abort.
type Tx = txn.Tx

// DeferredCommitTx is a transaction that can commit speculatively with
// CommitNoFence, deferring the ordering fence to a later Thread.Fence on
// the same thread. Type-assert a Tx to probe support.
type DeferredCommitTx = txn.DeferredCommitTx

// Addr is a byte offset in the persistent pool.
type Addr = pmem.Addr

// Engines lists every registered crash-consistency engine.
func Engines() []string { return txn.Engines() }

// Tracer records typed simulation events (transactions, log appends, flush
// and fence stalls, WPQ drains, reclamation, crash/recovery) keyed to the
// virtual clock, and aggregates them into histograms and time series. A nil
// Tracer disables tracing at zero modeled-time cost.
type Tracer = trace.Tracer

// Metrics is the aggregate view a Tracer maintains alongside its event
// buffer: fence-stall / commit-latency / record-size histograms plus WPQ
// depth and live-log-bytes time series.
type Metrics = trace.Metrics

// NewTracer creates an enabled event tracer for Config.Tracer.
func NewTracer() *Tracer { return trace.New() }

// Counters is the structured counter snapshot type returned by
// Pool.Counters.
type Counters = stats.Counters

// Config parameterises Open.
type Config struct {
	// Size is the pool size in bytes (default 64 MiB). A quarter holds
	// application data; the rest holds engine logs.
	Size int
	// Engine picks the crash-consistency scheme (default "SpecSPMT"). See
	// Engines for choices.
	Engine string
	// Profile names the media profile (latency tables, persistence domain,
	// WPQ geometry) the simulated device is built from — see
	// sim.ProfileNames for the built-ins ("optane-adr", "optane-eadr",
	// "cxl-pm", "dram-adr", "slow-nvm"). Empty selects the default,
	// optane-adr, which reproduces the paper's platform.
	Profile string
	// Optane selects the profile's software-platform latency column instead
	// of the paper's Table 1 simulator column.
	Optane bool
	// SpecOptions overrides the SpecSPMT engine configuration; ignored for
	// other engines.
	SpecOptions *spec.Options
	// Tracer, when non-nil, receives every simulation event the pool's
	// device and engine emit (see NewTracer). Leave nil to run untraced;
	// modeled time is bit-identical either way.
	Tracer *Tracer
}

// resolveProfile maps Config's media-profile knobs to a sim.Profile plus the
// latency column (platform) to run it on. Unknown names are an error rather
// than a silent fallback.
func resolveProfile(cfg Config) (sim.Profile, sim.Platform, error) {
	prof := sim.DefaultProfile()
	if cfg.Profile != "" {
		p, ok := sim.ProfileByName(cfg.Profile)
		if !ok {
			return sim.Profile{}, 0, fmt.Errorf("specpmt: unknown media profile %q (have %v)", cfg.Profile, sim.ProfileNames())
		}
		prof = p
	}
	pl := sim.PlatformHW
	if cfg.Optane {
		pl = sim.PlatformSW
	}
	return prof, pl, nil
}

// RootSlots is the number of uint64 application root slots in a pool.
const RootSlots = 16

// Pool is an open persistent memory pool with one transaction engine.
type Pool struct {
	dev    *pmem.Device
	core   *pmem.Core
	heap   *pmalloc.Heap
	logs   *pmalloc.Heap
	engine txn.Engine
	cfg    Config
	env    txn.Env
	ts     *txn.Timestamp
	// accumulated across crashes (each crash resets cores)
	accumNs    int64
	accumStats stats.Counters
}

const (
	engineRootOff = 0 // engine root: txn.RootSize bytes
	appRootsOff   = pmem.Addr(txn.RootSize)
)

// Open creates a pool over a fresh simulated device.
func Open(cfg Config) (*Pool, error) {
	if cfg.Size == 0 {
		cfg.Size = 64 << 20
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	prof, pl, err := resolveProfile(cfg)
	if err != nil {
		return nil, err
	}
	dev := pmem.NewDevice(pmem.Config{Size: cfg.Size, Profile: prof, Platform: pl})
	if cfg.Tracer != nil {
		dev.SetTracer(cfg.Tracer)
	}
	p := &Pool{dev: dev, cfg: cfg, ts: &txn.Timestamp{}}
	return p, p.attach()
}

// attach builds the volatile state over the device (initial open and after
// Crash).
func (p *Pool) attach() error {
	p.core = p.dev.NewCore()
	p.core.SetTrackName("app")
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := pmem.Addr(p.cfg.Size / 4)
	// Allocator metadata persists on dedicated cores so its barriers never
	// stall application or engine cores.
	heapCore := p.dev.NewCore()
	heapCore.SetTrackName("alloc.data")
	logCore := p.dev.NewCore()
	logCore.SetTrackName("alloc.log")
	if p.heap == nil {
		var err error
		if p.heap, err = pmalloc.OpenLogged(heapCore, dataStart, dataEnd); err != nil {
			return fmt.Errorf("specpmt: data heap: %w", err)
		}
		if p.logs, err = pmalloc.OpenLogged(logCore, dataEnd, pmem.Addr(p.cfg.Size)); err != nil {
			return fmt.Errorf("specpmt: log heap: %w", err)
		}
		if p.cfg.Tracer != nil {
			// Closure, not a bound method value: p.core is replaced on Crash.
			now := func() int64 { return p.core.Now() }
			p.heap.SetTracer(p.cfg.Tracer, "heap.data", now)
			p.logs.SetTracer(p.cfg.Tracer, "heap.log", now)
		}
	} else {
		// Post-crash: replay the allocator redo logs over the last
		// checkpoints. Divergence from the pre-crash allocation map is
		// latched in RecoveryError for the recovery checkers.
		if err := p.heap.Reattach(heapCore); err != nil {
			return fmt.Errorf("specpmt: data heap recovery: %w", err)
		}
		if err := p.logs.Reattach(logCore); err != nil {
			return fmt.Errorf("specpmt: log heap recovery: %w", err)
		}
	}
	p.env = txn.Env{
		Dev:     p.dev,
		Core:    p.core,
		Heap:    p.heap,
		LogHeap: p.logs,
		Root:    engineRootOff,
		TS:      p.ts,
	}
	var err error
	if p.cfg.SpecOptions != nil && (p.cfg.Engine == "SpecSPMT" || p.cfg.Engine == "SpecSPMT-DP") {
		o := *p.cfg.SpecOptions
		o.DataPersist = p.cfg.Engine == "SpecSPMT-DP"
		p.engine, err = spec.New(p.env, o)
	} else {
		p.engine, err = txn.New(p.cfg.Engine, p.env)
	}
	if err != nil {
		return fmt.Errorf("specpmt: opening engine %q: %w", p.cfg.Engine, err)
	}
	return nil
}

// Engine returns the underlying engine (for engine-specific APIs such as
// spec.Engine.ReclaimNow).
func (p *Pool) Engine() txn.Engine { return p.engine }

// Begin opens a transaction.
func (p *Pool) Begin() Tx { return p.engine.Begin() }

// Alloc returns a line-aligned persistent region of n bytes. Allocator
// metadata is crash consistent (span-based logged allocation): the block is
// durably recorded before Alloc returns, and survives Crash+Recover. Data
// reachability is still the application's job — persistent structures must
// be reachable from a root slot.
func (p *Pool) Alloc(n int) (Addr, error) { return p.heap.Alloc(n) }

// Free returns a region of n bytes to the allocator.
func (p *Pool) Free(a Addr, n int) { p.heap.Free(a, n) }

// DataHeap returns the pool's data-area allocator (for recovery checkers
// and fragmentation inspection).
func (p *Pool) DataHeap() *pmalloc.Heap { return p.heap }

// LogHeap returns the pool's log-area allocator.
func (p *Pool) LogHeap() *pmalloc.Heap { return p.logs }

// Device returns the pool's simulated device, for fault-injection tests
// that corrupt persisted bytes directly (PokePersisted) and for recovery
// checkers that read the persistence-domain image.
func (p *Pool) Device() *pmem.Device { return p.dev }

// SetRoot durably stores a pool root pointer in slot i — the well-known
// location from which applications rediscover their data after a crash.
// Call it inside no transaction; the write is persisted immediately.
func (p *Pool) SetRoot(i int, v uint64) error {
	if i < 0 || i >= RootSlots {
		return errors.New("specpmt: root slot out of range")
	}
	at := appRootsOff + pmem.Addr(i*8)
	p.core.StoreUint64(at, v)
	p.core.PersistBarrier(at, 8, pmem.KindData)
	return nil
}

// Root reads pool root slot i.
func (p *Pool) Root(i int) uint64 {
	if i < 0 || i >= RootSlots {
		return 0
	}
	return p.core.LoadUint64(appRootsOff + pmem.Addr(i*8))
}

// ReadUint64 performs a non-transactional read (committed data only has a
// defined value after Recover or between transactions).
func (p *Pool) ReadUint64(a Addr) uint64 { return p.core.LoadUint64(a) }

// Read copies len(buf) bytes at a into buf, non-transactionally.
func (p *Pool) Read(a Addr, buf []byte) { p.core.Load(a, buf) }

// Crash simulates a power failure: volatile caches are lost, each dirty
// line survives with the device's eviction probability (seeded by seed),
// and all engine state must be rebuilt. Call Recover before the next
// transaction.
func (p *Pool) Crash(seed uint64) error {
	if err := p.engine.Close(); err != nil {
		return err
	}
	p.accumNs += p.engineNow()
	p.accumStats.Merge(p.core.Stats)
	p.dev.Crash(sim.NewRand(seed))
	return p.attach()
}

// engineNow reads the clock of whichever core the engine runs on: the pool
// core for software engines, the engine's own CPU core for the hardware
// models.
func (p *Pool) engineNow() int64 {
	if mt, ok := p.engine.(interface{ CoreNow() int64 }); ok {
		return mt.CoreNow()
	}
	return p.core.Now()
}

// Recover runs the engine's post-crash recovery, restoring exactly the
// committed transaction history.
func (p *Pool) Recover() error { return p.engine.Recover() }

// ModeledTime returns the pool's cumulative virtual time in nanoseconds —
// the simulation's performance metric — including time before crashes.
func (p *Pool) ModeledTime() int64 { return p.accumNs + p.engineNow() }

// Counters returns a structured snapshot of the pool's cumulative counters,
// including those accumulated before crashes.
func (p *Pool) Counters() Counters {
	s := p.accumStats
	s.Merge(p.core.Stats)
	return s
}

// Stats returns a formatted snapshot of the pool's cumulative counters.
func (p *Pool) Stats() string {
	s := p.Counters()
	return s.String()
}

// Metrics returns a snapshot of the aggregate trace metrics (histograms and
// time series). The zero Metrics is returned when no Tracer is configured.
func (p *Pool) Metrics() Metrics {
	if p.cfg.Tracer == nil {
		return Metrics{}
	}
	return p.cfg.Tracer.Metrics()
}

// Tracer returns the tracer the pool was opened with (nil when untraced).
func (p *Pool) Tracer() *Tracer { return p.cfg.Tracer }

// Close shuts the engine down.
func (p *Pool) Close() error { return p.engine.Close() }

// SwitchEngine migrates the pool from the SpecPMT engine to another crash
// consistency mechanism (§4.3.1): the speculative engine is sealed — its
// covered data flushed with one barrier and its log retired — and the new
// engine initialises at the same root. Only pools currently running
// "SpecSPMT" or "SpecSPMT-DP" can switch (other engines have no documented
// transition protocol in the paper).
func (p *Pool) SwitchEngine(engine string) error {
	se, ok := p.engine.(*spec.Engine)
	if !ok {
		return fmt.Errorf("specpmt: SwitchEngine from %q is not supported", p.cfg.Engine)
	}
	if err := se.Seal(); err != nil {
		return err
	}
	p.cfg.Engine = engine
	var err error
	if p.cfg.SpecOptions != nil && (engine == "SpecSPMT" || engine == "SpecSPMT-DP") {
		o := *p.cfg.SpecOptions
		o.DataPersist = engine == "SpecSPMT-DP"
		p.engine, err = spec.New(p.env, o)
	} else {
		p.engine, err = txn.New(engine, p.env)
	}
	if err != nil {
		return fmt.Errorf("specpmt: switching to %q: %w", engine, err)
	}
	return nil
}
