package hashmap

import "specpmt"

// Relocate is the map's contribution to a pmalloc.Compact mover: if old is
// one of the map's heap blocks it copies the live contents into the
// already-allocated destination, repoints the single reference that made the
// block reachable, and reports owned=true — all crash-consistently. The map
// owns exactly three kinds of block:
//
//   - the meta block, published through the pool root slot: the six meta
//     words are copied in one transaction, then the root slot is repointed
//     (an 8-byte durable store). A crash between the two leaves the root on
//     the still-allocated old block and leaks the new one — safe, since the
//     recovery checkers require reachable ⊆ allocated, not equality.
//   - either hash table, referenced by one meta word: the slots are copied
//     into the unpublished destination in chunked transactions (a crash
//     mid-copy leaks only the unreachable destination), and a final
//     transaction swings the meta pointer.
//   - a just-retired old table awaiting ReleaseRetired: its contents are
//     dead, so nothing is copied — only the volatile handle moves.
//
// Relocate must run quiesced (no transaction touching the map in flight),
// which pmalloc.Compact callers provide by freezing mutators first. err is
// non-nil only for a failed copy, in which case the caller should abort the
// compaction (return false from the mover).
func (m *Map) Relocate(old, new specpmt.Addr) (owned bool, err error) {
	switch {
	case old == m.meta:
		tx := m.pool.Begin()
		for off := specpmt.Addr(0); off < metaSize; off += 8 {
			tx.StoreUint64(new+off, tx.LoadUint64(old+off))
		}
		if err := tx.Commit(); err != nil {
			return true, err
		}
		if err := m.pool.SetRoot(m.slot, uint64(new)); err != nil {
			return true, err
		}
		m.meta = new
		return true, nil
	case old == specpmt.Addr(m.pool.ReadUint64(m.meta+metaTable)):
		return true, m.moveTable(old, new, m.pool.ReadUint64(m.meta+metaCap), metaTable)
	case old != 0 && old == specpmt.Addr(m.pool.ReadUint64(m.meta+metaOld)):
		return true, m.moveTable(old, new, m.pool.ReadUint64(m.meta+metaOldCap), metaOld)
	case m.retired.bytes != 0 && old == m.retired.addr:
		m.retired.addr = new
		return true, nil
	}
	return false, nil
}

// moveTable copies a table's slots into the unpublished destination in
// chunked transactions, then repoints the referencing meta word in a final
// one. The destination is unreachable until that last commit, so a crash at
// any earlier point changes nothing the map can observe.
func (m *Map) moveTable(old, new specpmt.Addr, capacity uint64, ptrOff specpmt.Addr) error {
	words := capacity * slotSize / 8
	const chunk = 256
	for i := uint64(0); i < words; i += chunk {
		tx := m.pool.Begin()
		for j := i; j < i+chunk && j < words; j++ {
			at := specpmt.Addr(j * 8)
			tx.StoreUint64(new+at, tx.LoadUint64(old+at))
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	tx := m.pool.Begin()
	tx.StoreUint64(m.meta+ptrOff, uint64(new))
	return tx.Commit()
}
