package hashmap

import (
	"testing"

	"specpmt"
)

// TestRelocateBlocks drives the three relocation cases directly — meta
// block, current table, and (mid-migration) old table — the way
// pmalloc.Compact would: allocate a destination, Relocate, free the source.
func TestRelocateBlocks(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	oracle := map[uint64]uint64{}
	// 49 keys crosses the 3/4 load factor of the initial 64-slot table, so
	// the next mutation starts an incremental migration we can relocate
	// under.
	for k := uint64(0); k < 49; k++ {
		if err := m.Put(k, k*7+1); err != nil {
			t.Fatal(err)
		}
		oracle[k] = k*7 + 1
	}

	relocate := func(label string, old specpmt.Addr, size int) {
		t.Helper()
		dst, err := pool.Alloc(size)
		if err != nil {
			t.Fatalf("%s: alloc: %v", label, err)
		}
		owned, err := m.Relocate(old, dst)
		if !owned || err != nil {
			t.Fatalf("%s: Relocate=%v,%v", label, owned, err)
		}
		pool.Free(old, size)
	}

	relocate("meta", m.meta, metaSize)
	if got := specpmt.Addr(pool.Root(0)); got != m.meta {
		t.Fatalf("root slot not repointed: %d != %d", got, m.meta)
	}

	cur := specpmt.Addr(pool.ReadUint64(m.meta + metaTable))
	capacity := pool.ReadUint64(m.meta + metaCap)
	relocate("table", cur, int(capacity*slotSize))

	if !m.Migrating() {
		t.Fatal("expected an in-flight migration")
	}
	old := specpmt.Addr(pool.ReadUint64(m.meta + metaOld))
	oldCap := pool.ReadUint64(m.meta + metaOldCap)
	relocate("old table", old, int(oldCap*slotSize))

	// A block the map does not own must not be claimed.
	stray, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if owned, _ := m.Relocate(stray, stray); owned {
		t.Fatal("claimed a foreign block")
	}
	pool.Free(stray, 64)

	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("Get(%d)=%d,%v want %d", k, v, ok, want)
		}
	}
	// The map stays fully mutable after its blocks moved.
	for k := uint64(100); k < 160; k++ {
		if err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
		oracle[k] = k
	}
	if _, err := m.Delete(3); err != nil {
		t.Fatal(err)
	}
	delete(oracle, 3)

	// Everything above must hold across a power failure: the relocations
	// were committed transactions plus atomic root/meta repoints.
	if err := pool.Crash(42); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckRecovered(oracle); err != nil {
		t.Fatal(err)
	}
}

// TestCompactWithMap runs a real pmalloc.Compact pass over a fragmented heap
// holding both the map's blocks and test-owned filler blocks, with a mover
// that dispatches to Map.Relocate first.
func TestCompactWithMap(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	oracle := map[uint64]uint64{}
	for k := uint64(0); k < 300; k++ {
		if err := m.Put(k, k^0xbeef); err != nil {
			t.Fatal(err)
		}
		oracle[k] = k ^ 0xbeef
	}

	// Fragment: fill several spans of one class with stamped filler blocks,
	// then free alternate blocks so every span is half empty — compaction
	// can consolidate them and retire spans.
	const fillerSize = 2048
	fillers := map[specpmt.Addr]uint64{}
	var addrs []specpmt.Addr
	for i := 0; i < 256; i++ {
		a, err := pool.Alloc(fillerSize)
		if err != nil {
			t.Fatal(err)
		}
		stamp := 0xf00d0000 + uint64(i)
		tx := pool.Begin()
		tx.StoreUint64(a, stamp)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		fillers[a] = stamp
		addrs = append(addrs, a)
	}
	for i, a := range addrs {
		if i%2 == 0 {
			pool.Free(a, fillerSize)
			delete(fillers, a)
		}
	}

	h := pool.DataHeap()
	before := h.Footprint()
	moved := h.Compact(func(old, new specpmt.Addr, n int) bool {
		if owned, err := m.Relocate(old, new); owned {
			if err != nil {
				t.Errorf("map relocate: %v", err)
				return false
			}
			return true
		}
		stamp, ok := fillers[old]
		if !ok {
			t.Errorf("mover saw unknown block %d", old)
			return false
		}
		tx := pool.Begin()
		tx.StoreUint64(new, tx.LoadUint64(old))
		if err := tx.Commit(); err != nil {
			t.Errorf("filler copy: %v", err)
			return false
		}
		delete(fillers, old)
		fillers[new] = stamp
		return true
	})
	if moved == 0 {
		t.Fatal("compaction moved nothing on a half-empty heap")
	}
	if after := h.Footprint(); after >= before {
		t.Fatalf("footprint did not shrink: %d -> %d", before, after)
	}

	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		if v, ok := m.Get(k); !ok || v != want {
			t.Fatalf("Get(%d)=%d,%v want %d", k, v, ok, want)
		}
	}
	for a, stamp := range fillers {
		if got := pool.ReadUint64(a); got != stamp {
			t.Fatalf("filler at %d lost its stamp: %#x != %#x", a, got, stamp)
		}
	}
	if err := pool.Crash(7); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckRecovered(oracle); err != nil {
		t.Fatal(err)
	}
}
