package hashmap

import (
	"testing"
	"testing/quick"

	"specpmt"
	"specpmt/internal/sim"
)

func newMap(t *testing.T) (*specpmt.Pool, *Map) {
	t.Helper()
	pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pool, m
}

func TestPutGetDelete(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	for k := uint64(0); k < 30; k++ {
		if err := m.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 30; k++ {
		v, ok := m.Get(k)
		if !ok || v != k*3 {
			t.Fatalf("Get(%d)=%d,%v", k, v, ok)
		}
	}
	ok, err := m.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	if ok, _ := m.Delete(7); ok {
		t.Fatal("double delete")
	}
	if m.Len() != 29 {
		t.Fatalf("Len=%d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthMigration(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	// Push far past the initial capacity: multiple growth generations.
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := m.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cap() <= initialCap {
		t.Fatalf("map never grew: cap=%d", m.Cap())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := m.Get(k)
		if !ok || v != k+1 {
			t.Fatalf("Get(%d)=%d,%v after growth", k, v, ok)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len=%d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMidMigration(t *testing.T) {
	// Crash repeatedly while migrations are in flight; every committed pair
	// must survive, lookups must work with the map split across tables.
	for seed := uint64(1); seed <= 5; seed++ {
		rng := sim.NewRand(seed)
		pool, m := newMap(t)
		oracle := map[uint64]uint64{}
		for round := 0; round < 4; round++ {
			n := rng.Intn(200) + 50
			for i := 0; i < n; i++ {
				k := rng.Uint64() % 3000
				if rng.Float64() < 0.8 {
					v := rng.Uint64()
					if err := m.Put(k, v); err != nil {
						t.Fatal(err)
					}
					oracle[k] = v
				} else {
					ok, err := m.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					if _, exists := oracle[k]; exists != ok {
						t.Fatalf("Delete(%d)=%v oracle=%v", k, ok, exists)
					}
					delete(oracle, k)
				}
			}
			if err := pool.Crash(rng.Uint64()); err != nil {
				t.Fatal(err)
			}
			if err := pool.Recover(); err != nil {
				t.Fatal(err)
			}
			var err error
			m, err = Open(pool, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			if m.Len() != uint64(len(oracle)) {
				t.Fatalf("seed %d round %d: Len=%d oracle=%d (migrating=%v)",
					seed, round, m.Len(), len(oracle), m.Migrating())
			}
			for k, want := range oracle {
				got, ok := m.Get(k)
				if !ok || got != want {
					t.Fatalf("seed %d round %d: Get(%d)=%d,%v want %d",
						seed, round, k, got, ok, want)
				}
			}
		}
		pool.Close()
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	want := map[uint64]uint64{}
	for k := uint64(100); k < 400; k += 3 {
		m.Put(k, k^0xABCD)
		want[k] = k ^ 0xABCD
	}
	got := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("range[%d]=%d want %d", k, got[k], v)
		}
	}
}

func TestTombstoneReuseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		m, err := New(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		// Heavy insert/delete churn on a small key space exercises
		// tombstone reuse and probe chains.
		for i := 0; i < 600; i++ {
			k := rng.Uint64() % 40
			if rng.Float64() < 0.5 {
				v := rng.Uint64()
				if err := m.Put(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			} else {
				m.Delete(k)
				delete(oracle, k)
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		for k, want := range oracle {
			if got, ok := m.Get(k); !ok || got != want {
				return false
			}
		}
		return m.Len() == uint64(len(oracle))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEmptySlot(t *testing.T) {
	pool, _ := specpmt.Open(specpmt.Config{})
	defer pool.Close()
	if _, err := Open(pool, 9); err == nil {
		t.Fatal("Open on empty slot should fail")
	}
}

// TestTxBatchAtomicity drives the tx-scoped API the sharded server's group
// commit uses: several TxPuts in ONE caller-owned transaction either all
// land (commit) or all vanish (abort), and TxGet observes the transaction's
// own uncommitted writes.
func TestTxBatchAtomicity(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	if err := m.Put(1, 10); err != nil {
		t.Fatal(err)
	}

	// Committed batch: SET 2, SET 3, DEL 1, and a read-own-write check.
	if err := m.PrepareGrow(); err != nil {
		t.Fatal(err)
	}
	tx := pool.Begin()
	if err := m.TxPut(tx, 2, 20); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.TxGet(tx, 2); !ok || v != 20 {
		t.Fatalf("TxGet mid-tx = %d,%v want 20,true", v, ok)
	}
	if err := m.TxPut(tx, 3, 30); err != nil {
		t.Fatal(err)
	}
	if found, err := m.TxDelete(tx, 1); err != nil || !found {
		t.Fatalf("TxDelete(1) = %v,%v", found, err)
	}
	if found, err := m.TxDelete(tx, 99); err != nil || found {
		t.Fatalf("TxDelete(99) = %v,%v want miss without abort", found, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	m.ReleaseRetired()
	if _, ok := m.Get(1); ok {
		t.Fatal("key 1 must be gone after committed batch")
	}
	if v, _ := m.Get(2); v != 20 {
		t.Fatalf("Get(2)=%d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d want 2", m.Len())
	}

	// Aborted batch: nothing sticks.
	tx = pool.Begin()
	if err := m.TxPut(tx, 4, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TxDelete(tx, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	m.DiscardRetired()
	if _, ok := m.Get(4); ok {
		t.Fatal("aborted TxPut must not persist")
	}
	if v, _ := m.Get(2); v != 20 {
		t.Fatalf("aborted TxDelete removed key 2 (v=%d)", v)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRetiredTableReclaimed checks the delete-and-reuse path: once an
// incremental migration finishes, the old table is released back to the
// allocator rather than leaked.
func TestRetiredTableReclaimed(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()
	// Force a grow and push the migration to completion.
	for k := uint64(0); k < initialCap; k++ {
		if err := m.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Migrating() {
		// Migration may already have finished inside the loop; grow again.
		if err := m.PrepareGrow(); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); m.Migrating(); k++ {
		if err := m.Put(k%8, k); err != nil {
			t.Fatal(err)
		}
	}
	if m.retired.bytes != 0 {
		t.Fatal("retired table must have been released after migration completed")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMapOverThreadView runs the map over one thread of a ThreadedPool —
// the configuration the network server shards on.
func TestMapOverThreadView(t *testing.T) {
	tp, err := specpmt.OpenThreaded(specpmt.Config{Size: 256 << 20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	th := tp.Thread(1)
	m, err := New(th, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 300; k++ {
		if err := m.Put(k, k^7); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 300; k++ {
		if v, ok := m.Get(k); !ok || v != k^7 {
			t.Fatalf("Get(%d)=%d,%v", k, v, ok)
		}
	}
	if m.Len() != 300 {
		t.Fatalf("Len=%d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureHeadroomBatchInsert reproduces the batch-overrun failure:
// hundreds of TxPuts in ONE transaction overrun PrepareGrow's single
// doubling (TxPut fails with ErrFull mid-batch). EnsureHeadroom must size
// the table for the whole batch up front — including when a prior
// incremental rehash is still in flight — and the committed batch must
// leave the map valid.
func TestEnsureHeadroomBatchInsert(t *testing.T) {
	pool, m := newMap(t)
	defer pool.Close()

	batch := func(base, n uint64) {
		t.Helper()
		if err := m.EnsureHeadroom(n); err != nil {
			t.Fatal(err)
		}
		tx := pool.Begin()
		for k := base; k < base+n; k++ {
			if err := m.TxPut(tx, k, k^0xbeef); err != nil {
				tx.Abort()
				m.DiscardRetired()
				t.Fatalf("TxPut(%d) after EnsureHeadroom(%d): %v", k, n, err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		m.ReleaseRetired()
	}

	// 120 inserts into a cap-64 table: several doublings in one call. (One
	// transaction's write set is also bounded by the engine's log block —
	// batch sizes here mirror the server's, which stay well under it.)
	batch(0, 120)
	// Start an incremental rehash, then demand headroom mid-migration: the
	// drain-then-grow path.
	if err := m.Put(120, 120^0xbeef); err != nil {
		t.Fatal(err)
	}
	for !m.Migrating() {
		if err := m.grow(); err != nil {
			t.Fatal(err)
		}
	}
	batch(121, 280)

	if m.Len() != 401 {
		t.Fatalf("Len=%d, want 401", m.Len())
	}
	for k := uint64(0); k < 401; k++ {
		if v, ok := m.Get(k); !ok || v != k^0xbeef {
			t.Fatalf("Get(%d)=%d,%v", k, v, ok)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
