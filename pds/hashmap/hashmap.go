// Package hashmap is a growable persistent hash map built on specpmt
// transactions. Unlike the fixed-capacity map in examples/kvstore, this one
// resizes: growth swaps in a double-sized table with one transaction and
// then migrates a few old buckets inside every subsequent mutation — an
// incremental, crash-atomic rehash. A power failure at any point leaves the
// map either before or after each step; lookups work mid-migration by
// consulting both tables.
//
// Keys and values are uint64 (key 0 is allowed). Not safe for concurrent
// use; wrap in your own lock (§4.3.3 of the SpecPMT paper).
package hashmap

import (
	"errors"
	"fmt"

	"specpmt"
)

const (
	slotEmpty = 0
	slotUsed  = 1
	slotDead  = 2 // tombstone (deleted, probe chain continues)

	slotSize = 24 // [state u64][key u64][val u64]

	// migrateBatch old buckets are rehashed per mutation during growth.
	migrateBatch = 8
	// initialCap is the starting table capacity (power of two).
	initialCap = 64
)

// Meta layout.
const (
	metaTable   = 0  // current table address
	metaCap     = 8  // current capacity
	metaLen     = 16 // live keys (both tables)
	metaOld     = 24 // old table address (0 when no migration)
	metaOldCap  = 32
	metaMigrate = 40 // next old bucket to migrate
	metaSize    = 48
)

// ErrFull means allocation of a grown table failed.
var ErrFull = errors.New("hashmap: allocation failed")

// Pool is the slice of the specpmt pool API the map builds on. Both
// *specpmt.Pool and *specpmt.Thread (one thread of a ThreadedPool) satisfy
// it, so the same map can back a single-threaded application or one shard
// of a sharded server.
type Pool interface {
	Begin() specpmt.Tx
	Alloc(n int) (specpmt.Addr, error)
	Free(a specpmt.Addr, n int)
	ReadUint64(a specpmt.Addr) uint64
	SetRoot(i int, v uint64) error
	Root(i int) uint64
}

var (
	_ Pool = (*specpmt.Pool)(nil)
	_ Pool = (*specpmt.Thread)(nil)
)

// Map is a persistent hash map handle.
type Map struct {
	pool Pool
	slot int // pool root slot publishing the meta block
	meta specpmt.Addr
	// retired is the old table unlinked by the last migrateStep, awaiting
	// ReleaseRetired (volatile — a crash in the window between unlink and
	// release leaks the region: it stays allocated in the logged heap but
	// unreachable, which the recovery checkers explicitly allow —
	// reachable ⊆ allocated, not equality).
	retired retiredTable
}

type retiredTable struct {
	addr  specpmt.Addr
	bytes int
}

// New creates an empty map registered in the given pool root slot.
func New(pool Pool, slot int) (*Map, error) {
	meta, err := pool.Alloc(metaSize)
	if err != nil {
		return nil, err
	}
	table, err := allocZeroedTable(pool, initialCap)
	if err != nil {
		return nil, err
	}
	tx := pool.Begin()
	tx.StoreUint64(meta+metaTable, uint64(table))
	tx.StoreUint64(meta+metaCap, initialCap)
	tx.StoreUint64(meta+metaLen, 0)
	tx.StoreUint64(meta+metaOld, 0)
	tx.StoreUint64(meta+metaOldCap, 0)
	tx.StoreUint64(meta+metaMigrate, 0)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(slot, uint64(meta)); err != nil {
		return nil, err
	}
	return &Map{pool: pool, slot: slot, meta: meta}, nil
}

// Open reattaches to the map in the pool root slot (post-crash).
func Open(pool Pool, slot int) (*Map, error) {
	meta := specpmt.Addr(pool.Root(slot))
	if meta == 0 {
		return nil, fmt.Errorf("hashmap: root slot %d is empty", slot)
	}
	return &Map{pool: pool, slot: slot, meta: meta}, nil
}

// allocZeroedTable allocates a table and zeroes its slot states in chunked
// transactions. The table is unpublished until the caller links it, so a
// crash mid-zeroing leaks nothing.
func allocZeroedTable(pool Pool, capacity uint64) (specpmt.Addr, error) {
	t, err := pool.Alloc(int(capacity * slotSize))
	if err != nil {
		return 0, ErrFull
	}
	const chunk = 256
	for i := uint64(0); i < capacity; i += chunk {
		tx := pool.Begin()
		for j := i; j < i+chunk && j < capacity; j++ {
			tx.StoreUint64(t+specpmt.Addr(j*slotSize), slotEmpty)
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return t, nil
}

func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func slotAddr(table specpmt.Addr, capacity, i uint64) specpmt.Addr {
	return table + specpmt.Addr((i%capacity)*slotSize)
}

// Len returns the committed key count.
func (m *Map) Len() uint64 { return m.pool.ReadUint64(m.meta + metaLen) }

// Cap returns the current table capacity.
func (m *Map) Cap() uint64 { return m.pool.ReadUint64(m.meta + metaCap) }

// Migrating reports whether an incremental rehash is in progress.
func (m *Map) Migrating() bool { return m.pool.ReadUint64(m.meta+metaOld) != 0 }

// lookup finds key in one table (committed reads). Returns the value and
// whether it was found.
func (m *Map) lookupIn(table specpmt.Addr, capacity, key uint64) (uint64, bool) {
	if table == 0 || capacity == 0 {
		return 0, false
	}
	h := hash(key)
	for probe := uint64(0); probe < capacity; probe++ {
		at := slotAddr(table, capacity, h+probe)
		switch m.pool.ReadUint64(at) {
		case slotEmpty:
			return 0, false
		case slotUsed:
			if m.pool.ReadUint64(at+8) == key {
				return m.pool.ReadUint64(at + 16), true
			}
		}
	}
	return 0, false
}

// Get returns the value for key and whether it exists.
func (m *Map) Get(key uint64) (uint64, bool) {
	cur := specpmt.Addr(m.pool.ReadUint64(m.meta + metaTable))
	if v, ok := m.lookupIn(cur, m.pool.ReadUint64(m.meta+metaCap), key); ok {
		return v, true
	}
	old := specpmt.Addr(m.pool.ReadUint64(m.meta + metaOld))
	if old != 0 {
		return m.lookupIn(old, m.pool.ReadUint64(m.meta+metaOldCap), key)
	}
	return 0, false
}

// txPutIn inserts/updates key in the table inside tx. Returns +1 if a new
// key was added, 0 on update, and false if the probe chain is exhausted.
func txPutIn(tx specpmt.Tx, table specpmt.Addr, capacity, key, val uint64) (delta int, ok bool) {
	h := hash(key)
	var tomb specpmt.Addr
	for probe := uint64(0); probe < capacity; probe++ {
		at := slotAddr(table, capacity, h+probe)
		switch tx.LoadUint64(at) {
		case slotEmpty:
			if tomb != 0 {
				at = tomb
			}
			tx.StoreUint64(at, slotUsed)
			tx.StoreUint64(at+8, key)
			tx.StoreUint64(at+16, val)
			return 1, true
		case slotDead:
			if tomb == 0 {
				tomb = at
			}
		case slotUsed:
			if tx.LoadUint64(at+8) == key {
				tx.StoreUint64(at+16, val)
				return 0, true
			}
		}
	}
	if tomb != 0 {
		tx.StoreUint64(tomb, slotUsed)
		tx.StoreUint64(tomb+8, key)
		tx.StoreUint64(tomb+16, val)
		return 1, true
	}
	return 0, false
}

// txDeleteIn tombstones key in the table inside tx.
func txDeleteIn(tx specpmt.Tx, table specpmt.Addr, capacity, key uint64) bool {
	if table == 0 || capacity == 0 {
		return false
	}
	h := hash(key)
	for probe := uint64(0); probe < capacity; probe++ {
		at := slotAddr(table, capacity, h+probe)
		switch tx.LoadUint64(at) {
		case slotEmpty:
			return false
		case slotUsed:
			if tx.LoadUint64(at+8) == key {
				tx.StoreUint64(at, slotDead)
				return true
			}
		}
	}
	return false
}

// migrateStep rehashes up to migrateBatch old buckets into the current
// table within tx, retiring the old table when done.
func (m *Map) migrateStep(tx specpmt.Tx) bool {
	old := specpmt.Addr(tx.LoadUint64(m.meta + metaOld))
	if old == 0 {
		return true
	}
	oldCap := tx.LoadUint64(m.meta + metaOldCap)
	idx := tx.LoadUint64(m.meta + metaMigrate)
	cur := specpmt.Addr(tx.LoadUint64(m.meta + metaTable))
	capacity := tx.LoadUint64(m.meta + metaCap)
	moved := uint64(0)
	for ; idx < oldCap && moved < migrateBatch; idx++ {
		at := slotAddr(old, oldCap, idx)
		if tx.LoadUint64(at) == slotUsed {
			k, v := tx.LoadUint64(at+8), tx.LoadUint64(at+16)
			if _, ok := txPutIn(tx, cur, capacity, k, v); !ok {
				return false // new table full mid-migration: caller grows again
			}
			tx.StoreUint64(at, slotDead)
			moved++
		}
	}
	tx.StoreUint64(m.meta+metaMigrate, idx)
	if idx >= oldCap {
		tx.StoreUint64(m.meta+metaOld, 0)
		tx.StoreUint64(m.meta+metaOldCap, 0)
		tx.StoreUint64(m.meta+metaMigrate, 0)
		// The old table is unreachable once this transaction commits; hand
		// it to ReleaseRetired so its slots get reused instead of leaking.
		m.retired = retiredTable{addr: old, bytes: int(oldCap * slotSize)}
	}
	return true
}

// ReleaseRetired returns the table unlinked by the last committed migration
// step to the allocator. Put and Delete call it automatically; callers
// driving TxPut/TxDelete inside their own transaction must call it after a
// successful Commit — or DiscardRetired after an Abort, since the aborted
// transaction rolled the unlink back.
func (m *Map) ReleaseRetired() {
	if m.retired.bytes != 0 {
		m.pool.Free(m.retired.addr, m.retired.bytes)
		m.retired = retiredTable{}
	}
}

// DiscardRetired forgets a pending retired table without freeing it (the
// unlinking transaction aborted, so the table is still live).
func (m *Map) DiscardRetired() { m.retired = retiredTable{} }

// grow swaps in a table of twice the current capacity (one transaction) and
// begins incremental migration. Any previous migration must have finished.
func (m *Map) grow() error {
	capacity := m.pool.ReadUint64(m.meta + metaCap)
	newTable, err := allocZeroedTable(m.pool, capacity*2)
	if err != nil {
		return err
	}
	tx := m.pool.Begin()
	tx.StoreUint64(m.meta+metaOld, tx.LoadUint64(m.meta+metaTable))
	tx.StoreUint64(m.meta+metaOldCap, capacity)
	tx.StoreUint64(m.meta+metaMigrate, 0)
	tx.StoreUint64(m.meta+metaTable, uint64(newTable))
	tx.StoreUint64(m.meta+metaCap, capacity*2)
	return tx.Commit()
}

// PrepareGrow starts an incremental resize when the load factor crosses 3/4
// and no migration is running. Put calls it automatically; callers batching
// several TxPuts into one transaction should call it once, outside that
// transaction, before beginning.
func (m *Map) PrepareGrow() error {
	if !m.Migrating() && m.Len()*4 >= m.Cap()*3 {
		return m.grow()
	}
	return nil
}

// batchDrainThreshold: a batch of this many TxPuts must not also carry
// incremental rehash steps — each TxPut migrates up to migrateBatch old
// buckets inside the SAME transaction, and the combined write set can
// overrun the engine's per-transaction log block. EnsureHeadroom drains the
// rehash first (in small transactions of its own) for batches this large;
// smaller batches keep the cheap incremental behavior.
const batchDrainThreshold = 16

// EnsureHeadroom prepares the map to absorb n more inserts inside ONE
// transaction. PrepareGrow's 3/4 load-factor trigger assumes inserts land
// one committed transaction at a time; a batch of n TxPuts can overrun the
// table between triggers and fail with ErrFull mid-transaction. Batch
// callers call this once, outside the transaction: it grows the table until
// the n inserts keep the load factor at or under 3/4, and for large batches
// leaves no rehash in flight (see batchDrainThreshold).
func (m *Map) EnsureHeadroom(n uint64) error {
	for {
		if m.Migrating() && (n >= batchDrainThreshold || (m.Len()+n)*4 > m.Cap()*3) {
			// grow needs the previous rehash finished before it can double
			// again, and a large batch must not inherit its steps.
			if err := m.drainMigration(); err != nil {
				return err
			}
		}
		if (m.Len()+n)*4 <= m.Cap()*3 {
			return nil
		}
		if err := m.grow(); err != nil {
			return err
		}
	}
}

// drainMigration completes an in-flight incremental rehash, one bounded
// transaction per step, leaving a single live table.
func (m *Map) drainMigration() error {
	for m.Migrating() {
		tx := m.pool.Begin()
		if !m.migrateStep(tx) {
			tx.Abort()
			m.DiscardRetired()
			return ErrFull
		}
		if err := tx.Commit(); err != nil {
			m.DiscardRetired()
			return err
		}
		m.ReleaseRetired()
	}
	return nil
}

// TxGet reads key inside an open transaction, observing the transaction's
// own uncommitted writes (a SET earlier in the same batch).
func (m *Map) TxGet(tx specpmt.Tx, key uint64) (uint64, bool) {
	cur := specpmt.Addr(tx.LoadUint64(m.meta + metaTable))
	if v, ok := txLookupIn(tx, cur, tx.LoadUint64(m.meta+metaCap), key); ok {
		return v, true
	}
	if old := specpmt.Addr(tx.LoadUint64(m.meta + metaOld)); old != 0 {
		return txLookupIn(tx, old, tx.LoadUint64(m.meta+metaOldCap), key)
	}
	return 0, false
}

// txLookupIn finds key in one table using transactional loads.
func txLookupIn(tx specpmt.Tx, table specpmt.Addr, capacity, key uint64) (uint64, bool) {
	if table == 0 || capacity == 0 {
		return 0, false
	}
	h := hash(key)
	for probe := uint64(0); probe < capacity; probe++ {
		at := slotAddr(table, capacity, h+probe)
		switch tx.LoadUint64(at) {
		case slotEmpty:
			return 0, false
		case slotUsed:
			if tx.LoadUint64(at+8) == key {
				return tx.LoadUint64(at + 16), true
			}
		}
	}
	return 0, false
}

// TxPut stores key=val inside an open transaction (one migration step
// included), without committing. The caller owns the transaction and must
// call ReleaseRetired after a successful Commit or DiscardRetired after an
// Abort. ErrFull means the table ran out of slots mid-transaction; the
// caller should Abort, then retry via Put (which grows first).
func (m *Map) TxPut(tx specpmt.Tx, key, val uint64) error {
	if !m.migrateStep(tx) {
		return ErrFull
	}
	cur := specpmt.Addr(tx.LoadUint64(m.meta + metaTable))
	capacity := tx.LoadUint64(m.meta + metaCap)
	// The key may still live in the old table: delete it there so the pair
	// of writes stays atomic with the insert.
	oldDelta := 0
	if old := specpmt.Addr(tx.LoadUint64(m.meta + metaOld)); old != 0 {
		if txDeleteIn(tx, old, tx.LoadUint64(m.meta+metaOldCap), key) {
			oldDelta = -1
		}
	}
	delta, ok := txPutIn(tx, cur, capacity, key, val)
	if !ok {
		return ErrFull
	}
	if d := delta + oldDelta; d != 0 {
		tx.StoreUint64(m.meta+metaLen, tx.LoadUint64(m.meta+metaLen)+uint64(int64(d)))
	}
	return nil
}

// TxDelete tombstones key inside an open transaction (one migration step
// included), reporting whether it was present. A missing key performs no
// data writes beyond migration progress, so batch callers need not abort.
// The same ReleaseRetired/DiscardRetired contract as TxPut applies.
func (m *Map) TxDelete(tx specpmt.Tx, key uint64) (bool, error) {
	if !m.migrateStep(tx) {
		return false, ErrFull
	}
	cur := specpmt.Addr(tx.LoadUint64(m.meta + metaTable))
	found := txDeleteIn(tx, cur, tx.LoadUint64(m.meta+metaCap), key)
	if !found {
		if old := specpmt.Addr(tx.LoadUint64(m.meta + metaOld)); old != 0 {
			found = txDeleteIn(tx, old, tx.LoadUint64(m.meta+metaOldCap), key)
		}
	}
	if found {
		tx.StoreUint64(m.meta+metaLen, tx.LoadUint64(m.meta+metaLen)-1)
	}
	return found, nil
}

// Put stores key=val crash-atomically, growing and migrating as needed.
func (m *Map) Put(key, val uint64) error {
	if err := m.PrepareGrow(); err != nil {
		return err
	}
	tx := m.pool.Begin()
	if err := m.TxPut(tx, key, val); err != nil {
		tx.Abort()
		m.DiscardRetired()
		return err
	}
	if err := tx.Commit(); err != nil {
		m.DiscardRetired()
		return err
	}
	m.ReleaseRetired()
	return nil
}

// Delete removes key crash-atomically, reporting whether it was present.
func (m *Map) Delete(key uint64) (bool, error) {
	tx := m.pool.Begin()
	found, err := m.TxDelete(tx, key)
	if err != nil {
		tx.Abort()
		m.DiscardRetired()
		return false, err
	}
	if !found {
		// Nothing but migration progress to keep: roll the step back.
		err := tx.Abort()
		m.DiscardRetired()
		return false, err
	}
	if err := tx.Commit(); err != nil {
		m.DiscardRetired()
		return false, err
	}
	m.ReleaseRetired()
	return true, nil
}

// Range calls fn for every committed key/value (order unspecified); fn
// returning false stops the walk.
func (m *Map) Range(fn func(k, v uint64) bool) {
	walk := func(table specpmt.Addr, capacity uint64) bool {
		for i := uint64(0); i < capacity; i++ {
			at := slotAddr(table, capacity, i)
			if m.pool.ReadUint64(at) == slotUsed {
				if !fn(m.pool.ReadUint64(at+8), m.pool.ReadUint64(at+16)) {
					return false
				}
			}
		}
		return true
	}
	cur := specpmt.Addr(m.pool.ReadUint64(m.meta + metaTable))
	if !walk(cur, m.pool.ReadUint64(m.meta+metaCap)) {
		return
	}
	if old := specpmt.Addr(m.pool.ReadUint64(m.meta + metaOld)); old != 0 {
		walk(old, m.pool.ReadUint64(m.meta+metaOldCap))
	}
}

// Validate checks invariants: Len matches the live population, no key
// appears twice (across both tables), and used slots are reachable by their
// probe chains.
func (m *Map) Validate() error {
	seen := map[uint64]bool{}
	count := uint64(0)
	var dup uint64
	dupFound := false
	m.Range(func(k, v uint64) bool {
		if seen[k] {
			dup, dupFound = k, true
			return false
		}
		seen[k] = true
		count++
		return true
	})
	if dupFound {
		return fmt.Errorf("hashmap: key %d present twice", dup)
	}
	if got := m.Len(); got != count {
		return fmt.Errorf("hashmap: Len()=%d but %d live slots", got, count)
	}
	for k := range seen {
		if _, ok := m.Get(k); !ok {
			return fmt.Errorf("hashmap: key %d unreachable by probing", k)
		}
	}
	return nil
}

// CheckRecovered is the map's recovery-invariant checker
// (internal/recovery): after a crash and pool recovery, the committed
// key/value set must equal expect exactly — no lost updates, no
// resurrected deletes, no torn values — the map must validate
// structurally, and any in-progress migration must be whole: every slot of
// both the current and the linked old table holds a canonical state, and
// the migration cursor is in bounds. (A retired table unlinked before the
// crash is invisible here by design: it leaks in the allocator, which
// tolerates unreachable-but-allocated blocks.)
func (m *Map) CheckRecovered(expect map[uint64]uint64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	got := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	for k, want := range expect {
		v, ok := got[k]
		if !ok {
			return fmt.Errorf("hashmap: committed key %d lost across recovery (want %d)", k, want)
		}
		if v != want {
			return fmt.Errorf("hashmap: key %d = %d, committed value %d", k, v, want)
		}
	}
	for k, v := range got {
		if _, ok := expect[k]; !ok {
			return fmt.Errorf("hashmap: key %d = %d survives recovery but its committed state is deleted or never set", k, v)
		}
	}
	checkTable := func(label string, table specpmt.Addr, capacity uint64) error {
		for i := uint64(0); i < capacity; i++ {
			if st := m.pool.ReadUint64(slotAddr(table, capacity, i)); st > slotDead {
				return fmt.Errorf("hashmap: %s table slot %d holds torn state %#x", label, i, st)
			}
		}
		return nil
	}
	cur := specpmt.Addr(m.pool.ReadUint64(m.meta + metaTable))
	if err := checkTable("current", cur, m.pool.ReadUint64(m.meta+metaCap)); err != nil {
		return err
	}
	if old := specpmt.Addr(m.pool.ReadUint64(m.meta + metaOld)); old != 0 {
		oldCap := m.pool.ReadUint64(m.meta + metaOldCap)
		if err := checkTable("old", old, oldCap); err != nil {
			return err
		}
		if mig := m.pool.ReadUint64(m.meta + metaMigrate); mig > oldCap {
			return fmt.Errorf("hashmap: migration cursor %d beyond old capacity %d", mig, oldCap)
		}
	}
	return nil
}
