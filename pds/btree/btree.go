// Package btree is a persistent B+tree built on specpmt transactions — the
// kind of durable index structure the paper's motivating applications
// (key-value stores, databases; §1, §6) keep in persistent memory.
//
// Every mutation, including multi-node splits all the way up the tree, runs
// in ONE crash-atomic transaction: after a power failure the tree is either
// entirely pre-operation or entirely post-operation, never a torn split.
// Under SpecPMT that costs a single commit fence regardless of how many
// nodes the split touched; under PMDK-style undo logging the same operation
// pays a persist barrier per touched node region.
//
// Keys and values are uint64; zero keys are allowed. The tree is rebuilt
// from a pool root slot after a crash (Open).
package btree

import (
	"errors"
	"fmt"

	"specpmt"
)

// Degree configuration: maxKeys must be odd so splits are symmetric.
const (
	maxKeys   = 15
	minDegree = (maxKeys + 1) / 2

	kindLeaf     = 0
	kindInternal = 1

	// Node layout offsets. Key and pointer arrays carry one overflow slot
	// each, so a node may transiently hold maxKeys+1 keys (and an internal
	// node maxKeys+2 children) inside the transaction that splits it.
	offKind  = 0
	offN     = 8
	offNext  = 16 // leaf right-sibling link (scan chain)
	offKeys  = 24
	offPtrs  = offKeys + 8*(maxKeys+1)
	nodeSize = offPtrs + 8*(maxKeys+2)
)

// Tree is a persistent B+tree handle. Not safe for concurrent use (wrap in
// your own lock, §4.3.3).
type Tree struct {
	pool *specpmt.Pool
	slot int // pool root slot holding the meta address
	meta specpmt.Addr
}

// Meta layout: [root u64][height u64][count u64].
const (
	metaRoot   = 0
	metaHeight = 8
	metaCount  = 16
	metaSize   = 24
)

// ErrFull is returned when the pool cannot allocate another node.
var ErrFull = errors.New("btree: allocation failed")

// New creates an empty tree whose meta block is registered in the given
// pool root slot.
func New(pool *specpmt.Pool, slot int) (*Tree, error) {
	meta, err := pool.Alloc(metaSize)
	if err != nil {
		return nil, err
	}
	root, err := pool.Alloc(nodeSize)
	if err != nil {
		return nil, err
	}
	tx := pool.Begin()
	tx.StoreUint64(root+offKind, kindLeaf)
	tx.StoreUint64(root+offN, 0)
	tx.StoreUint64(root+offNext, 0)
	tx.StoreUint64(meta+metaRoot, uint64(root))
	tx.StoreUint64(meta+metaHeight, 0)
	tx.StoreUint64(meta+metaCount, 0)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(slot, uint64(meta)); err != nil {
		return nil, err
	}
	return &Tree{pool: pool, slot: slot, meta: meta}, nil
}

// Open reattaches to the tree registered in the pool root slot (post-crash).
func Open(pool *specpmt.Pool, slot int) (*Tree, error) {
	meta := specpmt.Addr(pool.Root(slot))
	if meta == 0 {
		return nil, fmt.Errorf("btree: root slot %d is empty", slot)
	}
	return &Tree{pool: pool, slot: slot, meta: meta}, nil
}

// Len returns the committed key count.
func (t *Tree) Len() uint64 { return t.pool.ReadUint64(t.meta + metaCount) }

// Height returns the committed tree height (0 = root is a leaf).
func (t *Tree) Height() uint64 { return t.pool.ReadUint64(t.meta + metaHeight) }

// node accessors over a transaction (so searches observe in-flight writes
// of the same transaction during mutations).

type txview struct{ tx specpmt.Tx }

func (v txview) kind(n specpmt.Addr) uint64 { return v.tx.LoadUint64(n + offKind) }
func (v txview) n(n specpmt.Addr) int       { return int(v.tx.LoadUint64(n + offN)) }
func (v txview) key(n specpmt.Addr, i int) uint64 {
	return v.tx.LoadUint64(n + offKeys + specpmt.Addr(i*8))
}
func (v txview) ptr(n specpmt.Addr, i int) uint64 {
	return v.tx.LoadUint64(n + offPtrs + specpmt.Addr(i*8))
}
func (v txview) setN(n specpmt.Addr, c int) { v.tx.StoreUint64(n+offN, uint64(c)) }
func (v txview) setKey(n specpmt.Addr, i int, k uint64) {
	v.tx.StoreUint64(n+offKeys+specpmt.Addr(i*8), k)
}
func (v txview) setPtr(n specpmt.Addr, i int, p uint64) {
	v.tx.StoreUint64(n+offPtrs+specpmt.Addr(i*8), p)
}

// Get returns the value for key and whether it exists, reading committed
// state.
func (t *Tree) Get(key uint64) (uint64, bool) {
	n := specpmt.Addr(t.pool.ReadUint64(t.meta + metaRoot))
	for {
		kind := t.pool.ReadUint64(n + offKind)
		cnt := int(t.pool.ReadUint64(n + offN))
		i := 0
		for i < cnt && t.pool.ReadUint64(n+offKeys+specpmt.Addr(i*8)) < key {
			i++
		}
		if kind == kindLeaf {
			if i < cnt && t.pool.ReadUint64(n+offKeys+specpmt.Addr(i*8)) == key {
				return t.pool.ReadUint64(n + offPtrs + specpmt.Addr(i*8)), true
			}
			return 0, false
		}
		// Internal: keys[i] is the first key >= key; child i covers keys
		// < keys[i]; equal keys descend right.
		if i < cnt && t.pool.ReadUint64(n+offKeys+specpmt.Addr(i*8)) == key {
			i++
		}
		n = specpmt.Addr(t.pool.ReadUint64(n + offPtrs + specpmt.Addr(i*8)))
	}
}

// Insert stores key=val crash-atomically (update if present).
func (t *Tree) Insert(key, val uint64) error {
	tx := t.pool.Begin()
	v := txview{tx}
	root := specpmt.Addr(tx.LoadUint64(t.meta + metaRoot))
	// Walk down, remembering the path.
	type step struct {
		node specpmt.Addr
		idx  int
	}
	var path []step
	n := root
	for v.kind(n) == kindInternal {
		cnt := v.n(n)
		i := 0
		for i < cnt && v.key(n, i) <= key {
			i++
		}
		path = append(path, step{n, i})
		n = specpmt.Addr(v.ptr(n, i))
	}
	// Leaf insert/update.
	cnt := v.n(n)
	i := 0
	for i < cnt && v.key(n, i) < key {
		i++
	}
	if i < cnt && v.key(n, i) == key {
		v.setPtr(n, i, val)
		return tx.Commit()
	}
	for j := cnt; j > i; j-- {
		v.setKey(n, j, v.key(n, j-1))
		v.setPtr(n, j, v.ptr(n, j-1))
	}
	v.setKey(n, i, key)
	v.setPtr(n, i, val)
	v.setN(n, cnt+1)
	tx.StoreUint64(t.meta+metaCount, tx.LoadUint64(t.meta+metaCount)+1)

	// Split upward while nodes overflow. All node allocations and pointer
	// rewires happen inside this same transaction.
	child := n
	for v.n(child) > maxKeys {
		sep, right, err := t.split(v, child)
		if err != nil {
			tx.Abort()
			return err
		}
		if len(path) == 0 {
			// New root.
			nr, err := t.pool.Alloc(nodeSize)
			if err != nil {
				tx.Abort()
				return ErrFull
			}
			tx.StoreUint64(nr+offKind, kindInternal)
			tx.StoreUint64(nr+offN, 1)
			v.setKey(nr, 0, sep)
			v.setPtr(nr, 0, uint64(child))
			v.setPtr(nr, 1, uint64(right))
			tx.StoreUint64(t.meta+metaRoot, uint64(nr))
			tx.StoreUint64(t.meta+metaHeight, tx.LoadUint64(t.meta+metaHeight)+1)
			break
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		pcnt := v.n(parent.node)
		for j := pcnt; j > parent.idx; j-- {
			v.setKey(parent.node, j, v.key(parent.node, j-1))
			v.setPtr(parent.node, j+1, v.ptr(parent.node, j))
		}
		v.setKey(parent.node, parent.idx, sep)
		v.setPtr(parent.node, parent.idx+1, uint64(right))
		v.setN(parent.node, pcnt+1)
		child = parent.node
	}
	return tx.Commit()
}

// split divides an overflowing node (n == maxKeys+1 entries), returning the
// separator key and the new right sibling.
func (t *Tree) split(v txview, n specpmt.Addr) (sep uint64, right specpmt.Addr, err error) {
	right, err = t.pool.Alloc(nodeSize)
	if err != nil {
		return 0, 0, ErrFull
	}
	kind := v.kind(n)
	v.tx.StoreUint64(right+offKind, kind)
	total := v.n(n)
	if kind == kindLeaf {
		left := total / 2
		moved := total - left
		for j := 0; j < moved; j++ {
			v.setKey(right, j, v.key(n, left+j))
			v.setPtr(right, j, v.ptr(n, left+j))
		}
		v.setN(right, moved)
		v.setN(n, left)
		// Sibling chain for scans.
		v.tx.StoreUint64(right+offNext, v.tx.LoadUint64(n+offNext))
		v.tx.StoreUint64(n+offNext, uint64(right))
		return v.key(right, 0), right, nil
	}
	// Internal: middle key moves up.
	mid := total / 2
	sep = v.key(n, mid)
	moved := total - mid - 1
	for j := 0; j < moved; j++ {
		v.setKey(right, j, v.key(n, mid+1+j))
		v.setPtr(right, j, v.ptr(n, mid+1+j))
	}
	v.setPtr(right, moved, v.ptr(n, total))
	v.setN(right, moved)
	v.setN(n, mid)
	return sep, right, nil
}

// Delete removes key crash-atomically, returning whether it was present.
// Underflowed nodes are left in place (lazy deletion — standard for PM
// B+trees, where rebalancing writes cost more than the slack space).
func (t *Tree) Delete(key uint64) (bool, error) {
	tx := t.pool.Begin()
	v := txview{tx}
	n := specpmt.Addr(tx.LoadUint64(t.meta + metaRoot))
	for v.kind(n) == kindInternal {
		cnt := v.n(n)
		i := 0
		for i < cnt && v.key(n, i) <= key {
			i++
		}
		n = specpmt.Addr(v.ptr(n, i))
	}
	cnt := v.n(n)
	i := 0
	for i < cnt && v.key(n, i) < key {
		i++
	}
	if i >= cnt || v.key(n, i) != key {
		return false, tx.Abort()
	}
	for j := i; j < cnt-1; j++ {
		v.setKey(n, j, v.key(n, j+1))
		v.setPtr(n, j, v.ptr(n, j+1))
	}
	v.setN(n, cnt-1)
	tx.StoreUint64(t.meta+metaCount, tx.LoadUint64(t.meta+metaCount)-1)
	return true, tx.Commit()
}

// Scan calls fn for every key in [lo, hi] in ascending order, reading
// committed state; fn returning false stops the scan.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool) {
	n := specpmt.Addr(t.pool.ReadUint64(t.meta + metaRoot))
	for t.pool.ReadUint64(n+offKind) == kindInternal {
		cnt := int(t.pool.ReadUint64(n + offN))
		i := 0
		for i < cnt && t.pool.ReadUint64(n+offKeys+specpmt.Addr(i*8)) <= lo {
			i++
		}
		n = specpmt.Addr(t.pool.ReadUint64(n + offPtrs + specpmt.Addr(i*8)))
	}
	for n != 0 {
		cnt := int(t.pool.ReadUint64(n + offN))
		for i := 0; i < cnt; i++ {
			k := t.pool.ReadUint64(n + offKeys + specpmt.Addr(i*8))
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, t.pool.ReadUint64(n+offPtrs+specpmt.Addr(i*8))) {
				return
			}
		}
		n = specpmt.Addr(t.pool.ReadUint64(n + offNext))
	}
}

// Validate walks the committed tree checking structural invariants: key
// ordering within and across nodes, child counts, uniform leaf depth, and
// that Len matches the leaf population. Used by crash tests.
func (t *Tree) Validate() error {
	root := specpmt.Addr(t.pool.ReadUint64(t.meta + metaRoot))
	leafDepth := -1
	var count uint64
	var walk func(n specpmt.Addr, depth int, lo, hi uint64, loSet, hiSet bool) error
	walk = func(n specpmt.Addr, depth int, lo, hi uint64, loSet, hiSet bool) error {
		kind := t.pool.ReadUint64(n + offKind)
		cnt := int(t.pool.ReadUint64(n + offN))
		if cnt > maxKeys {
			return fmt.Errorf("btree: node %d overflowed (%d keys)", n, cnt)
		}
		var prev uint64
		for i := 0; i < cnt; i++ {
			k := t.pool.ReadUint64(n + offKeys + specpmt.Addr(i*8))
			if i > 0 && k <= prev {
				return fmt.Errorf("btree: node %d keys out of order at %d", n, i)
			}
			if loSet && k < lo {
				return fmt.Errorf("btree: node %d key %d below bound %d", n, k, lo)
			}
			if hiSet && k >= hi {
				return fmt.Errorf("btree: node %d key %d above bound %d", n, k, hi)
			}
			prev = k
		}
		if kind == kindLeaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: ragged leaves (%d vs %d)", leafDepth, depth)
			}
			count += uint64(cnt)
			return nil
		}
		for i := 0; i <= cnt; i++ {
			child := specpmt.Addr(t.pool.ReadUint64(n + offPtrs + specpmt.Addr(i*8)))
			clo, chi := lo, hi
			cloSet, chiSet := loSet, hiSet
			if i > 0 {
				clo, cloSet = t.pool.ReadUint64(n+offKeys+specpmt.Addr((i-1)*8)), true
			}
			if i < cnt {
				chi, chiSet = t.pool.ReadUint64(n+offKeys+specpmt.Addr(i*8)), true
			}
			if err := walk(child, depth+1, clo, chi, cloSet, chiSet); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0, 0, 0, false, false); err != nil {
		return err
	}
	if got := t.Len(); got != count {
		return fmt.Errorf("btree: Len()=%d but leaves hold %d keys", got, count)
	}
	if h := t.Height(); uint64(leafDepth) != h {
		return fmt.Errorf("btree: height %d but leaves at depth %d", h, leafDepth)
	}
	return nil
}
