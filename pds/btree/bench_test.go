package btree

import (
	"testing"

	"specpmt"
	"specpmt/internal/sim"
)

// BenchmarkInsert measures the wall-clock insert path (library efficiency)
// on the SpecSPMT engine.
func BenchmarkInsert(b *testing.B) {
	pool, err := specpmt.Open(specpmt.Config{Size: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	tr, err := New(pool, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(rng.Uint64(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures point lookups on a 10k-key tree.
func BenchmarkGet(b *testing.B) {
	pool, err := specpmt.Open(specpmt.Config{Size: 512 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	tr, _ := New(pool, 0)
	rng := sim.NewRand(1)
	for i := 0; i < 10000; i++ {
		tr.Insert(rng.Uint64()%100000, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) % 100000)
	}
}

// BenchmarkModeledEngines reports the modeled per-insert cost under PMDK and
// SpecSPMT — the data-structure-level rendition of Figure 12.
func BenchmarkModeledEngines(b *testing.B) {
	run := func(engine string) int64 {
		pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20, Engine: engine, Optane: true})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		tr, err := New(pool, 0)
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRand(1)
		for i := 0; i < 2000; i++ {
			if err := tr.Insert(rng.Uint64()%100000, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		return pool.ModeledTime()
	}
	for i := 0; i < b.N; i++ {
		pm := run("PMDK")
		sp := run("SpecSPMT")
		if i == b.N-1 {
			b.ReportMetric(float64(pm)/2000, "pmdk-ns/insert")
			b.ReportMetric(float64(sp)/2000, "spec-ns/insert")
			b.ReportMetric(float64(pm)/float64(sp), "speedup-x")
		}
	}
}
