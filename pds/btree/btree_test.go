package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"specpmt"
	"specpmt/internal/sim"
)

func newTree(t *testing.T, engine string) (*specpmt.Pool, *Tree) {
	t.Helper()
	pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pool, tr
}

func TestInsertGetBasic(t *testing.T) {
	pool, tr := newTree(t, "")
	defer pool.Close()
	for k := uint64(1); k <= 100; k++ {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 100; k++ {
		v, ok := tr.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(101); ok {
		t.Fatal("phantom key")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() == 0 {
		t.Fatal("100 keys should have split the root")
	}
}

func TestInsertUpdateInPlace(t *testing.T) {
	pool, tr := newTree(t, "")
	defer pool.Close()
	tr.Insert(7, 1)
	tr.Insert(7, 2)
	if v, _ := tr.Get(7); v != 2 {
		t.Fatalf("update failed: %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d after update", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	pool, tr := newTree(t, "")
	defer pool.Close()
	for k := uint64(1); k <= 200; k++ {
		tr.Insert(k, k)
	}
	for k := uint64(2); k <= 200; k += 2 {
		ok, err := tr.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d)=%v,%v", k, ok, err)
		}
	}
	if ok, _ := tr.Delete(2); ok {
		t.Fatal("double delete succeeded")
	}
	for k := uint64(1); k <= 200; k++ {
		_, ok := tr.Get(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v want %v", k, ok, want)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanOrdered(t *testing.T) {
	pool, tr := newTree(t, "")
	defer pool.Close()
	keys := []uint64{55, 3, 99, 12, 71, 8, 120, 44, 67, 5}
	for _, k := range keys {
		tr.Insert(k, k+1)
	}
	var got []uint64
	tr.Scan(5, 99, func(k, v uint64) bool {
		if v != k+1 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{5, 8, 12, 44, 55, 67, 71, 99}
	if len(got) != len(want) {
		t.Fatalf("scan=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan=%v want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.Scan(0, ^uint64(0), func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop failed: %d", n)
	}
}

func TestRandomAgainstMapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		tr, err := New(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		for i := 0; i < 400; i++ {
			k := rng.Uint64() % 500
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64()
				if err := tr.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			case 2:
				ok, err := tr.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				if _, exists := oracle[k]; exists != ok {
					t.Fatalf("Delete(%d)=%v, oracle says %v", k, ok, exists)
				}
				delete(oracle, k)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != uint64(len(oracle)) {
			t.Fatalf("Len=%d oracle=%d", tr.Len(), len(oracle))
		}
		for k, want := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != want {
				t.Fatalf("Get(%d)=%d,%v want %d", k, got, ok, want)
			}
		}
		// Full scan equals sorted oracle.
		var keys []uint64
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
			if i >= len(keys) || keys[i] != k {
				t.Fatalf("scan order mismatch at %d", i)
			}
			i++
			return true
		})
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashTornSplitNeverVisible(t *testing.T) {
	// Drive inserts to the brink of splits, crash mid-insert cannot be
	// injected inside a single Insert call (it is one transaction), so
	// instead: crash after random numbers of committed inserts and verify
	// the tree validates and matches the committed prefix exactly.
	for seed := uint64(1); seed <= 6; seed++ {
		rng := sim.NewRand(seed)
		pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := New(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle := map[uint64]uint64{}
		rounds := rng.Intn(3) + 2
		for r := 0; r < rounds; r++ {
			n := rng.Intn(120) + 30
			for i := 0; i < n; i++ {
				k := rng.Uint64() % 1000
				v := rng.Uint64()
				if err := tr.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
			if err := pool.Crash(rng.Uint64()); err != nil {
				t.Fatal(err)
			}
			if err := pool.Recover(); err != nil {
				t.Fatal(err)
			}
			tr, err = Open(pool, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, r, err)
			}
			for k, want := range oracle {
				got, ok := tr.Get(k)
				if !ok || got != want {
					t.Fatalf("seed %d round %d: Get(%d)=%d,%v want %d",
						seed, r, k, got, ok, want)
				}
			}
			if tr.Len() != uint64(len(oracle)) {
				t.Fatalf("seed %d: Len=%d oracle=%d", seed, tr.Len(), len(oracle))
			}
		}
		pool.Close()
	}
}

func TestBTreeOnUndoEngine(t *testing.T) {
	// The tree is engine-agnostic: the same structure survives crashes on
	// the PMDK-style baseline.
	pool, tr := newTree(t, "PMDK")
	for k := uint64(1); k <= 60; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 60 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestOpenEmptySlot(t *testing.T) {
	pool, _ := specpmt.Open(specpmt.Config{})
	defer pool.Close()
	if _, err := Open(pool, 5); err == nil {
		t.Fatal("Open on an empty slot should fail")
	}
}
