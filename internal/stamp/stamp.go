// Package stamp generates synthetic transactional workloads with the write
// profiles of the STAMP benchmark suite (Minh et al., IISWC'08), which the
// SpecPMT paper evaluates on (§7.1.1, all applications except bayes).
//
// STAMP itself is a C suite; what the paper's evaluation exercises is each
// application's *transactional write profile* — how many transactions run,
// how many durable updates each makes, how large they are, how much
// computation separates commits, and how skewed the update addresses are.
// Table 2 of the paper characterises exactly these quantities; the profiles
// below are parameterised from it (transaction counts are scaled down for
// simulation, preserving per-transaction shape).
package stamp

import (
	"fmt"

	"specpmt/internal/sim"
)

// Profile describes one application's transactional behaviour.
type Profile struct {
	// Name is the STAMP application name.
	Name string
	// AvgTxSize is Table 2's "Avg. size (B)": mean durable write-set bytes
	// per transaction.
	AvgTxSize float64
	// PaperTxCount and PaperUpdates are Table 2's "Num of tx" and "Num of
	// updates" (reported, not executed; runs are scaled).
	PaperTxCount int64
	// PaperUpdates is the total durable update count in the paper's run.
	PaperUpdates int64
	// Footprint is the durable working-set size in bytes.
	Footprint int
	// ComputeNs is the mean non-memory work per transaction in nanoseconds
	// (kmeans-low is compute-heavy between commits, §7.3: "this application
	// devotes much time to computation between consecutive transactions").
	ComputeNs int64
	// HWComputeMul scales ComputeNs for the hardware-simulator runs: the
	// paper evaluates the software solution with STAMP's native inputs and
	// the hardware solution with the (compute-denser) simulator inputs
	// (§7.1.1), which is what makes kmeans-low commit-latency insensitive
	// in Figure 13.
	HWComputeMul float64
	// HotSkew is the Zipf exponent of update addresses: high for kmeans
	// (cluster centres), low for scatter-heavy apps (ssca2, vacation).
	HotSkew float64
	// ReadsPerUpdate is the ratio of transactional loads to updates.
	ReadsPerUpdate float64
	// WriteIntensive marks the five applications the paper classifies as
	// write-intensive (§7.2: the five with the largest update counts).
	WriteIntensive bool
}

// UpdatesPerTx returns the mean durable updates per transaction.
func (p Profile) UpdatesPerTx() float64 {
	return float64(p.PaperUpdates) / float64(p.PaperTxCount)
}

// UpdateSize returns the mean bytes per individual update.
func (p Profile) UpdateSize() float64 {
	return p.AvgTxSize / p.UpdatesPerTx()
}

// Profiles returns the nine evaluated applications in the paper's order.
// Table 2 values are verbatim; footprint, compute, and skew are calibrated
// so the simulated runs reproduce the paper's relative behaviour.
func Profiles() []Profile {
	return []Profile{
		{Name: "genome", AvgTxSize: 7.2, PaperTxCount: 2_489_218, PaperUpdates: 7_230_727,
			Footprint: 4 << 20, ComputeNs: 3288, HWComputeMul: 0.25, HotSkew: 1.1, ReadsPerUpdate: 2},
		{Name: "intruder", AvgTxSize: 20.5, PaperTxCount: 23_428_126, PaperUpdates: 106_976_163,
			Footprint: 4 << 20, ComputeNs: 4213, HWComputeMul: 0.3, HotSkew: 1.1, ReadsPerUpdate: 2, WriteIntensive: true},
		{Name: "kmeans-low", AvgTxSize: 101, PaperTxCount: 9_874_166, PaperUpdates: 266_600_674,
			Footprint: 256 << 10, ComputeNs: 3074, HWComputeMul: 9, HotSkew: 1.2, ReadsPerUpdate: 1, WriteIntensive: true},
		{Name: "kmeans-high", AvgTxSize: 101, PaperTxCount: 4_106_954, PaperUpdates: 110_887_006,
			Footprint: 256 << 10, ComputeNs: 3246, HWComputeMul: 0.4, HotSkew: 1.2, ReadsPerUpdate: 1, WriteIntensive: true},
		{Name: "labyrinth", AvgTxSize: 1420, PaperTxCount: 1_026, PaperUpdates: 184_190,
			Footprint: 2 << 20, ComputeNs: 2589, HWComputeMul: 0.3, HotSkew: 0.5, ReadsPerUpdate: 1.5},
		{Name: "ssca2", AvgTxSize: 16, PaperTxCount: 22_362_279, PaperUpdates: 89_449_114,
			Footprint: 16 << 20, ComputeNs: 2113, HWComputeMul: 0.4, HotSkew: 0.5, ReadsPerUpdate: 3, WriteIntensive: true},
		{Name: "vacation-low", AvgTxSize: 44.2, PaperTxCount: 4_194_304, PaperUpdates: 31_582_272,
			Footprint: 16 << 20, ComputeNs: 12808, HWComputeMul: 0.15, HotSkew: 0.85, ReadsPerUpdate: 3},
		{Name: "vacation-high", AvgTxSize: 67.8, PaperTxCount: 4_194_304, PaperUpdates: 43_950_938,
			Footprint: 16 << 20, ComputeNs: 10439, HWComputeMul: 0.15, HotSkew: 0.85, ReadsPerUpdate: 3},
		{Name: "yada", AvgTxSize: 175.6, PaperTxCount: 2_415_298, PaperUpdates: 57_844_629,
			Footprint: 8 << 20, ComputeNs: 3003, HWComputeMul: 0.35, HotSkew: 0.9, ReadsPerUpdate: 3, WriteIntensive: true},
	}
}

// ByName looks a profile up.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// OpKind discriminates workload operations.
type OpKind uint8

// Operation kinds.
const (
	OpLoad OpKind = iota
	OpStore
	OpCompute
)

// Op is one operation inside a transaction. Offset and Size address the
// workload's data region; Dur is compute time in nanoseconds.
type Op struct {
	Kind   OpKind
	Offset uint64
	Size   int
	Dur    int64
}

// Tx is one generated transaction.
type Tx struct {
	Ops []Op
}

// Bytes returns the durable write-set size of the transaction.
func (t Tx) Bytes() int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind == OpStore {
			n += op.Size
		}
	}
	return n
}

// Updates returns the number of durable updates in the transaction.
func (t Tx) Updates() int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind == OpStore {
			n++
		}
	}
	return n
}

// Gen deterministically generates the transaction stream of a profile.
type Gen struct {
	p       Profile
	rng     *sim.Rand
	zipf    *sim.Zipf
	nTx     int
	emitted int
	objSize int
	objects int
}

// NewGen builds a generator producing nTx transactions from the given seed.
// Offsets fall in [0, p.Footprint).
func NewGen(p Profile, nTx int, seed uint64) *Gen {
	if nTx <= 0 {
		panic("stamp: nTx must be positive")
	}
	g := &Gen{p: p, rng: sim.NewRand(seed), nTx: nTx}
	// Objects are the granularity of updates: at least one update size,
	// line-padded region count derived from the footprint.
	g.objSize = 16
	for g.objSize < int(p.UpdateSize())+8 {
		g.objSize *= 2
	}
	g.objects = p.Footprint / g.objSize
	if g.objects < 16 {
		g.objects = 16
	}
	g.zipf = sim.NewZipf(g.rng.Split(), g.objects, p.HotSkew)
	return g
}

// Footprint returns the byte size of the data region the stream addresses.
func (g *Gen) Footprint() int { return g.objects * g.objSize }

// Remaining reports how many transactions are left.
func (g *Gen) Remaining() int { return g.nTx - g.emitted }

// Next produces the next transaction, or ok=false when the stream ends.
func (g *Gen) Next() (tx Tx, ok bool) {
	if g.emitted >= g.nTx {
		return Tx{}, false
	}
	g.emitted++
	p := g.p
	// Update count: mean UpdatesPerTx with +-50% jitter, at least 1.
	mean := p.UpdatesPerTx()
	n := int(mean/2 + g.rng.Float64()*mean + 0.5)
	if n < 1 {
		n = 1
	}
	// Compute is split: a leading chunk models inter-transaction work
	// attributed to the transaction period, interior chunks model work
	// between updates.
	lead := p.ComputeNs / 2
	if lead > 0 {
		tx.Ops = append(tx.Ops, Op{Kind: OpCompute, Dur: lead})
	}
	inner := (p.ComputeNs - lead) / int64(n)
	usz := p.UpdateSize()
	for i := 0; i < n; i++ {
		obj := g.zipf.Next()
		base := uint64(obj * g.objSize)
		// Update size: jittered around the mean, at least 1 byte, within
		// the object.
		sz := int(usz/2 + g.rng.Float64()*usz + 0.5)
		if sz < 1 {
			sz = 1
		}
		if sz > g.objSize-8 {
			sz = g.objSize - 8
		}
		off := base + uint64(g.rng.Intn(g.objSize-sz))
		for r := 0; r < int(p.ReadsPerUpdate); r++ {
			robj := g.zipf.Next()
			tx.Ops = append(tx.Ops, Op{Kind: OpLoad, Offset: uint64(robj * g.objSize), Size: 8})
		}
		tx.Ops = append(tx.Ops, Op{Kind: OpStore, Offset: off, Size: sz})
		if inner > 0 {
			tx.Ops = append(tx.Ops, Op{Kind: OpCompute, Dur: inner})
		}
	}
	return tx, true
}

// Stats measures the mean transaction shape of a generated stream without
// consuming a caller's generator.
func Stats(p Profile, nTx int, seed uint64) (avgBytes, avgUpdates float64) {
	g := NewGen(p, nTx, seed)
	var bytes, ups int64
	for {
		tx, ok := g.Next()
		if !ok {
			break
		}
		bytes += int64(tx.Bytes())
		ups += int64(tx.Updates())
	}
	return float64(bytes) / float64(nTx), float64(ups) / float64(nTx)
}

// String renders the profile like a Table 2 row.
func (p Profile) String() string {
	return fmt.Sprintf("%-14s avg=%6.1fB tx=%d updates=%d", p.Name, p.AvgTxSize, p.PaperTxCount, p.PaperUpdates)
}
