package stamp

import (
	"testing"
	"testing/quick"
)

func TestNineProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 9 {
		t.Fatalf("paper evaluates 9 STAMP applications, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"genome", "intruder", "kmeans-low", "kmeans-high",
		"labyrinth", "ssca2", "vacation-low", "vacation-high", "yada"} {
		if !names[want] {
			t.Fatalf("missing profile %q", want)
		}
	}
}

func TestTable2Values(t *testing.T) {
	// Spot-check against Table 2 of the paper.
	p, _ := ByName("labyrinth")
	if p.AvgTxSize != 1420 || p.PaperTxCount != 1026 || p.PaperUpdates != 184190 {
		t.Fatalf("labyrinth row diverges from Table 2: %+v", p)
	}
	p, _ = ByName("kmeans-low")
	if p.AvgTxSize != 101 || p.PaperTxCount != 9_874_166 {
		t.Fatalf("kmeans-low row diverges from Table 2: %+v", p)
	}
}

func TestWriteIntensiveClassification(t *testing.T) {
	// §7.2: the five applications with the largest number of transactional
	// updates are write-intensive.
	want := map[string]bool{
		"intruder": true, "kmeans-low": true, "kmeans-high": true,
		"ssca2": true, "yada": true,
	}
	for _, p := range Profiles() {
		if p.WriteIntensive != want[p.Name] {
			t.Fatalf("%s: WriteIntensive=%v want %v", p.Name, p.WriteIntensive, want[p.Name])
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("genome")
	g1, g2 := NewGen(p, 100, 7), NewGen(p, 100, 7)
	for {
		t1, ok1 := g1.Next()
		t2, ok2 := g2.Next()
		if ok1 != ok2 {
			t.Fatal("streams ended at different points")
		}
		if !ok1 {
			break
		}
		if len(t1.Ops) != len(t2.Ops) {
			t.Fatal("same-seed streams diverged")
		}
		for i := range t1.Ops {
			if t1.Ops[i] != t2.Ops[i] {
				t.Fatal("same-seed ops diverged")
			}
		}
	}
}

func TestGeneratedShapeMatchesTable2(t *testing.T) {
	// The generated stream's mean write-set size and updates per tx must be
	// within 40% of the Table 2 characterisation for every application.
	for _, p := range Profiles() {
		avgBytes, avgUpdates := Stats(p, 400, 11)
		if ratio := avgBytes / p.AvgTxSize; ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: generated avg tx size %.1fB vs Table 2 %.1fB (ratio %.2f)",
				p.Name, avgBytes, p.AvgTxSize, ratio)
		}
		if ratio := avgUpdates / p.UpdatesPerTx(); ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: generated updates/tx %.1f vs Table 2 %.1f (ratio %.2f)",
				p.Name, avgUpdates, p.UpdatesPerTx(), ratio)
		}
	}
}

func TestOffsetsWithinFootprint(t *testing.T) {
	f := func(seed uint64) bool {
		p, _ := ByName("vacation-high")
		g := NewGen(p, 50, seed)
		fp := uint64(g.Footprint())
		for {
			tx, ok := g.Next()
			if !ok {
				return true
			}
			for _, op := range tx.Ops {
				if op.Kind == OpCompute {
					continue
				}
				if op.Offset+uint64(op.Size) > fp {
					return false
				}
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEveryTxHasAStore(t *testing.T) {
	for _, p := range Profiles() {
		g := NewGen(p, 50, 3)
		for {
			tx, ok := g.Next()
			if !ok {
				break
			}
			if tx.Updates() == 0 {
				t.Fatalf("%s generated a transaction with no durable update", p.Name)
			}
		}
	}
}

func TestKmeansHotterThanSSCA2(t *testing.T) {
	// kmeans updates cluster centres (hot); ssca2 scatters over a large
	// graph. Measure distinct objects touched per 1000 updates.
	distinct := func(name string) int {
		p, _ := ByName(name)
		g := NewGen(p, 200, 5)
		seen := map[uint64]bool{}
		count := 0
		for count < 1000 {
			tx, ok := g.Next()
			if !ok {
				break
			}
			for _, op := range tx.Ops {
				if op.Kind == OpStore {
					seen[op.Offset/64] = true
					count++
				}
			}
		}
		return len(seen)
	}
	k, s := distinct("kmeans-high"), distinct("ssca2")
	if k >= s {
		t.Fatalf("kmeans (%d distinct lines) should be hotter than ssca2 (%d)", k, s)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("bayes"); ok {
		t.Fatal("bayes is excluded from the evaluation (unstable performance)")
	}
}

func TestRemaining(t *testing.T) {
	p, _ := ByName("genome")
	g := NewGen(p, 5, 1)
	if g.Remaining() != 5 {
		t.Fatalf("remaining=%d", g.Remaining())
	}
	g.Next()
	if g.Remaining() != 4 {
		t.Fatalf("remaining=%d", g.Remaining())
	}
}
