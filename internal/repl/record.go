// Package repl is the commit-log replication subsystem: a primary server
// ships every committed transaction's effective write set, stamped with a
// monotonically increasing LSN, over TCP to N replicas, which replay the
// records transactionally into their own ThreadedPool + pds/hashmap shards
// — so replica state is itself crash-consistent, and the replica's modeled
// PM cost is measured the same way the primary's is.
//
// The design extends the paper's fence-amortization argument across the
// network hop: the primary's group commit already coalesces many client
// requests into one transaction, and replication ships that transaction as
// ONE record, batches records into one TCP write, and (on the replica)
// replays runs of contiguous same-shard records as one transaction — one
// replica-side commit fence for many primary transactions.
//
// # Wire protocol
//
// Line-oriented, like the client protocol. The replica connects and sends:
//
//	HELLO <shards> <primaryID> <lastLSN> [<shard>]
//
// where primaryID/lastLSN identify the stream position it already holds
// (0 0 for an empty replica). The optional trailing <shard> narrows the
// feed to one shard — cluster migration pulls a single shard this way: the
// snapshot carries only that shard's pairs and the record stream ships only
// records containing at least one op for it (other shards' ops stripped,
// LSNs preserved, so the consumer sees the shard's total order with gaps).
// The primary answers one of:
//
//	ERR <message>                      (shard-count mismatch, ...)
//	RESUME <id> <fromLSN> <headLSN>    (log still holds lastLSN+1...)
//	SNAP <id> <snapLSN> <nkeys>        (full-state bootstrap)
//	  then <nkeys> lines:  K <shard> <key> <val>
//	  then:                SNAPEND
//
// followed in both cases by the record stream — one committed transaction
// per line, shipped in batches:
//
//	T <lsn> <n> {s <shard> <key> <val> | d <shard> <key>} x n
//
// interleaved with idle heartbeats carrying the primary's log head:
//
//	HB <headLSN>
//
// The replica acknowledges applied records with `ACK <lsn>` lines; the
// primary uses acks for lag accounting, for wait-for-ack commits in
// synchronous mode, and as the resume point after a reconnect. A replica
// whose resume point has fallen off the primary's bounded in-memory log is
// disconnected and re-bootstraps through a fresh snapshot on reconnect —
// the backpressure valve for laggards.
package repl

import (
	"fmt"
	"strconv"

	"specpmt/internal/server"
)

// WOp is one replicated write — a SET (Del false) or DEL (Del true) routed
// to a shard. It is the server's RepWrite, re-exported so the two layers
// share one vocabulary.
type WOp = server.RepWrite

// Record is one committed transaction's logical redo record.
type Record struct {
	LSN uint64
	Ops []WOp
}

// MaxRecordLine bounds an encoded record (or any protocol line); longer
// lines are a protocol error. Sized for a full MULTI block (128 ops) with
// worst-case decimal payloads.
const MaxRecordLine = 1 << 14

// MaxRecordOps bounds the operations one record may carry.
const MaxRecordOps = 512

// AppendRecord encodes rec as a `T` protocol line (with trailing newline)
// onto dst.
func AppendRecord(dst []byte, rec Record) []byte {
	dst = append(dst, 'T', ' ')
	dst = strconv.AppendUint(dst, rec.LSN, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(len(rec.Ops)), 10)
	for _, op := range rec.Ops {
		if op.Del {
			dst = append(dst, " d "...)
		} else {
			dst = append(dst, " s "...)
		}
		dst = strconv.AppendInt(dst, int64(op.Shard), 10)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, op.Key, 10)
		if !op.Del {
			dst = append(dst, ' ')
			dst = strconv.AppendUint(dst, op.Val, 10)
		}
	}
	return append(dst, '\n')
}

// DecodeRecord parses a `T` line (without its trailing newline) produced by
// AppendRecord. ops, when non-nil, is reused as the record's backing
// storage.
func DecodeRecord(line []byte, ops []WOp) (Record, error) {
	var rec Record
	if len(line) > MaxRecordLine {
		return rec, fmt.Errorf("repl: record line too long (%d bytes)", len(line))
	}
	f := fields(line)
	if len(f) < 3 || !tokIs(f[0], 'T') {
		return rec, fmt.Errorf("repl: malformed record %q", clip(line))
	}
	lsn, err := parseUint(f[1])
	if err != nil {
		return rec, fmt.Errorf("repl: bad LSN in %q", clip(line))
	}
	n, err := parseUint(f[2])
	if err != nil || n > MaxRecordOps {
		return rec, fmt.Errorf("repl: bad op count in %q", clip(line))
	}
	rec.LSN = lsn
	rec.Ops = ops[:0]
	i := 3
	for k := uint64(0); k < n; k++ {
		if i >= len(f) {
			return Record{}, fmt.Errorf("repl: truncated record %q", clip(line))
		}
		var op WOp
		var width int
		switch {
		case tokIs(f[i], 's'):
			width = 4
		case tokIs(f[i], 'd'):
			op.Del = true
			width = 3
		default:
			return Record{}, fmt.Errorf("repl: bad op tag %q", clip(f[i]))
		}
		if i+width > len(f) {
			return Record{}, fmt.Errorf("repl: truncated record %q", clip(line))
		}
		shard, err := parseUint(f[i+1])
		if err != nil || shard > 1<<16 {
			return Record{}, fmt.Errorf("repl: bad shard in %q", clip(line))
		}
		op.Shard = int(shard)
		if op.Key, err = parseUint(f[i+2]); err != nil {
			return Record{}, fmt.Errorf("repl: bad key in %q", clip(line))
		}
		if !op.Del {
			if op.Val, err = parseUint(f[i+3]); err != nil {
				return Record{}, fmt.Errorf("repl: bad value in %q", clip(line))
			}
		}
		rec.Ops = append(rec.Ops, op)
		i += width
	}
	if i != len(f) {
		return Record{}, fmt.Errorf("repl: trailing fields in %q", clip(line))
	}
	return rec, nil
}

// fields splits on runs of spaces and tabs without allocating per field.
func fields(line []byte) [][]byte {
	var out [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if j > i {
			out = append(out, line[i:j])
		}
		i = j
	}
	return out
}

func tokIs(b []byte, c byte) bool { return len(b) == 1 && b[0] == c }

// parseUint is strconv.ParseUint(s, 10, 64) over bytes without the string
// allocation.
func parseUint(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, strconv.ErrSyntax
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, strconv.ErrRange
		}
		n = n*10 + d
	}
	return n, nil
}

func clip(b []byte) string {
	const max = 48
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
