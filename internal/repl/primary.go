package repl

import (
	"bufio"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
	"specpmt/internal/obs"
	"specpmt/internal/server"
)

// SyncMode selects how a primary's commit interacts with replication.
type SyncMode int

const (
	// SyncAsync acknowledges commits to clients without waiting for any
	// replica — replication is fire-and-forget off the critical path, the
	// speculative-persistence stance applied to the network hop.
	SyncAsync SyncMode = iota
	// SyncAck stalls each commit until every currently streaming replica
	// has acknowledged its record (bounded by AckTimeout, and degrading to
	// async when no replica is connected).
	SyncAck
)

func (m SyncMode) String() string {
	if m == SyncAck {
		return "ack"
	}
	return "async"
}

// ParseSyncMode parses "async" or "ack".
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "async":
		return SyncAsync, nil
	case "ack":
		return SyncAck, nil
	}
	return 0, fmt.Errorf("repl: unknown sync mode %q (want async or ack)", s)
}

// PrimaryOptions tunes the shipping side.
type PrimaryOptions struct {
	// LogCap bounds retained records (DefaultLogCap if 0).
	LogCap int
	// BatchRecords caps records per shipped batch (default 256).
	BatchRecords int
	// BatchWindow delays shipping after new records arrive so more can
	// coalesce into one TCP write — the replication analogue of the group
	// commit window. 0 ships immediately.
	BatchWindow time.Duration
	// Heartbeat is the idle HB interval (default 200ms).
	Heartbeat time.Duration
	// Sync selects async vs wait-for-ack commits.
	Sync SyncMode
	// AckTimeout bounds a SyncAck commit stall (default 2s).
	AckTimeout time.Duration
	// Tracer, when non-nil, receives ship/ack events on a "repl-primary"
	// track. Replication runs on real network time, so these instants are
	// stamped with wall-clock nanoseconds since the primary started.
	Tracer *specpmt.Tracer
	// Log, when non-nil, receives structured diagnostics; falls back to a
	// Logf adapter, then to discard.
	Log *slog.Logger
	// Spans, when non-nil, receives snapshot-transfer spans on a
	// "repl-primary" track of the live span ring.
	Spans *obs.SpanRecorder
	// Logf, when non-nil, receives diagnostics printf-style (the pre-slog
	// hook); ignored when Log is set.
	Logf func(format string, args ...any)
}

// Primary publishes a server's commit log to replicas: it is the server's
// Replicator (Publish assigns LSNs) and a TCP listener replicas connect to
// for snapshot bootstrap and record tailing.
type Primary struct {
	srv    *server.Server
	log    *Log
	id     uint64
	opts   PrimaryOptions
	track  int
	slog   *slog.Logger
	rec    *obs.SpanRecorder
	strack int32
	start  time.Time
	quit   chan struct{}

	mu      sync.Mutex
	ln      net.Listener
	feeds   map[*feed]struct{}
	ackWake chan struct{}
	closed  bool
	wg      sync.WaitGroup

	snapshots    atomic.Uint64
	resnapshots  atomic.Uint64
	evictions    atomic.Uint64
	syncTimeouts atomic.Uint64

	// shardHeads[s] is the LSN of the last published record containing an
	// op for shard s — the catch-up target for a migration feed of s.
	shardHeads []atomic.Uint64
}

// feed is one connected replica's send state. filter is -1 for a full feed;
// >= 0 for a single-shard migration feed (which never gates SyncAck commits:
// its acked LSN legitimately trails the global head).
type feed struct {
	c         net.Conn
	acked     atomic.Uint64
	streaming atomic.Bool
	filter    int
}

// NewPrimary wraps srv as a replication primary and installs itself as the
// server's Replicator and stats hook. Call Start (or Serve) to accept
// replicas, Close to detach.
func NewPrimary(srv *server.Server, opts PrimaryOptions) *Primary {
	if opts.BatchRecords <= 0 {
		opts.BatchRecords = 256
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 200 * time.Millisecond
	}
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * time.Second
	}
	p := &Primary{
		srv:        srv,
		log:        NewLog(opts.LogCap),
		opts:       opts,
		start:      time.Now(),
		quit:       make(chan struct{}),
		feeds:      make(map[*feed]struct{}),
		ackWake:    make(chan struct{}),
		track:      -1,
		shardHeads: make([]atomic.Uint64, srv.Shards()),
	}
	for p.id == 0 {
		p.id = rand.Uint64() // nonzero: 0 means "no stream position" in HELLO
	}
	if opts.Tracer != nil {
		p.track = opts.Tracer.RegisterTrack("repl-primary")
	}
	switch {
	case opts.Log != nil:
		p.slog = opts.Log
	case opts.Logf != nil:
		p.slog = obs.LogfLogger(opts.Logf)
	default:
		p.slog = obs.Nop()
	}
	p.rec = opts.Spans
	if p.rec != nil {
		p.strack = p.rec.Track("repl-primary")
	}
	srv.SetReplicator(p)
	srv.SetStatsHook(p.emitStats)
	return p
}

// ID returns the primary's random stream identity. A replica that resumes
// with a different id is re-bootstrapped: the in-memory log did not survive
// whatever produced the new id.
func (p *Primary) ID() uint64 { return p.id }

// Log exposes the replication log (head/tail for tests and tools).
func (p *Primary) Log() *Log { return p.log }

// Publish implements server.Replicator: it assigns the next LSN to a
// committed transaction's effective writes and returns it (the server stamps
// the writes' MVCC versions and LSN tokens with it). In SyncAck mode the
// returned wait stalls the calling worker until every streaming replica
// acked the record (or AckTimeout).
func (p *Primary) Publish(writes []server.RepWrite) (uint64, func()) {
	lsn := p.log.Append(writes)
	for i := range writes {
		if s := writes[i].Shard; s >= 0 && s < len(p.shardHeads) {
			// Per-shard publishes are ordered (worker, retirer, or the MULTI
			// barrier), so a plain Store never moves a head backwards.
			p.shardHeads[s].Store(lsn)
		}
	}
	if p.opts.Sync != SyncAck {
		return lsn, nil
	}
	return lsn, func() { p.waitAcked(lsn) }
}

// ShardHead returns the LSN of the last published record that touched shard
// s (0 if none). During a migration cutover the source freezes the shard,
// drains in-flight batches, and hands this LSN to the coordinator as the
// exact point the destination must reach before the epoch bump.
func (p *Primary) ShardHead(s int) uint64 {
	if s < 0 || s >= len(p.shardHeads) {
		return 0
	}
	return p.shardHeads[s].Load()
}

func (p *Primary) waitAcked(lsn uint64) {
	timer := time.NewTimer(p.opts.AckTimeout)
	defer timer.Stop()
	for {
		p.mu.Lock()
		wake := p.ackWake
		waiting := false
		for f := range p.feeds {
			// streaming.Load() first: the handshake writes f.filter before
			// its streaming.Store(true), so the load orders the read.
			if f.streaming.Load() && f.filter < 0 && f.acked.Load() < lsn {
				waiting = true
			}
		}
		p.mu.Unlock()
		if !waiting {
			return
		}
		select {
		case <-wake:
		case <-timer.C:
			p.syncTimeouts.Add(1)
			return
		case <-p.quit:
			return
		}
	}
}

func (p *Primary) broadcastAck() {
	p.mu.Lock()
	wake := p.ackWake
	p.ackWake = make(chan struct{})
	p.mu.Unlock()
	close(wake)
}

// Start begins serving replicas on addr in the background.
func (p *Primary) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Publish the listener before returning so Addr() is usable immediately;
	// Serve re-asserts the same value.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return server.ErrClosed
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.Serve(ln)
	}()
	return nil
}

// Addr returns the replication listener's address (nil before Start/Serve).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Serve accepts replica connections on ln until Close.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return server.ErrClosed
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-p.quit:
				return nil
			default:
				return err
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c)
		}()
	}
}

// Close stops serving, drops every replica, and detaches from the server.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	feeds := make([]*feed, 0, len(p.feeds))
	for f := range p.feeds {
		feeds = append(feeds, f)
	}
	p.mu.Unlock()
	close(p.quit)
	if ln != nil {
		ln.Close()
	}
	for _, f := range feeds {
		f.c.Close()
	}
	p.wg.Wait()
	p.srv.SetReplicator(nil)
	return nil
}

func (p *Primary) nowNs() int64 { return time.Since(p.start).Nanoseconds() }

const handshakeTimeout = 10 * time.Second

func (p *Primary) handle(c net.Conn) {
	f := &feed{c: c, filter: -1}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.feeds[f] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.feeds, f)
		p.mu.Unlock()
		c.Close()
		p.broadcastAck() // a SyncAck waiter may now have zero replicas left
	}()

	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	line, err := readLine(br)
	if err != nil {
		return
	}
	shards, helloID, lastLSN, filter, err := parseHello(line)
	if err != nil {
		writeLine(c, bw, err.Error())
		return
	}
	f.filter = filter
	if shards != p.srv.Shards() {
		writeLine(c, bw, fmt.Sprintf("ERR shard count mismatch: primary %d, replica %d", p.srv.Shards(), shards))
		return
	}

	var next uint64
	if helloID == p.id && lastLSN <= p.log.Head() && lastLSN+1 >= p.log.Tail() {
		next = lastLSN + 1
		if !writeLine(c, bw, fmt.Sprintf("RESUME %d %d %d", p.id, next, p.log.Head())) {
			return
		}
	} else {
		p.snapshots.Add(1)
		if helloID != 0 {
			p.resnapshots.Add(1)
		}
		var ok bool
		if next, ok = p.sendSnapshot(c, bw, filter); !ok {
			return
		}
	}
	f.streaming.Store(true)
	c.SetReadDeadline(time.Time{})

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.ackLoop(f, br)
	}()
	p.stream(f, bw, next, filter)
}

// sendSnapshot streams a full-state bootstrap: the cut is collected into
// memory under Freeze (commits stall only for the copy-out, not for the
// network transfer) and then written out. filter >= 0 restricts the snapshot
// to that shard's pairs (migration feeds). Returns the LSN to tail from.
func (p *Primary) sendSnapshot(c net.Conn, bw *bufio.Writer, filter int) (next uint64, ok bool) {
	type kv struct {
		shard    int
		key, val uint64
	}
	var span0 int64
	if p.rec != nil {
		span0 = p.rec.Now()
	}
	var pairs []kv
	var snapLSN uint64
	err := p.srv.Freeze(func() {
		snapLSN = p.log.Head() // stable: every worker is parked past its publish
		p.srv.RangeAll(func(shard int, key, val uint64) bool {
			if filter < 0 || shard == filter {
				pairs = append(pairs, kv{shard, key, val})
			}
			return true
		})
	})
	if err != nil {
		writeLine(c, bw, "ERR primary closing")
		return 0, false
	}
	p.slog.Info("snapshot bootstrap",
		"peer", c.RemoteAddr().String(), "keys", len(pairs), "lsn", snapLSN)
	c.SetWriteDeadline(time.Now().Add(writeTimeout + time.Duration(len(pairs))*time.Microsecond))
	fmt.Fprintf(bw, "SNAP %d %d %d\n", p.id, snapLSN, len(pairs))
	var buf []byte
	for _, e := range pairs {
		buf = fmt.Appendf(buf[:0], "K %d %d %d\n", e.shard, e.key, e.val)
		if _, err := bw.Write(buf); err != nil {
			return 0, false
		}
	}
	bw.WriteString("SNAPEND\n")
	if bw.Flush() != nil {
		return 0, false
	}
	if p.rec != nil {
		p.rec.Record(obs.Span{Kind: obs.SpanSnapshot, Track: p.strack,
			Start: span0, End: p.rec.Now(), A: uint64(len(pairs)), B: snapLSN})
	}
	return snapLSN + 1, true
}

// ackLoop consumes ACK lines from one replica, advancing its acked LSN for
// lag accounting and SyncAck waiters. Exits (closing the conn, which stops
// the sender) on any read error.
func (p *Primary) ackLoop(f *feed, br *bufio.Reader) {
	defer f.c.Close()
	for {
		f.c.SetReadDeadline(time.Now().Add(10*p.opts.Heartbeat + handshakeTimeout))
		line, err := readLine(br)
		if err != nil {
			return
		}
		fs := fields(line)
		if len(fs) != 2 || string(fs[0]) != "ACK" {
			p.slog.Warn("unexpected replica line",
				"peer", f.c.RemoteAddr().String(), "line", string(clip(line)))
			return
		}
		lsn, err := parseUint(fs[1])
		if err != nil {
			return
		}
		if lsn > f.acked.Load() {
			f.acked.Store(lsn)
		}
		p.broadcastAck()
		if t := p.opts.Tracer; t != nil {
			head := p.log.Head()
			t.ReplAck(p.track, p.nowNs(), lsn, int64(head)-int64(lsn))
		}
	}
}

// stream ships records from next onward, heartbeating when idle. filter >= 0
// narrows the feed to one shard: records are shipped only when they contain
// at least one op for that shard, with other shards' ops stripped (LSNs are
// preserved, so a filtered consumer sees the shard's total order with gaps).
// Returns on connection error, eviction (the replica fell behind the bounded
// log and must re-bootstrap), or Close.
func (p *Primary) stream(f *feed, bw *bufio.Writer, next uint64, filter int) {
	defer f.c.Close()
	hb := time.NewTicker(p.opts.Heartbeat)
	defer hb.Stop()
	var recs []Record
	var fops []WOp
	buf := make([]byte, 0, 1<<16)
	for {
		var ok bool
		recs, ok = p.log.ReadFrom(next, p.opts.BatchRecords, recs)
		if !ok {
			p.evictions.Add(1)
			p.slog.Warn("replica position evicted from log, dropping for re-bootstrap",
				"peer", f.c.RemoteAddr().String(), "lsn", next, "tail", p.log.Tail())
			return
		}
		if len(recs) == 0 {
			wake := p.log.Wake()
			select {
			case <-wake:
				if p.opts.BatchWindow > 0 {
					// Group-commit window for the wire: let more records
					// land before shipping one batch.
					select {
					case <-time.After(p.opts.BatchWindow):
					case <-p.quit:
						return
					}
				}
			case <-hb.C:
				if !writeLine(f.c, bw, fmt.Sprintf("HB %d", p.log.Head())) {
					return
				}
			case <-p.quit:
				return
			}
			continue
		}
		buf = buf[:0]
		shipped := 0
		for _, rec := range recs {
			if filter >= 0 {
				fops = fops[:0]
				for _, op := range rec.Ops {
					if op.Shard == filter {
						fops = append(fops, op)
					}
				}
				if len(fops) == 0 {
					continue
				}
				rec = Record{LSN: rec.LSN, Ops: fops}
			}
			buf = AppendRecord(buf, rec)
			shipped++
		}
		next = recs[len(recs)-1].LSN + 1
		if shipped == 0 {
			// Every record in the batch was filtered out; nothing on the
			// wire, but the cursor still advances past them.
			continue
		}
		if !writeBytes(f.c, bw, buf) {
			return
		}
		if t := p.opts.Tracer; t != nil {
			t.ReplShip(p.track, p.nowNs(), shipped, len(buf), p.log.Head())
		}
	}
}

func (p *Primary) emitStats(emit func(name string, val uint64)) {
	head, tail := p.log.Head(), p.log.Tail()
	var replicas, streaming, migFeeds uint64
	minAcked := ^uint64(0)
	p.mu.Lock()
	for f := range p.feeds {
		replicas++
		if f.streaming.Load() {
			if f.filter >= 0 {
				migFeeds++ // single-shard migration feed: lag not comparable
				continue
			}
			streaming++
			if a := f.acked.Load(); a < minAcked {
				minAcked = a
			}
		}
	}
	p.mu.Unlock()
	if streaming == 0 {
		minAcked = 0
	}
	emit("repl_role_primary", 1)
	emit("repl_migration_feeds", migFeeds)
	emit("repl_head_lsn", head)
	emit("repl_tail_lsn", tail)
	emit("repl_replicas", replicas)
	emit("repl_streaming", streaming)
	emit("repl_min_acked_lsn", minAcked)
	emit("repl_snapshots", p.snapshots.Load())
	emit("repl_resnapshots", p.resnapshots.Load())
	emit("repl_evictions", p.evictions.Load())
	emit("repl_sync_timeouts", p.syncTimeouts.Load())
}

// parseHello parses "HELLO <shards> <primaryID> <lastLSN>" with an optional
// trailing shard filter: "HELLO <shards> <primaryID> <lastLSN> <shard>". A
// filtered feed (used by cluster shard migration) receives only records and
// snapshot pairs touching that one shard. filter is -1 when absent (full
// feed). The returned error's message is a protocol ERR line.
func parseHello(line []byte) (shards int, id, lastLSN uint64, filter int, err error) {
	fs := fields(line)
	if (len(fs) != 4 && len(fs) != 5) || string(fs[0]) != "HELLO" {
		return 0, 0, 0, -1, fmt.Errorf("ERR expected HELLO, got %q", clip(line))
	}
	n, err := parseUint(fs[1])
	if err != nil || n == 0 || n > 1<<16 {
		return 0, 0, 0, -1, fmt.Errorf("ERR bad shard count")
	}
	if id, err = parseUint(fs[2]); err != nil {
		return 0, 0, 0, -1, fmt.Errorf("ERR bad primary id")
	}
	if lastLSN, err = parseUint(fs[3]); err != nil {
		return 0, 0, 0, -1, fmt.Errorf("ERR bad lsn")
	}
	filter = -1
	if len(fs) == 5 {
		f, err := parseUint(fs[4])
		if err != nil || f >= n {
			return 0, 0, 0, -1, fmt.Errorf("ERR bad shard filter")
		}
		filter = int(f)
	}
	return int(n), id, lastLSN, filter, nil
}

const writeTimeout = 10 * time.Second

func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func writeLine(c net.Conn, bw *bufio.Writer, line string) bool {
	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if _, err := bw.WriteString(line); err != nil {
		return false
	}
	if err := bw.WriteByte('\n'); err != nil {
		return false
	}
	return bw.Flush() == nil
}

func writeBytes(c net.Conn, bw *bufio.Writer, b []byte) bool {
	c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if _, err := bw.Write(b); err != nil {
		return false
	}
	return bw.Flush() == nil
}
