package repl

import (
	"fmt"
	"sync/atomic"

	"specpmt"
	"specpmt/internal/server"
)

// CursorRoot is the pool root slot holding the replica's durable
// replication cursor (the shard hash maps occupy slots 0..shards-1, so a
// replica needs shards <= RootSlots-1).
const CursorRoot = specpmt.RootSlots - 1

// Applier replays replication records into a server, transactionally and
// exactly-once across crashes. It owns a durable cursor in the replica's
// own persistent pool — a heap block published through root slot CursorRoot
// holding the primary's stream id and one applied-LSN cell per shard:
//
//	[ primaryID ][ cell 0 ][ cell 1 ] ... [ cell shards-1 ]
//
// Every apply stamps the involved shards' cells with the run's last LSN
// inside the SAME transaction as the replayed writes (via the server's
// Apply extra hook), so a crash can never separate "data applied" from
// "cursor advanced". Because one goroutine applies records strictly in LSN
// order and each apply is atomic, the resume position after any crash is
// max over the cells: the cell holding the maximum belongs to the last
// committed apply, and every record before it was applied by an earlier
// committed apply.
//
// Not safe for concurrent use: one applier goroutine, like the record
// stream it consumes.
type Applier struct {
	srv    *server.Server
	shards int
	// addr is the cursor block (0 until initialised) — atomic because the
	// heap compactor's relocation hook may move the block (and repoint this
	// mirror) from a frozen worker while the applier goroutine is between
	// applies.
	addr atomic.Uint64

	// volatile mirrors of the durable cursor — atomic so stats hooks and
	// test harnesses may read them while the applier goroutine advances
	primaryID atomic.Uint64
	applied   atomic.Uint64

	ops     []server.Op
	results []server.Result
}

// NewApplier binds an applier to srv, reloading any durable cursor a
// previous incarnation left behind.
func NewApplier(srv *server.Server) (*Applier, error) {
	if srv.Shards() > CursorRoot {
		return nil, fmt.Errorf("repl: replica needs a free root slot: shards must be <= %d", CursorRoot)
	}
	a := &Applier{srv: srv, shards: srv.Shards()}
	a.Reload()
	srv.OnRelocate(a.relocate)
	return a, nil
}

// relocate is the applier's server.RelocateHook: when heap compaction picks
// the durable cursor block, copy its cells into the staged destination in
// one transaction and repoint the root slot — the same publish order
// BeginSnapshot uses, so a crash between the two leaves the root on the
// still-allocated old block. A cursor block allocated but not yet published
// (a crash window inside BeginSnapshot) is not claimed; the compaction pass
// aborts harmlessly.
func (a *Applier) relocate(old, new specpmt.Addr, n int) (bool, error) {
	pool := a.srv.Pool()
	if old == 0 || pool.Root(CursorRoot) != uint64(old) {
		return false, nil
	}
	tx := pool.Thread(0).Begin()
	for off := specpmt.Addr(0); off < specpmt.Addr((1+a.shards)*8); off += 8 {
		tx.StoreUint64(new+off, tx.LoadUint64(old+off))
	}
	if err := tx.Commit(); err != nil {
		return true, err
	}
	if err := pool.SetRoot(CursorRoot, uint64(new)); err != nil {
		return true, err
	}
	a.addr.Store(uint64(new))
	return true, nil
}

// Reload re-reads the durable cursor into the volatile mirrors — after
// construction and after a crash/recover of the underlying pool.
func (a *Applier) Reload() {
	pool := a.srv.Pool()
	a.addr.Store(pool.Root(CursorRoot))
	a.primaryID.Store(0)
	a.applied.Store(0)
	if a.addr.Load() == 0 {
		return
	}
	a.primaryID.Store(pool.ReadUint64(specpmt.Addr(a.addr.Load())))
	var applied uint64
	for i := 0; i < a.shards; i++ {
		if lsn := pool.ReadUint64(a.cell(i)); lsn > applied {
			applied = lsn
		}
	}
	a.applied.Store(applied)
	// Everything at or below the cursor is durably applied and readable, so
	// the published watermark (the GETAT gate) may resume there.
	a.srv.AdvancePublished(applied)
}

// CheckRecovered is the cursor's recovery-invariant checker
// (internal/recovery): after a replica crash and pool recovery, the durable
// cursor block must decode sanely. maxLSN is the highest LSN the primary
// ever shipped; any cell beyond it can only be a torn stamp (the stamp
// commits in the same transaction as the replayed writes, so a crash must
// never expose a half-written one). The volatile mirror, when reloaded
// from this cursor block, must sit exactly at the max cell — the resume
// position the exactly-once argument rests on.
func (a *Applier) CheckRecovered(maxLSN uint64) error {
	pool := a.srv.Pool()
	addr := specpmt.Addr(pool.Root(CursorRoot))
	if addr == 0 {
		// Never bootstrapped: nothing durable to check, and the mirror must
		// agree that nothing was applied.
		if got := a.applied.Load(); got != 0 {
			return fmt.Errorf("repl: no durable cursor but volatile applied LSN is %d", got)
		}
		return nil
	}
	var durable uint64
	for i := 0; i < a.shards; i++ {
		lsn := pool.ReadUint64(addr + 8 + specpmt.Addr(i)*8)
		if lsn > maxLSN {
			return fmt.Errorf("repl: cursor cell %d holds LSN %d beyond the primary's shipped LSN %d (torn stamp)",
				i, lsn, maxLSN)
		}
		if lsn > durable {
			durable = lsn
		}
	}
	if specpmt.Addr(a.addr.Load()) == addr {
		if got := a.applied.Load(); got != durable {
			return fmt.Errorf("repl: volatile applied LSN %d does not match durable cursor %d", got, durable)
		}
	}
	return nil
}

// PrimaryID returns the stream identity the cursor belongs to (0 = none:
// never bootstrapped, or a snapshot was cut short by a crash).
func (a *Applier) PrimaryID() uint64 { return a.primaryID.Load() }

// AppliedLSN returns the last applied LSN; the replica resumes tailing at
// AppliedLSN()+1.
func (a *Applier) AppliedLSN() uint64 { return a.applied.Load() }

func (a *Applier) cell(shard int) specpmt.Addr {
	return specpmt.Addr(a.addr.Load()) + 8 + specpmt.Addr(shard)*8
}

// stamp runs extra as its own transaction through the server's apply path,
// using a harmless GET as the vehicle (the ops slice must be non-empty for
// shard routing; a GET mutates nothing).
func (a *Applier) stamp(extra func(specpmt.Tx)) error {
	a.ops = append(a.ops[:0], server.Op{Kind: server.OpGet})
	_, err := a.srv.Apply(a.ops, extra, a.results[:0])
	return err
}

// BeginSnapshot prepares the cursor for a full-state bootstrap: it
// allocates the cursor block on first use and durably clears the primary
// id, so a crash mid-snapshot reports id 0 and forces a fresh bootstrap
// instead of resuming from a half-applied state.
func (a *Applier) BeginSnapshot() error {
	if a.addr.Load() == 0 {
		pool := a.srv.Pool()
		addr, err := pool.Alloc((1 + a.shards) * 8)
		if err != nil {
			return fmt.Errorf("repl: allocating cursor: %w", err)
		}
		a.addr.Store(uint64(addr))
		// Zero the whole block transactionally BEFORE publishing it via the
		// root slot: a crash in between leaks the block (harmless) but can
		// never expose garbage cells as a resume position.
		err = a.stamp(func(tx specpmt.Tx) {
			for off := 0; off < (1+a.shards)*8; off += 8 {
				tx.StoreUint64(addr+specpmt.Addr(off), 0)
			}
		})
		if err != nil {
			a.addr.Store(0)
			return err
		}
		if err := pool.SetRoot(CursorRoot, uint64(addr)); err != nil {
			a.addr.Store(0)
			return err
		}
	} else if err := a.stamp(func(tx specpmt.Tx) { tx.StoreUint64(specpmt.Addr(a.addr.Load()), 0) }); err != nil {
		return err
	}
	a.primaryID.Store(0)
	a.applied.Store(0)
	return nil
}

// ClearAll deletes every key currently in the store — the first step of a
// re-bootstrap, so stale keys absent from the incoming snapshot cannot
// survive it. Runs batched deletes through the normal apply path.
func (a *Applier) ClearAll() error {
	var keys []uint64
	err := a.srv.Freeze(func() {
		a.srv.RangeAll(func(_ int, key, _ uint64) bool {
			keys = append(keys, key)
			return true
		})
	})
	if err != nil {
		return err
	}
	const batch = 128
	for len(keys) > 0 {
		n := min(batch, len(keys))
		a.ops = a.ops[:0]
		for _, k := range keys[:n] {
			a.ops = append(a.ops, server.Op{Kind: server.OpDel, Key: k})
		}
		if _, err := a.srv.Apply(a.ops, nil, a.results[:0]); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// ApplySnapshot applies one batch of bootstrap pairs. The cursor does not
// move: a crash mid-snapshot re-bootstraps (BeginSnapshot cleared the id),
// and re-applying SETs over a partial snapshot is idempotent.
func (a *Applier) ApplySnapshot(pairs []WOp) error {
	a.ops = a.ops[:0]
	for _, kv := range pairs {
		a.ops = append(a.ops, server.Op{Kind: server.OpSet, Key: kv.Key, Arg1: kv.Val})
	}
	if len(a.ops) == 0 {
		return nil
	}
	_, err := a.srv.Apply(a.ops, nil, a.results[:0])
	return err
}

// EndSnapshot durably commits the bootstrap: primary id and every cell are
// stamped to the snapshot's LSN in one transaction, making the replica
// resumable from snapLSN+1.
func (a *Applier) EndSnapshot(primaryID, snapLSN uint64) error {
	err := a.stamp(func(tx specpmt.Tx) {
		tx.StoreUint64(specpmt.Addr(a.addr.Load()), primaryID)
		for i := 0; i < a.shards; i++ {
			tx.StoreUint64(a.cell(i), snapLSN)
		}
	})
	if err != nil {
		return err
	}
	a.primaryID.Store(primaryID)
	a.applied.Store(snapLSN)
	// The bootstrap batches reached the store without LSNs (marking the
	// MVCC stores stale); the whole store now IS the state at snapLSN, so
	// rebuild the version stores with that LSN as the visibility floor.
	return a.srv.ResetMVCC(snapLSN)
}

// ApplyRun replays a coalesced run of records as ONE transaction — the
// replica-side fence amortization: many primary transactions, one replica
// commit. Records must be contiguous in LSN order starting at
// AppliedLSN()+1. Returns the number of data operations applied.
func (a *Applier) ApplyRun(recs []Record) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	if first := recs[0].LSN; first != a.applied.Load()+1 {
		return 0, fmt.Errorf("repl: apply out of order: got lsn %d, want %d", first, a.applied.Load()+1)
	}
	last := recs[len(recs)-1].LSN
	a.ops = a.ops[:0]
	var touched [specpmt.RootSlots]bool
	for _, rec := range recs {
		for _, w := range rec.Ops {
			if w.Shard < 0 || w.Shard >= a.shards {
				return 0, fmt.Errorf("repl: record %d routes to shard %d of %d", rec.LSN, w.Shard, a.shards)
			}
			touched[w.Shard] = true
			if w.Del {
				a.ops = append(a.ops, server.Op{Kind: server.OpDel, Key: w.Key})
			} else {
				a.ops = append(a.ops, server.Op{Kind: server.OpSet, Key: w.Key, Arg1: w.Val})
			}
		}
	}
	extra := func(tx specpmt.Tx) {
		for i := range a.shards {
			if touched[i] {
				tx.StoreUint64(a.cell(i), last)
			}
		}
	}
	if len(a.ops) == 0 {
		// A run of empty records (e.g. all-GET MULTIs produce no effective
		// writes... the primary does not ship those, but be safe): just
		// stamp the cursor forward (GET vehicle, as in stamp), still at
		// LSN last so the published watermark advances.
		extraAll := func(tx specpmt.Tx) {
			for i := range a.shards {
				tx.StoreUint64(a.cell(i), last)
			}
		}
		a.ops = append(a.ops[:0], server.Op{Kind: server.OpGet})
		if _, err := a.srv.ApplyAt(last, a.ops, extraAll, a.results[:0]); err != nil {
			return 0, err
		}
		a.applied.Store(last)
		return 0, nil
	}
	if _, err := a.srv.ApplyAt(last, a.ops, extra, a.results[:0]); err != nil {
		return 0, err
	}
	a.applied.Store(last)
	return len(a.ops), nil
}
