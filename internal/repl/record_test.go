package repl

import (
	"bytes"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{LSN: 1, Ops: nil},
		{LSN: 7, Ops: []WOp{{Shard: 0, Key: 42, Val: 99}}},
		{LSN: 8, Ops: []WOp{{Shard: 3, Del: true, Key: 42}}},
		{LSN: ^uint64(0), Ops: []WOp{
			{Shard: 1, Key: ^uint64(0), Val: 0},
			{Shard: 2, Del: true, Key: 0},
			{Shard: 0, Key: 5, Val: ^uint64(0)},
		}},
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendRecord(buf[:0], want)
		if buf[len(buf)-1] != '\n' {
			t.Fatalf("no trailing newline in %q", buf)
		}
		got, err := DecodeRecord(buf[:len(buf)-1], nil)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", buf, err)
		}
		if got.LSN != want.LSN || len(got.Ops) != len(want.Ops) {
			t.Fatalf("round trip of %+v: got %+v", want, got)
		}
		for i := range want.Ops {
			if got.Ops[i] != want.Ops[i] {
				t.Fatalf("op %d: got %+v, want %+v", i, got.Ops[i], want.Ops[i])
			}
		}
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	bad := []string{
		"",
		"T",
		"T 1",
		"T x 0",
		"T 1 1",                    // truncated op
		"T 1 1 s 0 1",              // set missing value
		"T 1 1 q 0 1 2",            // bad tag
		"T 1 2 s 0 1 2",            // op count says 2, one present
		"T 1 0 s 0 1 2",            // trailing fields
		"T 1 1 s 99999999 1 2",     // absurd shard
		"T 1 1 s 0 1 2 d 0 1",      // trailing op beyond count
		"T 18446744073709551616 0", // LSN overflow
		"T 1 513",                  // over MaxRecordOps
	}
	for _, line := range bad {
		if _, err := DecodeRecord([]byte(line), nil); err == nil {
			t.Errorf("DecodeRecord(%q) accepted", line)
		}
	}
}

// FuzzDecodeRecord mirrors the server codec's FuzzParseCommand: any input
// must decode without panicking, and anything that decodes must survive an
// encode/decode round trip byte-for-byte.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte("T 1 2 s 0 42 99 d 3 7"))
	f.Add([]byte("T 0 0"))
	f.Add([]byte("T 18446744073709551615 1 s 65536 0 0"))
	f.Add([]byte("HB 9"))
	f.Add([]byte("K 0 1 2"))
	f.Add([]byte("T 5 1 d 2 11"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeRecord(line, nil)
		if err != nil {
			return
		}
		enc := AppendRecord(nil, rec)
		rec2, err := DecodeRecord(enc[:len(enc)-1], nil)
		if err != nil {
			t.Fatalf("re-decode of %q (from %q): %v", enc, line, err)
		}
		enc2 := AppendRecord(nil, rec2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip: %q -> %q -> %q", line, enc, enc2)
		}
	})
}

func TestLogEvictionAndResume(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append([]WOp{{Key: uint64(i)}})
	}
	if head := l.Head(); head != 10 {
		t.Fatalf("head = %d, want 10", head)
	}
	if tail := l.Tail(); tail != 7 {
		t.Fatalf("tail = %d, want 7", tail)
	}
	if _, ok := l.ReadFrom(5, 100, nil); ok {
		t.Fatal("ReadFrom below tail succeeded; want eviction signal")
	}
	recs, ok := l.ReadFrom(7, 100, nil)
	if !ok || len(recs) != 4 {
		t.Fatalf("ReadFrom(7) = %d records, ok=%v", len(recs), ok)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(7+i) || rec.Ops[0].Key != uint64(6+i) {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
	// Caught-up reader: empty result, then woken by the next append.
	if recs, ok := l.ReadFrom(11, 100, nil); !ok || len(recs) != 0 {
		t.Fatalf("caught-up ReadFrom = %d records, ok=%v", len(recs), ok)
	}
	wake := l.Wake()
	l.Append(nil)
	select {
	case <-wake:
	default:
		t.Fatal("Append did not wake waiters")
	}
}
