package repl

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"specpmt/internal/server"
)

// TestMigrationFeedEvictionForcesFilteredResnapshot is the deterministic
// unit test for log eviction racing a migrating shard's RESUME. A filtered
// (single-shard) feed resumes in-window, then a write burst pushes the
// bounded log's tail past the feed's cursor; the primary must drop the feed
// (evictions counter) and, on reconnect at the now-stale position, refuse
// the resume and force a fresh FILTERED snapshot (resnapshots counter)
// carrying exactly the shard's pairs — the re-snapshot path a migration
// puller takes when it falls behind.
//
// Determinism: the replica side is a scripted net.Pipe peer. Pipe writes are
// unbuffered, so the feed can never run ahead of this test's reads, and with
// BatchRecords=1 it holds at most one record beyond its durable cursor —
// every interleaving the burst can produce is enumerated below.
func TestMigrationFeedEvictionForcesFilteredResnapshot(t *testing.T) {
	srv, addr := startServer(t, 2)
	p := NewPrimary(srv, PrimaryOptions{
		LogCap:       8,
		BatchRecords: 1,
		Heartbeat:    time.Hour, // keep HB lines out of the scripted stream
		Logf:         t.Logf,
	})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer p.Close()
	cl := dial(t, addr) // Apply-originated jobs are internal (not republished)

	oracle := map[uint64]uint64{} // shard 0's expected pairs
	set := func(key, val uint64) {
		t.Helper()
		if _, err := cl.Set(key, val); err != nil {
			t.Fatal(err)
		}
		if server.ShardOf(key, 2) == 0 {
			oracle[key] = val
		}
	}
	// shard0Keys[i] is the i-th key hashing onto shard 0 (ShardOf mixes, so
	// enumerate rather than assume a pattern); every record below must carry
	// a shard-0 op or the filtered feed would silently skip it.
	var shard0Keys []uint64
	for k := uint64(0); len(shard0Keys) < 32; k++ {
		if server.ShardOf(k, 2) == 0 {
			shard0Keys = append(shard0Keys, k)
		}
	}
	// LSN 1..6, all on shard 0.
	for i := 0; i < 6; i++ {
		set(shard0Keys[i], uint64(i)+100)
	}
	if h := p.Log().Head(); h != 6 {
		t.Fatalf("head %d after 6 single-op applies; publishes not synchronous?", h)
	}

	serve := func() (net.Conn, *bufio.Reader) {
		a, b := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.handle(a)
		}()
		t.Cleanup(func() { b.Close() })
		return b, bufio.NewReader(b)
	}
	readLn := func(br *bufio.Reader) string {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimSuffix(line, "\n")
	}
	decode := func(line string) Record {
		t.Helper()
		rec, err := DecodeRecord([]byte(line), nil)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		for _, op := range rec.Ops {
			if op.Shard != 0 {
				t.Fatalf("filtered feed shipped shard %d op in %q", op.Shard, line)
			}
		}
		return rec
	}

	// A migration feed (filter=0) resumes from an in-window position and
	// receives the two retained records past it.
	c1, br1 := serve()
	fmt.Fprintf(c1, "HELLO 2 %d 4 0\n", p.id)
	if got, want := readLn(br1), fmt.Sprintf("RESUME %d 5 6", p.id); got != want {
		t.Fatalf("handshake: %q, want %q", got, want)
	}
	for _, want := range []uint64{5, 6} {
		if rec := decode(readLn(br1)); rec.LSN != want {
			t.Fatalf("resumed stream: LSN %d, want %d", rec.LSN, want)
		}
	}

	// The eviction race: 10 more records (LSN 7..16) move the tail to 9
	// while the feed's cursor sits at 7. Whatever the feed's goroutine was
	// doing, its next log read from a position < 9 must evict it. The pipe
	// allows exactly two outcomes: the feed read record 7 while it was still
	// retained and is blocked writing it to us (we drain it, then its read
	// of LSN 8 evicts), or its first read already found the tail moved and
	// it dropped us without shipping anything.
	for i := 0; i < 10; i++ {
		set(shard0Keys[i], uint64(i)+200)
	}
	if tail := p.Log().Tail(); tail != 9 {
		t.Fatalf("tail %d after burst, want 9", tail)
	}
	for {
		line, err := br1.ReadString('\n')
		if err != nil {
			break // the primary dropped the evicted feed
		}
		if rec := decode(strings.TrimSuffix(line, "\n")); rec.LSN != 7 {
			t.Fatalf("evicted feed shipped LSN %d; only 7 could still be in flight", rec.LSN)
		}
	}
	if got := p.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := p.snapshots.Load(); got != 0 {
		t.Fatalf("premature snapshot: snapshots = %d", got)
	}

	// Reconnecting at the stale cursor must NOT resume: the primary forces a
	// filtered re-snapshot of shard 0 only.
	c2, br2 := serve()
	fmt.Fprintf(c2, "HELLO 2 %d 7 0\n", p.id)
	var gotID, snapLSN uint64
	var n int
	if _, err := fmt.Sscanf(readLn(br2), "SNAP %d %d %d", &gotID, &snapLSN, &n); err != nil {
		t.Fatalf("want SNAP header: %v", err)
	}
	if gotID != p.id || snapLSN != 16 {
		t.Fatalf("SNAP %d %d, want id %d lsn 16", gotID, snapLSN, p.id)
	}
	snap := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		var shard int
		var key, val uint64
		if _, err := fmt.Sscanf(readLn(br2), "K %d %d %d", &shard, &key, &val); err != nil {
			t.Fatalf("snapshot pair %d: %v", i, err)
		}
		if shard != 0 {
			t.Fatalf("filtered snapshot leaked shard %d (key %d)", shard, key)
		}
		snap[key] = val
	}
	if got := readLn(br2); got != "SNAPEND" {
		t.Fatalf("want SNAPEND, got %q", got)
	}
	if len(snap) != len(oracle) {
		t.Fatalf("snapshot has %d pairs, shard 0 holds %d", len(snap), len(oracle))
	}
	for k, want := range oracle {
		if snap[k] != want {
			t.Fatalf("snapshot key %d = %d, want %d", k, snap[k], want)
		}
	}
	if s, rs := p.snapshots.Load(), p.resnapshots.Load(); s != 1 || rs != 1 {
		t.Fatalf("snapshots=%d resnapshots=%d, want 1/1 (forced re-snapshot)", s, rs)
	}

	// The re-snapshotted feed tails live writes from snapLSN+1.
	liveKey := shard0Keys[20]
	set(liveKey, 777)
	rec := decode(readLn(br2))
	if rec.LSN != 17 || len(rec.Ops) != 1 || rec.Ops[0].Key != liveKey || rec.Ops[0].Val != 777 {
		t.Fatalf("post-snapshot tail: %+v", rec)
	}
	fmt.Fprintf(c2, "ACK %d\n", rec.LSN)
}
