package repl

import "sync"

// DefaultLogCap is the default bound on retained records in the primary's
// in-memory replication log.
const DefaultLogCap = 1 << 16

// Log is the primary's bounded in-memory replication log: a ring of redo
// records indexed by LSN. Appends assign the next LSN and evict the oldest
// record once the ring is full; a reader that has fallen behind the tail
// gets ok=false from ReadFrom and must re-bootstrap via snapshot — that is
// the backpressure valve, trading a laggard's resume cost for bounded
// primary memory.
//
// Safe for concurrent use: the server's shard workers append, per-replica
// sender goroutines read.
type Log struct {
	mu   sync.Mutex
	ring []Record
	head uint64 // LSN of the newest record, 0 when empty
	tail uint64 // LSN of the oldest retained record, head+1 when empty
	wake chan struct{}
}

// NewLog returns a log retaining at most cap records (DefaultLogCap if
// cap <= 0).
func NewLog(cap int) *Log {
	if cap <= 0 {
		cap = DefaultLogCap
	}
	return &Log{
		ring: make([]Record, cap),
		tail: 1,
		wake: make(chan struct{}),
	}
}

// Append assigns the next LSN to ops, retains a copy, and wakes waiting
// readers. LSNs start at 1.
func (l *Log) Append(ops []WOp) uint64 {
	l.mu.Lock()
	l.head++
	lsn := l.head
	slot := &l.ring[lsn%uint64(len(l.ring))]
	slot.LSN = lsn
	slot.Ops = append(slot.Ops[:0], ops...)
	if l.head-l.tail+1 > uint64(len(l.ring)) {
		l.tail = l.head - uint64(len(l.ring)) + 1
	}
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
	return lsn
}

// Head returns the newest assigned LSN (0 when the log is empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Tail returns the oldest retained LSN (head+1 when empty).
func (l *Log) Tail() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// ReadFrom copies up to max records starting at LSN from into dst (reusing
// its capacity) and reports whether the position is still retained. When
// from has fallen behind the tail it returns ok=false — the caller must
// re-bootstrap. An empty result with ok=true means the reader is caught up;
// wait on Wake to learn about the next append.
func (l *Log) ReadFrom(from uint64, max int, dst []Record) (recs []Record, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.tail {
		return nil, false
	}
	out := dst[:0]
	for lsn := from; lsn <= l.head && len(out) < max; lsn++ {
		src := &l.ring[lsn%uint64(len(l.ring))]
		var rec Record
		if len(out) < cap(out) {
			rec = out[:len(out)+1][len(out)] // recycle the retired element's Ops buffer
		}
		rec.LSN = src.LSN
		rec.Ops = append(rec.Ops[:0], src.Ops...)
		out = append(out, rec)
	}
	return out, true
}

// Wake returns a channel closed on the next Append — the parking primitive
// for caught-up readers. Re-fetch after every wake-up.
func (l *Log) Wake() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake
}
