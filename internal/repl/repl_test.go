package repl

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"specpmt/internal/server"
)

func startServer(t *testing.T, shards int) (*server.Server, string) {
	t.Helper()
	s, err := server.New(server.Config{Engine: "SpecSPMT", Shards: shards, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func startPrimary(t *testing.T, srv *server.Server, opts PrimaryOptions) *Primary {
	t.Helper()
	opts.Logf = t.Logf
	p := NewPrimary(srv, opts)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func startReplica(t *testing.T, srv *server.Server, primary *Primary) *Replica {
	t.Helper()
	r, err := NewReplica(srv, primary.Addr().String(), ReplicaOptions{
		RetryEvery: 20 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() { r.Close() })
	return r
}

func dial(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitBootstrapped waits until the replica's first snapshot has durably
// completed (it adopted the primary's stream id).
func waitBootstrapped(t *testing.T, r *Replica) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for r.Applier().PrimaryID() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never bootstrapped")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitStreaming waits until the primary reports n streaming replicas.
func waitStreaming(t *testing.T, c *server.Client, n uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		nums, _, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if nums["repl_streaming"] >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d streaming replicas: %v", n, nums)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitApplied(t *testing.T, r *Replica, p *Primary) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for r.AppliedLSN() < p.Log().Head() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at lsn %d, primary head %d", r.AppliedLSN(), p.Log().Head())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// compareState asserts the replica answers every key in [0, keys) exactly
// like the primary.
func compareState(t *testing.T, primAddr, repAddr string, keys uint64) {
	t.Helper()
	pc, rc := dial(t, primAddr), dial(t, repAddr)
	var mismatches int
	for k := uint64(0); k < keys; k++ {
		pv, err := pc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := rc.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if pv.Status != rv.Status || pv.Val != rv.Val {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("key %d: primary (%d,%d), replica (%d,%d)", k, pv.Status, pv.Val, rv.Status, rv.Val)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d keys diverged", mismatches, keys)
	}
}

// TestCatchUpFromEmpty is the acceptance-criteria test: a replica started
// from empty bootstraps via snapshot, tails the live log, and after quiesce
// serves GETs whose values match the primary.
func TestCatchUpFromEmpty(t *testing.T) {
	const keys = 200
	primSrv, primAddr := startServer(t, 4)
	primary := startPrimary(t, primSrv, PrimaryOptions{})
	c := dial(t, primAddr)

	// Pre-replica history: the replica must receive this via snapshot.
	for k := uint64(0); k < keys; k++ {
		if _, err := c.Set(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < keys; k += 17 {
		if _, err := c.Del(k); err != nil {
			t.Fatal(err)
		}
	}

	repSrv, repAddr := startServer(t, 4)
	replica := startReplica(t, repSrv, primary)
	waitApplied(t, replica, primary)

	// Post-connect history: the replica must receive this by tailing,
	// including cross-shard MULTI transactions.
	for k := uint64(0); k < keys; k += 3 {
		if _, err := c.Set(k, k+1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 30; k++ {
		ops := []server.Op{
			{Kind: server.OpSet, Key: k, Arg1: k + 2_000_000},
			{Kind: server.OpSet, Key: k + 100, Arg1: k + 3_000_000},
			{Kind: server.OpDel, Key: k + 50},
		}
		if _, _, err := c.Exec(ops); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, replica, primary)
	compareState(t, primAddr, repAddr, keys+100)

	rc := dial(t, repAddr)
	nums, _, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nums["repl_role_replica"] != 1 || nums["repl_snapshots"] < 1 {
		t.Fatalf("replica stats missing replication counters: %v", nums)
	}
	if nums["repl_lag"] != 0 {
		t.Fatalf("lag = %d after quiesce", nums["repl_lag"])
	}
	if nums["repl_applied_lsn"] != primary.Log().Head() {
		t.Fatalf("applied %d != head %d", nums["repl_applied_lsn"], primary.Log().Head())
	}
}

// TestKillAndResume severs the replica's connection repeatedly under live
// write load and asserts byte-for-byte convergence with no duplicate or
// lost applies: the total records applied across all reconnects must equal
// the primary's head LSN exactly.
func TestKillAndResume(t *testing.T) {
	const keys = 128
	primSrv, primAddr := startServer(t, 4)
	primary := startPrimary(t, primSrv, PrimaryOptions{})
	repSrv, repAddr := startServer(t, 4)
	// Replica attaches before any writes: its snapshot is cut at LSN 0, so
	// every record ever logged must flow through the tail exactly once.
	replica := startReplica(t, repSrv, primary)
	waitBootstrapped(t, replica)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	writerErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		c, err := server.Dial(primAddr, 5*time.Second)
		if err != nil {
			writerErr <- err
			return
		}
		defer c.Close()
		var i uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if _, err := c.Set(i%keys, i); err != nil {
				writerErr <- err
				return
			}
			if i%10 == 0 {
				ops := []server.Op{
					{Kind: server.OpSet, Key: i % keys, Arg1: i},
					{Kind: server.OpSet, Key: (i + 31) % keys, Arg1: i + 1},
				}
				if _, _, err := c.Exec(ops); err != nil {
					writerErr <- err
					return
				}
			}
		}
	}()

	for i := 0; i < 4; i++ {
		time.Sleep(40 * time.Millisecond)
		replica.DropConn()
	}
	time.Sleep(40 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatal(err)
	default:
	}

	waitApplied(t, replica, primary)
	compareState(t, primAddr, repAddr, keys)

	rc := dial(t, repAddr)
	nums, _, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	head := primary.Log().Head()
	if head == 0 {
		t.Fatal("no records were logged; test drove no load")
	}
	if nums["repl_records_applied"] != head {
		t.Fatalf("records applied %d != head lsn %d: lost or duplicate applies across reconnects",
			nums["repl_records_applied"], head)
	}
	if nums["repl_reconnects"] == 0 {
		t.Fatal("DropConn never forced a reconnect")
	}
	t.Logf("head=%d records_applied=%d reconnects=%d snapshots=%d",
		head, nums["repl_records_applied"], nums["repl_reconnects"], nums["repl_snapshots"])
}

// TestEvictionForcesResnapshot pushes a disconnected replica off the
// primary's bounded log and asserts it converges anyway — via a second
// snapshot rather than a resume.
func TestEvictionForcesResnapshot(t *testing.T) {
	const keys = 64
	primSrv, primAddr := startServer(t, 2)
	primary := startPrimary(t, primSrv, PrimaryOptions{LogCap: 32})
	repSrv, repAddr := startServer(t, 2)
	replica := startReplica(t, repSrv, primary)
	waitApplied(t, replica, primary)
	replica.Close()

	c := dial(t, primAddr)
	for i := uint64(0); i < 200; i++ { // 200 records >> LogCap 32
		if _, err := c.Set(i%keys, i); err != nil {
			t.Fatal(err)
		}
	}

	replica2 := startReplica(t, repSrv, primary)
	waitApplied(t, replica2, primary)
	compareState(t, primAddr, repAddr, keys)
	rc := dial(t, repAddr)
	nums, _, err := rc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nums["repl_snapshots"] != 1 {
		t.Fatalf("replica2 bootstrapped %d times, want exactly 1 (re-snapshot after eviction)", nums["repl_snapshots"])
	}
}

// TestPromote flips a caught-up replica into a writable primary via the
// wire-level PROMOTE command.
func TestPromote(t *testing.T) {
	primSrv, primAddr := startServer(t, 4)
	primary := startPrimary(t, primSrv, PrimaryOptions{})
	repSrv, repAddr := startServer(t, 4)
	replica := startReplica(t, repSrv, primary)

	c := dial(t, primAddr)
	for k := uint64(0); k < 50; k++ {
		if _, err := c.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, replica, primary)

	rc := dial(t, repAddr)
	if _, err := rc.Set(1, 1); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("write on replica: err = %v, want read-only rejection", err)
	}
	if err := rc.Promote(); err != nil {
		t.Fatal(err)
	}
	if r, err := rc.Set(1, 777); err != nil || r.Status != server.StatusOK {
		t.Fatalf("write after promote: %v / %+v", err, r)
	}
	if r, err := rc.Get(1); err != nil || r.Val != 777 {
		t.Fatalf("read after promote: %v / %+v", err, r)
	}
	// The pre-promotion history must have survived.
	if r, err := rc.Get(40); err != nil || r.Val != 40 {
		t.Fatalf("replicated key after promote: %v / %+v", err, r)
	}
	if err := rc.Promote(); err == nil {
		t.Fatal("second PROMOTE succeeded; want 'not a replica'")
	}
}

// TestSyncAck asserts wait-for-ack commits: when the SET returns, the
// replica has already applied it — and with no replica connected the
// primary degrades to async rather than stalling.
func TestSyncAck(t *testing.T) {
	primSrv, primAddr := startServer(t, 4)
	primary := startPrimary(t, primSrv, PrimaryOptions{Sync: SyncAck, AckTimeout: 5 * time.Second})
	repSrv, _ := startServer(t, 4)
	replica := startReplica(t, repSrv, primary)
	waitBootstrapped(t, replica)

	c := dial(t, primAddr)
	waitStreaming(t, c, 1)
	for i := uint64(0); i < 20; i++ {
		if _, err := c.Set(i, i); err != nil {
			t.Fatal(err)
		}
		if applied, head := replica.AppliedLSN(), primary.Log().Head(); applied < head {
			t.Fatalf("SET %d returned with replica at lsn %d, head %d: ack was not awaited", i, applied, head)
		}
	}

	replica.Close()
	start := time.Now()
	if _, err := c.Set(999, 999); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("degraded SET took %v; want immediate async fallback", d)
	}
}

// TestStatsHookOnPrimary sanity-checks the primary's replication STATS.
func TestStatsHookOnPrimary(t *testing.T) {
	primSrv, primAddr := startServer(t, 2)
	primary := startPrimary(t, primSrv, PrimaryOptions{})
	repSrv, _ := startServer(t, 2)
	replica := startReplica(t, repSrv, primary)

	c := dial(t, primAddr)
	for i := uint64(0); i < 10; i++ {
		if _, err := c.Set(i, i); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, replica, primary)
	nums, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nums["repl_role_primary"] != 1 || nums["repl_replicas"] != 1 || nums["repl_streaming"] != 1 {
		t.Fatalf("primary stats: %v", nums)
	}
	if nums["repl_head_lsn"] == 0 || nums["repl_min_acked_lsn"] != nums["repl_head_lsn"] {
		t.Fatalf("acked/head mismatch after quiesce: %v", nums)
	}
	var shardTx uint64
	for i := 0; i < 2; i++ {
		shardTx += nums[fmt.Sprintf("shard%d_tx_committed", i)]
	}
	if shardTx == 0 {
		t.Fatalf("per-shard commit counters missing: %v", nums)
	}
	if _, ok := nums["uptime_ms"]; !ok {
		t.Fatalf("uptime missing: %v", nums)
	}
}
