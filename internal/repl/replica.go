package repl

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
	"specpmt/internal/obs"
	"specpmt/internal/server"
)

// ReplicaOptions tunes the tailing side.
type ReplicaOptions struct {
	// RetryEvery is the reconnect backoff (default 300ms).
	RetryEvery time.Duration
	// MaxRun caps records coalesced into one replay transaction (default
	// 64); MaxRunOps caps the total operations in one (default 512).
	MaxRun    int
	MaxRunOps int
	// SnapBatch is the SETs applied per transaction during snapshot
	// bootstrap (default 128).
	SnapBatch int
	// Tracer, when non-nil, receives apply events on a "repl-replica"
	// track, stamped with wall-clock nanoseconds since the replica started.
	Tracer *specpmt.Tracer
	// Log, when non-nil, receives structured diagnostics; falls back to a
	// Logf adapter, then to discard.
	Log *slog.Logger
	// Spans, when non-nil, receives replay-run and bootstrap spans on a
	// "repl-replica" track of the live span ring.
	Spans *obs.SpanRecorder
	// Logf, when non-nil, receives diagnostics printf-style (the pre-slog
	// hook); ignored when Log is set.
	Logf func(format string, args ...any)
}

// Replica turns a server into a read-only follower of a primary's commit
// log: it dials the primary, bootstraps via snapshot (or resumes from its
// durable cursor), replays the record stream transactionally through an
// Applier, acknowledges applied LSNs, and reconnects with resume on any
// connection failure. Promote (or the server's PROMOTE command) detaches it
// and re-enables writes.
type Replica struct {
	srv    *server.Server
	app    *Applier
	addr   string
	opts   ReplicaOptions
	track  int
	slog   *slog.Logger
	rec    *obs.SpanRecorder
	strack int32
	start  time.Time
	quit   chan struct{}

	mu     sync.Mutex
	conn   net.Conn
	closed bool
	wg     sync.WaitGroup

	head       atomic.Uint64
	applied    atomic.Uint64
	reconnects atomic.Uint64
	snapshots  atomic.Uint64
	runs       atomic.Uint64
	records    atomic.Uint64
	opsApplied atomic.Uint64
}

// NewReplica binds srv to a primary at addr: the server becomes read-only
// and its PROMOTE command is wired to Promote. Call Start to begin tailing.
func NewReplica(srv *server.Server, addr string, opts ReplicaOptions) (*Replica, error) {
	if opts.RetryEvery <= 0 {
		opts.RetryEvery = 300 * time.Millisecond
	}
	if opts.MaxRun <= 0 {
		opts.MaxRun = 64
	}
	if opts.MaxRunOps <= 0 {
		opts.MaxRunOps = 512
	}
	if opts.SnapBatch <= 0 {
		opts.SnapBatch = 128
	}
	app, err := NewApplier(srv)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		srv:   srv,
		app:   app,
		addr:  addr,
		opts:  opts,
		start: time.Now(),
		quit:  make(chan struct{}),
		track: -1,
	}
	r.applied.Store(app.AppliedLSN())
	if opts.Tracer != nil {
		r.track = opts.Tracer.RegisterTrack("repl-replica")
	}
	switch {
	case opts.Log != nil:
		r.slog = opts.Log
	case opts.Logf != nil:
		r.slog = obs.LogfLogger(opts.Logf)
	default:
		r.slog = obs.Nop()
	}
	r.rec = opts.Spans
	if r.rec != nil {
		r.strack = r.rec.Track("repl-replica")
	}
	srv.SetReadOnly(true)
	srv.OnPromote(r.Promote)
	srv.SetStatsHook(r.emitStats)
	return r, nil
}

// Applier exposes the replica's durable cursor (tests, tools).
func (r *Replica) Applier() *Applier { return r.app }

// AppliedLSN returns the last replayed LSN.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// Lag returns the last known head-minus-applied record gap.
func (r *Replica) Lag() uint64 {
	head, applied := r.head.Load(), r.applied.Load()
	if head <= applied {
		return 0
	}
	return head - applied
}

// Start begins tailing the primary in the background.
func (r *Replica) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.run()
	}()
}

// stop tears down the tailing loop. Idempotent.
func (r *Replica) stop() bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	close(r.quit)
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	return true
}

// Close stops tailing without changing the server's read-only state.
func (r *Replica) Close() error {
	r.stop()
	return nil
}

// Promote detaches from the primary and makes the server writable — the
// failover path, also reachable over the wire via PROMOTE.
func (r *Replica) Promote() error {
	if !r.stop() {
		return errors.New("not a replica (already promoted or closed)")
	}
	r.srv.OnPromote(nil) // further PROMOTEs answer ERR not a replica
	r.srv.SetReadOnly(false)
	r.slog.Info("promoted", "lsn", r.applied.Load(), "lag", r.Lag())
	return nil
}

// DropConn severs the current connection to the primary, if any — a
// network-fault injection hook for tests; the reconnect loop takes over and
// resumes from the durable cursor.
func (r *Replica) DropConn() {
	r.mu.Lock()
	c := r.conn
	r.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (r *Replica) nowNs() int64 { return time.Since(r.start).Nanoseconds() }

func (r *Replica) run() {
	for {
		select {
		case <-r.quit:
			return
		default:
		}
		err := r.session()
		select {
		case <-r.quit:
			return
		default:
		}
		if err != nil {
			r.slog.Warn("session ended, retrying", "err", err)
		}
		r.reconnects.Add(1)
		select {
		case <-time.After(r.opts.RetryEvery):
		case <-r.quit:
			return
		}
	}
}

// session runs one connection's lifetime: dial, handshake (resume or
// bootstrap), then tail until the stream breaks.
func (r *Replica) session() error {
	c, err := net.DialTimeout("tcp", r.addr, handshakeTimeout)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return nil
	}
	r.conn = c
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		c.Close()
	}()

	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<12)
	if !writeLine(c, bw, fmt.Sprintf("HELLO %d %d %d", r.srv.Shards(), r.app.PrimaryID(), r.app.AppliedLSN())) {
		return fmt.Errorf("sending HELLO")
	}
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	line, err := readLine(br)
	if err != nil {
		return fmt.Errorf("reading handshake: %w", err)
	}
	fs := fields(line)
	switch {
	case len(fs) == 4 && string(fs[0]) == "RESUME":
		from, err1 := parseUint(fs[2])
		head, err2 := parseUint(fs[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad RESUME %q", clip(line))
		}
		if from != r.app.AppliedLSN()+1 {
			return fmt.Errorf("primary resumed at %d, want %d", from, r.app.AppliedLSN()+1)
		}
		r.observeHead(head)
		r.slog.Info("resuming", "lsn", from, "head", head)
	case len(fs) == 4 && string(fs[0]) == "SNAP":
		if err := r.bootstrap(c, br, fs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("handshake refused: %q", clip(line))
	}
	return r.tail(c, br, bw)
}

// bootstrap applies a full-state snapshot: clear surviving state, stream
// the pairs in batched transactions, then durably adopt the primary's id
// and snapshot LSN. A crash anywhere in between leaves primary id 0, which
// forces a fresh (idempotent) bootstrap on restart.
func (r *Replica) bootstrap(c net.Conn, br *bufio.Reader, fs [][]byte) error {
	id, err1 := parseUint(fs[1])
	snapLSN, err2 := parseUint(fs[2])
	nkeys, err3 := parseUint(fs[3])
	if err1 != nil || err2 != nil || err3 != nil || id == 0 {
		return fmt.Errorf("bad SNAP header")
	}
	r.snapshots.Add(1)
	r.slog.Info("bootstrapping", "keys", nkeys, "lsn", snapLSN)
	var span0 int64
	if r.rec != nil {
		span0 = r.rec.Now()
	}
	if err := r.app.BeginSnapshot(); err != nil {
		return err
	}
	if err := r.app.ClearAll(); err != nil {
		return err
	}
	batch := make([]WOp, 0, r.opts.SnapBatch)
	c.SetReadDeadline(time.Now().Add(handshakeTimeout + time.Duration(nkeys)*time.Millisecond/10))
	for i := uint64(0); i < nkeys; i++ {
		line, err := readLine(br)
		if err != nil {
			return fmt.Errorf("reading snapshot: %w", err)
		}
		kf := fields(line)
		if len(kf) != 4 || string(kf[0]) != "K" {
			return fmt.Errorf("bad snapshot line %q", clip(line))
		}
		shard, err1 := parseUint(kf[1])
		key, err2 := parseUint(kf[2])
		val, err3 := parseUint(kf[3])
		if err1 != nil || err2 != nil || err3 != nil || shard >= uint64(r.srv.Shards()) {
			return fmt.Errorf("bad snapshot line %q", clip(line))
		}
		batch = append(batch, WOp{Shard: int(shard), Key: key, Val: val})
		if len(batch) >= r.opts.SnapBatch {
			if err := r.app.ApplySnapshot(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := r.app.ApplySnapshot(batch); err != nil {
		return err
	}
	line, err := readLine(br)
	if err != nil || string(line) != "SNAPEND" {
		return fmt.Errorf("missing SNAPEND")
	}
	if err := r.app.EndSnapshot(id, snapLSN); err != nil {
		return err
	}
	if r.rec != nil {
		r.rec.Record(obs.Span{Kind: obs.SpanSnapshot, Track: r.strack,
			Start: span0, End: r.rec.Now(), A: nkeys, B: snapLSN})
	}
	r.applied.Store(snapLSN)
	r.observeHead(snapLSN)
	return nil
}

// tailTimeout bounds how long the stream may be silent; the primary
// heartbeats every ~200ms, so a minute of silence means the link is dead.
const tailTimeout = time.Minute

// tail consumes the record stream, coalescing back-to-back records already
// buffered on the connection into single replay transactions, and acks each
// applied run.
func (r *Replica) tail(c net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	run := make([]Record, 0, r.opts.MaxRun)
	for {
		c.SetReadDeadline(time.Now().Add(tailTimeout))
		line, err := readLine(br)
		if err != nil {
			return err
		}
		run = run[:0]
		runOps := 0
		for {
			if len(line) > 1 && line[0] == 'H' { // HB <head>
				hf := fields(line)
				if len(hf) == 2 && string(hf[0]) == "HB" {
					if head, err := parseUint(hf[1]); err == nil {
						r.observeHead(head)
					}
				}
				break
			}
			var rec Record
			if len(run) < cap(run) {
				rec.Ops = run[:len(run)+1][len(run)].Ops // recycle the slot's op buffer
			}
			rec, err = DecodeRecord(line, rec.Ops)
			if err != nil {
				return err
			}
			run = append(run, rec)
			runOps += len(rec.Ops)
			if len(run) >= r.opts.MaxRun || runOps >= r.opts.MaxRunOps || br.Buffered() == 0 {
				break
			}
			if line, err = readLine(br); err != nil {
				return err
			}
		}
		if len(run) > 0 {
			var span0 int64
			if r.rec != nil {
				span0 = r.rec.Now()
			}
			ops, err := r.app.ApplyRun(run)
			if err != nil {
				return err
			}
			if r.rec != nil {
				r.rec.Record(obs.Span{Kind: obs.SpanApply, Track: r.strack,
					Start: span0, End: r.rec.Now(), A: uint64(len(run)), B: uint64(ops)})
			}
			applied := r.app.AppliedLSN()
			r.applied.Store(applied)
			r.observeHead(applied)
			r.runs.Add(1)
			r.records.Add(uint64(len(run)))
			r.opsApplied.Add(uint64(ops))
			if t := r.opts.Tracer; t != nil {
				t.ReplApply(r.track, r.nowNs(), len(run), ops, applied)
			}
		}
		if !writeLine(c, bw, fmt.Sprintf("ACK %d", r.app.AppliedLSN())) {
			return fmt.Errorf("sending ACK")
		}
	}
}

func (r *Replica) observeHead(head uint64) {
	for {
		cur := r.head.Load()
		if head <= cur || r.head.CompareAndSwap(cur, head) {
			return
		}
	}
}

func (r *Replica) emitStats(emit func(name string, val uint64)) {
	emit("repl_role_replica", 1)
	emit("repl_applied_lsn", r.applied.Load())
	emit("repl_head_lsn", r.head.Load())
	emit("repl_lag", r.Lag())
	emit("repl_reconnects", r.reconnects.Load())
	emit("repl_snapshots", r.snapshots.Load())
	emit("repl_runs_applied", r.runs.Load())
	emit("repl_records_applied", r.records.Load())
	emit("repl_ops_applied", r.opsApplied.Load())
}
