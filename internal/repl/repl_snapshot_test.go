package repl

import (
	"testing"

	"specpmt/internal/server"
)

// TestReplicaLSNTokenReads exercises the read-your-writes session contract
// across the replication boundary: a client writes on the primary, takes an
// LSN token (the primary's published watermark), and a GETAT at that token
// on the replica must return the write — GETAT parks until the replica's
// published LSN reaches the token, so the answer can never be from before
// the write.
func TestReplicaLSNTokenReads(t *testing.T) {
	src, srcAddr := startServer(t, 2)
	p := startPrimary(t, src, PrimaryOptions{})
	dst, dstAddr := startServer(t, 2)
	r := startReplica(t, dst, p)
	waitBootstrapped(t, r)

	pc := dial(t, srcAddr)
	defer pc.Close()
	rc := dial(t, dstAddr)
	defer rc.Close()

	for i := 0; i < 50; i++ {
		k, v := uint64(1000+i), uint64(i*7+1)
		if res, err := pc.Set(k, v); err != nil || res.Status != server.StatusOK {
			t.Fatalf("SET %d: %+v %v", k, res, err)
		}
		token, err := pc.LSN()
		if err != nil || token == 0 {
			t.Fatalf("LSN after SET %d: %d %v", k, token, err)
		}
		// The replica may not have applied the write yet; GETAT must wait
		// it out rather than answer stale.
		res, err := rc.GetAt(k, token)
		if err != nil {
			t.Fatalf("GETAT %d @%d: %v", k, token, err)
		}
		if res.Status != server.StatusValue || res.Val != v {
			t.Fatalf("GETAT %d @%d: got %+v, want value %d", k, token, res, v)
		}
		if res.LSN < token {
			t.Fatalf("GETAT %d: replied lsn=%d below token %d", k, res.LSN, token)
		}
	}

	// The replica's snapshot fast path serves these reads once caught up —
	// MVCC is live on the replica, not just the primary.
	if dst.MVCCEnabled() && dst.SnapshotReads() == 0 {
		t.Error("replica served no reads from its snapshot path")
	}
}
