package repl

import (
	"net"
	"testing"
	"time"

	"specpmt/internal/server"
)

// TestPipelinedPrimaryConvergence replicates from a primary running the
// binary protocol with depth-4 speculative pipelining. The retirer publishes
// every batch's writes to the replication log only after its retire fence,
// in commit order, so the replica must converge byte-for-byte even though
// the primary acknowledged whole windows of writes with coalesced fences —
// and the applied LSN must land exactly on the primary's head.
func TestPipelinedPrimaryConvergence(t *testing.T) {
	primSrv, err := server.New(server.Config{
		Engine:        "SpecSPMT",
		Shards:        4,
		PoolSize:      64 << 20,
		MaxBatch:      8,
		BatchWindow:   100 * time.Microsecond,
		PipelineDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primSrv.Serve(ln)
	t.Cleanup(func() { primSrv.Close() })
	primAddr := ln.Addr().String()
	primary := startPrimary(t, primSrv, PrimaryOptions{})

	const keys = 160
	c, err := server.DialProto(primAddr, 5*time.Second, "binary")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Pre-replica history through the pipelined path: windows of SETs kept
	// in flight so whole speculative windows retire together.
	inflight := 0
	drain := func(n int) {
		for ; n > 0; n-- {
			if r, err := c.RecvResult(); err != nil || r.Status != server.StatusOK {
				t.Fatalf("windowed SET: %+v %v", r, err)
			}
			inflight--
		}
	}
	for k := uint64(0); k < keys; k++ {
		if err := c.SendOp(server.Op{Kind: server.OpSet, Key: k, Arg1: k * 7}); err != nil {
			t.Fatal(err)
		}
		if inflight++; inflight >= 16 {
			drain(8)
		}
	}
	drain(inflight)

	repSrv, repAddr := startServer(t, 4)
	replica := startReplica(t, repSrv, primary)
	waitApplied(t, replica, primary)

	// Post-connect history the replica must tail live: overwrites, deletes,
	// and cross-shard MULTIs interleaved with pipelined windows.
	for k := uint64(0); k < keys; k += 2 {
		if err := c.SendOp(server.Op{Kind: server.OpSet, Key: k, Arg1: k + 500_000}); err != nil {
			t.Fatal(err)
		}
		if inflight++; inflight >= 16 {
			drain(8)
		}
	}
	drain(inflight)
	for k := uint64(0); k < 24; k++ {
		ops := []server.Op{
			{Kind: server.OpSet, Key: k, Arg1: k + 900_000},
			{Kind: server.OpSet, Key: k + 64, Arg1: k + 910_000},
			{Kind: server.OpDel, Key: k + 32},
		}
		if _, _, err := c.Exec(ops); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, replica, primary)
	compareState(t, primAddr, repAddr, keys)

	if got, head := replica.AppliedLSN(), primary.Log().Head(); got != head {
		t.Fatalf("replica applied LSN %d != primary head %d", got, head)
	}
}
