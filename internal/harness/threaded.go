package harness

import (
	"fmt"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/stamp"
	"specpmt/internal/txn"
	"specpmt/internal/txn/spec"
)

// ThreadedResult is one multi-thread software SpecPMT measurement.
type ThreadedResult struct {
	Threads int
	// ModeledNs is the wall time of the run in virtual nanoseconds: the
	// maximum over the per-thread core clocks (threads run concurrently).
	ModeledNs int64
	// TotalTx is the committed transaction count across threads.
	TotalTx int
}

// Throughput returns committed transactions per modeled millisecond.
func (r ThreadedResult) Throughput() float64 {
	return float64(r.TotalTx) / (float64(r.ModeledNs) / 1e6)
}

// RunThreadedSpec runs nTxPerThread transactions of profile p on each of n
// threads, each thread owning a private SpecPMT log (spec.Pool) and a
// private slice of the data region. Threads contend only on the device's
// shared memory-controller drain pipeline — the scaling question the
// paper's per-thread log design answers (§3.1: "each thread manages its own
// log without consulting with other threads").
//
// dataPersist selects the SpecSPMT-DP variant, whose commit-path data
// flushes saturate the shared pipeline and cap scaling.
func RunThreadedSpec(p stamp.Profile, n, nTxPerThread int, seed uint64, dataPersist bool) (ThreadedResult, error) {
	res := ThreadedResult{Threads: n}
	gens := make([]*stamp.Gen, n)
	fp := 0
	for i := range gens {
		gens[i] = stamp.NewGen(p, nTxPerThread, seed+uint64(i)*1000)
		fp = gens[i].Footprint()
	}
	devSize := pmem.PageSize + n*fp + 8*n*fp + (128 << 20)
	dev := pmem.NewDevice(pmem.Config{Size: devSize, Platform: sim.PlatformSW})
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := dataStart + pmem.Addr(n*fp)
	heap := pmalloc.NewHeap(dataStart, dataEnd)
	logHeap := pmalloc.NewHeap(dataEnd, pmem.Addr(devSize))
	ts := &txn.Timestamp{}
	envs := make([]txn.Env, n)
	for i := range envs {
		envs[i] = txn.Env{
			Dev:     dev,
			Core:    dev.NewCore(),
			Heap:    heap,
			LogHeap: logHeap,
			Root:    pmem.Addr(i * txn.RootSize),
			TS:      ts,
		}
	}
	pool, err := spec.NewPool(envs, spec.Options{DataPersist: dataPersist})
	if err != nil {
		return res, err
	}
	defer pool.Close()
	// The threads model a balanced parallel workload: one transaction per
	// thread per round, with a barrier between rounds that synchronises the
	// virtual clocks. Within a round the threads interleave their flushes on
	// the shared drain pipeline, so bandwidth contention is visible while
	// independent per-thread work overlaps fully.
	buf := make([]byte, 4096)
	for round := 0; round < nTxPerThread; round++ {
		for i := 0; i < n; i++ {
			e := pool.Engine(i)
			base := dataStart + pmem.Addr(i*fp)
			wtx, ok := gens[i].Next()
			if !ok {
				continue
			}
			tx := e.Begin()
			for _, op := range wtx.Ops {
				switch op.Kind {
				case stamp.OpCompute:
					tx.Compute(op.Dur)
				case stamp.OpLoad:
					tx.Load(base+pmem.Addr(op.Offset), buf[:op.Size])
				case stamp.OpStore:
					fillValue(buf[:op.Size], op.Offset)
					tx.Store(base+pmem.Addr(op.Offset), buf[:op.Size])
				}
			}
			if err := tx.Commit(); err != nil {
				return res, fmt.Errorf("harness: thread %d: %w", i, err)
			}
		}
		// Barrier: all cores meet at the round's latest clock.
		maxNow := int64(0)
		for i := range envs {
			if now := envs[i].Core.Now(); now > maxNow {
				maxNow = now
			}
		}
		for i := range envs {
			envs[i].Core.SyncTo(maxNow)
		}
	}
	for i := range envs {
		if now := envs[i].Core.Now(); now > res.ModeledNs {
			res.ModeledNs = now
		}
	}
	res.TotalTx = n * nTxPerThread
	return res, nil
}
