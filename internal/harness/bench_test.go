package harness

import (
	"testing"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
)

// newBenchEngine builds a private device and one engine instance, the same
// shape RunSoftware gives every run.
func newBenchEngine(tb testing.TB, engine string) (txn.Engine, pmem.Addr) {
	tb.Helper()
	const dataBytes = 1 << 20
	devSize := pmem.PageSize + dataBytes + (32 << 20)
	dev := pmem.NewDevice(pmem.Config{Size: devSize, Platform: sim.PlatformSW})
	dev.SetExclusive(true)
	core := dev.NewCore()
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := dataStart + pmem.Addr(dataBytes)
	env := txn.Env{
		Dev:     dev,
		Core:    core,
		Heap:    pmalloc.NewHeap(dataStart, dataEnd),
		LogHeap: pmalloc.NewHeap(dataEnd, pmem.Addr(devSize)),
		Root:    0,
		TS:      &txn.Timestamp{},
	}
	e, err := txn.New(engine, env)
	if err != nil {
		tb.Fatalf("new %s engine: %v", engine, err)
	}
	tb.Cleanup(func() { e.Close() })
	return e, dataStart
}

// commitRound runs one representative transaction: four 64-byte updates.
func commitRound(tb testing.TB, e txn.Engine, dataStart pmem.Addr, i int) {
	var buf [64]byte
	t := e.Begin()
	for u := 0; u < 4; u++ {
		addr := dataStart + pmem.Addr(((i*4+u)%2048)*64)
		t.Store(addr, buf[:])
	}
	if err := t.Commit(); err != nil {
		tb.Fatalf("commit: %v", err)
	}
}

// BenchmarkEngineCommit measures the host-side Begin→Store→Commit cost of
// every software engine (Marathe et al.'s per-engine microbenchmark
// methodology).
func BenchmarkEngineCommit(b *testing.B) {
	for _, engine := range SoftwareEngines() {
		b.Run(engine, func(b *testing.B) {
			e, dataStart := newBenchEngine(b, engine)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitRound(b, e, dataStart, i)
			}
		})
	}
}

// TestHotPathAllocs enforces the alloc budget on the spec engine's
// transaction path: with the reusable tx object, value arenas, and record
// staging buffer, a warm Begin→4×Store→Commit round must stay within a small
// fixed budget (block-chain growth and occasional reclamation amortise to
// well under one allocation per transaction; the budget leaves room for
// those plus map-internal churn).
func TestHotPathAllocs(t *testing.T) {
	e, dataStart := newBenchEngine(t, "SpecSPMT")
	i := 0
	round := func() {
		commitRound(t, e, dataStart, i)
		i++
	}
	for w := 0; w < 300; w++ {
		round() // warm maps, arenas, staging buffers, log blocks
	}
	const budget = 4.0
	if allocs := testing.AllocsPerRun(500, round); allocs > budget {
		t.Fatalf("spec Begin→Commit allocates %.2f times per tx; budget %.1f", allocs, budget)
	}
}
