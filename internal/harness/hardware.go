package harness

import (
	"fmt"

	"specpmt/internal/hwsim"
	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/stamp"
	"specpmt/internal/stats"
	"specpmt/internal/txn"
)

// HardwareEngines lists the engines of the hardware evaluation in Figure
// 13's legend order.
func HardwareEngines() []string {
	return []string{"EDE", "HOOP", "SpecHPMT-DP", "SpecHPMT", "no-log"}
}

// hwEngineStats extracts the CPU-core counters of a hardware engine.
func hwEngineStats(e txn.Engine) *stats.Counters {
	switch eng := e.(type) {
	case *hwsim.EDE:
		return eng.CoreStats()
	case *hwsim.HOOP:
		return eng.CoreStats()
	case *hwsim.SpecHPMT:
		return eng.CoreStats()
	case *hwsim.NoLog:
		return eng.CoreStats()
	}
	return nil
}

// RunHardware executes nTx transactions of profile p under the named
// hardware engine on the default media profile. The compute density uses
// the profile's hardware multiplier (the paper evaluates the hardware
// designs on the compute-denser simulator inputs, §7.1.1). opts, when
// non-nil, overrides SpecHPMT's epoch configuration (Figure 15's sweep).
func RunHardware(engine string, p stamp.Profile, nTx int, seed uint64, opts *hwsim.HWOptions) (Result, error) {
	return RunHardwareOpt(engine, p, nTx, seed, opts, ScenarioConfig{})
}

// RunHardwareOpt is RunHardware under a ScenarioConfig. Hardware runs use
// the profile's hardware-platform latency column (the Table 1 simulator
// configuration); the hwsim CPUs pick the same table up from the device.
func RunHardwareOpt(engine string, p stamp.Profile, nTx int, seed uint64, opts *hwsim.HWOptions, ro ScenarioConfig) (Result, error) {
	if p.HWComputeMul > 0 {
		p.ComputeNs = int64(float64(p.ComputeNs) * p.HWComputeMul)
	}
	gen := stamp.NewGen(p, nTx, seed)
	fp := gen.Footprint()
	logSpace := 4*fp + (96 << 20)
	devSize := pmem.PageSize + fp + logSpace
	dev := pmem.NewDevice(pmem.Config{Size: devSize, Profile: ro.profile(), Platform: sim.PlatformHW})
	// Private, single-goroutine device: skip the per-access mutex.
	dev.SetExclusive(true)
	if ro.Tracer != nil {
		dev.SetTracer(ro.Tracer)
	}
	boot := dev.NewCore()
	boot.SetTrackName("boot")
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := dataStart + pmem.Addr(fp)
	env := txn.Env{
		Dev:     dev,
		Core:    boot,
		Heap:    pmalloc.NewHeap(dataStart, dataEnd),
		LogHeap: pmalloc.NewHeap(dataEnd, pmem.Addr(devSize)),
		Root:    0,
		TS:      &txn.Timestamp{},
	}
	res := Result{Engine: engine, Workload: p.Name, Txns: nTx}
	var e txn.Engine
	var err error
	if opts != nil && (engine == "SpecHPMT" || engine == "SpecHPMT-DP") {
		o := *opts
		o.DataPersist = engine == "SpecHPMT-DP"
		e, err = hwsim.NewSpecHPMT(env, o)
	} else {
		e, err = txn.New(engine, env)
	}
	if err != nil {
		return res, err
	}
	defer e.Close()
	st := hwEngineStats(e)
	if st == nil {
		return res, fmt.Errorf("harness: %q is not a hardware engine", engine)
	}
	buf := make([]byte, 4096)
	var clockStart int64
	for {
		wtx, ok := gen.Next()
		if !ok {
			break
		}
		tx := e.Begin()
		for _, op := range wtx.Ops {
			switch op.Kind {
			case stamp.OpCompute:
				tx.Compute(op.Dur)
			case stamp.OpLoad:
				tx.Load(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
			case stamp.OpStore:
				fillValue(buf[:op.Size], op.Offset)
				tx.Store(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
			}
		}
		if err := tx.Commit(); err != nil {
			return res, fmt.Errorf("harness: %s/%s commit: %w", engine, p.Name, err)
		}
	}
	res.ModeledNs = coreNow(e) - clockStart
	res.Stats = engineSnapshot(e)
	res.PeakLogBytes = st.LogBytesPeak
	runCount.Add(1)
	return res, nil
}

// engineSnapshot merges an engine's counters across its cores.
func engineSnapshot(e txn.Engine) stats.Counters {
	switch eng := e.(type) {
	case *hwsim.EDE:
		return eng.Snapshot()
	case *hwsim.HOOP:
		return eng.Snapshot()
	case *hwsim.SpecHPMT:
		return eng.Snapshot()
	case *hwsim.NoLog:
		return eng.Snapshot()
	}
	return stats.Counters{}
}

// coreNow reads the engine's CPU-core virtual clock.
func coreNow(e txn.Engine) int64 {
	switch eng := e.(type) {
	case *hwsim.EDE:
		return eng.CoreNow()
	case *hwsim.HOOP:
		return eng.CoreNow()
	case *hwsim.SpecHPMT:
		return eng.CoreNow()
	case *hwsim.NoLog:
		return eng.CoreNow()
	}
	return 0
}

// Figure13 reproduces "Speedup over EDE. Evaluated with simulator hardware".
func Figure13(nTx int, seed uint64, sc ScenarioConfig) (Figure, error) {
	series := []string{"HOOP", "SpecHPMT-DP", "SpecHPMT", "no-log"}
	fig := Figure{Title: "Figure 13: Speedup over EDE (hardware, modeled)", Series: series, GeoMean: map[string]float64{}}
	geo := map[string][]float64{}
	grouped, err := hardwareMatrix("EDE", series, nTx, seed, nil, sc)
	if err != nil {
		return fig, err
	}
	for pi, p := range stamp.Profiles() {
		base := grouped[pi][0]
		row := FigureRow{Workload: p.Name, Values: map[string]float64{}}
		for ei, eng := range series {
			s := Speedup(base, grouped[pi][1+ei])
			row.Values[eng] = s
			geo[eng] = append(geo[eng], s)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for eng, xs := range geo {
		fig.GeoMean[eng] = GeoMean(xs)
	}
	return fig, nil
}

// Figure14 reproduces "Reduction of write traffic. Higher is better":
// persistent-memory write bytes of each design relative to EDE.
func Figure14(nTx int, seed uint64, sc ScenarioConfig) (Figure, error) {
	series := []string{"HOOP", "SpecHPMT-DP", "SpecHPMT", "no-log"}
	fig := Figure{Title: "Figure 14: PM write-traffic reduction over EDE (hardware, modeled)", Series: series, GeoMean: map[string]float64{}}
	geo := map[string][]float64{}
	grouped, err := hardwareMatrix("EDE", series, nTx, seed, nil, sc)
	if err != nil {
		return fig, err
	}
	for pi, p := range stamp.Profiles() {
		base := grouped[pi][0]
		row := FigureRow{Workload: p.Name, Values: map[string]float64{}}
		for ei, eng := range series {
			red := 1 - float64(totalTraffic(grouped[pi][1+ei]))/float64(totalTraffic(base))
			row.Values[eng] = red
			geo[eng] = append(geo[eng], 1-red)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for eng, xs := range geo {
		fig.GeoMean[eng] = 1 - GeoMean(xs)
	}
	return fig, nil
}

// totalTraffic sums a run's persistent write bytes.
func totalTraffic(r Result) uint64 { return r.Stats.PMWriteBytes }

// Figure15Point is one epoch-size setting in the sensitivity sweep.
type Figure15Point struct {
	EpochBytes       int
	MemOverheadPct   float64 // average peak live log over EDE's
	AvgSpeedup       float64 // geomean speedup over EDE
	TrafficReduction float64 // average traffic reduction over EDE
}

// Figure15 reproduces the epoch-size sensitivity study: average speedup and
// write-traffic reduction against average memory-space increment (§7.3.1).
func Figure15(nTx int, seed uint64, sc ScenarioConfig) ([]Figure15Point, error) {
	sweeps := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20}
	profiles := stamp.Profiles()
	// One flat job list covering the whole sweep: for each epoch size, an
	// EDE base and a SpecHPMT run per profile, all independent.
	type cell struct {
		base Result
		r    Result
	}
	cells := make([]cell, len(sweeps)*len(profiles))
	optsFor := func(eb int) *hwsim.HWOptions {
		opts := &hwsim.HWOptions{EpochBytes: eb, EpochPages: 200 * eb / (2 << 20), MaxEpochs: 8}
		if opts.EpochPages < 2 {
			opts.EpochPages = 2
		}
		return opts
	}
	err := ForEach(len(cells), func(i int) error {
		eb := sweeps[i/len(profiles)]
		p := profiles[i%len(profiles)]
		base, err := RunHardwareOpt("EDE", p, nTx, seed, nil, sc)
		if err != nil {
			return err
		}
		r, err := RunHardwareOpt("SpecHPMT", p, nTx, seed, optsFor(eb), sc)
		if err != nil {
			return err
		}
		cells[i] = cell{base: base, r: r}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure15Point
	for si, eb := range sweeps {
		var speeds, reds, mems []float64
		for pi, p := range profiles {
			c := cells[si*len(profiles)+pi]
			speeds = append(speeds, Speedup(c.base, c.r))
			reds = append(reds, 1-float64(totalTraffic(c.r))/float64(totalTraffic(c.base)))
			mems = append(mems, float64(c.r.PeakLogBytes)/float64(p.Footprint))
		}
		pt := Figure15Point{EpochBytes: eb, AvgSpeedup: GeoMean(speeds)}
		for _, v := range reds {
			pt.TrafficReduction += v / float64(len(reds))
		}
		for _, v := range mems {
			pt.MemOverheadPct += 100 * v / float64(len(mems))
		}
		out = append(out, pt)
	}
	return out, nil
}

// Figure1Hardware reproduces the bottom half of Figure 1: overheads of EDE
// and HOOP over the no-log ideal.
func Figure1Hardware(nTx int, seed uint64, sc ScenarioConfig) (Figure, error) {
	series := []string{"EDE", "HOOP"}
	fig := Figure{Title: "Figure 1 (bottom): overhead over no-log (hardware, modeled)", Series: series, GeoMean: map[string]float64{}}
	geo := map[string][]float64{}
	grouped, err := hardwareMatrix("no-log", series, nTx, seed, nil, sc)
	if err != nil {
		return fig, err
	}
	for pi, p := range stamp.Profiles() {
		base := grouped[pi][0]
		row := FigureRow{Workload: p.Name, Values: map[string]float64{}}
		for ei, eng := range series {
			ov := Overhead(base, grouped[pi][1+ei])
			row.Values[eng] = ov
			geo[eng] = append(geo[eng], 1+ov)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for eng, xs := range geo {
		fig.GeoMean[eng] = GeoMean(xs) - 1
	}
	return fig, nil
}
