package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"specpmt/internal/stamp"
	"specpmt/internal/stats"
)

// matrixSnapshot runs a representative figure matrix (software Figure 12)
// plus software and hardware counter sweeps filled through the same worker
// pool the bench tool uses, and returns it all as canonical JSON.
func matrixSnapshot(t *testing.T, nTx int, seed uint64) []byte {
	t.Helper()
	f12, err := Figure12(nTx, seed, ScenarioConfig{})
	if err != nil {
		t.Fatalf("Figure12: %v", err)
	}
	type job struct {
		engine string
		hw     bool
	}
	jobs := []job{{"PMDK", false}, {"SpecSPMT", false}, {"EDE", true}, {"SpecHPMT", true}}
	profiles := stamp.Profiles()
	counters := make([]stats.Counters, len(jobs)*len(profiles))
	err = ForEach(len(counters), func(i int) error {
		j := jobs[i/len(profiles)]
		p := profiles[i%len(profiles)]
		var r Result
		var err error
		if j.hw {
			r, err = RunHardware(j.engine, p, nTx, seed, nil)
		} else {
			r, err = RunSoftware(j.engine, p, nTx, seed)
		}
		if err != nil {
			return err
		}
		counters[i] = r.Stats
		return nil
	})
	if err != nil {
		t.Fatalf("counter matrix: %v", err)
	}
	blob, err := json.Marshal(struct {
		F12      Figure
		Counters []stats.Counters
	}{f12, counters})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return blob
}

// TestParallelDeterminism asserts the tentpole property of the parallel
// harness: the same figure matrix run serially (-parallel 1) and with a
// worker pool (-parallel 4) produces bit-identical results — every run owns
// a private device and a seed-keyed workload generator, and results are
// assembled in input order, so scheduling cannot leak into the output.
func TestParallelDeterminism(t *testing.T) {
	const nTx = 20
	const seed = uint64(1)
	defer SetParallelism(0)

	SetParallelism(1)
	serial := matrixSnapshot(t, nTx, seed)
	SetParallelism(4)
	parallel := matrixSnapshot(t, nTx, seed)

	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial and parallel runs diverge:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}
