package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"specpmt/internal/hwsim"
	"specpmt/internal/stamp"
)

// The figure and bench matrices are embarrassingly parallel: every
// RunSoftware/RunHardware invocation builds a private pmem.Device, private
// cores, and a seed-keyed deterministic op stream, so runs share no mutable
// state. The pool below fans independent runs out across goroutines while
// results are always assembled in input order — serial and parallel
// executions of the same matrix produce byte-identical output.

// parallelism is the configured worker count; 0 means "use NumCPU".
var parallelism atomic.Int64

// runCount tallies completed Run* invocations process-wide, so the bench CLI
// can report runs/sec alongside wall-clock time.
var runCount atomic.Int64

// RunCount reports how many software/hardware runs have completed in this
// process.
func RunCount() int64 { return runCount.Load() }

// SetParallelism sets the number of worker goroutines used for independent
// runs in figure/bench matrices. n <= 0 restores the default,
// runtime.NumCPU(). 1 forces fully serial execution.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach invokes fn(0..n-1), fanning the calls across Parallelism() worker
// goroutines. Every index is attempted regardless of other indices' errors;
// the returned error is the lowest-index failure, which makes the error a
// deterministic function of the inputs rather than of goroutine scheduling.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob names one cell of a run matrix.
type runJob struct {
	engine string
	prof   stamp.Profile
	hw     bool
	opts   *hwsim.HWOptions // hardware-only epoch override (Figure 15)
	sc     ScenarioConfig   // media profile (and tracing) for the run
}

// runMatrix executes every job — across the worker pool — and returns the
// results in input order.
func runMatrix(jobs []runJob, nTx int, seed uint64) ([]Result, error) {
	results := make([]Result, len(jobs))
	err := ForEach(len(jobs), func(i int) error {
		j := jobs[i]
		var r Result
		var err error
		if j.hw {
			r, err = RunHardwareOpt(j.engine, j.prof, nTx, seed, j.opts, j.sc)
		} else {
			r, err = RunSoftwareOpt(j.engine, j.prof, nTx, seed, j.sc)
		}
		results[i] = r
		return err
	})
	return results, err
}

// softwareMatrix runs base plus each series engine over every profile and
// returns, per profile, the base result and the series results in order.
func softwareMatrix(base string, series []string, nTx int, seed uint64, sc ScenarioConfig) ([][]Result, error) {
	return groupedMatrix(base, series, nTx, seed, false, nil, sc)
}

// hardwareMatrix is softwareMatrix for the hardware engines.
func hardwareMatrix(base string, series []string, nTx int, seed uint64, opts *hwsim.HWOptions, sc ScenarioConfig) ([][]Result, error) {
	return groupedMatrix(base, series, nTx, seed, true, opts, sc)
}

// groupedMatrix flattens (profile × [base, series...]) into one job list,
// runs it through the pool, and regroups results per profile: out[p][0] is
// the base run, out[p][1+i] is series[i]. opts applies only to SpecHPMT
// variants (RunHardware ignores it otherwise).
func groupedMatrix(base string, series []string, nTx int, seed uint64, hw bool, opts *hwsim.HWOptions, sc ScenarioConfig) ([][]Result, error) {
	profiles := stamp.Profiles()
	width := 1 + len(series)
	jobs := make([]runJob, 0, len(profiles)*width)
	for _, p := range profiles {
		jobs = append(jobs, runJob{engine: base, prof: p, hw: hw, opts: opts, sc: sc})
		for _, eng := range series {
			jobs = append(jobs, runJob{engine: eng, prof: p, hw: hw, opts: opts, sc: sc})
		}
	}
	flat, err := runMatrix(jobs, nTx, seed)
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(profiles))
	for i := range profiles {
		out[i] = flat[i*width : (i+1)*width]
	}
	return out, nil
}
