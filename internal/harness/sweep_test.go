package harness

import (
	"testing"

	"specpmt/internal/stamp"
)

// TestProfileSweepMonotonicity runs the engine × profile sensitivity sweep
// over four built-in profiles and checks the physical orderings the domains
// imply: eADR makes fences issue-only, so every engine must stall no longer
// on optane-eadr than on optane-adr; and every engine must run no slower on
// dram-adr media than on slow-nvm media.
func TestProfileSweepMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep matrix is slow")
	}
	profiles := []string{"optane-adr", "optane-eadr", "dram-adr", "slow-nvm"}
	fig, err := ProfileSweep(40, 1, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Cells) != len(profiles) {
		t.Fatalf("sweep has %d profile rows, want %d", len(fig.Cells), len(profiles))
	}
	for _, eng := range fig.Engines {
		adr, ok := fig.Cell("optane-adr", eng)
		if !ok {
			t.Fatalf("missing cell optane-adr/%s", eng)
		}
		eadr, _ := fig.Cell("optane-eadr", eng)
		if eadr.FenceNs > adr.FenceNs {
			t.Errorf("%s: eADR fence stalls (%d ns) exceed ADR fence stalls (%d ns)", eng, eadr.FenceNs, adr.FenceNs)
		}
		if eadr.ModeledNs > adr.ModeledNs {
			t.Errorf("%s: eADR run (%d ns) slower than ADR run (%d ns)", eng, eadr.ModeledNs, adr.ModeledNs)
		}
		dram, _ := fig.Cell("dram-adr", eng)
		slow, _ := fig.Cell("slow-nvm", eng)
		if dram.ModeledNs > slow.ModeledNs {
			t.Errorf("%s: dram-adr run (%d ns) slower than slow-nvm run (%d ns)", eng, dram.ModeledNs, slow.ModeledNs)
		}
		if adr.GeoOverhead < 0 {
			t.Errorf("%s: negative overhead %.2f over Raw on optane-adr", eng, adr.GeoOverhead)
		}
	}
}

// TestScenarioConfigDefaultByteIdentity pins the refactor invariant at the
// harness layer: an explicit default-profile ScenarioConfig reproduces the
// legacy RunSoftware/RunHardware results exactly.
func TestScenarioConfigDefaultByteIdentity(t *testing.T) {
	p, ok := stamp.ByName("vacation-high")
	if !ok {
		t.Fatal("vacation-high profile missing")
	}
	legacySW, err := RunSoftware("SpecSPMT", p, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	optSW, err := RunSoftwareOpt("SpecSPMT", p, 30, 7, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if legacySW != optSW {
		t.Errorf("RunSoftwareOpt default diverged:\nlegacy %+v\nopt    %+v", legacySW, optSW)
	}
	legacyHW, err := RunHardware("SpecHPMT", p, 30, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	optHW, err := RunHardwareOpt("SpecHPMT", p, 30, 7, nil, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if legacyHW != optHW {
		t.Errorf("RunHardwareOpt default diverged:\nlegacy %+v\nopt    %+v", legacyHW, optHW)
	}
}
