package harness

import (
	"testing"

	"specpmt/internal/stamp"
	"specpmt/internal/trace"
)

// TestTracingIsFree verifies the tentpole invariant of the tracing layer: a
// run with a Tracer attached produces bit-identical modeled times and
// counters to an untraced run. Tracing observes the simulation; it must
// never perturb it.
func TestTracingIsFree(t *testing.T) {
	profile := stamp.Profiles()[0]
	const n = 200

	for _, engine := range append([]string{RawEngine}, SoftwareEngines()...) {
		plain, err := RunSoftware(engine, profile, n, 42)
		if err != nil {
			t.Fatalf("%s untraced: %v", engine, err)
		}
		tr := trace.New()
		traced, err := RunSoftwareOpt(engine, profile, n, 42, ScenarioConfig{Tracer: tr})
		if err != nil {
			t.Fatalf("%s traced: %v", engine, err)
		}
		if traced.ModeledNs != plain.ModeledNs {
			t.Errorf("%s: traced ModeledNs %d != untraced %d", engine, traced.ModeledNs, plain.ModeledNs)
		}
		if traced.Stats != plain.Stats {
			t.Errorf("%s: traced counters differ from untraced:\n%v\nvs\n%v", engine, traced.Stats, plain.Stats)
		}
		if engine != RawEngine && len(tr.Events()) == 0 {
			t.Errorf("%s: tracer attached but saw no events", engine)
		}
	}

	for _, engine := range HardwareEngines() {
		plain, err := RunHardware(engine, profile, n, 42, nil)
		if err != nil {
			t.Fatalf("%s untraced: %v", engine, err)
		}
		tr := trace.New()
		traced, err := RunHardwareOpt(engine, profile, n, 42, nil, ScenarioConfig{Tracer: tr})
		if err != nil {
			t.Fatalf("%s traced: %v", engine, err)
		}
		if traced.ModeledNs != plain.ModeledNs {
			t.Errorf("%s: traced ModeledNs %d != untraced %d", engine, traced.ModeledNs, plain.ModeledNs)
		}
		if traced.Stats != plain.Stats {
			t.Errorf("%s: traced counters differ from untraced", engine)
		}
		if len(tr.Events()) == 0 {
			t.Errorf("%s: tracer attached but saw no events", engine)
		}
	}
}

// TestTracedRunCollectsMetrics spot-checks that a traced software run feeds
// the histograms and samplers the summary reports.
func TestTracedRunCollectsMetrics(t *testing.T) {
	tr := trace.New()
	if _, err := RunSoftwareOpt("SpecSPMT", stamp.Profiles()[0], 100, 7, ScenarioConfig{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics()
	if m.CommitNs.N == 0 {
		t.Error("no commit latencies observed")
	}
	if m.FenceStallNs.N == 0 {
		t.Error("no fence stalls observed")
	}
	if m.TxStores.N == 0 {
		t.Error("no store counts observed")
	}
	if m.LogRecBytes.N == 0 {
		t.Error("no log-record sizes observed")
	}
	if m.WPQDepth.N == 0 {
		t.Error("no WPQ depth samples")
	}
	if m.LogBytesLive.N == 0 {
		t.Error("no live-log samples")
	}
	if m.LogBytesLive.Peak <= 0 {
		t.Error("live-log peak not positive")
	}
}
