package harness

import (
	"fmt"
	"sort"
	"strings"

	"specpmt/internal/stamp"
)

// FigureRow is one application's series values in a figure.
type FigureRow struct {
	Workload string
	// Values maps series name (engine) to the plotted value (speedup,
	// overhead fraction, or reduction fraction, depending on the figure).
	Values map[string]float64
}

// Figure is a reproduced figure: named series over the nine applications
// plus a geometric-mean row.
type Figure struct {
	Title   string
	Series  []string
	Rows    []FigureRow
	GeoMean map[string]float64
}

// Figure12 reproduces "Speedup over PMDK. Evaluated on a real machine":
// Kamino-Tx, SPHT, SpecSPMT-DP, and SpecSPMT, normalised to PMDK, per STAMP
// application.
func Figure12(nTx int, seed uint64, sc ScenarioConfig) (Figure, error) {
	series := []string{"Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"}
	fig := Figure{Title: "Figure 12: Speedup over PMDK (software, modeled)", Series: series, GeoMean: map[string]float64{}}
	geo := map[string][]float64{}
	grouped, err := softwareMatrix("PMDK", series, nTx, seed, sc)
	if err != nil {
		return fig, err
	}
	for pi, p := range stamp.Profiles() {
		base := grouped[pi][0]
		row := FigureRow{Workload: p.Name, Values: map[string]float64{}}
		for ei, eng := range series {
			s := Speedup(base, grouped[pi][1+ei])
			row.Values[eng] = s
			geo[eng] = append(geo[eng], s)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for eng, xs := range geo {
		fig.GeoMean[eng] = GeoMean(xs)
	}
	return fig, nil
}

// Figure1Software reproduces the top half of Figure 1: execution time
// overheads of PMDK and SPHT over transaction-free runs.
func Figure1Software(nTx int, seed uint64, sc ScenarioConfig) (Figure, error) {
	series := []string{"PMDK", "SPHT"}
	fig := Figure{Title: "Figure 1 (top): overhead over no-transaction runs (software, modeled)", Series: series, GeoMean: map[string]float64{}}
	geo := map[string][]float64{}
	grouped, err := softwareMatrix(RawEngine, series, nTx, seed, sc)
	if err != nil {
		return fig, err
	}
	for pi, p := range stamp.Profiles() {
		raw := grouped[pi][0]
		row := FigureRow{Workload: p.Name, Values: map[string]float64{}}
		for ei, eng := range series {
			ov := Overhead(raw, grouped[pi][1+ei])
			row.Values[eng] = ov
			geo[eng] = append(geo[eng], 1+ov)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for eng, xs := range geo {
		fig.GeoMean[eng] = GeoMean(xs) - 1
	}
	return fig, nil
}

// SpecOverhead computes SpecSPMT's execution-time overhead over the
// no-transaction baseline — the paper's headline "10%" claim (§1, §9).
func SpecOverhead(nTx int, seed uint64, sc ScenarioConfig) (perApp map[string]float64, geomean float64, err error) {
	perApp = map[string]float64{}
	var acc []float64
	grouped, err := softwareMatrix(RawEngine, []string{"SpecSPMT"}, nTx, seed, sc)
	if err != nil {
		return nil, 0, err
	}
	for pi, p := range stamp.Profiles() {
		ov := Overhead(grouped[pi][0], grouped[pi][1])
		perApp[p.Name] = ov
		acc = append(acc, 1+ov)
	}
	return perApp, GeoMean(acc) - 1, nil
}

// Table2 reproduces the workload characterisation: paper-reported counts and
// the measured shape of the generated streams.
type Table2Row struct {
	App                string
	PaperAvgSize       float64
	PaperTxns          int64
	PaperUpdates       int64
	GeneratedAvgSize   float64
	GeneratedUpdPerTx  float64
	PaperUpdatesPerTxn float64
}

// Table2 measures nTx generated transactions per application.
func Table2(nTx int, seed uint64) []Table2Row {
	var rows []Table2Row
	for _, p := range stamp.Profiles() {
		ab, au := stamp.Stats(p, nTx, seed)
		rows = append(rows, Table2Row{
			App:                p.Name,
			PaperAvgSize:       p.AvgTxSize,
			PaperTxns:          p.PaperTxCount,
			PaperUpdates:       p.PaperUpdates,
			GeneratedAvgSize:   ab,
			GeneratedUpdPerTx:  au,
			PaperUpdatesPerTxn: p.UpdatesPerTx(),
		})
	}
	return rows
}

// Format renders a Figure as an aligned text table. Values are printed as
// multipliers ("3.42x") unless percent is true ("42%").
func (f Figure) Format(percent bool) string {
	var b strings.Builder
	fmt.Fprintln(&b, f.Title)
	series := append([]string{}, f.Series...)
	sort.Strings(series)
	fmt.Fprintf(&b, "%-14s", "app")
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s)
	}
	fmt.Fprintln(&b)
	p := func(v float64) string {
		if percent {
			return fmt.Sprintf("%.0f%%", v*100)
		}
		return fmt.Sprintf("%.2fx", v)
	}
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%-14s", row.Workload)
		for _, s := range series {
			fmt.Fprintf(&b, "%14s", p(row.Values[s]))
		}
		fmt.Fprintln(&b)
	}
	if len(f.GeoMean) > 0 {
		fmt.Fprintf(&b, "%-14s", "geomean")
		for _, s := range series {
			fmt.Fprintf(&b, "%14s", p(f.GeoMean[s]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// MemRow reports software SpecPMT's persistent-memory space overhead for one
// application — the §4/§5 motivation for hardware SpecPMT ("it nearly
// triples the memory space overhead").
type MemRow struct {
	App string
	// DataBytes is the durable working set actually touched.
	DataBytes int64
	// PeakLogBytes is the speculative log's high-water mark.
	PeakLogBytes int64
	// Ratio is PeakLogBytes over DataBytes.
	Ratio float64
}

// SoftwareMemoryOverhead measures the peak live speculative log against the
// touched data footprint for every application.
func SoftwareMemoryOverhead(nTx int, seed uint64, sc ScenarioConfig) ([]MemRow, error) {
	profiles := stamp.Profiles()
	rows := make([]MemRow, len(profiles))
	err := ForEach(len(profiles), func(pi int) error {
		p := profiles[pi]
		r, err := RunSoftwareOpt("SpecSPMT", p, nTx, seed, sc)
		if err != nil {
			return err
		}
		// Touched data: distinct cache lines the stream's stores cover,
		// measured by replaying the generator (repeated updates of hot data
		// do not enlarge the durable working set — that is exactly why the
		// log outgrows it).
		gen := stamp.NewGen(p, nTx, seed)
		lines := map[uint64]bool{}
		for {
			wtx, ok := gen.Next()
			if !ok {
				break
			}
			for _, op := range wtx.Ops {
				if op.Kind != stamp.OpStore || op.Size == 0 {
					continue
				}
				first := op.Offset / 64
				last := (op.Offset + uint64(op.Size) - 1) / 64
				for l := first; l <= last; l++ {
					lines[l] = true
				}
			}
		}
		touched := int64(len(lines) * 64)
		row := MemRow{App: p.Name, DataBytes: touched, PeakLogBytes: r.PeakLogBytes}
		if touched > 0 {
			row.Ratio = float64(r.PeakLogBytes) / float64(touched)
		}
		rows[pi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
