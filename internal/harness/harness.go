// Package harness runs (engine × workload) experiments and formats the
// tables and figures of the SpecPMT paper's evaluation (§7). The software
// experiments (Figure 1 top, Figure 12, Table 2) run the engines of
// internal/txn over the stamp profiles on the pmem device model; the
// hardware experiments (Figure 1 bottom, Figures 13–15) run the engines of
// internal/hwsim.
//
// Reported times are modeled (virtual) nanoseconds on the application core;
// background cores (reclaimer, replayer) are charged separately, mirroring
// the paper's measurement of application execution time with dedicated
// background threads.
package harness

import (
	"fmt"
	"math"

	"specpmt/internal/sim"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/stamp"
	"specpmt/internal/stats"
	"specpmt/internal/trace"
	"specpmt/internal/txn"

	// Engines register themselves with the txn registry.
	_ "specpmt/internal/txn/kamino"
	_ "specpmt/internal/txn/spec"
	_ "specpmt/internal/txn/spht"
	_ "specpmt/internal/txn/undo"
)

// RawEngine is the no-transaction baseline of Figure 1: plain loads and
// stores with no crash consistency whatsoever.
const RawEngine = "Raw"

// SoftwareEngines lists the engines of the software evaluation in the order
// of Figure 12's legend.
func SoftwareEngines() []string {
	return []string{"PMDK", "Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"}
}

// Result is one (engine, workload) measurement.
type Result struct {
	Engine    string
	Workload  string
	Txns      int
	ModeledNs int64
	Stats     stats.Counters
	// BackgroundNs is time spent on helper cores (reclaimer/replayer).
	BackgroundNs int64
	// PeakLogBytes is the live-log high-water mark.
	PeakLogBytes int64
}

// DefaultScale is the per-application transaction count used by the benches.
const DefaultScale = 2000

// ScenarioConfig tunes a run beyond the defaults: the media profile the
// simulated machine is built from, and tracing.
type ScenarioConfig struct {
	// Profile is the media model (latencies, persistence domain, WPQ
	// geometry) the run's device is built with. The zero value resolves to
	// sim.DefaultProfile() (optane-adr), reproducing the paper's platform.
	Profile sim.Profile
	// Tracer, when non-nil, receives every simulation event of the run.
	// Modeled times are bit-identical with and without a tracer.
	Tracer *trace.Tracer
}

// profile resolves the media profile, defaulting to optane-adr.
func (sc ScenarioConfig) profile() sim.Profile {
	if sc.Profile.Name == "" {
		return sim.DefaultProfile()
	}
	return sc.Profile
}

// RunSoftware executes nTx transactions of profile p under the named engine
// (or RawEngine) on the default media profile and returns the measurement.
func RunSoftware(engine string, p stamp.Profile, nTx int, seed uint64) (Result, error) {
	return RunSoftwareOpt(engine, p, nTx, seed, ScenarioConfig{})
}

// RunSoftwareOpt is RunSoftware under a ScenarioConfig. Software runs use
// the profile's software-platform latency column (§7.1.2: the engines are
// measured on a real Optane-class machine).
func RunSoftwareOpt(engine string, p stamp.Profile, nTx int, seed uint64, opts ScenarioConfig) (Result, error) {
	gen := stamp.NewGen(p, nTx, seed)
	fp := gen.Footprint()
	logSpace := 6*fp + (64 << 20)
	devSize := pmem.PageSize + fp + logSpace
	dev := pmem.NewDevice(pmem.Config{Size: devSize, Profile: opts.profile(), Platform: sim.PlatformSW})
	// The device is private to this run and driven by this goroutine alone,
	// so it may skip its per-access mutex. Engines that spawn goroutines
	// (background reclaim) pin locking back on themselves.
	dev.SetExclusive(true)
	if opts.Tracer != nil {
		dev.SetTracer(opts.Tracer)
	}
	core := dev.NewCore()
	core.SetTrackName("app")
	dataStart := pmem.Addr(pmem.PageSize)
	dataEnd := dataStart + pmem.Addr(fp)
	env := txn.Env{
		Dev:     dev,
		Core:    core,
		Heap:    pmalloc.NewHeap(dataStart, dataEnd),
		LogHeap: pmalloc.NewHeap(dataEnd, pmem.Addr(devSize)),
		Root:    0,
		TS:      &txn.Timestamp{},
	}
	res := Result{Engine: engine, Workload: p.Name, Txns: nTx}

	if engine == RawEngine {
		start := core.Now()
		buf := make([]byte, 4096)
		for {
			wtx, ok := gen.Next()
			if !ok {
				break
			}
			for _, op := range wtx.Ops {
				switch op.Kind {
				case stamp.OpCompute:
					core.Compute(op.Dur)
				case stamp.OpLoad:
					core.Load(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
				case stamp.OpStore:
					fillValue(buf[:op.Size], op.Offset)
					core.Store(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
				}
			}
		}
		res.ModeledNs = core.Now() - start
		res.Stats = core.Stats.Snapshot()
		runCount.Add(1)
		return res, nil
	}

	e, err := txn.New(engine, env)
	if err != nil {
		return res, err
	}
	defer e.Close()
	start := core.Now()
	buf := make([]byte, 4096)
	for {
		wtx, ok := gen.Next()
		if !ok {
			break
		}
		tx := e.Begin()
		for _, op := range wtx.Ops {
			switch op.Kind {
			case stamp.OpCompute:
				tx.Compute(op.Dur)
			case stamp.OpLoad:
				tx.Load(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
			case stamp.OpStore:
				fillValue(buf[:op.Size], op.Offset)
				tx.Store(dataStart+pmem.Addr(op.Offset), buf[:op.Size])
			}
		}
		if err := tx.Commit(); err != nil {
			return res, fmt.Errorf("harness: %s/%s commit: %w", engine, p.Name, err)
		}
	}
	res.ModeledNs = core.Now() - start
	res.Stats = core.Stats.Snapshot()
	res.PeakLogBytes = core.Stats.LogBytesPeak
	runCount.Add(1)
	return res, nil
}

// fillValue writes a deterministic pattern derived from the offset.
func fillValue(b []byte, off uint64) {
	v := off*0x9e3779b97f4a7c15 + 1
	for i := range b {
		b[i] = byte(v >> (8 * (uint(i) % 8)))
		if i%8 == 7 {
			v = v*6364136223846793005 + 1442695040888963407
		}
	}
}

// Speedup returns base time over this result's time.
func Speedup(base, r Result) float64 {
	return float64(base.ModeledNs) / float64(r.ModeledNs)
}

// Overhead returns the fractional execution-time overhead of r over base
// (e.g. 0.10 for 10%).
func Overhead(base, r Result) float64 {
	return float64(r.ModeledNs-base.ModeledNs) / float64(base.ModeledNs)
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
