package harness

import (
	"fmt"
	"strings"

	"specpmt/internal/sim"
	"specpmt/internal/stamp"
)

// SweepCell aggregates one (media profile × engine) point of the sensitivity
// sweep across every STAMP application.
type SweepCell struct {
	Engine  string
	Profile string
	// GeoOverhead is the geometric-mean execution-time overhead over the
	// Raw (no-transaction) baseline on the same media profile.
	GeoOverhead float64
	// ModeledNs sums the application-core virtual time across applications.
	ModeledNs int64
	// FenceNs sums the time the application core spent stalled in SFENCE
	// across applications — the counter that separates the persistence
	// domains: eADR fences are issue-only, ADR fences wait for WPQ
	// acceptance, and far-memory fences wait for the media drain itself.
	FenceNs uint64
}

// SweepFigure is the engine × media-profile sensitivity study: every
// software engine run on every requested media profile, normalised to the
// Raw baseline of that same profile.
type SweepFigure struct {
	Profiles []string
	Engines  []string
	// Cells is indexed [profile][engine], matching Profiles and Engines.
	Cells [][]SweepCell
}

// ProfileSweep runs the Raw baseline plus every software engine over all
// STAMP applications on each named media profile. The default set is every
// built-in profile. All cells fan out across the worker pool.
func ProfileSweep(nTx int, seed uint64, profileNames []string) (SweepFigure, error) {
	if len(profileNames) == 0 {
		profileNames = sim.ProfileNames()
	}
	profs := make([]sim.Profile, len(profileNames))
	for i, n := range profileNames {
		p, ok := sim.ProfileByName(n)
		if !ok {
			return SweepFigure{}, fmt.Errorf("harness: unknown media profile %q (have %v)", n, sim.ProfileNames())
		}
		profs[i] = p
	}
	engines := SoftwareEngines()
	apps := stamp.Profiles()
	width := 1 + len(engines) // Raw first, then the engines
	flat := make([]Result, len(profs)*width*len(apps))
	err := ForEach(len(flat), func(i int) error {
		pi := i / (width * len(apps))
		ei := (i / len(apps)) % width
		ai := i % len(apps)
		eng := RawEngine
		if ei > 0 {
			eng = engines[ei-1]
		}
		r, err := RunSoftwareOpt(eng, apps[ai], nTx, seed, ScenarioConfig{Profile: profs[pi]})
		flat[i] = r
		return err
	})
	if err != nil {
		return SweepFigure{}, err
	}
	fig := SweepFigure{Profiles: profileNames, Engines: engines}
	at := func(pi, ei, ai int) Result { return flat[(pi*width+ei)*len(apps)+ai] }
	for pi := range profs {
		row := make([]SweepCell, len(engines))
		for ei, eng := range engines {
			cell := SweepCell{Engine: eng, Profile: profileNames[pi]}
			var ratios []float64
			for ai := range apps {
				r := at(pi, 1+ei, ai)
				ratios = append(ratios, 1+Overhead(at(pi, 0, ai), r))
				cell.ModeledNs += r.ModeledNs
				cell.FenceNs += r.Stats.FenceNs
			}
			cell.GeoOverhead = GeoMean(ratios) - 1
			row[ei] = cell
		}
		fig.Cells = append(fig.Cells, row)
	}
	return fig, nil
}

// Cell returns the sweep cell for a profile and engine name.
func (f SweepFigure) Cell(profile, engine string) (SweepCell, bool) {
	for pi, p := range f.Profiles {
		if p != profile {
			continue
		}
		for ei, e := range f.Engines {
			if e == engine {
				return f.Cells[pi][ei], true
			}
		}
	}
	return SweepCell{}, false
}

// Format renders the sweep as two aligned tables: geomean overhead over Raw,
// and total fence-stall time, each engine × profile.
func (f SweepFigure) Format() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Sensitivity: software engines x media profiles (geomean overhead over Raw)")
	fmt.Fprintf(&b, "%-14s", "engine")
	for _, p := range f.Profiles {
		fmt.Fprintf(&b, "%14s", p)
	}
	fmt.Fprintln(&b)
	for ei, eng := range f.Engines {
		fmt.Fprintf(&b, "%-14s", eng)
		for pi := range f.Profiles {
			fmt.Fprintf(&b, "%13.0f%%", f.Cells[pi][ei].GeoOverhead*100)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Fence stall time, all apps (modeled ms)")
	fmt.Fprintf(&b, "%-14s", "engine")
	for _, p := range f.Profiles {
		fmt.Fprintf(&b, "%14s", p)
	}
	fmt.Fprintln(&b)
	for ei, eng := range f.Engines {
		fmt.Fprintf(&b, "%-14s", eng)
		for pi := range f.Profiles {
			fmt.Fprintf(&b, "%14.2f", float64(f.Cells[pi][ei].FenceNs)/1e6)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
