package harness

import (
	"math"
	"strings"
	"testing"

	"specpmt/internal/stamp"
)

// The harness tests assert the qualitative findings of the paper's
// evaluation — who wins, by roughly what factor, where the crossovers are —
// on reduced transaction counts so the suite stays fast.

const testTx = 150

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
}

func TestRunSoftwareAllEngines(t *testing.T) {
	p, _ := stamp.ByName("genome")
	base, err := RunSoftware(RawEngine, p, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.ModeledNs <= 0 {
		t.Fatal("raw run consumed no time")
	}
	for _, eng := range SoftwareEngines() {
		r, err := RunSoftware(eng, p, 50, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if r.ModeledNs <= base.ModeledNs {
			t.Fatalf("%s should be slower than raw: %d vs %d", eng, r.ModeledNs, base.ModeledNs)
		}
		if r.Stats.TxCommitted != 50 {
			t.Fatalf("%s committed %d txns, want 50", eng, r.Stats.TxCommitted)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	fig, err := Figure12(testTx, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		spec := row.Values["SpecSPMT"]
		dp := row.Values["SpecSPMT-DP"]
		kam := row.Values["Kamino-Tx"]
		if spec < dp {
			t.Errorf("%s: SpecSPMT (%.2f) must beat SpecSPMT-DP (%.2f)", row.Workload, spec, dp)
		}
		if spec < kam {
			t.Errorf("%s: SpecSPMT (%.2f) must beat Kamino-Tx (%.2f)", row.Workload, spec, kam)
		}
		if spec < 1 {
			t.Errorf("%s: SpecSPMT slower than PMDK (%.2f)", row.Workload, spec)
		}
	}
	// Headline factors (paper: SpecSPMT 5.1x, SpecSPMT-DP 3.0x geomean).
	if g := fig.GeoMean["SpecSPMT"]; g < 3.5 || g > 10 {
		t.Errorf("SpecSPMT geomean speedup %.2f outside the paper's ballpark", g)
	}
	if g := fig.GeoMean["SpecSPMT-DP"]; g < 1.5 || g > 4.5 {
		t.Errorf("SpecSPMT-DP geomean speedup %.2f outside the paper's ballpark", g)
	}
	// labyrinth is the paper's largest speedup (49.7x).
	var laby, kmeans float64
	for _, row := range fig.Rows {
		if row.Workload == "labyrinth" {
			laby = row.Values["SpecSPMT"]
		}
		if row.Workload == "kmeans-low" {
			kmeans = row.Values["SpecSPMT"]
		}
	}
	if laby < 15 {
		t.Errorf("labyrinth SpecSPMT speedup %.2f; paper reports ~49.7x", laby)
	}
	if kmeans < 6 {
		t.Errorf("kmeans-low SpecSPMT speedup %.2f; paper reports 10.7x", kmeans)
	}
}

func TestWriteIntensiveGainMoreFromDataPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// §7.2: on kmeans/yada (write-intensive, large txns) SpecSPMT gains a
	// lot over SpecSPMT-DP; on intruder/ssca2 (4-byte write sets) only ~10%.
	ratio := func(app string) float64 {
		p, _ := stamp.ByName(app)
		dp, err := RunSoftware("SpecSPMT-DP", p, testTx, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := RunSoftware("SpecSPMT", p, testTx, 1)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(dp, sp) // note: inverted helper — dp time over spec time
	}
	big := ratio("kmeans-high")
	small := ratio("intruder")
	if big < small {
		t.Fatalf("kmeans (%.2f) should gain more from removing data persistence than intruder (%.2f)", big, small)
	}
	if big < 1.5 {
		t.Fatalf("kmeans SpecSPMT/DP gain %.2f; paper reports 5.4x", big)
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	fig, err := Figure13(testTx, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if row.Workload == "kmeans-low" {
			// §7.3: compute between transactions drains the WPQ, so no
			// scheme helps much.
			for eng, v := range row.Values {
				if v < 0.85 || v > 1.25 {
					t.Errorf("kmeans-low %s speedup %.2f; should be ~1 (WPQ drains during compute)", eng, v)
				}
			}
		}
	}
	spec := fig.GeoMean["SpecHPMT"]
	dp := fig.GeoMean["SpecHPMT-DP"]
	nolog := fig.GeoMean["no-log"]
	if spec < 1.2 || spec > 1.9 {
		t.Errorf("SpecHPMT geomean %.2f; paper reports 1.41x", spec)
	}
	if dp < 0.85 || dp > 1.35 {
		t.Errorf("SpecHPMT-DP geomean %.2f; paper: performs nearly the same as EDE", dp)
	}
	if nolog < spec {
		t.Errorf("no-log (%.2f) is the ideal and must beat SpecHPMT (%.2f)", nolog, spec)
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	fig, err := Figure14(testTx, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// §7.3: EDE and SpecHPMT-DP cause largely the same write traffic.
	if g := fig.GeoMean["SpecHPMT-DP"]; g < -0.2 || g > 0.2 {
		t.Errorf("SpecHPMT-DP traffic reduction %.2f; paper: largely the same as EDE", g)
	}
	// HOOP produces excessive logs on the large-footprint applications.
	for _, row := range fig.Rows {
		switch row.Workload {
		case "ssca2", "vacation-low", "vacation-high", "yada":
			if row.Values["HOOP"] > row.Values["SpecHPMT"]+0.10 {
				t.Errorf("%s: HOOP reduction (%.2f) should not beat SpecHPMT (%.2f) — miss logging inflates its traffic",
					row.Workload, row.Values["HOOP"], row.Values["SpecHPMT"])
			}
		}
	}
	if g := fig.GeoMean["no-log"]; g < 0.4 {
		t.Errorf("no-log reduction %.2f; it writes no logs at all", g)
	}
}

func TestFigure15Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction is slow")
	}
	pts, err := Figure15(testTx, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("sweep too small: %d points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.AvgSpeedup <= first.AvgSpeedup {
		t.Errorf("speedup should grow with memory: %.2f -> %.2f", first.AvgSpeedup, last.AvgSpeedup)
	}
	if last.MemOverheadPct <= first.MemOverheadPct {
		t.Errorf("memory overhead should grow with epoch size: %.1f%% -> %.1f%%",
			first.MemOverheadPct, last.MemOverheadPct)
	}
	if last.TrafficReduction <= first.TrafficReduction {
		t.Errorf("traffic reduction should grow with epoch size: %.2f -> %.2f",
			first.TrafficReduction, last.TrafficReduction)
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	rows := Table2(200, 1)
	if len(rows) != 9 {
		t.Fatalf("Table 2 has 9 applications, got %d", len(rows))
	}
	for _, r := range rows {
		if ratio := r.GeneratedAvgSize / r.PaperAvgSize; ratio < 0.6 || ratio > 1.4 {
			t.Errorf("%s: generated avg size %.1f vs paper %.1f", r.App, r.GeneratedAvgSize, r.PaperAvgSize)
		}
	}
}

func TestSpecOverheadHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	per, geo, err := SpecOverhead(testTx, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: 10% overhead. The transparent cost model cannot
	// honour both labyrinth's 49.7x speedup and a tiny overhead (see
	// EXPERIMENTS.md), so the assertion brackets the achievable range.
	if geo < 0 || geo > 0.6 {
		t.Errorf("SpecSPMT overhead geomean %.0f%%; expected well under PMDK's ~800%%", geo*100)
	}
	if len(per) != 9 {
		t.Fatalf("per-app overheads missing: %v", per)
	}
	// PMDK's overhead must dwarf SpecSPMT's on every app.
	for _, p := range stamp.Profiles() {
		raw, err := RunSoftware(RawEngine, p, testTx, 1)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := RunSoftware("PMDK", p, testTx, 1)
		if err != nil {
			t.Fatal(err)
		}
		if Overhead(raw, pm) < 2*per[p.Name] {
			t.Errorf("%s: PMDK overhead %.2f should dwarf SpecSPMT's %.2f",
				p.Name, Overhead(raw, pm), per[p.Name])
		}
	}
}

func TestFigureFormat(t *testing.T) {
	fig := Figure{
		Title:   "T",
		Series:  []string{"A"},
		Rows:    []FigureRow{{Workload: "w", Values: map[string]float64{"A": 2}}},
		GeoMean: map[string]float64{"A": 2},
	}
	out := fig.Format(false)
	for _, want := range []string{"T", "w", "2.00x", "geomean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(fig.Format(true), "200%") {
		t.Fatal("percent formatting broken")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	p, _ := stamp.ByName("yada")
	a, err := RunSoftware("SpecSPMT", p, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoftware("SpecSPMT", p, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.ModeledNs != b.ModeledNs || a.Stats.PMWriteBytes != b.Stats.PMWriteBytes {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d ns/bytes",
			a.ModeledNs, a.Stats.PMWriteBytes, b.ModeledNs, b.Stats.PMWriteBytes)
	}
	h1, err := RunHardware("SpecHPMT", p, 60, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := RunHardware("SpecHPMT", p, 60, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h1.ModeledNs != h2.ModeledNs {
		t.Fatal("hardware runs not deterministic")
	}
}

func TestSoftwareMemoryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := SoftwareMemoryOverhead(100, 1, ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.PeakLogBytes <= 0 {
			t.Errorf("%s: no log growth recorded", r.App)
		}
	}
}

func TestChartRendering(t *testing.T) {
	fig := Figure{
		Title:   "demo",
		Series:  []string{"A", "B"},
		Rows:    []FigureRow{{Workload: "w1", Values: map[string]float64{"A": 2, "B": -0.5}}},
		GeoMean: map[string]float64{"A": 2, "B": -0.5},
	}
	out := fig.Chart(false)
	for _, want := range []string{"demo", "w1", "#", "-", "2.00x", "geomean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(fig.Chart(true), "200%") {
		t.Fatal("percent chart labels broken")
	}
}

func TestThreadedSpecScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// intruder: small records, so the shared drain pipeline is not the
	// bottleneck and the per-thread-log design can show its scaling.
	// (Large-record profiles like yada saturate the memory controller at
	// 4 threads — also a faithful outcome.)
	p, _ := stamp.ByName("intruder")
	t1, err := RunThreadedSpec(p, 1, 120, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := RunThreadedSpec(p, 4, 120, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	scale := t4.Throughput() / t1.Throughput()
	if scale < 2.0 {
		t.Fatalf("per-thread logs should scale: 1->4 threads throughput x%.2f", scale)
	}
	// The DP variant's commit-path data flushes saturate the shared drain
	// pipeline, capping its scaling below SpecSPMT's.
	d1, err := RunThreadedSpec(p, 1, 120, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := RunThreadedSpec(p, 4, 120, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	dpScale := d4.Throughput() / d1.Throughput()
	if dpScale >= scale {
		t.Fatalf("DP (x%.2f) should scale worse than SpecSPMT (x%.2f): the shared memory controller caps it",
			dpScale, scale)
	}
	t.Logf("1->4 thread throughput scaling: SpecSPMT x%.2f, SpecSPMT-DP x%.2f", scale, dpScale)
}
