package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders the figure as horizontal ASCII bars, one group per
// application, one bar per series — a terminal rendition of the paper's bar
// charts. Values are multipliers unless percent is set. Negative values
// (traffic increases in Figure 14) render leftward from the axis label.
func (f Figure) Chart(percent bool) string {
	const width = 46
	series := append([]string{}, f.Series...)
	sort.Strings(series)
	maxAbs := 0.0
	for _, row := range f.Rows {
		for _, s := range series {
			if v := math.Abs(row.Values[s]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	for _, s := range series {
		if v := math.Abs(f.GeoMean[s]); v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var b strings.Builder
	fmt.Fprintln(&b, f.Title)
	label := func(v float64) string {
		if percent {
			return fmt.Sprintf("%.0f%%", v*100)
		}
		return fmt.Sprintf("%.2fx", v)
	}
	drawRow := func(name string, values map[string]float64) {
		fmt.Fprintf(&b, "%s\n", name)
		for _, s := range series {
			v := values[s]
			n := int(math.Round(math.Abs(v) / maxAbs * width))
			if n > width {
				n = width
			}
			bar := strings.Repeat("#", n)
			if v < 0 {
				bar = strings.Repeat("-", n)
			}
			fmt.Fprintf(&b, "  %-13s|%-*s %s\n", s, width, bar, label(v))
		}
	}
	for _, row := range f.Rows {
		drawRow(row.Workload, row.Values)
	}
	if len(f.GeoMean) > 0 {
		drawRow("geomean", f.GeoMean)
	}
	return b.String()
}
