package server

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// maxConnWindow bounds how many requests one binary connection may have in
// flight at once: after dispatching the first frame of a wakeup, the
// handler keeps decoding frames that are already fully buffered — never
// blocking on the socket — so a pipelining client gets its whole window
// dispatched to the shard workers before any reply is awaited.
const maxConnWindow = 64

// binBufPool recycles per-connection frame read buffers: a frame is decoded
// in place out of this buffer (ops are fixed-width loads, nothing is
// copied), and the buffer is reused for the next frame the moment the ops
// are staged on the job.
var binBufPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}

// binPending is one in-flight request of a binary connection's window, in
// arrival order: either a dispatched job awaiting its done token, or an
// inline reply (PING/STATS/QUIT/ERR) already encoded. reply keeps its
// capacity across windows.
type binPending struct {
	j     *job
	verb  string
	nsh   int
	t0    int64
	quit  bool
	reply []byte
}

// handleBinary serves one connection that negotiated the binary protocol.
// Replies for a window are written with one vectored write (net.Buffers →
// writev), in arrival order.
func (s *Server) handleBinary(c net.Conn, br *bufio.Reader, bw *bufio.Writer, co *connObs) {
	_ = bw // the text-mode writer is abandoned; frames go straight to c
	fbp := binBufPool.Get().(*[]byte)
	defer binBufPool.Put(fbp)
	var (
		pend []binPending
		jobs []*job // freelist, one per job-backed window slot
		outs net.Buffers
	)
	// Deadline re-arming is amortized: a timer modification costs more than
	// the clock read guarding it, and on the snapshot fast path it would be
	// a per-window cost. Deadlines are re-armed once a quarter of their
	// budget has elapsed, so the effective timeout stays within [3/4, 1] of
	// the configured one.
	var lastRArm, lastWArm time.Time
	armR := func() {
		if now := time.Now(); now.Sub(lastRArm) > s.cfg.IdleTimeout/4 {
			lastRArm = now
			c.SetReadDeadline(now.Add(s.cfg.IdleTimeout))
		}
	}
	armW := func() {
		if now := time.Now(); now.Sub(lastWArm) > s.cfg.WriteTimeout/4 {
			lastWArm = now
			c.SetWriteDeadline(now.Add(s.cfg.WriteTimeout))
		}
	}
	fail := func(msg string) {
		// Framing is poisoned: answer with an ERR frame and hang up.
		s.protoErrs.Add(1)
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		c.Write(appendMsgFrame((*fbp)[:0], binFErr, []byte(msg)))
	}
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		armR()
		payload, err := readFrame(br, fbp)
		if err != nil {
			switch err {
			case errBadFrame, errFrameTooLarge, errTruncFrame:
				fail(err.Error())
			}
			return
		}
		pend = pend[:0]
		nj := 0
		ferr := s.binDispatch(payload, &pend, &jobs, &nj)
		// Opportunistic window fill: only frames already buffered — the
		// handler never blocks on the socket while replies are owed.
		for ferr == nil && len(pend) < maxConnWindow && frameBuffered(br) {
			if payload, err = readFrame(br, fbp); err != nil {
				ferr = err
				break
			}
			ferr = s.binDispatch(payload, &pend, &jobs, &nj)
		}
		// Await the window's jobs in order and encode their replies; this
		// must complete even on a poisoned stream so every acquired
		// in-flight slot is released.
		quit := false
		outs = outs[:0]
		for i := range pend {
			p := &pend[i]
			if p.j != nil {
				<-p.j.done
				s.release()
				if s.stamps {
					s.observeRequest(co, p.j, p.verb, p.t0, p.nsh)
				}
				p.reply = AppendReplyFrame(p.reply[:0], p.j.results, p.j.modelNs)
			}
			outs = append(outs, p.reply)
			quit = quit || p.quit
		}
		if len(outs) > 0 {
			armW()
			if _, err := outs.WriteTo(c); err != nil {
				return
			}
		}
		if ferr != nil {
			fail(ferr.Error())
			return
		}
		if quit {
			return
		}
	}
}

// binDispatch decodes one frame and either dispatches its job to the shard
// workers or stages an inline reply. A non-nil return poisons the stream
// (framing-level violation); application-level failures become ERR reply
// frames and return nil.
func (s *Server) binDispatch(payload []byte, pend *[]binPending, jobs *[]*job, nj *int) error {
	if len(payload) == 0 {
		return errBadFrame
	}
	s.binFrames.Add(1)
	p := growPending(pend)
	switch payload[0] {
	case binFPing:
		if len(payload) != 1 {
			return errBadFrame
		}
		p.reply = appendSimpleFrame(p.reply, binFPong)
	case binFQuit:
		if len(payload) != 1 {
			return errBadFrame
		}
		p.reply = appendSimpleFrame(p.reply, binFBye)
		p.quit = true
	case binFStats:
		if len(payload) != 1 {
			return errBadFrame
		}
		p.reply = appendMsgFrame(p.reply, binFStatsReply, s.appendStats(nil))
	case binFOps:
		if *nj >= len(*jobs) {
			*jobs = append(*jobs, newJob())
		}
		j := (*jobs)[*nj]
		j.reset()
		var err error
		if j.ops, err = DecodeOpsFrame(payload, j.ops); err != nil {
			return err
		}
		if s.readOnly.Load() && hasWrite(j.ops) {
			s.roRejected.Add(1)
			p.reply = appendMsgFrame(p.reply, binFErr, []byte("read-only replica"))
			return nil
		}
		var shards []int
		if len(j.ops) == 1 {
			p.verb = j.ops[0].Kind.String()
			shards = []int{s.shardOf(j.ops[0].Key)}
		} else {
			p.verb = "MULTI"
			shards = s.shardSet(j.ops)
		}
		if mv, err := s.admitShards(shards); mv != nil || err != nil {
			if err == ErrClosed {
				return ErrClosed
			}
			if err != nil {
				p.reply = appendMsgFrame(p.reply, binFErr, []byte(err.Error()))
				return nil
			}
			p.reply = appendMovedFrame(p.reply, mv)
			return nil
		}
		queuedAhead := false
		for i := 0; i < len(*pend)-1; i++ {
			if (*pend)[i].j != nil {
				queuedAhead = true
				break
			}
		}
		if !queuedAhead && len(shards) == 1 && !hasWrite(j.ops) {
			// Snapshot fast path: single-shard all-GET frames are served
			// lock-free from the shard's MVCC store, never entering the
			// worker queue. Only when nothing earlier in this window was
			// dispatched to a worker: a queued write ahead of us must be
			// visible (read-your-writes), and even a queued read may park
			// behind speculative state newer than the snapshot — serving
			// out of order would let this connection read backwards in
			// time. j stays in the freelist (*nj is not advanced); its
			// results slice is only scratch for the encode below.
			if results, _, ok := s.serveSnapshot(shards[0], j.ops, j.results[:0]); ok {
				j.results = results
				for _, op := range j.ops {
					s.opCounts[op.Kind].Add(1)
				}
				if len(j.ops) > 1 {
					s.multis.Add(1)
					s.snapMultis.Add(1)
				}
				p.reply = AppendSnapReplyFrame(p.reply, j.results)
				return nil
			}
		}
		if s.stamps {
			p.t0 = s.nowNs()
		}
		if !s.acquire() {
			return ErrClosed
		}
		*nj++
		for _, op := range j.ops {
			s.opCounts[op.Kind].Add(1)
		}
		if len(j.ops) > 1 {
			s.multis.Add(1)
		}
		p.nsh = len(shards)
		if s.stamps {
			j.wallEnq = s.nowNs()
		}
		s.dispatch(j, shards)
		p.j = j
	default:
		return errBadFrame
	}
	return nil
}

// growPending extends pend by one slot, reusing the slot's reply buffer
// capacity from earlier windows.
func growPending(pend *[]binPending) *binPending {
	if len(*pend) < cap(*pend) {
		*pend = (*pend)[:len(*pend)+1]
	} else {
		*pend = append(*pend, binPending{})
	}
	p := &(*pend)[len(*pend)-1]
	p.j = nil
	p.verb = ""
	p.nsh = 0
	p.t0 = 0
	p.quit = false
	p.reply = p.reply[:0]
	return p
}
