package server

import (
	"strings"
	"testing"
)

func TestParseCommand(t *testing.T) {
	cases := []struct {
		line string
		want Command
		bad  bool
	}{
		{line: "GET 7", want: Command{Verb: VerbOp, Op: Op{Kind: OpGet, Key: 7}}},
		{line: "get 7", want: Command{Verb: VerbOp, Op: Op{Kind: OpGet, Key: 7}}},
		{line: "  SET  1   2 ", want: Command{Verb: VerbOp, Op: Op{Kind: OpSet, Key: 1, Arg1: 2}}},
		{line: "DEL 0", want: Command{Verb: VerbOp, Op: Op{Kind: OpDel, Key: 0}}},
		{line: "CAS 5 6 7", want: Command{Verb: VerbOp, Op: Op{Kind: OpCAS, Key: 5, Arg1: 6, Arg2: 7}}},
		{line: "CAS 5 6 18446744073709551615", want: Command{Verb: VerbOp, Op: Op{Kind: OpCAS, Key: 5, Arg1: 6, Arg2: ^uint64(0)}}},
		{line: "MULTI", want: Command{Verb: VerbMulti}},
		{line: "exec", want: Command{Verb: VerbExec}},
		{line: "DISCARD", want: Command{Verb: VerbDiscard}},
		{line: "STATS", want: Command{Verb: VerbStats}},
		{line: "PING", want: Command{Verb: VerbPing}},
		{line: "QUIT", want: Command{Verb: VerbQuit}},
		{line: "", bad: true},
		{line: "   ", bad: true},
		{line: "GET", bad: true},
		{line: "GET 1 2", bad: true},
		{line: "SET 1", bad: true},
		{line: "SET x 2", bad: true},
		{line: "SET 1 -2", bad: true},
		{line: "SET 1 2.5", bad: true},
		{line: "SET 1 18446744073709551616", bad: true}, // 2^64 overflows
		{line: "CAS 1 2", bad: true},
		{line: "MULTI 3", bad: true},
		{line: "BLORP 1", bad: true},
		{line: "G\x00T 1", bad: true},
	}
	for _, c := range cases {
		got, err := ParseCommand([]byte(c.line))
		if c.bad {
			if err == nil {
				t.Errorf("ParseCommand(%q) = %+v, want error", c.line, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCommand(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCommand(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestAppendCommandRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpGet, Key: 42},
		{Kind: OpSet, Key: 1, Arg1: ^uint64(0)},
		{Kind: OpDel, Key: 0},
		{Kind: OpCAS, Key: 3, Arg1: 4, Arg2: 5},
	}
	for _, op := range ops {
		line := AppendCommand(nil, op)
		if line[len(line)-1] != '\n' {
			t.Fatalf("AppendCommand(%+v) missing newline", op)
		}
		cmd, err := ParseCommand(line[:len(line)-1])
		if err != nil {
			t.Fatalf("round trip %+v: %v", op, err)
		}
		if cmd.Verb != VerbOp || cmd.Op != op {
			t.Fatalf("round trip %+v -> %+v", op, cmd.Op)
		}
	}
}

func TestAppendResult(t *testing.T) {
	cases := []struct {
		r       Result
		modelNs int64
		want    string
	}{
		{Result{Status: StatusOK}, 12, "OK t=12\n"},
		{Result{Status: StatusValue, Val: 9}, 3, "VALUE 9 t=3\n"},
		{Result{Status: StatusNotFound}, -1, "NOTFOUND\n"},
		{Result{Status: StatusConflict, Val: 8}, 0, "CONFLICT 8 t=0\n"},
		{Result{Status: StatusErr}, -1, "ERR server full\n"},
	}
	for _, c := range cases {
		got := string(AppendResult(nil, c.r, c.modelNs))
		if got != c.want {
			t.Errorf("AppendResult(%+v, %d) = %q, want %q", c.r, c.modelNs, got, c.want)
		}
	}
}

func TestParseOpResult(t *testing.T) {
	r, err := parseOpResult([]byte("VALUE 17 t=1234"))
	if err != nil || r.Status != StatusValue || r.Val != 17 || r.ModelNs != 1234 {
		t.Fatalf("parseOpResult VALUE: %+v %v", r, err)
	}
	r, err = parseOpResult([]byte("NOTFOUND"))
	if err != nil || r.Status != StatusNotFound || r.ModelNs != -1 {
		t.Fatalf("parseOpResult NOTFOUND: %+v %v", r, err)
	}
	if _, err := parseOpResult([]byte("ERR boom")); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("parseOpResult ERR: %v", err)
	}
}
