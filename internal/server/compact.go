package server

import (
	"time"

	"specpmt"
)

// RelocateHook lets an embedding subsystem (e.g. the replication applier's
// durable cursor) participate in heap compaction: given a block the server's
// shard maps do not own, the hook must either relocate it crash-consistently
// — copy [old, old+n), repoint its reference, return owned=true — or report
// owned=false so the next hook is tried. Hooks run inside a Freeze (the
// store is quiesced) on a worker goroutine. A non-nil err aborts the
// compaction run; nothing is lost.
type RelocateHook func(old, new specpmt.Addr, n int) (owned bool, err error)

// OnRelocate registers a relocation hook for heap blocks owned by an
// embedding subsystem. Hooks accumulate and are tried in registration order.
func (s *Server) OnRelocate(fn RelocateHook) {
	s.hookMu.Lock()
	s.relocHooks = append(s.relocHooks, fn)
	s.hookMu.Unlock()
}

// compactMinGain is the least footprint-over-live excess worth a compaction
// pass — below two 64 KiB spans there is nothing a pass could return to the
// free pool.
const compactMinGain = 128 << 10

// relocateBlock is the pmalloc.Compact mover: it dispatches each block to
// the shard map that owns it, then to the registered hooks. An unrecognized
// block (possible only for regions leaked by a pre-crash unlink, which
// nothing references) makes the pass abort by returning false — the
// allocator frees the staged destination and the heap is exactly as before.
func (s *Server) relocateBlock(old, new specpmt.Addr, n int) bool {
	for _, sh := range s.shards {
		owned, err := sh.m.Relocate(old, new)
		if err != nil {
			s.log.Warn("compaction move failed", "shard", sh.id, "err", err)
			return false
		}
		if owned {
			return true
		}
	}
	s.hookMu.Lock()
	hooks := append([]RelocateHook(nil), s.relocHooks...)
	s.hookMu.Unlock()
	for _, hook := range hooks {
		owned, err := hook(old, new, n)
		if err != nil {
			s.log.Warn("compaction hook move failed", "err", err)
			return false
		}
		if owned {
			return true
		}
	}
	return false
}

// CompactNow runs one data-heap compaction pass under a Freeze, regardless
// of load or fragmentation thresholds. Returns blocks moved and footprint
// bytes returned to the heap's free pool.
func (s *Server) CompactNow() (moved int, freed int64, err error) {
	h := s.pool.DataHeap()
	before := h.Footprint()
	err = s.Freeze(func() {
		moved = h.Compact(s.relocateBlock)
	})
	if err != nil {
		return 0, 0, err
	}
	if after := h.Footprint(); after < before {
		freed = before - after
	}
	s.compactions.Add(1)
	s.compactMoved.Add(uint64(moved))
	s.compactFreed.Add(uint64(freed))
	return moved, freed, nil
}

// maybeCompact is one tick of the background compactor: it yields to
// foreground traffic (any request in flight skips the tick — compaction is
// strictly low-priority, since it freezes every shard for its duration), and
// otherwise compacts only when the heap's span footprint exceeds the
// configured fraction of its live bytes by at least compactMinGain.
func (s *Server) maybeCompact() {
	if len(s.inflight) > 0 {
		s.compactSkipBusy.Add(1)
		return
	}
	h := s.pool.DataHeap()
	fp, live := h.Footprint(), h.Live()
	if live <= 0 || fp*100 <= live*int64(s.cfg.CompactFragPct) || fp-live < compactMinGain {
		return
	}
	moved, freed, err := s.CompactNow()
	if err != nil {
		return // closing
	}
	s.log.Info("heap compacted", "moved_blocks", moved, "freed_bytes", freed,
		"footprint", h.Footprint(), "live", h.Live())
}

// runCompactor is the background compaction loop, started with the workers
// when CompactEvery > 0 and stopped by Close.
func (s *Server) runCompactor() {
	t := time.NewTicker(s.cfg.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.maybeCompact()
		}
	}
}
