package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotGetBasics pins the text-protocol surface of the snapshot-read
// subsystem: GETs and single-shard read-only MULTIs carry the s=1 marker and
// count in STATS, LSN hands out the published watermark, and GETAT serves
// read-your-writes against a token on the same server.
func TestSnapshotGetBasics(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 1})
	c := dialT(t, addr)
	defer c.Close()

	if r, err := c.Set(7, 70); err != nil || r.Status != StatusOK {
		t.Fatalf("SET: %+v %v", r, err)
	}
	r, err := c.Get(7)
	if err != nil || r.Status != StatusValue || r.Val != 70 {
		t.Fatalf("GET: %+v %v", r, err)
	}
	if !r.Snap {
		t.Fatalf("GET not served from snapshot: %+v", r)
	}
	if r.ModelNs != 0 {
		t.Fatalf("snapshot GET modeled time = %d, want 0", r.ModelNs)
	}
	if r, err := c.Get(999); err != nil || r.Status != StatusNotFound || !r.Snap {
		t.Fatalf("GET missing: %+v %v", r, err)
	}

	token, err := c.LSN()
	if err != nil || token == 0 {
		t.Fatalf("LSN: %d %v", token, err)
	}
	// GETAT at the current token answers immediately with a fresh token.
	ra, err := c.GetAt(7, token)
	if err != nil || ra.Status != StatusValue || ra.Val != 70 {
		t.Fatalf("GETAT: %+v %v", ra, err)
	}
	if ra.LSN < token {
		t.Fatalf("GETAT token regressed: got lsn=%d, sent %d", ra.LSN, token)
	}

	// Single-shard read-only MULTI: whole block from one snapshot.
	results, ns, err := c.Exec([]Op{{Kind: OpGet, Key: 7}, {Kind: OpGet, Key: 999}})
	if err != nil || len(results) != 2 {
		t.Fatalf("EXEC: %v %v", results, err)
	}
	if results[0].Status != StatusValue || results[0].Val != 70 || results[1].Status != StatusNotFound {
		t.Fatalf("EXEC results: %+v", results)
	}
	if ns != 0 {
		t.Fatalf("read-only MULTI modeled time = %d, want 0 (snapshot)", ns)
	}
	if got := s.snapMultis.Load(); got != 1 {
		t.Fatalf("snapshot_multis = %d, want 1", got)
	}
	if got := s.SnapshotReads(); got < 3 {
		t.Fatalf("snapshot_reads = %d, want >= 3", got)
	}

	nums, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, stat := range []string{"mvcc_enabled", "snapshot_reads", "snapshot_multis",
		"snapshot_fallbacks", "versions_live", "version_reclaims", "published_lsn"} {
		if _, ok := nums[stat]; !ok {
			t.Errorf("STATS missing %q", stat)
		}
	}
	if nums["mvcc_enabled"] != 1 {
		t.Errorf("mvcc_enabled = %d", nums["mvcc_enabled"])
	}
	if nums["snapshot_reads"] == 0 || nums["published_lsn"] == 0 {
		t.Errorf("snapshot_reads=%d published_lsn=%d, want non-zero",
			nums["snapshot_reads"], nums["published_lsn"])
	}
}

// TestSnapshotBinaryGet pins the binary protocol's SNAPREPLY frame: a
// single GET frame is served from the snapshot path and decodes with
// Snap=true.
func TestSnapshotBinaryGet(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 2})
	c, err := DialProto(addr, 5*time.Second, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.Set(3, 33); err != nil || r.Status != StatusOK {
		t.Fatalf("SET: %+v %v", r, err)
	}
	r, err := c.Get(3)
	if err != nil || r.Status != StatusValue || r.Val != 33 || !r.Snap {
		t.Fatalf("binary GET: %+v %v", r, err)
	}
	// A multi-GET frame on one shard is a snapshot MULTI.
	var k2 uint64
	for k2 = 100; ShardOf(k2, 2) != ShardOf(3, 2); k2++ {
	}
	results, ns, err := c.Exec([]Op{{Kind: OpGet, Key: 3}, {Kind: OpGet, Key: k2}})
	if err != nil || len(results) != 2 {
		t.Fatalf("EXEC: %v %v", results, err)
	}
	if !results[0].Snap || ns != 0 {
		t.Fatalf("binary read-only MULTI not snapshot-served: %+v ns=%d", results, ns)
	}
	if got := s.snapMultis.Load(); got != 1 {
		t.Fatalf("snapshot_multis = %d, want 1", got)
	}
}

// TestSnapshotCrossShardMultiFallsBack pins the consistency decision: a
// read-only MULTI spanning shards must NOT be served from per-shard
// snapshots (their watermarks advance independently), so it takes the
// queued path.
func TestSnapshotCrossShardMultiFallsBack(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 4})
	c := dialT(t, addr)
	defer c.Close()
	var k2 uint64
	for k2 = 1; ShardOf(k2, 4) == ShardOf(0, 4); k2++ {
	}
	if _, err := c.Set(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Set(k2, 2); err != nil {
		t.Fatal(err)
	}
	results, _, err := c.Exec([]Op{{Kind: OpGet, Key: 0}, {Kind: OpGet, Key: k2}})
	if err != nil || len(results) != 2 || results[0].Val != 1 || results[1].Val != 2 {
		t.Fatalf("EXEC: %v %v", results, err)
	}
	if got := s.snapMultis.Load(); got != 0 {
		t.Fatalf("cross-shard MULTI counted as snapshot multi (%d)", got)
	}
}

// TestSnapshotDisabled pins -mvcc=false: reads work, nothing is
// snapshot-served, and GETAT still functions through the queued path
// (published LSNs advance regardless).
func TestSnapshotDisabled(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 1, NoMVCC: true})
	c := dialT(t, addr)
	defer c.Close()
	if _, err := c.Set(1, 10); err != nil {
		t.Fatal(err)
	}
	r, err := c.Get(1)
	if err != nil || r.Status != StatusValue || r.Val != 10 {
		t.Fatalf("GET: %+v %v", r, err)
	}
	if r.Snap {
		t.Fatal("NoMVCC server served a snapshot read")
	}
	if got := s.SnapshotReads(); got != 0 {
		t.Fatalf("snapshot_reads = %d with MVCC off", got)
	}
	token, err := c.LSN()
	if err != nil || token == 0 {
		t.Fatalf("LSN: %d %v", token, err)
	}
	ra, err := c.GetAt(1, token)
	if err != nil || ra.Status != StatusValue || ra.Val != 10 || ra.Snap {
		t.Fatalf("GETAT with MVCC off: %+v %v", ra, err)
	}
	if ra.LSN < token {
		t.Fatalf("GETAT lsn=%d below token %d", ra.LSN, token)
	}
}

// TestSnapshotLinearizable checks the visibility invariant under
// concurrency: one writer bumps a key through acknowledged SETs while
// readers hammer snapshot GETs. A reader must never observe a value ahead
// of the writer's in-flight write (writes are acknowledged one at a time,
// and installation precedes the ack), and each reader's observed values
// must be monotonic (the snapshot watermark never goes backwards).
func TestSnapshotLinearizable(t *testing.T) {
	_, addr := startServer(t, Config{
		Engine: "SpecSPMT", Shards: 1, MaxBatch: 4, PipelineDepth: 4,
	})
	const key = 42
	var acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 9)

	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr, 5*time.Second)
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Set(key, v); err != nil {
				errs <- err
				return
			}
			acked.Store(v)
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var last uint64
			snapped := false
			for {
				select {
				case <-stop:
					if !snapped {
						errs <- fmt.Errorf("reader never hit the snapshot path")
					}
					return
				default:
				}
				r, err := c.Get(key)
				if err != nil {
					errs <- err
					return
				}
				snapped = snapped || r.Snap
				v := uint64(0)
				if r.Status == StatusValue {
					v = r.Val
				}
				// One write is in flight at most, and installs precede acks:
				// an observed value may lead the ack by exactly one.
				if hi := acked.Load() + 1; v > hi {
					errs <- fmt.Errorf("observed %d ahead of acked+1 = %d", v, hi)
					return
				}
				if v < last {
					errs <- fmt.Errorf("non-monotonic read: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// runReadHeavy drives a ~90/10 read-heavy mixed load over binary
// pipelined connections (bursts of depth frames per flush, as
// specpmt-load's pipelined mode does): readers conns run pure GETs and
// writers conns run pure SETs concurrently — the read-throughput-at-a-
// write-rate shape of the EXPERIMENTS matrix. Returns the number of GETs
// the readers completed in dur.
func runReadHeavy(t *testing.T, addr string, readers, writers, depth int, dur time.Duration) uint64 {
	t.Helper()
	var gets atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	conn := func(i int, write bool) {
		defer wg.Done()
		c, err := DialProto(addr, 5*time.Second, "binary")
		if err != nil {
			errs <- err
			return
		}
		defer c.Close()
		n := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for f := 0; f < depth; f++ {
				n++
				k := (uint64(i)*7919 + n) % 1024
				op := Op{Kind: OpGet, Key: k}
				if write {
					op = Op{Kind: OpSet, Key: k, Arg1: n}
				}
				if err := c.SendOp(op); err != nil {
					errs <- err
					return
				}
			}
			for f := 0; f < depth; f++ {
				if _, err := c.RecvResult(); err != nil {
					errs <- err
					return
				}
			}
			if !write {
				gets.Add(uint64(depth))
			}
		}
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go conn(i, false)
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go conn(readers+i, true)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return gets.Load()
}

// TestSnapshotReadThroughput is the acceptance gate: under a 90/10 read-
// heavy pipelined load (depth 4), the MVCC snapshot path must deliver at
// least 1.5x the read throughput of the queued-read baseline (same server
// config with NoMVCC).
func TestSnapshotReadThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate skipped in -short")
	}
	cfg := Config{Engine: "SpecSPMT", Shards: 4, MaxBatch: 8, PipelineDepth: 4}
	const readers, writers, depth = 8, 1, 4
	const trials = 3
	const dur = 400 * time.Millisecond

	base := cfg
	base.NoMVCC = true
	_, baseAddr := startServer(t, base)
	s, addr := startServer(t, cfg)

	// Alternate paired trials and gate on best-of-N per side: single-core CI
	// runners timeshare the load generator with the server, so any one trial
	// can be stolen from — peak capability is the stable signal.
	var queued, snap uint64
	for i := 0; i < trials; i++ {
		if q := runReadHeavy(t, baseAddr, readers, writers, depth, dur); q > queued {
			queued = q
		}
		if sn := runReadHeavy(t, addr, readers, writers, depth, dur); sn > snap {
			snap = sn
		}
	}

	if s.SnapshotReads() == 0 {
		t.Fatal("MVCC run served no snapshot reads")
	}
	ratio := float64(snap) / float64(queued)
	t.Logf("best-of-%d reads: queued=%d snapshot=%d ratio=%.2fx (snapshot-served: %d)",
		trials, queued, snap, ratio, s.SnapshotReads())
	if ratio < 1.5 {
		t.Fatalf("snapshot read throughput %.2fx of queued baseline, want >= 1.5x", ratio)
	}
}
