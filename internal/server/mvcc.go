package server

import (
	"time"

	"specpmt"
	"specpmt/internal/mvcc"
)

// MVCC snapshot reads: every shard owns a volatile mvcc.Store of versioned
// values. The publish points (the retirer in pipelined mode, the worker's
// inline publish otherwise) install each committed transaction's effective
// writes at its replication LSN and advance the shard's watermark, so a
// snapshot acquired at the watermark sees exactly the published prefix of
// the commit order — never speculative state. GETs and single-shard
// read-only MULTIs are then served lock-free from the snapshot without
// entering the shard worker queue. Cross-shard read-only MULTIs stay on the
// queued path: per-shard watermarks advance independently, so no pair of
// single-shard snapshots is guaranteed to cut a cross-shard transaction
// atomically (see DESIGN.md).
//
// Writes that reach a store without an LSN (cluster-migration applies,
// replica bootstrap batches) mark it stale: the fast path falls back to the
// queued path and the worker rebuilds the store from the hash map at the
// next idle moment, preserving the watermark.

// getAtTimeout bounds how long a GETAT parks waiting for the published LSN
// to reach its token before answering ERR — a replica that far behind
// should be retried elsewhere.
const getAtTimeout = 5 * time.Second

// snapStore returns shard id's version store when the snapshot fast path
// may serve from it (MVCC on and the store not stale).
func (s *Server) snapStore(id int) *mvcc.Store {
	if !s.mvccOn {
		return nil
	}
	sh := s.shards[id]
	if sh.verStale.Load() {
		return nil
	}
	return sh.ver.Load()
}

// serveSnapshot serves a set of GET ops from one consistent snapshot of
// shard id, appending to results. ok=false means the fast path cannot serve
// (MVCC off, store stale, or snapshot slots exhausted) and the caller must
// use the queued path. On success it returns the snapshot LSN.
func (s *Server) serveSnapshot(id int, ops []Op, results []Result) ([]Result, uint64, bool) {
	st := s.snapStore(id)
	if st == nil {
		return results, 0, false
	}
	snap, ok := st.Acquire()
	if !ok {
		s.snapFallbacks.Add(1)
		return results, 0, false
	}
	for _, op := range ops {
		v, found := st.Get(snap, op.Key)
		results = appendGet(results, v, found)
	}
	st.Release(snap)
	if pub := s.pub.Load(); pub > snap.LSN {
		s.snapStale.Observe(int64(pub - snap.LSN))
	} else {
		s.snapStale.Observe(0)
	}
	s.snapReads.Add(uint64(len(ops)))
	return results, snap.LSN, true
}

// PublishedLSN returns the server's published-LSN watermark — the LSN token
// handed to clients for read-your-writes GETAT reads (on this server or on
// a replica tailing it).
func (s *Server) PublishedLSN() uint64 { return s.pub.Load() }

// AdvancePublished raises the published-LSN watermark (and the standalone
// LSN clock) to lsn — replication layers call it when their durable cursor
// already proves everything <= lsn is applied.
func (s *Server) AdvancePublished(lsn uint64) {
	s.pub.AdvanceTo(lsn)
	s.maxLSNClock(lsn)
}

// maxLSNClock raises the standalone LSN clock to at least lsn, so LSNs
// minted after a replicator detaches (promotion) or for unreplicated
// batches never collide with ones already published.
func (s *Server) maxLSNClock(lsn uint64) {
	for {
		cur := s.lsnClock.Load()
		if lsn <= cur || s.lsnClock.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// waitPublished parks until the published LSN reaches token, bounded by
// getAtTimeout and shutdown. Returns the published value observed and
// whether the token was reached.
func (s *Server) waitPublished(token uint64) (uint64, bool) {
	v, wake := s.pub.WaitChan()
	if v >= token {
		return v, true
	}
	timer := time.NewTimer(getAtTimeout)
	defer timer.Stop()
	for v < token {
		select {
		case <-wake:
		case <-s.quit:
			return v, false
		case <-timer.C:
			return v, false
		}
		v, wake = s.pub.WaitChan()
	}
	return v, true
}

// installBatch installs every job's effective writes into the shard version
// stores at their publication LSNs and advances the per-shard and global
// watermarks. extLSN is the LSN the batch's external (client) writes
// published at (0 when there were none); internal jobs carry their own LSN
// in pubLSN (0 marks an unstamped internal write — migration applies,
// bootstrap batches — which makes the store stale instead of installing).
// Runs on the publishing goroutine (worker or retirer) after commit and
// before replies release, so read-your-writes holds the moment a client
// sees its write acknowledged.
func (s *Server) installBatch(batch []*job, extLSN uint64) {
	var maxLSN uint64
	if s.mvccOn {
		var smax [specpmt.RootSlots]uint64
		var touched uint64
		for _, j := range batch {
			lsn := extLSN
			if j.internal {
				lsn = j.pubLSN
			}
			if lsn > maxLSN {
				maxLSN = lsn
			}
			for i, op := range j.ops {
				if i >= len(j.results) {
					break
				}
				if j.results[i].Status != StatusOK {
					continue // misses, conflicts, and errors change nothing
				}
				var val uint64
				del := false
				switch op.Kind {
				case OpSet:
					val = op.Arg1
				case OpDel:
					del = true
				case OpCAS:
					val = op.Arg2
				default:
					continue
				}
				t := s.shards[s.shardOf(op.Key)]
				st := t.ver.Load()
				if lsn == 0 || st == nil || lsn < t.installMax {
					t.verStale.Store(true)
					continue
				}
				t.installMax = lsn
				st.Install(op.Key, val, del, lsn)
				touched |= 1 << uint(t.id)
				if lsn > smax[t.id] {
					smax[t.id] = lsn
				}
			}
		}
		for id := range s.shards {
			if touched&(1<<uint(id)) != 0 {
				if st := s.shards[id].ver.Load(); st != nil {
					st.Advance(smax[id])
				}
			}
		}
	} else {
		for _, j := range batch {
			if j.internal && j.pubLSN > maxLSN {
				maxLSN = j.pubLSN
			}
		}
		if extLSN > maxLSN {
			maxLSN = extLSN
		}
	}
	if maxLSN > 0 {
		s.pub.AdvanceTo(maxLSN)
	}
}

// rebuildStore rebuilds one shard's version store from its hash map: every
// surviving pair reseeds as a base version at LSN 0, the watermark is
// preserved (a snapshot at the old watermark reads the base state, which by
// construction includes every write published up to it), and the stale flag
// clears. Callers must hold the shard quiesced: its worker between jobs
// with the retirer drained, a Freeze callback, or the post-Crash window.
func (s *Server) rebuildStore(sh *shard) {
	if !s.mvccOn {
		return
	}
	ns := &mvcc.Store{}
	sh.m.Range(func(k, v uint64) bool {
		ns.Seed(k, v, 0)
		return true
	})
	if old := sh.ver.Load(); old != nil {
		ns.Advance(old.Watermark())
	}
	sh.ver.Store(ns)
	sh.verStale.Store(false)
}

// ResetMVCC rebuilds every shard's version store from the hash maps under a
// Freeze, with all watermarks (per-shard and published) set to base — the
// replica's post-bootstrap reset: the whole store is the state at the
// snapshot LSN, so that LSN is the new visibility floor.
func (s *Server) ResetMVCC(base uint64) error {
	if s.mvccOn {
		err := s.Freeze(func() {
			for _, sh := range s.shards {
				ns := &mvcc.Store{}
				sh.m.Range(func(k, v uint64) bool {
					ns.Seed(k, v, base)
					return true
				})
				ns.Advance(base)
				sh.ver.Store(ns)
				sh.verStale.Store(false)
				sh.installMax = base
			}
		})
		if err != nil {
			return err
		}
	}
	s.AdvancePublished(base)
	return nil
}

// MVCCEnabled reports whether the snapshot-read subsystem is on.
func (s *Server) MVCCEnabled() bool { return s.mvccOn }

// SnapshotReads returns the count of GETs served from the snapshot fast
// path (tests and smoke checks).
func (s *Server) SnapshotReads() uint64 { return s.snapReads.Load() }
