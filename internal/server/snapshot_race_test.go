package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotRaceCompactCrash hammers the snapshot fast path concurrently
// with heap compaction and crash-recovery cycles (run it under -race).
// Snapshot readers touch only the shard's version-store pointer and its
// immutable chains — never the hash map — so they are safe against
// CompactNow (which relocates map blocks under Freeze) and Crash (which
// swaps the maps and rebuilds the stores). The mutator runs serially on one
// goroutine because Crash requires a quiesced QUEUED path; the whole point
// of this test is that the SNAPSHOT path needs no quiesce.
//
// Correctness asserted: every read of a seeded key returns its seeded value
// (all writes are published before the hammer starts, and rebuilt base
// versions must reproduce them), through any number of relocations and
// recoveries.
func TestSnapshotRaceCompactCrash(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 2})
	const keys = 128
	c := dialT(t, addr)
	for k := uint64(0); k < keys; k++ {
		if r, err := c.Set(k, k*3+1); err != nil || r.Status != StatusOK {
			t.Fatalf("seed SET %d: %+v %v", k, r, err)
		}
	}
	c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	var reads, served atomic.Uint64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := make([]Op, 1)
			var results []Result
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (uint64(g)*31 + i) % keys
				ops[0] = Op{Kind: OpGet, Key: k}
				var ok bool
				results, _, ok = s.serveSnapshot(s.shardOf(k), ops, results[:0])
				reads.Add(1)
				if !ok {
					continue // store mid-rebuild or slots busy: queued path's turn
				}
				served.Add(1)
				if results[0].Status != StatusValue || results[0].Val != k*3+1 {
					errs <- fmt.Errorf("key %d: got %+v, want value %d", k, results[0], k*3+1)
					return
				}
			}
		}(g)
	}

	// One serialized mutator: alternate heap compaction (relocates the
	// maps' blocks under Freeze) and full crash-recovery (swaps maps and
	// version stores). Queued traffic is quiesced by construction — only
	// snapshot readers are in flight.
	deadline := time.Now().Add(2 * time.Second)
	cycles := 0
	for time.Now().Before(deadline) {
		if _, _, err := s.CompactNow(); err != nil {
			t.Errorf("CompactNow: %v", err)
			break
		}
		if err := s.Crash(uint64(cycles)); err != nil {
			t.Errorf("Crash: %v", err)
			break
		}
		cycles++
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cycles == 0 {
		t.Fatal("mutator completed no compact+crash cycles")
	}
	if served.Load() == 0 {
		t.Fatal("no reads were snapshot-served")
	}
	t.Logf("%d reads (%d snapshot-served) across %d compact+crash cycles",
		reads.Load(), served.Load(), cycles)
}
