package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"specpmt/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(body)
}

// TestStatsMetricsParity is the STATS <-> /metrics contract: on a quiesced
// server every numeric STATS field must appear in the registry gather and in
// the /metrics exposition with the exact same value — both render from one
// single-epoch snapshot. Only uptime_ms is exempt (it moves with the wall
// clock between the two reads).
func TestStatsMetricsParity(t *testing.T) {
	plane := obs.NewPlane(obs.Nop(), 0)
	s, addr := startServer(t, Config{Shards: 2, Obs: plane})

	c := dialT(t, addr)
	defer c.Close()
	for i := uint64(0); i < 50; i++ {
		if _, err := c.Set(i, i*2); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CAS(3, 6, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Del(4); err != nil {
		t.Fatal(err)
	}
	// A cross-shard transaction exercises the multi path and its counters.
	if _, _, err := c.Exec([]Op{
		{Kind: OpSet, Key: 1000, Arg1: 1},
		{Kind: OpSet, Key: 2000, Arg1: 2},
		{Kind: OpSet, Key: 3000, Arg1: 3},
	}); err != nil {
		t.Fatal(err)
	}

	// The server is now quiesced: only this connection is open and nothing
	// is in flight, so every stat except uptime_ms holds still.
	nums, strs, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if strs["engine"] == "" || strs["profile"] == "" {
		t.Fatalf("STATS missing engine/profile: %v", strs)
	}

	samples := s.Registry().Gather()
	byStat := map[string]uint64{}
	var wantLines []string
	for _, sm := range samples {
		if sm.Stat == "" || sm.Hist != nil {
			continue
		}
		if _, dup := byStat[sm.Stat]; dup {
			t.Errorf("stat %s emitted twice", sm.Stat)
		}
		byStat[sm.Stat] = sm.Value
		if sm.Stat == "uptime_ms" {
			continue
		}
		name := sm.Family
		if sm.Label != "" {
			name += "{" + sm.Label + "}"
		}
		wantLines = append(wantLines, fmt.Sprintf("%s %d", name, sm.Value))
	}

	// Direction 1: every numeric STATS field has an equal-valued sample.
	for stat, v := range nums {
		if stat == "uptime_ms" {
			continue
		}
		got, ok := byStat[stat]
		if !ok {
			t.Errorf("STATS field %s has no /metrics sample", stat)
			continue
		}
		if got != v {
			t.Errorf("stat %s: STATS=%d registry=%d", stat, v, got)
		}
	}
	// Direction 2: every stat-carrying sample made it into the STATS block.
	for stat, v := range byStat {
		if stat == "uptime_ms" {
			continue
		}
		if nums[stat] != v {
			t.Errorf("sample %s=%d not in STATS (got %d)", stat, v, nums[stat])
		}
	}

	// Direction 3: the admin /metrics endpoint serves those exact series.
	a := obs.NewAdmin(obs.AdminOptions{Registry: s.Registry(), Spans: plane.Spans})
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	body := httpGet(t, fmt.Sprintf("http://%s/metrics", a.Addr()))
	for _, line := range wantLines {
		if !strings.Contains(body, "\n"+line+"\n") {
			t.Errorf("/metrics missing %q", line)
		}
	}
	// Histogram series are there too: commits happened, so shard 0 or 1 has
	// a populated commit histogram.
	if !strings.Contains(body, "specpmt_commit_ns_count") ||
		!strings.Contains(body, `specpmt_batch_jobs_bucket{shard="0",le=`) {
		t.Error("/metrics missing per-shard histogram series")
	}
}

// TestMetricsScrapeUnderLoad hammers the registry (the /metrics and STATS
// backend) while 64 connections run a mixed workload — the race test for
// collector vs. hot path.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	plane := obs.NewPlane(obs.Nop(), 0)
	s, addr := startServer(t, Config{Shards: 4, Obs: plane})

	const conns, rounds = 64, 10
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for id := 0; id < conns; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := uint64(id * 100)
			for i := uint64(0); i < rounds; i++ {
				k := base + i
				if _, err := c.Set(k, k); err != nil {
					errs <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					errs <- err
					return
				}
				if _, err := c.CAS(k, k, k+1); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(2)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Registry().WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer scrapeWG.Done()
		c, err := Dial(addr, 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
				if _, _, err := c.Stats(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpansAndSlowOpLog drives traffic with a 1ns slow-op threshold (every
// request is "slow") and live spans on: the slow-op log must carry the phase
// breakdown, the slow_ops counter must advance, and /debug/spans must serve
// a Chrome trace containing request and batch events.
func TestSpansAndSlowOpLog(t *testing.T) {
	var logBuf syncBuffer
	logger, err := obs.NewLogger("text", &logBuf, 0)
	if err != nil {
		t.Fatal(err)
	}
	plane := obs.NewPlane(logger, time.Nanosecond)
	s, addr := startServer(t, Config{Shards: 2, Obs: plane})

	c := dialT(t, addr)
	defer c.Close()
	for i := uint64(0); i < 20; i++ {
		if _, err := c.Set(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Get(1); err != nil {
		t.Fatal(err)
	}

	nums, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nums["slow_ops"] == 0 {
		t.Fatal("slow_ops = 0 with a 1ns threshold")
	}
	out := logBuf.String()
	for _, want := range []string{"slow op", "verb=SET", "commit_us=", "queue_us=", "conn="} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-op log missing %q:\n%s", want, out)
		}
	}

	a := obs.NewAdmin(obs.AdminOptions{Registry: s.Registry(), Spans: plane.Spans})
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	trace := httpGet(t, fmt.Sprintf("http://%s/debug/spans", a.Addr()))
	for _, want := range []string{`"request"`, `"batch"`, `"commit"`, `"queue"`, "shard-0"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("/debug/spans missing %s", want)
		}
	}
}

// TestObsOverheadBound compares loopback throughput with the full plane on
// (spans + slow-op threshold) against a bare server. The bound is generous —
// 1.5x on shared CI hardware — but the measured ratio is logged so regressions
// show up in test output; locally the plane stays within a few percent.
func TestObsOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	run := func(cfg Config) float64 {
		_, addr := startServer(t, cfg)
		const conns, rounds = 8, 400
		start := time.Now()
		var wg sync.WaitGroup
		for id := 0; id < conns; id++ {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				base := uint64(id * 10000)
				for i := uint64(0); i < rounds; i++ {
					if _, err := c.Set(base+i, i); err != nil {
						t.Error(err)
						return
					}
					if _, err := c.Get(base + i); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		return float64(conns*rounds*2) / time.Since(start).Seconds()
	}

	bare := run(Config{Shards: 4})
	plane := obs.NewPlane(obs.Nop(), 5*time.Millisecond)
	withObs := run(Config{Shards: 4, Obs: plane})
	ratio := bare / withObs
	t.Logf("throughput bare=%.0f ops/s obs=%.0f ops/s ratio=%.3f", bare, withObs, ratio)
	if ratio > 1.5 {
		t.Fatalf("observability overhead ratio %.3f exceeds 1.5x", ratio)
	}
}
