package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startServer builds a server over a small pool and serves it on an
// ephemeral loopback port.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 64 << 20
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Start the workers here, not on the Serve goroutine: tests read
	// model-clock-advancing state (s.Counters) right after this returns,
	// which must not race the workers' initial stats publish.
	s.startWorkers()
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLoopbackMixed64Conns is the acceptance workload: 64 concurrent
// connections run a mixed GET/SET/CAS/DEL workload against engine=spec
// with zero protocol errors, and the stats add up.
func TestLoopbackMixed64Conns(t *testing.T) {
	s, addr := startServer(t, Config{Engine: "SpecSPMT", Shards: 4})
	const conns, rounds = 64, 25
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for id := 0; id < conns; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			base := uint64(id * 1000)
			for i := uint64(0); i < rounds; i++ {
				k := base + i
				if r, err := c.Set(k, k*3); err != nil || r.Status != StatusOK {
					errs <- fmt.Errorf("SET %d: %v %v", k, r.Status, err)
					return
				}
				if r, err := c.Get(k); err != nil || r.Status != StatusValue || r.Val != k*3 || r.ModelNs < 0 {
					errs <- fmt.Errorf("GET %d = %+v, %v", k, r, err)
					return
				}
				if r, err := c.CAS(k, k*3, k*4); err != nil || r.Status != StatusOK {
					errs <- fmt.Errorf("CAS %d: %v %v", k, r.Status, err)
					return
				}
				if r, err := c.CAS(k, 12345678, 1); err != nil || r.Status != StatusConflict || r.Val != k*4 {
					errs <- fmt.Errorf("CAS conflict %d = %+v, %v", k, r, err)
					return
				}
				if i%5 == 4 {
					if r, err := c.Del(k); err != nil || r.Status != StatusOK {
						errs <- fmt.Errorf("DEL %d: %v %v", k, r.Status, err)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c := dialT(t, addr)
	defer c.Close()
	nums, strs, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if strs["engine"] != "SpecSPMT" {
		t.Fatalf("STATS engine = %q", strs["engine"])
	}
	if nums["protocol_errors"] != 0 {
		t.Fatalf("protocol_errors = %d, want 0", nums["protocol_errors"])
	}
	wantSets := uint64(conns * rounds)
	if nums["ops_set"] != wantSets {
		t.Fatalf("ops_set = %d, want %d", nums["ops_set"], wantSets)
	}
	wantKeys := uint64(conns * (rounds - rounds/5))
	if nums["keys"] != wantKeys {
		t.Fatalf("keys = %d, want %d", nums["keys"], wantKeys)
	}
	if nums["fences"] == 0 || nums["tx_committed"] == 0 {
		t.Fatalf("expected nonzero engine counters, got %v", nums)
	}
	_ = s
}

// TestCASLinearizable hammers one key with CAS increments from many
// connections (run it under -race): the final value must equal the number
// of successful CAS operations, and shutdown must be clean.
func TestCASLinearizable(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2})
	const key = 7
	init := dialT(t, addr)
	if r, err := init.Set(key, 0); err != nil || r.Status != StatusOK {
		t.Fatalf("seed SET: %+v %v", r, err)
	}
	init.Close()

	const conns = 8
	const target = 25 // successful increments per connection
	var succeeded atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for id := 0; id < conns; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			wins := 0
			for wins < target {
				g, err := c.Get(key)
				if err != nil || g.Status != StatusValue {
					errs <- fmt.Errorf("GET: %+v %v", g, err)
					return
				}
				r, err := c.CAS(key, g.Val, g.Val+1)
				if err != nil {
					errs <- err
					return
				}
				switch r.Status {
				case StatusOK:
					wins++
					succeeded.Add(1)
				case StatusConflict:
					// lost the race; retry
				default:
					errs <- fmt.Errorf("CAS: %+v", r)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c := dialT(t, addr)
	g, err := c.Get(key)
	if err != nil || g.Status != StatusValue {
		t.Fatalf("final GET: %+v %v", g, err)
	}
	c.Close()
	if g.Val != succeeded.Load() {
		t.Fatalf("CAS lost updates: final=%d successful=%d", g.Val, succeeded.Load())
	}
	if g.Val != conns*target {
		t.Fatalf("final=%d want %d", g.Val, conns*target)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := Dial(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial after Close must fail")
	}
}

// TestGroupCommitFewerFences pins the batching claim: the same 40 SETs
// cost far fewer fences per write under group commit than with batching
// disabled. Jobs are pre-enqueued before the workers start, so both runs
// batch deterministically.
func TestGroupCommitFewerFences(t *testing.T) {
	fences := func(maxBatch int) (fences, sets uint64) {
		s, err := New(Config{
			Shards:      1,
			PoolSize:    64 << 20,
			MaxBatch:    maxBatch,
			BatchWindow: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		before := s.Counters()
		const n = 40
		jobs := make([]*job, n)
		for i := range jobs {
			j := newJob()
			j.ops = append(j.ops, Op{Kind: OpSet, Key: uint64(i), Arg1: uint64(i)})
			jobs[i] = j
			s.shards[0].jobs <- j
		}
		s.startWorkers()
		for _, j := range jobs {
			<-j.done
		}
		for _, j := range jobs {
			if len(j.results) != 1 || j.results[0].Status != StatusOK {
				t.Fatalf("maxBatch=%d: bad result %+v", maxBatch, j.results)
			}
		}
		after := s.Counters()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return after.Fences - before.Fences, n
	}
	batchedFences, n := fences(64)
	unbatchedFences, _ := fences(1)
	t.Logf("fences per SET: batched=%.2f unbatched=%.2f",
		float64(batchedFences)/float64(n), float64(unbatchedFences)/float64(n))
	if unbatchedFences < n {
		t.Fatalf("unbatched run must fence at least once per SET, got %d/%d", unbatchedFences, n)
	}
	if batchedFences*4 >= unbatchedFences {
		t.Fatalf("group commit did not amortize fences: batched=%d unbatched=%d",
			batchedFences, unbatchedFences)
	}
}

// TestMultiExecCrossShard checks MULTI...EXEC atomicity when the keys span
// shards, and that concurrent cross-shard transactions make progress.
func TestMultiExecCrossShard(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 4})
	c := dialT(t, addr)
	defer c.Close()

	// 8 consecutive keys are guaranteed to span more than one of 4 shards.
	var ops []Op
	for k := uint64(0); k < 8; k++ {
		ops = append(ops, Op{Kind: OpSet, Key: k, Arg1: k + 100})
	}
	results, modelNs, err := c.Exec(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Status != StatusOK {
			t.Fatalf("op %d: %+v", i, r)
		}
	}
	if modelNs <= 0 {
		t.Fatalf("modelNs = %d", modelNs)
	}
	for k := uint64(0); k < 8; k++ {
		if r, err := c.Get(k); err != nil || r.Val != k+100 {
			t.Fatalf("GET %d after EXEC: %+v %v", k, r, err)
		}
	}

	// A transaction mixing reads, writes, and a conflict-free CAS.
	results, _, err = c.Exec([]Op{
		{Kind: OpGet, Key: 0},
		{Kind: OpCAS, Key: 1, Arg1: 101, Arg2: 999},
		{Kind: OpDel, Key: 2},
		{Kind: OpSet, Key: 3, Arg1: 303},
		{Kind: OpGet, Key: 3}, // must observe the SET in the same txn
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Status: StatusValue, Val: 100},
		{Status: StatusOK},
		{Status: StatusOK},
		{Status: StatusOK},
		{Status: StatusValue, Val: 303},
	}
	for i, w := range want {
		if results[i].Status != w.Status || results[i].Val != w.Val {
			t.Fatalf("mixed EXEC op %d = %+v, want %+v", i, results[i], w)
		}
	}

	// Concurrent overlapping cross-shard transactions must not deadlock.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for id := 0; id < 8; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cc.Close()
			for round := 0; round < 10; round++ {
				ops := []Op{
					{Kind: OpSet, Key: 50, Arg1: uint64(id)},
					{Kind: OpSet, Key: 51, Arg1: uint64(id)},
					{Kind: OpSet, Key: 52, Arg1: uint64(id)},
					{Kind: OpSet, Key: uint64(60 + id), Arg1: uint64(round)},
				}
				if _, _, err := cc.Exec(ops); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The three co-written keys must agree (each EXEC wrote them together).
	a, _ := c.Get(50)
	b, _ := c.Get(51)
	d, _ := c.Get(52)
	if a.Val != b.Val || b.Val != d.Val {
		t.Fatalf("cross-shard atomicity violated: %d %d %d", a.Val, b.Val, d.Val)
	}
}

// TestServeConnPipe drives the full conn handler over a net.Pipe — no TCP —
// covering the error paths a well-behaved client never hits.
func TestServeConnPipe(t *testing.T) {
	s, err := New(Config{Shards: 2, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv, cli := net.Pipe()
	go s.ServeConn(srv)
	c, err := NewClient(cli)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Banner, "engine=SpecSPMT") || !strings.Contains(c.Banner, "shards=2") {
		t.Fatalf("banner = %q", c.Banner)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Unknown and malformed commands answer ERR but keep the session.
	raw := func(line string) string {
		t.Helper()
		if _, err := cli.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		reply, err := c.readLine()
		if err != nil {
			t.Fatal(err)
		}
		return string(reply)
	}
	if got := raw("BLORP 1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown command reply %q", got)
	}
	if got := raw("SET 1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("malformed SET reply %q", got)
	}
	if got := raw("EXEC"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("EXEC without MULTI reply %q", got)
	}
	if got := raw("SET 1 11"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("SET reply %q", got)
	}
	// MULTI then DISCARD leaves nothing behind.
	if got := raw("MULTI"); got != "OK" {
		t.Fatalf("MULTI reply %q", got)
	}
	if got := raw("SET 2 22"); got != "QUEUED" {
		t.Fatalf("queued SET reply %q", got)
	}
	if got := raw("MULTI"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("nested MULTI reply %q", got)
	}
	if got := raw("DISCARD"); got != "OK" {
		t.Fatalf("DISCARD reply %q", got)
	}
	if r, err := c.Get(2); err != nil || r.Status != StatusNotFound {
		t.Fatalf("discarded SET leaked: %+v %v", r, err)
	}
	if r, err := c.Get(1); err != nil || r.Val != 11 {
		t.Fatalf("GET 1: %+v %v", r, err)
	}
	// Empty EXEC is a no-op transaction.
	if rs, _, err := c.Exec(nil); err != nil || len(rs) != 0 {
		t.Fatalf("empty EXEC: %v %v", rs, err)
	}
	// An over-long line is a protocol error that ends the connection. The
	// write runs concurrently: net.Pipe is unbuffered, so the server replies
	// (and hangs up) before the full oversized line drains.
	go cli.Write([]byte(strings.Repeat("9", 2*MaxLineLen) + "\n"))
	reply, err := c.readLine()
	if err != nil || !strings.HasPrefix(string(reply), "ERR") {
		t.Fatalf("long line reply %q err %v", reply, err)
	}
	cli.Close()
}

// TestConnLimit checks that connections over MaxConns are refused with an
// ERR line.
func TestConnLimit(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1, MaxConns: 2})
	c1 := dialT(t, addr)
	defer c1.Close()
	c2 := dialT(t, addr)
	defer c2.Close()
	if _, err := Dial(addr, 200*time.Millisecond); err == nil ||
		!strings.Contains(err.Error(), "max connections") {
		t.Fatalf("third connection: %v, want max-connections refusal", err)
	}
}

// TestGracefulShutdownUnderLoad closes the server while requests are in
// flight: every outstanding request must complete or fail cleanly, and
// Close must return.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2})
	const conns = 8
	var wg sync.WaitGroup
	for id := 0; id < conns; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				return
			}
			defer c.conn.Close()
			for i := uint64(0); ; i++ {
				if _, err := c.Set(uint64(id)*100+i%10, i); err != nil {
					return // server draining: connection closed mid-stream
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let traffic build
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain within 30s")
	}
	wg.Wait()
}
