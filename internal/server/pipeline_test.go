package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// runSets pushes n single-SET jobs through a fresh server with the given
// batching/pipelining shape and returns the engine fence and commit deltas.
func runSets(t *testing.T, maxBatch, depth, n int) (fences, commits uint64) {
	t.Helper()
	s, err := New(Config{
		Shards:        1,
		PoolSize:      64 << 20,
		MaxBatch:      maxBatch,
		BatchWindow:   time.Millisecond,
		PipelineDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Counters()
	jobs := make([]*job, n)
	for i := range jobs {
		j := newJob()
		j.ops = append(j.ops, Op{Kind: OpSet, Key: uint64(i), Arg1: uint64(i)})
		jobs[i] = j
		s.shards[0].jobs <- j
	}
	s.startWorkers()
	for _, j := range jobs {
		<-j.done
	}
	for _, j := range jobs {
		if len(j.results) != 1 || j.results[0].Status != StatusOK {
			t.Fatalf("maxBatch=%d depth=%d: bad result %+v", maxBatch, depth, j.results)
		}
	}
	after := s.Counters()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return after.Fences - before.Fences, after.TxCommitted - before.TxCommitted
}

// TestPipelinedFencesPerOp is the fences-per-op regression gate: group
// commit amortizes the fence over a batch, and pipelining amortizes it again
// over a window of batches, so the three shapes must order strictly:
//
//	pipelined < batched < unbatched
func TestPipelinedFencesPerOp(t *testing.T) {
	const n = 40
	unbatched, _ := runSets(t, 1, 1, n)
	batched, _ := runSets(t, 8, 1, n)
	pipelined, _ := runSets(t, 8, 4, n)
	t.Logf("fences per SET: unbatched=%.2f batched=%.2f pipelined=%.2f",
		float64(unbatched)/n, float64(batched)/n, float64(pipelined)/n)
	if unbatched < n {
		t.Fatalf("unbatched must fence at least once per SET: %d/%d", unbatched, n)
	}
	if batched >= unbatched {
		t.Fatalf("group commit did not reduce fences: batched=%d unbatched=%d", batched, unbatched)
	}
	if pipelined >= batched {
		t.Fatalf("pipelining did not reduce fences further: pipelined=%d batched=%d", pipelined, batched)
	}
}

// TestParkedSpeculativeReplies drives a depth-4 pipeline and checks the
// retire machinery's observable invariants: every reply arrives, nothing
// aborted-and-replayed, the parked gauge drains to zero, the engine issued
// fewer fences than transactions (the speculative fences really coalesced),
// and the shard's published STATS snapshot is a fence-time cut that already
// covers every committed transaction.
func TestParkedSpeculativeReplies(t *testing.T) {
	s, err := New(Config{
		Shards:        1,
		PoolSize:      64 << 20,
		MaxBatch:      8,
		BatchWindow:   time.Millisecond,
		PipelineDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	beforeStats, _, _ := s.shards[0].published()
	// Below the shard queue's capacity, so the whole load enqueues before
	// the worker starts and coalesces deterministically.
	const n = 60
	jobs := make([]*job, n)
	for i := range jobs {
		j := newJob()
		j.ops = append(j.ops, Op{Kind: OpSet, Key: uint64(i % 7), Arg1: uint64(i)})
		jobs[i] = j
		s.shards[0].jobs <- j
	}
	s.startWorkers()
	for _, j := range jobs {
		<-j.done
		if len(j.results) != 1 || j.results[0].Status != StatusOK {
			t.Fatalf("bad result %+v", j.results)
		}
	}
	if got := s.specAborts.Load(); got != 0 {
		t.Fatalf("spec aborts = %d on a conflict-free workload", got)
	}
	// Every reply we received was released by the retirer, so the parked
	// gauge must be back to zero the moment the last done fires.
	if parked := s.shards[0].parked.Load(); parked != 0 {
		t.Fatalf("parked gauge = %d after all replies", parked)
	}
	// The published snapshot was cut AFTER the retire fence that released
	// the final reply: it must already account for every commit and show
	// the fence amortization.
	afterStats, _, _ := s.shards[0].published()
	commits := afterStats.TxCommitted - beforeStats.TxCommitted
	fences := afterStats.Fences - beforeStats.Fences
	if commits == 0 {
		t.Fatal("published snapshot saw no commits")
	}
	if fences >= commits {
		t.Fatalf("pipelined run published fences=%d >= commits=%d", fences, commits)
	}
}

// TestBinaryPipelinedLoopback runs concurrent binary-protocol connections,
// each keeping a window of frames in flight against a pipelined server, and
// checks per-connection read-your-writes ordering — a reply stream that
// reordered or dropped a parked reply fails immediately. This test is part
// of the -race CI step.
func TestBinaryPipelinedLoopback(t *testing.T) {
	s, addr := startServer(t, Config{
		Engine:        "SpecSPMT",
		Shards:        4,
		MaxBatch:      8,
		BatchWindow:   100 * time.Microsecond,
		PipelineDepth: 4,
	})
	const conns, rounds, window = 8, 120, 16
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for id := 0; id < conns; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialProto(addr, 5*time.Second, "binary")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			type sent struct {
				kind OpKind
				key  uint64
				want uint64
			}
			var inflight []sent
			recvOne := func() error {
				r, err := c.RecvResult()
				if err != nil {
					return err
				}
				sd := inflight[0]
				inflight = inflight[1:]
				switch sd.kind {
				case OpSet:
					if r.Status != StatusOK {
						return fmt.Errorf("conn %d SET %d: %v", id, sd.key, r.Status)
					}
				case OpGet:
					if r.Status != StatusValue || r.Val != sd.want {
						return fmt.Errorf("conn %d GET %d = (%v,%d), want %d", id, sd.key, r.Status, r.Val, sd.want)
					}
				}
				return nil
			}
			last := map[uint64]uint64{}
			for i := 0; i < rounds; i++ {
				k := uint64(id*1000 + i%13)
				v := uint64(i + 1)
				if err := c.SendOp(Op{Kind: OpSet, Key: k, Arg1: v}); err != nil {
					errs <- err
					return
				}
				last[k] = v
				inflight = append(inflight, sent{OpSet, k, v})
				// Read-your-writes: a GET queued behind the SET on the same
				// connection must observe it, even while both are parked.
				if err := c.SendOp(Op{Kind: OpGet, Key: k}); err != nil {
					errs <- err
					return
				}
				inflight = append(inflight, sent{OpGet, k, v})
				for len(inflight) >= window {
					if err := recvOne(); err != nil {
						errs <- err
						return
					}
				}
			}
			for len(inflight) > 0 {
				if err := recvOne(); err != nil {
					errs <- err
					return
				}
			}
			// Final closed-loop check of every key this connection owns.
			for k, v := range last {
				r, err := c.Get(k)
				if err != nil || r.Status != StatusValue || r.Val != v {
					errs <- fmt.Errorf("conn %d final GET %d = (%+v, %v), want %d", id, k, r, err, v)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.specAborts.Load(); got != 0 {
		t.Fatalf("spec aborts = %d", got)
	}
}

// TestPipelinedReadYourWrites pins the read-parking path specifically: with
// speculative batches pending, a read-only batch must park behind the same
// retire fence instead of replying early (runBatch's readOnly branch), and
// the value it reports must be the speculative one.
func TestPipelinedReadYourWrites(t *testing.T) {
	_, addr := startServer(t, Config{
		Engine:        "SpecSPMT",
		Shards:        1,
		MaxBatch:      4,
		PipelineDepth: 8,
	})
	c, err := DialProto(addr, 5*time.Second, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 32
	for i := 0; i < n; i++ {
		if err := c.SendOp(Op{Kind: OpSet, Key: 42, Arg1: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := c.SendOp(Op{Kind: OpGet, Key: 42}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if r, err := c.RecvResult(); err != nil || r.Status != StatusOK {
			t.Fatalf("SET %d: %+v %v", i, r, err)
		}
		if r, err := c.RecvResult(); err != nil || r.Status != StatusValue || r.Val != uint64(i) {
			t.Fatalf("GET after SET %d = %+v, %v", i, r, err)
		}
	}
}

// TestPipelinedCrossShardDrain checks that MULTI...EXEC transactions spanning
// shards still commit atomically when every involved worker first has to
// retire and drain a speculative window.
func TestPipelinedCrossShardDrain(t *testing.T) {
	_, addr := startServer(t, Config{
		Engine:        "SpecSPMT",
		Shards:        4,
		MaxBatch:      8,
		BatchWindow:   100 * time.Microsecond,
		PipelineDepth: 4,
	})
	c, err := DialProto(addr, 5*time.Second, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 20; round++ {
		// Seed traffic so windows are speculatively parked on several shards.
		for k := uint64(0); k < 16; k++ {
			if err := c.SendOp(Op{Kind: OpSet, Key: k, Arg1: uint64(round)}); err != nil {
				t.Fatal(err)
			}
		}
		// 8 consecutive keys always span more than one of 4 shards.
		ops := make([]Op, 0, 8)
		for k := uint64(0); k < 8; k++ {
			ops = append(ops, Op{Kind: OpSet, Key: k, Arg1: uint64(round*100) + k})
		}
		// Drain the window first: Exec is synchronous on this connection.
		for i := 0; i < 16; i++ {
			if r, err := c.RecvResult(); err != nil || r.Status != StatusOK {
				t.Fatalf("round %d seed SET %d: %+v %v", round, i, r, err)
			}
		}
		res, _, err := c.Exec(ops)
		if err != nil {
			t.Fatalf("round %d EXEC: %v", round, err)
		}
		for i, r := range res {
			if r.Status != StatusOK {
				t.Fatalf("round %d EXEC op %d: %v", round, i, r.Status)
			}
		}
		for k := uint64(0); k < 8; k++ {
			r, err := c.Get(k)
			if err != nil || r.Status != StatusValue || r.Val != uint64(round*100)+k {
				t.Fatalf("round %d GET %d = %+v, %v", round, k, r, err)
			}
		}
	}
}
