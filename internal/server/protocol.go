// Package server is a network front end for the SpecPMT engines: a TCP
// server speaking a small line-oriented protocol over a sharded, threaded
// persistent pool. Each worker goroutine owns one engine thread and one
// shard of a persistent hash map; requests are routed to workers by key
// hash, and a group-commit batcher coalesces requests arriving within a
// window into one transaction so the commit fence amortizes across clients
// — the server-side analogue of the paper's single-fence commit argument.
//
// # Wire protocol
//
// One command per line, fields separated by spaces, keys and values are
// decimal uint64. On connect the server sends a banner:
//
//	SPECPMT 1 engine=SpecSPMT profile=optane-adr shards=4
//
// Commands and their replies (t=<ns> is the request's modeled PM time):
//
//	GET k            VALUE <v> t=<ns> | NOTFOUND t=<ns>
//	SET k v          OK t=<ns>
//	DEL k            OK t=<ns> | NOTFOUND t=<ns>
//	CAS k old new    OK t=<ns> | CONFLICT <cur> t=<ns> | NOTFOUND t=<ns>
//	MULTI            OK            (then queue GET/SET/DEL/CAS -> QUEUED)
//	EXEC             RESULTS <n>, n result lines, END t=<ns>
//	DISCARD          OK
//	LSN              LSN <published-lsn>   (read-your-writes session token)
//	GETAT k token    as GET, plus lsn=<published> — waits until the
//	                 published LSN reaches token (ERR on timeout)
//	STATS            STAT <name> <value> lines, then END
//	PING             PONG
//	PROMOTE          OK (replica becomes writable) | ERR not a replica
//	QUIT             BYE (server closes the connection)
//	anything else    ERR <message>
//
// Replies served from an MVCC snapshot (never from the worker queue) carry
// an s=1 marker before the t= trailer; their modeled PM time is 0 because
// the read touched no persistent structure.
//
// A read-only replica (see internal/repl) answers ERR read-only replica to
// SET/DEL/CAS and to EXEC blocks containing one.
//
// A clustered server (see internal/cluster) answers
//
//	MOVED <shard> <epoch> <addr>
//
// to any data command (or EXEC block) touching a shard it does not own —
// the client should refresh its cluster map and retry against <addr> — and
// registers extension admin verbs (CLUSTER, CLUSTERSET, MIGPULL, ...)
// through Server.OnExtCommand; unknown verbs are offered to that hook
// before becoming ERR.
//
// A MULTI...EXEC block executes as ONE transaction — all its operations
// commit atomically, even when the keys live on different shards.
package server

import (
	"fmt"
	"strconv"
)

// OpKind enumerates the data operations.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpSet
	OpDel
	OpCAS
)

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpCAS:
		return "CAS"
	}
	return "?"
}

// Op is one data operation. SET uses Arg1 as the value; CAS uses Arg1 as
// the expected old value and Arg2 as the new one.
type Op struct {
	Kind            OpKind
	Key, Arg1, Arg2 uint64
}

// Verb enumerates the protocol commands.
type Verb uint8

const (
	VerbOp Verb = iota // GET/SET/DEL/CAS — see Command.Op
	VerbMulti
	VerbExec
	VerbDiscard
	VerbStats
	VerbPing
	VerbQuit
	VerbPromote
	VerbGetAt // GET at-or-after an LSN token — see Command.Op (Arg1 = token)
	VerbLSN
)

// Command is one parsed protocol line.
type Command struct {
	Verb Verb
	Op   Op
}

// MaxLineLen bounds a protocol line; longer lines are a protocol error and
// close the connection. Sized for one-line cluster-map pushes (CLUSTERSET
// with 16 shard=addr/addr tokens), with headroom.
const MaxLineLen = 4096

// MaxMultiOps bounds the operations queueable in one MULTI block.
const MaxMultiOps = 128

// Status is a data operation's outcome.
type Status uint8

const (
	StatusOK Status = iota
	StatusValue
	StatusNotFound
	StatusConflict
	StatusErr
)

// Result is one data operation's reply.
type Result struct {
	Status Status
	Val    uint64 // VALUE payload, or the current value on CONFLICT
}

// ParseCommand parses one protocol line (without its trailing newline).
// Verbs are case-insensitive; numbers are decimal uint64.
func ParseCommand(line []byte) (Command, error) {
	fields := splitFields(line)
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("empty command")
	}
	verb := fields[0]
	args := fields[1:]
	switch {
	case verbIs(verb, "GET"):
		return opCommand(OpGet, args, 1)
	case verbIs(verb, "SET"):
		return opCommand(OpSet, args, 2)
	case verbIs(verb, "DEL"):
		return opCommand(OpDel, args, 1)
	case verbIs(verb, "CAS"):
		return opCommand(OpCAS, args, 3)
	case verbIs(verb, "MULTI"):
		return bareCommand(VerbMulti, args)
	case verbIs(verb, "EXEC"):
		return bareCommand(VerbExec, args)
	case verbIs(verb, "DISCARD"):
		return bareCommand(VerbDiscard, args)
	case verbIs(verb, "STATS"):
		return bareCommand(VerbStats, args)
	case verbIs(verb, "PING"):
		return bareCommand(VerbPing, args)
	case verbIs(verb, "QUIT"):
		return bareCommand(VerbQuit, args)
	case verbIs(verb, "PROMOTE"):
		return bareCommand(VerbPromote, args)
	case verbIs(verb, "GETAT"):
		c, err := opCommand(OpGet, args, 2)
		if err != nil {
			return c, err
		}
		c.Verb = VerbGetAt
		return c, nil
	case verbIs(verb, "LSN"):
		return bareCommand(VerbLSN, args)
	}
	return Command{}, fmt.Errorf("unknown command %q", clip(verb))
}

// splitFields splits on runs of spaces and tabs without allocating a new
// backing array per field.
func splitFields(line []byte) [][]byte {
	var out [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if j > i {
			out = append(out, line[i:j])
		}
		i = j
	}
	return out
}

func verbIs(got []byte, want string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := 0; i < len(want); i++ {
		c := got[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}

func bareCommand(v Verb, args [][]byte) (Command, error) {
	if len(args) != 0 {
		return Command{}, fmt.Errorf("command takes no arguments")
	}
	return Command{Verb: v}, nil
}

func opCommand(kind OpKind, args [][]byte, want int) (Command, error) {
	if len(args) != want {
		return Command{}, fmt.Errorf("%s takes %d argument(s), got %d", kind, want, len(args))
	}
	var nums [3]uint64
	for i, a := range args {
		n, err := parseUint(a)
		if err != nil {
			return Command{}, fmt.Errorf("%s: bad number %q", kind, clip(a))
		}
		nums[i] = n
	}
	return Command{Verb: VerbOp, Op: Op{Kind: kind, Key: nums[0], Arg1: nums[1], Arg2: nums[2]}}, nil
}

// parseUint is strconv.ParseUint(s, 10, 64) over bytes without the string
// allocation.
func parseUint(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, strconv.ErrSyntax
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, strconv.ErrSyntax
		}
		d := uint64(c - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, strconv.ErrRange
		}
		n = n*10 + d
	}
	return n, nil
}

func clip(b []byte) string {
	const max = 32
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// AppendCommand formats op as a protocol line (with trailing newline) onto
// dst — the client-side encoder.
func AppendCommand(dst []byte, op Op) []byte {
	dst = append(dst, op.Kind.String()...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, op.Key, 10)
	switch op.Kind {
	case OpSet:
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, op.Arg1, 10)
	case OpCAS:
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, op.Arg1, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, op.Arg2, 10)
	}
	return append(dst, '\n')
}

// AppendResult formats a data operation's reply line onto dst. modelNs < 0
// omits the t= trailer (used inside RESULTS blocks, which carry one t= on
// END).
func AppendResult(dst []byte, r Result, modelNs int64) []byte {
	switch r.Status {
	case StatusOK:
		dst = append(dst, "OK"...)
	case StatusValue:
		dst = append(dst, "VALUE "...)
		dst = strconv.AppendUint(dst, r.Val, 10)
	case StatusNotFound:
		dst = append(dst, "NOTFOUND"...)
	case StatusConflict:
		dst = append(dst, "CONFLICT "...)
		dst = strconv.AppendUint(dst, r.Val, 10)
	case StatusErr:
		dst = append(dst, "ERR server full"...)
	}
	if modelNs >= 0 {
		dst = append(dst, " t="...)
		dst = strconv.AppendInt(dst, modelNs, 10)
	}
	return append(dst, '\n')
}

// AppendResultExt is AppendResult plus the snapshot-read trailers: snap adds
// an " s=1" marker (the reply was served from an MVCC snapshot), and a
// non-zero lsn adds " lsn=<n>" (the published LSN observed by a GETAT).
// Trailer order is s=1, lsn=, t=.
func AppendResultExt(dst []byte, r Result, modelNs int64, snap bool, lsn uint64) []byte {
	out := AppendResult(dst, r, -1)
	out = out[:len(out)-1] // strip the newline to splice trailers in
	if snap {
		out = append(out, " s=1"...)
	}
	if lsn != 0 {
		out = append(out, " lsn="...)
		out = strconv.AppendUint(out, lsn, 10)
	}
	if modelNs >= 0 {
		out = append(out, " t="...)
		out = strconv.AppendInt(out, modelNs, 10)
	}
	return append(out, '\n')
}
