package server

import (
	"bytes"
	"testing"
)

// FuzzParseCommand asserts the protocol parser never panics, never accepts
// an over-long line's worth of garbage as a valid command with mangled
// numbers, and — for every line it does accept as a data operation —
// round-trips through the client-side encoder to the identical command.
func FuzzParseCommand(f *testing.F) {
	for _, seed := range []string{
		"GET 7", "SET 1 2", "DEL 3", "CAS 4 5 6",
		"MULTI", "EXEC", "DISCARD", "STATS", "PING", "QUIT",
		"get 18446744073709551615", "  SET\t9 10  ",
		"", " ", "SET 1", "CAS 1 2", "SET 1 99999999999999999999999",
		"BLORP", "GET -1", "GET 0x10", "SET 1 2 3 4", "\x00\xff\xfe",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		cmd, err := ParseCommand(line)
		if err != nil {
			return
		}
		if cmd.Verb != VerbOp {
			if (cmd.Op != Op{}) {
				t.Fatalf("bare verb %v carried op payload %+v", cmd.Verb, cmd.Op)
			}
			return
		}
		// Encoder -> parser must be the identity on accepted operations.
		wire := AppendCommand(nil, cmd.Op)
		if !bytes.HasSuffix(wire, []byte("\n")) {
			t.Fatalf("AppendCommand(%+v) not newline-terminated: %q", cmd.Op, wire)
		}
		again, err := ParseCommand(wire[:len(wire)-1])
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", wire, line, err)
		}
		if again != cmd {
			t.Fatalf("round trip changed command: %+v -> %+v (line %q)", cmd, again, line)
		}
	})
}
