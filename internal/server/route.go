package server

import (
	"errors"
	"strconv"
	"time"
)

// Cluster routing: a Server can be told which node owns each shard (one
// epoch of the cluster map, projected onto this process). Requests whose
// shard set touches a shard owned elsewhere are answered with a MOVED
// redirect instead of being executed, in both wire protocols:
//
//	text:    MOVED <shard> <epoch> <addr>
//	binary:  0x85 frame — u32le shard | u64le epoch | addr bytes
//
// so a map-aware client can refresh its view and retry against the owner.
// Shards may additionally be frozen at admission — the migration cutover
// window — which parks new requests for that shard until the route changes
// (normally a few milliseconds: drain, digest, epoch bump, unfreeze).
// Without a route installed (standalone servers) the gate is a single nil
// pointer load.

// Route is one immutable ownership view: Owner[shard] is the owning node's
// advertised data address ("" = unowned/unknown, treated as local so a
// bootstrapping node can serve before the first full map). Self is this
// node's advertised address.
type Route struct {
	Epoch uint64
	Owner []string
	Self  string
}

func (rt *Route) owns(shard int) bool {
	return shard >= len(rt.Owner) || rt.Owner[shard] == "" || rt.Owner[shard] == rt.Self
}

// Moved is the redirect for an op targeting a shard this node does not own.
type Moved struct {
	Shard int
	Epoch uint64
	Addr  string
}

// errShardFrozen is the admission-gate timeout: a shard stayed frozen past
// frozenAdmitTimeout (a stuck migration, not a normal cutover).
var errShardFrozen = errors.New("shard frozen (migration cutover)")

// frozenAdmitTimeout bounds how long a request parks on a frozen shard
// before giving up with an ERR. Cutovers hold the freeze for milliseconds;
// anything near this bound is a wedged coordinator.
const frozenAdmitTimeout = 5 * time.Second

// SetRoute installs (or with owner == nil removes) the ownership view.
// owner is copied. Parked requests re-evaluate against the new route.
func (s *Server) SetRoute(epoch uint64, owner []string, self string) {
	if owner == nil {
		s.route.Store(nil)
	} else {
		rt := &Route{Epoch: epoch, Owner: append([]string(nil), owner...), Self: self}
		s.route.Store(rt)
	}
	s.routeChanged()
}

// CurrentRoute returns the installed route (nil when standalone).
func (s *Server) CurrentRoute() *Route { return s.route.Load() }

// OwnsShard reports whether this node currently owns shard (true when no
// route is installed).
func (s *Server) OwnsShard(shard int) bool {
	rt := s.route.Load()
	return rt == nil || rt.owns(shard)
}

// FreezeShard blocks new requests for shard at admission (they park, they
// are not errored) — the migration cutover gate. Unlike Freeze, requests
// for other shards keep flowing. Pair with UnfreezeShard or a SetRoute that
// moves the shard away.
func (s *Server) FreezeShard(shard int) {
	if shard < 0 || shard >= 64 {
		return
	}
	for {
		old := s.frozenMask.Load()
		if s.frozenMask.CompareAndSwap(old, old|uint64(1)<<uint(shard)) {
			break
		}
	}
	s.routeChanged()
}

// UnfreezeShard releases a FreezeShard gate and wakes parked requests.
func (s *Server) UnfreezeShard(shard int) {
	if shard < 0 || shard >= 64 {
		return
	}
	for {
		old := s.frozenMask.Load()
		if s.frozenMask.CompareAndSwap(old, old&^(uint64(1)<<uint(shard))) {
			break
		}
	}
	s.routeChanged()
}

// routeChanged wakes every request parked in admitShards so it re-evaluates
// the route and the frozen mask.
func (s *Server) routeChanged() {
	s.routeMu.Lock()
	ch := s.routeWake
	s.routeWake = make(chan struct{})
	s.routeMu.Unlock()
	close(ch)
}

// admitShards gates a request's shard set against the cluster route. It
// returns a non-nil Moved when some shard is owned elsewhere (reply with a
// redirect), parks while an owned shard is frozen, and errors only on
// shutdown or a stuck freeze.
func (s *Server) admitShards(shards []int) (*Moved, error) {
	if s.route.Load() == nil && s.frozenMask.Load() == 0 {
		return nil, nil // standalone fast path
	}
	deadline := time.Now().Add(frozenAdmitTimeout)
	for {
		rt := s.route.Load()
		if rt != nil {
			for _, sh := range shards {
				if !rt.owns(sh) {
					s.movedOps.Add(1)
					return &Moved{Shard: sh, Epoch: rt.Epoch, Addr: rt.Owner[sh]}, nil
				}
			}
		}
		mask := s.frozenMask.Load()
		blocked := false
		for _, sh := range shards {
			if sh >= 0 && sh < 64 && mask&(uint64(1)<<uint(sh)) != 0 {
				blocked = true
				break
			}
		}
		if !blocked {
			return nil, nil
		}
		s.frozenWaits.Add(1)
		s.routeMu.Lock()
		wake := s.routeWake
		s.routeMu.Unlock()
		// Re-check after capturing the wake channel: an unfreeze between the
		// mask load and the capture closed the previous channel, which this
		// capture may have missed.
		if s.frozenMask.Load() != mask || s.route.Load() != rt {
			continue
		}
		select {
		case <-wake:
		case <-s.quit:
			return nil, ErrClosed
		case <-time.After(time.Until(deadline)):
			return nil, errShardFrozen
		}
	}
}

// appendMovedLine renders the text-protocol redirect.
func appendMovedLine(dst []byte, mv *Moved) []byte {
	dst = append(dst, "MOVED "...)
	dst = strconv.AppendInt(dst, int64(mv.Shard), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, mv.Epoch, 10)
	dst = append(dst, ' ')
	dst = append(dst, mv.Addr...)
	return append(dst, '\n')
}

// MovedError is the typed client-side form of a MOVED redirect: the shard,
// the redirecting node's map epoch, and the owner to retry against.
type MovedError struct {
	Shard int
	Epoch uint64
	Addr  string
}

func (e *MovedError) Error() string {
	return "server: MOVED shard " + strconv.Itoa(e.Shard) +
		" to " + e.Addr + " (epoch " + strconv.FormatUint(e.Epoch, 10) + ")"
}

// AsMoved unwraps err as a MovedError (nil when it is not one).
func AsMoved(err error) *MovedError {
	var mv *MovedError
	if errors.As(err, &mv) {
		return mv
	}
	return nil
}
