// Package fenceadvisor is a static analysis pass over a simulation's trace
// events that flags persist-barrier waste — the overhead class SpecPMT's
// speculative logging exists to remove.
//
// Fences are the expensive half of a flush/fence pair: a fence stalls the
// core until the write-pending queue drains, so the cheapest fence is one
// you never issue. The advisor classifies every EvFence on every track:
//
//   - A fence is REDUNDANT when no flush was issued on its track since the
//     track's previous fence. Nothing new sat in the persistence domain, so
//     the barrier ordered nothing; it is pure stall. A correct engine hot
//     path should have zero of these.
//
//   - A fence is COALESCABLE when it is an extra fence inside one commit's
//     critical path (second and later fences within an EvCommit span).
//     Undo-style engines pay these by construction — persist the log, fence,
//     persist the commit marker, fence — and they are exactly what
//     speculative logging folds into one barrier (SpecPMT §3: the single
//     commit fence), or what the server's pipelined group commit hoists out
//     of the path entirely via txn.DeferredCommitTx.
//
// The advisor consumes trace.Event values (internal/trace) from any source:
// a harness run, a pool opened with a Tracer, or the server's engine
// threads. It never perturbs a run — it is a pure function of the recorded
// stream.
package fenceadvisor

import (
	"fmt"
	"sort"
	"strings"

	"specpmt/internal/trace"
)

// TrackReport is the fence accounting for one trace track (one simulated
// core or engine thread).
type TrackReport struct {
	Track int
	Name  string

	Commits int
	Fences  int
	Flushes int

	// RedundantFences counts fences with zero flushes on this track since
	// the track's previous fence (the first fence of a track is never
	// counted — there is no prior barrier to make it redundant against).
	RedundantFences int
	// CoalescableFences counts fences in excess of one inside a single
	// commit critical path (EvCommit span). They are candidates for
	// deferral into a single commit fence.
	CoalescableFences int

	// FenceStallNs totals the virtual time this track spent stalled in
	// fences; RedundantStallNs is the share attributable to redundant ones.
	FenceStallNs     int64
	RedundantStallNs int64
}

// FencesPerCommit is the track's barrier rate; 0 when the track committed
// nothing.
func (t *TrackReport) FencesPerCommit() float64 {
	if t.Commits == 0 {
		return 0
	}
	return float64(t.Fences) / float64(t.Commits)
}

// Report is the whole-run analysis: per-track accounting plus totals.
type Report struct {
	Tracks []TrackReport

	Commits           int
	Fences            int
	Flushes           int
	RedundantFences   int
	CoalescableFences int
	FenceStallNs      int64
	RedundantStallNs  int64
}

// FencesPerCommit is the run-wide barrier rate; 0 with no commits.
func (r *Report) FencesPerCommit() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Fences) / float64(r.Commits)
}

// Clean reports whether the run shows no fence waste at all.
func (r *Report) Clean() bool {
	return r.RedundantFences == 0 && r.CoalescableFences == 0
}

// Analyze runs the pass over an event stream. names are the tracer's track
// names (trace.Tracer.Tracks()); missing names render as "track N". Events
// may interleave across tracks; per-track order follows stream order, which
// is emission order.
func Analyze(events []trace.Event, names []string) *Report {
	type state struct {
		rep              TrackReport
		flushesSinceFent int
		sawFence         bool
		fenceTS          []int64 // fence start times, in order
		commits          []trace.Event
	}
	byTrack := map[int]*state{}
	get := func(id int) *state {
		s := byTrack[id]
		if s == nil {
			s = &state{rep: TrackReport{Track: id}}
			if id >= 0 && id < len(names) {
				s.rep.Name = names[id]
			} else {
				s.rep.Name = fmt.Sprintf("track %d", id)
			}
			byTrack[id] = s
		}
		return s
	}

	for _, e := range events {
		switch e.Kind {
		case trace.EvFlush:
			s := get(e.Track)
			s.rep.Flushes++
			s.flushesSinceFent++
		case trace.EvFence:
			s := get(e.Track)
			s.rep.Fences++
			s.rep.FenceStallNs += e.Dur
			s.fenceTS = append(s.fenceTS, e.TS)
			if s.sawFence && s.flushesSinceFent == 0 {
				s.rep.RedundantFences++
				s.rep.RedundantStallNs += e.Dur
			}
			s.sawFence = true
			s.flushesSinceFent = 0
		case trace.EvCommit:
			s := get(e.Track)
			s.rep.Commits++
			s.commits = append(s.commits, e)
		}
	}

	var r Report
	ids := make([]int, 0, len(byTrack))
	for id := range byTrack {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := byTrack[id]
		// Fences are appended in time order per track, so each commit span's
		// fence count is one binary search per endpoint.
		for _, c := range s.commits {
			lo := sort.Search(len(s.fenceTS), func(i int) bool { return s.fenceTS[i] >= c.TS })
			hi := sort.Search(len(s.fenceTS), func(i int) bool { return s.fenceTS[i] > c.TS+c.Dur })
			if n := hi - lo; n > 1 {
				s.rep.CoalescableFences += n - 1
			}
		}
		r.Tracks = append(r.Tracks, s.rep)
		r.Commits += s.rep.Commits
		r.Fences += s.rep.Fences
		r.Flushes += s.rep.Flushes
		r.RedundantFences += s.rep.RedundantFences
		r.CoalescableFences += s.rep.CoalescableFences
		r.FenceStallNs += s.rep.FenceStallNs
		r.RedundantStallNs += s.rep.RedundantStallNs
	}
	return &r
}

// AnalyzeTracer is Analyze over a live tracer's buffered events and names.
func AnalyzeTracer(tr *trace.Tracer) *Report {
	return Analyze(tr.Events(), tr.Tracks())
}

// Advice renders human-readable findings, one line per flagged track, empty
// when the run is clean.
func (r *Report) Advice() []string {
	var out []string
	for i := range r.Tracks {
		t := &r.Tracks[i]
		if t.RedundantFences > 0 {
			out = append(out, fmt.Sprintf(
				"%s: %d redundant fence(s) ordering nothing (%d ns pure stall) — drop them",
				t.Name, t.RedundantFences, t.RedundantStallNs))
		}
		if t.CoalescableFences > 0 {
			out = append(out, fmt.Sprintf(
				"%s: %d extra fence(s) inside commit critical paths (%.2f fences/commit) — defer into one commit fence (CommitNoFence + coalesced Thread.Fence)",
				t.Name, t.CoalescableFences, t.FencesPerCommit()))
		}
	}
	return out
}

// String renders a compact summary of the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fenceadvisor: %d commits, %d fences (%.2f/commit), %d flushes, %d redundant, %d coalescable\n",
		r.Commits, r.Fences, r.FencesPerCommit(), r.Flushes, r.RedundantFences, r.CoalescableFences)
	for _, line := range r.Advice() {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}
