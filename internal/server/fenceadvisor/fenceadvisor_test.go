package fenceadvisor

import (
	"testing"

	"specpmt"
	"specpmt/internal/harness"
	"specpmt/internal/stamp"
	"specpmt/internal/trace"
)

// TestSyntheticClassification pins the classifier's definitions on a
// hand-built stream: redundant = fence with no flush since the previous
// fence; coalescable = fences beyond the first inside one commit span.
func TestSyntheticClassification(t *testing.T) {
	ev := []trace.Event{
		// tx 1: flush, fence, commit-marker flush, fence — undo-style, two
		// fences inside the commit span [100, 160): one coalescable.
		{Kind: trace.EvFlush, Track: 0, TS: 105},
		{Kind: trace.EvFence, Track: 0, TS: 110, Dur: 10},
		{Kind: trace.EvFlush, Track: 0, TS: 125},
		{Kind: trace.EvFence, Track: 0, TS: 130, Dur: 10},
		{Kind: trace.EvCommit, Track: 0, TS: 100, Dur: 60},
		// tx 2: a fence ordering nothing (no flush since the last fence):
		// redundant, and a second coalescable fence in span [200, 260).
		{Kind: trace.EvFlush, Track: 0, TS: 205},
		{Kind: trace.EvFence, Track: 0, TS: 210, Dur: 10},
		{Kind: trace.EvFence, Track: 0, TS: 220, Dur: 5},
		{Kind: trace.EvCommit, Track: 0, TS: 200, Dur: 60},
		// Another track stays clean: its own first fence is never redundant.
		{Kind: trace.EvFlush, Track: 1, TS: 300},
		{Kind: trace.EvFence, Track: 1, TS: 310, Dur: 10},
		{Kind: trace.EvCommit, Track: 1, TS: 295, Dur: 30},
	}
	r := Analyze(ev, []string{"app", "other"})
	if r.Commits != 3 || r.Fences != 5 || r.Flushes != 4 {
		t.Fatalf("totals: commits=%d fences=%d flushes=%d", r.Commits, r.Fences, r.Flushes)
	}
	if r.RedundantFences != 1 {
		t.Errorf("redundant = %d, want 1", r.RedundantFences)
	}
	if r.CoalescableFences != 2 {
		t.Errorf("coalescable = %d, want 2", r.CoalescableFences)
	}
	if r.RedundantStallNs != 5 {
		t.Errorf("redundant stall = %d, want 5", r.RedundantStallNs)
	}
	if len(r.Tracks) != 2 || r.Tracks[0].Name != "app" || r.Tracks[1].RedundantFences != 0 {
		t.Errorf("per-track split wrong: %+v", r.Tracks)
	}
	if got := len(r.Advice()); got != 2 {
		t.Errorf("advice lines = %d, want 2 (%v)", got, r.Advice())
	}
}

// TestSpecHotPathClean runs the SpecSPMT engine under the harness and
// asserts the advisor finds no fence waste: speculative logging's hot path
// is exactly one fence per commit, ordering real flushes.
func TestSpecHotPathClean(t *testing.T) {
	tr := trace.New()
	if _, err := harness.RunSoftwareOpt("SpecSPMT", stamp.Profiles()[0], 300, 7, harness.ScenarioConfig{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	r := AnalyzeTracer(tr)
	if r.Commits == 0 || r.Fences == 0 {
		t.Fatalf("trace too empty to judge: %s", r)
	}
	if !r.Clean() {
		t.Errorf("spec hot path flagged:\n%s", r)
	}
}

// TestUndoPathCoalescable runs the PMDK undo engine and asserts the advisor
// flags its multi-fence commit path — the overhead Figure 2 measures and
// speculative logging removes.
func TestUndoPathCoalescable(t *testing.T) {
	tr := trace.New()
	if _, err := harness.RunSoftwareOpt("PMDK", stamp.Profiles()[0], 300, 7, harness.ScenarioConfig{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	r := AnalyzeTracer(tr)
	if r.CoalescableFences == 0 {
		t.Errorf("undo commit path shows no coalescable fences:\n%s", r)
	}
	if r.FencesPerCommit() <= 1.0 {
		t.Errorf("undo fences/commit = %.2f, want > 1", r.FencesPerCommit())
	}
}

// TestDeferredCommitFencesBelowCommits drives the engine the way the
// pipelined server does — CommitNoFence per transaction, one coalescing
// Thread.Fence per window — and asserts the advisor sees fewer fences than
// commits, with nothing redundant.
func TestDeferredCommitFencesBelowCommits(t *testing.T) {
	tr := specpmt.NewTracer()
	p, err := specpmt.OpenThreaded(specpmt.Config{Engine: "SpecSPMT", Tracer: tr}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	th := p.Thread(0)

	// Warm up (allocation + first commit), then cut the stream so the
	// analysis covers only the pipelined window pattern.
	r, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	warm := th.Begin()
	warm.StoreUint64(r, 0)
	if err := warm.Commit(); err != nil {
		t.Fatal(err)
	}
	cut := len(tr.Events())

	const txs, window = 32, 4
	for i := 0; i < txs; i++ {
		tx := th.Begin()
		dtx, ok := tx.(specpmt.DeferredCommitTx)
		if !ok {
			t.Fatal("spec tx does not implement DeferredCommitTx")
		}
		dtx.StoreUint64(r, uint64(i))
		if err := dtx.CommitNoFence(); err != nil {
			t.Fatal(err)
		}
		if (i+1)%window == 0 {
			th.Fence()
		}
	}
	rep := Analyze(tr.Events()[cut:], tr.Tracks())
	if rep.Commits != txs {
		t.Fatalf("commits = %d, want %d", rep.Commits, txs)
	}
	if rep.Fences >= rep.Commits {
		t.Errorf("fences = %d not below commits = %d", rep.Fences, rep.Commits)
	}
	if rep.Fences != txs/window {
		t.Errorf("fences = %d, want %d (one per window)", rep.Fences, txs/window)
	}
	if rep.RedundantFences != 0 {
		t.Errorf("coalesced window fences flagged redundant:\n%s", rep)
	}
}
