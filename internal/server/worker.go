package server

import (
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
	"specpmt/internal/mvcc"
	"specpmt/internal/obs"
	"specpmt/pds/hashmap"
)

// shard is one worker's world: an engine thread of the pool, the hash-map
// shard it owns, and the job queue connections route into. Everything
// reachable from th and m is touched only by the worker goroutine — or,
// during a cross-shard transaction, by the executor worker while this one
// is parked at the barrier.
type shard struct {
	id   int
	th   *specpmt.Thread
	m    *hashmap.Map
	jobs chan *job
	// wbuf stages a batch's effective writes for the Replicator (worker
	// goroutine only; reused across batches); one avoids a slice allocation
	// when publishing a lone job.
	wbuf []RepWrite
	one  [1]*job

	// Pipelined group commit (PipelineDepth > 1). pending holds batches the
	// worker committed speculatively (CommitNoFence) whose replies are
	// parked; specUnfenced is true while any of their records still lacks
	// the retire fence. Both are worker-goroutine-only. retireq is the FIFO
	// hand-off to the shard's retirer goroutine, which publishes each
	// batch's writes to the Replicator and releases its replies strictly in
	// commit order; rwbuf is the retirer's write-staging buffer. parked
	// counts jobs currently committed-but-unpublished (the pipeline
	// occupancy gauge).
	pending      []*retired
	specUnfenced bool
	retireq      chan *retired
	rwbuf        []RepWrite
	parked       atomic.Int64

	// MVCC snapshot reads (mvcc.go). ver is the shard's version store, read
	// lock-free by the fast path and swapped whole on rebuilds; verStale
	// marks it behind the map (an unstamped internal write landed) — the
	// fast path falls back and the worker rebuilds at the next idle moment.
	// installMax is the highest LSN installed so far, touched only by the
	// shard's single publishing goroutine (retirer, or worker when not
	// pipelined — never both concurrently, by the retire-drain protocol).
	ver        atomic.Pointer[mvcc.Store]
	verStale   atomic.Bool
	installMax uint64

	// Pipeline-depth auto-tuning (pipelined mode): depth is the live window
	// size the worker retires at, tuned between 1 and cfg.PipelineDepth from
	// the retire fence's observed stall (atomic only so the metrics
	// collector may read it); fenceEwmaNs is the stall EWMA, worker/retire
	// path only.
	depth       atomic.Int64
	fenceEwmaNs int64

	// Published snapshot for STATS — written by the worker (or, pipelined,
	// by the retirer at each fence boundary), read by connection goroutines
	// under mu.
	mu      sync.Mutex
	stats   specpmt.Counters
	keys    uint64
	modelNs int64

	// Wall-clock instruments, scraped by the metrics collector: commit
	// latency, batch size, queue depth at batch start, and replies released
	// per retire fence. track is the shard's span-recorder track (0 when
	// spans are off).
	commitNs   obs.Histogram
	batchJobs  obs.Histogram
	queueDepth obs.Histogram
	parkedHist obs.Histogram
	track      int32
}

func newShard(pool *specpmt.ThreadedPool, id, maxBatch, pipelineDepth int) (*shard, error) {
	th := pool.Thread(id)
	m, err := hashmap.New(th, id)
	if err != nil {
		return nil, err
	}
	queue := 4 * maxBatch
	if queue < 64 {
		queue = 64
	}
	sh := &shard{id: id, th: th, m: m, jobs: make(chan *job, queue)}
	sh.depth.Store(int64(pipelineDepth))
	if pipelineDepth > 1 {
		// The retire queue bounds how far publication may trail the fence:
		// one window of speculative batches plus slack for the retirer to
		// drain while the worker fills the next window.
		sh.retireq = make(chan *retired, 2*pipelineDepth)
	}
	return sh, nil
}

// publish refreshes the shard's STATS snapshot (worker goroutine only).
func (sh *shard) publish() {
	sh.setPublished(sh.cut())
}

// cut snapshots the counters the worker owns (worker goroutine only) —
// pipelined retirement takes the cut at the fence and installs it from the
// retirer, because the retirer must never touch the engine thread itself.
func (sh *shard) cut() shardSnap {
	return shardSnap{stats: sh.th.Counters(), keys: sh.m.Len(), modelNs: sh.th.Now()}
}

// setPublished installs a snapshot (worker or retirer goroutine).
func (sh *shard) setPublished(sn shardSnap) {
	sh.mu.Lock()
	sh.stats, sh.keys, sh.modelNs = sn.stats, sn.keys, sn.modelNs
	sh.mu.Unlock()
}

// published reads the last snapshot (any goroutine).
func (sh *shard) published() (specpmt.Counters, uint64, int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats, sh.keys, sh.modelNs
}

// shardSnap is one consistent cut of a shard's observable counters.
type shardSnap struct {
	stats   specpmt.Counters
	keys    uint64
	modelNs int64
}

// retired is the retire stage's unit of work: one batch whose transaction
// is committed (and, by enqueue time, fenced) but whose replies are still
// parked. The retirer publishes the batch's effective writes — fixing its
// replication LSN — and only then releases the replies, so LSN order always
// equals reply-publication order. A non-nil sync marks a drain barrier: the
// worker blocks until the retirer has processed everything enqueued before
// it (cross-shard transactions and freezes need the shard's publish stream
// quiet before they commit on another shard's retire stream).
type retired struct {
	jobs    []*job
	hasSnap bool
	snap    shardSnap
	sync    chan struct{}
}

var retiredPool = sync.Pool{New: func() any { return new(retired) }}

func getRetired() *retired { return retiredPool.Get().(*retired) }

func putRetired(r *retired) {
	r.jobs = r.jobs[:0]
	r.hasSnap = false
	r.snap = shardSnap{}
	r.sync = nil
	retiredPool.Put(r)
}

// job is one request's rendezvous between a connection goroutine and the
// worker(s): ops in, results + modeled nanoseconds out, one token on done.
// Connections reuse their job across requests.
type job struct {
	ops     []Op
	results []Result
	modelNs int64
	startNs int64
	// Wall-clock stamps on the span recorder's clock — enqueue, execution
	// start, and the commit window — populated only when the server takes
	// per-request stamps (spans or slow-op log on).
	wallEnq, wallExec, wallCommit0, wallCommit1 int64
	multi                                       *multiJob // nil for single-shard jobs
	done                                        chan struct{}
	// extra, when non-nil, runs inside the job's transaction after its ops
	// — replication replay stamps applied-LSN cells with it.
	extra func(specpmt.Tx)
	// frozen, when non-nil, marks a Freeze barrier: the executor runs it
	// with every worker parked instead of applying ops.
	frozen func()
	// internal marks jobs originated by Apply/Freeze rather than a client
	// connection; their effects are not re-published to the Replicator.
	internal bool
	// pubLSN is an internal job's publication LSN (ApplyAt): its effective
	// writes install into the MVCC version stores at this stamp. 0 on an
	// internal job with writes marks the touched stores stale instead.
	pubLSN uint64
}

func newJob() *job { return &job{done: make(chan struct{}, 1)} }

func (j *job) reset() {
	j.ops = j.ops[:0]
	j.results = j.results[:0]
	j.modelNs = 0
	j.wallEnq, j.wallExec, j.wallCommit0, j.wallCommit1 = 0, 0, 0, 0
	j.multi = nil
	j.extra = nil
	j.frozen = nil
	j.internal = false
	j.pubLSN = 0
}

func (j *job) finish() { j.done <- struct{}{} }

// multiJob coordinates a cross-shard transaction: every involved worker
// receives the job; the lowest involved shard executes it once the others
// have parked, then releases them.
type multiJob struct {
	shards   []int // sorted; shards[0] executes
	parked   sync.WaitGroup
	released chan struct{}
	// published counts the non-executors' post-release counter republish:
	// the executor waits for it before finishing the job, so when the
	// caller's Apply/Freeze returns, no involved worker is still touching
	// its engine thread — the quiesce contract Crash relies on.
	published sync.WaitGroup
}

// runWorker is a shard worker's main loop: take one job, opportunistically
// coalesce more into a group commit, execute, reply. With pipelining on,
// runBatch parks speculative batches instead of replying, and the loop
// retires them — one coalescing fence, then FIFO hand-off to the retirer —
// whenever the window fills or the queue runs dry.
func (s *Server) runWorker(sh *shard) {
	var batch []*job
	for j := range sh.jobs {
		if j.multi != nil {
			s.retireAndDrain(sh)
			s.runMulti(sh, j)
			continue
		}
		batch = append(batch[:0], j)
		var pendingMulti *job
		batch, pendingMulti = s.collectBatch(sh, batch)
		s.runBatch(sh, batch)
		if pendingMulti != nil {
			s.retireAndDrain(sh)
			s.runMulti(sh, pendingMulti)
		}
		if len(sh.pending) > 0 && len(sh.jobs) == 0 {
			// About to block on an empty queue: retire now so parked
			// replies never wait on future traffic.
			s.retirePending(sh)
		}
		if s.mvccOn && sh.verStale.Load() && len(sh.jobs) == 0 {
			// An unstamped write (migration apply, bootstrap batch) left the
			// version store behind the map: rebuild it while the queue is
			// quiet so the snapshot fast path comes back.
			s.retireAndDrain(sh)
			s.rebuildStore(sh)
		}
	}
	s.retirePending(sh)
	if sh.retireq != nil {
		close(sh.retireq) // the retirer drains what remains, then exits
	}
}

// runRetirer is a shard's retire stage (pipelined mode only): it receives
// fenced batches in commit order and, for each one, publishes its effective
// writes to the Replicator (assigning the replication LSN), waits out any
// synchronous-replication ack, installs the fence-time counter snapshot,
// and finally releases the parked replies. Because it is the only publisher
// for its shard and consumes a FIFO, per-shard LSN order always matches
// commit order — see DESIGN.md.
func (s *Server) runRetirer(sh *shard) {
	for r := range sh.retireq {
		if r.sync != nil {
			close(r.sync)
			continue
		}
		wait := s.publishJobs(r.jobs, &sh.rwbuf)
		if wait != nil {
			var w0 int64
			if s.stamps {
				w0 = s.nowNs()
			}
			wait()
			if s.rec != nil {
				s.rec.Record(obs.Span{Kind: obs.SpanReplWait, Track: sh.track,
					Start: w0, End: s.nowNs()})
			}
		}
		if r.hasSnap {
			sh.setPublished(r.snap)
		}
		sh.parked.Add(-int64(len(r.jobs)))
		for _, j := range r.jobs {
			j.finish()
		}
		putRetired(r)
	}
}

// parkBatch stages a finished (and, for writes, speculatively committed)
// batch for retirement: modeled latencies are stamped now, replies are
// withheld until the retire fence. Worker goroutine only.
func (s *Server) parkBatch(sh *shard, batch []*job, endNs int64, speculative bool) {
	r := getRetired()
	r.jobs = append(r.jobs, batch...)
	for _, j := range batch {
		j.modelNs = endNs - j.startNs
	}
	if speculative {
		sh.specUnfenced = true
	}
	sh.pending = append(sh.pending, r)
	sh.parked.Add(int64(len(batch)))
}

// retirePending issues the coalescing retire fence — one fence for every
// batch in the window, the server-level analogue of SpecPMT's single commit
// fence — and hands the window to the retirer in commit order. Worker
// goroutine only; no-op when nothing is pending.
func (s *Server) retirePending(sh *shard) {
	if len(sh.pending) == 0 {
		return
	}
	if sh.specUnfenced {
		t0 := sh.th.Now()
		sh.th.Fence()
		s.tunePipeline(sh, sh.th.Now()-t0)
		sh.specUnfenced = false
	}
	var parked int
	for _, r := range sh.pending {
		parked += len(r.jobs)
	}
	sh.parkedHist.Observe(int64(parked))
	last := sh.pending[len(sh.pending)-1]
	last.snap = sh.cut()
	last.hasSnap = true
	for _, r := range sh.pending {
		sh.retireq <- r
	}
	sh.pending = sh.pending[:0]
}

// fenceStallBudgetNs is the per-batch fence stall the auto-tuner is willing
// to pay before it widens the pipeline window: one extra batch of depth for
// every multiple of the budget the retire fence stalls. On media where a
// fence drains in well under the budget (eADR-class), the window shrinks to
// 1 and replies stop parking for nothing; on slow media it opens back up
// toward the configured cap.
const fenceStallBudgetNs = 200

// tunePipeline folds one observed retire-fence stall into the shard's EWMA
// and steps the live window depth one unit toward the stall-derived target,
// clamped to [1, cfg.PipelineDepth]. Worker goroutine only (the atomic on
// sh.depth is for the metrics reader, not for concurrent tuners).
func (s *Server) tunePipeline(sh *shard, stallNs int64) {
	sh.fenceEwmaNs = (7*sh.fenceEwmaNs + stallNs) / 8
	want := 1 + int(sh.fenceEwmaNs/fenceStallBudgetNs)
	if want > s.cfg.PipelineDepth {
		want = s.cfg.PipelineDepth
	}
	cur := int(sh.depth.Load())
	if want > cur {
		sh.depth.Store(int64(cur + 1))
	} else if want < cur {
		sh.depth.Store(int64(cur - 1))
	}
}

// retireAndDrain retires the window and then blocks until the retirer has
// published everything — required before this worker participates in a
// cross-shard transaction or freeze, whose effects must be ordered after
// every publish this shard already owes. No-op when pipelining is off.
func (s *Server) retireAndDrain(sh *shard) {
	if sh.retireq == nil {
		return
	}
	s.retirePending(sh)
	r := &retired{sync: make(chan struct{})}
	sh.retireq <- r
	<-r.sync
}

// collectBatch greedily drains the queue up to MaxBatch jobs, then — if a
// batch window is configured — keeps listening for the window before
// giving up. A cross-shard job ends collection (it needs the barrier
// protocol) and is returned separately.
func (s *Server) collectBatch(sh *shard, batch []*job) ([]*job, *job) {
	max := s.cfg.MaxBatch
	if max <= 1 {
		return batch, nil
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for len(batch) < max {
		select {
		case j, ok := <-sh.jobs:
			if !ok {
				return batch, nil
			}
			if j.multi != nil {
				return batch, j
			}
			batch = append(batch, j)
		default:
			if s.cfg.BatchWindow <= 0 {
				return batch, nil
			}
			if timer == nil {
				timer = time.NewTimer(s.cfg.BatchWindow)
			}
			select {
			case j, ok := <-sh.jobs:
				if !ok {
					return batch, nil
				}
				if j.multi != nil {
					return batch, j
				}
				batch = append(batch, j)
			case <-timer.C:
				return batch, nil
			}
		}
	}
	return batch, nil
}

// runBatch executes a batch of single-shard jobs. Reads-only batches skip
// the transaction entirely; anything with a write becomes ONE transaction —
// the group commit — so its single fence amortizes over every job. With
// pipelining on, the transaction commits speculatively (CommitNoFence):
// execution continues into the next batch while the fence is outstanding,
// and the replies stay parked until retirePending fences the whole window.
func (s *Server) runBatch(sh *shard, batch []*job) {
	var wall0 int64
	if s.stamps {
		wall0 = s.nowNs()
	}
	sh.queueDepth.Observe(int64(len(sh.jobs)))
	sh.batchJobs.Observe(int64(len(batch)))
	readOnly := true
	for _, j := range batch {
		if j.extra != nil {
			readOnly = false
		}
		for _, op := range j.ops {
			if op.Kind != OpGet {
				readOnly = false
			}
		}
	}
	if readOnly {
		for _, j := range batch {
			if s.stamps {
				j.wallExec = s.nowNs()
			}
			j.startNs = sh.th.Now()
			j.results = j.results[:0]
			for _, op := range j.ops {
				v, ok := sh.m.Get(op.Key)
				j.results = appendGet(j.results, v, ok)
			}
		}
		end := sh.th.Now()
		if s.stamps {
			wallEnd := s.nowNs()
			for _, j := range batch {
				j.wallCommit0, j.wallCommit1 = wallEnd, wallEnd
			}
			if s.rec != nil {
				s.rec.Record(obs.Span{Kind: obs.SpanBatch, Track: sh.track,
					Start: wall0, End: wallEnd, A: uint64(len(batch)), B: opsIn(batch)})
			}
		}
		if len(sh.pending) > 0 {
			// The reads may observe speculative state (a parked SET's value):
			// their replies must wait for the same fence, or a crash could
			// acknowledge a read of a value that was never durable.
			s.parkBatch(sh, batch, end, false)
			return
		}
		s.finishBatch(sh, batch, end)
		return
	}

	// Grow outside the transaction so the batch's inserts and migration
	// steps have room: the whole batch commits as ONE transaction, so the
	// table needs headroom for every insert in it, not just the next one.
	// An allocation failure surfaces as ErrFull below.
	var puts uint64
	for _, j := range batch {
		puts += putCount(j.ops)
	}
	if err := sh.m.EnsureHeadroom(puts); err != nil {
		s.log.Warn("shard grow failed", "shard", sh.id, "err", err)
	}
	tx := sh.th.Begin()
	ok := true
	for _, j := range batch {
		if s.stamps {
			j.wallExec = s.nowNs()
		}
		j.startNs = sh.th.Now()
		j.results = j.results[:0]
		if !applyOps(tx, sh.m, j) {
			ok = false
			break
		}
		if j.extra != nil {
			j.extra(tx)
		}
	}
	var commit0, commit1 int64
	speculative := false
	if ok {
		commit0 = s.nowNs()
		var err error
		if s.pipelined {
			if dtx, can := tx.(specpmt.DeferredCommitTx); can {
				err = dtx.CommitNoFence()
				speculative = err == nil
			} else {
				err = tx.Commit()
			}
		} else {
			err = tx.Commit()
		}
		if err != nil {
			s.log.Warn("shard commit failed", "shard", sh.id, "err", err)
			ok = false
		}
		commit1 = s.nowNs()
	} else {
		tx.Abort()
	}
	if !ok {
		sh.m.DiscardRetired()
		if s.pipelined {
			// Abort-and-replay: the speculative attempt is rolled back; the
			// parked window retires first so the replayed singles publish
			// after everything already committed ahead of them.
			s.specAborts.Add(1)
			s.retireAndDrain(sh)
		}
		// Degrade: run each job in its own transaction so one oversized or
		// unlucky request cannot fail its whole batch.
		for _, j := range batch {
			s.runSingle(sh, j)
		}
		sh.publish()
		return
	}
	sh.commitNs.Observe(commit1 - commit0)
	sh.m.ReleaseRetired()
	end := sh.th.Now()
	s.batches.Add(1)
	s.batchedOps.Add(uint64(len(batch)))
	if s.stamps {
		for _, j := range batch {
			j.wallCommit0, j.wallCommit1 = commit0, commit1
		}
		if s.rec != nil {
			s.rec.Record(
				obs.Span{Kind: obs.SpanBatch, Track: sh.track, Start: wall0,
					End: s.nowNs(), A: uint64(len(batch)), B: opsIn(batch)},
				obs.Span{Kind: obs.SpanCommit, Track: sh.track, Start: commit0, End: commit1},
			)
		}
	}
	if s.pipelined {
		s.parkBatch(sh, batch, end, speculative)
		if len(sh.pending) >= int(sh.depth.Load()) {
			s.retirePending(sh)
		}
		return
	}
	// The whole batch committed as one transaction; ship it as one
	// replication record, and in synchronous mode hold every client in the
	// batch until the record is acked — one network round trip amortized
	// the same way the commit fence was.
	wait := s.publishBatch(sh, batch)
	if wait != nil {
		wait()
		if s.rec != nil {
			s.rec.Record(obs.Span{Kind: obs.SpanReplWait, Track: sh.track,
				Start: commit1, End: s.nowNs()})
		}
	}
	s.finishBatch(sh, batch, end)
}

// opsIn counts the operations across a batch's jobs.
func opsIn(batch []*job) uint64 {
	var n uint64
	for _, j := range batch {
		n += uint64(len(j.ops))
	}
	return n
}

// publishBatch hands the batch's effective writes to the Replicator as one
// record, installs every job's writes into the MVCC version stores at their
// publication LSN, and returns the sync-mode wait (nil when async or
// unreplicated).
func (s *Server) publishBatch(sh *shard, batch []*job) func() {
	return s.publishJobs(batch, &sh.wbuf)
}

// publishJobs is the shared publish point behind the retirer and the
// worker's inline paths: external (client) writes ship to the Replicator as
// one record whose LSN stamps them — or take one from the standalone LSN
// clock when unreplicated — and then every job's effective writes
// (internal ones included, at their own pubLSN) install into the version
// stores before any reply is released.
func (s *Server) publishJobs(jobs []*job, buf *[]RepWrite) func() {
	*buf = (*buf)[:0]
	for _, j := range jobs {
		if !j.internal {
			*buf = s.appendWrites(*buf, j)
		}
	}
	var wait func()
	var extLSN uint64
	if len(*buf) > 0 {
		if rep := s.replicator(); rep != nil {
			extLSN, wait = rep.Publish(*buf)
			s.maxLSNClock(extLSN)
		} else {
			extLSN = s.lsnClock.Add(1)
		}
	}
	s.installBatch(jobs, extLSN)
	return wait
}

// appendWrites appends j's effective writes — the state changes its
// committed results imply — in op order.
func (s *Server) appendWrites(dst []RepWrite, j *job) []RepWrite {
	for i, op := range j.ops {
		if i >= len(j.results) {
			break
		}
		r := j.results[i]
		switch op.Kind {
		case OpSet:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Key: op.Key, Val: op.Arg1})
			}
		case OpDel:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Del: true, Key: op.Key})
			}
		case OpCAS:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Key: op.Key, Val: op.Arg2})
			}
		}
	}
	return dst
}

// finishBatch stamps modeled latencies, publishes counters, and releases
// the waiting connections.
func (s *Server) finishBatch(sh *shard, batch []*job, endNs int64) {
	sh.publish()
	for _, j := range batch {
		j.modelNs = endNs - j.startNs
		j.finish()
	}
}

// runSingle executes one job in its own transaction (the no-batching path
// and the batch-failure fallback). Callers in pipelined mode must have
// drained the retire queue first: runSingle publishes inline, which is only
// LSN-ordered when the retirer owes nothing.
func (s *Server) runSingle(sh *shard, j *job) {
	if err := sh.m.EnsureHeadroom(putCount(j.ops)); err != nil {
		s.log.Warn("shard grow failed", "shard", sh.id, "err", err)
	}
	if s.stamps {
		j.wallExec = s.nowNs()
	}
	j.startNs = sh.th.Now()
	j.results = j.results[:0]
	tx := sh.th.Begin()
	committed := false
	if !applyOps(tx, sh.m, j) {
		tx.Abort()
		sh.m.DiscardRetired()
		j.results = j.results[:0]
		for range j.ops {
			j.results = append(j.results, Result{Status: StatusErr})
		}
	} else {
		if j.extra != nil {
			j.extra(tx)
		}
		commit0 := s.nowNs()
		if err := tx.Commit(); err != nil {
			s.log.Warn("shard commit failed", "shard", sh.id, "err", err)
			sh.m.DiscardRetired()
			j.results = j.results[:0]
			for range j.ops {
				j.results = append(j.results, Result{Status: StatusErr})
			}
		} else {
			commit1 := s.nowNs()
			sh.commitNs.Observe(commit1 - commit0)
			if s.stamps {
				j.wallCommit0, j.wallCommit1 = commit0, commit1
			}
			sh.m.ReleaseRetired()
			committed = true
		}
	}
	if s.stamps && j.wallCommit1 == 0 {
		// Failed paths still need a coherent phase breakdown for the
		// slow-op log: close the commit window at "now".
		now := s.nowNs()
		j.wallCommit0, j.wallCommit1 = now, now
	}
	if committed {
		sh.one[0] = j
		if wait := s.publishBatch(sh, sh.one[:]); wait != nil {
			wait()
		}
	}
	j.modelNs = sh.th.Now() - j.startNs
	j.finish()
}

// runMulti coordinates a cross-shard transaction. Non-executors park at the
// barrier, which hands their engine thread and map shard to the executor;
// the executor applies every operation in ONE transaction on its own
// engine and releases them after commit. Every involved worker retired and
// drained its pipeline before reaching here (runWorker), so the inline
// publish below cannot overtake a parked batch's LSN on any shard.
func (s *Server) runMulti(sh *shard, j *job) {
	m := j.multi
	if sh.id != m.shards[0] {
		m.parked.Done()
		<-m.released
		sh.publish()
		m.published.Done()
		return
	}
	m.parked.Wait()

	if j.frozen != nil {
		// Freeze barrier: every other worker is parked; run the callback
		// over the quiesced store, then release.
		j.frozen()
		close(m.released)
		m.published.Wait()
		j.finish()
		return
	}

	if s.stamps {
		j.wallExec = s.nowNs()
	}
	// Grow every involved shard to fit its share of the transaction's
	// inserts — the cross-shard analogue of runBatch's headroom pass (a
	// large MULTI or replicated snapshot batch commits as one transaction).
	// Every involved worker is parked at the barrier, so driving their
	// pools here is safe.
	for _, id := range m.shards {
		var puts uint64
		for _, op := range j.ops {
			if (op.Kind == OpSet || op.Kind == OpCAS) && s.shardOf(op.Key) == id {
				puts++
			}
		}
		if err := s.shards[id].m.EnsureHeadroom(puts); err != nil {
			s.log.Warn("shard grow failed", "shard", id, "err", err)
		}
	}
	j.startNs = sh.th.Now()
	j.results = j.results[:0]
	tx := sh.th.Begin()
	ok := true
	for _, op := range j.ops {
		if !applyOp(tx, s.shards[s.shardOf(op.Key)].m, op, &j.results) {
			ok = false
			break
		}
	}
	var commit0, commit1 int64
	if ok {
		if j.extra != nil {
			j.extra(tx)
		}
		commit0 = s.nowNs()
		if err := tx.Commit(); err != nil {
			s.log.Warn("multi commit failed", "err", err)
			ok = false
		}
		commit1 = s.nowNs()
	} else {
		tx.Abort()
	}
	for _, id := range m.shards {
		if ok {
			s.shards[id].m.ReleaseRetired()
		} else {
			s.shards[id].m.DiscardRetired()
		}
	}
	if !ok {
		j.results = j.results[:0]
		for range j.ops {
			j.results = append(j.results, Result{Status: StatusErr})
		}
	}
	var wait func()
	if ok {
		sh.commitNs.Observe(commit1 - commit0)
		sh.one[0] = j
		wait = s.publishBatch(sh, sh.one[:])
	}
	if s.stamps {
		if commit1 == 0 {
			commit0 = s.nowNs()
			commit1 = commit0
		}
		j.wallCommit0, j.wallCommit1 = commit0, commit1
		if s.rec != nil {
			s.rec.Record(obs.Span{Kind: obs.SpanCommit, Track: sh.track,
				Start: commit0, End: commit1})
		}
	}
	j.modelNs = sh.th.Now() - j.startNs
	sh.publish()
	// Release the parked workers before any synchronous-replication wait:
	// the record's position in the log is already fixed.
	close(m.released)
	if wait != nil {
		wait()
	}
	m.published.Wait()
	j.finish()
}

// applyOps applies every operation of j inside tx, appending results.
// Returns false on ErrFull (caller aborts and falls back).
// putCount returns how many ops may insert a key: every SET, and every CAS
// (which puts on a value match — counted unconditionally as headroom).
func putCount(ops []Op) uint64 {
	var n uint64
	for _, op := range ops {
		if op.Kind == OpSet || op.Kind == OpCAS {
			n++
		}
	}
	return n
}

func applyOps(tx specpmt.Tx, m *hashmap.Map, j *job) bool {
	for _, op := range j.ops {
		if !applyOp(tx, m, op, &j.results) {
			return false
		}
	}
	return true
}

func applyOp(tx specpmt.Tx, m *hashmap.Map, op Op, results *[]Result) bool {
	switch op.Kind {
	case OpGet:
		v, ok := m.TxGet(tx, op.Key)
		*results = appendGet(*results, v, ok)
	case OpSet:
		if err := m.TxPut(tx, op.Key, op.Arg1); err != nil {
			return false
		}
		*results = append(*results, Result{Status: StatusOK})
	case OpDel:
		found, err := m.TxDelete(tx, op.Key)
		if err != nil {
			return false
		}
		if found {
			*results = append(*results, Result{Status: StatusOK})
		} else {
			*results = append(*results, Result{Status: StatusNotFound})
		}
	case OpCAS:
		cur, ok := m.TxGet(tx, op.Key)
		switch {
		case !ok:
			*results = append(*results, Result{Status: StatusNotFound})
		case cur != op.Arg1:
			*results = append(*results, Result{Status: StatusConflict, Val: cur})
		default:
			if err := m.TxPut(tx, op.Key, op.Arg2); err != nil {
				return false
			}
			*results = append(*results, Result{Status: StatusOK})
		}
	}
	return true
}

func appendGet(results []Result, v uint64, ok bool) []Result {
	if ok {
		return append(results, Result{Status: StatusValue, Val: v})
	}
	return append(results, Result{Status: StatusNotFound})
}
