package server

import (
	"sync"
	"time"

	"specpmt"
	"specpmt/internal/obs"
	"specpmt/pds/hashmap"
)

// shard is one worker's world: an engine thread of the pool, the hash-map
// shard it owns, and the job queue connections route into. Everything
// reachable from th and m is touched only by the worker goroutine — or,
// during a cross-shard transaction, by the executor worker while this one
// is parked at the barrier.
type shard struct {
	id   int
	th   *specpmt.Thread
	m    *hashmap.Map
	jobs chan *job
	// wbuf stages a batch's effective writes for the Replicator (worker
	// goroutine only; reused across batches); one avoids a slice allocation
	// when publishing a lone job.
	wbuf []RepWrite
	one  [1]*job

	// Published snapshot for STATS — written by the worker after each
	// batch, read by connection goroutines under mu.
	mu      sync.Mutex
	stats   specpmt.Counters
	keys    uint64
	modelNs int64

	// Wall-clock instruments, scraped by the metrics collector: commit
	// latency, batch size, and queue depth at batch start. track is the
	// shard's span-recorder track (0 when spans are off).
	commitNs   obs.Histogram
	batchJobs  obs.Histogram
	queueDepth obs.Histogram
	track      int32
}

func newShard(pool *specpmt.ThreadedPool, id, maxBatch int) (*shard, error) {
	th := pool.Thread(id)
	m, err := hashmap.New(th, id)
	if err != nil {
		return nil, err
	}
	queue := 4 * maxBatch
	if queue < 64 {
		queue = 64
	}
	return &shard{id: id, th: th, m: m, jobs: make(chan *job, queue)}, nil
}

// publish refreshes the shard's STATS snapshot (worker goroutine only).
func (sh *shard) publish() {
	st := sh.th.Counters()
	keys := sh.m.Len()
	now := sh.th.Now()
	sh.mu.Lock()
	sh.stats, sh.keys, sh.modelNs = st, keys, now
	sh.mu.Unlock()
}

// published reads the last snapshot (any goroutine).
func (sh *shard) published() (specpmt.Counters, uint64, int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stats, sh.keys, sh.modelNs
}

// job is one request's rendezvous between a connection goroutine and the
// worker(s): ops in, results + modeled nanoseconds out, one token on done.
// Connections reuse their job across requests.
type job struct {
	ops     []Op
	results []Result
	modelNs int64
	startNs int64
	// Wall-clock stamps on the span recorder's clock — enqueue, execution
	// start, and the commit window — populated only when the server takes
	// per-request stamps (spans or slow-op log on).
	wallEnq, wallExec, wallCommit0, wallCommit1 int64
	multi                                       *multiJob // nil for single-shard jobs
	done                                        chan struct{}
	// extra, when non-nil, runs inside the job's transaction after its ops
	// — replication replay stamps applied-LSN cells with it.
	extra func(specpmt.Tx)
	// frozen, when non-nil, marks a Freeze barrier: the executor runs it
	// with every worker parked instead of applying ops.
	frozen func()
	// internal marks jobs originated by Apply/Freeze rather than a client
	// connection; their effects are not re-published to the Replicator.
	internal bool
}

func newJob() *job { return &job{done: make(chan struct{}, 1)} }

func (j *job) reset() {
	j.ops = j.ops[:0]
	j.results = j.results[:0]
	j.modelNs = 0
	j.wallEnq, j.wallExec, j.wallCommit0, j.wallCommit1 = 0, 0, 0, 0
	j.multi = nil
	j.extra = nil
	j.frozen = nil
	j.internal = false
}

func (j *job) finish() { j.done <- struct{}{} }

// multiJob coordinates a cross-shard transaction: every involved worker
// receives the job; the lowest involved shard executes it once the others
// have parked, then releases them.
type multiJob struct {
	shards   []int // sorted; shards[0] executes
	parked   sync.WaitGroup
	released chan struct{}
}

// runWorker is a shard worker's main loop: take one job, opportunistically
// coalesce more into a group commit, execute, reply.
func (s *Server) runWorker(sh *shard) {
	var batch []*job
	for j := range sh.jobs {
		if j.multi != nil {
			s.runMulti(sh, j)
			continue
		}
		batch = append(batch[:0], j)
		var pendingMulti *job
		batch, pendingMulti = s.collectBatch(sh, batch)
		s.runBatch(sh, batch)
		if pendingMulti != nil {
			s.runMulti(sh, pendingMulti)
		}
	}
}

// collectBatch greedily drains the queue up to MaxBatch jobs, then — if a
// batch window is configured — keeps listening for the window before
// giving up. A cross-shard job ends collection (it needs the barrier
// protocol) and is returned separately.
func (s *Server) collectBatch(sh *shard, batch []*job) ([]*job, *job) {
	max := s.cfg.MaxBatch
	if max <= 1 {
		return batch, nil
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for len(batch) < max {
		select {
		case j, ok := <-sh.jobs:
			if !ok {
				return batch, nil
			}
			if j.multi != nil {
				return batch, j
			}
			batch = append(batch, j)
		default:
			if s.cfg.BatchWindow <= 0 {
				return batch, nil
			}
			if timer == nil {
				timer = time.NewTimer(s.cfg.BatchWindow)
			}
			select {
			case j, ok := <-sh.jobs:
				if !ok {
					return batch, nil
				}
				if j.multi != nil {
					return batch, j
				}
				batch = append(batch, j)
			case <-timer.C:
				return batch, nil
			}
		}
	}
	return batch, nil
}

// runBatch executes a batch of single-shard jobs. Reads-only batches skip
// the transaction entirely; anything with a write becomes ONE transaction —
// the group commit — so its single fence amortizes over every job.
func (s *Server) runBatch(sh *shard, batch []*job) {
	var wall0 int64
	if s.stamps {
		wall0 = s.nowNs()
	}
	sh.queueDepth.Observe(int64(len(sh.jobs)))
	sh.batchJobs.Observe(int64(len(batch)))
	readOnly := true
	for _, j := range batch {
		if j.extra != nil {
			readOnly = false
		}
		for _, op := range j.ops {
			if op.Kind != OpGet {
				readOnly = false
			}
		}
	}
	if readOnly {
		for _, j := range batch {
			if s.stamps {
				j.wallExec = s.nowNs()
			}
			j.startNs = sh.th.Now()
			j.results = j.results[:0]
			for _, op := range j.ops {
				v, ok := sh.m.Get(op.Key)
				j.results = appendGet(j.results, v, ok)
			}
		}
		end := sh.th.Now()
		if s.stamps {
			wallEnd := s.nowNs()
			for _, j := range batch {
				j.wallCommit0, j.wallCommit1 = wallEnd, wallEnd
			}
			if s.rec != nil {
				s.rec.Record(obs.Span{Kind: obs.SpanBatch, Track: sh.track,
					Start: wall0, End: wallEnd, A: uint64(len(batch)), B: opsIn(batch)})
			}
		}
		s.finishBatch(sh, batch, end)
		return
	}

	// Grow outside the transaction so the batch's migration steps have a
	// target table; an allocation failure surfaces as ErrFull below.
	if err := sh.m.PrepareGrow(); err != nil {
		s.log.Warn("shard grow failed", "shard", sh.id, "err", err)
	}
	tx := sh.th.Begin()
	ok := true
	for _, j := range batch {
		if s.stamps {
			j.wallExec = s.nowNs()
		}
		j.startNs = sh.th.Now()
		j.results = j.results[:0]
		if !applyOps(tx, sh.m, j) {
			ok = false
			break
		}
		if j.extra != nil {
			j.extra(tx)
		}
	}
	var commit0, commit1 int64
	if ok {
		commit0 = s.nowNs()
		if err := tx.Commit(); err != nil {
			s.log.Warn("shard commit failed", "shard", sh.id, "err", err)
			ok = false
		}
		commit1 = s.nowNs()
	} else {
		tx.Abort()
	}
	if !ok {
		sh.m.DiscardRetired()
		// Degrade: run each job in its own transaction so one oversized or
		// unlucky request cannot fail its whole batch.
		for _, j := range batch {
			s.runSingle(sh, j)
		}
		sh.publish()
		return
	}
	sh.commitNs.Observe(commit1 - commit0)
	sh.m.ReleaseRetired()
	end := sh.th.Now()
	s.batches.Add(1)
	s.batchedOps.Add(uint64(len(batch)))
	// The whole batch committed as one transaction; ship it as one
	// replication record, and in synchronous mode hold every client in the
	// batch until the record is acked — one network round trip amortized
	// the same way the commit fence was.
	wait := s.publishBatch(sh, batch)
	if wait != nil {
		wait()
		if s.rec != nil {
			s.rec.Record(obs.Span{Kind: obs.SpanReplWait, Track: sh.track,
				Start: commit1, End: s.nowNs()})
		}
	}
	if s.stamps {
		for _, j := range batch {
			j.wallCommit0, j.wallCommit1 = commit0, commit1
		}
		if s.rec != nil {
			s.rec.Record(
				obs.Span{Kind: obs.SpanBatch, Track: sh.track, Start: wall0,
					End: s.nowNs(), A: uint64(len(batch)), B: opsIn(batch)},
				obs.Span{Kind: obs.SpanCommit, Track: sh.track, Start: commit0, End: commit1},
			)
		}
	}
	s.finishBatch(sh, batch, end)
}

// opsIn counts the operations across a batch's jobs.
func opsIn(batch []*job) uint64 {
	var n uint64
	for _, j := range batch {
		n += uint64(len(j.ops))
	}
	return n
}

// publishBatch hands the batch's effective writes to the Replicator as one
// record, returning its sync-mode wait (nil when async or unreplicated).
func (s *Server) publishBatch(sh *shard, batch []*job) func() {
	r := s.replicator()
	if r == nil {
		return nil
	}
	sh.wbuf = sh.wbuf[:0]
	for _, j := range batch {
		if j.internal {
			continue
		}
		sh.wbuf = s.appendWrites(sh.wbuf, j)
	}
	if len(sh.wbuf) == 0 {
		return nil
	}
	return r.Publish(sh.wbuf)
}

// appendWrites appends j's effective writes — the state changes its
// committed results imply — in op order.
func (s *Server) appendWrites(dst []RepWrite, j *job) []RepWrite {
	for i, op := range j.ops {
		if i >= len(j.results) {
			break
		}
		r := j.results[i]
		switch op.Kind {
		case OpSet:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Key: op.Key, Val: op.Arg1})
			}
		case OpDel:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Del: true, Key: op.Key})
			}
		case OpCAS:
			if r.Status == StatusOK {
				dst = append(dst, RepWrite{Shard: s.shardOf(op.Key), Key: op.Key, Val: op.Arg2})
			}
		}
	}
	return dst
}

// finishBatch stamps modeled latencies, publishes counters, and releases
// the waiting connections.
func (s *Server) finishBatch(sh *shard, batch []*job, endNs int64) {
	sh.publish()
	for _, j := range batch {
		j.modelNs = endNs - j.startNs
		j.finish()
	}
}

// runSingle executes one job in its own transaction (the no-batching path
// and the batch-failure fallback).
func (s *Server) runSingle(sh *shard, j *job) {
	if err := sh.m.PrepareGrow(); err != nil {
		s.log.Warn("shard grow failed", "shard", sh.id, "err", err)
	}
	if s.stamps {
		j.wallExec = s.nowNs()
	}
	j.startNs = sh.th.Now()
	j.results = j.results[:0]
	tx := sh.th.Begin()
	committed := false
	if !applyOps(tx, sh.m, j) {
		tx.Abort()
		sh.m.DiscardRetired()
		j.results = j.results[:0]
		for range j.ops {
			j.results = append(j.results, Result{Status: StatusErr})
		}
	} else {
		if j.extra != nil {
			j.extra(tx)
		}
		commit0 := s.nowNs()
		if err := tx.Commit(); err != nil {
			s.log.Warn("shard commit failed", "shard", sh.id, "err", err)
			sh.m.DiscardRetired()
			j.results = j.results[:0]
			for range j.ops {
				j.results = append(j.results, Result{Status: StatusErr})
			}
		} else {
			commit1 := s.nowNs()
			sh.commitNs.Observe(commit1 - commit0)
			if s.stamps {
				j.wallCommit0, j.wallCommit1 = commit0, commit1
			}
			sh.m.ReleaseRetired()
			committed = true
		}
	}
	if s.stamps && j.wallCommit1 == 0 {
		// Failed paths still need a coherent phase breakdown for the
		// slow-op log: close the commit window at "now".
		now := s.nowNs()
		j.wallCommit0, j.wallCommit1 = now, now
	}
	if committed {
		sh.one[0] = j
		if wait := s.publishBatch(sh, sh.one[:]); wait != nil {
			wait()
		}
	}
	j.modelNs = sh.th.Now() - j.startNs
	j.finish()
}

// runMulti coordinates a cross-shard transaction. Non-executors park at the
// barrier, which hands their engine thread and map shard to the executor;
// the executor applies every operation in ONE transaction on its own
// engine and releases them after commit.
func (s *Server) runMulti(sh *shard, j *job) {
	m := j.multi
	if sh.id != m.shards[0] {
		m.parked.Done()
		<-m.released
		sh.publish()
		return
	}
	m.parked.Wait()

	if j.frozen != nil {
		// Freeze barrier: every other worker is parked; run the callback
		// over the quiesced store, then release.
		j.frozen()
		close(m.released)
		j.finish()
		return
	}

	if s.stamps {
		j.wallExec = s.nowNs()
	}
	j.startNs = sh.th.Now()
	j.results = j.results[:0]
	tx := sh.th.Begin()
	ok := true
	for _, op := range j.ops {
		if !applyOp(tx, s.shards[s.shardOf(op.Key)].m, op, &j.results) {
			ok = false
			break
		}
	}
	var commit0, commit1 int64
	if ok {
		if j.extra != nil {
			j.extra(tx)
		}
		commit0 = s.nowNs()
		if err := tx.Commit(); err != nil {
			s.log.Warn("multi commit failed", "err", err)
			ok = false
		}
		commit1 = s.nowNs()
	} else {
		tx.Abort()
	}
	for _, id := range m.shards {
		if ok {
			s.shards[id].m.ReleaseRetired()
		} else {
			s.shards[id].m.DiscardRetired()
		}
	}
	if !ok {
		j.results = j.results[:0]
		for range j.ops {
			j.results = append(j.results, Result{Status: StatusErr})
		}
	}
	var wait func()
	if ok {
		sh.commitNs.Observe(commit1 - commit0)
		sh.one[0] = j
		wait = s.publishBatch(sh, sh.one[:])
	}
	if s.stamps {
		if commit1 == 0 {
			commit0 = s.nowNs()
			commit1 = commit0
		}
		j.wallCommit0, j.wallCommit1 = commit0, commit1
		if s.rec != nil {
			s.rec.Record(obs.Span{Kind: obs.SpanCommit, Track: sh.track,
				Start: commit0, End: commit1})
		}
	}
	j.modelNs = sh.th.Now() - j.startNs
	sh.publish()
	// Release the parked workers before any synchronous-replication wait:
	// the record's position in the log is already fixed.
	close(m.released)
	if wait != nil {
		wait()
	}
	j.finish()
}

// applyOps applies every operation of j inside tx, appending results.
// Returns false on ErrFull (caller aborts and falls back).
func applyOps(tx specpmt.Tx, m *hashmap.Map, j *job) bool {
	for _, op := range j.ops {
		if !applyOp(tx, m, op, &j.results) {
			return false
		}
	}
	return true
}

func applyOp(tx specpmt.Tx, m *hashmap.Map, op Op, results *[]Result) bool {
	switch op.Kind {
	case OpGet:
		v, ok := m.TxGet(tx, op.Key)
		*results = appendGet(*results, v, ok)
	case OpSet:
		if err := m.TxPut(tx, op.Key, op.Arg1); err != nil {
			return false
		}
		*results = append(*results, Result{Status: StatusOK})
	case OpDel:
		found, err := m.TxDelete(tx, op.Key)
		if err != nil {
			return false
		}
		if found {
			*results = append(*results, Result{Status: StatusOK})
		} else {
			*results = append(*results, Result{Status: StatusNotFound})
		}
	case OpCAS:
		cur, ok := m.TxGet(tx, op.Key)
		switch {
		case !ok:
			*results = append(*results, Result{Status: StatusNotFound})
		case cur != op.Arg1:
			*results = append(*results, Result{Status: StatusConflict, Val: cur})
		default:
			if err := m.TxPut(tx, op.Key, op.Arg2); err != nil {
				return false
			}
			*results = append(*results, Result{Status: StatusOK})
		}
	}
	return true
}

func appendGet(results []Result, v uint64, ok bool) []Result {
	if ok {
		return append(results, Result{Status: StatusValue, Val: v})
	}
	return append(results, Result{Status: StatusNotFound})
}
