package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
)

// Config parameterises New. The zero value serves SpecSPMT over optane-adr
// on 4 shards with group commit enabled.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (default
	// "127.0.0.1:7077").
	Addr string
	// Engine picks the crash-consistency scheme backing the store — any
	// per-thread software engine ("SpecSPMT", "PMDK", "SpecSPMT-Hash",
	// "SPHT", ...) or "SpecHPMT". Default "SpecSPMT".
	Engine string
	// Profile names the simulated media profile (see sim.ProfileNames).
	Profile string
	// Shards is the worker count: each worker owns one engine thread and
	// one hash-map shard. 1..16 (root-slot bound). Default 4.
	Shards int
	// PoolSize is the persistent pool size in bytes (default 256 MiB).
	PoolSize int
	// MaxBatch caps the requests one group commit coalesces. <= 1 disables
	// batching (every request commits its own transaction). Default 32.
	MaxBatch int
	// BatchWindow is how long a worker waits for more requests once its
	// queue runs dry before committing a non-full batch. 0 commits whatever
	// is already queued without waiting. Default 200µs.
	BatchWindow time.Duration
	// MaxConns bounds concurrent connections; over-limit dials are refused
	// with an ERR line. Default 256.
	MaxConns int
	// MaxInFlight bounds requests admitted to worker queues across all
	// connections — the backpressure valve. Default 1024.
	MaxInFlight int
	// IdleTimeout closes connections idle for this long (default 60s).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s).
	WriteTimeout time.Duration
	// Logf, when non-nil, receives server lifecycle log lines.
	Logf func(format string, args ...any)
}

func (cfg *Config) fillDefaults() error {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:7077"
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	if cfg.Profile == "" {
		cfg.Profile = "optane-adr"
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 || cfg.Shards > specpmt.RootSlots {
		return fmt.Errorf("server: shards must be 1..%d", specpmt.RootSlots)
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 256 << 20
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	return nil
}

// ResolveEngine maps the short engine aliases the CLIs accept (spec,
// spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog) to registered
// engine names; unknown aliases pass through for the registry to validate.
func ResolveEngine(name string) string {
	switch name {
	case "spec":
		return "SpecSPMT"
	case "spec-dp":
		return "SpecSPMT-DP"
	case "hashlog":
		return "SpecSPMT-Hash"
	case "undo", "pmdk":
		return "PMDK"
	case "kamino":
		return "Kamino-Tx"
	case "spht":
		return "SPHT"
	case "spec-hw":
		return "SpecHPMT"
	case "nolog":
		return "no-log"
	}
	return name
}

// Server is a network-facing transactional KV store over one ThreadedPool.
type Server struct {
	cfg    Config
	pool   *specpmt.ThreadedPool
	shards []*shard

	quit      chan struct{}
	closeOnce sync.Once
	workersUp sync.Once
	connWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	inflight  chan struct{}
	multiMu   sync.Mutex

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	start       time.Time
	activeConns atomic.Int64
	totalConns  atomic.Uint64
	refused     atomic.Uint64
	opCounts    [4]atomic.Uint64 // by OpKind
	multis      atomic.Uint64
	batches     atomic.Uint64
	batchedOps  atomic.Uint64
	protoErrs   atomic.Uint64
}

// ErrClosed is returned by serve loops after Close.
var ErrClosed = errors.New("server: closed")

// New builds a server: it opens the threaded pool and one hash-map shard
// per worker, but does not listen or start workers — call ListenAndServe
// or Serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	pool, err := specpmt.OpenThreaded(specpmt.Config{
		Size:    cfg.PoolSize,
		Engine:  cfg.Engine,
		Profile: cfg.Profile,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		quit:     make(chan struct{}),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    map[net.Conn]struct{}{},
		start:    time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(pool, i, cfg.MaxBatch)
		if err != nil {
			pool.Close()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Engine returns the resolved engine name the store runs on.
func (s *Server) Engine() string { return s.cfg.Engine }

// Profile returns the resolved media profile name.
func (s *Server) Profile() string { return s.cfg.Profile }

// Addr returns the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Close. A clean Close
// returns nil.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve starts the shard workers and accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.startWorkers()
	s.logf("specpmt-server: serving engine=%s profile=%s shards=%d on %s",
		s.cfg.Engine, s.cfg.Profile, s.cfg.Shards, ln.Addr())
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		if s.activeConns.Load() >= int64(s.cfg.MaxConns) {
			s.refused.Add(1)
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			fmt.Fprintf(c, "ERR max connections (%d) reached\n", s.cfg.MaxConns)
			c.Close()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(c)
		}()
	}
}

// ServeConn serves one pre-established connection (e.g. one end of a
// net.Pipe) in the calling goroutine, returning when it closes. Workers are
// started on demand.
func (s *Server) ServeConn(c net.Conn) {
	s.startWorkers()
	s.connWG.Add(1)
	defer s.connWG.Done()
	s.handleConn(c)
}

func (s *Server) startWorkers() {
	s.workersUp.Do(func() {
		for _, sh := range s.shards {
			sh.publish()
			s.workerWG.Add(1)
			go func(sh *shard) {
				defer s.workerWG.Done()
				s.runWorker(sh)
			}(sh)
		}
	})
}

// Close drains the server: stop accepting, let every in-flight request
// finish and its connection wind down, stop the workers, then close the
// pool. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.quit)
		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()
		// Wake connections parked in idle reads; handlers notice quit and
		// exit after finishing their current request.
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		// No submitters remain: drain the workers.
		s.startWorkers() // ensure worker goroutines exist before closing queues
		for _, sh := range s.shards {
			close(sh.jobs)
		}
		s.workerWG.Wait()
		err = s.pool.Close()
		s.logf("specpmt-server: closed (%d connections served)", s.totalConns.Load())
	})
	return err
}

// Counters returns the pool's counters. Call it on a quiesced server (all
// in-flight requests done) — e.g. after Close, or from tests that know the
// workers are idle.
func (s *Server) Counters() specpmt.Counters { return s.pool.Counters() }

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	s.trackConn(c, true)
	defer s.trackConn(c, false)
	s.activeConns.Add(1)
	defer s.activeConns.Add(-1)
	s.totalConns.Add(1)

	bw := bufio.NewWriter(c)
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fmt.Fprintf(bw, "SPECPMT 1 engine=%s profile=%s shards=%d\n",
		s.cfg.Engine, s.cfg.Profile, s.cfg.Shards)
	if bw.Flush() != nil {
		return
	}

	br := bufio.NewReaderSize(c, MaxLineLen+2)
	var (
		multiOps []Op
		inMulti  bool
		replyBuf []byte
		j        = newJob()
	)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := readLine(br)
		if err != nil {
			if err == errLineTooLong {
				s.protoErrs.Add(1)
				s.writeLine(c, bw, "ERR line too long")
			}
			return
		}
		cmd, perr := ParseCommand(line)
		if perr != nil {
			s.protoErrs.Add(1)
			if !s.writeLine(c, bw, "ERR "+perr.Error()) {
				return
			}
			continue
		}
		switch cmd.Verb {
		case VerbPing:
			if !s.writeLine(c, bw, "PONG") {
				return
			}
		case VerbQuit:
			s.writeLine(c, bw, "BYE")
			return
		case VerbStats:
			if !s.writeStats(c, bw) {
				return
			}
		case VerbMulti:
			if inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR MULTI inside MULTI") {
					return
				}
				continue
			}
			inMulti, multiOps = true, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbDiscard:
			inMulti, multiOps = false, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbExec:
			if !inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR EXEC without MULTI") {
					return
				}
				continue
			}
			inMulti = false
			ok := s.execMulti(c, bw, j, multiOps, &replyBuf)
			multiOps = multiOps[:0]
			if !ok {
				return
			}
		case VerbOp:
			if inMulti {
				if len(multiOps) >= MaxMultiOps {
					s.protoErrs.Add(1)
					inMulti, multiOps = false, multiOps[:0]
					if !s.writeLine(c, bw, "ERR MULTI too large (discarded)") {
						return
					}
					continue
				}
				multiOps = append(multiOps, cmd.Op)
				if !s.writeLine(c, bw, "QUEUED") {
					return
				}
				continue
			}
			if !s.execSingle(c, bw, j, cmd.Op, &replyBuf) {
				return
			}
		}
	}
}

// acquire takes one in-flight slot, or reports shutdown.
func (s *Server) acquire() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) release() { <-s.inflight }

func (s *Server) execSingle(c net.Conn, bw *bufio.Writer, j *job, op Op, replyBuf *[]byte) bool {
	if !s.acquire() {
		return false
	}
	s.opCounts[op.Kind].Add(1)
	j.reset()
	j.ops = append(j.ops, op)
	s.dispatch(j, []int{s.shardOf(op.Key)})
	<-j.done
	s.release()
	*replyBuf = AppendResult((*replyBuf)[:0], j.results[0], j.modelNs)
	return s.writeBytes(c, bw, *replyBuf)
}

func (s *Server) execMulti(c net.Conn, bw *bufio.Writer, j *job, ops []Op, replyBuf *[]byte) bool {
	if len(ops) == 0 {
		return s.writeLine(c, bw, "RESULTS 0") && s.writeLine(c, bw, "END t=0")
	}
	if !s.acquire() {
		return false
	}
	s.multis.Add(1)
	for _, op := range ops {
		s.opCounts[op.Kind].Add(1)
	}
	j.reset()
	j.ops = append(j.ops, ops...)
	s.dispatch(j, s.shardSet(ops))
	<-j.done
	s.release()
	buf := (*replyBuf)[:0]
	buf = append(buf, "RESULTS "...)
	buf = strconv.AppendInt(buf, int64(len(j.results)), 10)
	buf = append(buf, '\n')
	for _, r := range j.results {
		buf = AppendResult(buf, r, -1)
	}
	buf = append(buf, "END t="...)
	buf = strconv.AppendInt(buf, j.modelNs, 10)
	buf = append(buf, '\n')
	*replyBuf = buf
	return s.writeBytes(c, bw, buf)
}

// dispatch routes a job to its shard worker — or, when the operations span
// several shards, enqueues it to every involved worker under the multi
// mutex, which totally orders cross-shard transactions and rules out
// circular waits between their barriers.
func (s *Server) dispatch(j *job, shardIDs []int) {
	if len(shardIDs) == 1 {
		j.multi = nil
		s.shards[shardIDs[0]].jobs <- j
		return
	}
	j.multi = &multiJob{shards: shardIDs, released: make(chan struct{})}
	j.multi.parked.Add(len(shardIDs) - 1)
	s.multiMu.Lock()
	for _, id := range shardIDs {
		s.shards[id].jobs <- j
	}
	s.multiMu.Unlock()
}

func (s *Server) shardOf(key uint64) int {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 29
	return int(key % uint64(len(s.shards)))
}

// shardSet returns the sorted distinct shards ops touch.
func (s *Server) shardSet(ops []Op) []int {
	var mask uint32
	for _, op := range ops {
		mask |= 1 << uint(s.shardOf(op.Key))
	}
	var out []int
	for i := 0; i < len(s.shards); i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func (s *Server) writeLine(c net.Conn, bw *bufio.Writer, line string) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.WriteString(line)
	bw.WriteByte('\n')
	return bw.Flush() == nil
}

func (s *Server) writeBytes(c net.Conn, bw *bufio.Writer, b []byte) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.Write(b)
	return bw.Flush() == nil
}

// writeStats renders the STATS block from the workers' published snapshots
// — no worker-owned state is touched from this goroutine.
func (s *Server) writeStats(c net.Conn, bw *bufio.Writer) bool {
	agg, keys, modelNs := s.snapshot()
	stats := []struct {
		name string
		val  uint64
	}{
		{"engine_ok", 1},
		{"shards", uint64(s.cfg.Shards)},
		{"uptime_ms", uint64(time.Since(s.start).Milliseconds())},
		{"conns_active", uint64(s.activeConns.Load())},
		{"conns_total", s.totalConns.Load()},
		{"conns_refused", s.refused.Load()},
		{"keys", keys},
		{"ops_get", s.opCounts[OpGet].Load()},
		{"ops_set", s.opCounts[OpSet].Load()},
		{"ops_del", s.opCounts[OpDel].Load()},
		{"ops_cas", s.opCounts[OpCAS].Load()},
		{"multis", s.multis.Load()},
		{"batches", s.batches.Load()},
		{"batched_ops", s.batchedOps.Load()},
		{"protocol_errors", s.protoErrs.Load()},
		{"model_ns", uint64(modelNs)},
		{"fences", agg.Fences},
		{"flushes", agg.Flushes},
		{"fence_ns", agg.FenceNs},
		{"tx_begun", agg.TxBegun},
		{"tx_committed", agg.TxCommitted},
		{"tx_aborted", agg.TxAborted},
		{"pm_write_bytes", agg.PMWriteBytes},
		{"pm_log_bytes", agg.PMLogBytes},
		{"pm_data_bytes", agg.PMDataBytes},
		{"log_records", agg.LogRecords},
	}
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fmt.Fprintf(bw, "STAT engine %s\nSTAT profile %s\n", s.cfg.Engine, s.cfg.Profile)
	for _, st := range stats {
		fmt.Fprintf(bw, "STAT %s %d\n", st.name, st.val)
	}
	bw.WriteString("END\n")
	return bw.Flush() == nil
}

// snapshot aggregates the per-shard published counter snapshots: summed
// counters, total keys, and the makespan modeled time.
func (s *Server) snapshot() (specpmt.Counters, uint64, int64) {
	var agg specpmt.Counters
	var keys uint64
	var modelNs int64
	for _, sh := range s.shards {
		st, k, now := sh.published()
		agg.Merge(&st)
		keys += k
		if now > modelNs {
			modelNs = now
		}
	}
	return agg, keys, modelNs
}

var errLineTooLong = errors.New("server: line too long")

// readLine reads one newline-terminated line, rejecting lines longer than
// MaxLineLen. The returned slice is valid until the next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, errLineTooLong
	}
	if err != nil {
		return nil, err
	}
	// Trim the newline and an optional carriage return.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > MaxLineLen {
		return nil, errLineTooLong
	}
	return line, nil
}
