package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
	"specpmt/pds/hashmap"
)

// Config parameterises New. The zero value serves SpecSPMT over optane-adr
// on 4 shards with group commit enabled.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (default
	// "127.0.0.1:7077").
	Addr string
	// Engine picks the crash-consistency scheme backing the store — any
	// per-thread software engine ("SpecSPMT", "PMDK", "SpecSPMT-Hash",
	// "SPHT", ...) or "SpecHPMT". Default "SpecSPMT".
	Engine string
	// Profile names the simulated media profile (see sim.ProfileNames).
	Profile string
	// Shards is the worker count: each worker owns one engine thread and
	// one hash-map shard. 1..16 (root-slot bound). Default 4.
	Shards int
	// PoolSize is the persistent pool size in bytes (default 256 MiB).
	PoolSize int
	// MaxBatch caps the requests one group commit coalesces. <= 1 disables
	// batching (every request commits its own transaction). Default 32.
	MaxBatch int
	// BatchWindow is how long a worker waits for more requests once its
	// queue runs dry before committing a non-full batch. 0 commits whatever
	// is already queued without waiting. Default 200µs.
	BatchWindow time.Duration
	// MaxConns bounds concurrent connections; over-limit dials are refused
	// with an ERR line. Default 256.
	MaxConns int
	// MaxInFlight bounds requests admitted to worker queues across all
	// connections — the backpressure valve. Default 1024.
	MaxInFlight int
	// IdleTimeout closes connections idle for this long (default 60s).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s).
	WriteTimeout time.Duration
	// ReadOnly starts the server rejecting writes (SET/DEL/CAS and any
	// MULTI containing one) — the replica mode. SetReadOnly flips it at
	// runtime (promotion).
	ReadOnly bool
	// Tracer, when non-nil, receives the pool's simulation events plus
	// replication ship/ack/apply events (see internal/trace).
	Tracer *specpmt.Tracer
	// Logf, when non-nil, receives server lifecycle log lines.
	Logf func(format string, args ...any)
}

// RepWrite is one effective write of a committed transaction, in commit
// order — the unit a Replicator ships to replicas. A SET (or winning CAS)
// has Del false and carries Val; a DEL has Del true.
type RepWrite struct {
	Shard    int
	Del      bool
	Key, Val uint64
}

// Replicator receives every committed transaction's effective write set
// from the shard workers, in a valid serialization order (per-shard commit
// order preserved; cross-shard transactions totally ordered by the MULTI
// barrier). Publish returns a wait function for synchronous replication
// modes — when non-nil the worker calls it before releasing the batch to
// its clients, extending the commit past the network hop — or nil for
// fire-and-forget shipping. Publish is called from multiple worker
// goroutines and must be safe for concurrent use.
type Replicator interface {
	Publish(writes []RepWrite) (wait func())
}

func (cfg *Config) fillDefaults() error {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:7077"
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	if cfg.Profile == "" {
		cfg.Profile = "optane-adr"
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 || cfg.Shards > specpmt.RootSlots {
		return fmt.Errorf("server: shards must be 1..%d", specpmt.RootSlots)
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 256 << 20
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	return nil
}

// ResolveEngine maps the short engine aliases the CLIs accept (spec,
// spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog) to registered
// engine names; unknown aliases pass through for the registry to validate.
func ResolveEngine(name string) string {
	switch name {
	case "spec":
		return "SpecSPMT"
	case "spec-dp":
		return "SpecSPMT-DP"
	case "hashlog":
		return "SpecSPMT-Hash"
	case "undo", "pmdk":
		return "PMDK"
	case "kamino":
		return "Kamino-Tx"
	case "spht":
		return "SPHT"
	case "spec-hw":
		return "SpecHPMT"
	case "nolog":
		return "no-log"
	}
	return name
}

// Server is a network-facing transactional KV store over one ThreadedPool.
type Server struct {
	cfg    Config
	pool   *specpmt.ThreadedPool
	shards []*shard

	quit      chan struct{}
	closeOnce sync.Once
	workersUp sync.Once
	connWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	inflight  chan struct{}
	multiMu   sync.Mutex

	// opMu/closing/opWG fence internal operations (Apply, Freeze) against
	// Close: once closing is set no new internal op may start, and Close
	// waits for the in-flight ones before shutting the worker queues.
	opMu    sync.Mutex
	closing bool
	opWG    sync.WaitGroup

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// hookMu guards the runtime-settable hooks below.
	hookMu      sync.Mutex
	repl        Replicator
	promoteHook func() error
	statsHook   StatsHook

	readOnly atomic.Bool

	start       time.Time
	activeConns atomic.Int64
	totalConns  atomic.Uint64
	refused     atomic.Uint64
	opCounts    [4]atomic.Uint64 // by OpKind
	multis      atomic.Uint64
	batches     atomic.Uint64
	batchedOps  atomic.Uint64
	protoErrs   atomic.Uint64
	roRejected  atomic.Uint64
}

// StatsHook extends the STATS block with subsystem-specific counters (the
// replication layer reports head LSN and lag through one). It is called
// from connection goroutines and must be safe for concurrent use.
type StatsHook func(emit func(name string, val uint64))

// ErrClosed is returned by serve loops after Close.
var ErrClosed = errors.New("server: closed")

// New builds a server: it opens the threaded pool and one hash-map shard
// per worker, but does not listen or start workers — call ListenAndServe
// or Serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	pool, err := specpmt.OpenThreaded(specpmt.Config{
		Size:    cfg.PoolSize,
		Engine:  cfg.Engine,
		Profile: cfg.Profile,
		Tracer:  cfg.Tracer,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		quit:     make(chan struct{}),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    map[net.Conn]struct{}{},
		start:    time.Now(),
	}
	s.readOnly.Store(cfg.ReadOnly)
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(pool, i, cfg.MaxBatch)
		if err != nil {
			pool.Close()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Pool exposes the threaded pool backing the store — replication layers use
// it to allocate durable bookkeeping (applied-LSN cells) in the same
// persistence domain as the data.
func (s *Server) Pool() *specpmt.ThreadedPool { return s.pool }

// Shards returns the worker-shard count.
func (s *Server) Shards() int { return len(s.shards) }

// SetReplicator installs the commit-stream subscriber. Set it before the
// server begins committing (before Serve/ServeConn/Apply); replacing it
// mid-traffic loses the records committed in between.
func (s *Server) SetReplicator(r Replicator) {
	s.hookMu.Lock()
	s.repl = r
	s.hookMu.Unlock()
}

func (s *Server) replicator() Replicator {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.repl
}

// OnPromote installs the handler behind the PROMOTE admin command (a
// replica's promotion-to-primary). Without one, PROMOTE answers ERR.
func (s *Server) OnPromote(fn func() error) {
	s.hookMu.Lock()
	s.promoteHook = fn
	s.hookMu.Unlock()
}

// SetStatsHook installs an extra STATS emitter (see StatsHook).
func (s *Server) SetStatsHook(fn StatsHook) {
	s.hookMu.Lock()
	s.statsHook = fn
	s.hookMu.Unlock()
}

// SetReadOnly flips write rejection at runtime; promotion calls it with
// false. In-flight writes already admitted to a worker queue still commit.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the server currently rejects writes.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Engine returns the resolved engine name the store runs on.
func (s *Server) Engine() string { return s.cfg.Engine }

// Profile returns the resolved media profile name.
func (s *Server) Profile() string { return s.cfg.Profile }

// Addr returns the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Close. A clean Close
// returns nil.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve starts the shard workers and accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.startWorkers()
	s.logf("specpmt-server: serving engine=%s profile=%s shards=%d on %s",
		s.cfg.Engine, s.cfg.Profile, s.cfg.Shards, ln.Addr())
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		if s.activeConns.Load() >= int64(s.cfg.MaxConns) {
			s.refused.Add(1)
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			fmt.Fprintf(c, "ERR max connections (%d) reached\n", s.cfg.MaxConns)
			c.Close()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(c)
		}()
	}
}

// ServeConn serves one pre-established connection (e.g. one end of a
// net.Pipe) in the calling goroutine, returning when it closes. Workers are
// started on demand.
func (s *Server) ServeConn(c net.Conn) {
	s.startWorkers()
	s.connWG.Add(1)
	defer s.connWG.Done()
	s.handleConn(c)
}

func (s *Server) startWorkers() {
	s.workersUp.Do(func() {
		for _, sh := range s.shards {
			sh.publish()
			s.workerWG.Add(1)
			go func(sh *shard) {
				defer s.workerWG.Done()
				s.runWorker(sh)
			}(sh)
		}
	})
}

// Close drains the server: stop accepting, let every in-flight request
// finish and its connection wind down, stop the workers, then close the
// pool. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.opMu.Lock()
		s.closing = true
		s.opMu.Unlock()
		close(s.quit)
		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()
		// Wake connections parked in idle reads; handlers notice quit and
		// exit after finishing their current request.
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.opWG.Wait()
		// No submitters remain: drain the workers.
		s.startWorkers() // ensure worker goroutines exist before closing queues
		for _, sh := range s.shards {
			close(sh.jobs)
		}
		s.workerWG.Wait()
		err = s.pool.Close()
		s.logf("specpmt-server: closed (%d connections served)", s.totalConns.Load())
	})
	return err
}

// Counters returns the pool's counters. Call it on a quiesced server (all
// in-flight requests done) — e.g. after Close, or from tests that know the
// workers are idle.
func (s *Server) Counters() specpmt.Counters { return s.pool.Counters() }

// beginOp registers an internal operation (Apply, Freeze) so Close waits
// for it; it fails once Close has begun.
func (s *Server) beginOp() bool {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.closing {
		return false
	}
	s.opWG.Add(1)
	return true
}

// ErrApply is returned by Apply when the transaction could not commit.
var ErrApply = errors.New("server: apply failed")

// Apply executes ops as ONE transaction through the owning shard workers —
// the replication replay entry point. Cross-shard operation sets use the
// same barrier protocol as MULTI, so a replayed transaction is exactly as
// atomic as it was on the primary. extra, when non-nil, runs inside the
// same transaction after the ops (replicas stamp their applied-LSN cells
// with it, making replay exactly-once across crashes). Results are appended
// to results and returned. Safe for concurrent use; applies admitted to the
// same shard's queue may group-commit together.
func (s *Server) Apply(ops []Op, extra func(specpmt.Tx), results []Result) ([]Result, error) {
	if len(ops) == 0 {
		return results, nil
	}
	if !s.beginOp() {
		return results, ErrClosed
	}
	defer s.opWG.Done()
	s.startWorkers()
	if !s.acquire() {
		return results, ErrClosed
	}
	j := newJob()
	j.internal = true
	j.extra = extra
	j.ops = append(j.ops, ops...)
	s.dispatch(j, s.shardSet(ops))
	<-j.done
	s.release()
	results = append(results, j.results...)
	for _, r := range j.results {
		if r.Status == StatusErr {
			return results, ErrApply
		}
	}
	return results, nil
}

// Freeze parks every shard worker at a barrier and calls fn with the store
// quiesced: no transaction is in flight, and fn may read any shard (e.g.
// via RangeAll) as one consistent point-in-time cut. Commits stall for the
// duration — snapshot transfers should copy out under Freeze and stream
// after it returns. fn runs on a worker goroutine.
func (s *Server) Freeze(fn func()) error {
	if !s.beginOp() {
		return ErrClosed
	}
	defer s.opWG.Done()
	s.startWorkers()
	j := newJob()
	j.internal = true
	j.frozen = fn
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	s.dispatch(j, all)
	<-j.done
	return nil
}

// RangeAll iterates every shard's committed pairs. Only coherent from
// inside a Freeze callback or on an otherwise quiesced server.
func (s *Server) RangeAll(fn func(shard int, key, val uint64) bool) {
	for i, sh := range s.shards {
		stop := false
		sh.m.Range(func(k, v uint64) bool {
			if !fn(i, k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Crash simulates a power failure of the whole server and recovers from it:
// the pool crashes (randomly evicting dirty lines per the media profile),
// engine recovery replays the committed history, and every shard reattaches
// to its persistent map. The caller must guarantee the server is quiesced —
// no in-flight requests, applies, or freezes. Workers stay parked on their
// queues throughout and observe the reattached state via the next job.
func (s *Server) Crash(seed uint64) error {
	if err := s.pool.Crash(seed); err != nil {
		return err
	}
	if err := s.pool.Recover(); err != nil {
		return err
	}
	for i, sh := range s.shards {
		th := s.pool.Thread(i)
		m, err := hashmap.Open(th, i)
		if err != nil {
			return fmt.Errorf("server: reopening shard %d: %w", i, err)
		}
		sh.th, sh.m = th, m
	}
	return nil
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	s.trackConn(c, true)
	defer s.trackConn(c, false)
	s.activeConns.Add(1)
	defer s.activeConns.Add(-1)
	s.totalConns.Add(1)

	bw := bufio.NewWriter(c)
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fmt.Fprintf(bw, "SPECPMT 1 engine=%s profile=%s shards=%d\n",
		s.cfg.Engine, s.cfg.Profile, s.cfg.Shards)
	if bw.Flush() != nil {
		return
	}

	br := bufio.NewReaderSize(c, MaxLineLen+2)
	var (
		multiOps []Op
		inMulti  bool
		replyBuf []byte
		j        = newJob()
	)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := readLine(br)
		if err != nil {
			if err == errLineTooLong {
				s.protoErrs.Add(1)
				s.writeLine(c, bw, "ERR line too long")
			}
			return
		}
		cmd, perr := ParseCommand(line)
		if perr != nil {
			s.protoErrs.Add(1)
			if !s.writeLine(c, bw, "ERR "+perr.Error()) {
				return
			}
			continue
		}
		switch cmd.Verb {
		case VerbPing:
			if !s.writeLine(c, bw, "PONG") {
				return
			}
		case VerbQuit:
			s.writeLine(c, bw, "BYE")
			return
		case VerbStats:
			if !s.writeStats(c, bw) {
				return
			}
		case VerbMulti:
			if inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR MULTI inside MULTI") {
					return
				}
				continue
			}
			inMulti, multiOps = true, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbDiscard:
			inMulti, multiOps = false, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbPromote:
			s.hookMu.Lock()
			hook := s.promoteHook
			s.hookMu.Unlock()
			if hook == nil {
				if !s.writeLine(c, bw, "ERR not a replica") {
					return
				}
				continue
			}
			if err := hook(); err != nil {
				if !s.writeLine(c, bw, "ERR promote: "+err.Error()) {
					return
				}
				continue
			}
			s.logf("specpmt-server: promoted to primary")
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbExec:
			if !inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR EXEC without MULTI") {
					return
				}
				continue
			}
			inMulti = false
			if s.readOnly.Load() && hasWrite(multiOps) {
				s.roRejected.Add(1)
				multiOps = multiOps[:0]
				if !s.writeLine(c, bw, "ERR read-only replica") {
					return
				}
				continue
			}
			ok := s.execMulti(c, bw, j, multiOps, &replyBuf)
			multiOps = multiOps[:0]
			if !ok {
				return
			}
		case VerbOp:
			if s.readOnly.Load() && cmd.Op.Kind != OpGet {
				s.roRejected.Add(1)
				if inMulti {
					inMulti, multiOps = false, multiOps[:0]
					if !s.writeLine(c, bw, "ERR read-only replica (discarded)") {
						return
					}
					continue
				}
				if !s.writeLine(c, bw, "ERR read-only replica") {
					return
				}
				continue
			}
			if inMulti {
				if len(multiOps) >= MaxMultiOps {
					s.protoErrs.Add(1)
					inMulti, multiOps = false, multiOps[:0]
					if !s.writeLine(c, bw, "ERR MULTI too large (discarded)") {
						return
					}
					continue
				}
				multiOps = append(multiOps, cmd.Op)
				if !s.writeLine(c, bw, "QUEUED") {
					return
				}
				continue
			}
			if !s.execSingle(c, bw, j, cmd.Op, &replyBuf) {
				return
			}
		}
	}
}

// acquire takes one in-flight slot, or reports shutdown.
func (s *Server) acquire() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) release() { <-s.inflight }

func (s *Server) execSingle(c net.Conn, bw *bufio.Writer, j *job, op Op, replyBuf *[]byte) bool {
	if !s.acquire() {
		return false
	}
	s.opCounts[op.Kind].Add(1)
	j.reset()
	j.ops = append(j.ops, op)
	s.dispatch(j, []int{s.shardOf(op.Key)})
	<-j.done
	s.release()
	*replyBuf = AppendResult((*replyBuf)[:0], j.results[0], j.modelNs)
	return s.writeBytes(c, bw, *replyBuf)
}

func (s *Server) execMulti(c net.Conn, bw *bufio.Writer, j *job, ops []Op, replyBuf *[]byte) bool {
	if len(ops) == 0 {
		return s.writeLine(c, bw, "RESULTS 0") && s.writeLine(c, bw, "END t=0")
	}
	if !s.acquire() {
		return false
	}
	s.multis.Add(1)
	for _, op := range ops {
		s.opCounts[op.Kind].Add(1)
	}
	j.reset()
	j.ops = append(j.ops, ops...)
	s.dispatch(j, s.shardSet(ops))
	<-j.done
	s.release()
	buf := (*replyBuf)[:0]
	buf = append(buf, "RESULTS "...)
	buf = strconv.AppendInt(buf, int64(len(j.results)), 10)
	buf = append(buf, '\n')
	for _, r := range j.results {
		buf = AppendResult(buf, r, -1)
	}
	buf = append(buf, "END t="...)
	buf = strconv.AppendInt(buf, j.modelNs, 10)
	buf = append(buf, '\n')
	*replyBuf = buf
	return s.writeBytes(c, bw, buf)
}

// dispatch routes a job to its shard worker — or, when the operations span
// several shards, enqueues it to every involved worker under the multi
// mutex, which totally orders cross-shard transactions and rules out
// circular waits between their barriers.
func (s *Server) dispatch(j *job, shardIDs []int) {
	if len(shardIDs) == 1 && j.frozen == nil {
		j.multi = nil
		s.shards[shardIDs[0]].jobs <- j
		return
	}
	j.multi = &multiJob{shards: shardIDs, released: make(chan struct{})}
	j.multi.parked.Add(len(shardIDs) - 1)
	s.multiMu.Lock()
	for _, id := range shardIDs {
		s.shards[id].jobs <- j
	}
	s.multiMu.Unlock()
}

func (s *Server) shardOf(key uint64) int {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 29
	return int(key % uint64(len(s.shards)))
}

// shardSet returns the sorted distinct shards ops touch.
func (s *Server) shardSet(ops []Op) []int {
	var mask uint32
	for _, op := range ops {
		mask |= 1 << uint(s.shardOf(op.Key))
	}
	var out []int
	for i := 0; i < len(s.shards); i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func (s *Server) writeLine(c net.Conn, bw *bufio.Writer, line string) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.WriteString(line)
	bw.WriteByte('\n')
	return bw.Flush() == nil
}

func (s *Server) writeBytes(c net.Conn, bw *bufio.Writer, b []byte) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.Write(b)
	return bw.Flush() == nil
}

// writeStats renders the STATS block from the workers' published snapshots
// — no worker-owned state is touched from this goroutine.
func (s *Server) writeStats(c net.Conn, bw *bufio.Writer) bool {
	agg, keys, modelNs := s.snapshot()
	stats := []struct {
		name string
		val  uint64
	}{
		{"engine_ok", 1},
		{"shards", uint64(s.cfg.Shards)},
		{"uptime_ms", uint64(time.Since(s.start).Milliseconds())},
		{"conns_active", uint64(s.activeConns.Load())},
		{"conns_total", s.totalConns.Load()},
		{"conns_refused", s.refused.Load()},
		{"keys", keys},
		{"ops_get", s.opCounts[OpGet].Load()},
		{"ops_set", s.opCounts[OpSet].Load()},
		{"ops_del", s.opCounts[OpDel].Load()},
		{"ops_cas", s.opCounts[OpCAS].Load()},
		{"multis", s.multis.Load()},
		{"batches", s.batches.Load()},
		{"batched_ops", s.batchedOps.Load()},
		{"protocol_errors", s.protoErrs.Load()},
		{"readonly", boolStat(s.readOnly.Load())},
		{"writes_rejected", s.roRejected.Load()},
		{"model_ns", uint64(modelNs)},
		{"fences", agg.Fences},
		{"flushes", agg.Flushes},
		{"fence_ns", agg.FenceNs},
		{"tx_begun", agg.TxBegun},
		{"tx_committed", agg.TxCommitted},
		{"tx_aborted", agg.TxAborted},
		{"pm_write_bytes", agg.PMWriteBytes},
		{"pm_log_bytes", agg.PMLogBytes},
		{"pm_data_bytes", agg.PMDataBytes},
		{"log_records", agg.LogRecords},
	}
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fmt.Fprintf(bw, "STAT engine %s\nSTAT profile %s\n", s.cfg.Engine, s.cfg.Profile)
	for _, st := range stats {
		fmt.Fprintf(bw, "STAT %s %d\n", st.name, st.val)
	}
	// Per-shard visibility: committed transactions and keys per worker, the
	// denominators behind per-shard replication LSNs and skew diagnosis.
	for i, sh := range s.shards {
		st, k, _ := sh.published()
		fmt.Fprintf(bw, "STAT shard%d_tx_committed %d\n", i, st.TxCommitted)
		fmt.Fprintf(bw, "STAT shard%d_keys %d\n", i, k)
	}
	s.hookMu.Lock()
	hook := s.statsHook
	s.hookMu.Unlock()
	if hook != nil {
		hook(func(name string, val uint64) {
			fmt.Fprintf(bw, "STAT %s %d\n", name, val)
		})
	}
	bw.WriteString("END\n")
	return bw.Flush() == nil
}

func boolStat(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// hasWrite reports whether ops contains anything but GETs.
func hasWrite(ops []Op) bool {
	for _, op := range ops {
		if op.Kind != OpGet {
			return true
		}
	}
	return false
}

// snapshot aggregates the per-shard published counter snapshots: summed
// counters, total keys, and the makespan modeled time.
func (s *Server) snapshot() (specpmt.Counters, uint64, int64) {
	var agg specpmt.Counters
	var keys uint64
	var modelNs int64
	for _, sh := range s.shards {
		st, k, now := sh.published()
		agg.Merge(&st)
		keys += k
		if now > modelNs {
			modelNs = now
		}
	}
	return agg, keys, modelNs
}

var errLineTooLong = errors.New("server: line too long")

// readLine reads one newline-terminated line, rejecting lines longer than
// MaxLineLen. The returned slice is valid until the next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, errLineTooLong
	}
	if err != nil {
		return nil, err
	}
	// Trim the newline and an optional carriage return.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > MaxLineLen {
		return nil, errLineTooLong
	}
	return line, nil
}
