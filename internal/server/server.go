package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/bits"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specpmt"
	"specpmt/internal/mvcc"
	"specpmt/internal/obs"
	"specpmt/internal/pmalloc"
	"specpmt/pds/hashmap"
)

// Config parameterises New. The zero value serves SpecSPMT over optane-adr
// on 4 shards with group commit enabled.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (default
	// "127.0.0.1:7077").
	Addr string
	// Engine picks the crash-consistency scheme backing the store — any
	// per-thread software engine ("SpecSPMT", "PMDK", "SpecSPMT-Hash",
	// "SPHT", ...) or "SpecHPMT". Default "SpecSPMT".
	Engine string
	// Profile names the simulated media profile (see sim.ProfileNames).
	Profile string
	// Shards is the worker count: each worker owns one engine thread and
	// one hash-map shard. 1..16 (root-slot bound). Default 4.
	Shards int
	// PoolSize is the persistent pool size in bytes (default 256 MiB).
	PoolSize int
	// MaxBatch caps the requests one group commit coalesces. <= 1 disables
	// batching (every request commits its own transaction). Default 32.
	MaxBatch int
	// BatchWindow is how long a worker waits for more requests once its
	// queue runs dry before committing a non-full batch. 0 commits whatever
	// is already queued without waiting. Default 200µs.
	BatchWindow time.Duration
	// PipelineDepth enables pipelined speculative group commit when > 1: a
	// shard worker commits up to PipelineDepth batches with their commit
	// fence deferred (txn.DeferredCommitTx), parks their replies, then
	// issues ONE coalescing retire fence for the whole window and hands it
	// to a per-shard retirer goroutine that publishes replication writes
	// and releases replies in commit order. Execution of batch N+1 overlaps
	// the fence/replication drain of batch N, and fences-per-op drops by up
	// to another factor of PipelineDepth on top of group commit. 0 or 1
	// keeps the synchronous commit path. Default 1.
	PipelineDepth int
	// Proto selects which wire protocols the listener accepts: "auto"
	// (default) serves text and, after the 0xB1 version byte, binary;
	// "text" rejects the binary version byte; "binary" requires it as the
	// first byte after the banner.
	Proto string
	// MaxConns bounds concurrent connections; over-limit dials are refused
	// with an ERR line. Default 256.
	MaxConns int
	// MaxInFlight bounds requests admitted to worker queues across all
	// connections — the backpressure valve. Default 1024.
	MaxInFlight int
	// CompactEvery, when > 0, runs the background heap compactor: every
	// interval an idle server whose data-heap footprint exceeds
	// CompactFragPct% of its live bytes is compacted under a Freeze
	// (pmalloc.Compact with the shard maps' Relocate mover). 0 disables.
	CompactEvery time.Duration
	// CompactFragPct is the fragmentation threshold, in percent: compaction
	// triggers when footprint*100 > live*CompactFragPct. Default 150.
	CompactFragPct int
	// IdleTimeout closes connections idle for this long (default 60s).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s).
	WriteTimeout time.Duration
	// ReadOnly starts the server rejecting writes (SET/DEL/CAS and any
	// MULTI containing one) — the replica mode. SetReadOnly flips it at
	// runtime (promotion).
	ReadOnly bool
	// NoMVCC disables the MVCC snapshot-read subsystem: GETs and read-only
	// MULTIs queue behind the shard workers like writes do. The zero value
	// keeps MVCC on — committed writes install versioned values stamped
	// with their publication LSN, and reads serve lock-free from a
	// consistent snapshot without entering the worker queue.
	NoMVCC bool
	// Tracer, when non-nil, receives the pool's simulation events plus
	// replication ship/ack/apply events (see internal/trace).
	Tracer *specpmt.Tracer
	// Obs, when non-nil, is the observability plane: its registry backs
	// STATS and /metrics, its span recorder receives live request spans,
	// and its SlowOp threshold gates the slow-op log. Without one the
	// server keeps a private registry (STATS still renders from it) but
	// records no wall-clock spans.
	Obs *obs.Plane
	// Log, when non-nil, receives structured lifecycle and slow-op logs.
	// Falls back to Obs.Log, then to a Logf adapter, then to discard.
	Log *slog.Logger
	// Logf, when non-nil, receives log lines printf-style — the pre-slog
	// hook, kept for tests and embedders; ignored when Log or Obs.Log is
	// set.
	Logf func(format string, args ...any)
}

// RepWrite is one effective write of a committed transaction, in commit
// order — the unit a Replicator ships to replicas. A SET (or winning CAS)
// has Del false and carries Val; a DEL has Del true.
type RepWrite struct {
	Shard    int
	Del      bool
	Key, Val uint64
}

// Replicator receives every committed transaction's effective write set
// from the shard workers, in a valid serialization order (per-shard commit
// order preserved; cross-shard transactions totally ordered by the MULTI
// barrier). Publish returns the record's LSN — the publication stamp the
// MVCC version stores install the writes at — and a wait function for
// synchronous replication modes: when non-nil the worker calls it before
// releasing the batch to its clients, extending the commit past the
// network hop (nil for fire-and-forget shipping). Publish is called from
// multiple worker goroutines and must be safe for concurrent use.
type Replicator interface {
	Publish(writes []RepWrite) (lsn uint64, wait func())
}

func (cfg *Config) fillDefaults() error {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:7077"
	}
	if cfg.Engine == "" {
		cfg.Engine = "SpecSPMT"
	}
	if cfg.Profile == "" {
		cfg.Profile = "optane-adr"
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 || cfg.Shards > specpmt.RootSlots {
		return fmt.Errorf("server: shards must be 1..%d", specpmt.RootSlots)
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 256 << 20
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 1
	}
	if cfg.PipelineDepth < 1 || cfg.PipelineDepth > 64 {
		return fmt.Errorf("server: pipeline depth must be 1..64")
	}
	if cfg.Proto == "" {
		cfg.Proto = "auto"
	}
	switch cfg.Proto {
	case "auto", "text", "binary":
	default:
		return fmt.Errorf("server: proto must be auto, text, or binary")
	}
	if cfg.CompactFragPct == 0 {
		cfg.CompactFragPct = 150
	}
	if cfg.CompactFragPct < 100 {
		return fmt.Errorf("server: compact fragmentation threshold must be >= 100%%")
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	return nil
}

// ResolveEngine maps the short engine aliases the CLIs accept (spec,
// spec-dp, hashlog, undo, kamino, spht, spec-hw, nolog) to registered
// engine names; unknown aliases pass through for the registry to validate.
func ResolveEngine(name string) string {
	switch name {
	case "spec":
		return "SpecSPMT"
	case "spec-dp":
		return "SpecSPMT-DP"
	case "hashlog":
		return "SpecSPMT-Hash"
	case "undo", "pmdk":
		return "PMDK"
	case "kamino":
		return "Kamino-Tx"
	case "spht":
		return "SPHT"
	case "spec-hw":
		return "SpecHPMT"
	case "nolog":
		return "no-log"
	}
	return name
}

// Server is a network-facing transactional KV store over one ThreadedPool.
type Server struct {
	cfg    Config
	pool   *specpmt.ThreadedPool
	shards []*shard

	quit      chan struct{}
	closeOnce sync.Once
	workersUp sync.Once
	connWG    sync.WaitGroup
	workerWG  sync.WaitGroup
	inflight  chan struct{}
	multiMu   sync.Mutex

	// opMu/closing/opWG fence internal operations (Apply, Freeze) against
	// Close: once closing is set no new internal op may start, and Close
	// waits for the in-flight ones before shutting the worker queues.
	opMu    sync.Mutex
	closing bool
	opWG    sync.WaitGroup

	lnMu sync.Mutex
	ln   net.Listener

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// hookMu guards the runtime-settable hooks below.
	hookMu      sync.Mutex
	repl        Replicator
	promoteHook func() error
	statsHooks  []StatsHook
	extCmd      ExtCommand
	relocHooks  []RelocateHook

	// Cluster routing (route.go): the installed ownership view, the frozen
	// shard mask for migration cutovers, and the wake channel parked
	// admissions wait on (replaced and closed on every change).
	route      atomic.Pointer[Route]
	routeMu    sync.Mutex
	routeWake  chan struct{}
	frozenMask atomic.Uint64

	readOnly atomic.Bool

	// pipelined is PipelineDepth > 1 (immutable after New): the workers
	// park speculative batches and per-shard retirers publish them.
	pipelined bool

	// MVCC snapshot reads (mvcc.go). mvccOn is !cfg.NoMVCC (immutable
	// after New); pub is the published-LSN watermark GETAT tokens wait on;
	// lsnClock mints LSNs for unreplicated batches.
	mvccOn   bool
	pub      *mvcc.Watermark
	lsnClock atomic.Uint64

	// Observability plane: the registry STATS and /metrics render from, the
	// live span ring, and the slow-op threshold. log is never nil; rec may
	// be. stamps is true when per-request wall-clock stamps are wanted
	// (spans or slow-op log on).
	log    *slog.Logger
	reg    *obs.Registry
	rec    *obs.SpanRecorder
	slowNs int64
	stamps bool

	start       time.Time
	activeConns atomic.Int64
	totalConns  atomic.Uint64
	refused     atomic.Uint64
	opCounts    [4]atomic.Uint64 // by OpKind
	multis      atomic.Uint64
	batches     atomic.Uint64
	batchedOps  atomic.Uint64
	protoErrs   atomic.Uint64
	roRejected  atomic.Uint64
	movedOps    atomic.Uint64
	frozenWaits atomic.Uint64
	slowOps     atomic.Uint64
	specAborts  atomic.Uint64
	binConns    atomic.Uint64
	binFrames   atomic.Uint64

	// snapshot-read accounting (mvcc.go)
	snapReads     atomic.Uint64
	snapMultis    atomic.Uint64
	snapFallbacks atomic.Uint64
	snapStale     obs.Histogram

	// background heap-compactor accounting (compact.go)
	compactions     atomic.Uint64
	compactMoved    atomic.Uint64
	compactFreed    atomic.Uint64
	compactSkipBusy atomic.Uint64

	// recovery-checker accounting (SelfCheck / CheckRecovered)
	recChecks     atomic.Uint64
	recCheckFails atomic.Uint64
	recCheckNs    atomic.Uint64
}

// StatsHook extends the STATS block with subsystem-specific counters (the
// replication layer reports head LSN and lag through one). It is called
// from connection goroutines and must be safe for concurrent use.
type StatsHook func(emit func(name string, val uint64))

// ErrClosed is returned by serve loops after Close.
var ErrClosed = errors.New("server: closed")

// New builds a server: it opens the threaded pool and one hash-map shard
// per worker, but does not listen or start workers — call ListenAndServe
// or Serve.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	pool, err := specpmt.OpenThreaded(specpmt.Config{
		Size:    cfg.PoolSize,
		Engine:  cfg.Engine,
		Profile: cfg.Profile,
		Tracer:  cfg.Tracer,
	}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		pool:      pool,
		quit:      make(chan struct{}),
		inflight:  make(chan struct{}, cfg.MaxInFlight),
		conns:     map[net.Conn]struct{}{},
		start:     time.Now(),
		routeWake: make(chan struct{}),
	}
	s.readOnly.Store(cfg.ReadOnly)
	switch {
	case cfg.Log != nil:
		s.log = cfg.Log
	case cfg.Obs != nil && cfg.Obs.Log != nil:
		s.log = cfg.Obs.Log
	case cfg.Logf != nil:
		s.log = obs.LogfLogger(cfg.Logf)
	default:
		s.log = obs.Nop()
	}
	if cfg.Obs != nil {
		s.reg = cfg.Obs.Reg
		s.rec = cfg.Obs.Spans
		s.slowNs = cfg.Obs.SlowOp.Nanoseconds()
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.stamps = s.rec != nil || s.slowNs > 0
	s.pipelined = cfg.PipelineDepth > 1
	s.mvccOn = !cfg.NoMVCC
	s.pub = mvcc.NewWatermark()
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(pool, i, cfg.MaxBatch, cfg.PipelineDepth)
		if err != nil {
			pool.Close()
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		if s.rec != nil {
			sh.track = s.rec.Track(fmt.Sprintf("shard-%d", i))
		}
		s.shards = append(s.shards, sh)
	}
	s.registerMetrics()
	return s, nil
}

// Registry returns the metrics registry STATS and /metrics render from —
// the plane's registry when one was configured, a private one otherwise.
func (s *Server) Registry() *obs.Registry { return s.reg }

// nowNs is the wall clock behind spans and slow-op accounting: the span
// recorder's epoch when one is wired (span timestamps must share it), the
// server's start otherwise (only durations are used then).
func (s *Server) nowNs() int64 {
	if s.rec != nil {
		return s.rec.Now()
	}
	return time.Since(s.start).Nanoseconds()
}

// Pool exposes the threaded pool backing the store — replication layers use
// it to allocate durable bookkeeping (applied-LSN cells) in the same
// persistence domain as the data.
func (s *Server) Pool() *specpmt.ThreadedPool { return s.pool }

// Shards returns the worker-shard count.
func (s *Server) Shards() int { return len(s.shards) }

// SetReplicator installs the commit-stream subscriber. Set it before the
// server begins committing (before Serve/ServeConn/Apply); replacing it
// mid-traffic loses the records committed in between.
func (s *Server) SetReplicator(r Replicator) {
	s.hookMu.Lock()
	s.repl = r
	s.hookMu.Unlock()
}

func (s *Server) replicator() Replicator {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.repl
}

// OnPromote installs the handler behind the PROMOTE admin command (a
// replica's promotion-to-primary). Without one, PROMOTE answers ERR.
func (s *Server) OnPromote(fn func() error) {
	s.hookMu.Lock()
	s.promoteHook = fn
	s.hookMu.Unlock()
}

// SetStatsHook registers an extra STATS emitter (see StatsHook). Hooks
// accumulate: the replication role and the cluster node each register one
// and both ride every gather.
func (s *Server) SetStatsHook(fn StatsHook) {
	s.hookMu.Lock()
	s.statsHooks = append(s.statsHooks, fn)
	s.hookMu.Unlock()
}

// ExtCommand extends the text protocol with admin verbs the core server
// does not know (the cluster node registers CLUSTER/CLUSTERSET/MIG* this
// way). It is consulted when a line fails to parse as a built-in command;
// handled replies are written verbatim (they must be newline-terminated —
// multi-line blocks are fine). Called from connection goroutines; must be
// safe for concurrent use.
type ExtCommand func(verb string, args [][]byte) (reply []byte, handled bool)

// OnExtCommand installs the extension-verb handler (nil removes it).
func (s *Server) OnExtCommand(fn ExtCommand) {
	s.hookMu.Lock()
	s.extCmd = fn
	s.hookMu.Unlock()
}

func (s *Server) extCommand() ExtCommand {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.extCmd
}

// SetReadOnly flips write rejection at runtime; promotion calls it with
// false. In-flight writes already admitted to a worker queue still commit.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the server currently rejects writes.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Engine returns the resolved engine name the store runs on.
func (s *Server) Engine() string { return s.cfg.Engine }

// Profile returns the resolved media profile name.
func (s *Server) Profile() string { return s.cfg.Profile }

// Addr returns the bound listen address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on cfg.Addr and serves until Close. A clean Close
// returns nil.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve starts the shard workers and accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	s.startWorkers()
	s.log.Info("serving",
		"engine", s.cfg.Engine, "profile", s.cfg.Profile,
		"shards", s.cfg.Shards, "addr", ln.Addr().String())
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return err
			}
		}
		if s.activeConns.Load() >= int64(s.cfg.MaxConns) {
			s.refused.Add(1)
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			fmt.Fprintf(c, "ERR max connections (%d) reached\n", s.cfg.MaxConns)
			c.Close()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handleConn(c)
		}()
	}
}

// ServeConn serves one pre-established connection (e.g. one end of a
// net.Pipe) in the calling goroutine, returning when it closes. Workers are
// started on demand.
func (s *Server) ServeConn(c net.Conn) {
	s.startWorkers()
	s.connWG.Add(1)
	defer s.connWG.Done()
	s.handleConn(c)
}

func (s *Server) startWorkers() {
	s.workersUp.Do(func() {
		for _, sh := range s.shards {
			sh.publish()
			// Seed the version store from the (possibly recovered) map
			// before the worker goroutine exists — every surviving key is a
			// base version visible at any snapshot.
			s.rebuildStore(sh)
			s.workerWG.Add(1)
			go func(sh *shard) {
				defer s.workerWG.Done()
				s.runWorker(sh)
			}(sh)
			if sh.retireq != nil {
				s.workerWG.Add(1)
				go func(sh *shard) {
					defer s.workerWG.Done()
					s.runRetirer(sh)
				}(sh)
			}
		}
		if s.cfg.CompactEvery > 0 {
			s.workerWG.Add(1)
			go func() {
				defer s.workerWG.Done()
				s.runCompactor()
			}()
		}
	})
}

// Close drains the server: stop accepting, let every in-flight request
// finish and its connection wind down, stop the workers, then close the
// pool. Safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.opMu.Lock()
		s.closing = true
		s.opMu.Unlock()
		close(s.quit)
		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()
		// Wake connections parked in idle reads; handlers notice quit and
		// exit after finishing their current request.
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.opWG.Wait()
		// No submitters remain: drain the workers.
		s.startWorkers() // ensure worker goroutines exist before closing queues
		for _, sh := range s.shards {
			close(sh.jobs)
		}
		s.workerWG.Wait()
		err = s.pool.Close()
		s.log.Info("closed", "conns_served", s.totalConns.Load())
	})
	return err
}

// Counters returns the pool's counters. Call it on a quiesced server (all
// in-flight requests done) — e.g. after Close, or from tests that know the
// workers are idle.
func (s *Server) Counters() specpmt.Counters { return s.pool.Counters() }

// beginOp registers an internal operation (Apply, Freeze) so Close waits
// for it; it fails once Close has begun.
func (s *Server) beginOp() bool {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	if s.closing {
		return false
	}
	s.opWG.Add(1)
	return true
}

// ErrApply is returned by Apply when the transaction could not commit.
var ErrApply = errors.New("server: apply failed")

// Apply executes ops as ONE transaction through the owning shard workers —
// the replication replay entry point. Cross-shard operation sets use the
// same barrier protocol as MULTI, so a replayed transaction is exactly as
// atomic as it was on the primary. extra, when non-nil, runs inside the
// same transaction after the ops (replicas stamp their applied-LSN cells
// with it, making replay exactly-once across crashes). Results are appended
// to results and returned. Safe for concurrent use; applies admitted to the
// same shard's queue may group-commit together.
func (s *Server) Apply(ops []Op, extra func(specpmt.Tx), results []Result) ([]Result, error) {
	return s.ApplyAt(0, ops, extra, results)
}

// ApplyAt is Apply with a publication LSN: the transaction's effective
// writes install into the MVCC version stores stamped at lsn, and the
// published-LSN watermark advances to it once the transaction commits —
// the replica replay entry point (the run's last LSN is the stamp; the run
// applies atomically, so visibility jumping to its end is consistent).
// lsn 0 (plain Apply) installs nothing: writes without a publication LSN
// mark their stores stale and the fast path falls back to the queued path
// until the worker rebuilds the store.
func (s *Server) ApplyAt(lsn uint64, ops []Op, extra func(specpmt.Tx), results []Result) ([]Result, error) {
	if len(ops) == 0 {
		return results, nil
	}
	if !s.beginOp() {
		return results, ErrClosed
	}
	defer s.opWG.Done()
	s.startWorkers()
	if !s.acquire() {
		return results, ErrClosed
	}
	s.maxLSNClock(lsn)
	j := newJob()
	j.internal = true
	j.pubLSN = lsn
	j.extra = extra
	j.ops = append(j.ops, ops...)
	s.dispatch(j, s.shardSet(ops))
	<-j.done
	s.release()
	results = append(results, j.results...)
	for _, r := range j.results {
		if r.Status == StatusErr {
			return results, ErrApply
		}
	}
	return results, nil
}

// Freeze parks every shard worker at a barrier and calls fn with the store
// quiesced: no transaction is in flight, and fn may read any shard (e.g.
// via RangeAll) as one consistent point-in-time cut. Commits stall for the
// duration — snapshot transfers should copy out under Freeze and stream
// after it returns. fn runs on a worker goroutine.
func (s *Server) Freeze(fn func()) error {
	if !s.beginOp() {
		return ErrClosed
	}
	defer s.opWG.Done()
	s.startWorkers()
	j := newJob()
	j.internal = true
	j.frozen = fn
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	s.dispatch(j, all)
	<-j.done
	return nil
}

// RangeAll iterates every shard's committed pairs. Only coherent from
// inside a Freeze callback or on an otherwise quiesced server.
func (s *Server) RangeAll(fn func(shard int, key, val uint64) bool) {
	for i, sh := range s.shards {
		stop := false
		sh.m.Range(func(k, v uint64) bool {
			if !fn(i, k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Crash simulates a power failure of the whole server and recovers from it:
// the pool crashes (randomly evicting dirty lines per the media profile),
// engine recovery replays the committed history, and every shard reattaches
// to its persistent map. The caller must guarantee the server is quiesced —
// no in-flight requests, applies, or freezes. Workers stay parked on their
// queues throughout and observe the reattached state via the next job.
// Recovery ends with SelfCheck, so a server can never silently resume over
// a state that violates its recovery invariants.
func (s *Server) Crash(seed uint64) error {
	if err := s.pool.Crash(seed); err != nil {
		return err
	}
	if err := s.pool.Recover(); err != nil {
		return err
	}
	for i, sh := range s.shards {
		th := s.pool.Thread(i)
		m, err := hashmap.Open(th, i)
		if err != nil {
			return fmt.Errorf("server: reopening shard %d: %w", i, err)
		}
		sh.th, sh.m = th, m
		// Version chains are volatile: rebuild them empty over the
		// recovered map (base versions at LSN 0, watermark preserved).
		s.rebuildStore(sh)
	}
	return s.SelfCheck()
}

// noteCheck folds one recovery-checker run into the observability counters
// (specpmt_recovery_checks / _check_failures / _check_duration_ns).
func (s *Server) noteCheck(t0 time.Time, err error) error {
	s.recChecks.Add(1)
	s.recCheckNs.Add(uint64(time.Since(t0).Nanoseconds()))
	if err != nil {
		s.recCheckFails.Add(1)
	}
	return err
}

// SelfCheck runs the store's structural recovery invariants over a
// quiesced cut: every shard hash map validates, the logged allocators'
// persistent metadata matches their in-memory mirrors (and recovery, when
// one just ran, reproduced the pre-crash allocation map), and — on the
// SpecSPMT engine — every thread's log chain is well formed with
// index/record/memory agreement. Run at startup and after every Crash; a
// failure means persistent state the server must not serve from.
func (s *Server) SelfCheck() error {
	t0 := time.Now()
	var err error
	ferr := s.Freeze(func() {
		err = s.selfCheckQuiesced()
	})
	if ferr != nil {
		return s.noteCheck(t0, ferr)
	}
	return s.noteCheck(t0, err)
}

func (s *Server) selfCheckQuiesced() error {
	for i, sh := range s.shards {
		if err := sh.m.Validate(); err != nil {
			return fmt.Errorf("server: shard %d: %w", i, err)
		}
	}
	for _, h := range []struct {
		name string
		heap *pmalloc.Heap
	}{{"data", s.pool.DataHeap()}, {"log", s.pool.LogHeap()}} {
		if err := h.heap.RecoveryError(); err != nil {
			return fmt.Errorf("server: %s heap recovery diverged: %w", h.name, err)
		}
		if err := h.heap.Verify(); err != nil {
			return fmt.Errorf("server: %s heap: %w", h.name, err)
		}
	}
	if sp := s.pool.SpecPool(); sp != nil {
		if err := sp.VerifyRecovered(s.pool.LogHeap().Allocated); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	return nil
}

// CheckRecovered verifies the recovered store against a committed oracle:
// the union of every shard map's key/value set must equal expect exactly,
// with each shard's map also passing its structural recovery checks
// (hashmap.Map.CheckRecovered). The crash harness's replica-replay
// scenario drives this after every replica power failure.
func (s *Server) CheckRecovered(expect map[uint64]uint64) error {
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	return s.CheckRecoveredShards(expect, all)
}

// CheckRecoveredShards is CheckRecovered restricted to the listed shards —
// the per-shard generalization cluster migration verifies with: after a
// cutover each node is checked against the oracle projected onto the shards
// it owns (oracle keys hashing to other shards are ignored). The crashtest
// migration scenario drives this on both nodes at every power-fail point.
func (s *Server) CheckRecoveredShards(expect map[uint64]uint64, shards []int) error {
	t0 := time.Now()
	perShard := make(map[int]map[uint64]uint64, len(shards))
	for _, i := range shards {
		if i < 0 || i >= len(s.shards) {
			return s.noteCheck(t0, fmt.Errorf("server: no shard %d", i))
		}
		perShard[i] = map[uint64]uint64{}
	}
	for k, v := range expect {
		if m, ok := perShard[s.shardOf(k)]; ok {
			m[k] = v
		}
	}
	var err error
	ferr := s.Freeze(func() {
		for _, i := range shards {
			if cerr := s.shards[i].m.CheckRecovered(perShard[i]); cerr != nil {
				err = fmt.Errorf("server: shard %d: %w", i, cerr)
				return
			}
		}
	})
	if ferr != nil {
		return s.noteCheck(t0, ferr)
	}
	return s.noteCheck(t0, err)
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
}

// connObs is one connection's observability context: its span track and a
// logger carrying the connection attrs every slow-op line should have.
type connObs struct {
	track int32
	log   *slog.Logger
}

func (s *Server) handleConn(c net.Conn) {
	defer c.Close()
	s.trackConn(c, true)
	defer s.trackConn(c, false)
	s.activeConns.Add(1)
	defer s.activeConns.Add(-1)
	id := s.totalConns.Add(1)

	co := connObs{log: s.log}
	if s.stamps {
		co.log = s.log.With("conn", id, "peer", c.RemoteAddr().String())
	}
	if s.rec != nil {
		// Connections share a small set of tracks so a long-lived server
		// cannot grow the track table without bound.
		co.track = s.rec.Track(fmt.Sprintf("conn-%d", id%8))
	}

	bw := bufio.NewWriter(c)
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	fmt.Fprintf(bw, "SPECPMT 1 engine=%s profile=%s shards=%d\n",
		s.cfg.Engine, s.cfg.Profile, s.cfg.Shards)
	if bw.Flush() != nil {
		return
	}

	br := bufio.NewReaderSize(c, binReadBuf)
	// Protocol selection: the banner is always text; a client that wants
	// the binary protocol answers with the 0xB1 version byte as its very
	// first byte, anything else speaks the text protocol for the
	// connection's lifetime. Mixing after that is a protocol error.
	c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == BinVersion {
		if s.cfg.Proto == "text" {
			s.protoErrs.Add(1)
			s.writeLine(c, bw, "ERR binary protocol disabled (-proto=text)")
			return
		}
		br.Discard(1)
		s.binConns.Add(1)
		s.handleBinary(c, br, bw, &co)
		return
	}
	if s.cfg.Proto == "binary" {
		s.protoErrs.Add(1)
		s.writeLine(c, bw, "ERR binary protocol required (-proto=binary)")
		return
	}
	var (
		multiOps []Op
		inMulti  bool
		replyBuf []byte
		j        = newJob()
	)
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := readLine(br)
		if err != nil {
			if err == errLineTooLong {
				s.protoErrs.Add(1)
				s.writeLine(c, bw, "ERR line too long")
			}
			return
		}
		if len(line) > 0 && line[0] == BinVersion {
			// A binary version byte after text commands: the framing of the
			// rest of the stream is unknowable, so answer and hang up.
			s.protoErrs.Add(1)
			s.writeLine(c, bw, "ERR binary frame on a text connection")
			return
		}
		cmd, perr := ParseCommand(line)
		if perr != nil {
			// Unknown or malformed: offer the line to the extension-verb
			// hook (cluster admin commands) before answering ERR.
			if ext := s.extCommand(); ext != nil {
				if fields := splitFields(line); len(fields) > 0 {
					if reply, handled := ext(string(fields[0]), fields[1:]); handled {
						if !s.writeBytes(c, bw, reply) {
							return
						}
						continue
					}
				}
			}
			s.protoErrs.Add(1)
			if !s.writeLine(c, bw, "ERR "+perr.Error()) {
				return
			}
			continue
		}
		switch cmd.Verb {
		case VerbPing:
			if !s.writeLine(c, bw, "PONG") {
				return
			}
		case VerbLSN:
			if !s.writeLine(c, bw, "LSN "+strconv.FormatUint(s.pub.Load(), 10)) {
				return
			}
		case VerbGetAt:
			if inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR GETAT inside MULTI") {
					return
				}
				continue
			}
			if !s.execGetAt(c, bw, &co, j, cmd.Op, &replyBuf) {
				return
			}
		case VerbQuit:
			s.writeLine(c, bw, "BYE")
			return
		case VerbStats:
			if !s.writeStats(c, bw) {
				return
			}
		case VerbMulti:
			if inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR MULTI inside MULTI") {
					return
				}
				continue
			}
			inMulti, multiOps = true, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbDiscard:
			inMulti, multiOps = false, multiOps[:0]
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbPromote:
			s.hookMu.Lock()
			hook := s.promoteHook
			s.hookMu.Unlock()
			if hook == nil {
				if !s.writeLine(c, bw, "ERR not a replica") {
					return
				}
				continue
			}
			if err := hook(); err != nil {
				if !s.writeLine(c, bw, "ERR promote: "+err.Error()) {
					return
				}
				continue
			}
			s.log.Info("promoted to primary")
			if !s.writeLine(c, bw, "OK") {
				return
			}
		case VerbExec:
			if !inMulti {
				s.protoErrs.Add(1)
				if !s.writeLine(c, bw, "ERR EXEC without MULTI") {
					return
				}
				continue
			}
			inMulti = false
			if s.readOnly.Load() && hasWrite(multiOps) {
				s.roRejected.Add(1)
				multiOps = multiOps[:0]
				if !s.writeLine(c, bw, "ERR read-only replica") {
					return
				}
				continue
			}
			ok := s.execMulti(c, bw, &co, j, multiOps, &replyBuf)
			multiOps = multiOps[:0]
			if !ok {
				return
			}
		case VerbOp:
			if s.readOnly.Load() && cmd.Op.Kind != OpGet {
				s.roRejected.Add(1)
				if inMulti {
					inMulti, multiOps = false, multiOps[:0]
					if !s.writeLine(c, bw, "ERR read-only replica (discarded)") {
						return
					}
					continue
				}
				if !s.writeLine(c, bw, "ERR read-only replica") {
					return
				}
				continue
			}
			if inMulti {
				if len(multiOps) >= MaxMultiOps {
					s.protoErrs.Add(1)
					inMulti, multiOps = false, multiOps[:0]
					if !s.writeLine(c, bw, "ERR MULTI too large (discarded)") {
						return
					}
					continue
				}
				multiOps = append(multiOps, cmd.Op)
				if !s.writeLine(c, bw, "QUEUED") {
					return
				}
				continue
			}
			if !s.execSingle(c, bw, &co, j, cmd.Op, &replyBuf) {
				return
			}
		}
	}
}

// acquire takes one in-flight slot, or reports shutdown.
func (s *Server) acquire() bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) release() { <-s.inflight }

func (s *Server) execSingle(c net.Conn, bw *bufio.Writer, co *connObs, j *job, op Op, replyBuf *[]byte) bool {
	var t0 int64
	if s.stamps {
		t0 = s.nowNs()
	}
	shards := []int{s.shardOf(op.Key)}
	if mv, err := s.admitShards(shards); mv != nil || err != nil {
		if err == ErrClosed {
			return false
		}
		if err != nil {
			return s.writeLine(c, bw, "ERR "+err.Error())
		}
		*replyBuf = appendMovedLine((*replyBuf)[:0], mv)
		return s.writeBytes(c, bw, *replyBuf)
	}
	if op.Kind == OpGet {
		// Snapshot fast path: serve the read lock-free from the shard's
		// published version store, bypassing the worker queue entirely.
		j.reset()
		j.ops = append(j.ops, op)
		if results, _, ok := s.serveSnapshot(shards[0], j.ops, j.results[:0]); ok {
			s.opCounts[OpGet].Add(1)
			j.results = results
			*replyBuf = AppendResultExt((*replyBuf)[:0], j.results[0], 0, true, 0)
			return s.writeBytes(c, bw, *replyBuf)
		}
		j.reset()
	}
	if !s.acquire() {
		return false
	}
	s.opCounts[op.Kind].Add(1)
	j.reset()
	j.ops = append(j.ops, op)
	if s.stamps {
		j.wallEnq = s.nowNs()
	}
	s.dispatch(j, shards)
	<-j.done
	s.release()
	if s.stamps {
		s.observeRequest(co, j, op.Kind.String(), t0, 1)
	}
	*replyBuf = AppendResult((*replyBuf)[:0], j.results[0], j.modelNs)
	return s.writeBytes(c, bw, *replyBuf)
}

func (s *Server) execMulti(c net.Conn, bw *bufio.Writer, co *connObs, j *job, ops []Op, replyBuf *[]byte) bool {
	if len(ops) == 0 {
		return s.writeLine(c, bw, "RESULTS 0") && s.writeLine(c, bw, "END t=0")
	}
	var t0 int64
	if s.stamps {
		t0 = s.nowNs()
	}
	shards := s.shardSet(ops)
	if mv, err := s.admitShards(shards); mv != nil || err != nil {
		if err == ErrClosed {
			return false
		}
		if err != nil {
			return s.writeLine(c, bw, "ERR "+err.Error())
		}
		*replyBuf = appendMovedLine((*replyBuf)[:0], mv)
		return s.writeBytes(c, bw, *replyBuf)
	}
	if len(shards) == 1 && !hasWrite(ops) {
		// Single-shard read-only MULTI: one snapshot serves the whole block
		// atomically. Cross-shard read-only MULTIs stay on the queued path —
		// per-shard snapshots cannot cut a cross-shard write atomically.
		j.reset()
		if results, _, ok := s.serveSnapshot(shards[0], ops, j.results[:0]); ok {
			s.multis.Add(1)
			s.snapMultis.Add(1)
			s.opCounts[OpGet].Add(uint64(len(ops)))
			j.results = results
			buf := (*replyBuf)[:0]
			buf = append(buf, "RESULTS "...)
			buf = strconv.AppendInt(buf, int64(len(j.results)), 10)
			buf = append(buf, '\n')
			for _, r := range j.results {
				buf = AppendResult(buf, r, -1)
			}
			buf = append(buf, "END t=0\n"...)
			*replyBuf = buf
			return s.writeBytes(c, bw, buf)
		}
		j.reset()
	}
	if !s.acquire() {
		return false
	}
	s.multis.Add(1)
	for _, op := range ops {
		s.opCounts[op.Kind].Add(1)
	}
	j.reset()
	j.ops = append(j.ops, ops...)
	if s.stamps {
		j.wallEnq = s.nowNs()
	}
	s.dispatch(j, shards)
	<-j.done
	s.release()
	if s.stamps {
		s.observeRequest(co, j, "MULTI", t0, len(shards))
	}
	buf := (*replyBuf)[:0]
	buf = append(buf, "RESULTS "...)
	buf = strconv.AppendInt(buf, int64(len(j.results)), 10)
	buf = append(buf, '\n')
	for _, r := range j.results {
		buf = AppendResult(buf, r, -1)
	}
	buf = append(buf, "END t="...)
	buf = strconv.AppendInt(buf, j.modelNs, 10)
	buf = append(buf, '\n')
	*replyBuf = buf
	return s.writeBytes(c, bw, buf)
}

// execGetAt serves one GETAT: wait until the published LSN reaches the
// token (op.Arg1), then read op.Key — from the shard's snapshot store when
// the fast path is available, through the worker queue otherwise. The reply
// carries lsn=<published> so the client can refresh its session token.
func (s *Server) execGetAt(c net.Conn, bw *bufio.Writer, co *connObs, j *job, op Op, replyBuf *[]byte) bool {
	pub, reached := s.waitPublished(op.Arg1)
	if !reached {
		select {
		case <-s.quit:
			return false
		default:
		}
		return s.writeLine(c, bw, "ERR published LSN "+strconv.FormatUint(pub, 10)+
			" below token (timeout)")
	}
	get := Op{Kind: OpGet, Key: op.Key}
	shards := []int{s.shardOf(op.Key)}
	if mv, err := s.admitShards(shards); mv != nil || err != nil {
		if err == ErrClosed {
			return false
		}
		if err != nil {
			return s.writeLine(c, bw, "ERR "+err.Error())
		}
		*replyBuf = appendMovedLine((*replyBuf)[:0], mv)
		return s.writeBytes(c, bw, *replyBuf)
	}
	j.reset()
	j.ops = append(j.ops, get)
	if results, _, ok := s.serveSnapshot(shards[0], j.ops, j.results[:0]); ok {
		s.opCounts[OpGet].Add(1)
		j.results = results
		*replyBuf = AppendResultExt((*replyBuf)[:0], j.results[0], 0, true, pub)
		return s.writeBytes(c, bw, *replyBuf)
	}
	j.reset()
	if !s.acquire() {
		return false
	}
	s.opCounts[OpGet].Add(1)
	j.ops = append(j.ops, get)
	s.dispatch(j, shards)
	<-j.done
	s.release()
	*replyBuf = AppendResultExt((*replyBuf)[:0], j.results[0], j.modelNs, false, pub)
	return s.writeBytes(c, bw, *replyBuf)
}

// dispatch routes a job to its shard worker — or, when the operations span
// several shards, enqueues it to every involved worker under the multi
// mutex, which totally orders cross-shard transactions and rules out
// circular waits between their barriers.
func (s *Server) dispatch(j *job, shardIDs []int) {
	if len(shardIDs) == 1 && j.frozen == nil {
		j.multi = nil
		s.shards[shardIDs[0]].jobs <- j
		return
	}
	j.multi = &multiJob{shards: shardIDs, released: make(chan struct{})}
	j.multi.parked.Add(len(shardIDs) - 1)
	j.multi.published.Add(len(shardIDs) - 1)
	s.multiMu.Lock()
	for _, id := range shardIDs {
		s.shards[id].jobs <- j
	}
	s.multiMu.Unlock()
}

func (s *Server) shardOf(key uint64) int { return ShardOf(key, len(s.shards)) }

// ShardOf maps a key onto one of `shards` worker shards — the placement
// function shared by every node of a cluster (all nodes run the same global
// shard count, so a key's shard id is cluster-wide; the cluster map then
// maps shard id to owning node).
func ShardOf(key uint64, shards int) int {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 29
	return int(key % uint64(shards))
}

// shardSet returns the sorted distinct shards ops touch.
func (s *Server) shardSet(ops []Op) []int {
	var mask uint32
	for _, op := range ops {
		mask |= 1 << uint(s.shardOf(op.Key))
	}
	var out []int
	for i := 0; i < len(s.shards); i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func (s *Server) writeLine(c net.Conn, bw *bufio.Writer, line string) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.WriteString(line)
	bw.WriteByte('\n')
	return bw.Flush() == nil
}

func (s *Server) writeBytes(c net.Conn, bw *bufio.Writer, b []byte) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.Write(b)
	return bw.Flush() == nil
}

// registerMetrics declares the server's metric families and its collectors.
// One collector emits every server sample in a single pass — each shard's
// published snapshot is read exactly once per gather, so a STATS block or a
// /metrics scrape can never mix two publish epochs. The StatsHook rides the
// same gather as a second collector.
func (s *Server) registerMetrics() {
	r := s.reg
	r.Family("specpmt_engine_ok", "1 while the engine is serving", obs.KindGauge)
	r.Family("specpmt_shards", "worker shard count", obs.KindGauge)
	r.Family("specpmt_uptime_ms", "wall-clock milliseconds since the server started", obs.KindGauge)
	r.Family("specpmt_conns_active", "currently open client connections", obs.KindGauge)
	r.Family("specpmt_conns_total", "client connections accepted since start", obs.KindCounter)
	r.Family("specpmt_conns_refused", "connections refused at the MaxConns gate", obs.KindCounter)
	r.Family("specpmt_inflight", "requests admitted to worker queues right now", obs.KindGauge)
	r.Family("specpmt_keys", "live keys across all shards", obs.KindGauge)
	r.Family("specpmt_ops_total", "data operations received, by type", obs.KindCounter)
	r.Family("specpmt_multis", "MULTI/EXEC transactions executed", obs.KindCounter)
	r.Family("specpmt_batches", "group commits executed", obs.KindCounter)
	r.Family("specpmt_batched_ops", "jobs coalesced into group commits", obs.KindCounter)
	r.Family("specpmt_protocol_errors", "malformed or out-of-order commands", obs.KindCounter)
	r.Family("specpmt_readonly", "1 while the server rejects writes (replica mode)", obs.KindGauge)
	r.Family("specpmt_writes_rejected", "writes rejected in read-only mode", obs.KindCounter)
	r.Family("specpmt_moved_ops", "requests redirected with MOVED (shard owned elsewhere)", obs.KindCounter)
	r.Family("specpmt_route_epoch", "installed cluster-map epoch (0 = standalone)", obs.KindGauge)
	r.Family("specpmt_frozen_shards", "shards currently frozen at admission (migration cutover)", obs.KindGauge)
	r.Family("specpmt_frozen_waits", "requests that parked on a frozen shard", obs.KindCounter)
	r.Family("specpmt_slow_ops", "requests slower than the slow-op threshold", obs.KindCounter)
	r.Family("specpmt_model_ns", "modeled nanoseconds elapsed (makespan across shards)", obs.KindGauge)
	r.Family("specpmt_fences", "persist fences issued by the engines", obs.KindCounter)
	r.Family("specpmt_flushes", "cache-line flushes issued by the engines", obs.KindCounter)
	r.Family("specpmt_fence_ns", "modeled nanoseconds spent stalled in fences", obs.KindCounter)
	r.Family("specpmt_tx_begun", "transactions begun", obs.KindCounter)
	r.Family("specpmt_tx_committed", "transactions committed", obs.KindCounter)
	r.Family("specpmt_tx_aborted", "transactions aborted", obs.KindCounter)
	r.Family("specpmt_pm_write_bytes", "bytes written to persistent media", obs.KindCounter)
	r.Family("specpmt_pm_log_bytes", "bytes of engine log writes", obs.KindCounter)
	r.Family("specpmt_pm_data_bytes", "bytes of in-place data-structure writes", obs.KindCounter)
	r.Family("specpmt_log_records", "engine log records appended", obs.KindCounter)
	r.Family("specpmt_pipeline_depth", "live auto-tuned pipeline window depth, mean across shards (1 = off)", obs.KindGauge)
	r.Family("specpmt_pipeline_depth_cap", "configured speculative commit pipeline depth ceiling", obs.KindGauge)
	r.Family("specpmt_parked_now", "replies currently parked behind an unretired fence", obs.KindGauge)
	r.Family("specpmt_spec_aborts", "speculative batch commits aborted and replayed", obs.KindCounter)
	r.Family("specpmt_bin_conns", "connections that negotiated the binary protocol", obs.KindCounter)
	r.Family("specpmt_bin_frames", "binary request frames decoded", obs.KindCounter)
	r.Family("specpmt_mvcc_enabled", "1 while the MVCC snapshot-read subsystem is on", obs.KindGauge)
	r.Family("specpmt_snapshot_reads", "GET operations served lock-free from an MVCC snapshot", obs.KindCounter)
	r.Family("specpmt_snapshot_multis", "read-only MULTI blocks served from one MVCC snapshot", obs.KindCounter)
	r.Family("specpmt_snapshot_fallbacks", "snapshot-path reads that fell back to the worker queue", obs.KindCounter)
	r.Family("specpmt_versions_live", "MVCC versions currently reachable across all shards", obs.KindGauge)
	r.Family("specpmt_version_reclaims", "MVCC versions reclaimed as unreachable by any snapshot", obs.KindCounter)
	r.Family("specpmt_published_lsn", "published-LSN watermark (the GETAT read-your-writes token)", obs.KindGauge)
	r.Family("specpmt_snapshot_staleness", "published LSN minus snapshot LSN at each snapshot read", obs.KindHistogram)
	r.Family("specpmt_compactions_total", "background heap-compaction passes completed", obs.KindCounter)
	r.Family("specpmt_compact_moved_blocks", "heap blocks relocated by compaction", obs.KindCounter)
	r.Family("specpmt_compact_freed_bytes", "span footprint returned to the free pool by compaction", obs.KindCounter)
	r.Family("specpmt_compact_skipped_busy", "compactor ticks skipped because requests were in flight", obs.KindCounter)
	r.Family("specpmt_heap_live_bytes", "data-heap live bytes (by allocation class)", obs.KindGauge)
	r.Family("specpmt_heap_footprint_bytes", "data-heap span footprint in bytes", obs.KindGauge)
	r.Family("specpmt_recovery_checks", "recovery-invariant checker runs (startup self-check, post-crash, oracle checks)", obs.KindCounter)
	r.Family("specpmt_recovery_check_failures", "recovery-invariant checker runs that found a violation", obs.KindCounter)
	r.Family("specpmt_recovery_check_duration_ns", "wall-clock nanoseconds spent in recovery-invariant checkers", obs.KindCounter)
	r.Family("specpmt_shard_tx_committed", "transactions committed, per shard", obs.KindCounter)
	r.Family("specpmt_shard_keys", "live keys, per shard", obs.KindGauge)
	r.Family("specpmt_commit_ns", "wall-clock group-commit latency in ns, per shard", obs.KindHistogram)
	r.Family("specpmt_batch_jobs", "jobs per group commit, per shard", obs.KindHistogram)
	r.Family("specpmt_queue_depth", "jobs still queued at batch start, per shard", obs.KindHistogram)
	r.Family("specpmt_parked_replies", "replies released per retire fence, per shard", obs.KindHistogram)

	r.Collect(s.collectMetrics)
	r.Collect(func(emit func(obs.Sample)) {
		s.hookMu.Lock()
		hooks := append([]StatsHook(nil), s.statsHooks...)
		s.hookMu.Unlock()
		for _, hook := range hooks {
			hook(func(name string, val uint64) {
				emit(obs.Sample{Family: "specpmt_" + name, Stat: name, Value: val})
			})
		}
	})
}

// collectMetrics emits every server-owned sample from one consistent cut of
// the shard snapshots.
func (s *Server) collectMetrics(emit func(obs.Sample)) {
	cuts := make([]struct {
		st   specpmt.Counters
		keys uint64
	}, len(s.shards))
	var agg specpmt.Counters
	var keys uint64
	var modelNs int64
	for i, sh := range s.shards {
		st, k, now := sh.published()
		cuts[i].st, cuts[i].keys = st, k
		agg.Merge(&st)
		keys += k
		if now > modelNs {
			modelNs = now
		}
	}
	scalar := func(family, stat string, val uint64) {
		emit(obs.Sample{Family: family, Stat: stat, Value: val})
	}
	scalar("specpmt_engine_ok", "engine_ok", 1)
	scalar("specpmt_shards", "shards", uint64(s.cfg.Shards))
	scalar("specpmt_uptime_ms", "uptime_ms", uint64(time.Since(s.start).Milliseconds()))
	scalar("specpmt_conns_active", "conns_active", uint64(s.activeConns.Load()))
	scalar("specpmt_conns_total", "conns_total", s.totalConns.Load())
	scalar("specpmt_conns_refused", "conns_refused", s.refused.Load())
	scalar("specpmt_inflight", "inflight", uint64(len(s.inflight)))
	scalar("specpmt_keys", "keys", keys)
	for kind, stat := range [...]string{OpGet: "ops_get", OpSet: "ops_set", OpDel: "ops_del", OpCAS: "ops_cas"} {
		emit(obs.Sample{
			Family: "specpmt_ops_total",
			Label:  `op="` + OpKind(kind).String() + `"`,
			Stat:   stat,
			Value:  s.opCounts[kind].Load(),
		})
	}
	scalar("specpmt_multis", "multis", s.multis.Load())
	scalar("specpmt_batches", "batches", s.batches.Load())
	scalar("specpmt_batched_ops", "batched_ops", s.batchedOps.Load())
	scalar("specpmt_protocol_errors", "protocol_errors", s.protoErrs.Load())
	scalar("specpmt_readonly", "readonly", boolStat(s.readOnly.Load()))
	scalar("specpmt_writes_rejected", "writes_rejected", s.roRejected.Load())
	scalar("specpmt_moved_ops", "moved_ops", s.movedOps.Load())
	var routeEpoch uint64
	if rt := s.route.Load(); rt != nil {
		routeEpoch = rt.Epoch
	}
	scalar("specpmt_route_epoch", "route_epoch", routeEpoch)
	scalar("specpmt_frozen_shards", "frozen_shards", uint64(bits.OnesCount64(s.frozenMask.Load())))
	scalar("specpmt_frozen_waits", "frozen_waits", s.frozenWaits.Load())
	scalar("specpmt_slow_ops", "slow_ops", s.slowOps.Load())
	var parkedNow, depthSum int64
	for _, sh := range s.shards {
		parkedNow += sh.parked.Load()
		depthSum += sh.depth.Load()
	}
	liveDepth := uint64(1)
	if n := int64(len(s.shards)); n > 0 {
		liveDepth = uint64((depthSum + n/2) / n)
	}
	scalar("specpmt_pipeline_depth", "pipeline_depth", liveDepth)
	scalar("specpmt_pipeline_depth_cap", "pipeline_depth_cap", uint64(s.cfg.PipelineDepth))
	scalar("specpmt_parked_now", "parked_now", uint64(parkedNow))
	scalar("specpmt_spec_aborts", "spec_aborts", s.specAborts.Load())
	scalar("specpmt_bin_conns", "bin_conns", s.binConns.Load())
	scalar("specpmt_bin_frames", "bin_frames", s.binFrames.Load())
	scalar("specpmt_mvcc_enabled", "mvcc_enabled", boolStat(s.mvccOn))
	scalar("specpmt_snapshot_reads", "snapshot_reads", s.snapReads.Load())
	scalar("specpmt_snapshot_multis", "snapshot_multis", s.snapMultis.Load())
	scalar("specpmt_snapshot_fallbacks", "snapshot_fallbacks", s.snapFallbacks.Load())
	var vLive int64
	var vReclaims uint64
	for _, sh := range s.shards {
		if st := sh.ver.Load(); st != nil {
			vLive += st.Live()
			vReclaims += st.Reclaims()
		}
	}
	if vLive < 0 {
		vLive = 0
	}
	scalar("specpmt_versions_live", "versions_live", uint64(vLive))
	scalar("specpmt_version_reclaims", "version_reclaims", vReclaims)
	scalar("specpmt_published_lsn", "published_lsn", s.pub.Load())
	emit(obs.Sample{Family: "specpmt_snapshot_staleness", Hist: s.snapStale.Snapshot()})
	scalar("specpmt_compactions_total", "compactions", s.compactions.Load())
	scalar("specpmt_compact_moved_blocks", "compact_moved_blocks", s.compactMoved.Load())
	scalar("specpmt_compact_freed_bytes", "compact_freed_bytes", s.compactFreed.Load())
	scalar("specpmt_compact_skipped_busy", "compact_skipped_busy", s.compactSkipBusy.Load())
	scalar("specpmt_heap_live_bytes", "heap_live_bytes", uint64(s.pool.DataHeap().Live()))
	scalar("specpmt_heap_footprint_bytes", "heap_footprint_bytes", uint64(s.pool.DataHeap().Footprint()))
	scalar("specpmt_recovery_checks", "recovery_checks", s.recChecks.Load())
	scalar("specpmt_recovery_check_failures", "recovery_check_failures", s.recCheckFails.Load())
	scalar("specpmt_recovery_check_duration_ns", "recovery_check_duration_ns", s.recCheckNs.Load())
	scalar("specpmt_model_ns", "model_ns", uint64(modelNs))
	scalar("specpmt_fences", "fences", agg.Fences)
	scalar("specpmt_flushes", "flushes", agg.Flushes)
	scalar("specpmt_fence_ns", "fence_ns", agg.FenceNs)
	scalar("specpmt_tx_begun", "tx_begun", agg.TxBegun)
	scalar("specpmt_tx_committed", "tx_committed", agg.TxCommitted)
	scalar("specpmt_tx_aborted", "tx_aborted", agg.TxAborted)
	scalar("specpmt_pm_write_bytes", "pm_write_bytes", agg.PMWriteBytes)
	scalar("specpmt_pm_log_bytes", "pm_log_bytes", agg.PMLogBytes)
	scalar("specpmt_pm_data_bytes", "pm_data_bytes", agg.PMDataBytes)
	scalar("specpmt_log_records", "log_records", agg.LogRecords)
	// Per-shard visibility: committed transactions and keys per worker, the
	// denominators behind per-shard replication LSNs and skew diagnosis.
	for i := range cuts {
		emit(obs.Sample{Family: "specpmt_shard_tx_committed", Label: obs.ShardLabel(i),
			Stat: obs.ShardStat(i, "tx_committed"), Value: cuts[i].st.TxCommitted})
		emit(obs.Sample{Family: "specpmt_shard_keys", Label: obs.ShardLabel(i),
			Stat: obs.ShardStat(i, "keys"), Value: cuts[i].keys})
	}
	for i, sh := range s.shards {
		emit(obs.Sample{Family: "specpmt_commit_ns", Label: obs.ShardLabel(i), Hist: sh.commitNs.Snapshot()})
		emit(obs.Sample{Family: "specpmt_batch_jobs", Label: obs.ShardLabel(i), Hist: sh.batchJobs.Snapshot()})
		emit(obs.Sample{Family: "specpmt_queue_depth", Label: obs.ShardLabel(i), Hist: sh.queueDepth.Snapshot()})
		emit(obs.Sample{Family: "specpmt_parked_replies", Label: obs.ShardLabel(i), Hist: sh.parkedHist.Snapshot()})
	}
}

// writeStats renders the STATS block from one registry gather — the same
// single-epoch snapshot /metrics scrapes, so every numeric STATS field has
// an equal-valued series there and no two fields can straddle a worker's
// publish.
func (s *Server) writeStats(c net.Conn, bw *bufio.Writer) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.Write(s.appendStats(nil))
	return bw.Flush() == nil
}

// appendStats renders the STATS block (shared by the text STATS command and
// the binary STATSREPLY frame) from one registry gather.
func (s *Server) appendStats(dst []byte) []byte {
	samples := s.reg.Gather()
	dst = append(dst, "STAT engine "...)
	dst = append(dst, s.cfg.Engine...)
	dst = append(dst, "\nSTAT profile "...)
	dst = append(dst, s.cfg.Profile...)
	dst = append(dst, '\n')
	for _, sm := range samples {
		if sm.Stat == "" || sm.Hist != nil {
			continue
		}
		dst = obs.FormatStat(dst, sm.Stat, sm.Value)
	}
	return append(dst, "END\n"...)
}

// observeRequest records the finished job's wall-clock spans (whole request,
// queue wait, execution) and emits the slow-op log line when the request
// crossed the threshold. Called with stamps on.
func (s *Server) observeRequest(co *connObs, j *job, verb string, t0 int64, nshards int) {
	now := s.nowNs()
	if s.rec != nil {
		s.rec.Record(
			obs.Span{Kind: obs.SpanRequest, Track: co.track, Start: t0, End: now,
				A: uint64(nshards), B: uint64(len(j.ops))},
			obs.Span{Kind: obs.SpanQueue, Track: co.track, Start: j.wallEnq, End: j.wallExec},
			obs.Span{Kind: obs.SpanExec, Track: co.track, Start: j.wallExec, End: j.wallCommit1},
		)
	}
	if s.slowNs > 0 && now-t0 >= s.slowNs {
		s.slowOps.Add(1)
		co.log.Warn("slow op",
			"verb", verb,
			"ops", len(j.ops),
			"shards", nshards,
			"total_us", (now-t0)/1000,
			"queue_us", (j.wallExec-j.wallEnq)/1000,
			"exec_us", (j.wallCommit0-j.wallExec)/1000,
			"commit_us", (j.wallCommit1-j.wallCommit0)/1000,
		)
	}
}

func boolStat(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// hasWrite reports whether ops contains anything but GETs.
func hasWrite(ops []Op) bool {
	for _, op := range ops {
		if op.Kind != OpGet {
			return true
		}
	}
	return false
}

// snapshot aggregates the per-shard published counter snapshots: summed
// counters, total keys, and the makespan modeled time.
func (s *Server) snapshot() (specpmt.Counters, uint64, int64) {
	var agg specpmt.Counters
	var keys uint64
	var modelNs int64
	for _, sh := range s.shards {
		st, k, now := sh.published()
		agg.Merge(&st)
		keys += k
		if now > modelNs {
			modelNs = now
		}
	}
	return agg, keys, modelNs
}

var errLineTooLong = errors.New("server: line too long")

// readLine reads one newline-terminated line, rejecting lines longer than
// MaxLineLen. The returned slice is valid until the next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, errLineTooLong
	}
	if err != nil {
		return nil, err
	}
	// Trim the newline and an optional carriage return.
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > MaxLineLen {
		return nil, errLineTooLong
	}
	return line, nil
}
