package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is the reference codec for the server's wire protocols — used by
// the load generator, the examples, and tests. It speaks either the text
// protocol or, when dialed with DialProto(..., "binary"), the framed binary
// protocol (see protocol_bin.go). Not safe for concurrent use: one
// goroutine per client, like one connection per client.
//
// Beyond the one-call-one-reply methods, SendOp / Flush / RecvResult expose
// explicit pipelining: queue a window of requests, flush once, then collect
// the replies in send order. Both protocols support it; the binary server
// additionally dispatches a buffered window to the shard workers before
// writing any reply, so pipelined binary clients see the largest gain.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	buf     []byte
	lineBuf []byte // overflow accumulator for readLine (reused)
	fbuf    []byte // binary frame read buffer (reused)
	rbuf    []Result
	ops1    [1]Op
	binary  bool
	// Banner is the server's greeting line (engine, profile, shards).
	Banner string
}

// OpResult is one data operation's parsed reply.
type OpResult struct {
	Status Status
	Val    uint64
	// ModelNs is the request's modeled PM time reported by the server
	// (t=<ns>); -1 when the reply carried none.
	ModelNs int64
	// Snap reports that the server answered from an MVCC snapshot (the
	// text protocol's s=1 marker, or a binary SNAPREPLY frame).
	Snap bool
	// LSN is the published LSN a GETAT reply carried (lsn=<n>); 0 when the
	// reply carried none.
	LSN uint64
}

// Dial connects to a server, retrying for up to timeout (covers the race
// against a server still binding its socket), and reads the banner.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialProto(addr, timeout, "text")
}

// DialProto dials with an explicit protocol: "text" (default) or "binary".
func DialProto(addr string, timeout time.Duration, proto string) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return NewClientProto(conn, proto)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// NewClient wraps an established connection (e.g. one end of a net.Pipe)
// and reads the banner.
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientProto(conn, "text")
}

// NewClientProto wraps an established connection with an explicit protocol.
func NewClientProto(conn net.Conn, proto string) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	switch proto {
	case "", "text":
	case "binary":
		c.binary = true
	default:
		conn.Close()
		return nil, fmt.Errorf("server: unknown protocol %q (want text or binary)", proto)
	}
	line, err := c.readLine()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: reading banner: %w", err)
	}
	c.Banner = string(line)
	if !strings.HasPrefix(c.Banner, "SPECPMT ") {
		conn.Close()
		return nil, fmt.Errorf("server: unexpected banner %q", c.Banner)
	}
	if c.binary {
		// The version byte rides the first request's flush.
		c.bw.WriteByte(BinVersion)
	}
	return c, nil
}

// Proto returns the wire protocol this client negotiated with the server:
// "text" or "binary".
func (c *Client) Proto() string {
	if c.binary {
		return "binary"
	}
	return "text"
}

// Close sends QUIT (best effort) and closes the connection.
func (c *Client) Close() error {
	if c.binary {
		c.buf = appendSimpleFrame(c.buf[:0], binFQuit)
		c.bw.Write(c.buf)
		c.bw.Flush()
		c.conn.SetReadDeadline(time.Now().Add(time.Second))
		readFrame(c.br, &c.fbuf) // BYE
		return c.conn.Close()
	}
	c.bw.WriteString("QUIT\n")
	c.bw.Flush()
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	c.readLine() // BYE
	return c.conn.Close()
}

// readLine reads one newline-terminated line without allocating per call:
// the fast path returns a slice of the reader's buffer, and lines longer
// than the buffer accumulate into a reusable overflow buffer. The returned
// slice is valid until the next read.
func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		c.lineBuf = append(c.lineBuf[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = c.br.ReadSlice('\n')
			c.lineBuf = append(c.lineBuf, line...)
		}
		line = c.lineBuf
	}
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func (c *Client) do(op Op) (OpResult, error) {
	if err := c.SendOp(op); err != nil {
		return OpResult{}, err
	}
	return c.RecvResult()
}

// SendOp queues one single-op request without reading its reply — the
// pipelining half of the codec. Replies must be collected with RecvResult
// in send order; do not interleave with Exec/Stats/Ping while replies are
// outstanding.
func (c *Client) SendOp(op Op) error {
	if c.binary {
		c.ops1[0] = op
		b, err := AppendOpsFrame(c.buf[:0], c.ops1[:])
		if err != nil {
			return err
		}
		c.buf = b
	} else {
		c.buf = AppendCommand(c.buf[:0], op)
	}
	_, err := c.bw.Write(c.buf)
	return err
}

// Flush pushes queued requests to the server.
func (c *Client) Flush() error { return c.bw.Flush() }

// RecvResult reads the next single-op reply (flushing queued requests
// first).
func (c *Client) RecvResult() (OpResult, error) {
	if err := c.bw.Flush(); err != nil {
		return OpResult{}, err
	}
	if c.binary {
		return c.recvBinResult()
	}
	line, err := c.readLine()
	if err != nil {
		return OpResult{}, err
	}
	return parseOpResult(line)
}

func (c *Client) recvBinResult() (OpResult, error) {
	payload, err := readFrame(c.br, &c.fbuf)
	if err != nil {
		return OpResult{}, err
	}
	if len(payload) > 0 && payload[0] == binFErr {
		return OpResult{}, fmt.Errorf("server error: %s", payload[1:])
	}
	if len(payload) > 0 && payload[0] == binFMoved {
		mv, merr := decodeMovedFrame(payload)
		if merr != nil {
			return OpResult{}, merr
		}
		return OpResult{}, mv
	}
	var modelNs int64
	var snap bool
	c.rbuf, modelNs, snap, err = DecodeReplyFrame(payload, c.rbuf[:0])
	if err != nil {
		return OpResult{}, err
	}
	if len(c.rbuf) != 1 {
		return OpResult{}, fmt.Errorf("server: %d results for one op", len(c.rbuf))
	}
	return OpResult{Status: c.rbuf[0].Status, Val: c.rbuf[0].Val, ModelNs: modelNs, Snap: snap}, nil
}

// Get fetches key. Status is StatusValue or StatusNotFound.
func (c *Client) Get(key uint64) (OpResult, error) {
	return c.do(Op{Kind: OpGet, Key: key})
}

// Set stores key=val.
func (c *Client) Set(key, val uint64) (OpResult, error) {
	return c.do(Op{Kind: OpSet, Key: key, Arg1: val})
}

// Del removes key. Status is StatusOK or StatusNotFound.
func (c *Client) Del(key uint64) (OpResult, error) {
	return c.do(Op{Kind: OpDel, Key: key})
}

// CAS atomically replaces key's value with new if it currently equals old.
// Status is StatusOK, StatusConflict (Val holds the current value), or
// StatusNotFound.
func (c *Client) CAS(key, old, new uint64) (OpResult, error) {
	return c.do(Op{Kind: OpCAS, Key: key, Arg1: old, Arg2: new})
}

// GetAt fetches key with a read-your-writes LSN token (text protocol only):
// the server parks the read until its published LSN reaches token, then
// serves it from a snapshot at least that fresh. The reply's LSN field
// carries the published LSN observed — the refreshed session token.
func (c *Client) GetAt(key, token uint64) (OpResult, error) {
	if c.binary {
		return OpResult{}, fmt.Errorf("server: GETAT requires the text protocol")
	}
	c.buf = append(c.buf[:0], "GETAT "...)
	c.buf = strconv.AppendUint(c.buf, key, 10)
	c.buf = append(c.buf, ' ')
	c.buf = strconv.AppendUint(c.buf, token, 10)
	c.buf = append(c.buf, '\n')
	if _, err := c.bw.Write(c.buf); err != nil {
		return OpResult{}, err
	}
	return c.RecvResult()
}

// LSN fetches the server's published-LSN watermark — the session token a
// client carries to GETAT on a replica for read-your-writes (text protocol
// only).
func (c *Client) LSN() (uint64, error) {
	if c.binary {
		return 0, fmt.Errorf("server: LSN requires the text protocol")
	}
	c.bw.WriteString("LSN\n")
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, err
	}
	fields := bytes.Fields(line)
	if len(fields) != 2 || string(fields[0]) != "LSN" {
		return 0, fmt.Errorf("server: unexpected LSN reply %q", line)
	}
	return strconv.ParseUint(string(fields[1]), 10, 64)
}

// Exec runs ops as ONE transaction — a single multi-op frame on the binary
// protocol, MULTI...EXEC on text — returning one result per op and the
// transaction's modeled time.
func (c *Client) Exec(ops []Op) ([]OpResult, int64, error) {
	if c.binary {
		b, err := AppendOpsFrame(c.buf[:0], ops)
		if err != nil {
			return nil, 0, err
		}
		c.buf = b
		if _, err := c.bw.Write(c.buf); err != nil {
			return nil, 0, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, 0, err
		}
		payload, err := readFrame(c.br, &c.fbuf)
		if err != nil {
			return nil, 0, err
		}
		if len(payload) > 0 && payload[0] == binFErr {
			return nil, 0, fmt.Errorf("server error: %s", payload[1:])
		}
		if len(payload) > 0 && payload[0] == binFMoved {
			mv, merr := decodeMovedFrame(payload)
			if merr != nil {
				return nil, 0, merr
			}
			return nil, 0, mv
		}
		var modelNs int64
		var snap bool
		c.rbuf, modelNs, snap, err = DecodeReplyFrame(payload, c.rbuf[:0])
		if err != nil {
			return nil, 0, err
		}
		results := make([]OpResult, len(c.rbuf))
		for i, r := range c.rbuf {
			results[i] = OpResult{Status: r.Status, Val: r.Val, ModelNs: -1, Snap: snap}
		}
		return results, modelNs, nil
	}
	c.bw.WriteString("MULTI\n")
	for _, op := range ops {
		c.buf = AppendCommand(c.buf[:0], op)
		c.bw.Write(c.buf)
	}
	c.bw.WriteString("EXEC\n")
	if err := c.bw.Flush(); err != nil {
		return nil, 0, err
	}
	if err := c.expect("OK"); err != nil {
		return nil, 0, fmt.Errorf("MULTI: %w", err)
	}
	for range ops {
		if err := c.expect("QUEUED"); err != nil {
			return nil, 0, fmt.Errorf("queueing: %w", err)
		}
	}
	head, err := c.readLine()
	if err != nil {
		return nil, 0, err
	}
	if bytes.HasPrefix(head, []byte("MOVED ")) {
		mv, merr := parseMovedLine(bytes.Fields(head))
		if merr != nil {
			return nil, 0, merr
		}
		return nil, 0, mv
	}
	var n int
	if _, err := fmt.Sscanf(string(head), "RESULTS %d", &n); err != nil {
		return nil, 0, fmt.Errorf("server: unexpected EXEC reply %q", head)
	}
	results := make([]OpResult, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, err
		}
		r, err := parseOpResult(line)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, r)
	}
	end, err := c.readLine()
	if err != nil {
		return nil, 0, err
	}
	var modelNs int64
	if _, err := fmt.Sscanf(string(end), "END t=%d", &modelNs); err != nil {
		return nil, 0, fmt.Errorf("server: unexpected EXEC trailer %q", end)
	}
	return results, modelNs, nil
}

// Stats fetches the server's STATS block as a name -> value map (numeric
// values; engine and profile come back in the "engine"/"profile" keys of
// the second map).
func (c *Client) Stats() (map[string]uint64, map[string]string, error) {
	nums := map[string]uint64{}
	strs := map[string]string{}
	if c.binary {
		c.buf = appendSimpleFrame(c.buf[:0], binFStats)
		if _, err := c.bw.Write(c.buf); err != nil {
			return nil, nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, nil, err
		}
		payload, err := readFrame(c.br, &c.fbuf)
		if err != nil {
			return nil, nil, err
		}
		if len(payload) == 0 || payload[0] != binFStatsReply {
			return nil, nil, fmt.Errorf("server: unexpected STATS frame")
		}
		for _, line := range bytes.Split(payload[1:], []byte("\n")) {
			if len(line) == 0 || string(line) == "END" {
				continue
			}
			if err := parseStatsLine(line, nums, strs); err != nil {
				return nil, nil, err
			}
		}
		return nums, strs, nil
	}
	c.bw.WriteString("STATS\n")
	if err := c.bw.Flush(); err != nil {
		return nil, nil, err
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, nil, err
		}
		if string(line) == "END" {
			return nums, strs, nil
		}
		if err := parseStatsLine(line, nums, strs); err != nil {
			return nil, nil, err
		}
	}
}

func parseStatsLine(line []byte, nums map[string]uint64, strs map[string]string) error {
	fields := strings.Fields(string(line))
	if len(fields) != 3 || fields[0] != "STAT" {
		return fmt.Errorf("server: unexpected STATS line %q", line)
	}
	if n, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
		nums[fields[1]] = n
	} else {
		strs[fields[1]] = fields[2]
	}
	return nil
}

// Promote asks a read-only replica to become a writable primary. Admin
// command; text protocol only.
func (c *Client) Promote() error {
	if c.binary {
		return fmt.Errorf("server: PROMOTE requires the text protocol")
	}
	c.bw.WriteString("PROMOTE\n")
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expect("OK")
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	if c.binary {
		c.buf = appendSimpleFrame(c.buf[:0], binFPing)
		if _, err := c.bw.Write(c.buf); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		payload, err := readFrame(c.br, &c.fbuf)
		if err != nil {
			return err
		}
		if len(payload) != 1 || payload[0] != binFPong {
			return fmt.Errorf("server: unexpected PING reply frame")
		}
		return nil
	}
	c.bw.WriteString("PING\n")
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expect("PONG")
}

func (c *Client) expect(want string) error {
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if string(line) != want {
		return fmt.Errorf("server: got %q, want %q", line, want)
	}
	return nil
}

// parseOpResult decodes a single-op reply line: OK / VALUE v / NOTFOUND /
// CONFLICT cur, each optionally followed by the trailers s=1 (snapshot
// read), lsn=<n> (GETAT published LSN), and t=<ns>, in that order.
func parseOpResult(line []byte) (OpResult, error) {
	r := OpResult{ModelNs: -1}
	rest := line
	if i := bytes.LastIndex(rest, []byte(" t=")); i >= 0 {
		ns, err := strconv.ParseInt(string(rest[i+3:]), 10, 64)
		if err == nil {
			r.ModelNs = ns
			rest = rest[:i]
		}
	}
	if i := bytes.LastIndex(rest, []byte(" lsn=")); i >= 0 {
		lsn, err := strconv.ParseUint(string(rest[i+5:]), 10, 64)
		if err == nil {
			r.LSN = lsn
			rest = rest[:i]
		}
	}
	if bytes.HasSuffix(rest, []byte(" s=1")) {
		r.Snap = true
		rest = rest[:len(rest)-4]
	}
	fields := bytes.Fields(rest)
	if len(fields) == 0 {
		return r, fmt.Errorf("server: empty reply")
	}
	switch string(fields[0]) {
	case "OK":
		r.Status = StatusOK
		return r, nil
	case "NOTFOUND":
		r.Status = StatusNotFound
		return r, nil
	case "VALUE":
		if len(fields) != 2 {
			return r, fmt.Errorf("server: malformed VALUE reply %q", line)
		}
		v, err := strconv.ParseUint(string(fields[1]), 10, 64)
		if err != nil {
			return r, fmt.Errorf("server: malformed VALUE reply %q", line)
		}
		r.Status, r.Val = StatusValue, v
		return r, nil
	case "CONFLICT":
		if len(fields) != 2 {
			return r, fmt.Errorf("server: malformed CONFLICT reply %q", line)
		}
		v, err := strconv.ParseUint(string(fields[1]), 10, 64)
		if err != nil {
			return r, fmt.Errorf("server: malformed CONFLICT reply %q", line)
		}
		r.Status, r.Val = StatusConflict, v
		return r, nil
	case "ERR":
		return r, fmt.Errorf("server error: %s", bytes.TrimSpace(rest))
	case "MOVED":
		mv, err := parseMovedLine(fields)
		if err != nil {
			return r, err
		}
		return r, mv
	}
	return r, fmt.Errorf("server: unexpected reply %q", line)
}

// parseMovedLine decodes the fields of "MOVED <shard> <epoch> <addr>" into
// the typed redirect error.
func parseMovedLine(fields [][]byte) (*MovedError, error) {
	if len(fields) != 4 {
		return nil, fmt.Errorf("server: malformed MOVED reply")
	}
	shard, err1 := strconv.ParseInt(string(fields[1]), 10, 32)
	epoch, err2 := strconv.ParseUint(string(fields[2]), 10, 64)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("server: malformed MOVED reply")
	}
	return &MovedError{Shard: int(shard), Epoch: epoch, Addr: string(fields[3])}, nil
}
