package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is the reference codec for the server's wire protocol — used by
// the load generator, the examples, and tests. Not safe for concurrent
// use: one goroutine per client, like one connection per client.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
	// Banner is the server's greeting line (engine, profile, shards).
	Banner string
}

// OpResult is one data operation's parsed reply.
type OpResult struct {
	Status Status
	Val    uint64
	// ModelNs is the request's modeled PM time reported by the server
	// (t=<ns>); -1 when the reply carried none.
	ModelNs int64
}

// Dial connects to a server, retrying for up to timeout (covers the race
// against a server still binding its socket), and reads the banner.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return NewClient(conn)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dialing %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// NewClient wraps an established connection (e.g. one end of a net.Pipe)
// and reads the banner.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	line, err := c.readLine()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: reading banner: %w", err)
	}
	c.Banner = string(line)
	if !strings.HasPrefix(c.Banner, "SPECPMT ") {
		conn.Close()
		return nil, fmt.Errorf("server: unexpected banner %q", c.Banner)
	}
	return c, nil
}

// Close sends QUIT (best effort) and closes the connection.
func (c *Client) Close() error {
	c.bw.WriteString("QUIT\n")
	c.bw.Flush()
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	c.readLine() // BYE
	return c.conn.Close()
}

func (c *Client) readLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

func (c *Client) do(op Op) (OpResult, error) {
	c.buf = AppendCommand(c.buf[:0], op)
	if _, err := c.bw.Write(c.buf); err != nil {
		return OpResult{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return OpResult{}, err
	}
	line, err := c.readLine()
	if err != nil {
		return OpResult{}, err
	}
	return parseOpResult(line)
}

// Get fetches key. Status is StatusValue or StatusNotFound.
func (c *Client) Get(key uint64) (OpResult, error) {
	return c.do(Op{Kind: OpGet, Key: key})
}

// Set stores key=val.
func (c *Client) Set(key, val uint64) (OpResult, error) {
	return c.do(Op{Kind: OpSet, Key: key, Arg1: val})
}

// Del removes key. Status is StatusOK or StatusNotFound.
func (c *Client) Del(key uint64) (OpResult, error) {
	return c.do(Op{Kind: OpDel, Key: key})
}

// CAS atomically replaces key's value with new if it currently equals old.
// Status is StatusOK, StatusConflict (Val holds the current value), or
// StatusNotFound.
func (c *Client) CAS(key, old, new uint64) (OpResult, error) {
	return c.do(Op{Kind: OpCAS, Key: key, Arg1: old, Arg2: new})
}

// Exec runs ops as ONE transaction via MULTI...EXEC, returning one result
// per op and the transaction's modeled time.
func (c *Client) Exec(ops []Op) ([]OpResult, int64, error) {
	c.bw.WriteString("MULTI\n")
	for _, op := range ops {
		c.buf = AppendCommand(c.buf[:0], op)
		c.bw.Write(c.buf)
	}
	c.bw.WriteString("EXEC\n")
	if err := c.bw.Flush(); err != nil {
		return nil, 0, err
	}
	if err := c.expect("OK"); err != nil {
		return nil, 0, fmt.Errorf("MULTI: %w", err)
	}
	for range ops {
		if err := c.expect("QUEUED"); err != nil {
			return nil, 0, fmt.Errorf("queueing: %w", err)
		}
	}
	head, err := c.readLine()
	if err != nil {
		return nil, 0, err
	}
	var n int
	if _, err := fmt.Sscanf(string(head), "RESULTS %d", &n); err != nil {
		return nil, 0, fmt.Errorf("server: unexpected EXEC reply %q", head)
	}
	results := make([]OpResult, 0, n)
	for i := 0; i < n; i++ {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, err
		}
		r, err := parseOpResult(line)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, r)
	}
	end, err := c.readLine()
	if err != nil {
		return nil, 0, err
	}
	var modelNs int64
	if _, err := fmt.Sscanf(string(end), "END t=%d", &modelNs); err != nil {
		return nil, 0, fmt.Errorf("server: unexpected EXEC trailer %q", end)
	}
	return results, modelNs, nil
}

// Stats fetches the server's STATS block as a name -> value map (numeric
// values; engine and profile come back in the "engine"/"profile" keys of
// the second map).
func (c *Client) Stats() (map[string]uint64, map[string]string, error) {
	c.bw.WriteString("STATS\n")
	if err := c.bw.Flush(); err != nil {
		return nil, nil, err
	}
	nums := map[string]uint64{}
	strs := map[string]string{}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, nil, err
		}
		if string(line) == "END" {
			return nums, strs, nil
		}
		fields := strings.Fields(string(line))
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, nil, fmt.Errorf("server: unexpected STATS line %q", line)
		}
		if n, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
			nums[fields[1]] = n
		} else {
			strs[fields[1]] = fields[2]
		}
	}
}

// Promote asks a read-only replica to become a writable primary.
func (c *Client) Promote() error {
	c.bw.WriteString("PROMOTE\n")
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expect("OK")
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	c.bw.WriteString("PING\n")
	if err := c.bw.Flush(); err != nil {
		return err
	}
	return c.expect("PONG")
}

func (c *Client) expect(want string) error {
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if string(line) != want {
		return fmt.Errorf("server: got %q, want %q", line, want)
	}
	return nil
}

// parseOpResult decodes a single-op reply line: OK / VALUE v / NOTFOUND /
// CONFLICT cur, each optionally followed by t=<ns>.
func parseOpResult(line []byte) (OpResult, error) {
	r := OpResult{ModelNs: -1}
	rest := line
	if i := bytes.LastIndex(line, []byte(" t=")); i >= 0 {
		ns, err := strconv.ParseInt(string(line[i+3:]), 10, 64)
		if err == nil {
			r.ModelNs = ns
			rest = line[:i]
		}
	}
	fields := bytes.Fields(rest)
	if len(fields) == 0 {
		return r, fmt.Errorf("server: empty reply")
	}
	switch string(fields[0]) {
	case "OK":
		r.Status = StatusOK
		return r, nil
	case "NOTFOUND":
		r.Status = StatusNotFound
		return r, nil
	case "VALUE":
		if len(fields) != 2 {
			return r, fmt.Errorf("server: malformed VALUE reply %q", line)
		}
		v, err := strconv.ParseUint(string(fields[1]), 10, 64)
		if err != nil {
			return r, fmt.Errorf("server: malformed VALUE reply %q", line)
		}
		r.Status, r.Val = StatusValue, v
		return r, nil
	case "CONFLICT":
		if len(fields) != 2 {
			return r, fmt.Errorf("server: malformed CONFLICT reply %q", line)
		}
		v, err := strconv.ParseUint(string(fields[1]), 10, 64)
		if err != nil {
			return r, fmt.Errorf("server: malformed CONFLICT reply %q", line)
		}
		r.Status, r.Val = StatusConflict, v
		return r, nil
	case "ERR":
		return r, fmt.Errorf("server error: %s", bytes.TrimSpace(rest))
	}
	return r, fmt.Errorf("server: unexpected reply %q", line)
}
