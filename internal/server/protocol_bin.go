package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
)

// Binary wire protocol.
//
// The banner is always the text line. A client selects the binary protocol
// by sending the version byte 0xB1 as its very first byte; everything after
// it, in both directions, is length-prefixed frames:
//
//	u32le payload-length | payload
//
// The payload's first byte is the frame type; requests are 0x0x, replies
// 0x8x (plus 0xFF for an in-band error reply):
//
//	type              payload after the type byte
//	0x01 OPS          u8 n, then n packed ops (one transaction when n > 1):
//	                    GET/DEL: u8 kind, u64le key              (9 bytes)
//	                    SET:     u8 kind, u64le key, u64le val   (17 bytes)
//	                    CAS:     u8 kind, u64le key, u64le old,
//	                             u64le new                       (25 bytes)
//	0x02 PING         (empty)
//	0x03 STATS        (empty)
//	0x04 QUIT         (empty)
//	0x81 REPLY        u8 n, then n of [u8 status, u64le val],
//	                  then u64le modeled-ns (two's-complement int64)
//	0x82 PONG         (empty)
//	0x83 STATSREPLY   the STATS text block verbatim
//	0x84 BYE          (empty)
//	0x85 MOVED        u32le shard | u64le map epoch | owner address bytes —
//	                  the OPS it answers touched a shard owned by another
//	                  cluster node; refresh the map and retry there
//	0x86 SNAPREPLY    same payload as 0x81 REPLY; the frame type itself
//	                  marks every result as served from an MVCC snapshot
//	                  (modeled-ns is 0: no persistent structure was touched)
//	0xFF ERR          human-readable message (the request it answers
//	                  failed; the connection stays usable)
//
// Integers are little-endian and fixed-width, so a decode is a handful of
// direct loads out of the connection's pooled read buffer — no
// tokenization, no string allocation, no copies of keys or values. Framing
// violations (bad length prefix, unknown type, truncated or oversized
// body, trailing bytes) poison the stream and close the connection;
// application-level failures travel as 0xFF replies.
const (
	// BinVersion is the protocol version byte a client sends first to
	// select the binary protocol (and its frame-format version).
	BinVersion = 0xB1
	// MaxFrameLen bounds one frame's payload (a full 128-op CAS MULTI is
	// 3202 bytes; STATS replies are the big ones).
	MaxFrameLen = 64 << 10

	frameHdrLen = 4
	binReadBuf  = 8 << 10 // connection read-buffer; holds a window of frames
)

// Frame type bytes.
const (
	binFOps        = 0x01
	binFPing       = 0x02
	binFStats      = 0x03
	binFQuit       = 0x04
	binFReply      = 0x81
	binFPong       = 0x82
	binFStatsReply = 0x83
	binFBye        = 0x84
	binFMoved      = 0x85
	binFSnapReply  = 0x86
	binFErr        = 0xFF
)

var (
	errBadFrame      = errors.New("malformed frame")
	errFrameTooLarge = errors.New("frame exceeds MaxFrameLen")
	errTruncFrame    = errors.New("truncated frame body")
	errBadOpKind     = errors.New("unknown op kind in frame")
	errTooManyOps    = errors.New("too many ops in frame")
)

// readFrame reads one length-prefixed frame, growing *buf as needed and
// returning the payload as a slice of it — valid until the next call with
// the same buffer.
func readFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 {
		return nil, errBadFrame
	}
	if n > MaxFrameLen {
		return nil, errFrameTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(br, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, errTruncFrame
		}
		return nil, err
	}
	return b, nil
}

// frameBuffered reports whether a complete frame already sits in br's
// buffer, i.e. whether readFrame is guaranteed not to block. A buffered but
// invalid length prefix counts as "buffered" so readFrame can surface the
// error.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < frameHdrLen {
		return false
	}
	hdr, _ := br.Peek(frameHdrLen)
	n := int(binary.LittleEndian.Uint32(hdr))
	if n == 0 || n > MaxFrameLen {
		return true
	}
	return br.Buffered() >= frameHdrLen+n
}

// opWireLen returns the packed size of one op (0 for an unknown kind).
func opWireLen(k OpKind) int {
	switch k {
	case OpGet, OpDel:
		return 9
	case OpSet:
		return 17
	case OpCAS:
		return 25
	}
	return 0
}

// AppendOpsFrame appends one framed OPS request (header included) to dst.
// 1..MaxMultiOps ops; more than one op commits as a single transaction.
func AppendOpsFrame(dst []byte, ops []Op) ([]byte, error) {
	if len(ops) == 0 || len(ops) > MaxMultiOps {
		return dst, errTooManyOps
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, binFOps, byte(len(ops)))
	for _, op := range ops {
		n := opWireLen(op.Kind)
		if n == 0 {
			return dst[:start], errBadOpKind
		}
		dst = append(dst, byte(op.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, op.Key)
		if n >= 17 {
			dst = binary.LittleEndian.AppendUint64(dst, op.Arg1)
		}
		if n == 25 {
			dst = binary.LittleEndian.AppendUint64(dst, op.Arg2)
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHdrLen))
	return dst, nil
}

// DecodeOpsFrame decodes an OPS payload (type byte included), appending to
// ops. Every integer is read in place; nothing is allocated or copied.
func DecodeOpsFrame(payload []byte, ops []Op) ([]Op, error) {
	if len(payload) < 2 || payload[0] != binFOps {
		return ops, errBadFrame
	}
	n := int(payload[1])
	if n == 0 || n > MaxMultiOps {
		return ops, errTooManyOps
	}
	p := 2
	for i := 0; i < n; i++ {
		if p >= len(payload) {
			return ops, errTruncFrame
		}
		kind := OpKind(payload[p])
		need := opWireLen(kind)
		if need == 0 {
			return ops, errBadOpKind
		}
		if len(payload)-p < need {
			return ops, errTruncFrame
		}
		op := Op{Kind: kind, Key: binary.LittleEndian.Uint64(payload[p+1:])}
		if need >= 17 {
			op.Arg1 = binary.LittleEndian.Uint64(payload[p+9:])
		}
		if need == 25 {
			op.Arg2 = binary.LittleEndian.Uint64(payload[p+17:])
		}
		ops = append(ops, op)
		p += need
	}
	if p != len(payload) {
		return ops, errBadFrame // trailing bytes
	}
	return ops, nil
}

// AppendReplyFrame appends one framed REPLY (header included) to dst.
func AppendReplyFrame(dst []byte, results []Result, modelNs int64) []byte {
	return appendReplyFrameTyped(dst, binFReply, results, modelNs)
}

// AppendSnapReplyFrame appends one framed SNAPREPLY — a REPLY whose frame
// type marks the results as served from an MVCC snapshot.
func AppendSnapReplyFrame(dst []byte, results []Result) []byte {
	return appendReplyFrameTyped(dst, binFSnapReply, results, 0)
}

func appendReplyFrameTyped(dst []byte, typ byte, results []Result, modelNs int64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ, byte(len(results)))
	for _, r := range results {
		dst = append(dst, byte(r.Status))
		dst = binary.LittleEndian.AppendUint64(dst, r.Val)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(modelNs))
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-frameHdrLen))
	return dst
}

// DecodeReplyFrame decodes a REPLY or SNAPREPLY payload, appending to
// results. snap reports which of the two it was.
func DecodeReplyFrame(payload []byte, results []Result) (_ []Result, modelNs int64, snap bool, _ error) {
	if len(payload) < 2 || (payload[0] != binFReply && payload[0] != binFSnapReply) {
		return results, 0, false, errBadFrame
	}
	snap = payload[0] == binFSnapReply
	n := int(payload[1])
	p := 2
	for i := 0; i < n; i++ {
		if len(payload)-p < 9 {
			return results, 0, snap, errTruncFrame
		}
		results = append(results, Result{
			Status: Status(payload[p]),
			Val:    binary.LittleEndian.Uint64(payload[p+1:]),
		})
		p += 9
	}
	if len(payload)-p != 8 {
		return results, 0, snap, errBadFrame
	}
	modelNs = int64(binary.LittleEndian.Uint64(payload[p:]))
	return results, modelNs, snap, nil
}

// appendSimpleFrame appends a framed empty-body reply of the given type.
func appendSimpleFrame(dst []byte, typ byte) []byte {
	return append(dst, 1, 0, 0, 0, typ)
}

// appendMsgFrame appends a framed reply whose body is msg (ERR and
// STATSREPLY frames).
func appendMsgFrame(dst []byte, typ byte, msg []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(msg)))
	dst = append(dst, typ)
	return append(dst, msg...)
}

// appendMovedFrame appends a framed MOVED redirect.
func appendMovedFrame(dst []byte, mv *Moved) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+4+8+len(mv.Addr)))
	dst = append(dst, binFMoved)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(mv.Shard))
	dst = binary.LittleEndian.AppendUint64(dst, mv.Epoch)
	return append(dst, mv.Addr...)
}

// decodeMovedFrame decodes a MOVED payload (type byte included) into the
// client-side error form.
func decodeMovedFrame(payload []byte) (*MovedError, error) {
	if len(payload) < 1+4+8 || payload[0] != binFMoved {
		return nil, errBadFrame
	}
	return &MovedError{
		Shard: int(binary.LittleEndian.Uint32(payload[1:])),
		Epoch: binary.LittleEndian.Uint64(payload[5:]),
		Addr:  string(payload[13:]),
	}, nil
}
