package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// benchCell is one cell of the protocol × pipeline-depth matrix; the JSON
// shape is what BENCH_pr7.json (and the CI artifact) carries.
type benchCell struct {
	Proto       string  `json:"proto"`
	Depth       int     `json:"pipeline_depth"`
	Ops         uint64  `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50WallUs   float64 `json:"p50_wall_us"`
	P99WallUs   float64 `json:"p99_wall_us"`
	FencesPerOp float64 `json:"fences_per_op"`
}

// runProtoCell drives one server shape with 8 loopback connections of the
// given protocol — closed-loop for text (the text protocol is strictly
// request/reply), a 16-frame pipeline window for binary — and returns the
// cell's throughput, latency percentiles, and fence rate.
func runProtoCell(t *testing.T, proto string, depth, conns, opsPerConn int) benchCell {
	t.Helper()
	s, addr := startServer(t, Config{
		Engine:        "SpecSPMT",
		Shards:        4,
		MaxBatch:      8,
		BatchWindow:   100 * time.Microsecond,
		PipelineDepth: depth,
	})
	before := s.Counters()
	lats := make([][]int64, conns) // wall ns per op, per conn
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	start := time.Now()
	for id := 0; id < conns; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialProto(addr, 5*time.Second, proto)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			lat := make([]int64, 0, opsPerConn)
			if proto == "text" {
				for i := 0; i < opsPerConn; i++ {
					k := uint64(id*1_000_000 + i%256)
					t0 := time.Now()
					var err error
					if i%2 == 0 {
						_, err = c.Set(k, uint64(i))
					} else {
						_, err = c.Get(k)
					}
					if err != nil {
						errs <- err
						return
					}
					lat = append(lat, time.Since(t0).Nanoseconds())
				}
			} else {
				const window = 16
				sendT := make([]time.Time, 0, window)
				recvOne := func() error {
					if _, err := c.RecvResult(); err != nil {
						return err
					}
					lat = append(lat, time.Since(sendT[0]).Nanoseconds())
					sendT = sendT[1:]
					return nil
				}
				for i := 0; i < opsPerConn; i++ {
					k := uint64(id*1_000_000 + i%256)
					op := Op{Kind: OpSet, Key: k, Arg1: uint64(i)}
					if i%2 == 1 {
						op = Op{Kind: OpGet, Key: k}
					}
					if err := c.SendOp(op); err != nil {
						errs <- err
						return
					}
					sendT = append(sendT, time.Now())
					for len(sendT) >= window {
						if err := recvOne(); err != nil {
							errs <- err
							return
						}
					}
				}
				for len(sendT) > 0 {
					if err := recvOne(); err != nil {
						errs <- err
						return
					}
				}
			}
			lats[id] = lat
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("proto=%s depth=%d: %v", proto, depth, err)
		}
	}
	elapsed := time.Since(start)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after := s.Counters()

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}
	ops := uint64(len(all))
	return benchCell{
		Proto:       proto,
		Depth:       depth,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50WallUs:   pct(0.50),
		P99WallUs:   pct(0.99),
		FencesPerOp: float64(after.Fences-before.Fences) / float64(ops),
	}
}

// TestProtoThroughputMatrix is the PR's headline perf gate: it sweeps
// protocol × pipeline depth on a loopback socket and asserts the zero-copy
// binary protocol with a depth-4 speculative pipeline clears 2× the ops/sec
// of the text closed-loop baseline, with a lower fence rate. Set BENCH_PR7
// to a path to also write the matrix as JSON (BENCH_pr7.json in CI).
func TestProtoThroughputMatrix(t *testing.T) {
	const conns, opsPerConn = 8, 600
	var cells []benchCell
	for _, proto := range []string{"text", "binary"} {
		for _, depth := range []int{1, 2, 4} {
			cells = append(cells, runProtoCell(t, proto, depth, conns, opsPerConn))
		}
	}
	var textBase, binPipe benchCell
	for _, c := range cells {
		t.Logf("proto=%-6s depth=%d  %8.0f ops/s  p50=%6.1fus p99=%7.1fus  fences/op=%.3f",
			c.Proto, c.Depth, c.OpsPerSec, c.P50WallUs, c.P99WallUs, c.FencesPerOp)
		if c.Proto == "text" && c.Depth == 1 {
			textBase = c
		}
		if c.Proto == "binary" && c.Depth == 4 {
			binPipe = c
		}
	}
	speedup := binPipe.OpsPerSec / textBase.OpsPerSec
	t.Logf("binary+pipelined vs text baseline: %.2fx", speedup)
	if speedup < 2.0 {
		t.Fatalf("binary depth-4 = %.0f ops/s is %.2fx text depth-1 = %.0f ops/s, want >= 2x",
			binPipe.OpsPerSec, speedup, textBase.OpsPerSec)
	}
	if binPipe.FencesPerOp >= textBase.FencesPerOp {
		t.Fatalf("pipelined fence rate %.3f not below baseline %.3f",
			binPipe.FencesPerOp, textBase.FencesPerOp)
	}
	if path := os.Getenv("BENCH_PR7"); path != "" {
		out := struct {
			Bench      string      `json:"bench"`
			Conns      int         `json:"conns"`
			OpsPerConn int         `json:"ops_per_conn"`
			Cells      []benchCell `json:"cells"`
			Speedup    float64     `json:"speedup_binary_d4_vs_text_d1"`
		}{"pr7_proto_pipeline_matrix", conns, opsPerConn, cells, speedup}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
