package server

import "testing"

// TestPipelineDepthAutoTune checks that the live pipeline window converges
// from the retire-fence stall the media model actually charges: on
// eADR-class media (dram-adr, ~60ns fences) parking batches buys nothing
// and the window must collapse to 1, while on slow media (slow-nvm, ~800ns
// fences) the window must stay open past 1 to amortize the fence. The load
// is sequential single-op applies: each apply retires its own batch (the
// worker queue drains between applies), so every batch contributes one
// stall sample and the EWMA converges deterministically on modeled time.
func TestPipelineDepthAutoTune(t *testing.T) {
	const cap = 8
	run := func(profile string) int64 {
		t.Helper()
		s, err := New(Config{
			Shards:        1,
			PipelineDepth: cap,
			Profile:       profile,
			PoolSize:      64 << 20,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var res []Result
		for k := uint64(0); k < 300; k++ {
			if _, err := s.Apply([]Op{{Kind: OpSet, Key: k, Arg1: k}}, nil, res[:0]); err != nil {
				t.Fatal(err)
			}
		}
		return s.shards[0].depth.Load()
	}

	if d := run("dram-adr"); d != 1 {
		t.Errorf("dram-adr: cheap fences must shrink the window to 1, got depth %d", d)
	}
	if d := run("slow-nvm"); d <= 1 {
		t.Errorf("slow-nvm: expensive fences must keep the window open, got depth %d", d)
	}
	if d := run("slow-nvm"); d > cap {
		t.Errorf("depth %d exceeds configured cap %d", d, cap)
	}
}
