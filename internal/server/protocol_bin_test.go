package server

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzDecodeFrame throws arbitrary bytes at the binary frame reader and the
// OPS/REPLY payload decoders: they must never panic, never hand back a
// payload larger than MaxFrameLen, and every OPS payload they accept must
// re-encode byte-for-byte through AppendOpsFrame (the wire format is
// canonical — fixed-width fields, no padding choices).
func FuzzDecodeFrame(f *testing.F) {
	ops, _ := AppendOpsFrame(nil, []Op{{Kind: OpSet, Key: 7, Arg1: 9}})
	multi, _ := AppendOpsFrame(nil, []Op{
		{Kind: OpGet, Key: 1}, {Kind: OpCAS, Key: 2, Arg1: 3, Arg2: 4}, {Kind: OpDel, Key: 5},
	})
	reply := AppendReplyFrame(nil, []Result{{Status: StatusValue, Val: 42}}, 1234)
	f.Add(ops)
	f.Add(multi)
	f.Add(reply)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                   // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})    // absurd length prefix
	f.Add([]byte("GET 7\n"))                    // text command as a frame
	f.Add(append(ops[:len(ops)-3], multi...))   // truncated + concatenated
	f.Add([]byte{5, 0, 0, 0, binFOps, 2, 1, 1}) // op count lies
	f.Add([]byte{2, 0, 0, 0, binFReply, 9})     // reply count lies
	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReaderSize(bytes.NewReader(stream), binReadBuf)
		var buf []byte
		for {
			payload, err := readFrame(br, &buf)
			if err != nil {
				return // any error cleanly ends the stream
			}
			if len(payload) == 0 || len(payload) > MaxFrameLen {
				t.Fatalf("readFrame returned %d-byte payload", len(payload))
			}
			if decoded, err := DecodeOpsFrame(payload, nil); err == nil {
				if int(payload[1]) != len(decoded) {
					t.Fatalf("decoded %d ops from a frame declaring %d", len(decoded), payload[1])
				}
				again, err := AppendOpsFrame(nil, decoded)
				if err != nil {
					t.Fatalf("re-encode of accepted ops failed: %v", err)
				}
				if !bytes.Equal(again[frameHdrLen:], payload) {
					t.Fatalf("decode/encode not canonical:\n in %x\nout %x", payload, again[frameHdrLen:])
				}
			}
			if results, modelNs, snap, err := DecodeReplyFrame(payload, nil); err == nil {
				var again []byte
				if snap {
					again = AppendSnapReplyFrame(nil, results)
					// SNAPREPLY always encodes modelNs 0; skip the
					// canonical check when the input carried another.
					if modelNs != 0 {
						continue
					}
				} else {
					again = AppendReplyFrame(nil, results, modelNs)
				}
				if !bytes.Equal(again[frameHdrLen:], payload) {
					t.Fatalf("reply decode/encode not canonical:\n in %x\nout %x", payload, again[frameHdrLen:])
				}
			}
		}
	})
}

// rawDial opens a plain TCP connection and consumes the text banner.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	br := bufio.NewReader(conn)
	banner, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(banner, "SPECPMT") {
		t.Fatalf("banner = %q, %v", banner, err)
	}
	return conn, br
}

// TestBinaryRejectsTextLine: once a connection selected the binary protocol,
// a text command is an unframeable byte soup — the server must answer with
// one ERR frame and hang up, not wedge or misparse.
func TestBinaryRejectsTextLine(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	conn, br := rawDial(t, addr)
	if _, err := conn.Write(append([]byte{BinVersion}, "GET 7\n"...)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	payload, err := readFrame(br, &buf)
	if err != nil {
		t.Fatalf("expected an ERR frame before close, got %v", err)
	}
	if payload[0] != binFErr {
		t.Fatalf("frame type = %#x, want ERR", payload[0])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection not closed after framing error: %v", err)
	}
}

// TestTextRejectsBinaryFrame: a 0xB1 byte after text commands leaves the
// rest of the stream unframeable — the server answers a text ERR and closes.
func TestTextRejectsBinaryFrame(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	conn, br := rawDial(t, addr)
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	if line, err := br.ReadString('\n'); err != nil || line != "PONG\n" {
		t.Fatalf("PING -> %q, %v", line, err)
	}
	if _, err := conn.Write(append([]byte{BinVersion}, 1, 0, 0, 0, binFPing, '\n')); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "ERR binary frame") {
		t.Fatalf("mid-stream 0xB1 -> %q, %v", line, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection not closed after protocol violation: %v", err)
	}
}
