package server

import (
	"fmt"
	"testing"

	"specpmt"
)

// TestCompactorPausesUnderLoad exercises one background-compactor tick both
// ways: with a request in flight the tick must yield (skipped_busy), and on
// an idle, fragmented heap it must compact — moving shard-map blocks and
// test fillers via the relocation hook — without disturbing committed data,
// including across a power failure.
func TestCompactorPausesUnderLoad(t *testing.T) {
	s, err := New(Config{Shards: 2, PoolSize: 64 << 20, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	oracle := map[uint64]uint64{}
	var ops []Op
	for k := uint64(0); k < 200; k++ {
		ops = append(ops, Op{Kind: OpSet, Key: k, Arg1: k + 99})
		oracle[k] = k + 99
		if len(ops) == 16 {
			if _, err := s.Apply(ops, nil, nil); err != nil {
				t.Fatal(err)
			}
			ops = ops[:0]
		}
	}
	if len(ops) > 0 {
		if _, err := s.Apply(ops, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Register a hook for the test's filler blocks — the stand-in for an
	// embedded subsystem's heap blocks (e.g. the replication cursor).
	fillers := map[specpmt.Addr]uint64{}
	s.OnRelocate(func(old, new specpmt.Addr, n int) (bool, error) {
		stamp, ok := fillers[old]
		if !ok {
			return false, nil
		}
		tx := s.pool.Thread(0).Begin()
		tx.StoreUint64(new, tx.LoadUint64(old))
		if err := tx.Commit(); err != nil {
			return true, err
		}
		delete(fillers, old)
		fillers[new] = stamp
		return true, nil
	})

	// Fragment the data heap under a Freeze (direct transactions on worker
	// threads are only safe while the workers are parked): fill spans with
	// stamped fillers, then free alternate blocks.
	const fillerSize = 2048
	var allocErr error
	err = s.Freeze(func() {
		th := s.pool.Thread(0)
		var addrs []specpmt.Addr
		for i := 0; i < 512; i++ {
			a, err := th.Alloc(fillerSize)
			if err != nil {
				allocErr = err
				return
			}
			stamp := 0xf00d0000 + uint64(i)
			tx := th.Begin()
			tx.StoreUint64(a, stamp)
			if err := tx.Commit(); err != nil {
				allocErr = err
				return
			}
			fillers[a] = stamp
			addrs = append(addrs, a)
		}
		for i, a := range addrs {
			if i%2 == 0 {
				th.Free(a, fillerSize)
				delete(fillers, a)
			}
		}
	})
	if err != nil || allocErr != nil {
		t.Fatalf("fragmenting: %v %v", err, allocErr)
	}
	h := s.pool.DataHeap()
	if fp, live := h.Footprint(), h.Live(); fp*100 <= live*int64(s.cfg.CompactFragPct) {
		t.Fatalf("setup did not fragment the heap: footprint %d live %d", fp, live)
	}

	// Under load the tick must yield without freezing anything.
	s.inflight <- struct{}{}
	s.maybeCompact()
	if got := s.compactSkipBusy.Load(); got != 1 {
		t.Fatalf("busy tick not skipped: skipped_busy=%d", got)
	}
	if got := s.compactions.Load(); got != 0 {
		t.Fatalf("compacted under load: compactions=%d", got)
	}
	<-s.inflight

	// Idle tick: fragmentation is over threshold, so this must compact.
	before := h.Footprint()
	s.maybeCompact()
	if got := s.compactions.Load(); got != 1 {
		t.Fatalf("idle tick did not compact: compactions=%d", got)
	}
	if s.compactMoved.Load() == 0 {
		t.Fatal("no blocks moved")
	}
	if s.compactFreed.Load() == 0 || h.Footprint() >= before {
		t.Fatalf("no footprint freed: %d -> %d (freed counter %d)",
			before, h.Footprint(), s.compactFreed.Load())
	}

	// Committed data and filler stamps are untouched.
	got := map[uint64]uint64{}
	err = s.Freeze(func() {
		s.RangeAll(func(_ int, k, v uint64) bool {
			got[k] = v
			return true
		})
		th := s.pool.Thread(0)
		for a, stamp := range fillers {
			if v := th.ReadUint64(a); v != stamp {
				allocErr = fmt.Errorf("filler at %d lost its stamp: %#x != %#x", a, v, stamp)
				return
			}
		}
	})
	if err != nil || allocErr != nil {
		t.Fatalf("verify: %v %v", err, allocErr)
	}
	if len(got) != len(oracle) {
		t.Fatalf("key count %d != %d", len(got), len(oracle))
	}
	for k, want := range oracle {
		if got[k] != want {
			t.Fatalf("key %d = %d, want %d", k, got[k], want)
		}
	}

	// The moves were crash-consistent: power-fail, recover, full oracle +
	// structural checks (Crash ends with SelfCheck).
	if err := s.Crash(11); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRecovered(oracle); err != nil {
		t.Fatal(err)
	}
}
