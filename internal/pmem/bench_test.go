package pmem

import (
	"testing"

	"specpmt/internal/sim"
)

// newBenchDevice builds a 1 MiB device with one core, warmed so that lazily
// allocated structures (dirty-bitmap pages) exist before measurement.
func newBenchDevice(exclusive bool) (*Device, *Core) {
	d := NewDevice(Config{Size: 1 << 20, Lat: sim.OptaneLatency()})
	d.SetExclusive(exclusive)
	c := d.NewCore()
	var buf [64]byte
	for a := Addr(0); a < 1<<20; a += 4096 {
		c.Store(a, buf[:])
		c.Flush(a, len(buf), KindData)
	}
	c.Fence()
	return d, c
}

// BenchmarkDeviceStoreFlushFence measures the simulator's inner loop: a
// 64-byte store, its CLWB, and an SFENCE.
func BenchmarkDeviceStoreFlushFence(b *testing.B) {
	for _, mode := range []struct {
		name string
		excl bool
	}{{"exclusive", true}, {"locked", false}} {
		b.Run(mode.name, func(b *testing.B) {
			_, c := newBenchDevice(mode.excl)
			var buf [64]byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := Addr((i % 1024) * 64)
				c.Store(a, buf[:])
				c.Flush(a, len(buf), KindData)
				c.Fence()
			}
		})
	}
}

// BenchmarkDeviceStore isolates the store path (dirty-bitmap set).
func BenchmarkDeviceStore(b *testing.B) {
	_, c := newBenchDevice(true)
	var buf [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Store(Addr((i%1024)*64), buf[:])
	}
}

// TestHotPathAllocs enforces the zero-allocation property of the device hot
// paths: once warm, Store, Flush, and Fence must not touch the Go heap. The
// dirty-line bitmap and the WPQ ring make this hold by construction; this
// test keeps it true.
func TestHotPathAllocs(t *testing.T) {
	for _, mode := range []struct {
		name string
		excl bool
	}{{"exclusive", true}, {"locked", false}} {
		t.Run(mode.name, func(t *testing.T) {
			_, c := newBenchDevice(mode.excl)
			var buf [64]byte
			i := 0
			op := func() {
				a := Addr((i % 1024) * 64)
				i++
				c.Store(a, buf[:])
				c.Flush(a, len(buf), KindData)
				c.Fence()
			}
			op() // warm any first-touch lazy state
			if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
				t.Fatalf("Store+Flush+Fence allocates %.1f times per op; want 0", allocs)
			}
		})
	}
}

// TestCrashReusesBitmap verifies Crash/CrashClean clear the dirty set in
// place: after a crash the same (already allocated) bitmap keeps tracking
// dirty lines, and repeated crash rounds do not reallocate it.
func TestCrashReusesBitmap(t *testing.T) {
	d := NewDevice(Config{Size: 1 << 20, Lat: sim.OptaneLatency()})
	c := d.NewCore()
	rng := sim.NewRand(7)
	var buf [64]byte
	for round := 0; round < 5; round++ {
		for i := 0; i < 64; i++ {
			c.Store(Addr(i*64), buf[:])
		}
		if got := d.DirtyLines(); got != 64 {
			t.Fatalf("round %d: DirtyLines = %d, want 64", round, got)
		}
		if round%2 == 0 {
			d.Crash(rng)
		} else {
			d.CrashClean()
		}
		if got := d.DirtyLines(); got != 0 {
			t.Fatalf("round %d: DirtyLines after crash = %d, want 0", round, got)
		}
	}
	// Crash with a warm bitmap must not allocate a replacement dirty set.
	for i := 0; i < 64; i++ {
		c.Store(Addr(i*64), buf[:])
	}
	d.CrashClean()
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 64; i++ {
			c.Store(Addr(i*64), buf[:])
		}
		d.CrashClean()
	})
	if allocs != 0 {
		t.Fatalf("store+crash loop allocates %.1f times per round; want 0", allocs)
	}
}

// TestExclusiveModePinning verifies ForceShared permanently wins over
// SetExclusive: once a component declares multi-goroutine use, the fast
// path cannot be re-enabled.
func TestExclusiveModePinning(t *testing.T) {
	d := NewDevice(Config{Size: 4096})
	if !d.locking.Load() {
		t.Fatal("new device must default to locked")
	}
	d.SetExclusive(true)
	if d.locking.Load() {
		t.Fatal("SetExclusive(true) should disable locking")
	}
	d.ForceShared()
	if !d.locking.Load() {
		t.Fatal("ForceShared must re-enable locking")
	}
	d.SetExclusive(true)
	if !d.locking.Load() {
		t.Fatal("SetExclusive(true) after ForceShared must be ignored")
	}
}
