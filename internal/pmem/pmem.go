// Package pmem simulates a byte-addressable persistent memory device with an
// explicit persistence domain, standing in for the Intel Optane platform the
// SpecPMT paper evaluates on (Table 1).
//
// The model distinguishes two memory images:
//
//   - the architectural image ("mem"): what loads observe — main memory plus
//     whatever is still sitting in volatile CPU caches;
//   - the persisted image: the persistence domain — what survives a crash.
//
// A Store updates only the architectural image and marks its cache lines
// dirty. A Flush (CLWB) captures the current line contents into the core's
// write pending queue (WPQ); entries drain into the persisted image over
// virtual time, with sequential lines draining faster than random ones, as
// on real Optane. A Fence (SFENCE) advances the core's virtual clock to the
// WPQ-empty time: this is where the paper's "thousands of cycles" persist
// barrier cost comes from, and what speculative logging amortises.
//
// Crash() models power failure: the architectural image is discarded and
// rebuilt from the persisted image, except that each dirty line may have
// been evicted (and thus persisted) before the crash with a configurable
// probability, and each un-drained WPQ entry survives with probability ½.
// Recovery code therefore has to tolerate both "made it" and "didn't make
// it" outcomes for every unfenced store — exactly the hazard persistent
// memory transactions exist to control.
//
// Hot-path discipline: Store/Load/Flush/Fence are the simulator's inner
// loop, executed millions of times per experiment. They are allocation-free
// in steady state (dirty lines live in a paged bitmap, the WPQ is a
// fixed-capacity ring) and take no mutex when the device is in exclusive
// mode (SetExclusive) — the default for harness runs, where each run owns a
// private device driven by one goroutine.
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"specpmt/internal/sim"
	"specpmt/internal/stats"
	"specpmt/internal/trace"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// PageSize is the virtual memory page size used by the hardware model.
const PageSize = 4096

// Addr is a byte offset into the simulated device.
type Addr uint64

// LineOf returns the cache line index containing addr.
func LineOf(a Addr) uint64 { return uint64(a) / LineSize }

// PageOf returns the page index containing addr.
func PageOf(a Addr) uint64 { return uint64(a) / PageSize }

// Kind tags the purpose of persistent-memory write traffic so the harness
// can split Figure 14 style numbers into log/data/GC components.
type Kind uint8

// Traffic kinds.
const (
	KindData Kind = iota
	KindLog
	KindGC
)

// Config parameterises a Device.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a line multiple.
	Size int
	// Profile is the media model: latency columns, persistence-domain
	// boundary (ADR / eADR / no-WPQ far memory), and WPQ geometry. The zero
	// value resolves to sim.DefaultProfile() (optane-adr, the paper's
	// Table 1 machine).
	Profile sim.Profile
	// Platform selects which of the profile's latency columns drives the
	// timing: PlatformHW (Table 1 simulator column, the default) or
	// PlatformSW (the measured-machine column).
	Platform sim.Platform
	// Lat, when non-zero, overrides the profile's latency table — a test
	// hook; experiments should go through Profile.
	Lat sim.Latency
	// CrashEvictProb is the probability that a dirty, unflushed line was
	// evicted (and therefore persisted) before a crash. nil means unset and
	// defaults to 0.5, which maximises adversarial coverage in crash tests;
	// EvictProb(0) requests a crash where no dirty line ever survives and
	// EvictProb(1) one where every dirty line does.
	CrashEvictProb *float64
}

// EvictProb is a convenience for Config.CrashEvictProb: it distinguishes an
// explicit probability — including 0 — from the unset (nil) default.
func EvictProb(p float64) *float64 { return &p }

// Device is the simulated persistent memory module. All exported methods are
// safe for concurrent use by multiple Cores unless SetExclusive has claimed
// single-goroutine use.
type Device struct {
	mu sync.Mutex
	// locking selects between the mutex (true, the safe default) and the
	// exclusive-mode fast path (false): a single atomic load per access
	// instead of a lock/unlock pair. Components that hand cores to other
	// goroutines pin locking on via ForceShared.
	locking      atomic.Bool
	pinnedShared atomic.Bool

	cfg       Config
	domain    sim.Domain // persistence-domain boundary from cfg.Profile
	evictProb float64    // resolved Config.CrashEvictProb
	mem       []byte
	persisted []byte
	dirty     *dirtyBitmap
	cores     []*Core
	crashes   int
	// The drain pipeline models a single memory controller shared by all
	// cores: line drains are serialised device-wide, so one core's flush
	// traffic (a background replayer, a garbage collector, asynchronous
	// data write-back) delays every other core's persist barriers. This is
	// the contention the paper describes for HOOP's GC (§7.3) and the
	// advantage SpecPMT gets from never writing data on the critical path.
	drainEnd  int64  // global time the last scheduled drain completes
	drainLine uint64 // last line scheduled, for sequential detection
	// Per-line flush ordering. Stores to mem are serialised by the device
	// lock, so the flush sequence is a total order; each WPQ entry carries
	// the sequence of the snapshot it captured, and lineSeq records the
	// newest sequence already applied to the persisted image. Without it,
	// cores applying their accepted entries lazily (or the crash disposition
	// iterating core by core) could clobber a line with a stale snapshot
	// captured by another core earlier — resurrecting pre-commit data on
	// lines written from multiple cores.
	flushSeq uint64
	lineSeq  []uint64
	tracer   *trace.Tracer
}

// NewDevice creates a device of cfg.Size bytes, fully zeroed and persisted.
func NewDevice(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: device size must be positive")
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = sim.DefaultProfile()
	}
	if cfg.Lat == (sim.Latency{}) {
		cfg.Lat = cfg.Profile.Latency(cfg.Platform)
	}
	if cfg.Lat.WPQLines <= 0 {
		cfg.Lat.WPQLines = sim.DefaultLatency().WPQLines
	}
	evict := 0.5
	if cfg.CrashEvictProb != nil {
		evict = *cfg.CrashEvictProb
	}
	size := (cfg.Size + LineSize - 1) / LineSize * LineSize
	cfg.Size = size
	d := &Device{
		cfg:       cfg,
		domain:    cfg.Profile.Domain,
		evictProb: evict,
		mem:       make([]byte, size),
		persisted: make([]byte, size),
		dirty:     newDirtyBitmap(size),
		lineSeq:   make([]uint64, size/LineSize),
		drainLine: ^uint64(0),
	}
	d.locking.Store(true)
	return d
}

// lock acquires the device mutex unless the device runs in exclusive mode.
// It returns whether the mutex was taken, so the paired unlock stays
// balanced even if the mode is reconfigured between operations. Hot paths
// use lock/unlock directly (no defer) to keep the per-access cost at a
// single atomic load.
func (d *Device) lock() bool {
	if d.locking.Load() {
		d.mu.Lock()
		return true
	}
	return false
}

func (d *Device) unlock(locked bool) {
	if locked {
		d.mu.Unlock()
	}
}

// SetExclusive declares (excl=true) that this device and every attached core
// are driven by a single goroutine, replacing the per-access mutex with one
// atomic flag check — the single-core fast path for harness runs, where each
// run owns a private device. SetExclusive(false) restores locking. The call
// is ignored once a component has pinned the device shared (ForceShared):
// multi-goroutine machinery outranks the fast-path request.
func (d *Device) SetExclusive(excl bool) {
	if excl && d.pinnedShared.Load() {
		return
	}
	d.locking.Store(!excl)
}

// ForceShared permanently re-enables device-level locking. Components that
// hand cores to other goroutines (thread pools, background reclaim daemons)
// call it before spawning, so a prior or later SetExclusive(true) can never
// strip the synchronisation they rely on.
func (d *Device) ForceShared() {
	d.pinnedShared.Store(true)
	d.locking.Store(true)
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return d.cfg.Size }

// Profile returns the media profile the device was built with. Immutable
// after NewDevice, so no lock is needed.
func (d *Device) Profile() sim.Profile { return d.cfg.Profile }

// Latency returns the operative latency table (the profile column selected
// by Config.Platform, or the explicit Config.Lat override). Layers that
// charge their own time — the hwsim CPU model — read it instead of
// hard-coding a table.
func (d *Device) Latency() sim.Latency { return d.cfg.Lat }

// Domain returns the persistence-domain boundary in force.
func (d *Device) Domain() sim.Domain { return d.domain }

// Crashes returns how many times Crash has been invoked.
func (d *Device) Crashes() int {
	locked := d.lock()
	n := d.crashes
	d.unlock(locked)
	return n
}

// NewCore attaches a new logical core (own virtual clock, own WPQ, own
// counters) to the device.
func (d *Device) NewCore() *Core {
	locked := d.lock()
	c := &Core{
		dev:   d,
		Stats: &stats.Counters{},
		wpq:   make([]wpqEntry, d.cfg.Lat.WPQLines),
	}
	d.cores = append(d.cores, c)
	if d.tracer != nil {
		c.attachTracer(d.tracer, len(d.cores)-1)
	}
	d.unlock(locked)
	return c
}

// SetTracer attaches an event tracer to the device: every existing and
// future core gets its own pair of trace tracks (execution + WPQ). A nil
// tracer — the default — disables tracing; every hook site guards with a
// nil check, so modeled times are bit-identical either way.
func (d *Device) SetTracer(tr *trace.Tracer) {
	locked := d.lock()
	d.tracer = tr
	for i, c := range d.cores {
		c.attachTracer(tr, i)
	}
	d.unlock(locked)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (d *Device) Tracer() *trace.Tracer {
	locked := d.lock()
	tr := d.tracer
	d.unlock(locked)
	return tr
}

func (d *Device) checkRange(addr Addr, n int) {
	if n < 0 || uint64(addr) > uint64(d.cfg.Size) || uint64(addr)+uint64(n) > uint64(d.cfg.Size) {
		panic(fmt.Sprintf("pmem: access out of range: addr=%d n=%d size=%d", addr, n, d.cfg.Size))
	}
}

// ReadPersisted copies n bytes of the persistence-domain image at addr into
// buf. It is a verification hook for tests and the crash harness, not a
// runtime primitive.
func (d *Device) ReadPersisted(addr Addr, buf []byte) {
	locked := d.lock()
	d.checkRange(addr, len(buf))
	copy(buf, d.persisted[addr:int(addr)+len(buf)])
	d.unlock(locked)
}

// IsDirty reports whether the line containing addr has unflushed stores.
func (d *Device) IsDirty(addr Addr) bool {
	locked := d.lock()
	ok := d.dirty.test(LineOf(addr))
	d.unlock(locked)
	return ok
}

// DirtyLines returns the number of lines with unflushed stores.
func (d *Device) DirtyLines() int {
	locked := d.lock()
	n := d.dirty.count()
	d.unlock(locked)
	return n
}

// PokePersisted writes data directly into both the architectural and the
// persisted image, bypassing caches, the WPQ, timing, and counters. It is a
// modeling hook, not a runtime primitive: the Kamino-Tx engine uses it to
// maintain its backup copy at zero cost, matching the paper's methodology
// ("our implementation omits the data copying from the main copy to the
// backup; therefore, our experiments correspond to Kamino-Tx's upper bound
// in performance", §7.1.2).
func (d *Device) PokePersisted(addr Addr, data []byte) {
	locked := d.lock()
	d.checkRange(addr, len(data))
	copy(d.mem[addr:int(addr)+len(data)], data)
	copy(d.persisted[addr:int(addr)+len(data)], data)
	d.unlock(locked)
}

// Crash simulates a power failure. Dirty lines are individually evicted
// (persisted) with the configured eviction probability; WPQ entries already
// drained by their owning core's clock persist, while still-pending entries
// survive with probability ½ (they sit between cache and ADR domain at the
// moment of failure). The architectural image is then reset to the persisted
// image, all WPQs are cleared, and every core's clock restarts at zero.
//
// Dirty lines take their eviction lottery draws in ascending line order, so
// a crash outcome is a deterministic function of the RNG seed (the former
// map-based dirty set consumed the RNG in random iteration order). The dirty
// bitmap and each core's WPQ ring are cleared in place, not reallocated —
// crash-loop harnesses reuse the same device for many rounds.
//
// After Crash returns, loads observe exactly the post-crash memory contents
// and recovery code can run on any core.
func (d *Device) Crash(rng *sim.Rand) {
	locked := d.lock()
	d.crashes++
	d.traceCrashLocked()
	// WPQ disposition first: drained entries are authoritative over the
	// cache-eviction lottery because the flush captured their data.
	for _, c := range d.cores {
		for i := 0; i < c.wpqLen; i++ {
			e := c.wpqAt(i)
			// Entries accepted into the ADR domain are persistent; a flush
			// still in flight at the failure is a coin flip.
			if e.acceptAt <= c.clock.Now() || rng.Float64() < 0.5 {
				d.applySnapshotLocked(e)
			}
		}
		c.resetWPQ()
		c.clock.Reset()
	}
	d.drainEnd = 0
	d.drainLine = ^uint64(0)
	d.dirty.forEach(func(line uint64) {
		if rng.Float64() < d.evictProb {
			copy(d.persisted[line*LineSize:(line+1)*LineSize], d.mem[line*LineSize:(line+1)*LineSize])
		}
	})
	d.dirty.clearAll()
	copy(d.mem, d.persisted)
	d.unlock(locked)
}

// CrashClean is Crash with deterministic, fully pessimistic semantics: no
// dirty line and no pending WPQ entry survives. Useful for targeted tests.
func (d *Device) CrashClean() {
	locked := d.lock()
	d.crashes++
	d.traceCrashLocked()
	for _, c := range d.cores {
		for i := 0; i < c.wpqLen; i++ {
			e := c.wpqAt(i)
			if e.acceptAt <= c.clock.Now() {
				d.applySnapshotLocked(e)
			}
		}
		c.resetWPQ()
		c.clock.Reset()
	}
	d.drainEnd = 0
	d.drainLine = ^uint64(0)
	d.dirty.clearAll()
	copy(d.mem, d.persisted)
	d.unlock(locked)
}

// traceCrashLocked reports a power failure to the tracer at the latest core
// clock, closing open transaction spans and re-basing the trace timeline
// for the post-crash epoch. Caller holds d.mu.
func (d *Device) traceCrashLocked() {
	if d.tracer == nil {
		return
	}
	maxNow := int64(0)
	for _, c := range d.cores {
		if now := c.clock.Now(); now > maxNow {
			maxNow = now
		}
	}
	d.tracer.Crash(maxNow)
}

// wpqEntry is a flushed line waiting to drain into the persistence domain.
type wpqEntry struct {
	line     uint64
	data     [LineSize]byte
	acceptAt int64  // accepted into the ADR persistence domain (WPQ)
	drainAt  int64  // written back to media (frees the WPQ slot)
	gseq     uint64 // device-wide flush order of the captured snapshot
	kind     Kind
	seq      bool // drained at the sequential (contiguous-line) rate
}

// applySnapshotLocked copies a WPQ snapshot into the persisted image unless a
// globally newer snapshot of the same line has already been applied. Caller
// holds d.mu.
func (d *Device) applySnapshotLocked(e *wpqEntry) {
	if e.gseq <= d.lineSeq[e.line] {
		return
	}
	copy(d.persisted[e.line*LineSize:(e.line+1)*LineSize], e.data[:])
	d.lineSeq[e.line] = e.gseq
}

// Core is one logical CPU core attached to a Device: a virtual clock, a
// private write pending queue, and private counters. A Core must be used by
// a single goroutine at a time.
type Core struct {
	dev   *Device
	clock sim.Clock
	Stats *stats.Counters

	// The WPQ is a fixed-capacity ring of cfg.Lat.WPQLines entries —
	// enqueueLocked stalls when it is full, so it can never grow, and the
	// ring is allocated once per core instead of append/compact churn on
	// every flush and drain.
	wpq      []wpqEntry
	wpqHead  int // index of the oldest pending entry
	wpqLen   int // live entries
	nApplied int // prefix (from head) already applied to the persisted image

	trc        *trace.Tracer // nil = tracing off (the hot-path default)
	track      int           // execution track (tx/flush/fence events)
	drainTrack int           // WPQ track (drain events, depth counter)
}

// wpqAt returns the i-th oldest pending entry (0 = front of the queue).
func (c *Core) wpqAt(i int) *wpqEntry { return &c.wpq[(c.wpqHead+i)%len(c.wpq)] }

// resetWPQ empties the ring in place.
func (c *Core) resetWPQ() {
	c.wpqHead, c.wpqLen, c.nApplied = 0, 0, 0
}

// attachTracer registers this core's trace tracks. Caller holds d.mu.
func (c *Core) attachTracer(tr *trace.Tracer, i int) {
	c.trc = tr
	c.track = tr.RegisterTrack(fmt.Sprintf("core%d", i))
	c.drainTrack = tr.RegisterTrack(fmt.Sprintf("core%d.wpq", i))
}

// Device returns the device this core is attached to.
func (c *Core) Device() *Device { return c.dev }

// Tracer returns the tracer attached to this core's device (nil when
// tracing is off). Engines use it via the Trace* helpers below.
func (c *Core) Tracer() *trace.Tracer { return c.trc }

// Track returns this core's execution track id in the tracer.
func (c *Core) Track() int { return c.track }

// SetTrackName labels this core's tracks in trace exports; engines call it
// once they know the core's role ("app", "reclaimer", "replayer").
func (c *Core) SetTrackName(name string) {
	if c.trc != nil {
		c.trc.NameTrack(c.track, name)
		c.trc.NameTrack(c.drainTrack, name+".wpq")
	}
}

// TraceTxBegin reports a transaction begin on this core.
func (c *Core) TraceTxBegin() {
	if c.trc != nil {
		c.trc.TxBegin(c.track, c.clock.Now())
	}
}

// TraceTxCommit reports a commit whose critical path started at startNs
// (this core's clock), with the transaction's store count and encoded log
// record size (0 when no record was written).
func (c *Core) TraceTxCommit(startNs int64, stores, logBytes int) {
	if c.trc != nil {
		c.trc.TxCommit(c.track, startNs, c.clock.Now(), stores, logBytes)
	}
}

// TraceTxAbort reports a transaction abort on this core.
func (c *Core) TraceTxAbort() {
	if c.trc != nil {
		c.trc.TxAbort(c.track, c.clock.Now())
	}
}

// TraceLogAppend reports a log-record append of the given encoded size;
// call it after the Stats live-log gauge has been adjusted so the sampled
// gauge is current.
func (c *Core) TraceLogAppend(bytes int) {
	if c.trc != nil {
		c.trc.LogAppend(c.track, c.clock.Now(), bytes, c.Stats.LogBytesLive)
	}
}

// TraceLiveLog samples the live-log gauge outside an append (invalidation,
// reclamation).
func (c *Core) TraceLiveLog() {
	if c.trc != nil {
		c.trc.LiveLog(c.track, c.clock.Now(), c.Stats.LogBytesLive)
	}
}

// TraceReclaim reports a reclamation cycle that started at startNs on this
// core, dropped entries stale entries, and released bytes live-log bytes.
func (c *Core) TraceReclaim(startNs int64, entries uint64, bytes int64) {
	if c.trc != nil {
		c.trc.Reclaim(c.track, startNs, c.clock.Now(), entries, bytes)
	}
}

// TraceRecoverSpan reports a post-crash recovery that started at startNs on
// this core.
func (c *Core) TraceRecoverSpan(startNs int64) {
	if c.trc != nil {
		c.trc.RecoverSpan(c.track, startNs, c.clock.Now())
	}
}

// Now returns the core's virtual time in nanoseconds.
func (c *Core) Now() int64 { return c.clock.Now() }

// Compute models ns nanoseconds of CPU work. The WPQ drains in the
// background during compute time — this is why workloads with long
// inter-transaction compute phases (kmeans-low) see small gains from
// asynchronous persistence.
func (c *Core) Compute(ns int64) {
	c.clock.Advance(ns)
	locked := c.dev.lock()
	c.drainUntilLocked(c.clock.Now())
	c.dev.unlock(locked)
}

// Load copies n=len(buf) bytes at addr into buf, charging cache-read cost.
func (c *Core) Load(addr Addr, buf []byte) {
	d := c.dev
	locked := d.lock()
	d.checkRange(addr, len(buf))
	copy(buf, d.mem[addr:int(addr)+len(buf)])
	d.unlock(locked)
	lines := int64(linesSpanned(addr, len(buf)))
	c.clock.Advance(lines * d.cfg.Lat.CacheRead)
	c.Stats.Loads++
	c.Stats.LoadBytes += uint64(len(buf))
}

// Store writes data at addr in the architectural image and marks the touched
// lines dirty. The write is NOT persistent until flushed and fenced (or
// until a lucky eviction at crash time) — unless the device runs in eADR
// mode, where the caches are inside the persistence domain.
func (c *Core) Store(addr Addr, data []byte) {
	d := c.dev
	locked := d.lock()
	d.checkRange(addr, len(data))
	copy(d.mem[addr:int(addr)+len(data)], data)
	if d.domain == sim.DomainEADR {
		copy(d.persisted[addr:int(addr)+len(data)], data)
	} else if len(data) > 0 {
		first, last := LineOf(addr), LineOf(addr+Addr(len(data)-1))
		for l := first; l <= last; l++ {
			d.dirty.set(l)
		}
	}
	d.unlock(locked)
	lines := int64(linesSpanned(addr, len(data)))
	c.clock.Advance(lines * d.cfg.Lat.CacheWrite)
	c.Stats.Stores++
	c.Stats.StoreBytes += uint64(len(data))
}

// LoadRaw and StoreRaw are zero-latency variants for layers (the hardware
// model) that account time themselves but still need correct dirty-line and
// persistence bookkeeping.
func (c *Core) LoadRaw(addr Addr, buf []byte) {
	d := c.dev
	locked := d.lock()
	d.checkRange(addr, len(buf))
	copy(buf, d.mem[addr:int(addr)+len(buf)])
	d.unlock(locked)
}

// StoreRaw is the zero-latency counterpart of Store.
func (c *Core) StoreRaw(addr Addr, data []byte) {
	d := c.dev
	locked := d.lock()
	d.checkRange(addr, len(data))
	copy(d.mem[addr:int(addr)+len(data)], data)
	if d.domain == sim.DomainEADR {
		copy(d.persisted[addr:int(addr)+len(data)], data)
	} else if len(data) > 0 {
		first, last := LineOf(addr), LineOf(addr+Addr(len(data)-1))
		for l := first; l <= last; l++ {
			d.dirty.set(l)
		}
	}
	d.unlock(locked)
}

// LoadUint64 reads a little-endian uint64 at addr.
func (c *Core) LoadUint64(addr Addr) uint64 {
	var b [8]byte
	c.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreUint64 writes a little-endian uint64 at addr.
func (c *Core) StoreUint64(addr Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.Store(addr, b[:])
}

// LoadUint32 reads a little-endian uint32 at addr.
func (c *Core) LoadUint32(addr Addr) uint32 {
	var b [4]byte
	c.Load(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// StoreUint32 writes a little-endian uint32 at addr.
func (c *Core) StoreUint32(addr Addr, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.Store(addr, b[:])
}

// Flush issues CLWB for every line overlapping [addr, addr+n): the current
// contents of each line are captured into the WPQ and the lines become
// clean. Flush does not wait for the drain; only Fence (or elapsed compute
// time) does. Traffic is attributed to kind.
func (c *Core) Flush(addr Addr, n int, kind Kind) {
	if n <= 0 {
		return
	}
	d := c.dev
	start := c.clock.Now()
	if d.domain == sim.DomainEADR {
		// The line is already in the persistence domain; CLWB degenerates
		// to a hint. Issue cost only.
		c.clock.Advance(d.cfg.Lat.FlushIssue)
		c.Stats.Flushes++
		if c.trc != nil {
			c.trc.Flush(c.track, start, c.clock.Now(), linesSpanned(addr, n), uint8(kind), 0)
		}
		return
	}
	locked := d.lock()
	d.checkRange(addr, n)
	first, last := LineOf(addr), LineOf(addr+Addr(n-1))
	for l := first; l <= last; l++ {
		c.clock.Advance(d.cfg.Lat.FlushIssue)
		c.Stats.Flushes++
		c.enqueueLocked(l, kind)
		d.dirty.clear(l)
	}
	depth := c.wpqLen
	d.unlock(locked)
	if c.trc != nil {
		c.trc.Flush(c.track, start, c.clock.Now(), int(last-first+1), uint8(kind), depth)
	}
}

// enqueueLocked places line l into the WPQ ring, blocking (advancing the
// clock) if the queue is full. Caller holds d.mu.
func (c *Core) enqueueLocked(l uint64, kind Kind) {
	d := c.dev
	c.drainUntilLocked(c.clock.Now())
	if c.wpqLen >= len(c.wpq) {
		// Queue full: stall until the oldest entry drains.
		c.clock.AdvanceTo(c.wpqAt(0).drainAt)
		c.drainUntilLocked(c.clock.Now())
	}
	e := c.wpqAt(c.wpqLen)
	e.line = l
	e.kind = kind
	e.seq = false
	d.flushSeq++
	e.gseq = d.flushSeq
	copy(e.data[:], d.mem[l*LineSize:(l+1)*LineSize])
	cost := d.cfg.Lat.PMWriteRandom
	if d.drainLine != ^uint64(0) && l == d.drainLine+1 {
		cost = d.cfg.Lat.PMWriteSeq
		e.seq = true
		c.Stats.SeqLines++
	} else {
		c.Stats.RandLines++
	}
	// Drains are scheduled on the device-wide pipeline: they start no
	// earlier than the issuing core's present and no earlier than the end
	// of the previously scheduled drain, whichever core issued it.
	e.acceptAt = c.clock.Now() + d.cfg.Lat.AcceptNs
	start := c.clock.Now()
	if d.drainEnd > start {
		start = d.drainEnd
	}
	e.drainAt = start + cost
	if e.drainAt < e.acceptAt {
		e.drainAt = e.acceptAt
	}
	if d.domain == sim.DomainFar {
		// No power-fail-safe write queue: a line is durable only once the
		// media-level drain completes, so acceptance and drain coincide.
		// Fence (which waits on acceptAt) therefore stalls until write-back.
		e.acceptAt = e.drainAt
	}
	d.drainEnd = e.drainAt
	d.drainLine = l
	c.wpqLen++
	if c.trc != nil {
		c.trc.WPQSample(c.drainTrack, c.clock.Now(), c.wpqLen)
	}
}

// drainUntilLocked advances WPQ bookkeeping to time now: entries whose
// acceptance has completed become part of the persistence domain (applied to
// the persisted image), and entries whose media write-back has completed
// free their ring slot.
func (c *Core) drainUntilLocked(now int64) {
	d := c.dev
	for ; c.nApplied < c.wpqLen; c.nApplied++ {
		e := c.wpqAt(c.nApplied)
		if e.acceptAt > now {
			break
		}
		d.applySnapshotLocked(e)
		c.accountTraffic(e.kind)
		if c.trc != nil {
			c.trc.Drain(c.drainTrack, e.acceptAt, e.drainAt, e.line, e.seq, uint8(e.kind))
		}
	}
	popped := 0
	for popped < c.wpqLen && c.wpqAt(popped).drainAt <= now {
		popped++
	}
	if popped > 0 {
		c.wpqHead = (c.wpqHead + popped) % len(c.wpq)
		c.wpqLen -= popped
		c.nApplied -= popped
		if c.trc != nil {
			c.trc.WPQSample(c.drainTrack, now, c.wpqLen)
		}
	}
}

func (c *Core) accountTraffic(kind Kind) {
	c.Stats.PMWriteBytes += LineSize
	switch kind {
	case KindLog:
		c.Stats.PMLogBytes += LineSize
	case KindGC:
		c.Stats.PMGCBytes += LineSize
	default:
		c.Stats.PMDataBytes += LineSize
	}
}

// Fence issues SFENCE: the clock advances until every outstanding flush has
// been ACCEPTED into the persistence domain — the persist barrier whose
// per-update use SpecPMT eliminates. Under ADR acceptance is the WPQ's and
// the media-level drain continues asynchronously, costing time only through
// WPQ backpressure on later flushes; under a far-memory domain (no
// power-fail-safe queue) acceptance IS the media drain, so fences stall
// deeper; under eADR there is never anything to wait for.
func (c *Core) Fence() {
	d := c.dev
	start := c.clock.Now()
	locked := d.lock()
	depth := c.wpqLen
	for i := 0; i < c.wpqLen; i++ {
		c.clock.AdvanceTo(c.wpqAt(i).acceptAt)
	}
	c.drainUntilLocked(c.clock.Now())
	d.unlock(locked)
	c.clock.Advance(d.cfg.Lat.FenceIssue)
	c.Stats.Fences++
	c.Stats.FenceNs += uint64(c.clock.Now() - start)
	if c.trc != nil {
		c.trc.Fence(c.track, start, c.clock.Now(), depth)
	}
}

// OrderPoint marks every currently pending WPQ entry of this core as
// accepted into the persistence domain immediately, without advancing the
// clock or counting a fence. It is the modeling hook for ISA proposals that
// enforce persist ordering in hardware without stalling the pipeline — the
// dependence tracking of EDE and the ordered log path of HOOP ("non-fence
// ordering", Table 3). Entries keep their media drain times, so WPQ
// backpressure is unaffected; only the ordering/durability guarantee is
// immediate.
func (c *Core) OrderPoint() {
	d := c.dev
	locked := d.lock()
	now := c.clock.Now()
	for i := 0; i < c.wpqLen; i++ {
		if e := c.wpqAt(i); e.acceptAt > now {
			e.acceptAt = now
		}
	}
	c.drainUntilLocked(now)
	d.unlock(locked)
}

// PersistBarrier is the common CLWB-range + SFENCE sequence.
func (c *Core) PersistBarrier(addr Addr, n int, kind Kind) {
	c.Flush(addr, n, kind)
	c.Fence()
}

// SyncTo advances this core's clock to time t (a barrier with other cores:
// multi-core experiments synchronise clocks between rounds so the shared
// drain pipeline sees a consistent notion of time).
func (c *Core) SyncTo(t int64) {
	c.clock.AdvanceTo(t)
	locked := c.dev.lock()
	c.drainUntilLocked(c.clock.Now())
	c.dev.unlock(locked)
}

// WPQDepth returns the number of lines currently pending in this core's WPQ.
func (c *Core) WPQDepth() int {
	locked := c.dev.lock()
	c.drainUntilLocked(c.clock.Now())
	n := c.wpqLen
	c.dev.unlock(locked)
	return n
}

// linesSpanned counts the cache lines overlapped by [addr, addr+n).
func linesSpanned(addr Addr, n int) int {
	if n <= 0 {
		return 0
	}
	return int(LineOf(addr+Addr(n-1)) - LineOf(addr) + 1)
}
