package pmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"specpmt/internal/sim"
)

func newTestDevice(size int) (*Device, *Core) {
	d := NewDevice(Config{Size: size})
	return d, d.NewCore()
}

func TestStoreNotPersistedWithoutFlush(t *testing.T) {
	d, c := newTestDevice(4096)
	c.Store(128, []byte{1, 2, 3, 4})
	var got [4]byte
	c.Load(128, got[:])
	if got != [4]byte{1, 2, 3, 4} {
		t.Fatalf("architectural image wrong: %v", got)
	}
	var p [4]byte
	d.ReadPersisted(128, p[:])
	if p != [4]byte{} {
		t.Fatalf("unflushed store reached persistence domain: %v", p)
	}
	if !d.IsDirty(128) {
		t.Fatal("line should be dirty after store")
	}
}

func TestFlushFencePersists(t *testing.T) {
	d, c := newTestDevice(4096)
	c.Store(128, []byte{9, 8, 7})
	c.Flush(128, 3, KindData)
	if d.IsDirty(128) {
		t.Fatal("line should be clean after flush")
	}
	c.Fence()
	var p [3]byte
	d.ReadPersisted(128, p[:])
	if p != [3]byte{9, 8, 7} {
		t.Fatalf("flush+fence did not persist: %v", p)
	}
}

func TestFenceWaitsForDrain(t *testing.T) {
	_, c := newTestDevice(64 * 1024)
	// Flush 20 random lines; fence must wait roughly 20 * PMWriteRandom.
	for i := 0; i < 20; i++ {
		c.Store(Addr(i*1024), []byte{1})
		c.Flush(Addr(i*1024), 1, KindData)
	}
	c.Fence()
	lat := sim.DefaultLatency()
	// The WPQ holds 8 lines; issuing 20 random-line flushes must stall on
	// media write-back for at least the 12 overflow lines.
	min := int64(20-lat.WPQLines) * lat.PMWriteRandom
	if c.Now() < min {
		t.Fatalf("persisting 20 random lines took %dns; want >= %dns (backpressure)", c.Now(), min)
	}
}

func TestComputeDrainsWPQ(t *testing.T) {
	_, c := newTestDevice(64 * 1024)
	for i := 0; i < 8; i++ {
		c.Store(Addr(i*1024), []byte{1})
		c.Flush(Addr(i*1024), 1, KindData)
	}
	// Long compute lets the WPQ drain in the background.
	c.Compute(1_000_000)
	before := c.Now()
	c.Fence()
	wait := c.Now() - before
	if wait > sim.DefaultLatency().FenceIssue {
		t.Fatalf("fence after long compute should be free, waited %dns", wait)
	}
}

func TestSequentialDrainCheaperThanRandom(t *testing.T) {
	lat := sim.DefaultLatency()
	seq := NewDevice(Config{Size: 1 << 20})
	cs := seq.NewCore()
	for i := 0; i < 64; i++ {
		cs.Store(Addr(i*LineSize), []byte{1})
		cs.Flush(Addr(i*LineSize), 1, KindLog)
	}
	cs.Fence()
	rnd := NewDevice(Config{Size: 1 << 20})
	cr := rnd.NewCore()
	for i := 0; i < 64; i++ {
		cr.Store(Addr((i*37%64)*257*LineSize%(1<<20-LineSize)), []byte{1})
		cr.Flush(Addr((i*37%64)*257*LineSize%(1<<20-LineSize)), 1, KindData)
	}
	cr.Fence()
	if cs.Now() >= cr.Now() {
		t.Fatalf("sequential flushes (%dns) should be faster than random (%dns)", cs.Now(), cr.Now())
	}
	if cs.Stats.SeqLines < 60 {
		t.Fatalf("sequential pattern not detected: seq=%d rand=%d", cs.Stats.SeqLines, cs.Stats.RandLines)
	}
	_ = lat
}

func TestWPQBackpressure(t *testing.T) {
	_, c := newTestDevice(1 << 20)
	lat := sim.DefaultLatency()
	// Flushing far more lines than the WPQ capacity must stall the core.
	n := 64
	for i := 0; i < n; i++ {
		a := Addr(i * 4096)
		c.Store(a, []byte{1})
		c.Flush(a, 1, KindData)
	}
	// Even before the fence, issuing flushes beyond capacity costs drain time.
	if c.Now() < int64(n-lat.WPQLines)*lat.PMWriteRandom {
		t.Fatalf("no WPQ backpressure observed: now=%dns", c.Now())
	}
}

func TestCrashCleanDropsDirtyKeepsFenced(t *testing.T) {
	d, c := newTestDevice(4096)
	c.Store(0, []byte{0xAA})
	c.Flush(0, 1, KindData)
	c.Fence()
	c.Store(64, []byte{0xBB}) // never flushed
	d.CrashClean()
	var b [1]byte
	c.Load(0, b[:])
	if b[0] != 0xAA {
		t.Fatalf("fenced data lost at crash: %x", b[0])
	}
	c.Load(64, b[:])
	if b[0] != 0 {
		t.Fatalf("dirty line survived CrashClean: %x", b[0])
	}
	if d.DirtyLines() != 0 {
		t.Fatal("dirty set should be empty after crash")
	}
	if d.Crashes() != 1 {
		t.Fatalf("crash count = %d", d.Crashes())
	}
}

func TestCrashEvictionProbabilities(t *testing.T) {
	// With eviction probability 1, every dirty line persists.
	d := NewDevice(Config{Size: 4096, CrashEvictProb: EvictProb(1.0)})
	c := d.NewCore()
	c.Store(64, []byte{0xCC})
	d.Crash(sim.NewRand(1))
	var b [1]byte
	c.Load(64, b[:])
	if b[0] != 0xCC {
		t.Fatalf("CrashEvictProb=1 should persist dirty lines, got %x", b[0])
	}
	// With a tiny probability, over many trials at least one line is lost.
	lost := false
	for trial := 0; trial < 20 && !lost; trial++ {
		d2 := NewDevice(Config{Size: 4096, CrashEvictProb: EvictProb(0.01)})
		c2 := d2.NewCore()
		c2.Store(64, []byte{0xDD})
		d2.Crash(sim.NewRand(uint64(trial)))
		c2.Load(64, b[:])
		lost = b[0] == 0
	}
	if !lost {
		t.Fatal("CrashEvictProb=0.01 never dropped a dirty line in 20 trials")
	}
}

func TestCrashResetsClocksAndWPQ(t *testing.T) {
	d, c := newTestDevice(1 << 16)
	c.Store(0, []byte{1})
	c.Flush(0, 1, KindData)
	c.Compute(500)
	d.Crash(sim.NewRand(1))
	if c.Now() != 0 {
		t.Fatalf("clock not reset by crash: %d", c.Now())
	}
	if c.WPQDepth() != 0 {
		t.Fatalf("WPQ not cleared by crash: %d", c.WPQDepth())
	}
}

func TestDrainedWPQEntriesSurviveCrash(t *testing.T) {
	d, c := newTestDevice(4096)
	c.Store(0, []byte{0x77})
	c.Flush(0, 1, KindData)
	c.Compute(10_000) // entry drains during compute
	d.CrashClean()
	var b [1]byte
	c.Load(0, b[:])
	if b[0] != 0x77 {
		t.Fatal("drained WPQ entry should persist even without a fence")
	}
}

func TestTypedAccessorsRoundTrip(t *testing.T) {
	f := func(v64 uint64, v32 uint32) bool {
		_, c := newTestDevice(4096)
		c.StoreUint64(8, v64)
		c.StoreUint32(256, v32)
		return c.LoadUint64(8) == v64 && c.LoadUint32(256) == v32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStoreArbitraryBytes(t *testing.T) {
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 || len(data) > 512 {
			return true
		}
		_, c := newTestDevice(1 << 16)
		// Keep the whole store inside the device; an overrun is checked
		// separately by TestOutOfRangePanics.
		addr := Addr(int(off) % (1<<16 - len(data) + 1))
		c.Store(addr, data)
		got := make([]byte, len(data))
		c.Load(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, c := newTestDevice(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range store should panic")
		}
	}()
	c.Store(120, make([]byte, 16))
}

func TestFlushCapturesStoreOrder(t *testing.T) {
	// A line flushed, re-stored, and re-flushed must persist the final value.
	d, c := newTestDevice(4096)
	c.Store(0, []byte{1})
	c.Flush(0, 1, KindData)
	c.Store(0, []byte{2})
	c.Flush(0, 1, KindData)
	c.Fence()
	var p [1]byte
	d.ReadPersisted(0, p[:])
	if p[0] != 2 {
		t.Fatalf("persisted %d, want final value 2", p[0])
	}
}

func TestFlushWithoutFenceIsAtRisk(t *testing.T) {
	// An un-drained, un-fenced WPQ entry may be lost at crash. Find a seed
	// losing it and a seed keeping it: both outcomes must be possible.
	outcomes := map[byte]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		d, c := newTestDevice(4096)
		c.Store(0, []byte{0x55})
		c.Flush(0, 1, KindData) // no fence, no compute: still pending
		d.Crash(sim.NewRand(seed))
		var b [1]byte
		c.Load(0, b[:])
		outcomes[b[0]] = true
	}
	if !outcomes[0x55] || !outcomes[0] {
		t.Fatalf("pending WPQ entry should be a coin flip at crash; outcomes=%v", outcomes)
	}
}

func TestTrafficAccounting(t *testing.T) {
	_, c := newTestDevice(1 << 16)
	c.Store(0, []byte{1})
	c.Flush(0, 1, KindLog)
	c.Store(4096, []byte{1})
	c.Flush(4096, 1, KindData)
	c.Fence()
	if c.Stats.PMLogBytes != LineSize || c.Stats.PMDataBytes != LineSize {
		t.Fatalf("traffic split wrong: log=%d data=%d", c.Stats.PMLogBytes, c.Stats.PMDataBytes)
	}
	if c.Stats.PMWriteBytes != 2*LineSize {
		t.Fatalf("total traffic wrong: %d", c.Stats.PMWriteBytes)
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr Addr
		n    int
		want int
	}{
		{0, 1, 1}, {0, 64, 1}, {0, 65, 2}, {63, 2, 2}, {63, 1, 1}, {10, 0, 0}, {128, 128, 2},
	}
	for _, tc := range cases {
		if got := linesSpanned(tc.addr, tc.n); got != tc.want {
			t.Errorf("linesSpanned(%d,%d)=%d want %d", tc.addr, tc.n, got, tc.want)
		}
	}
}

func TestLinesSpannedProperty(t *testing.T) {
	f := func(addr uint16, n uint8) bool {
		if n == 0 {
			return linesSpanned(Addr(addr), 0) == 0
		}
		got := linesSpanned(Addr(addr), int(n))
		// Count by brute force.
		seen := map[uint64]bool{}
		for i := 0; i < int(n); i++ {
			seen[LineOf(Addr(addr)+Addr(i))] = true
		}
		return got == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCoresIndependentClocks(t *testing.T) {
	d := NewDevice(Config{Size: 1 << 16})
	c1, c2 := d.NewCore(), d.NewCore()
	c1.Store(0, []byte{1})
	c1.Flush(0, 1, KindData)
	c1.Fence()
	if c2.Now() != 0 {
		t.Fatalf("core 2 clock moved by core 1 activity: %d", c2.Now())
	}
	// Both cores see each other's architectural writes.
	var b [1]byte
	c2.Load(0, b[:])
	if b[0] != 1 {
		t.Fatal("cores must share the architectural image")
	}
}

func TestPersistBarrier(t *testing.T) {
	d, c := newTestDevice(4096)
	c.Store(0, []byte{0x42})
	c.PersistBarrier(0, 1, KindData)
	var p [1]byte
	d.ReadPersisted(0, p[:])
	if p[0] != 0x42 {
		t.Fatal("PersistBarrier did not persist")
	}
	if c.Stats.Fences != 1 || c.Stats.Flushes != 1 {
		t.Fatalf("barrier counters wrong: %+v", c.Stats)
	}
}

func TestEADRStoresArePersistent(t *testing.T) {
	d := NewDevice(Config{Size: 4096, Profile: sim.MustProfile("optane-eadr")})
	c := d.NewCore()
	c.Store(0, []byte{0xAB})
	d.CrashClean()
	var b [1]byte
	c.Load(0, b[:])
	if b[0] != 0xAB {
		t.Fatal("eADR store lost at crash: the cache is in the persistence domain")
	}
}

func TestEADRFenceIsCheap(t *testing.T) {
	d := NewDevice(Config{Size: 1 << 20, Profile: sim.MustProfile("optane-eadr")})
	c := d.NewCore()
	for i := 0; i < 64; i++ {
		a := Addr(i * 4096)
		c.Store(a, []byte{1})
		c.Flush(a, 1, KindData)
	}
	c.Fence()
	lat := sim.DefaultLatency()
	budget := 64*lat.FlushIssue + lat.FenceIssue + 64*lat.CacheWrite + 64
	if c.Now() > budget {
		t.Fatalf("eADR flush+fence cost %dns; should be issue-only (<=%dns)", c.Now(), budget)
	}
}

func TestEADREnginesStillAtomic(t *testing.T) {
	// Even with persistent caches, uncommitted in-place updates persist and
	// must still be revoked by recovery — eADR removes flushes, not the
	// need for crash atomicity.
	d := NewDevice(Config{Size: 4096, Profile: sim.MustProfile("optane-eadr")})
	c := d.NewCore()
	c.Store(64, []byte{7})
	d.Crash(sim.NewRand(1))
	var b [1]byte
	c.Load(64, b[:])
	if b[0] != 7 {
		t.Fatal("eADR uncommitted store should persist (that is the hazard)")
	}
}

func TestConcurrentCoresStress(t *testing.T) {
	// Many cores hammering the device concurrently: the device mutex must
	// keep the shared images and the global drain pipeline consistent
	// (validated under -race in CI-style runs).
	d := NewDevice(Config{Size: 1 << 20})
	const workers = 8
	done := make(chan bool, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			c := d.NewCore()
			base := Addr(w * 64 * 1024)
			var b [8]byte
			for i := 0; i < 2000; i++ {
				v := uint64(w*1_000_000 + i)
				for j := 0; j < 8; j++ {
					b[j] = byte(v >> (8 * j))
				}
				c.Store(base+Addr((i%128)*64), b[:])
				if i%16 == 0 {
					c.Flush(base+Addr((i%128)*64), 8, KindData)
					c.Fence()
				}
				if i%64 == 0 {
					c.Compute(100)
				}
			}
			done <- true
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	// Each worker's last fenced line must hold its own value (regions are
	// disjoint).
	for w := 0; w < workers; w++ {
		c := d.NewCore()
		last := 1984 // last i%16==0 index below 2000
		got := c.LoadUint64(Addr(w*64*1024) + Addr((last%128)*64))
		want := uint64(w*1_000_000 + last)
		if got != want {
			t.Fatalf("worker %d: got %d want %d", w, got, want)
		}
	}
}

func TestCrashEvictProbZeroNeverEvicts(t *testing.T) {
	// Regression: an explicit probability of 0 used to be indistinguishable
	// from "unset" and was silently rewritten to the 0.5 default, making a
	// "never evict dirty lines" crash impossible to request.
	for seed := uint64(1); seed <= 50; seed++ {
		d := NewDevice(Config{Size: 1 << 16, CrashEvictProb: EvictProb(0)})
		c := d.NewCore()
		for i := 0; i < 32; i++ {
			c.Store(Addr(i*LineSize), []byte{0xEE})
		}
		d.Crash(sim.NewRand(seed))
		var b [1]byte
		for i := 0; i < 32; i++ {
			c.Load(Addr(i*LineSize), b[:])
			if b[0] != 0 {
				t.Fatalf("seed %d: dirty line %d survived a prob-0 crash", seed, i)
			}
		}
	}
}

func TestCrashEvictProbOneAlwaysEvicts(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		d := NewDevice(Config{Size: 1 << 16, CrashEvictProb: EvictProb(1)})
		c := d.NewCore()
		for i := 0; i < 32; i++ {
			c.Store(Addr(i*LineSize), []byte{0xEE})
		}
		d.Crash(sim.NewRand(seed))
		var b [1]byte
		for i := 0; i < 32; i++ {
			c.Load(Addr(i*LineSize), b[:])
			if b[0] != 0xEE {
				t.Fatalf("seed %d: dirty line %d lost under a prob-1 crash", seed, i)
			}
		}
	}
}

func TestCrashEvictProbUnsetDefaults(t *testing.T) {
	// nil still means the adversarial 0.5 default: over enough lines a crash
	// both keeps and drops some.
	d := NewDevice(Config{Size: 1 << 16})
	if d.evictProb != 0.5 {
		t.Fatalf("unset CrashEvictProb resolved to %v, want 0.5", d.evictProb)
	}
	c := d.NewCore()
	for i := 0; i < 256; i++ {
		c.Store(Addr(i*LineSize), []byte{0xEE})
	}
	d.Crash(sim.NewRand(3))
	kept, lost := 0, 0
	var b [1]byte
	for i := 0; i < 256; i++ {
		c.Load(Addr(i*LineSize), b[:])
		if b[0] == 0xEE {
			kept++
		} else {
			lost++
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("0.5 eviction lottery degenerate: kept=%d lost=%d", kept, lost)
	}
}

func TestProfileDrivesDeviceTiming(t *testing.T) {
	// The device resolves its latency table through (Profile, Platform)
	// instead of a hand-passed sim.Latency.
	d := NewDevice(Config{Size: 4096, Profile: sim.MustProfile("optane-adr"), Platform: sim.PlatformSW})
	if got, want := d.Latency(), sim.OptaneLatency(); got != want {
		t.Fatalf("SW column = %+v, want OptaneLatency %+v", got, want)
	}
	d = NewDevice(Config{Size: 4096})
	if got, want := d.Latency(), sim.DefaultLatency(); got != want {
		t.Fatalf("default device latency = %+v, want Table 1 %+v", got, want)
	}
	if d.Profile().Name != sim.DefaultProfileName {
		t.Fatalf("default device profile = %q", d.Profile().Name)
	}
	if d.Domain() != sim.DomainADR {
		t.Fatalf("default domain = %v, want ADR", d.Domain())
	}
}

func TestFarDomainFenceWaitsForMediaDrain(t *testing.T) {
	// Under a no-WPQ far-memory domain a fence must wait for the media
	// drain, not just WPQ acceptance — strictly deeper stalls than ADR for
	// the same latency table.
	lat := sim.DefaultLatency()
	adr := NewDevice(Config{Size: 1 << 20})
	far := NewDevice(Config{Size: 1 << 20, Profile: sim.MustProfile("cxl-pm"), Lat: lat})
	run := func(d *Device) int64 {
		c := d.NewCore()
		// Random-address lines: drain cost PMWriteRandom >> AcceptNs.
		for i := 0; i < 4; i++ {
			a := Addr(i * 3 * PageSize)
			c.Store(a, []byte{1})
			c.Flush(a, 1, KindData)
		}
		start := c.Now()
		c.Fence()
		return c.Now() - start
	}
	adrNs, farNs := run(adr), run(far)
	if farNs <= adrNs {
		t.Fatalf("far-memory fence (%dns) should stall deeper than ADR (%dns)", farNs, adrNs)
	}
	if adrNs > int64(4)*lat.AcceptNs+lat.FenceIssue {
		t.Fatalf("ADR fence waited past acceptance: %dns", adrNs)
	}
}

func TestFenceNsCounter(t *testing.T) {
	d := NewDevice(Config{Size: 1 << 20})
	c := d.NewCore()
	c.Store(0, []byte{1})
	c.Flush(0, 1, KindData)
	before := c.Now()
	c.Fence()
	if got, want := c.Stats.FenceNs, uint64(c.Now()-before); got != want {
		t.Fatalf("FenceNs = %d, want fence duration %d", got, want)
	}
	if c.Stats.FenceNs < uint64(sim.DefaultLatency().FenceIssue) {
		t.Fatalf("FenceNs %d below issue cost", c.Stats.FenceNs)
	}
}
