package pmem

import "math/bits"

// dirtyBitmap tracks which cache lines hold unflushed stores. It replaces the
// map[uint64]struct{} the device used to allocate on every store: setting and
// clearing bits is allocation-free once a page exists, and a crash clears the
// bitmap in place instead of reallocating it — the device's hottest paths
// (Store, Flush, Crash) never touch the Go heap in steady state.
//
// The bitmap is paged: line space is split into fixed-size pages of
// dirtyPageLines lines each, and a page's word array is allocated lazily the
// first time a line inside it is dirtied. Devices are sized for worst-case
// log growth (hundreds of megabytes) but workloads touch a tiny, dense
// subset, so paging keeps the resident bitmap proportional to the touched
// footprint rather than the device capacity.
const (
	// dirtyPageShift gives 32768 lines (2 MiB of device space) per page; a
	// page's word array is 4 KiB.
	dirtyPageShift = 15
	dirtyPageLines = 1 << dirtyPageShift
	dirtyPageWords = dirtyPageLines / 64
)

type dirtyBitmap struct {
	pages [][]uint64
	n     int // set bits
}

// newDirtyBitmap sizes the page table for a device of size bytes.
func newDirtyBitmap(size int) *dirtyBitmap {
	lines := (size + LineSize - 1) / LineSize
	npages := (lines + dirtyPageLines - 1) / dirtyPageLines
	if npages == 0 {
		npages = 1
	}
	return &dirtyBitmap{pages: make([][]uint64, npages)}
}

// set marks line dirty.
func (b *dirtyBitmap) set(line uint64) {
	pi := line >> dirtyPageShift
	p := b.pages[pi]
	if p == nil {
		p = make([]uint64, dirtyPageWords)
		b.pages[pi] = p
	}
	w, bit := (line%dirtyPageLines)/64, uint(line%64)
	if p[w]&(1<<bit) == 0 {
		p[w] |= 1 << bit
		b.n++
	}
}

// clear marks line clean.
func (b *dirtyBitmap) clear(line uint64) {
	pi := line >> dirtyPageShift
	p := b.pages[pi]
	if p == nil {
		return
	}
	w, bit := (line%dirtyPageLines)/64, uint(line%64)
	if p[w]&(1<<bit) != 0 {
		p[w] &^= 1 << bit
		b.n--
	}
}

// test reports whether line is dirty.
func (b *dirtyBitmap) test(line uint64) bool {
	pi := line >> dirtyPageShift
	p := b.pages[pi]
	if p == nil {
		return false
	}
	return p[(line%dirtyPageLines)/64]&(1<<uint(line%64)) != 0
}

// count returns the number of dirty lines.
func (b *dirtyBitmap) count() int { return b.n }

// clearAll resets every bit but keeps the page allocations, so crash loops
// (internal/crashtest runs many rounds on one device) reuse the memory
// instead of rebuilding the structure each round.
func (b *dirtyBitmap) clearAll() {
	for _, p := range b.pages {
		if p == nil {
			continue
		}
		for i := range p {
			p[i] = 0
		}
	}
	b.n = 0
}

// forEach calls fn for every dirty line in ascending line order. Ordered
// iteration makes crash outcomes a deterministic function of the seed — the
// old map-based implementation consumed the crash RNG in random map order.
func (b *dirtyBitmap) forEach(fn func(line uint64)) {
	for pi, p := range b.pages {
		if p == nil {
			continue
		}
		base := uint64(pi) << dirtyPageShift
		for w, word := range p {
			for word != 0 {
				bit := uint(bits.TrailingZeros64(word))
				fn(base + uint64(w)*64 + uint64(bit))
				word &^= 1 << bit
			}
		}
	}
}
