package hwsim

import (
	"encoding/binary"
	"errors"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// Ring is a persistent circular log. Hardware log areas are reclaimed
// strictly from the oldest end — per transaction (EDE's undo log), per GC
// window (HOOP), or per epoch (SpecHPMT, §5.2: "as long as the software
// always clears the oldest epoch, it reclaims the log records at the
// beginning of the log area") — which is exactly a ring buffer.
//
// Head and tail are monotonically increasing STREAM offsets; the ring
// position is offset modulo capacity. Record checksums are salted with the
// absolute stream offset, so residual bytes from earlier laps can never be
// mistaken for live records: the same ring position has a different stream
// offset on every lap.
//
// Record frame: [size u32 | payload | checksum u64]. The head offset lives
// in a caller-provided root slot and is persisted by the caller's advance.
type Ring struct {
	core *pmem.Core
	base pmem.Addr
	cap  uint64
	head uint64 // oldest live byte (stream offset)
	tail uint64 // next append position (stream offset)

	unflushed []ringSpan
}

type ringSpan struct {
	addr pmem.Addr
	n    int
}

const ringFrame = 4 + 8 // size + checksum

// ErrRingFull reports that an append does not fit even after reclamation.
var ErrRingFull = errors.New("hwsim: ring log full")

// NewRing creates a ring over [base, base+capBytes) with both offsets at
// head (pass 0 for a fresh ring, or the recovered persistent head).
func NewRing(core *pmem.Core, base pmem.Addr, capBytes int, head uint64) *Ring {
	return &Ring{core: core, base: base, cap: uint64(capBytes), head: head, tail: head}
}

// Head and Tail return the stream offsets.
func (r *Ring) Head() uint64 { return r.head }

// Tail returns the next append stream offset.
func (r *Ring) Tail() uint64 { return r.tail }

// Live returns the live byte count.
func (r *Ring) Live() int { return int(r.tail - r.head) }

// Free returns the bytes available for appending.
func (r *Ring) Free() int { return int(r.cap) - r.Live() }

// pos maps a stream offset to a device address.
func (r *Ring) pos(off uint64) pmem.Addr { return r.base + pmem.Addr(off%r.cap) }

// write copies data at stream offset off, splitting across the wrap point.
func (r *Ring) write(off uint64, data []byte) {
	for len(data) > 0 {
		at := r.pos(off)
		room := r.cap - off%r.cap
		n := uint64(len(data))
		if n > room {
			n = room
		}
		r.core.Store(at, data[:n])
		r.unflushed = append(r.unflushed, ringSpan{at, int(n)})
		off += n
		data = data[n:]
	}
}

// read fills buf from stream offset off.
func (r *Ring) read(off uint64, buf []byte) {
	for len(buf) > 0 {
		at := r.pos(off)
		room := r.cap - off%r.cap
		n := uint64(len(buf))
		if n > room {
			n = room
		}
		r.core.Load(at, buf[:n])
		off += n
		buf = buf[n:]
	}
}

func (r *Ring) salt(off uint64) uint64 { return off*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9 }

// Append frames payload into the ring at the tail. The bytes are volatile
// until FlushPending plus a fence.
func (r *Ring) Append(payload []byte) (off uint64, err error) {
	total := ringFrame + len(payload)
	if total > r.Free() {
		return 0, ErrRingFull
	}
	off = r.tail
	frame := make([]byte, total)
	binary.LittleEndian.PutUint32(frame, uint32(total))
	copy(frame[4:], payload)
	sum := txn.Checksum64(frame[:4+len(payload)]) ^ r.salt(off)
	binary.LittleEndian.PutUint64(frame[4+len(payload):], sum)
	r.write(off, frame)
	r.tail += uint64(total)
	return off, nil
}

// FlushPending issues CLWB for all bytes written since the last call, one
// flush per distinct cache line: adjacent small records share lines, and
// hardware logging units write back each line once.
func (r *Ring) FlushPending(kind pmem.Kind) {
	if len(r.unflushed) == 0 {
		return
	}
	seen := map[uint64]bool{}
	var lines []uint64
	for _, sp := range r.unflushed {
		first := pmem.LineOf(sp.addr)
		last := pmem.LineOf(sp.addr + pmem.Addr(sp.n-1))
		for l := first; l <= last; l++ {
			if !seen[l] {
				seen[l] = true
				lines = append(lines, l)
			}
		}
	}
	sortLines(lines)
	for _, l := range lines {
		r.core.Flush(LineAddr(l), pmem.LineSize, kind)
	}
	r.unflushed = r.unflushed[:0]
}

// AdvanceHead reclaims everything below newHead. The caller persists the new
// head in its root before reusing the space for more than one lap.
func (r *Ring) AdvanceHead(newHead uint64) {
	if newHead < r.head || newHead > r.tail {
		panic("hwsim: AdvanceHead out of range")
	}
	r.head = newHead
}

// ScanRecord decodes the record at stream offset off using the given core
// (recovery may scan with a fresh core). Returns the payload, the offset of
// the next record, and whether the record is valid (committed).
func (r *Ring) ScanRecord(core *pmem.Core, off uint64) (payload []byte, next uint64, ok bool) {
	save := r.core
	r.core = core
	defer func() { r.core = save }()
	if off < r.head || off+ringFrame > r.head+r.cap {
		return nil, 0, false
	}
	var szb [4]byte
	r.read(off, szb[:])
	size := int(binary.LittleEndian.Uint32(szb[:]))
	if size < ringFrame || uint64(size) > r.cap || off+uint64(size) > r.head+r.cap {
		return nil, 0, false
	}
	frame := make([]byte, size)
	r.read(off, frame)
	want := binary.LittleEndian.Uint64(frame[size-8:])
	if txn.Checksum64(frame[:size-8])^r.salt(off) != want {
		return nil, 0, false
	}
	return frame[4 : size-8], off + uint64(size), true
}

// Scan walks valid records from the head, calling fn for each payload in
// order, and returns the offset of the first invalid record — the durable
// tail. Scanning stops early if fn returns false.
func (r *Ring) Scan(core *pmem.Core, fn func(off uint64, payload []byte) bool) uint64 {
	off := r.head
	for {
		payload, next, ok := r.ScanRecord(core, off)
		if !ok {
			return off
		}
		if fn != nil && !fn(off, payload) {
			return off
		}
		off = next
	}
}

// ResumeAt positions the volatile tail (after a recovery scan).
func (r *Ring) ResumeAt(tail uint64) {
	if tail < r.head {
		panic("hwsim: ResumeAt below head")
	}
	r.tail = tail
}
