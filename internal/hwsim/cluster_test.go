package hwsim

import (
	"sync"
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func clusterEnvs(w *txntest.World, n int) []txn.Env {
	envs := make([]txn.Env, n)
	for i := range envs {
		envs[i] = w.Env(true)
	}
	return envs
}

func TestClusterDisjointThreads(t *testing.T) {
	const threads, perThread = 4, 40
	w := txntest.NewWorld(128 << 20)
	envs := clusterEnvs(w, threads)
	cl, err := NewCluster(envs, confOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([][]pmem.Addr, threads)
	for i := range addrs {
		addrs[i] = make([]pmem.Addr, 4)
		for j := range addrs[i] {
			addrs[i][j], _ = w.DataHeap.Alloc(4096) // page-grained, private
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := cl.Engine(i)
			for r := uint64(1); r <= perThread; r++ {
				tx := e.Begin()
				for j, a := range addrs[i] {
					// Several stores per page so pages go hot.
					for k := 0; k < 4; k++ {
						tx.StoreUint64(a+pmem.Addr(k*64), uint64(i*1_000_000)+r*100+uint64(j*10+k))
					}
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cl.Close()
	w.Dev.Crash(sim.NewRand(3))
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	cl2, err := NewCluster(envs2, confOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	c := w.Dev.NewCore()
	for i := range addrs {
		for j, a := range addrs[i] {
			for k := 0; k < 4; k++ {
				want := uint64(i*1_000_000) + perThread*100 + uint64(j*10+k)
				if got := c.LoadUint64(a + pmem.Addr(k*64)); got != want {
					t.Fatalf("thread %d page %d word %d: got %d want %d", i, j, k, got, want)
				}
			}
		}
	}
}

func TestClusterSharedAddressTimestampOrder(t *testing.T) {
	const threads, rounds = 2, 60
	w := txntest.NewWorld(128 << 20)
	envs := clusterEnvs(w, threads)
	cl, err := NewCluster(envs, confOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := w.DataHeap.Alloc(4096)
	var mu sync.Mutex
	last := uint64(0)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := cl.Engine(i)
			for r := 0; r < rounds; r++ {
				mu.Lock()
				v := uint64(i+1)*1_000_000 + uint64(r)
				tx := e.Begin()
				// Enough stores that the shared page goes hot in BOTH
				// threads' TLBs — the cross-thread replay-ordering case.
				for k := 0; k < 8; k++ {
					tx.StoreUint64(shared+pmem.Addr(k*64), v)
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					mu.Unlock()
					return
				}
				last = v
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	cl.Close()
	w.Dev.CrashClean()
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	cl2, err := NewCluster(envs2, confOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	c := w.Dev.NewCore()
	for k := 0; k < 8; k++ {
		if got := c.LoadUint64(shared + pmem.Addr(k*64)); got != last {
			t.Fatalf("word %d = %d, want last committed %d", k, got, last)
		}
	}
}

// figure11Scenario builds the exact hazard of Figure 11: thread 1 holds an
// old speculative page image of a shared page; thread 2 commits w2 to it and
// then tries to reclaim the epoch holding w2's records; thread 1 then
// updates the page speculatively and crashes before committing. If the
// reclamation went through, replay regresses the page to thread 1's stale
// image and w2 is lost.
func figure11Scenario(t *testing.T, unsafeReclaim bool) (got, want uint64) {
	t.Helper()
	w := txntest.NewWorld(256 << 20)
	envs := clusterEnvs(w, 2)
	opt := HWOptions{
		EpochBytes:  1 << 30, // close epochs only via the page bound
		EpochPages:  1,
		MaxEpochs:   2,
		SpecRingCap: 8 << 20,
		UndoRingCap: 1 << 20,
	}
	cl, err := NewCluster(envs, opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetUnsafeReclaim(unsafeReclaim)
	page, _ := w.DataHeap.Alloc(4096)
	x := page // the contended word

	t1, t2 := cl.Engine(0), cl.Engine(1)
	// Thread 1: make the page hot in ITS TLB with an old value of x.
	tx := t1.Begin()
	for k := 0; k < 8; k++ {
		tx.StoreUint64(page+pmem.Addr(k*64), 111)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Thread 2: commit w2 to x (page goes hot in thread 2 as well).
	tx = t2.Begin()
	for k := 0; k < 8; k++ {
		tx.StoreUint64(page+pmem.Addr(k*64), 222) // w2
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Drive thread 2 over fresh pages so its epochs close and the one
	// holding w2's records becomes the reclamation candidate.
	for n := 0; n < 6; n++ {
		p, _ := w.DataHeap.Alloc(4096)
		tx = t2.Begin()
		for k := 0; k < 8; k++ {
			tx.StoreUint64(p+pmem.Addr(k*64), uint64(n))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Thread 1: speculative update of x (its page is still hot in thread
	// 1's TLB), interrupted by the crash.
	tx = t1.Begin()
	tx.StoreUint64(x, 999)
	cl.Close()
	w.Dev.CrashClean()
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	cl2, err := NewCluster(envs2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	return w.Dev.NewCore().LoadUint64(x), 222
}

func TestFigure11ProtocolPreventsRegression(t *testing.T) {
	got, want := figure11Scenario(t, false)
	if got != want {
		t.Fatalf("with the §5.2.2 protocol, x = %d, want committed w2 = %d", got, want)
	}
}

func TestFigure11HazardExistsWithoutProtocol(t *testing.T) {
	got, want := figure11Scenario(t, true)
	if got == want {
		t.Skip("unsafe reclamation did not fire in this arrangement; hazard not exercised")
	}
	t.Logf("without the protocol, x regressed to %d (committed w2 was %d) — the Figure 11 corruption", got, want)
}

func TestClusterDeferredReclamationEventuallyRuns(t *testing.T) {
	w := txntest.NewWorld(256 << 20)
	envs := clusterEnvs(w, 2)
	opt := HWOptions{EpochBytes: 1 << 30, EpochPages: 1, MaxEpochs: 2,
		SpecRingCap: 8 << 20, UndoRingCap: 1 << 20}
	cl, err := NewCluster(envs, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	t1, t2 := cl.Engine(0), cl.Engine(1)
	hotTx := func(e *SpecHPMT, base pmem.Addr, v uint64) {
		tx := e.Begin()
		for k := 0; k < 8; k++ {
			tx.StoreUint64(base+pmem.Addr(k*64), v)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Thread 1 opens an old epoch and goes quiet.
	p1, _ := w.DataHeap.Alloc(4096)
	hotTx(t1, p1, 1)
	// Thread 2 churns: its reclamations are deferred while thread 1's old
	// epoch is live.
	for n := 0; n < 8; n++ {
		p, _ := w.DataHeap.Alloc(4096)
		hotTx(t2, p, uint64(n))
	}
	if t2.deferredCycles == 0 {
		t.Fatal("expected deferred reclamations while thread 1 holds an old epoch")
	}
	// Thread 1 advances: its epochs close and reclaim, unblocking thread 2.
	for n := 0; n < 6; n++ {
		p, _ := w.DataHeap.Alloc(4096)
		hotTx(t1, p, uint64(n))
	}
	hotTx(t2, p1, 99) // a commit retries deferred cycles
	if t2.deferredCycles > 2 {
		t.Fatalf("deferred reclamations did not drain: %d pending", t2.deferredCycles)
	}
	if t2.cpu.Core.Stats.EpochsReclaimed == 0 {
		t.Fatal("thread 2 never reclaimed")
	}
}
