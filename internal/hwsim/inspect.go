package hwsim

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DumpState writes a human-readable snapshot of the hardware engine's
// speculative machinery: the epoch ring (live and inactive epochs with their
// byte extents), the records in the speculative log, the cold undo log, and
// the TLB's hot-page population. It is the inspection surface behind
// cmd/specpmt-inspect -hw.
func (e *SpecHPMT) DumpState(w io.Writer) {
	fmt.Fprintf(w, "speculative ring: head=%d tail=%d live=%dB of %dB\n",
		e.spec.Head(), e.spec.Tail(), e.spec.Live(), e.opt.SpecRingCap)
	for i, ep := range e.epochs {
		state := "active"
		if ep.inactive {
			state = "inactive (EID reassigned)"
		}
		fmt.Fprintf(w, "  epoch[%d] eid=%d [%d,%d) %dB %d page(s) %s\n",
			i, ep.eid, ep.start, ep.end, ep.bytes, ep.pages, state)
	}
	fmt.Fprintf(w, "  epoch[open] eid=%d starts@%d %dB %d page(s)\n",
		e.cur.eid, e.cur.start, e.cur.bytes, e.cur.pages)
	nPage, nCommit := 0, 0
	e.spec.Scan(e.cpu.Core, func(off uint64, payload []byte) bool {
		if len(payload) < 16 {
			return false
		}
		switch payload[0] {
		case recKindPage:
			nPage++
			fmt.Fprintf(w, "  @%d page-image eid=%d ts=%d page=%d (4KiB)\n",
				off, payload[1], binary.LittleEndian.Uint64(payload[8:]),
				binary.LittleEndian.Uint64(payload[16:]))
		case recKindCommit:
			nCommit++
			n := int(binary.LittleEndian.Uint32(payload[2:]))
			fmt.Fprintf(w, "  @%d commit eid=%d ts=%d lines=%d\n",
				off, payload[1], binary.LittleEndian.Uint64(payload[8:]), n)
		}
		return true
	})
	fmt.Fprintf(w, "  %d page-image record(s), %d commit record(s)\n", nPage, nCommit)
	fmt.Fprintf(w, "undo ring: live=%dB (retires every commit)\n", e.undo.Live())
	hot := 0
	for eidTry := 0; eidTry < 256; eidTry++ {
		hot += len(e.cpu.TLB.HotPages(uint8(eidTry)))
	}
	fmt.Fprintf(w, "TLB: %d entries resident, %d hot page(s), %d eviction(s)\n",
		e.cpu.TLB.Len(), hot, e.cpu.TLB.Evicted)
	fmt.Fprintf(w, "counters: %d page copies, %d epochs reclaimed, L1 %d/%d hit/miss\n",
		e.cpu.Core.Stats.PageCopies, e.cpu.Core.Stats.EpochsReclaimed,
		e.cpu.L1.Hits, e.cpu.L1.Misses)
}

// HotPageCount returns the number of pages currently tracked hot.
func (e *SpecHPMT) HotPageCount() int {
	n := 0
	for eid := 0; eid < 256; eid++ {
		n += len(e.cpu.TLB.HotPages(uint8(eid)))
	}
	return n
}

// SetSpeculation toggles the control-status-register bit of §5.1.2: "the
// hardware may provide an API to enable/disable speculative logging, which
// sets/resets a control status register bit. This allows the programmer or
// user to disable speculative logging (and rely solely on undo logging) if
// it produces an adverse performance impact." While disabled, pages never
// transition hot; already-hot pages are first persisted and switched cold,
// as in a mechanism transition.
func (e *SpecHPMT) SetSpeculation(enabled bool) {
	if e.specDisabled == !enabled {
		return
	}
	e.specDisabled = !enabled
	if enabled {
		return
	}
	// Demote every hot page: persist its dirty lines, then clear all epochs.
	for eid := 0; eid < 256; eid++ {
		for _, page := range e.cpu.TLB.HotPages(uint8(eid)) {
			e.flushPageData(page)
		}
		e.cpu.TLB.ClearEpoch(uint8(eid))
	}
	e.cpu.Core.Fence()
}

// SpeculationEnabled reports the control bit.
func (e *SpecHPMT) SpeculationEnabled() bool { return !e.specDisabled }

// OnChipCost reports the additional on-chip storage hardware SpecPMT needs
// (§5.4): two bits per L1- and L2-TLB entry, two bits per L1 data cache
// line, plus the transaction-state and epoch-ID registers. For the paper's
// Skylake-like configuration this is 0.91 KB, under 0.04% of a core's
// on-chip storage.
func OnChipCost() (bits int, kb float64) {
	const (
		l1TLBEntries = 64
		l2TLBEntries = 1536
		l1DataLines  = 512
		perTLBEntry  = 4 // EpochBit + 3-bit cnt/EID (Figure 9)
		perCacheLine = 2 // PBit + LogBit
		registers    = 2 * 64
	)
	bits = (l1TLBEntries+l2TLBEntries)*perTLBEntry + l1DataLines*perCacheLine + registers
	return bits, float64(bits) / 8 / 1024
}
