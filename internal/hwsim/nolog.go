package hwsim

import (
	"encoding/binary"
	"errors"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// NoLog is the "no-log" ideal of §7.1.3: transactions without any logging
// that persist their data at commit. Its performance is the upper bound for
// in-place-update persistent transactions; it provides NO crash consistency
// (Recover is a no-op and uncommitted updates may surface after a crash).
type NoLog struct {
	cpu  *CPU
	env  txn.Env
	open bool
}

func init() {
	txn.Register("no-log", func(env txn.Env) (txn.Engine, error) { return NewNoLog(env), nil })
}

// NewNoLog builds the no-log engine. It needs no persistent root state.
func NewNoLog(env txn.Env) *NoLog {
	return &NoLog{cpu: NewCPU(env.Dev), env: env}
}

// Name implements txn.Engine.
func (e *NoLog) Name() string { return "no-log" }

// Close implements txn.Engine.
func (e *NoLog) Close() error { return nil }

// Recover implements txn.Engine: nothing to do — and nothing is guaranteed.
func (e *NoLog) Recover() error { return nil }

// Begin implements txn.Engine.
func (e *NoLog) Begin() txn.Tx {
	if e.open {
		panic("hwsim: one transaction per core")
	}
	e.open = true
	e.cpu.Core.Stats.TxBegun++
	e.cpu.Core.TraceTxBegin()
	return &noLogTx{e: e, ws: txn.NewWriteSet()}
}

type noLogTx struct {
	e    *NoLog
	ws   *txn.WriteSet
	done bool
}

// Store implements txn.Tx.
func (t *noLogTx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("hwsim: use of finished transaction")
	}
	t.ws.Add(addr, len(data))
	t.e.cpu.WriteData(addr, data)
}

// StoreUint64 implements txn.Tx.
func (t *noLogTx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Load implements txn.Tx.
func (t *noLogTx) Load(addr pmem.Addr, buf []byte) { t.e.cpu.ReadData(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *noLogTx) LoadUint64(addr pmem.Addr) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Compute implements txn.Tx.
func (t *noLogTx) Compute(ns int64) { t.e.cpu.Core.Compute(ns) }

// Commit implements txn.Tx: persist the write set, one fence.
func (t *noLogTx) Commit() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	t.e.open = false
	c := t.e.cpu.Core
	commitStart := c.Now()
	for _, l := range t.ws.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
		if e := t.e.cpu.L1.Lookup(l); e != nil {
			e.dirty = false
		}
	}
	c.Fence()
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, t.ws.Len(), 0)
	return nil
}

// Abort is unsupported in hardware no-log (there is no rollback state); it
// simply forgets the transaction, leaving its in-place updates — callers
// use no-log only for performance baselines.
func (t *noLogTx) Abort() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.e.cpu.Core.Stats.TxAborted++
	t.e.cpu.Core.TraceTxAbort()
	return nil
}
