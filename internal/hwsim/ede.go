package hwsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// EDE models the Execution Dependence Extension baseline (Shull et al.,
// ISCA'21) as the paper configures it (§7.1.3): a state-of-the-art in-place
// update hardware transaction with undo logging whose ISA support eliminates
// fences BETWEEN logging and data updates — the hardware tracks the
// dependence — but whose data persistence remains synchronous at commit.
// Log records are coalesced as much as possible (per cache line, appended
// sequentially).
//
// The dependence tracking is emulated by ordering log-record acceptance
// ahead of data write-back with cheap acceptance waits rather than
// full drains; the dominant commit cost is the synchronous persistence of
// the updated data lines, exactly what Figures 13/14 measure.
type EDE struct {
	env  txn.Env
	cpu  *CPU
	ring *Ring
	open bool
}

const (
	edeMagic = 0x4544454c4f473131 // "EDELOG11"

	offEDEMagic    = 0
	offEDERingBase = 8
	offEDERingCap  = 16
	offEDEHead     = 24

	edeRingCap = 4 << 20
)

func init() {
	txn.Register("EDE", func(env txn.Env) (txn.Engine, error) { return NewEDE(env) })
}

// NewEDE attaches to (or initialises) an EDE engine at env.Root.
func NewEDE(env txn.Env) (*EDE, error) {
	e := &EDE{env: env, cpu: NewCPU(env.Dev)}
	c := e.cpu.Core
	boot := env.Core
	if boot.LoadUint64(env.Root+offEDEMagic) == edeMagic {
		base := pmem.Addr(boot.LoadUint64(env.Root + offEDERingBase))
		capB := int(boot.LoadUint64(env.Root + offEDERingCap))
		head := boot.LoadUint64(env.Root + offEDEHead)
		e.ring = NewRing(c, base, capB, head)
		return e, nil
	}
	base, err := env.LogHeap.Alloc(edeRingCap)
	if err != nil {
		return nil, fmt.Errorf("hwsim: EDE log: %w", err)
	}
	e.ring = NewRing(c, base, edeRingCap, 0)
	boot.StoreUint64(env.Root+offEDERingBase, uint64(base))
	boot.StoreUint64(env.Root+offEDERingCap, edeRingCap)
	boot.StoreUint64(env.Root+offEDEHead, 0)
	boot.StoreUint64(env.Root+offEDEMagic, edeMagic)
	boot.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *EDE) Name() string { return "EDE" }

// Close implements txn.Engine.
func (e *EDE) Close() error { return nil }

// Begin implements txn.Engine.
func (e *EDE) Begin() txn.Tx {
	if e.open {
		panic("hwsim: one transaction per core")
	}
	e.open = true
	e.cpu.Core.Stats.TxBegun++
	e.cpu.Core.TraceTxBegin()
	return &edeTx{e: e, ws: txn.NewWriteSet(), logged: map[uint64]bool{}}
}

type edeTx struct {
	e      *EDE
	ws     *txn.WriteSet
	logged map[uint64]bool
	undo   []edeUndo // volatile copies for abort
	done   bool
	err    error
}

type edeUndo struct {
	line uint64
	old  [pmem.LineSize]byte
}

// Store implements txn.Tx: hardware-log the old line content (once per line
// per transaction), then update in place. No fence between them.
func (t *edeTx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("hwsim: use of finished transaction")
	}
	if len(data) == 0 {
		return
	}
	e := t.e
	first, last := pmem.LineOf(addr), pmem.LineOf(addr+pmem.Addr(len(data)-1))
	for l := first; l <= last; l++ {
		if t.logged[l] {
			continue
		}
		var old [pmem.LineSize]byte
		e.cpu.ReadLine(l, &old)
		payload := make([]byte, 8+pmem.LineSize)
		binary.LittleEndian.PutUint64(payload, l)
		copy(payload[8:], old[:])
		if _, err := e.ring.Append(payload); err != nil {
			t.err = err
			return
		}
		t.undo = append(t.undo, edeUndo{line: l, old: old})
		t.logged[l] = true
		e.cpu.Core.Stats.LogRecords++
		e.cpu.Core.Stats.AddLiveLog(int64(len(payload) + ringFrame))
		e.cpu.Core.TraceLogAppend(len(payload) + ringFrame)
	}
	// The dependence tracker guarantees the records are ordered ahead of the
	// data update without a pipeline stall (EDE's contribution).
	e.ring.FlushPending(pmem.KindLog)
	e.cpu.Core.OrderPoint()
	t.ws.Add(addr, len(data))
	e.cpu.WriteData(addr, data)
}

// StoreUint64 implements txn.Tx.
func (t *edeTx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Load implements txn.Tx.
func (t *edeTx) Load(addr pmem.Addr, buf []byte) { t.e.cpu.ReadData(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *edeTx) LoadUint64(addr pmem.Addr) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Compute implements txn.Tx.
func (t *edeTx) Compute(ns int64) { t.e.cpu.Core.Compute(ns) }

// Commit implements txn.Tx: persist log, then data (ordered), then retire
// the log.
func (t *edeTx) Commit() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	e := t.e
	e.open = false
	c := e.cpu.Core
	if t.err != nil {
		t.rollback()
		c.TraceTxAbort()
		return t.err
	}
	commitStart := c.Now()
	for _, l := range t.ws.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
		if ce := e.cpu.L1.Lookup(l); ce != nil {
			ce.dirty = false
		}
	}
	c.Fence() // synchronous data persistence (EDE's defining property)
	t.retireLog()
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, t.ws.Len(), 0)
	return nil
}

// retireLog advances the durable head past this transaction's records.
func (t *edeTx) retireLog() {
	e := t.e
	c := e.cpu.Core
	live := int64(e.ring.Live())
	e.ring.AdvanceHead(e.ring.Tail())
	c.StoreUint64(e.env.Root+offEDEHead, e.ring.Head())
	c.PersistBarrier(e.env.Root+offEDEHead, 8, pmem.KindLog)
	c.Stats.AddLiveLog(-live)
	c.TraceLiveLog()
}

// Abort implements txn.Tx.
func (t *edeTx) Abort() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.rollback()
	t.e.cpu.Core.Stats.TxAborted++
	t.e.cpu.Core.TraceTxAbort()
	return nil
}

func (t *edeTx) rollback() {
	e := t.e
	c := e.cpu.Core
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		e.cpu.WriteData(LineAddr(u.line), u.old[:])
		c.Flush(LineAddr(u.line), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	t.retireLog()
}

// Recover implements txn.Engine: scan the undo ring from its durable head
// and apply old line images in reverse.
func (e *EDE) Recover() error {
	c := e.cpu.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	type rec struct {
		line uint64
		old  []byte
	}
	var recs []rec
	tail := e.ring.Scan(c, func(off uint64, payload []byte) bool {
		if len(payload) != 8+pmem.LineSize {
			return false
		}
		recs = append(recs, rec{binary.LittleEndian.Uint64(payload), payload[8:]})
		return true
	})
	for i := len(recs) - 1; i >= 0; i-- {
		c.StoreRaw(LineAddr(recs[i].line), recs[i].old)
		c.Flush(LineAddr(recs[i].line), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	e.ring.ResumeAt(tail)
	e.ring.AdvanceHead(tail)
	c.StoreUint64(e.env.Root+offEDEHead, tail)
	c.PersistBarrier(e.env.Root+offEDEHead, 8, pmem.KindLog)
	return nil
}
