package hwsim

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// Coordinator implements the non-blocking multi-thread reclamation protocol
// of §5.2.2: "the software can safely reclaim all log records in an epoch e
// if: (1) e is an inactive epoch; (2) all active epochs must start after the
// end of e, including the epochs belonging to other threads."
//
// Each thread publishes the start timestamp of its earliest unreclaimed
// epoch; a reclamation proceeds only when every other thread's earliest
// active epoch started after the candidate epoch ended. This is what stops
// the Figure 11 corruption: a thread holding an old page image (its epoch
// predates e's end) blocks e's reclamation, so replay order can never
// regress committed values whose records lived in e.
type Coordinator struct {
	mu      sync.Mutex
	threads []*SpecHPMT
	// unsafeMode disables the protocol; it exists so tests can demonstrate
	// the hazard the protocol prevents.
	unsafeMode bool
}

// register adds a thread engine to the protocol.
func (co *Coordinator) register(e *SpecHPMT) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.threads = append(co.threads, e)
}

// canReclaim checks condition (2) for the caller's oldest epoch ending at
// endTS. The caller's own epochs are exempt: its candidate IS its earliest,
// and reclaiming it cannot invalidate the caller's own later records.
func (co *Coordinator) canReclaim(caller *SpecHPMT, endTS uint64) bool {
	if co.unsafeMode {
		return true
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, t := range co.threads {
		if t == caller {
			continue
		}
		// The earliest ACTIVE epoch: inactive epochs (ID reassigned, pages
		// already cold) no longer block anyone.
		earliest := t.cur.startTS
		for _, ep := range t.epochs {
			if !ep.inactive {
				earliest = ep.startTS
				break
			}
		}
		if earliest <= endTS {
			return false
		}
	}
	return true
}

// Cluster runs one hardware SpecPMT engine per thread over a shared device,
// wiring them to a common reclamation Coordinator, and provides merged
// multi-thread recovery. Like the software Pool (spec.Pool), isolation is
// the caller's job (§4.3.3); the cluster guarantees that the merged,
// timestamp-ordered replay reproduces the committed history.
type Cluster struct {
	engines []*SpecHPMT
	coord   *Coordinator
}

// NewCluster constructs n thread engines. envs must have length n with
// distinct Roots but a shared Dev, heaps, and TS.
func NewCluster(envs []txn.Env, opt HWOptions) (*Cluster, error) {
	cl := &Cluster{coord: &Coordinator{}}
	for i, env := range envs {
		// Cluster engines run one-goroutine-each against a shared device:
		// pin device-level locking on (overrides exclusive mode).
		env.Dev.ForceShared()
		e, err := NewSpecHPMT(env, opt)
		if err != nil {
			return nil, fmt.Errorf("hwsim: cluster thread %d: %w", i, err)
		}
		e.coord = cl.coord
		cl.coord.register(e)
		cl.engines = append(cl.engines, e)
	}
	return cl, nil
}

// Threads returns the thread count.
func (cl *Cluster) Threads() int { return len(cl.engines) }

// Engine returns thread i's engine; each must be driven by one goroutine.
func (cl *Cluster) Engine(i int) *SpecHPMT { return cl.engines[i] }

// SetUnsafeReclaim disables the §5.2.2 protocol (test hook demonstrating
// the Figure 11 hazard).
func (cl *Cluster) SetUnsafeReclaim(unsafe bool) { cl.coord.unsafeMode = unsafe }

// Close closes every engine.
func (cl *Cluster) Close() error {
	for _, e := range cl.engines {
		if err := e.Close(); err != nil {
			return err
		}
	}
	return nil
}

// clusterRec is one record scheduled for merged replay.
type clusterRec struct {
	ts   uint64
	page bool
	addr pmem.Addr
	data []byte
}

// Recover performs the merged recovery: every thread's speculative records
// are collected and replayed in global timestamp order (redoing committed
// transactions, with trailing page images rolling interrupted hot updates
// back), then every thread's undo log is applied, then the restored data is
// persisted and all logs retire.
func (cl *Cluster) Recover() error {
	if len(cl.engines) == 0 {
		return nil
	}
	c := cl.engines[0].cpu.Core
	var recs []clusterRec
	for _, e := range cl.engines {
		e.spec.Scan(c, func(off uint64, payload []byte) bool {
			if len(payload) < 16 {
				return false
			}
			switch payload[0] {
			case recKindPage:
				if len(payload) != 24+pmem.PageSize {
					return false
				}
				recs = append(recs, clusterRec{
					ts:   binary.LittleEndian.Uint64(payload[8:]),
					page: true,
					addr: pmem.Addr(binary.LittleEndian.Uint64(payload[16:]) * pmem.PageSize),
					data: append([]byte(nil), payload[24:]...),
				})
			case recKindCommit:
				n := int(binary.LittleEndian.Uint32(payload[2:]))
				if len(payload) != 16+n*(8+pmem.LineSize) {
					return false
				}
				ts := binary.LittleEndian.Uint64(payload[8:])
				p := 16
				for i := 0; i < n; i++ {
					line := binary.LittleEndian.Uint64(payload[p:])
					recs = append(recs, clusterRec{
						ts:   ts,
						addr: LineAddr(line),
						data: append([]byte(nil), payload[p+8:p+8+pmem.LineSize]...),
					})
					p += 8 + pmem.LineSize
				}
			default:
				return false
			}
			return true
		})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ts < recs[j].ts })
	touched := txn.NewWriteSet()
	for _, r := range recs {
		c.StoreRaw(r.addr, r.data)
		touched.Add(r.addr, len(r.data))
	}
	// Undo logs: each interrupted transaction's cold-line images, reversed.
	for _, e := range cl.engines {
		type urec struct {
			line uint64
			old  []byte
		}
		var undos []urec
		e.undo.Scan(c, func(off uint64, payload []byte) bool {
			if len(payload) != 8+pmem.LineSize {
				return false
			}
			undos = append(undos, urec{binary.LittleEndian.Uint64(payload), append([]byte(nil), payload[8:]...)})
			return true
		})
		for i := len(undos) - 1; i >= 0; i-- {
			c.StoreRaw(LineAddr(undos[i].line), undos[i].old)
			touched.Add(LineAddr(undos[i].line), pmem.LineSize)
		}
	}
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// Retire every thread's logs; the data is durable.
	for _, e := range cl.engines {
		ec := e.cpu.Core
		st := e.spec.Scan(ec, nil)
		e.spec.ResumeAt(st)
		e.spec.AdvanceHead(st)
		ec.StoreUint64(e.env.Root+offHPMTSpecHead, st)
		ut := e.undo.Scan(ec, nil)
		e.undo.ResumeAt(ut)
		e.undo.AdvanceHead(ut)
		ec.StoreUint64(e.env.Root+offHPMTUndoHead, ut)
		ec.Flush(e.env.Root+offHPMTSpecHead, 8, pmem.KindLog)
		ec.Flush(e.env.Root+offHPMTUndoHead, 8, pmem.KindLog)
		ec.Fence()
		e.epochs = nil
		e.cur = epochInfo{eid: 1, start: st, startTS: e.env.TS.Next()}
		e.nextEID = 2
		e.needScan = false
	}
	return nil
}
