package hwsim

import (
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
)

func newCPUWorld() (*pmem.Device, *CPU) {
	dev := pmem.NewDevice(pmem.Config{Size: 16 << 20})
	return dev, NewCPU(dev)
}

func TestCPUWriteReadRoundTrip(t *testing.T) {
	f := func(off uint16, v uint64) bool {
		_, cpu := newCPUWorld()
		addr := pmem.Addr(off)
		var b [8]byte
		putU64t(b[:], v)
		cpu.WriteData(addr, b[:])
		var got [8]byte
		cpu.ReadData(addr, got[:])
		return got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func putU64t(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func TestCPUHitCheaperThanMiss(t *testing.T) {
	_, cpu := newCPUWorld()
	var b [8]byte
	cpu.ReadData(0, b[:]) // miss
	missCost := cpu.Core.Now()
	cpu.ReadData(0, b[:]) // hit
	hitCost := cpu.Core.Now() - missCost
	if hitCost >= missCost {
		t.Fatalf("hit (%dns) should be cheaper than miss (%dns)", hitCost, missCost)
	}
}

func TestCPUDirtyEvictionWritesBack(t *testing.T) {
	dev, cpu := newCPUWorld()
	// Dirty a line, then thrash its set until it evicts.
	var one [1]byte
	one[0] = 0x5A
	cpu.WriteData(0, one[:])
	for i := 1; i <= cacheWays+2; i++ {
		cpu.ReadData(pmem.Addr(i*cacheSets*pmem.LineSize), one[:])
	}
	// The victim's write-back landed in the WPQ; fence and check the
	// persistence domain.
	cpu.Core.Fence()
	var p [1]byte
	dev.ReadPersisted(0, p[:])
	if p[0] != 0x5A {
		t.Fatal("dirty eviction should write the line back to persistent memory")
	}
}

func TestCPUSuppressWriteback(t *testing.T) {
	dev, cpu := newCPUWorld()
	cpu.SuppressWriteback = true
	var one [1]byte
	one[0] = 0x77
	cpu.WriteData(0, one[:])
	for i := 1; i <= cacheWays+2; i++ {
		cpu.ReadData(pmem.Addr(i*cacheSets*pmem.LineSize), one[:])
	}
	cpu.Core.Fence()
	var p [1]byte
	dev.ReadPersisted(0, p[:])
	if p[0] != 0 {
		t.Fatal("SuppressWriteback must keep evictions out of persistent memory")
	}
}

func TestCPUBeforeEvictHook(t *testing.T) {
	_, cpu := newCPUWorld()
	var evicted []uint64
	cpu.BeforeEvict = func(v cacheLine) { evicted = append(evicted, v.tag) }
	var one [1]byte
	cpu.WriteData(0, one[:])
	for i := 1; i <= cacheWays+2; i++ {
		cpu.ReadData(pmem.Addr(i*cacheSets*pmem.LineSize), one[:])
	}
	found := false
	for _, tag := range evicted {
		if tag == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("BeforeEvict never saw the dirty line: %v", evicted)
	}
}

func TestCPUMissTracking(t *testing.T) {
	_, cpu := newCPUWorld()
	var b [8]byte
	cpu.ReadData(0, b[:]) // untracked miss
	cpu.TrackMisses = true
	cpu.ReadData(4096, b[:]) // tracked miss
	cpu.ReadData(4096, b[:]) // hit: not tracked
	cpu.TrackMisses = false
	cpu.ReadData(8192, b[:]) // untracked
	if len(cpu.MissLines) != 1 || cpu.MissLines[0] != 64 {
		t.Fatalf("MissLines=%v, want exactly the line of 4096", cpu.MissLines)
	}
}

func TestRingScanRecordGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte, off uint8) bool {
		dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
		core := dev.NewCore()
		r := NewRing(core, 4096, 2048, 0)
		n := len(garbage)
		if n > 2048 {
			n = 2048
		}
		if n > 0 {
			core.Store(4096, garbage[:n])
		}
		defer func() {
			if recover() != nil {
				t.Error("ScanRecord panicked on garbage")
			}
		}()
		r.Scan(core, func(o uint64, p []byte) bool { return true })
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWrapRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
		core := dev.NewCore()
		r := NewRing(core, 4096, 512, 0)
		var want [][]byte
		for _, pl := range payloads {
			if len(pl) > 200 {
				pl = pl[:200]
			}
			if _, err := r.Append(pl); err != nil {
				// Make room: scan-verify what's there, then retire it.
				r.AdvanceHead(r.Tail())
				want = nil
				if _, err := r.Append(pl); err != nil {
					return true
				}
			}
			want = append(want, pl)
		}
		r.FlushPending(pmem.KindLog)
		core.Fence()
		i := 0
		r.Scan(core, func(off uint64, got []byte) bool {
			if i >= len(want) || string(got) != string(want[i]) {
				t.Errorf("record %d mismatch", i)
			}
			i++
			return true
		})
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
