package hwsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// SpecHPMT is hardware SpecPMT (§5): undo-speculative hybrid logging with
// epoch-based, foreground, thread-local log reclamation.
//
// Hot pages — those whose TLB entry's 3-bit store counter saturated — are
// speculatively logged: their lines update the L1 directly, a page-image log
// record is written at the cold-to-hot transition (hardware bulk copy), and
// the new values of their dirty lines are logged in one record at commit.
// Their DATA is never persisted on the commit path; it writes back on cache
// eviction or when the page's epoch is reclaimed, coalescing writes across
// transactions. Cold pages use undo logging with synchronous data
// persistence, as in EDE.
//
// The speculative log is divided into epochs; reclaiming the oldest epoch
// persists the still-dirty data of that epoch's pages, clears their TLB
// EpochBits (clearepoch), and advances the log head — a few instructions, no
// background thread, exactly two persist steps.
type SpecHPMT struct {
	env  txn.Env
	cpu  *CPU
	spec *Ring
	undo *Ring
	opt  HWOptions

	epochs   []epochInfo // closed, unreclaimed epochs, oldest first
	cur      epochInfo   // the open epoch
	nextEID  uint8
	open     bool
	needScan bool
	// coord, when set, applies the §5.2.2 non-blocking multi-thread
	// reclamation protocol; deferred reclamations retry at transaction
	// starts and commits.
	coord          *Coordinator
	deferredCycles int
	// specDisabled is the §5.1.2 control-status-register bit: while set,
	// every page is treated cold and the engine degenerates to pure undo
	// logging.
	specDisabled bool
}

type epochInfo struct {
	eid   uint8
	start uint64 // spec-ring stream offset where the epoch begins
	end   uint64 // valid for closed epochs
	bytes int
	pages int
	// startTS and endTS order epochs across threads for the multi-thread
	// reclamation protocol of §5.2.2 ("each thread maintain[s] a timestamp
	// of when the earliest unreclaimed epoch starts").
	startTS uint64
	endTS   uint64
	// inactive marks an epoch whose ID has been reassigned to a younger
	// epoch of the same thread (§5.2.2): its pages were switched cold at
	// reassignment, so it no longer blocks other threads' reclamations —
	// only its ring space remains to be freed.
	inactive bool
}

// HWOptions configures hardware SpecPMT.
type HWOptions struct {
	// EpochBytes closes an epoch once it holds this many record bytes
	// (default 2 MiB, §5.2.1). Figure 15 sweeps this bound.
	EpochBytes int
	// EpochPages closes an epoch once it speculatively logged this many
	// pages (default 200, §5.2.1).
	EpochPages int
	// MaxEpochs is the number of epoch pointers (default 8, Figure 10);
	// exceeding it reclaims the oldest epoch.
	MaxEpochs int
	// SpecRingCap is the speculative log capacity (default sized to hold
	// MaxEpochs+1 epochs of EpochBytes plus page-copy slack).
	SpecRingCap int
	// UndoRingCap is the cold undo log capacity (default 4 MiB).
	UndoRingCap int
	// DataPersist forces data flushes for hot lines at commit too — the
	// SpecHPMT-DP variant isolating the gain of asynchronous data
	// persistence.
	DataPersist bool
}

func (o *HWOptions) setDefaults() {
	if o.EpochBytes == 0 {
		o.EpochBytes = 2 << 20
	}
	if o.EpochPages == 0 {
		o.EpochPages = 200
	}
	if o.MaxEpochs == 0 {
		o.MaxEpochs = 8
	}
	if o.SpecRingCap == 0 {
		o.SpecRingCap = (o.MaxEpochs + 2) * (o.EpochBytes + o.EpochPages*(pmem.PageSize+64))
	}
	if o.UndoRingCap == 0 {
		o.UndoRingCap = 4 << 20
	}
}

const (
	hpmtMagic = 0x5350454348504d54 // "SPECHPMT"

	offHPMTMagic    = 0
	offHPMTSpecBase = 8
	offHPMTSpecCap  = 16
	offHPMTSpecHead = 24
	offHPMTUndoBase = 32
	offHPMTUndoCap  = 40
	offHPMTUndoHead = 48

	recKindPage   = 1
	recKindCommit = 2
)

func init() {
	txn.Register("SpecHPMT", func(env txn.Env) (txn.Engine, error) {
		return NewSpecHPMT(env, HWOptions{})
	})
	txn.Register("SpecHPMT-DP", func(env txn.Env) (txn.Engine, error) {
		return NewSpecHPMT(env, HWOptions{DataPersist: true})
	})
}

// NewSpecHPMT attaches to (or initialises) a hardware SpecPMT engine.
func NewSpecHPMT(env txn.Env, opt HWOptions) (*SpecHPMT, error) {
	opt.setDefaults()
	e := &SpecHPMT{env: env, cpu: NewCPU(env.Dev), opt: opt, nextEID: 1}
	c := e.cpu.Core
	boot := env.Core
	if boot.LoadUint64(env.Root+offHPMTMagic) == hpmtMagic {
		sb := pmem.Addr(boot.LoadUint64(env.Root + offHPMTSpecBase))
		sc := int(boot.LoadUint64(env.Root + offHPMTSpecCap))
		sh := boot.LoadUint64(env.Root + offHPMTSpecHead)
		ub := pmem.Addr(boot.LoadUint64(env.Root + offHPMTUndoBase))
		uc := int(boot.LoadUint64(env.Root + offHPMTUndoCap))
		uh := boot.LoadUint64(env.Root + offHPMTUndoHead)
		e.spec = NewRing(c, sb, sc, sh)
		e.undo = NewRing(c, ub, uc, uh)
		e.cur = epochInfo{eid: 1, start: sh, startTS: env.TS.Next()}
		e.nextEID = 2
		e.needScan = true
		e.installTLBHook()
		return e, nil
	}
	sb, err := env.LogHeap.Alloc(opt.SpecRingCap)
	if err != nil {
		return nil, fmt.Errorf("hwsim: SpecHPMT spec log: %w", err)
	}
	ub, err := env.LogHeap.Alloc(opt.UndoRingCap)
	if err != nil {
		return nil, fmt.Errorf("hwsim: SpecHPMT undo log: %w", err)
	}
	e.spec = NewRing(c, sb, opt.SpecRingCap, 0)
	e.undo = NewRing(c, ub, opt.UndoRingCap, 0)
	e.cur = epochInfo{eid: 1, start: 0, startTS: env.TS.Next()}
	e.nextEID = 2
	boot.StoreUint64(env.Root+offHPMTSpecBase, uint64(sb))
	boot.StoreUint64(env.Root+offHPMTSpecCap, uint64(opt.SpecRingCap))
	boot.StoreUint64(env.Root+offHPMTSpecHead, 0)
	boot.StoreUint64(env.Root+offHPMTUndoBase, uint64(ub))
	boot.StoreUint64(env.Root+offHPMTUndoCap, uint64(opt.UndoRingCap))
	boot.StoreUint64(env.Root+offHPMTUndoHead, 0)
	boot.StoreUint64(env.Root+offHPMTMagic, hpmtMagic)
	boot.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	e.installTLBHook()
	return e, nil
}

// installTLBHook closes the tracking-loss hazard: when a hot page's TLB
// entry is evicted, its metadata (and with it the ability to flush the page
// at epoch reclamation) disappears, so its dirty lines are persisted first.
func (e *SpecHPMT) installTLBHook() {
	e.cpu.TLB.OnEvict = func(victim *tlbEntry) {
		if !victim.EpochBit {
			return
		}
		e.flushPageData(victim.page)
		e.cpu.Core.Fence()
	}
}

// flushPageData writes back every dirty L1 line of the page.
func (e *SpecHPMT) flushPageData(page uint64) {
	firstLine := page * (pmem.PageSize / pmem.LineSize)
	for l := firstLine; l < firstLine+pmem.PageSize/pmem.LineSize; l++ {
		if ce := e.cpu.L1.Lookup(l); ce != nil && ce.dirty {
			e.cpu.Core.Flush(LineAddr(l), pmem.LineSize, pmem.KindData)
			ce.dirty = false
			ce.PBit = false
		}
	}
}

// Name implements txn.Engine.
func (e *SpecHPMT) Name() string {
	if e.opt.DataPersist {
		return "SpecHPMT-DP"
	}
	return "SpecHPMT"
}

// Close implements txn.Engine.
func (e *SpecHPMT) Close() error { return nil }

// LiveLogBytes reports the speculative log's live byte count — the memory
// consumption Figure 15 trades against performance.
func (e *SpecHPMT) LiveLogBytes() int { return e.spec.Live() }

// Begin implements txn.Engine.
func (e *SpecHPMT) Begin() txn.Tx {
	if e.open {
		panic("hwsim: one transaction per core")
	}
	if e.needScan {
		panic("hwsim: Recover must run before transactions on an attached engine")
	}
	e.open = true
	e.cpu.Core.Stats.TxBegun++
	e.cpu.Core.TraceTxBegin()
	e.retryDeferredReclaims()
	// In-transaction hot lines may overflow the cache freely: the write-back
	// persists an uncommitted value, but chronological replay of the
	// speculative log always reinstates the page's last committed content
	// (the page-image record created at the cold-to-hot transition precedes
	// any hot update of the transaction), so no eviction-time logging is
	// needed here — the commit record is built from the transaction's
	// hot-line set rather than an L1 scan.
	return &hpmtTx{
		e:        e,
		ws:       txn.NewWriteSet(),
		hotLines: map[uint64]bool{},
		logged:   map[uint64]bool{},
		old:      map[uint64][pmem.LineSize]byte{},
	}
}

type hpmtTx struct {
	e        *SpecHPMT
	ws       *txn.WriteSet
	hotLines map[uint64]bool // hot lines dirtied by this tx, pending commit logging
	logged   map[uint64]bool // cold lines undo-logged this tx
	old      map[uint64][pmem.LineSize]byte
	done     bool
	err      error
}

// Store implements txn.Tx (§5.1, Figure 7): cold lines are undo-logged
// before the in-place write; hot lines write the L1 directly and are
// speculatively logged at commit; a page whose counter saturates is bulk
// copied into the log and becomes hot.
func (t *hpmtTx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("hwsim: use of finished transaction")
	}
	if len(data) == 0 {
		return
	}
	e := t.e
	first, last := pmem.LineOf(addr), pmem.LineOf(addr+pmem.Addr(len(data)-1))
	for l := first; l <= last; l++ {
		if _, ok := t.old[l]; !ok {
			var img [pmem.LineSize]byte
			e.cpu.ReadLine(l, &img)
			t.old[l] = img
		}
		page := l / (pmem.PageSize / pmem.LineSize)
		te := e.cpu.TLB.Lookup(page)
		if te.EpochBit {
			t.hotLines[l] = true
			continue
		}
		// Cold: undo log the line once per transaction.
		if !t.logged[l] {
			img := t.old[l]
			payload := make([]byte, 8+pmem.LineSize)
			binary.LittleEndian.PutUint64(payload, l)
			copy(payload[8:], img[:])
			if _, err := e.undo.Append(payload); err != nil {
				t.err = err
				return
			}
			t.logged[l] = true
			e.cpu.Core.Stats.LogRecords++
			e.cpu.Core.TraceLogAppend(len(payload) + ringFrame)
		}
		e.undo.FlushPending(pmem.KindLog)
		e.cpu.Core.OrderPoint()
		// Saturating store counter drives the hotness transition — unless
		// speculation is disabled via the §5.1.2 control bit.
		if te.CntEID < hotThreshold {
			te.CntEID++
		}
		if te.CntEID >= hotThreshold && !e.specDisabled {
			if err := t.e.makeHot(page, te); err != nil {
				t.err = err
				return
			}
			t.hotLines[l] = true
		}
	}
	t.ws.Add(addr, len(data))
	ents := e.cpu.WriteData(addr, data)
	for _, ce := range ents {
		if t.hotLines[ce.tag] {
			ce.PBit = true
			ce.LogBit = true
		}
	}
}

// makeHot performs the cold-to-hot transition: bulk copy the page image into
// the speculative log (the paper uses a hardware bulk copy engine), then set
// the TLB metadata.
func (e *SpecHPMT) makeHot(page uint64, te *tlbEntry) error {
	payload := make([]byte, 24+pmem.PageSize)
	payload[0] = recKindPage
	payload[1] = e.cur.eid
	binary.LittleEndian.PutUint64(payload[8:], e.env.TS.Next())
	binary.LittleEndian.PutUint64(payload[16:], page)
	e.cpu.Core.LoadRaw(pmem.Addr(page*pmem.PageSize), payload[24:])
	if err := e.specAppend(payload); err != nil {
		return err
	}
	e.spec.FlushPending(pmem.KindLog)
	e.cpu.Core.OrderPoint()
	e.cpu.Core.Compute(200) // bulk copy engine issue latency
	te.EpochBit = true
	te.CntEID = e.cur.eid
	e.cur.pages++
	e.cpu.Core.Stats.PageCopies++
	return nil
}

// specAppend appends to the speculative log, reclaiming epochs on pressure.
func (e *SpecHPMT) specAppend(payload []byte) error {
	for {
		off, err := e.spec.Append(payload)
		if err == nil {
			e.cur.bytes += len(payload) + ringFrame
			e.cpu.Core.Stats.AddLiveLog(int64(len(payload) + ringFrame))
			e.cpu.Core.TraceLogAppend(len(payload) + ringFrame)
			_ = off
			return nil
		}
		if len(e.epochs) == 0 {
			return err
		}
		if !e.reclaimOldestEpoch() {
			return fmt.Errorf("hwsim: %w (reclamation deferred by the multi-thread protocol)", err)
		}
	}
}

// specLogLines appends one commit record covering the given hot lines with
// their current (new) values.
func (t *hpmtTx) specLogLines(lines []uint64) {
	if len(lines) == 0 {
		return
	}
	e := t.e
	payload := make([]byte, 16+len(lines)*(8+pmem.LineSize))
	payload[0] = recKindCommit
	payload[1] = e.cur.eid
	binary.LittleEndian.PutUint32(payload[2:], uint32(len(lines)))
	binary.LittleEndian.PutUint64(payload[8:], e.env.TS.Next())
	p := 16
	for _, l := range lines {
		binary.LittleEndian.PutUint64(payload[p:], l)
		var img [pmem.LineSize]byte
		e.cpu.ReadLine(l, &img)
		copy(payload[p+8:], img[:])
		p += 8 + pmem.LineSize
	}
	if err := e.specAppend(payload); err != nil {
		t.err = err
		return
	}
	e.cpu.Core.Stats.LogRecords++
}

// Load implements txn.Tx.
func (t *hpmtTx) Load(addr pmem.Addr, buf []byte) { t.e.cpu.ReadData(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *hpmtTx) LoadUint64(addr pmem.Addr) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreUint64 implements txn.Tx.
func (t *hpmtTx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Compute implements txn.Tx.
func (t *hpmtTx) Compute(ns int64) { t.e.cpu.Core.Compute(ns) }

// Commit implements txn.Tx (§5.2: "when a transaction commits, the hardware
// scans the L1 cache to find dirty cache lines updated by the transaction.
// It creates and persists log records for the speculatively logged pages and
// cache lines. It skips the persistence of those updated cache lines. It
// persists the undo logged cache lines.").
func (t *hpmtTx) Commit() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	e := t.e
	e.open = false
	c := e.cpu.Core
	if t.err != nil {
		t.rollback()
		c.TraceTxAbort()
		return t.err
	}
	commitStart := c.Now()
	var hot []uint64
	for l := range t.hotLines {
		hot = append(hot, l)
	}
	sortLines(hot)
	t.specLogLines(hot)
	if t.err != nil {
		t.rollback()
		c.TraceTxAbort()
		return t.err
	}
	e.spec.FlushPending(pmem.KindLog)
	e.undo.FlushPending(pmem.KindLog)
	// Persist cold (undo-logged) data; skip hot data unless DP.
	for _, l := range t.ws.Lines() {
		isHot := t.hotLines[l]
		if isHot && !e.opt.DataPersist {
			continue
		}
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
		if ce := e.cpu.L1.Lookup(l); ce != nil {
			ce.dirty = false
		}
	}
	c.Fence() // the single commit fence
	t.retireUndo()
	// Hot lines stay dirty with PBit set (they persist on eviction or epoch
	// reclamation); LogBit clears at commit (§5.1).
	for l := range t.hotLines {
		if ce := e.cpu.L1.Lookup(l); ce != nil {
			ce.LogBit = false
		}
	}
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, t.ws.Len(), 0)
	e.maybeCloseEpoch()
	return nil
}

func (t *hpmtTx) retireUndo() {
	e := t.e
	c := e.cpu.Core
	e.undo.AdvanceHead(e.undo.Tail())
	c.StoreUint64(e.env.Root+offHPMTUndoHead, e.undo.Head())
	c.PersistBarrier(e.env.Root+offHPMTUndoHead, 8, pmem.KindLog)
}

// Abort implements txn.Tx: restore the pre-transaction line images.
func (t *hpmtTx) Abort() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.rollback()
	t.e.cpu.Core.Stats.TxAborted++
	t.e.cpu.Core.TraceTxAbort()
	return nil
}

func (t *hpmtTx) rollback() {
	e := t.e
	for l, img := range t.old {
		e.cpu.WriteData(LineAddr(l), img[:])
		if ce := e.cpu.L1.Lookup(l); ce != nil {
			ce.LogBit = false
		}
	}
	// A hot line's pre-transaction value is covered by its page record or
	// an earlier commit record, so only restore architectural state; cold
	// lines' rollback persists like EDE's.
	for l := range t.logged {
		e.cpu.Core.Flush(LineAddr(l), pmem.LineSize, pmem.KindData)
	}
	e.cpu.Core.Fence()
	t.retireUndo()
}

// maybeCloseEpoch starts a new epoch when the open one exceeds its bounds
// and reclaims the oldest once MaxEpochs are outstanding (§5.2.1).
func (e *SpecHPMT) maybeCloseEpoch() {
	e.retryDeferredReclaims()
	if e.cur.bytes < e.opt.EpochBytes && e.cur.pages < e.opt.EpochPages {
		return
	}
	closed := e.cur
	closed.end = e.spec.Tail()
	closed.endTS = e.env.TS.Next()
	e.epochs = append(e.epochs, closed)
	// EID 0 is reserved for cold pages (§5.2.1); the remaining IDs cycle.
	// Reassigning an ID still held by an unreclaimed epoch first switches
	// that epoch's pages cold (clearepoch) and marks it inactive — the
	// §5.2.2 activeness rule: "let an epoch be inactive if its epoch ID has
	// been reassigned to a younger epoch of the same thread". Its records
	// stay in the ring (recovery still replays them) until reclamation
	// frees the space.
	eid := e.nextEID
	if eid == 0 || int(eid) > e.opt.MaxEpochs+1 {
		eid = 1
	}
	for i := range e.epochs {
		if e.epochs[i].eid == eid && !e.epochs[i].inactive {
			e.cpu.TLB.ClearEpoch(eid)
			e.cpu.Core.Compute(10)
			e.epochs[i].inactive = true
		}
	}
	e.nextEID = eid + 1
	e.cur = epochInfo{eid: eid, start: closed.end, startTS: e.env.TS.Next()}
	if len(e.epochs) >= e.opt.MaxEpochs {
		e.reclaimOldestEpoch()
	}
}

// retryDeferredReclaims drains reclamations that the multi-thread protocol
// deferred ("the software defers the check and log reclamation to further
// transaction starts or commits", §5.2.2).
func (e *SpecHPMT) retryDeferredReclaims() {
	for e.deferredCycles > 0 {
		if !e.reclaimOldestEpoch() {
			return
		}
		e.deferredCycles--
	}
}

// reclaimOldestEpoch is the three-step foreground reclamation of §5.2.1:
// persist the epoch's speculatively logged data, clearepoch its TLB
// entries, and free its log records.
func (e *SpecHPMT) reclaimOldestEpoch() bool {
	if len(e.epochs) == 0 {
		return true
	}
	ep := e.epochs[0]
	// Multi-thread protocol (§5.2.2): reclaim e only if every active epoch
	// — any thread's unreclaimed epoch, including open ones — started after
	// e ended. Otherwise another thread may still hold a page image that
	// predates records in e, and replaying it after e's records are gone
	// would regress committed data (Figure 11).
	if e.coord != nil && !e.coord.canReclaim(e, ep.endTS) {
		e.deferredCycles++
		return false
	}
	e.epochs = e.epochs[1:]
	c := e.cpu.Core
	reclaimStart := c.Now()
	// Step 1: persist the speculatively logged data of the epoch, found by
	// scanning its log records ("scanning the log record and selectively
	// flushing data addresses indicated in the log records via clwb",
	// §5.2.1) — the TLB may no longer track the pages if the epoch went
	// inactive through ID reassignment.
	flushed := map[uint64]bool{}
	off := ep.start
	for off < ep.end {
		payload, next, ok := e.spec.ScanRecord(c, off)
		if !ok {
			break
		}
		e.flushRecordData(payload, flushed)
		off = next
	}
	c.Fence()
	// Step 2: clearepoch EID — a single instruction switches the pages cold
	// (a no-op if reassignment already cleared them).
	e.cpu.TLB.ClearEpoch(ep.eid)
	c.Compute(10)
	// Step 3: reclaim the records.
	freed := int64(ep.end - e.spec.Head())
	e.spec.AdvanceHead(ep.end)
	c.StoreUint64(e.env.Root+offHPMTSpecHead, e.spec.Head())
	c.PersistBarrier(e.env.Root+offHPMTSpecHead, 8, pmem.KindLog)
	c.Stats.EpochsReclaimed++
	c.Stats.ReclaimCycles++
	c.Stats.AddLiveLog(-freed)
	c.TraceReclaim(reclaimStart, uint64(len(flushed)), freed)
	c.TraceLiveLog()
	return true
}

// flushRecordData writes back the still-dirty lines named by one
// speculative log record (page image or commit record).
func (e *SpecHPMT) flushRecordData(payload []byte, flushed map[uint64]bool) {
	if len(payload) < 16 {
		return
	}
	flushLine := func(l uint64) {
		if flushed[l] {
			return
		}
		flushed[l] = true
		if ce := e.cpu.L1.Lookup(l); ce != nil && ce.dirty {
			e.cpu.Core.Flush(LineAddr(l), pmem.LineSize, pmem.KindData)
			ce.dirty = false
			ce.PBit = false
		} else if e.cpu.Core.Device().IsDirty(LineAddr(l)) {
			e.cpu.Core.Flush(LineAddr(l), pmem.LineSize, pmem.KindData)
		}
	}
	switch payload[0] {
	case recKindPage:
		if len(payload) != 24+pmem.PageSize {
			return
		}
		page := binary.LittleEndian.Uint64(payload[16:])
		first := page * (pmem.PageSize / pmem.LineSize)
		for l := first; l < first+pmem.PageSize/pmem.LineSize; l++ {
			flushLine(l)
		}
	case recKindCommit:
		n := int(binary.LittleEndian.Uint32(payload[2:]))
		if len(payload) != 16+n*(8+pmem.LineSize) {
			return
		}
		p := 16
		for i := 0; i < n; i++ {
			flushLine(binary.LittleEndian.Uint64(payload[p:]))
			p += 8 + pmem.LineSize
		}
	}
}

// Recover implements txn.Engine with the three-step protocol of §5.1.1:
// replay the speculative log in chronological order (committed records redo,
// the trailing uncommitted page images roll hot pages back), then apply the
// undo log in reverse, then persist everything touched and retire both logs.
func (e *SpecHPMT) Recover() error {
	c := e.cpu.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	touched := txn.NewWriteSet()
	specTail := e.spec.Scan(c, func(off uint64, payload []byte) bool {
		if len(payload) < 16 {
			return false
		}
		switch payload[0] {
		case recKindPage:
			if len(payload) != 24+pmem.PageSize {
				return false
			}
			page := binary.LittleEndian.Uint64(payload[16:])
			c.StoreRaw(pmem.Addr(page*pmem.PageSize), payload[24:])
			touched.Add(pmem.Addr(page*pmem.PageSize), pmem.PageSize)
		case recKindCommit:
			n := int(binary.LittleEndian.Uint32(payload[2:]))
			if len(payload) != 16+n*(8+pmem.LineSize) {
				return false
			}
			p := 16
			for i := 0; i < n; i++ {
				line := binary.LittleEndian.Uint64(payload[p:])
				c.StoreRaw(LineAddr(line), payload[p+8:p+8+pmem.LineSize])
				touched.Add(LineAddr(line), pmem.LineSize)
				p += 8 + pmem.LineSize
			}
		default:
			return false
		}
		return true
	})
	// Undo records of the interrupted transaction, in reverse.
	type urec struct {
		line uint64
		old  []byte
	}
	var undos []urec
	undoTail := e.undo.Scan(c, func(off uint64, payload []byte) bool {
		if len(payload) != 8+pmem.LineSize {
			return false
		}
		undos = append(undos, urec{binary.LittleEndian.Uint64(payload), payload[8:]})
		return true
	})
	for i := len(undos) - 1; i >= 0; i-- {
		c.StoreRaw(LineAddr(undos[i].line), undos[i].old)
		touched.Add(LineAddr(undos[i].line), pmem.LineSize)
	}
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// With the data durable, both logs retire entirely.
	e.spec.ResumeAt(specTail)
	e.spec.AdvanceHead(specTail)
	c.StoreUint64(e.env.Root+offHPMTSpecHead, specTail)
	e.undo.ResumeAt(undoTail)
	e.undo.AdvanceHead(undoTail)
	c.StoreUint64(e.env.Root+offHPMTUndoHead, undoTail)
	c.Flush(e.env.Root+offHPMTSpecHead, 8, pmem.KindLog)
	c.Flush(e.env.Root+offHPMTUndoHead, 8, pmem.KindLog)
	c.Fence()
	e.epochs = nil
	e.cur = epochInfo{eid: 1, start: specTail, startTS: e.env.TS.Next()}
	e.nextEID = 2
	e.needScan = false
	return nil
}

// sortLines sorts a line slice ascending (insertion sort; commit sets are
// small).
func sortLines(ls []uint64) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
