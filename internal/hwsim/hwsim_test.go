package hwsim

import (
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func TestCacheHitMiss(t *testing.T) {
	c := &Cache{}
	_, hit, _, _ := c.Access(5)
	if hit {
		t.Fatal("first access should miss")
	}
	_, hit, _, _ = c.Access(5)
	if !hit {
		t.Fatal("second access should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := &Cache{}
	// Fill one set: lines congruent mod cacheSets.
	base := uint64(3)
	for i := 0; i < cacheWays; i++ {
		e, _, _, _ := c.Access(base + uint64(i)*cacheSets)
		e.dirty = true
	}
	// Touch the first line so it is MRU, then force an eviction.
	c.Access(base)
	_, _, victim, evicted := c.Access(base + uint64(cacheWays)*cacheSets)
	if !evicted {
		t.Fatal("conflict miss should evict a dirty victim")
	}
	if victim.tag == base {
		t.Fatal("LRU evicted the most recently used line")
	}
}

func TestCacheDirtyScan(t *testing.T) {
	c := &Cache{}
	for i := 0; i < 10; i++ {
		e, _, _, _ := c.Access(uint64(i))
		if i%2 == 0 {
			e.dirty = true
		}
	}
	n := 0
	c.DirtyLines(func(e *cacheLine) { n++ })
	if n != 5 {
		t.Fatalf("dirty scan found %d, want 5", n)
	}
}

func TestCacheCapacityProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := &Cache{}
		for _, l := range lines {
			c.Access(uint64(l))
		}
		// Valid entries never exceed capacity.
		n := 0
		for s := range c.sets {
			for w := range c.sets[s] {
				if c.sets[s][w].valid {
					n++
				}
			}
		}
		return n <= cacheSets*cacheWays
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHotnessAndClearEpoch(t *testing.T) {
	tlb := NewTLB()
	e := tlb.Lookup(7)
	if e.EpochBit {
		t.Fatal("fresh entry must be cold")
	}
	e.EpochBit = true
	e.CntEID = 3
	tlb.Lookup(8).EpochBit = true
	tlb.entries[8].CntEID = 4
	if n := tlb.ClearEpoch(3); n != 1 {
		t.Fatalf("ClearEpoch(3) switched %d pages, want 1", n)
	}
	if tlb.entries[7].EpochBit || tlb.entries[7].CntEID != 0 {
		t.Fatal("clearepoch must reset EpochBit and counter")
	}
	if !tlb.entries[8].EpochBit {
		t.Fatal("clearepoch must not touch other epochs")
	}
}

func TestTLBEvictionHook(t *testing.T) {
	tlb := NewTLB()
	evictions := 0
	tlb.OnEvict = func(v *tlbEntry) { evictions++ }
	for p := uint64(0); p < tlbEntries+10; p++ {
		tlb.Lookup(p)
	}
	if tlb.Len() > tlbEntries {
		t.Fatalf("TLB exceeded capacity: %d", tlb.Len())
	}
	if evictions != 10 {
		t.Fatalf("evictions=%d want 10", evictions)
	}
}

func newRingWorld(t *testing.T) (*pmem.Device, *Ring) {
	t.Helper()
	dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
	core := dev.NewCore()
	return dev, NewRing(core, 4096, 64<<10, 0)
}

func TestRingAppendScan(t *testing.T) {
	dev, r := newRingWorld(t)
	core := dev.NewCore()
	for i := byte(0); i < 10; i++ {
		if _, err := r.Append([]byte{i, i, i}); err != nil {
			t.Fatal(err)
		}
	}
	r.FlushPending(pmem.KindLog)
	var got []byte
	tail := r.Scan(core, func(off uint64, p []byte) bool {
		got = append(got, p[0])
		return true
	})
	if len(got) != 10 || got[9] != 9 {
		t.Fatalf("scan returned %v", got)
	}
	if tail != r.Tail() {
		t.Fatalf("scan tail %d != ring tail %d", tail, r.Tail())
	}
}

func TestRingWrapAndSaltProtection(t *testing.T) {
	dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
	core := dev.NewCore()
	r := NewRing(core, 4096, 1024, 0)
	payload := make([]byte, 100)
	// Fill, reclaim, and lap the ring several times.
	for lap := 0; lap < 30; lap++ {
		payload[0] = byte(lap)
		if _, err := r.Append(payload); err != nil {
			t.Fatal(err)
		}
		if r.Free() < 200 {
			r.AdvanceHead(r.Tail()) // retire everything
		}
	}
	r.FlushPending(pmem.KindLog)
	core.Fence()
	// After retiring all, a scan from head finds nothing: residual bytes of
	// earlier laps fail their salted checksums.
	r.AdvanceHead(r.Tail())
	n := 0
	r.Scan(core, func(off uint64, p []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan resurrected %d stale records after full reclaim", n)
	}
}

func TestRingFull(t *testing.T) {
	dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
	core := dev.NewCore()
	r := NewRing(core, 4096, 256, 0)
	if _, err := r.Append(make([]byte, 300)); err != ErrRingFull {
		t.Fatalf("err=%v want ErrRingFull", err)
	}
	if _, err := r.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(make([]byte, 200)); err != ErrRingFull {
		t.Fatalf("err=%v want ErrRingFull", err)
	}
}

func TestRingScanStopsAtTorn(t *testing.T) {
	dev, r := newRingWorld(t)
	core := dev.NewCore()
	r.Append([]byte{1, 2, 3})
	off2, _ := r.Append([]byte{4, 5, 6})
	r.FlushPending(pmem.KindLog)
	core.Fence()
	// Corrupt the second record's payload in place.
	core.Store(r.pos(off2+4), []byte{0xFF})
	core.PersistBarrier(r.pos(off2+4), 1, pmem.KindData)
	n := 0
	tail := r.Scan(core, func(off uint64, p []byte) bool { n++; return true })
	if n != 1 {
		t.Fatalf("scan applied %d records, want 1 (stop at torn)", n)
	}
	if tail != off2 {
		t.Fatalf("durable tail %d, want %d", tail, off2)
	}
}

// Conformance batteries: the hardware engines satisfy the same crash
// contract as the software ones.

func TestConformanceEDE(t *testing.T) {
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) { return NewEDE(env) })
}

func TestConformanceHOOP(t *testing.T) {
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) { return NewHOOP(env) })
}

// Conformance worlds are 32 MiB, so the batteries run with scaled-down
// epochs (which also exercises reclamation far more often than the 2 MiB
// production default would).
func confOpts(dp bool) HWOptions {
	return HWOptions{
		EpochBytes:  64 << 10,
		EpochPages:  16,
		MaxEpochs:   4,
		SpecRingCap: 4 << 20,
		UndoRingCap: 1 << 20,
		DataPersist: dp,
	}
}

func TestConformanceSpecHPMT(t *testing.T) {
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) {
		return NewSpecHPMT(env, confOpts(false))
	})
}

func TestConformanceSpecHPMTDP(t *testing.T) {
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) {
		return NewSpecHPMT(env, confOpts(true))
	})
}

func TestConformanceSpecHPMTTinyEpochs(t *testing.T) {
	// Small epochs force constant transitions and reclamations inside the
	// standard battery.
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) {
		return NewSpecHPMT(env, HWOptions{
			EpochBytes: 8 << 10, EpochPages: 4, MaxEpochs: 3,
			SpecRingCap: 2 << 20, UndoRingCap: 1 << 20,
		})
	})
}

func TestNoLogCommitDurable(t *testing.T) {
	// no-log persists committed data (it only lacks uncommitted-revocation).
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e := NewNoLog(env)
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 77)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	w.Dev.CrashClean()
	if got := w.Dev.NewCore().LoadUint64(a); got != 77 {
		t.Fatalf("a=%d want 77", got)
	}
}

func TestHotPageTransition(t *testing.T) {
	w := txntest.NewWorld(128 << 20)
	env := w.Env(false)
	e, err := NewSpecHPMT(env, HWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	// Eight stores to one page saturate the 3-bit counter.
	tx := e.Begin()
	for i := 0; i < 8; i++ {
		tx.StoreUint64(a+pmem.Addr(i*64), uint64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.cpu.Core.Stats.PageCopies != 1 {
		t.Fatalf("page copies = %d, want 1", e.cpu.Core.Stats.PageCopies)
	}
	te := e.cpu.TLB.Lookup(pmem.PageOf(a))
	if !te.EpochBit {
		t.Fatal("page should be hot after counter saturation")
	}
	// Hot stores skip data persistence at commit.
	before := e.cpu.Core.Stats.PMDataBytes
	tx = e.Begin()
	tx.StoreUint64(a, 99)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.cpu.Core.Stats.PMDataBytes - before; got != 0 {
		t.Fatalf("hot commit flushed %d data bytes; want 0", got)
	}
}

func TestColdPathPersistsData(t *testing.T) {
	w := txntest.NewWorld(128 << 20)
	env := w.Env(false)
	e, _ := NewSpecHPMT(env, HWOptions{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	before := e.cpu.Core.Stats.PMDataBytes
	tx := e.Begin()
	tx.StoreUint64(a, 5) // single store: page stays cold
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.cpu.Core.Stats.PMDataBytes - before; got == 0 {
		t.Fatal("cold commit must persist the data line")
	}
}

func TestEpochReclamationBoundsLog(t *testing.T) {
	w := txntest.NewWorld(128 << 20)
	env := w.Env(false)
	e, _ := NewSpecHPMT(env, HWOptions{EpochBytes: 16 << 10, EpochPages: 8, MaxEpochs: 4})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	for r := uint64(0); r < 2000; r++ {
		tx := e.Begin()
		for i := 0; i < 8; i++ {
			tx.StoreUint64(a+pmem.Addr(i*64), r)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if e.cpu.Core.Stats.EpochsReclaimed == 0 {
		t.Fatal("epoch reclamation never ran")
	}
	// Live log bounded by MaxEpochs * EpochBytes plus slack.
	bound := 6 * (16 << 10) * 2
	if e.LiveLogBytes() > bound {
		t.Fatalf("live spec log %dB exceeds epoch bound %dB", e.LiveLogBytes(), bound)
	}
}

func TestSpecHPMTWriteTrafficBelowEDE(t *testing.T) {
	// The Figure 14 property on a hot workload: SpecHPMT writes less to PM
	// than EDE because hot data persists only on eviction/reclamation.
	run := func(mk func(env txn.Env) (txn.Engine, error)) uint64 {
		w := txntest.NewWorld(128 << 20)
		env := w.Env(false)
		e, err := mk(env)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		a, _ := w.DataHeap.Alloc(4096)
		for r := uint64(0); r < 300; r++ {
			tx := e.Begin()
			for i := 0; i < 8; i++ {
				tx.StoreUint64(a+pmem.Addr(i*64), r)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		total := uint64(0)
		switch eng := e.(type) {
		case *EDE:
			total = eng.cpu.Core.Stats.PMWriteBytes
		case *SpecHPMT:
			total = eng.cpu.Core.Stats.PMWriteBytes
		}
		return total
	}
	ede := run(func(env txn.Env) (txn.Engine, error) { return NewEDE(env) })
	spec := run(func(env txn.Env) (txn.Engine, error) { return NewSpecHPMT(env, HWOptions{}) })
	if spec >= ede {
		t.Fatalf("SpecHPMT traffic (%d) should undercut EDE (%d) on hot data", spec, ede)
	}
}

func TestHOOPLogsCacheMisses(t *testing.T) {
	w := txntest.NewWorld(128 << 20)
	env := w.Env(false)
	e, _ := NewHOOP(env)
	defer e.Close()
	// Touch many distinct lines: each read miss adds a log record entry.
	addrs := make([]pmem.Addr, 64)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(4096)
	}
	tx := e.Begin()
	var b [8]byte
	for _, a := range addrs {
		tx.Load(a, b[:])
	}
	tx.StoreUint64(addrs[0], 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The record carries ~64 miss images (64B each) plus one small write.
	if e.cpu.Core.Stats.PMLogBytes < 64*pmem.LineSize {
		t.Fatalf("HOOP miss logging missing: log traffic %dB", e.cpu.Core.Stats.PMLogBytes)
	}
}

func TestEDEUndoPerLinePerTx(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := NewEDE(env)
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	for i := 0; i < 10; i++ {
		tx.StoreUint64(a, uint64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.cpu.Core.Stats.LogRecords != 1 {
		t.Fatalf("log records = %d, want 1 (per-line coalescing)", e.cpu.Core.Stats.LogRecords)
	}
}
