package hwsim

// TLB geometry (Table 1: the private L2 TLB has 1536 entries; tracking
// capacity is what bounds speculative logging's memory overhead, §5.1).
const tlbEntries = 1536

// hotThreshold is the 3-bit saturating counter's maximum: a page whose
// counter saturates is considered hot and switches to speculative logging
// (§5.1: "when the counter reaches a threshold (for simplicity, the maximum
// value), the page is considered to have become hot").
const hotThreshold = 7

// tlbEntry carries the hotness metadata hardware SpecPMT adds to each TLB
// entry (Figure 9): an EpochBit and a 3-bit field that is a saturating
// store counter while cold and the epoch ID while hot.
type tlbEntry struct {
	page     uint64
	EpochBit bool
	CntEID   uint8
	lru      uint64
}

// TLB models the private translation look-aside buffer with LRU
// replacement. A page evicted from the TLB loses its metadata and is
// treated as cold again ("if a TLB entry is evicted or invalidated, we can
// no longer track the page, but such a page is likely no longer hot").
type TLB struct {
	entries map[uint64]*tlbEntry
	tick    uint64
	Evicted uint64
	// OnEvict runs before an entry is dropped by LRU replacement, so the
	// engine can persist a hot page's data before its tracking metadata is
	// lost.
	OnEvict func(victim *tlbEntry)
}

// NewTLB returns an empty TLB.
func NewTLB() *TLB {
	return &TLB{entries: make(map[uint64]*tlbEntry, tlbEntries)}
}

// Lookup returns the entry for page, allocating one (cold, counter zero) on
// miss and evicting the LRU entry if the TLB is full.
func (t *TLB) Lookup(page uint64) *tlbEntry {
	t.tick++
	if e, ok := t.entries[page]; ok {
		e.lru = t.tick
		return e
	}
	if len(t.entries) >= tlbEntries {
		var victim *tlbEntry
		for _, e := range t.entries {
			if victim == nil || e.lru < victim.lru {
				victim = e
			}
		}
		if t.OnEvict != nil {
			t.OnEvict(victim)
		}
		delete(t.entries, victim.page)
		t.Evicted++
	}
	e := &tlbEntry{page: page, lru: t.tick}
	t.entries[page] = e
	return e
}

// ClearEpoch implements the clearepoch EID instruction (§5.2): every entry
// speculatively logged in the given epoch reverts to cold with a zeroed
// counter. Returns how many pages were switched.
func (t *TLB) ClearEpoch(eid uint8) int {
	n := 0
	for _, e := range t.entries {
		if e.EpochBit && e.CntEID == eid {
			e.EpochBit = false
			e.CntEID = 0
			n++
		}
	}
	return n
}

// HotPages returns the pages currently marked hot in the given epoch.
func (t *TLB) HotPages(eid uint8) []uint64 {
	var pages []uint64
	for _, e := range t.entries {
		if e.EpochBit && e.CntEID == eid {
			pages = append(pages, e.page)
		}
	}
	return pages
}

// Len returns the resident entry count.
func (t *TLB) Len() int { return len(t.entries) }
