// Package hwsim is the behavioural model of the paper's hardware proposals
// (§5), standing in for the Gem5 + Ruby setup of §7.1.3. It models the
// microarchitectural state hardware SpecPMT extends — an L1 data cache with
// PBit/LogBit per line (Figure 9), private TLBs with an EpochBit and a
// 3-bit saturating counter per entry, a transaction register, and an epoch
// ID register (Figure 8) — plus the four evaluated designs (EDE, HOOP,
// SpecHPMT-DP, SpecHPMT) and the no-log ideal, all on top of the shared
// persistent memory device model of internal/pmem with Table 1 latencies.
//
// The hardware engines expose the same txn.Engine interface as the software
// engines, so the same conformance battery, crash-injection harness, and
// experiment runner drive them.
package hwsim

import (
	"specpmt/internal/pmem"
)

// Cache geometry (Table 1: 32KB, 8-way, 64B lines -> 64 sets).
const (
	cacheWays = 8
	cacheSets = 64
)

// cacheLine is one L1 entry with the two flag bits hardware SpecPMT adds
// (Figure 9).
type cacheLine struct {
	tag    uint64 // line index (full address / 64)
	valid  bool
	dirty  bool
	PBit   bool // line needs persistence on eviction (hot-page data)
	LogBit bool // line must be speculatively logged at commit/eviction
	lru    uint64
}

// Cache is the L1 data cache model: metadata only — the architectural data
// lives in the pmem device.
type Cache struct {
	sets    [cacheSets][cacheWays]cacheLine
	tick    uint64
	Hits    uint64
	Misses  uint64
	Evicted uint64
}

// setOf maps a line index to its set.
func setOf(line uint64) int { return int(line % cacheSets) }

// Lookup finds the entry for a line without changing state. Returns nil on
// miss.
func (c *Cache) Lookup(line uint64) *cacheLine {
	set := &c.sets[setOf(line)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// Access touches a line, allocating it on miss (LRU replacement). It returns
// the entry, whether it was a hit, and the victim line evicted to make room
// (valid only when evicted=true and the victim was dirty).
func (c *Cache) Access(line uint64) (e *cacheLine, hit bool, victim cacheLine, evicted bool) {
	c.tick++
	set := &c.sets[setOf(line)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lru = c.tick
			c.Hits++
			return &set[i], true, cacheLine{}, false
		}
	}
	c.Misses++
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	v := set[vi]
	ev := v.valid && v.dirty
	if v.valid {
		c.Evicted++
	}
	set[vi] = cacheLine{tag: line, valid: true, lru: c.tick}
	return &set[vi], false, v, ev
}

// DirtyLines calls fn for every valid dirty line, optionally filtered by a
// predicate on the entry. Used by commit scans ("the hardware scans the L1
// cache to find dirty cache lines updated by the transaction", §5.2) and by
// epoch reclamation.
func (c *Cache) DirtyLines(fn func(e *cacheLine)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			e := &c.sets[s][w]
			if e.valid && e.dirty {
				fn(e)
			}
		}
	}
}

// Flush invalidates the whole cache, calling fn for each dirty line first
// (wbnoinvd-style write-back used by mechanism switches, §4.3.1).
func (c *Cache) Flush(fn func(e *cacheLine)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			e := &c.sets[s][w]
			if e.valid && e.dirty && fn != nil {
				fn(e)
			}
			*e = cacheLine{}
		}
	}
}

// LineAddr returns the byte address of a line index.
func LineAddr(line uint64) pmem.Addr { return pmem.Addr(line * pmem.LineSize) }
