package hwsim

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func TestTLBEvictionPersistsHotPage(t *testing.T) {
	// When a hot page's TLB entry is evicted, its tracking metadata is lost;
	// the engine must persist the page's dirty lines first, or an epoch
	// reclamation could never flush them and a crash would strand committed
	// data. Force TLB pressure by touching more pages than TLB entries.
	w := txntest.NewWorld(512 << 20)
	env := w.Env(false)
	e, err := NewSpecHPMT(env, HWOptions{
		EpochBytes: 1 << 30, EpochPages: 1 << 20, MaxEpochs: 8,
		SpecRingCap: 64 << 20, UndoRingCap: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Make one page hot and commit a value into it.
	hot, _ := w.DataHeap.Alloc(4096)
	tx := e.Begin()
	for k := 0; k < 8; k++ {
		tx.StoreUint64(hot+pmem.Addr(k*64), 42)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !e.cpu.TLB.Lookup(pmem.PageOf(hot)).EpochBit {
		t.Fatal("page should be hot")
	}
	// The stores made AFTER the cold-to-hot transition (the 7th and 8th)
	// skip commit-time persistence: their lines are exactly the deferred
	// data the eviction hook must protect.
	protected := hot + pmem.Addr(7*64)
	if ce := e.cpu.L1.Lookup(pmem.LineOf(protected)); ce == nil || !ce.dirty {
		t.Fatal("post-transition hot line should still be dirty after commit")
	}
	// Thrash the TLB with single stores to many other pages (TLB entries
	// are allocated on stores).
	for p := 0; p < tlbEntries+64; p++ {
		a, err := w.DataHeap.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		tx.StoreUint64(a, uint64(p))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if e.cpu.TLB.Lookup(pmem.PageOf(hot)).EpochBit {
		t.Fatal("hot page entry should have been evicted and re-allocated cold")
	}
	// The deferred hot value must now be in the persistence domain even
	// without any further fence: the eviction hook flushed it before the
	// tracking metadata was lost.
	w.Dev.CrashClean()
	if got := w.Dev.NewCore().LoadUint64(protected); got != 42 {
		t.Fatalf("hot value lost after TLB eviction + crash: %d", got)
	}
}

func TestEIDReassignmentInactivatesEpoch(t *testing.T) {
	// Cycling past MaxEpochs+1 epoch IDs must clearepoch the colliding old
	// epoch and mark it inactive (§5.2.2's activeness rule).
	w := txntest.NewWorld(512 << 20)
	env := w.Env(false)
	opt := HWOptions{EpochBytes: 1 << 30, EpochPages: 1, MaxEpochs: 3,
		SpecRingCap: 32 << 20, UndoRingCap: 4 << 20}
	e, err := NewSpecHPMT(env, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Attach a coordinator with another idle thread so reclamations defer
	// and epochs accumulate.
	env2 := w.Env(true)
	idle, err := NewSpecHPMT(env2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	co := &Coordinator{}
	co.register(e)
	co.register(idle)
	e.coord = co
	idle.coord = co
	// Give the idle thread an old open epoch (its cur.startTS is ancient by
	// construction), then drive epochs on e.
	for n := 0; n < 8; n++ {
		p, _ := w.DataHeap.Alloc(4096)
		tx := e.Begin()
		for k := 0; k < 8; k++ {
			tx.StoreUint64(p+pmem.Addr(k*64), uint64(n))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	inactive := 0
	for _, ep := range e.epochs {
		if ep.inactive {
			inactive++
		}
	}
	if inactive == 0 {
		t.Fatalf("EID cycling never inactivated an epoch (epochs=%d deferred=%d)",
			len(e.epochs), e.deferredCycles)
	}
}

func TestDPTrafficMatchesEDE(t *testing.T) {
	// §7.3: "EDE and SpecHPMT-DP incur the most write traffic among all
	// designs... largely the same amount" — property-check on a mixed
	// workload of hot and cold updates.
	drive := func(e txn.Engine, w *txntest.World) {
		hot, _ := w.DataHeap.Alloc(4096)
		for r := 0; r < 150; r++ {
			cold, _ := w.DataHeap.Alloc(4096)
			tx := e.Begin()
			for k := 0; k < 4; k++ {
				tx.StoreUint64(hot+pmem.Addr(k*64), uint64(r))
			}
			tx.StoreUint64(cold, uint64(r))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wa := txntest.NewWorld(128 << 20)
	ede, _ := NewEDE(wa.Env(false))
	drive(ede, wa)
	edeTraffic := ede.Snapshot().PMWriteBytes
	ede.Close()

	wb := txntest.NewWorld(128 << 20)
	dp, _ := NewSpecHPMT(wb.Env(false), HWOptions{DataPersist: true,
		EpochBytes: 1 << 20, EpochPages: 64, MaxEpochs: 4,
		SpecRingCap: 32 << 20, UndoRingCap: 4 << 20})
	drive(dp, wb)
	dpTraffic := dp.Snapshot().PMWriteBytes
	dp.Close()

	ratio := float64(dpTraffic) / float64(edeTraffic)
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("SpecHPMT-DP traffic should be largely the same as EDE's: ratio %.2f (%d vs %d)",
			ratio, dpTraffic, edeTraffic)
	}
}

func TestSpeculationToggle(t *testing.T) {
	w := txntest.NewWorld(256 << 20)
	env := w.Env(false)
	e, _ := NewSpecHPMT(env, HWOptions{})
	defer e.Close()
	page, _ := w.DataHeap.Alloc(4096)
	hotTx := func(v uint64) {
		tx := e.Begin()
		for k := 0; k < 8; k++ {
			tx.StoreUint64(page+pmem.Addr(k*64), v)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	hotTx(1)
	if e.HotPageCount() != 1 {
		t.Fatalf("hot pages = %d, want 1", e.HotPageCount())
	}
	// Disabling speculation demotes and persists the page.
	e.SetSpeculation(false)
	if e.HotPageCount() != 0 {
		t.Fatal("disable must demote hot pages")
	}
	w.Dev.CrashClean()
	if got := w.Dev.NewCore().LoadUint64(page); got != 1 {
		t.Fatalf("demotion must persist hot data first: %d", got)
	}
	// While disabled, pages never go hot and data persists at commit.
	hotTx(2)
	if e.HotPageCount() != 0 {
		t.Fatal("page went hot while speculation disabled")
	}
	w.Dev.CrashClean()
	if got := w.Dev.NewCore().LoadUint64(page); got != 2 {
		t.Fatalf("undo-only mode must persist at commit: %d", got)
	}
	// Re-enable: hotness returns.
	e.SetSpeculation(true)
	hotTx(3)
	hotTx(4)
	if e.HotPageCount() != 1 {
		t.Fatalf("hot pages after re-enable = %d, want 1", e.HotPageCount())
	}
	if !e.SpeculationEnabled() {
		t.Fatal("control bit readback wrong")
	}
}

func TestOnChipCost(t *testing.T) {
	bits, kb := OnChipCost()
	if kb < 0.85 || kb > 1.0 {
		t.Fatalf("on-chip cost %.2fKB; paper reports 0.91KB (§5.4)", kb)
	}
	if bits != (64+1536)*4+512*2+128 {
		t.Fatalf("bits = %d", bits)
	}
}
