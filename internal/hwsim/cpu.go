package hwsim

import (
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
)

// CPU bundles the microarchitectural state of one simulated core: the pmem
// core (clock, WPQ, architectural memory), the L1 model, and the TLB with
// SpecPMT's extensions. Engines own a CPU and steer its eviction behaviour
// through the hooks.
type CPU struct {
	Core *pmem.Core
	L1   *Cache
	TLB  *TLB
	Lat  sim.Latency

	// BeforeEvict runs before a dirty line is written back on eviction, so
	// an engine can persist a log record first (SpecHPMT must speculatively
	// log a LogBit line before it may leave the cache, §5.2: "hardware
	// SpecPMT allows an L1 cache line updated in the transaction to
	// overflow ... as long as the hardware speculatively logs the cache
	// line prior to the eviction").
	BeforeEvict func(victim cacheLine)
	// SuppressWriteback, when set, stops dirty evictions from generating a
	// persistent write-back (HOOP's out-of-place design: the data region is
	// written only by the GC).
	SuppressWriteback bool
	// TrackMisses, when set, records the line index of every L1 miss in
	// MissLines (HOOP creates a log record per cache miss in a transaction,
	// §7.3).
	TrackMisses bool
	// MissLines accumulates missed lines while TrackMisses is set.
	MissLines []uint64
}

// NewCPU builds a CPU over a fresh pmem core of the device. The timing
// table comes from the device's media profile (Config.Profile/Platform), so
// every hardware engine automatically runs under whatever profile the
// experiment selected.
func NewCPU(dev *pmem.Device) *CPU {
	core := dev.NewCore()
	core.SetTrackName("cpu")
	return &CPU{Core: core, L1: &Cache{}, TLB: NewTLB(), Lat: dev.Latency()}
}

// touch charges the L1 access cost for a line and handles replacement,
// returning the entry. Dirty victims are (optionally) logged by the engine
// hook and then written back to persistent memory asynchronously.
func (c *CPU) touch(line uint64) *cacheLine {
	e, hit, victim, evictedDirty := c.L1.Access(line)
	if hit {
		c.Core.Compute(c.Lat.CacheRead)
		return e
	}
	if c.TrackMisses {
		c.MissLines = append(c.MissLines, line)
	}
	c.Core.Compute(c.Lat.PMRead) // fill from memory
	if evictedDirty {
		if c.BeforeEvict != nil {
			c.BeforeEvict(victim)
		}
		if !c.SuppressWriteback {
			c.Core.Flush(LineAddr(victim.tag), pmem.LineSize, pmem.KindData)
		}
	}
	return e
}

// WriteData performs an architectural store: L1 allocation, data write, and
// dirty marking. The engine decides flag bits on the returned entries.
func (c *CPU) WriteData(addr pmem.Addr, data []byte) []*cacheLine {
	if len(data) == 0 {
		return nil
	}
	first, last := pmem.LineOf(addr), pmem.LineOf(addr+pmem.Addr(len(data)-1))
	var entries []*cacheLine
	for l := first; l <= last; l++ {
		e := c.touch(l)
		e.dirty = true
		entries = append(entries, e)
	}
	c.Core.StoreRaw(addr, data)
	c.Core.Stats.Stores++
	c.Core.Stats.StoreBytes += uint64(len(data))
	return entries
}

// ReadData performs an architectural load through the L1 model.
func (c *CPU) ReadData(addr pmem.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	first, last := pmem.LineOf(addr), pmem.LineOf(addr+pmem.Addr(len(buf)-1))
	for l := first; l <= last; l++ {
		c.touch(l)
	}
	c.Core.LoadRaw(addr, buf)
	c.Core.Stats.Loads++
	c.Core.Stats.LoadBytes += uint64(len(buf))
}

// ReadLine copies the architectural content of a line (log-record capture;
// cache-resident, so no extra timing beyond the touch the caller did).
func (c *CPU) ReadLine(line uint64, buf *[pmem.LineSize]byte) {
	c.Core.LoadRaw(LineAddr(line), buf[:])
}
