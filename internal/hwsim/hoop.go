package hwsim

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// HOOP models the hardware-assisted out-of-place update design (Cai et al.,
// ISCA'20) as the paper configures it (§7.1.3): fences eliminated,
// asynchronous data persistence, indirect data access through an on-chip
// mapping table (whose redirection latency is ignored, modeling HOOP
// optimistically, as the paper does). Write intents are logged at commit;
// a garbage collector coalesces log records and applies them to the data
// region in 128 KiB batches. The GC's write bursts share the memory
// controller with the application — the write contention §7.3 identifies as
// HOOP's weakness. HOOP also creates a log record for every cache miss in a
// transaction, which inflates its log traffic on large-footprint
// applications (ssca2, vacation, yada).
type HOOP struct {
	env    txn.Env
	cpu    *CPU
	gcCore *pmem.Core
	ring   *Ring
	// pendingLines are committed-but-not-GCed distinct data lines.
	pendingLines map[uint64]bool
	gcWindow     int
	open         bool
}

const (
	hoopMagic = 0x484f4f504c4f4731 // "HOOPLOG1"

	offHOOPMagic    = 0
	offHOOPRingBase = 8
	offHOOPRingCap  = 16
	offHOOPHead     = 24

	hoopRingCap  = 16 << 20
	hoopGCWindow = 128 << 10 // "The GC reclaims 128KB log records at each GC cycle"
	// hoopEvictionLines is the 16 KiB on-chip eviction buffer (256 lines)
	// holding out-of-place committed data awaiting GC; when it fills, the
	// application must wait for a GC cycle — the write contention of §7.3.
	hoopEvictionLines = 256

	hoopRecWrite  = 1
	hoopRecMiss   = 2
	hoopRecCommit = 3
)

func init() {
	txn.Register("HOOP", func(env txn.Env) (txn.Engine, error) { return NewHOOP(env) })
}

// NewHOOP attaches to (or initialises) a HOOP engine at env.Root.
func NewHOOP(env txn.Env) (*HOOP, error) {
	e := &HOOP{
		env:          env,
		cpu:          NewCPU(env.Dev),
		gcCore:       env.Dev.NewCore(),
		pendingLines: map[uint64]bool{},
		gcWindow:     hoopGCWindow,
	}
	e.cpu.SuppressWriteback = true // out-of-place: only the GC writes data
	e.gcCore.SetTrackName("hoop.gc")
	c := e.cpu.Core
	boot := env.Core
	if boot.LoadUint64(env.Root+offHOOPMagic) == hoopMagic {
		base := pmem.Addr(boot.LoadUint64(env.Root + offHOOPRingBase))
		capB := int(boot.LoadUint64(env.Root + offHOOPRingCap))
		head := boot.LoadUint64(env.Root + offHOOPHead)
		e.ring = NewRing(c, base, capB, head)
		return e, nil
	}
	base, err := env.LogHeap.Alloc(hoopRingCap)
	if err != nil {
		return nil, fmt.Errorf("hwsim: HOOP log: %w", err)
	}
	e.ring = NewRing(c, base, hoopRingCap, 0)
	boot.StoreUint64(env.Root+offHOOPRingBase, uint64(base))
	boot.StoreUint64(env.Root+offHOOPRingCap, hoopRingCap)
	boot.StoreUint64(env.Root+offHOOPHead, 0)
	boot.StoreUint64(env.Root+offHOOPMagic, hoopMagic)
	boot.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *HOOP) Name() string { return "HOOP" }

// Close implements txn.Engine: drain the GC.
func (e *HOOP) Close() error {
	e.runGC(e.ring.Tail(), false)
	return nil
}

// Begin implements txn.Engine.
func (e *HOOP) Begin() txn.Tx {
	if e.open {
		panic("hwsim: one transaction per core")
	}
	e.open = true
	e.cpu.Core.Stats.TxBegun++
	e.cpu.Core.TraceTxBegin()
	e.cpu.TrackMisses = true
	e.cpu.MissLines = e.cpu.MissLines[:0]
	return &hoopTx{e: e, ws: txn.NewWriteSet()}
}

type hoopTx struct {
	e    *HOOP
	ws   *txn.WriteSet
	vals [][]byte
	done bool
}

// Store buffers the write intent out of place (redirection table).
func (t *hoopTx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("hwsim: use of finished transaction")
	}
	t.ws.Add(addr, len(data))
	t.vals = append(t.vals, append([]byte(nil), data...))
	t.e.cpu.Core.Compute(1) // buffer insert; redirection latency is ignored
	t.e.cpu.Core.Stats.Stores++
	t.e.cpu.Core.Stats.StoreBytes += uint64(len(data))
}

// StoreUint64 implements txn.Tx.
func (t *hoopTx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Load reads through the cache with the transaction's own intents overlaid.
func (t *hoopTx) Load(addr pmem.Addr, buf []byte) {
	t.e.cpu.ReadData(addr, buf)
	for i, r := range t.ws.Ranges() {
		lo, hi := r.Addr, r.Addr+pmem.Addr(r.Size)
		qlo, qhi := addr, addr+pmem.Addr(len(buf))
		if lo >= qhi || qlo >= hi {
			continue
		}
		start, end := lo, hi
		if qlo > start {
			start = qlo
		}
		if qhi < end {
			end = qhi
		}
		copy(buf[start-qlo:end-qlo], t.vals[i][start-lo:end-lo])
	}
}

// LoadUint64 implements txn.Tx.
func (t *hoopTx) LoadUint64(addr pmem.Addr) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Compute implements txn.Tx.
func (t *hoopTx) Compute(ns int64) { t.e.cpu.Core.Compute(ns) }

// Commit persists one log record — write intents plus the transaction's
// cache-miss lines — with hardware-ordered acceptance (no fence on the
// critical path beyond the commit marker), then applies the intents to the
// (volatile view of the) data and schedules GC.
func (t *hoopTx) Commit() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	e := t.e
	e.open = false
	e.cpu.TrackMisses = false
	c := e.cpu.Core
	commitStart := c.Now()
	if t.ws.Len() == 0 {
		c.Stats.TxCommitted++
		c.TraceTxCommit(commitStart, 0, 0)
		return nil
	}
	// HOOP creates one log record per data update and per cache miss
	// (§7.3), then a commit marker. The per-record framing is part of its
	// log-traffic amplification on large-footprint applications.
	appendRec := func(payload []byte) error {
		if _, err := e.ring.Append(payload); err != nil {
			e.runGC(e.ring.Tail(), true) // log pressure: synchronous GC
			if _, err2 := e.ring.Append(payload); err2 != nil {
				return err2
			}
		}
		c.Stats.LogRecords++
		c.Stats.AddLiveLog(int64(len(payload) + ringFrame))
		c.TraceLogAppend(len(payload) + ringFrame)
		return nil
	}
	var bytesLogged int
	for i, r := range t.ws.Ranges() {
		payload := make([]byte, 13+r.Size)
		payload[0] = hoopRecWrite
		binary.LittleEndian.PutUint64(payload[1:], uint64(r.Addr))
		binary.LittleEndian.PutUint32(payload[9:], uint32(r.Size))
		copy(payload[13:], t.vals[i])
		if err := appendRec(payload); err != nil {
			c.Stats.TxAborted++
			c.TraceTxAbort()
			return err
		}
		bytesLogged += len(payload)
	}
	for _, l := range e.cpu.MissLines {
		payload := make([]byte, 9+pmem.LineSize)
		payload[0] = hoopRecMiss
		binary.LittleEndian.PutUint64(payload[1:], l)
		e.cpu.Core.LoadRaw(LineAddr(l), payload[9:])
		if err := appendRec(payload); err != nil {
			c.Stats.TxAborted++
			c.TraceTxAbort()
			return err
		}
		bytesLogged += len(payload)
	}
	marker := make([]byte, 9)
	marker[0] = hoopRecCommit
	binary.LittleEndian.PutUint64(marker[1:], e.env.TS.Next())
	if err := appendRec(marker); err != nil {
		c.Stats.TxAborted++
		c.TraceTxAbort()
		return err
	}
	e.ring.FlushPending(pmem.KindLog)
	c.Fence() // commit point: the marker is durable
	// Apply intents to the architectural image (committed values become
	// visible; persistence is the GC's job).
	for i, r := range t.ws.Ranges() {
		ents := e.cpu.WriteData(r.Addr, t.vals[i])
		for _, ce := range ents {
			e.pendingLines[ce.tag] = true
		}
	}
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, t.ws.Len(), bytesLogged)
	if len(e.pendingLines) >= hoopEvictionLines {
		// Eviction buffer full: the application stalls behind the GC.
		e.runGC(e.ring.Tail(), true)
	} else if e.ring.Live() > e.gcWindow {
		e.runGC(e.ring.Tail(), false)
	}
	return nil
}

// Abort discards the buffered intents.
func (t *hoopTx) Abort() error {
	if t.done {
		return errors.New("hwsim: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.e.cpu.TrackMisses = false
	t.e.cpu.Core.Stats.TxAborted++
	t.e.cpu.Core.TraceTxAbort()
	return nil
}

// runGC coalesces the pending window and applies it to the data region: one
// write-back per distinct line, issued through the shared memory controller
// ("its occasional garbage collection exhausts the write buffers on the
// memory controller, causing intensive write contention with application
// working threads", §7.3). When sync is set — the on-chip eviction buffer
// or the log ring is full — the application core performs the cycle itself
// and stalls for it; otherwise the GC core runs it in the background.
func (e *HOOP) runGC(upto uint64, sync bool) {
	if len(e.pendingLines) == 0 && e.ring.Head() == upto {
		return
	}
	gc := e.gcCore
	if sync {
		gc = e.cpu.Core
	}
	gcStart := gc.Now()
	var lines []uint64
	for l := range e.pendingLines {
		lines = append(lines, l)
	}
	sortLines(lines)
	for _, l := range lines {
		gc.Flush(LineAddr(l), pmem.LineSize, pmem.KindGC)
		if ce := e.cpu.L1.Lookup(l); ce != nil {
			ce.dirty = false
		}
	}
	gc.Fence()
	live := int64(e.ring.Live())
	e.ring.AdvanceHead(upto)
	gc.StoreUint64(e.env.Root+offHOOPHead, upto)
	gc.PersistBarrier(e.env.Root+offHOOPHead, 8, pmem.KindLog)
	e.pendingLines = map[uint64]bool{}
	e.cpu.Core.Stats.AddLiveLog(-live)
	e.cpu.Core.Stats.ReclaimCycles++
	gc.TraceReclaim(gcStart, uint64(len(lines)), live)
	e.cpu.Core.TraceLiveLog()
}

// Recover implements txn.Engine: replay intent records from the durable
// head, applying each group only when its commit marker is present (write
// records of an interrupted transaction are discarded).
func (e *HOOP) Recover() error {
	c := e.cpu.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	touched := txn.NewWriteSet()
	type intent struct {
		addr pmem.Addr
		val  []byte
	}
	var group []intent
	tail := e.ring.Scan(c, func(off uint64, payload []byte) bool {
		if len(payload) < 9 {
			return false
		}
		switch payload[0] {
		case hoopRecWrite:
			if len(payload) < 13 {
				return false
			}
			addr := pmem.Addr(binary.LittleEndian.Uint64(payload[1:]))
			sz := int(binary.LittleEndian.Uint32(payload[9:]))
			if 13+sz != len(payload) {
				return false
			}
			group = append(group, intent{addr, append([]byte(nil), payload[13:]...)})
		case hoopRecMiss:
			// Read-set image; no replay needed.
		case hoopRecCommit:
			for _, in := range group {
				c.StoreRaw(in.addr, in.val)
				touched.Add(in.addr, len(in.val))
			}
			group = group[:0]
		default:
			return false
		}
		return true
	})
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	e.ring.ResumeAt(tail)
	e.ring.AdvanceHead(tail)
	c.StoreUint64(e.env.Root+offHOOPHead, tail)
	c.PersistBarrier(e.env.Root+offHOOPHead, 8, pmem.KindLog)
	e.pendingLines = map[uint64]bool{}
	return nil
}
