package hwsim

import (
	"testing"

	"specpmt/internal/pmem"
)

func FuzzRingScanGarbage(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, uint16(4))
	f.Fuzz(func(t *testing.T, garbage []byte, off uint16) {
		dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
		core := dev.NewCore()
		r := NewRing(core, 4096, 2048, 0)
		// Write one real record, then scribble.
		if _, err := r.Append([]byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		n := len(garbage)
		if n > 2048 {
			n = 2048
		}
		at := pmem.Addr(4096 + int(off)%1024)
		if n > 0 {
			core.Store(at, garbage[:n])
		}
		r.Scan(core, func(o uint64, p []byte) bool { return true })
	})
}
