package hwsim

import "specpmt/internal/stats"

// CoreStats and CoreNow expose each engine's CPU-core counters and virtual
// clock to the experiment harness.

// CoreStats returns the engine's CPU-core counters.
func (e *EDE) CoreStats() *stats.Counters { return e.cpu.Core.Stats }

// CoreNow returns the engine's CPU-core virtual time.
func (e *EDE) CoreNow() int64 { return e.cpu.Core.Now() }

// CoreStats returns the engine's CPU-core counters.
func (e *HOOP) CoreStats() *stats.Counters { return e.cpu.Core.Stats }

// CoreNow returns the engine's CPU-core virtual time.
func (e *HOOP) CoreNow() int64 { return e.cpu.Core.Now() }

// GCStats returns the garbage collector core's counters.
func (e *HOOP) GCStats() *stats.Counters { return e.gcCore.Stats }

// CoreStats returns the engine's CPU-core counters.
func (e *SpecHPMT) CoreStats() *stats.Counters { return e.cpu.Core.Stats }

// CoreNow returns the engine's CPU-core virtual time.
func (e *SpecHPMT) CoreNow() int64 { return e.cpu.Core.Now() }

// CoreStats returns the engine's CPU-core counters.
func (e *NoLog) CoreStats() *stats.Counters { return e.cpu.Core.Stats }

// CoreNow returns the engine's CPU-core virtual time.
func (e *NoLog) CoreNow() int64 { return e.cpu.Core.Now() }

// Snapshot returns the engine's merged counters across all of its cores.
func (e *EDE) Snapshot() stats.Counters { return e.cpu.Core.Stats.Snapshot() }

// Snapshot returns the engine's merged counters across all of its cores.
func (e *NoLog) Snapshot() stats.Counters { return e.cpu.Core.Stats.Snapshot() }

// Snapshot returns the engine's merged counters across all of its cores.
func (e *SpecHPMT) Snapshot() stats.Counters { return e.cpu.Core.Stats.Snapshot() }

// Snapshot merges the application core's counters with the GC core's, so
// write-traffic comparisons include the garbage collector's data writes.
func (e *HOOP) Snapshot() stats.Counters {
	s := e.cpu.Core.Stats.Snapshot()
	s.Merge(e.gcCore.Stats)
	return s
}
