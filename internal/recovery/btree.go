package recovery

import (
	"fmt"

	"specpmt/pds/btree"
)

// BTreeChecker is the recovery contract of a pds/btree ordered index: after
// recovery the tree must validate structurally (ordering, bounds, uniform
// leaf depth, count agreement) and a full-range scan must reproduce exactly
// the committed oracle — no lost, phantom, or corrupted entries.
//
// The tree's volatile handle dies with the crash, so the checker holds an
// open closure (typically btree.Open over the recovered pool) instead of a
// *btree.Tree; Check re-opens from the root slot the same way a recovering
// application would.
type BTreeChecker struct {
	name string
	open func() (*btree.Tree, error)
	live map[uint64]uint64
	snap map[uint64]uint64
}

// BTree returns a checker for the tree reachable through open. Mutate the
// oracle through Live() as committed inserts/deletes are applied, exactly
// like KVChecker.
func BTree(name string, open func() (*btree.Tree, error)) *BTreeChecker {
	return &BTreeChecker{name: name, open: open, live: make(map[uint64]uint64)}
}

// Live returns the mutable committed oracle: key -> value of every entry
// whose insert (or delete: remove the key) has committed.
func (c *BTreeChecker) Live() map[uint64]uint64 { return c.live }

// Name implements Checker.
func (c *BTreeChecker) Name() string { return c.name }

// Snapshot implements Checker: freezes the oracle at a quiesced point.
func (c *BTreeChecker) Snapshot() {
	c.snap = make(map[uint64]uint64, len(c.live))
	for k, v := range c.live {
		c.snap[k] = v
	}
}

// Check implements Checker: re-opens the tree from persistent memory,
// validates its structural invariants, and diffs a full-range scan against
// the snapshot in both directions.
func (c *BTreeChecker) Check() error {
	t, err := c.open()
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	if err := t.Validate(); err != nil {
		return err
	}
	got := make(map[uint64]uint64, len(c.snap))
	t.Scan(0, ^uint64(0), func(k, v uint64) bool {
		got[k] = v
		return true
	})
	for k, want := range c.snap {
		have, ok := got[k]
		if !ok {
			return fmt.Errorf("committed key %d lost (want value %d)", k, want)
		}
		if have != want {
			return fmt.Errorf("key %d: recovered value %d, committed %d", k, have, want)
		}
	}
	for k, v := range got {
		if _, ok := c.snap[k]; !ok {
			return fmt.Errorf("phantom key %d=%d not in committed oracle", k, v)
		}
	}
	return nil
}
