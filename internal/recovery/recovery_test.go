package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/repl"
	"specpmt/internal/server"
	"specpmt/internal/txn"
	"specpmt/internal/txn/spec"
)

// TestRegistryReportsFailures exercises the registry mechanics: every
// checker runs even after one fails, the combined error names each failing
// checker and the power-fail point index, and the summary carries the
// failure records the CLI turns into its artifact.
func TestRegistryReportsFailures(t *testing.T) {
	var order []string
	reg := NewRegistry("unit")
	reg.Register(
		Func("ok", nil, func() error { order = append(order, "ok"); return nil }),
		Func("bad", nil, func() error { order = append(order, "bad"); return errors.New("boom") }),
		Func("also-bad", nil, func() error { order = append(order, "also-bad"); return errors.New("bang") }),
	)
	if err := reg.Check(); err == nil {
		t.Fatal("Check did not report the failing checkers")
	} else {
		for _, want := range []string{"power-fail point 0", "bad: boom", "also-bad: bang"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
		}
	}
	if len(order) != 3 {
		t.Fatalf("a failure short-circuited the registry: ran %v", order)
	}
	if err := reg.Check(); err == nil || !strings.Contains(err.Error(), "power-fail point 1") {
		t.Errorf("second Check did not advance the point index: %v", err)
	}
	sum := reg.Summary()
	if sum.Points != 2 || sum.Checks != 6 || sum.Failed != 4 || len(sum.Failures) != 4 {
		t.Errorf("summary = %+v, want 2 points, 6 checks, 4 failed", sum)
	}
	if f := sum.Failures[0]; f.Point != 0 || f.Checker != "bad" || f.Error != "boom" {
		t.Errorf("failure record = %+v", f)
	}
}

// TestHeapCheckerCorruptSpanBitmap flips one byte of a span's persistent
// block bitmap and asserts the allocator checker pinpoints the span.
func TestHeapCheckerCorruptSpanBitmap(t *testing.T) {
	dev := pmem.NewDevice(pmem.Config{Size: 8 << 20})
	h, err := pmalloc.OpenLogged(dev.NewCore(), pmem.PageSize, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(64); err != nil {
		t.Fatal(err)
	}
	h.Checkpoint()
	chk := Heap("pmalloc.data", h)
	if err := chk.Check(); err != nil {
		t.Fatalf("checker fails on a healthy heap: %v", err)
	}

	base, _, _, bitmapOff := h.SpanTable()
	at := base + pmem.Addr(bitmapOff)
	var b [1]byte
	dev.ReadPersisted(at, b[:])
	dev.PokePersisted(at, []byte{b[0] ^ 0x10})

	err = chk.Check()
	if err == nil {
		t.Fatal("checker missed a corrupted span bitmap")
	}
	if !strings.Contains(err.Error(), "span 0") {
		t.Fatalf("error %q does not pinpoint the corrupted span", err)
	}
}

// TestSpecCheckerCorruptChainRecord flips one byte inside a committed log
// record's payload and asserts the engine checker reports the record as no
// longer committed (the salted checksum catches it), naming the orphaned
// address.
func TestSpecCheckerCorruptChainRecord(t *testing.T) {
	const size = 16 << 20
	dev := pmem.NewDevice(pmem.Config{Size: size})
	dataHeap, err := pmalloc.OpenLogged(dev.NewCore(), 16*pmem.PageSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	logHeap, err := pmalloc.OpenLogged(dev.NewCore(), 1<<20, size)
	if err != nil {
		t.Fatal(err)
	}
	env := txn.Env{
		Dev:     dev,
		Core:    dev.NewCore(),
		Heap:    dataHeap,
		LogHeap: logHeap,
		Root:    pmem.Addr(pmem.PageSize),
		TS:      &txn.Timestamp{},
	}
	e, err := spec.New(env, spec.Options{})
	if err != nil {
		t.Fatal(err)
	}

	const sentinel = 0xfeedfacecafebeef
	cell, err := dataHeap.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	commit := func(a pmem.Addr, v uint64) {
		tx := e.Begin()
		tx.StoreUint64(a, v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// The sentinel commits LAST: a corrupted record severs the chain from
	// that point on, so corrupting the tail record orphans exactly one cell
	// and the checker's report is deterministic.
	for i := 0; i < 3; i++ {
		a, err := dataHeap.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		commit(a, uint64(i))
	}
	commit(cell, sentinel)
	chk := Func("spec.log", nil, func() error { return e.VerifyRecovered(logHeap.Allocated) })
	if err := chk.Check(); err != nil {
		t.Fatalf("checker fails on a healthy engine: %v", err)
	}

	// Find the sentinel's bytes inside the committed record and flip one.
	var pat [8]byte
	binary.LittleEndian.PutUint64(pat[:], sentinel)
	buf := make([]byte, size-1<<20)
	dev.ReadPersisted(1<<20, buf)
	off := -1
	for i := 0; i+8 <= len(buf); i++ {
		if string(buf[i:i+8]) == string(pat[:]) {
			off = i
			break
		}
	}
	if off < 0 {
		t.Fatal("sentinel value not found in the log area")
	}
	dev.PokePersisted(pmem.Addr(1<<20+off), []byte{pat[0] ^ 0x01})

	err = chk.Check()
	if err == nil {
		t.Fatal("checker missed a corrupted chain record")
	}
	if want := fmt.Sprintf("addr %d", cell); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the orphaned address (%s)", err, want)
	}
}

// TestCursorCheckerTornStamp drives the replication cursor past the
// primary's shipped LSN and asserts the checker flags the cell as a torn
// stamp.
func TestCursorCheckerTornStamp(t *testing.T) {
	srv, err := server.New(server.Config{Engine: "SpecSPMT", Shards: 2, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	a, err := repl.NewApplier(srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := a.EndSnapshot(1, 7); err != nil {
		t.Fatal(err)
	}
	chk := Func("repl.cursor", nil, func() error { return a.CheckRecovered(7) })
	if err := chk.Check(); err != nil {
		t.Fatalf("checker fails on a healthy cursor: %v", err)
	}
	// A cell holding LSN 7 when the primary only ever shipped 6 can only be
	// a torn stamp: the stamp commits with the replayed writes.
	bad := Func("repl.cursor", nil, func() error { return a.CheckRecovered(6) })
	err = bad.Check()
	if err == nil {
		t.Fatal("checker missed a cursor cell beyond the shipped LSN")
	}
	if !strings.Contains(err.Error(), "torn stamp") {
		t.Fatalf("error %q does not identify the torn stamp", err)
	}
}
