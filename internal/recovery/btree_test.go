package recovery

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"specpmt"
	"specpmt/internal/pmem"
	"specpmt/pds/btree"
)

// TestBTreeCheckerCorruptNodeByte builds a tree, confirms the checker is
// green, then flips ONE byte of a leaf value in the persisted image and
// asserts the checker pinpoints the damaged key. The corrupted byte is
// located by searching the data area for a sentinel value rather than
// hard-coding the node layout.
func TestBTreeCheckerCorruptNodeByte(t *testing.T) {
	const (
		poolSize = 8 << 20
		slot     = 7
		sentKey  = uint64(17)
		sentinel = uint64(0x5EC7C0DE5EC7C0DE)
	)
	pool, err := specpmt.Open(specpmt.Config{Size: poolSize})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	bt, err := btree.New(pool, slot)
	if err != nil {
		t.Fatal(err)
	}
	c := BTree("pds.btree", func() (*btree.Tree, error) { return btree.Open(pool, slot) })
	for i := uint64(0); i < 40; i++ {
		v := i*1000 + 7
		if i == sentKey {
			v = sentinel
		}
		if err := bt.Insert(i, v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		c.Live()[i] = v
	}
	c.Snapshot()
	if err := c.Check(); err != nil {
		t.Fatalf("clean tree flagged: %v", err)
	}

	// The data area spans [PageSize, poolSize/4). Leaf splits leave stale
	// copies of entries behind in old node slots, so the sentinel bytes may
	// appear more than once; probe each occurrence and keep the one-byte
	// flip only on the copy the tree actually reads.
	lo, hi := pmem.Addr(pmem.PageSize), pmem.Addr(poolSize/4)
	img := make([]byte, hi-lo)
	pool.Read(lo, img)
	var pat [8]byte
	binary.LittleEndian.PutUint64(pat[:], sentinel)
	corrupted := false
	for off := bytes.Index(img, pat[:]); off >= 0; {
		at := lo + pmem.Addr(off) + 3 // a middle byte of the value word
		var b [1]byte
		pool.Device().ReadPersisted(at, b[:])
		pool.Device().PokePersisted(at, []byte{b[0] ^ 0x10})
		if v, ok := bt.Get(sentKey); !ok || v != sentinel {
			corrupted = true // this copy is the live one
			break
		}
		pool.Device().PokePersisted(at, b[:1]) // stale copy: restore
		next := bytes.Index(img[off+1:], pat[:])
		if next < 0 {
			break
		}
		off += 1 + next
	}
	if !corrupted {
		t.Fatal("no live copy of the sentinel value found in the data area")
	}

	err = c.Check()
	if err == nil {
		t.Fatal("checker missed a one-byte value corruption")
	}
	if !strings.Contains(err.Error(), "17") {
		t.Fatalf("checker did not pinpoint key %d: %v", sentKey, err)
	}
	t.Logf("corruption detected: %v", err)
}

// TestBTreeCheckerLostAndPhantom exercises both diff directions without
// touching device bytes: a committed entry missing from the oracle scan is
// "lost", an uncommitted one present is "phantom".
func TestBTreeCheckerLostAndPhantom(t *testing.T) {
	pool, err := specpmt.Open(specpmt.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	bt, err := btree.New(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := BTree("pds.btree", func() (*btree.Tree, error) { return btree.Open(pool, 3) })
	for i := uint64(0); i < 10; i++ {
		if err := bt.Insert(i, i+100); err != nil {
			t.Fatal(err)
		}
		c.Live()[i] = i + 100
	}

	// Lost: oracle says key 99 exists, tree never saw it.
	c.Live()[99] = 1
	c.Snapshot()
	if err := c.Check(); err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("want lost-key failure, got %v", err)
	}
	delete(c.Live(), 99)

	// Phantom: tree holds key 5, oracle forgot it.
	delete(c.Live(), 5)
	c.Snapshot()
	if err := c.Check(); err == nil || !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("want phantom-key failure, got %v", err)
	}
	c.Live()[5] = 105
	c.Snapshot()
	if err := c.Check(); err != nil {
		t.Fatalf("restored oracle still failing: %v", err)
	}
}
