// Package recovery is the unified, declarative recovery-invariant checker.
//
// Every crash-consistent subsystem exposes its recovery contract as a
// Checker: Snapshot() captures the committed oracle at a quiesced point
// before a power failure, and Check() re-derives the subsystem's state from
// persistent memory after recovery and verifies it against both the
// snapshot and the subsystem's structural invariants. The crash-injection
// harness (internal/crashtest) registers every relevant checker once per
// scenario and runs the whole Registry after every power-fail point —
// replacing the per-test, hand-rolled oracles that PR 7's coverage-record
// hole proved incomplete. A new subsystem gets crash-checked for free by
// registering a Checker; it does not get to invent its own verification
// loop.
//
// The style follows the verified-storage multilog school: recovery is
// specified as a function of the persistent image alone ("Recover(mem) ->
// state"), and the check is a predicate over that state plus the last
// committed oracle — never over volatile bookkeeping that died with the
// power.
//
// Checkers in this repository:
//
//   - Heap (pmalloc): the logged span allocator re-runs recovery from the
//     persistent image and diffs it against the live allocation map — no
//     lost or double-allocated spans/blocks, bitmap popcounts matching
//     allocation counts, well-formed runs (pmalloc.Heap.Verify), and the
//     post-crash replay itself must have matched the pre-crash mirror
//     (pmalloc.Heap.RecoveryError).
//   - Cells (basic crashtest): every fully committed cell write survives
//     with exactly its committed value.
//   - Prefix (pipelined group commit): the recovered state equals some
//     prefix of the speculative commit history at or past the last retired
//     fence — the server's acknowledgment rule.
//   - KV (hashmap via server): the recovered key/value set equals the
//     committed oracle, the map validates structurally, and any in-progress
//     old table is whole (hashmap.Map.CheckRecovered).
//   - engine pools (spec): chain well-formedness, index/record/memory
//     agreement including PR 7's coverage-record invariant
//     (spec.Engine.VerifyRecovered), registered via Func.
//   - repl cursor: cursor cells at or below the shipped LSN, applied
//     position = max cell, no torn stamp (repl.Applier.CheckRecovered),
//     registered via Func.
package recovery

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
)

// Checker is one subsystem's recovery contract.
type Checker interface {
	// Name identifies the checker in failure reports ("pmalloc.data",
	// "spec.log", "repl.cursor", ...).
	Name() string
	// Snapshot captures the committed oracle. Called at a quiesced point
	// before a power failure is injected; stateless checkers (whose oracle
	// is the subsystem's own persistent mirror) may make it a no-op.
	Snapshot()
	// Check re-derives the subsystem's state from persistent memory (after
	// crash + recovery) and verifies it against the snapshot and the
	// subsystem's structural invariants.
	Check() error
}

// Failure records one checker failing at one power-fail point.
type Failure struct {
	Point   int    `json:"point"`
	Checker string `json:"checker"`
	Error   string `json:"error"`
}

// Summary aggregates a registry's (or a whole run's) checking activity —
// the artifact crashtest -summary writes for CI.
type Summary struct {
	Scenario   string    `json:"scenario,omitempty"`
	Points     int       `json:"power_fail_points"`
	Checks     int       `json:"checks"`
	Failed     int       `json:"failed"`
	DurationNs int64     `json:"duration_ns"`
	Failures   []Failure `json:"failures,omitempty"`
}

// Merge folds another summary into s (for multi-seed / multi-scenario CI
// artifacts).
func (s *Summary) Merge(o Summary) {
	s.Points += o.Points
	s.Checks += o.Checks
	s.Failed += o.Failed
	s.DurationNs += o.DurationNs
	s.Failures = append(s.Failures, o.Failures...)
}

// Registry is the set of checkers one crash scenario runs at every
// power-fail point.
type Registry struct {
	checkers []Checker
	sum      Summary
}

// NewRegistry creates a registry tagged with a scenario name.
func NewRegistry(scenario string) *Registry {
	return &Registry{sum: Summary{Scenario: scenario}}
}

// Register adds checkers to the registry.
func (r *Registry) Register(cs ...Checker) { r.checkers = append(r.checkers, cs...) }

// Snapshot captures every checker's oracle. Call at a quiesced point before
// injecting the power failure.
func (r *Registry) Snapshot() {
	for _, c := range r.checkers {
		c.Snapshot()
	}
}

// Check runs every registered checker against the recovered state — one
// power-fail point. All checkers run even after one fails, so a single
// corruption shows every invariant it breaks; the combined error names each
// failing checker. The error (and Summary) carries the zero-based
// power-fail point index for reproduction.
func (r *Registry) Check() error {
	point := r.sum.Points
	r.sum.Points++
	start := time.Now()
	var errs []string
	for _, c := range r.checkers {
		r.sum.Checks++
		if err := c.Check(); err != nil {
			r.sum.Failed++
			r.sum.Failures = append(r.sum.Failures, Failure{Point: point, Checker: c.Name(), Error: err.Error()})
			errs = append(errs, fmt.Sprintf("%s: %v", c.Name(), err))
		}
	}
	r.sum.DurationNs += time.Since(start).Nanoseconds()
	if len(errs) > 0 {
		return fmt.Errorf("power-fail point %d: %s", point, strings.Join(errs, "; "))
	}
	return nil
}

// Points returns the number of power-fail points checked so far.
func (r *Registry) Points() int { return r.sum.Points }

// Summary returns the accumulated checking summary.
func (r *Registry) Summary() Summary { return r.sum }

// Func builds a checker from plain functions. snapshot may be nil (no-op);
// check must not be.
func Func(name string, snapshot func(), check func() error) Checker {
	return &funcChecker{name: name, snap: snapshot, check: check}
}

type funcChecker struct {
	name  string
	snap  func()
	check func() error
}

func (f *funcChecker) Name() string { return f.name }
func (f *funcChecker) Snapshot() {
	if f.snap != nil {
		f.snap()
	}
}
func (f *funcChecker) Check() error { return f.check() }

// Heap builds the allocator checker over a logged pmalloc heap: recovery
// replay must have matched the pre-crash allocation map (no lost or
// invented allocation), and the persistent image must satisfy the span
// allocator's structural invariants. Snapshot is a no-op — the allocator
// maintains its own volatile mirror as the oracle.
func Heap(name string, h *pmalloc.Heap) Checker {
	return Func(name, nil, func() error {
		if err := h.RecoveryError(); err != nil {
			return fmt.Errorf("recovery diverged from pre-crash allocation map: %w", err)
		}
		return h.Verify()
	})
}

// CellsChecker verifies fully committed (fenced) single-cell writes: after
// recovery every cell must hold exactly its last committed value. The
// driving scenario folds each committed transaction's writes in with Commit
// and drops cells with Forget when their block is freed.
type CellsChecker struct {
	name string
	read func(pmem.Addr) uint64
	live map[pmem.Addr]uint64
	snap map[pmem.Addr]uint64
}

// Cells creates a committed-cells checker reading through read (a pool's
// non-transactional ReadUint64).
func Cells(name string, read func(pmem.Addr) uint64) *CellsChecker {
	return &CellsChecker{
		name: name,
		read: read,
		live: map[pmem.Addr]uint64{},
		snap: map[pmem.Addr]uint64{},
	}
}

// Commit folds one committed transaction's writes into the oracle.
func (c *CellsChecker) Commit(writes map[pmem.Addr]uint64) {
	for a, v := range writes {
		c.live[a] = v
	}
}

// Forget drops a cell from the oracle (its block was freed).
func (c *CellsChecker) Forget(addr pmem.Addr) { delete(c.live, addr) }

// Name implements Checker.
func (c *CellsChecker) Name() string { return c.name }

// Snapshot implements Checker: the oracle is the committed map as of now.
func (c *CellsChecker) Snapshot() {
	c.snap = make(map[pmem.Addr]uint64, len(c.live))
	for a, v := range c.live {
		c.snap[a] = v
	}
}

// Check implements Checker.
func (c *CellsChecker) Check() error {
	addrs := make([]pmem.Addr, 0, len(c.snap))
	for a := range c.snap {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var bad []string
	for _, a := range addrs {
		if got, want := c.read(a), c.snap[a]; got != want {
			bad = append(bad, fmt.Sprintf("addr %d = %#x, committed value %#x", a, got, want))
			if len(bad) == 3 {
				bad = append(bad, "...")
				break
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%s", strings.Join(bad, "; "))
	}
	return nil
}

// PrefixChecker verifies pipelined (speculative) group commit: the
// recovered state must equal some prefix of the speculative commit history
// at or past the last retired fence. Commits past the fence floor may
// vanish — they were never acknowledged — but no torn transactions and no
// gaps are tolerated.
type PrefixChecker struct {
	name  string
	addrs []pmem.Addr
	read  func(pmem.Addr) uint64

	snaps []map[pmem.Addr]uint64 // state after commit i (snaps[0] = baseline)
	floor int                    // newest snapshot index known durable (retired fence)
	cut   int                    // snapshot index matched by the last Check
}

// Prefix creates a speculative-prefix checker over a fixed cell set.
func Prefix(name string, addrs []pmem.Addr, read func(pmem.Addr) uint64) *PrefixChecker {
	return &PrefixChecker{name: name, addrs: addrs, read: read}
}

func (p *PrefixChecker) clone(state map[pmem.Addr]uint64) map[pmem.Addr]uint64 {
	c := make(map[pmem.Addr]uint64, len(state))
	for a, v := range state {
		c[a] = v
	}
	return c
}

// Init resets the history to a single durable baseline (round start: the
// state recovery just made durable).
func (p *PrefixChecker) Init(state map[pmem.Addr]uint64) {
	p.snaps = []map[pmem.Addr]uint64{p.clone(state)}
	p.floor = 0
}

// Commit appends the state after one speculative (unfenced) commit.
func (p *PrefixChecker) Commit(state map[pmem.Addr]uint64) {
	p.snaps = append(p.snaps, p.clone(state))
}

// Fence marks every commit so far as retired: the acknowledgment floor.
func (p *PrefixChecker) Fence() { p.floor = len(p.snaps) - 1 }

// Name implements Checker.
func (p *PrefixChecker) Name() string { return p.name }

// Snapshot implements Checker. The history itself is the oracle, maintained
// continuously by Commit/Fence, so this is a no-op.
func (p *PrefixChecker) Snapshot() {}

// Check implements Checker: scans for a snapshot at or past the fence floor
// that matches the recovered state exactly. On success the matched
// snapshot becomes the new baseline (recovery made it durable); Cut returns
// it so the scenario can resync its own state.
func (p *PrefixChecker) Check() error {
	recovered := make(map[pmem.Addr]uint64, len(p.addrs))
	for _, a := range p.addrs {
		recovered[a] = p.read(a)
	}
	for c := p.floor; c < len(p.snaps); c++ {
		match := true
		for _, a := range p.addrs {
			if p.snaps[c][a] != recovered[a] {
				match = false
				break
			}
		}
		if match {
			p.cut = c
			p.snaps = []map[pmem.Addr]uint64{p.snaps[c]}
			p.floor = 0
			return nil
		}
	}
	return fmt.Errorf("recovered state matches no speculative prefix at or past the fence floor (floor=%d commits=%d)",
		p.floor, len(p.snaps)-1)
}

// Cut returns the baseline state the last successful Check matched.
func (p *PrefixChecker) Cut() map[pmem.Addr]uint64 { return p.clone(p.snaps[0]) }

// KVChecker verifies a key/value store against a committed oracle. The
// scenario mutates the map returned by Live as transactions commit;
// Snapshot freezes it; check (supplied by the scenario — typically
// server.CheckRecovered over the shard hash maps) compares the recovered
// store against the frozen oracle.
type KVChecker struct {
	name  string
	check func(expect map[uint64]uint64) error
	live  map[uint64]uint64
	snap  map[uint64]uint64
}

// KV creates a key/value oracle checker.
func KV(name string, check func(expect map[uint64]uint64) error) *KVChecker {
	return &KVChecker{name: name, check: check, live: map[uint64]uint64{}, snap: map[uint64]uint64{}}
}

// Live returns the mutable committed-state oracle.
func (k *KVChecker) Live() map[uint64]uint64 { return k.live }

// Name implements Checker.
func (k *KVChecker) Name() string { return k.name }

// Snapshot implements Checker.
func (k *KVChecker) Snapshot() {
	k.snap = make(map[uint64]uint64, len(k.live))
	for key, v := range k.live {
		k.snap[key] = v
	}
}

// Check implements Checker.
func (k *KVChecker) Check() error { return k.check(k.snap) }
