// Package stats collects the event counters the SpecPMT evaluation reports:
// fences, cache-line flushes, persistent-memory write traffic (split by
// purpose), sequential versus random drain patterns, and transaction counts.
//
// Counters are plain integers guarded by the owner; the simulated device
// serialises all memory operations, so no atomics are needed on the hot
// path. Snapshot produces a copyable value for reporting.
package stats

import (
	"fmt"
	"strings"
)

// Counters accumulates simulation events. The zero value is ready to use.
// The JSON field names are part of the bench-report format.
type Counters struct {
	// Ordering / persistence primitives.
	Fences  uint64 `json:"fences"`   // SFENCE count (persist barriers)
	Flushes uint64 `json:"flushes"`  // CLWB count (one per line flushed)
	FenceNs uint64 `json:"fence_ns"` // virtual ns spent inside SFENCE (stall + issue)

	// Persistent memory write traffic in bytes, by purpose.
	PMWriteBytes uint64 `json:"pm_write_bytes"` // total bytes drained to the persistence domain
	PMLogBytes   uint64 `json:"pm_log_bytes"`   // portion attributed to log records
	PMDataBytes  uint64 `json:"pm_data_bytes"`  // portion attributed to in-place/out-of-place data
	PMGCBytes    uint64 `json:"pm_gc_bytes"`    // portion attributed to background GC / reclamation

	// Drain pattern: lines whose address followed the previously drained
	// line (sequential) versus all others (random).
	SeqLines  uint64 `json:"seq_lines"`
	RandLines uint64 `json:"rand_lines"`

	// Access counts.
	Loads      uint64 `json:"loads"`
	Stores     uint64 `json:"stores"`
	LoadBytes  uint64 `json:"load_bytes"`
	StoreBytes uint64 `json:"store_bytes"`

	// Transactions.
	TxBegun     uint64 `json:"tx_begun"`
	TxCommitted uint64 `json:"tx_committed"`
	TxAborted   uint64 `json:"tx_aborted"`

	// Log lifecycle.
	LogRecords      uint64 `json:"log_records"`      // records appended
	LogReclaimed    uint64 `json:"log_reclaimed"`    // records reclaimed as stale
	ReclaimCycles   uint64 `json:"reclaim_cycles"`   // background/foreground reclamation cycles
	LogBytesLive    int64  `json:"log_bytes_live"`   // gauge: live log bytes right now
	LogBytesPeak    int64  `json:"log_bytes_peak"`   // high-water mark of LogBytesLive
	PageCopies      uint64 `json:"page_copies"`      // hardware bulk page copies (cold->hot transitions)
	EpochsReclaimed uint64 `json:"epochs_reclaimed"` // hardware epochs reclaimed
}

// AddLiveLog adjusts the live-log gauge and maintains its peak.
func (c *Counters) AddLiveLog(delta int64) {
	c.LogBytesLive += delta
	if c.LogBytesLive > c.LogBytesPeak {
		c.LogBytesPeak = c.LogBytesLive
	}
}

// Merge adds other's counts into c. Gauges take the peak-wise combination.
func (c *Counters) Merge(other *Counters) {
	c.Fences += other.Fences
	c.Flushes += other.Flushes
	c.FenceNs += other.FenceNs
	c.PMWriteBytes += other.PMWriteBytes
	c.PMLogBytes += other.PMLogBytes
	c.PMDataBytes += other.PMDataBytes
	c.PMGCBytes += other.PMGCBytes
	c.SeqLines += other.SeqLines
	c.RandLines += other.RandLines
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
	c.TxBegun += other.TxBegun
	c.TxCommitted += other.TxCommitted
	c.TxAborted += other.TxAborted
	c.LogRecords += other.LogRecords
	c.LogReclaimed += other.LogReclaimed
	c.ReclaimCycles += other.ReclaimCycles
	c.LogBytesLive += other.LogBytesLive
	if other.LogBytesPeak > c.LogBytesPeak {
		c.LogBytesPeak = other.LogBytesPeak
	}
	c.PageCopies += other.PageCopies
	c.EpochsReclaimed += other.EpochsReclaimed
}

// Snapshot returns a copy of the counters.
func (c *Counters) Snapshot() Counters { return *c }

// Reset zeroes every counter and gauge.
func (c *Counters) Reset() { *c = Counters{} }

// String renders a compact multi-line report.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fences=%d flushes=%d\n", c.Fences, c.Flushes)
	fmt.Fprintf(&b, "pm-write=%dB (log=%d data=%d gc=%d) seq/rand lines=%d/%d\n",
		c.PMWriteBytes, c.PMLogBytes, c.PMDataBytes, c.PMGCBytes, c.SeqLines, c.RandLines)
	fmt.Fprintf(&b, "tx begun/committed/aborted=%d/%d/%d\n", c.TxBegun, c.TxCommitted, c.TxAborted)
	fmt.Fprintf(&b, "log records=%d reclaimed=%d cycles=%d live=%dB peak=%dB\n",
		c.LogRecords, c.LogReclaimed, c.ReclaimCycles, c.LogBytesLive, c.LogBytesPeak)
	return b.String()
}
