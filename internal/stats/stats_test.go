package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddLiveLogPeak(t *testing.T) {
	var c Counters
	c.AddLiveLog(100)
	c.AddLiveLog(200)
	c.AddLiveLog(-250)
	if c.LogBytesLive != 50 {
		t.Fatalf("live = %d, want 50", c.LogBytesLive)
	}
	if c.LogBytesPeak != 300 {
		t.Fatalf("peak = %d, want 300", c.LogBytesPeak)
	}
}

func TestPeakNeverBelowLive(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counters
		for _, d := range deltas {
			c.AddLiveLog(int64(d))
			if c.LogBytesPeak < c.LogBytesLive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := Counters{Fences: 3, PMWriteBytes: 100, TxCommitted: 2, LogBytesPeak: 10}
	b := Counters{Fences: 4, PMWriteBytes: 50, TxCommitted: 1, LogBytesPeak: 25}
	a.Merge(&b)
	if a.Fences != 7 || a.PMWriteBytes != 150 || a.TxCommitted != 3 {
		t.Fatalf("merge sums wrong: %+v", a)
	}
	if a.LogBytesPeak != 25 {
		t.Fatalf("merge peak = %d, want max 25", a.LogBytesPeak)
	}
}

func TestResetAndSnapshot(t *testing.T) {
	var c Counters
	c.Fences = 9
	c.AddLiveLog(64)
	snap := c.Snapshot()
	c.Reset()
	if c.Fences != 0 || c.LogBytesLive != 0 || c.LogBytesPeak != 0 {
		t.Fatalf("reset left state: %+v", c)
	}
	if snap.Fences != 9 || snap.LogBytesLive != 64 {
		t.Fatalf("snapshot mutated by reset: %+v", snap)
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	var c Counters
	c.Fences = 1
	s := c.String()
	for _, want := range []string{"fences=1", "pm-write", "tx begun"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}
