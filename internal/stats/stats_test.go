package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddLiveLogPeak(t *testing.T) {
	var c Counters
	c.AddLiveLog(100)
	c.AddLiveLog(200)
	c.AddLiveLog(-250)
	if c.LogBytesLive != 50 {
		t.Fatalf("live = %d, want 50", c.LogBytesLive)
	}
	if c.LogBytesPeak != 300 {
		t.Fatalf("peak = %d, want 300", c.LogBytesPeak)
	}
}

func TestPeakNeverBelowLive(t *testing.T) {
	f := func(deltas []int16) bool {
		var c Counters
		for _, d := range deltas {
			c.AddLiveLog(int64(d))
			if c.LogBytesPeak < c.LogBytesLive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a := Counters{Fences: 3, PMWriteBytes: 100, TxCommitted: 2, LogBytesPeak: 10}
	b := Counters{Fences: 4, PMWriteBytes: 50, TxCommitted: 1, LogBytesPeak: 25}
	a.Merge(&b)
	if a.Fences != 7 || a.PMWriteBytes != 150 || a.TxCommitted != 3 {
		t.Fatalf("merge sums wrong: %+v", a)
	}
	if a.LogBytesPeak != 25 {
		t.Fatalf("merge peak = %d, want max 25", a.LogBytesPeak)
	}
}

func TestMergeGaugeSemantics(t *testing.T) {
	// Live gauges sum (total live bytes across cores) while the peak takes
	// the maximum — merging never inflates a high-water mark that no single
	// core actually reached, and never lowers one.
	a := Counters{LogBytesLive: 30, LogBytesPeak: 100}
	b := Counters{LogBytesLive: 20, LogBytesPeak: 40}
	a.Merge(&b)
	if a.LogBytesLive != 50 {
		t.Fatalf("live after merge = %d, want sum 50", a.LogBytesLive)
	}
	if a.LogBytesPeak != 100 {
		t.Fatalf("peak after merge = %d, want max 100 kept", a.LogBytesPeak)
	}
	// Merging into a zero value preserves the source peak.
	var c Counters
	c.Merge(&a)
	if c.LogBytesPeak != 100 || c.LogBytesLive != 50 {
		t.Fatalf("merge into zero: live=%d peak=%d", c.LogBytesLive, c.LogBytesPeak)
	}
}

func TestJSONFieldNamesStable(t *testing.T) {
	// The snake_case field names are part of the bench-report format;
	// renaming one silently breaks downstream plotting.
	c := Counters{Fences: 1, EpochsReclaimed: 2, LogBytesPeak: 3}
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fences", "flushes", "pm_write_bytes", "pm_log_bytes", "pm_data_bytes",
		"pm_gc_bytes", "seq_lines", "rand_lines", "tx_begun", "tx_committed",
		"tx_aborted", "log_records", "log_reclaimed", "reclaim_cycles",
		"log_bytes_live", "log_bytes_peak", "epochs_reclaimed",
	} {
		if _, ok := m[want]; !ok {
			t.Errorf("JSON output missing field %q", want)
		}
	}
	if got := m["epochs_reclaimed"].(float64); got != 2 {
		t.Errorf("epochs_reclaimed = %v, want 2", got)
	}
}

func TestResetAndSnapshot(t *testing.T) {
	var c Counters
	c.Fences = 9
	c.AddLiveLog(64)
	snap := c.Snapshot()
	c.Reset()
	if c.Fences != 0 || c.LogBytesLive != 0 || c.LogBytesPeak != 0 {
		t.Fatalf("reset left state: %+v", c)
	}
	if snap.Fences != 9 || snap.LogBytesLive != 64 {
		t.Fatalf("snapshot mutated by reset: %+v", snap)
	}
}

func TestStringMentionsKeyFields(t *testing.T) {
	var c Counters
	c.Fences = 1
	s := c.String()
	for _, want := range []string{"fences=1", "pm-write", "tx begun"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}
