// Package mvcc provides volatile multi-version value stores for snapshot
// reads over the server's shard maps.
//
// Each shard owns one Store. Committed writes are installed as immutable
// versions stamped with their publication LSN; a per-store watermark marks
// the highest LSN whose writes are all installed. Readers acquire a snapshot
// LSN (the watermark at acquire time), read version chains lock-free, and
// release; version reclamation trims chain suffixes no acquired snapshot can
// reach — the same grace-period idea as the hashmap's retired-table epoch
// reclamation, applied to value history instead of bucket arrays.
//
// The stores are volatile by design: version chains are rebuilt empty at
// recovery from the durable hash maps (every surviving key reseeds as a
// single base version at LSN 0). See DESIGN.md for the rationale.
package mvcc

import (
	"sync"
	"sync/atomic"
)

// version is one immutable committed value. next points at the previous
// (older) version; chains are newest-first. Published versions are never
// mutated — readers traverse them without synchronization beyond the atomic
// next loads.
type version struct {
	lsn  uint64
	val  uint64
	del  bool
	next atomic.Pointer[version]
}

// snapSlots is the number of concurrently registered snapshots per store.
// Readers that cannot find a free slot fall back to the queued read path,
// so this bounds fast-path concurrency, not correctness.
const snapSlots = 64

// Store is one shard's version store. A single publisher (the shard's
// retirer/worker) calls Install and Advance; any number of readers call
// Acquire/Get/Release concurrently.
type Store struct {
	chains sync.Map // key uint64 -> *version (chain head)

	// watermark is the highest LSN with every write <= it installed.
	watermark atomic.Uint64

	// slots holds acquired snapshot LSNs biased by +1 (0 = free), so a
	// snapshot at LSN 0 is distinguishable from an empty slot.
	slots [snapSlots]atomic.Uint64

	live     atomic.Int64  // versions currently reachable
	reclaims atomic.Uint64 // versions trimmed as unreachable
}

// Snapshot is an acquired read point. The zero value is invalid; obtain one
// from Acquire and pair it with Release.
type Snapshot struct {
	LSN  uint64
	slot int
}

// Acquire registers a snapshot at the current watermark. It returns ok=false
// when every slot is taken — the caller must then use its queued read path.
//
// Registration is validated: the slot is claimed with the loaded watermark,
// then the watermark is re-read. If it still matches, any concurrent trim
// either saw the slot (and protected it) or computed its reachability
// bound from a watermark <= ours — both keep every version this snapshot
// can reach. If the watermark moved, retry with the new value.
func (s *Store) Acquire() (Snapshot, bool) {
	for i := 0; i < snapSlots; i++ {
		if s.slots[i].Load() != 0 {
			continue
		}
		for {
			w := s.watermark.Load()
			if !s.slots[i].CompareAndSwap(0, w+1) {
				break // slot stolen; scan on
			}
			if s.watermark.Load() == w {
				return Snapshot{LSN: w, slot: i}, true
			}
			s.slots[i].Store(0) // stale registration; retry at new watermark
		}
	}
	return Snapshot{}, false
}

// Release frees the snapshot's slot.
func (s *Store) Release(snap Snapshot) {
	s.slots[snap.slot].Store(0)
}

// Get reads key as of the snapshot: the newest version with lsn <= snap.LSN.
// ok=false means the key did not exist at that point (never written, or its
// visible version is a tombstone).
func (s *Store) Get(snap Snapshot, key uint64) (val uint64, ok bool) {
	h, found := s.chains.Load(key)
	if !found {
		return 0, false
	}
	head := h.(*version)
	for v := head; v != nil; v = v.next.Load() {
		if v.lsn <= snap.LSN {
			if v.del {
				// Lazy tombstone reclamation: a head tombstone no snapshot
				// can look past makes the whole chain dead weight — every
				// live or future snapshot resolves this key to "absent", so
				// drop it (racing publishers re-Store safely).
				if v == head && head.lsn <= s.minActive() && s.chains.CompareAndDelete(key, h) {
					var n int64
					for d := head; d != nil; d = d.next.Load() {
						n++
					}
					s.live.Add(-n)
					s.reclaims.Add(uint64(n))
				}
				return 0, false
			}
			return v.val, true
		}
	}
	return 0, false
}

// Watermark returns the store's current published watermark.
func (s *Store) Watermark() uint64 { return s.watermark.Load() }

// minActive returns the reclamation floor: the oldest snapshot any reader
// may hold. Versions are kept if a snapshot at >= minActive could need them
// (the newest version with lsn <= minActive, plus everything newer).
func (s *Store) minActive() uint64 {
	m := s.watermark.Load()
	for i := range s.slots {
		if v := s.slots[i].Load(); v != 0 && v-1 < m {
			m = v - 1
		}
	}
	return m
}

// Install publishes one committed write at lsn as the new chain head and
// trims the suffix no live snapshot can reach. The caller (the shard's
// single publisher) must install writes in non-decreasing LSN order and
// call Advance once every write <= some LSN is installed.
func (s *Store) Install(key, val uint64, del bool, lsn uint64) {
	nv := &version{lsn: lsn, val: val, del: del}
	if h, found := s.chains.Load(key); found {
		nv.next.Store(h.(*version))
	}
	s.chains.Store(key, nv)
	s.live.Add(1)
	s.trim(key, nv)
}

// trim unlinks versions older than the newest one visible at minActive.
// Unlinked nodes stay valid for readers already holding pointers into the
// chain (the GC reclaims them once the last such reader drops them) — the
// trim only guarantees no NEW snapshot can reach them.
func (s *Store) trim(key uint64, head *version) {
	floor := s.minActive()
	// Find the newest version with lsn <= floor; everything after it dies.
	keep := head
	for keep != nil && keep.lsn > floor {
		keep = keep.next.Load()
	}
	if keep == nil {
		return
	}
	var n int64
	for v := keep.next.Load(); v != nil; v = v.next.Load() {
		n++
	}
	if n > 0 {
		keep.next.Store(nil)
		s.live.Add(-n)
		s.reclaims.Add(uint64(n))
	}
	// A tombstone that is both the head and at/below the floor is dead
	// weight: no snapshot can see anything but "absent".
	if keep == head && head.del {
		s.chains.CompareAndDelete(key, head)
		s.live.Add(-1)
		s.reclaims.Add(1)
	}
}

// Advance publishes watermark lsn: every write with LSN <= lsn must already
// be installed. Single-publisher; lsn must be non-decreasing.
func (s *Store) Advance(lsn uint64) {
	if lsn > s.watermark.Load() {
		s.watermark.Store(lsn)
	}
}

// Seed installs key=val as a base version at LSN base, replacing any
// existing chain. Used to (re)build a store from a recovered or migrated
// hash map while the shard is quiesced.
func (s *Store) Seed(key, val uint64, base uint64) {
	v := &version{lsn: base, val: val}
	if _, loaded := s.chains.Swap(key, v); loaded {
		s.reclaims.Add(1)
	} else {
		s.live.Add(1)
	}
}

// Reset drops every chain and sets the watermark to base. Only safe while
// the shard is quiesced (no concurrent readers or publisher).
func (s *Store) Reset(base uint64) {
	s.chains.Range(func(k, _ any) bool {
		s.chains.Delete(k)
		return true
	})
	s.live.Store(0)
	s.watermark.Store(base)
}

// Live returns the number of reachable versions.
func (s *Store) Live() int64 { return s.live.Load() }

// Reclaims returns the number of versions trimmed so far.
func (s *Store) Reclaims() uint64 { return s.reclaims.Load() }

// Watermark is a process-wide published-LSN high-water mark with waiters —
// the replica's GETAT gate and the primary's LSN token source. Load is a
// plain atomic read (it sits on the snapshot-read fast path); the mutex
// only serializes advancing and the wake-channel swap.
type Watermark struct {
	v    atomic.Uint64
	mu   sync.Mutex
	wake chan struct{}
}

// NewWatermark returns a watermark at 0.
func NewWatermark() *Watermark {
	return &Watermark{wake: make(chan struct{})}
}

// Load returns the current value.
func (w *Watermark) Load() uint64 { return w.v.Load() }

// AdvanceTo raises the watermark to lsn (no-op if not higher) and wakes
// every waiter.
func (w *Watermark) AdvanceTo(lsn uint64) {
	if lsn <= w.v.Load() {
		return
	}
	w.mu.Lock()
	if lsn > w.v.Load() {
		w.v.Store(lsn)
		close(w.wake)
		w.wake = make(chan struct{})
	}
	w.mu.Unlock()
}

// WaitChan returns the current value and a channel closed at the next
// advance — the building block for callers composing their own timeouts.
// The value is read after the channel under the lock, so a waiter that
// sees a stale value is guaranteed a wake on the very next advance.
func (w *Watermark) WaitChan() (uint64, <-chan struct{}) {
	w.mu.Lock()
	v, wake := w.v.Load(), w.wake
	w.mu.Unlock()
	return v, wake
}

// Wait blocks until the watermark reaches lsn or stop is closed (or is nil
// and the watermark already suffices). Returns the value observed and
// whether the target was reached.
func (w *Watermark) Wait(lsn uint64, stop <-chan struct{}) (uint64, bool) {
	for {
		v, wake := w.WaitChan()
		if v >= lsn {
			return v, true
		}
		select {
		case <-wake:
		case <-stop:
			return v, false
		}
	}
}
