package mvcc

import (
	"sync"
	"testing"
	"time"
)

func TestSnapshotVisibility(t *testing.T) {
	s := &Store{}
	s.Seed(1, 100, 0)
	s.Advance(0)

	snap0, ok := s.Acquire()
	if !ok || snap0.LSN != 0 {
		t.Fatalf("acquire: got %+v ok=%v", snap0, ok)
	}
	if v, ok := s.Get(snap0, 1); !ok || v != 100 {
		t.Fatalf("snap0 get: %d %v", v, ok)
	}

	s.Install(1, 200, false, 5)
	s.Advance(5)

	// The old snapshot still sees the old value.
	if v, ok := s.Get(snap0, 1); !ok || v != 100 {
		t.Fatalf("snap0 after install: %d %v", v, ok)
	}
	snap5, ok := s.Acquire()
	if !ok || snap5.LSN != 5 {
		t.Fatalf("acquire: got %+v ok=%v", snap5, ok)
	}
	if v, ok := s.Get(snap5, 1); !ok || v != 200 {
		t.Fatalf("snap5 get: %d %v", v, ok)
	}
	s.Release(snap0)
	s.Release(snap5)
}

func TestTombstoneAndReclaim(t *testing.T) {
	s := &Store{}
	s.Seed(7, 1, 0)
	for lsn := uint64(1); lsn <= 10; lsn++ {
		s.Install(7, lsn*10, false, lsn)
		s.Advance(lsn)
	}
	// No snapshots held: trim (which runs just before each Advance) keeps
	// the new version plus the one visible at the pre-advance watermark.
	if live := s.Live(); live > 2 {
		t.Fatalf("live = %d, want <= 2", live)
	}
	if s.Reclaims() == 0 {
		t.Fatal("no reclaims counted")
	}
	s.Install(7, 0, true, 11)
	s.Advance(11)
	snap, _ := s.Acquire()
	if _, ok := s.Get(snap, 7); ok {
		t.Fatal("deleted key visible")
	}
	s.Release(snap)
	// Once no snapshot can look behind the tombstone, a read of the dead
	// key reclaims the whole chain.
	s.Install(8, 1, false, 12)
	s.Advance(12)
	snap, _ = s.Acquire()
	if _, ok := s.Get(snap, 7); ok {
		t.Fatal("deleted key visible")
	}
	s.Release(snap)
	if _, found := s.chains.Load(uint64(7)); found {
		t.Fatal("dead tombstone chain not reclaimed")
	}
}

func TestHeldSnapshotPinsVersions(t *testing.T) {
	s := &Store{}
	s.Install(1, 10, false, 1)
	s.Advance(1)
	snap, _ := s.Acquire()
	for lsn := uint64(2); lsn <= 20; lsn++ {
		s.Install(1, lsn, false, lsn)
		s.Advance(lsn)
	}
	if v, ok := s.Get(snap, 1); !ok || v != 10 {
		t.Fatalf("pinned version lost: %d %v", v, ok)
	}
	s.Release(snap)
}

func TestAcquireExhaustion(t *testing.T) {
	s := &Store{}
	s.Advance(1)
	var snaps []Snapshot
	for i := 0; i < snapSlots; i++ {
		sn, ok := s.Acquire()
		if !ok {
			t.Fatalf("slot %d: acquire failed", i)
		}
		snaps = append(snaps, sn)
	}
	if _, ok := s.Acquire(); ok {
		t.Fatal("acquire succeeded past slot capacity")
	}
	s.Release(snaps[17])
	if _, ok := s.Acquire(); !ok {
		t.Fatal("acquire failed after release")
	}
	for i, sn := range snaps {
		if i != 17 {
			s.Release(sn)
		}
	}
}

// TestConcurrentReadersNeverSeeFuture hammers one store with a publisher
// installing monotonically increasing values and readers asserting that a
// snapshot never observes a value published after its LSN and never goes
// back in time within one snapshot.
func TestConcurrentReadersNeverSeeFuture(t *testing.T) {
	s := &Store{}
	const keys = 8
	for k := uint64(0); k < keys; k++ {
		s.Seed(k, 0, 0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single publisher: value == lsn for every key it touches
		defer wg.Done()
		lsn := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			lsn++
			s.Install(lsn%keys, lsn, false, lsn)
			s.Advance(lsn)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(200 * time.Millisecond)
			for time.Now().Before(deadline) {
				snap, ok := s.Acquire()
				if !ok {
					continue
				}
				for k := uint64(0); k < keys; k++ {
					if v, ok := s.Get(snap, k); ok && v > snap.LSN {
						t.Errorf("snapshot %d observed future value %d", snap.LSN, v)
					}
				}
				s.Release(snap)
			}
		}()
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestWatermarkWait(t *testing.T) {
	w := NewWatermark()
	w.AdvanceTo(5)
	if v, ok := w.Wait(3, nil); !ok || v != 5 {
		t.Fatalf("wait below current: %d %v", v, ok)
	}
	done := make(chan uint64, 1)
	go func() {
		v, ok := w.Wait(10, nil)
		if !ok {
			t.Error("wait aborted unexpectedly")
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	w.AdvanceTo(7)
	w.AdvanceTo(12)
	select {
	case v := <-done:
		if v < 10 {
			t.Fatalf("woke at %d before target", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait(10) never woke")
	}
	stop := make(chan struct{})
	close(stop)
	if _, ok := w.Wait(100, stop); ok {
		t.Fatal("stopped wait reported success")
	}
}

func TestResetAndSeed(t *testing.T) {
	s := &Store{}
	s.Install(1, 10, false, 3)
	s.Advance(3)
	s.Reset(40)
	if s.Watermark() != 40 {
		t.Fatalf("watermark after reset: %d", s.Watermark())
	}
	snap, _ := s.Acquire()
	if _, ok := s.Get(snap, 1); ok {
		t.Fatal("chain survived reset")
	}
	s.Release(snap)
	s.Seed(2, 20, 40)
	snap, _ = s.Acquire()
	if v, ok := s.Get(snap, 2); !ok || v != 20 {
		t.Fatalf("seeded value: %d %v", v, ok)
	}
	s.Release(snap)
}
