package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specpmt/internal/obs"
	"specpmt/internal/repl"
	"specpmt/internal/server"
)

// Puller phases, reported by MIGSTAT.
const (
	pullConnect int32 = iota
	pullSnap
	pullTail
	pullFailed
	pullStopped
)

var pullPhaseNames = [...]string{"connect", "snap", "tail", "failed", "stopped"}

const (
	pullDialTimeout = 3 * time.Second
	pullRetryEvery  = 300 * time.Millisecond
	pullTailTimeout = time.Minute
	pullApplyBatch  = 128
)

// puller is the destination side of a live shard migration: it dials the
// source's replication listener, requests a single-shard feed (HELLO with
// a shard filter), applies the shard snapshot and then the filtered record
// tail through the server's normal transactional Apply path — so the
// migrated-in data is exactly as crash-consistent as native writes.
//
// Migration progress is deliberately volatile (no durable cursor): if the
// destination crashes or the stream breaks mid-pull, the puller starts
// over with a fresh snapshot. Until cutover the shard is invisible to
// clients on this node, so restarting from scratch is always safe; the
// cutover itself only happens once the coordinator has verified the
// destination's applied LSN reached the source's frozen shard head and
// both digests match.
type puller struct {
	n     *Node
	shard int
	src   string

	phase    atomic.Int32
	applied  atomic.Uint64
	snapKeys atomic.Uint64

	mu   sync.Mutex
	conn net.Conn

	quit chan struct{}
	done chan struct{}
}

// startPull launches (or keeps) a puller for shard from the given source
// replication address. A running puller for the same shard and source is
// left alone (idempotent retry); a different source replaces it.
func (n *Node) startPull(shard int, src string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("node closed")
	}
	if old := n.pullers[shard]; old != nil {
		if old.src == src && !old.stopped() {
			n.mu.Unlock()
			return nil
		}
		delete(n.pullers, shard)
		n.mu.Unlock()
		old.stop()
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return fmt.Errorf("node closed")
		}
		if n.pullers[shard] != nil { // lost a race with a concurrent MIGPULL
			n.mu.Unlock()
			return nil
		}
	}
	pl := &puller{
		n:     n,
		shard: shard,
		src:   src,
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	n.pullers[shard] = pl
	n.migPulls.Add(1)
	n.wg.Add(1)
	n.mu.Unlock()
	go pl.run()
	return nil
}

// stopPull cancels the shard's puller, if any, and waits for it to exit —
// after stopPull returns, nothing will apply further feed records to the
// shard (the coordinator relies on this before letting the source purge).
func (n *Node) stopPull(shard int) {
	n.mu.Lock()
	pl := n.pullers[shard]
	delete(n.pullers, shard)
	n.mu.Unlock()
	if pl != nil {
		pl.stop()
		n.migDone.Add(1)
	}
}

// pullStat reports the shard's migration progress ("none" when no puller
// exists or ever existed for it).
func (n *Node) pullStat(shard int) MigStat {
	n.mu.Lock()
	pl := n.pullers[shard]
	n.mu.Unlock()
	if pl == nil {
		return MigStat{Shard: shard, Phase: "none"}
	}
	return MigStat{
		Shard:    shard,
		Phase:    pullPhaseNames[pl.phase.Load()],
		Applied:  pl.applied.Load(),
		SnapKeys: pl.snapKeys.Load(),
	}
}

func (pl *puller) stop() {
	select {
	case <-pl.quit:
	default:
		close(pl.quit)
	}
	pl.mu.Lock()
	if pl.conn != nil {
		pl.conn.Close()
	}
	pl.mu.Unlock()
	<-pl.done
}

func (pl *puller) stopped() bool {
	select {
	case <-pl.done:
		return true
	default:
		return false
	}
}

func (pl *puller) run() {
	defer pl.n.wg.Done()
	defer close(pl.done)
	for {
		err := pl.session()
		select {
		case <-pl.quit:
			pl.phase.Store(pullStopped)
			return
		default:
		}
		if err != nil {
			pl.phase.Store(pullFailed)
			pl.n.log.Warn("migration pull session ended, retrying",
				"shard", pl.shard, "src", pl.src, "err", err)
		}
		select {
		case <-pl.quit:
			pl.phase.Store(pullStopped)
			return
		case <-time.After(pullRetryEvery):
		}
	}
}

// session runs one connection's lifetime: handshake (always a fresh
// filtered snapshot — the puller advertises position 0/0), then tail.
func (pl *puller) session() error {
	pl.phase.Store(pullConnect)
	c, err := net.DialTimeout("tcp", pl.src, pullDialTimeout)
	if err != nil {
		return err
	}
	pl.mu.Lock()
	pl.conn = c
	pl.mu.Unlock()
	defer func() {
		pl.mu.Lock()
		pl.conn = nil
		pl.mu.Unlock()
		c.Close()
	}()
	var span0 int64
	if pl.n.rec != nil {
		span0 = pl.n.rec.Now()
		defer func() {
			pl.n.rec.Record(obs.Span{Kind: obs.SpanMigrate,
				Track: pl.n.rec.Track(fmt.Sprintf("migrate-%d", pl.shard)),
				Start: span0, End: pl.n.rec.Now(),
				A: uint64(pl.shard), B: pl.applied.Load()})
		}()
	}

	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<12)
	hello := fmt.Sprintf("HELLO %d 0 0 %d\n", pl.n.srv.Shards(), pl.shard)
	c.SetWriteDeadline(time.Now().Add(pullDialTimeout))
	if _, err := bw.WriteString(hello); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(pullDialTimeout))
	line, err := readLine(br)
	if err != nil {
		return fmt.Errorf("reading handshake: %w", err)
	}
	fs := bytes.Fields(line)
	if len(fs) != 4 || string(fs[0]) != "SNAP" {
		return fmt.Errorf("handshake refused: %q", string(line))
	}
	snapLSN, err1 := strconv.ParseUint(string(fs[2]), 10, 64)
	nkeys, err2 := strconv.ParseUint(string(fs[3]), 10, 64)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("bad SNAP header %q", string(line))
	}
	if err := pl.applySnapshot(c, br, snapLSN, nkeys); err != nil {
		return err
	}
	pl.phase.Store(pullTail)
	return pl.tail(c, br, bw)
}

// applyChunked applies ops through the server, splitting the batch in half
// and retrying on ErrApply: a transaction dense in fresh same-shard inserts
// can outgrow the hashmap's one-grow-per-transaction rule (every client
// MULTI faces the same bound, but migration batches are the densest case in
// the system). Halving converges — each retry boundary prepares a grow and
// advances the incremental rehash, and a single-op transaction is exactly
// the always-succeeding Put path. Splitting is safe here and only here:
// until cutover the shard is invisible to clients on this node, and a
// crashed migration restarts from a fresh snapshot, so no reader can ever
// observe a half-applied chunk.
func (pl *puller) applyChunked(ops []server.Op) error {
	if len(ops) == 0 {
		return nil
	}
	_, err := pl.n.srv.Apply(ops, nil, nil)
	if err == nil || !errors.Is(err, server.ErrApply) || len(ops) == 1 {
		return err
	}
	mid := len(ops) / 2
	if err := pl.applyChunked(ops[:mid]); err != nil {
		return err
	}
	return pl.applyChunked(ops[mid:])
}

// applySnapshot clears the local shard (a retried pull may have left a
// partial copy) and applies the filtered snapshot in batched transactions.
func (pl *puller) applySnapshot(c net.Conn, br *bufio.Reader, snapLSN, nkeys uint64) error {
	pl.phase.Store(pullSnap)
	pl.applied.Store(0)
	pl.snapKeys.Store(0)
	if err := pl.clearShard(); err != nil {
		return err
	}
	ops := make([]server.Op, 0, pullApplyBatch)
	flush := func() error {
		if err := pl.applyChunked(ops); err != nil {
			return err
		}
		ops = ops[:0]
		return nil
	}
	c.SetReadDeadline(time.Now().Add(pullDialTimeout + time.Duration(nkeys)*time.Millisecond/10))
	for i := uint64(0); i < nkeys; i++ {
		line, err := readLine(br)
		if err != nil {
			return fmt.Errorf("reading snapshot: %w", err)
		}
		kf := bytes.Fields(line)
		if len(kf) != 4 || string(kf[0]) != "K" {
			return fmt.Errorf("bad snapshot line %q", string(line))
		}
		shard, err1 := strconv.ParseUint(string(kf[1]), 10, 64)
		key, err2 := strconv.ParseUint(string(kf[2]), 10, 64)
		val, err3 := strconv.ParseUint(string(kf[3]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || shard != uint64(pl.shard) {
			return fmt.Errorf("bad snapshot line %q", string(line))
		}
		ops = append(ops, server.Op{Kind: server.OpSet, Key: key, Arg1: val})
		if len(ops) >= pullApplyBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	line, err := readLine(br)
	if err != nil || string(line) != "SNAPEND" {
		return fmt.Errorf("missing SNAPEND")
	}
	pl.snapKeys.Store(nkeys)
	pl.applied.Store(snapLSN)
	pl.n.log.Info("migration snapshot applied", "shard", pl.shard, "keys", nkeys, "lsn", snapLSN)
	return nil
}

// clearShard deletes every committed pair the local shard currently holds.
func (pl *puller) clearShard() error {
	var keys []uint64
	pl.n.srv.Freeze(func() {
		pl.n.srv.RangeAll(func(sh int, k, _ uint64) bool {
			if sh == pl.shard {
				keys = append(keys, k)
			}
			return true
		})
	})
	ops := make([]server.Op, 0, pullApplyBatch)
	for i, k := range keys {
		ops = append(ops, server.Op{Kind: server.OpDel, Key: k})
		if len(ops) >= pullApplyBatch || i == len(keys)-1 {
			if err := pl.applyChunked(ops); err != nil {
				return err
			}
			ops = ops[:0]
		}
	}
	return nil
}

// tail consumes the filtered record stream, applying each record as one
// transaction and acking applied positions. LSNs arrive with gaps (the
// stream skips records with no op for this shard); applied tracks the last
// record actually shipped, which at cutover equals the source's frozen
// ShardHead.
func (pl *puller) tail(c net.Conn, br *bufio.Reader, bw *bufio.Writer) error {
	var ops []server.Op
	var recOps []repl.WOp
	for {
		c.SetReadDeadline(time.Now().Add(pullTailTimeout))
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if len(line) > 1 && line[0] == 'H' { // HB <head>
			continue
		}
		rec, err := repl.DecodeRecord(line, recOps)
		if err != nil {
			return err
		}
		recOps = rec.Ops
		ops = ops[:0]
		for _, w := range rec.Ops {
			if w.Shard != pl.shard {
				return fmt.Errorf("feed leaked shard %d record into shard %d pull", w.Shard, pl.shard)
			}
			if w.Del {
				ops = append(ops, server.Op{Kind: server.OpDel, Key: w.Key})
			} else {
				ops = append(ops, server.Op{Kind: server.OpSet, Key: w.Key, Arg1: w.Val})
			}
		}
		if err := pl.applyChunked(ops); err != nil {
			return err
		}
		pl.applied.Store(rec.LSN)
		if br.Buffered() == 0 {
			c.SetWriteDeadline(time.Now().Add(pullDialTimeout))
			if _, err := fmt.Fprintf(bw, "ACK %d\n", rec.LSN); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// readLine reads one newline-terminated protocol line, bounded by the repl
// record limit, without the trailing newline.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	if len(line) > repl.MaxRecordLine {
		return nil, fmt.Errorf("line too long (%d bytes)", len(line))
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}
