package cluster

import (
	"fmt"
	"log/slog"
	"strings"
	"time"
)

// Migration/cutover pacing. The catch-up wait after freezing the source is
// generous because the destination may still be draining a large snapshot;
// the poll interval is short because the tail is typically a handful of
// records.
const (
	migPollEvery    = 20 * time.Millisecond
	migTailDeadline = 60 * time.Second
	migCutDeadline  = 30 * time.Second
)

// MigrateHooks lets a harness interpose on the cutover sequence at its
// decision points. Each hook runs synchronously on the coordinator's
// thread; a non-nil error aborts the migration exactly as an internal
// failure at that point would — the puller is cancelled (and waited for)
// and the source unfrozen, so ownership is unchanged and both nodes are
// quiescent when MigrateWith returns the wrapped error. The crash harness
// uses this to inject power failures mid-pull, post-freeze, and at the
// cutover verify.
type MigrateHooks struct {
	// PullStarted runs once the destination's puller has drained the
	// snapshot and entered the tail phase, before the source freezes.
	PullStarted func() error
	// Frozen runs after the source shard froze at head, before the
	// coordinator waits for the destination to catch up to it.
	Frozen func(head uint64) error
	// Verified runs after the two digests matched — the last instant the
	// migration can still roll back without any node changing ownership.
	Verified func() error
}

// Migrate moves one shard from its current owner to the node at dstData
// (a data address), live: the destination pulls a filtered snapshot and
// record tail while writes continue, then the source freezes the shard,
// the destination catches up to the frozen shard head, both sides' digests
// are compared, and a new map epoch republishes ownership. seed is any
// live node to fetch the current map from. Returns the new map.
//
// The cutover order is load-bearing:
//
//  1. freeze source admission + drain (ShardHead final, no new records)
//  2. destination applied == head, digests equal (byte-for-byte state)
//  3. push new map to the DESTINATION (it starts accepting the shard)
//  4. cancel the puller and wait for it to stop
//  5. push new map to the SOURCE — only now may it purge, because a purge
//     publishes DELs into the feed a still-running puller would replay
//     onto the destination's live data
//  6. unfreeze the source's (now unowned) shard so parked requests wake
//     into MOVED redirects, then push the map to the remaining nodes
func Migrate(shard int, dstData, seed string, log *slog.Logger) (*Map, error) {
	return MigrateWith(shard, dstData, seed, log, MigrateHooks{})
}

// MigrateWith is Migrate with harness hooks at the cutover decision points.
func MigrateWith(shard int, dstData, seed string, log *slog.Logger, hooks MigrateHooks) (*Map, error) {
	if log == nil {
		log = slog.Default()
	}
	m, err := FetchMap(seed, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching map from %s: %w", seed, err)
	}
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: no shard %d in a %d-shard map", shard, m.Shards)
	}
	src := m.Owners[shard]
	dstInfo, err := FetchNodeInfo(dstData, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: destination %s: %w", dstData, err)
	}
	if src.Data == dstInfo.Addr.Data {
		return m, nil // already there
	}
	if src.Repl == "" {
		return nil, fmt.Errorf("cluster: source %s has no replication listener", src.Data)
	}
	if dstInfo.Shards != m.Shards {
		return nil, fmt.Errorf("cluster: destination runs %d shards, map has %d", dstInfo.Shards, m.Shards)
	}
	// Make sure the destination knows the cluster (idempotent when it
	// already joined), then start the pull.
	if err := PushMap(dstData, m, 0); err != nil && !strings.Contains(err.Error(), "stale epoch") {
		return nil, err
	}
	dst, err := dialCtl(dstData, 0)
	if err != nil {
		return nil, err
	}
	defer dst.close()
	if err := dst.expectOK(fmt.Sprintf("MIGPULL %d %s", shard, src.Repl)); err != nil {
		return nil, err
	}
	log.Info("migration pull started", "shard", shard, "src", src.Data, "dst", dstData)
	if _, err := waitMigStat(dst, shard, migTailDeadline, func(st MigStat) bool {
		return st.Phase == "tail"
	}); err != nil {
		dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
		return nil, fmt.Errorf("cluster: waiting for snapshot: %w", err)
	}
	if hooks.PullStarted != nil {
		if err := hooks.PullStarted(); err != nil {
			dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
			return nil, fmt.Errorf("cluster: migration aborted mid-pull: %w", err)
		}
	}

	// Cutover: freeze the shard on the source. Any failure from here rolls
	// back — unfreeze the source, cancel the pull — leaving ownership
	// unchanged.
	srcCtl, err := dialCtl(src.Data, 0)
	if err != nil {
		dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
		return nil, err
	}
	defer srcCtl.close()
	reply, err := srcCtl.cmd(fmt.Sprintf("MIGFREEZE %d", shard))
	if err != nil {
		dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
		return nil, err
	}
	var frozenShard int
	var head uint64
	if _, err := fmt.Sscanf(reply, "FROZEN %d %d", &frozenShard, &head); err != nil || frozenShard != shard {
		dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
		return nil, fmt.Errorf("cluster: bad MIGFREEZE reply %q", reply)
	}
	abort := func(cause error) (*Map, error) {
		srcCtl.cmd(fmt.Sprintf("MIGUNFREEZE %d", shard))
		dst.cmd(fmt.Sprintf("MIGCANCEL %d", shard))
		return nil, cause
	}
	if hooks.Frozen != nil {
		if err := hooks.Frozen(head); err != nil {
			return abort(fmt.Errorf("cluster: migration aborted post-freeze: %w", err))
		}
	}
	st, err := waitMigStat(dst, shard, migCutDeadline, func(st MigStat) bool {
		return st.Phase == "tail" && st.Applied >= head
	})
	if err != nil {
		return abort(fmt.Errorf("cluster: destination did not reach head %d: %w", head, err))
	}
	srcDig, err := fetchDigest(srcCtl, shard)
	if err != nil {
		return abort(err)
	}
	dstDig, err := fetchDigest(dst, shard)
	if err != nil {
		return abort(err)
	}
	if srcDig != dstDig {
		return abort(fmt.Errorf("cluster: shard %d digest mismatch at cutover: src %s dst %s",
			shard, srcDig, dstDig))
	}
	log.Info("cutover verified", "shard", shard, "head", head,
		"applied", st.Applied, "digest", srcDig.String())
	if hooks.Verified != nil {
		if err := hooks.Verified(); err != nil {
			return abort(fmt.Errorf("cluster: migration aborted at cutover: %w", err))
		}
	}

	// Refetch for the freshest epoch (the map can't have changed ownership
	// of this shard — it's frozen — but be safe), mint the new epoch, and
	// publish in the safe order.
	if m2, err := FetchMap(src.Data, 0); err == nil {
		m = m2
	}
	next, err := Reassign(m, shard, dstInfo.Addr)
	if err != nil {
		return abort(err)
	}
	if err := PushMap(dstData, next, 0); err != nil {
		return abort(fmt.Errorf("cluster: pushing map to destination: %w", err))
	}
	// The destination owns the shard now; past this point we never roll
	// back — errors only mean some nodes learn the map late.
	if err := dst.expectOK(fmt.Sprintf("MIGCANCEL %d", shard)); err != nil {
		log.Warn("MIGCANCEL failed", "shard", shard, "err", err)
	}
	if err := PushMap(src.Data, next, 0); err != nil {
		log.Warn("pushing map to source failed", "shard", shard, "err", err)
	}
	srcCtl.cmd(fmt.Sprintf("MIGUNFREEZE %d", shard))
	for _, nd := range next.Nodes() {
		if nd.Data == dstData || nd.Data == src.Data {
			continue
		}
		if err := PushMap(nd.Data, next, 0); err != nil {
			log.Warn("pushing map failed", "node", nd.Data, "err", err)
		}
	}
	log.Info("migration complete", "shard", shard, "epoch", next.Epoch,
		"src", src.Data, "dst", dstData)
	return next, nil
}

func waitMigStat(cc *ctl, shard int, deadline time.Duration, ok func(MigStat) bool) (MigStat, error) {
	end := time.Now().Add(deadline)
	var last MigStat
	for {
		st, err := fetchMigStat(cc, shard)
		if err != nil {
			return st, err
		}
		if ok(st) {
			return st, nil
		}
		last = st
		if time.Now().After(end) {
			return last, fmt.Errorf("timed out in phase %q at lsn %d", last.Phase, last.Applied)
		}
		time.Sleep(migPollEvery)
	}
}

// Failover reassigns every shard owned by the dead node (deadData) to its
// promoted replica at succData: the successor — a full replica of the dead
// node, holding exactly its shards' data — is promoted to writable, and a
// new map epoch moves ownership. seed is any live node other than the dead
// one. No data is lost: the replica's state is crash-consistent by
// construction, bounded by the replication lag at the moment of death (zero
// in synchronous modes).
func Failover(deadData, succData, seed string, log *slog.Logger) (*Map, error) {
	if log == nil {
		log = slog.Default()
	}
	m, err := FetchMap(seed, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching map from %s: %w", seed, err)
	}
	lost := m.NodeShards(deadData)
	if len(lost) == 0 {
		return nil, fmt.Errorf("cluster: %s owns no shards in epoch %d", deadData, m.Epoch)
	}
	succ, err := dialCtl(succData, 0)
	if err != nil {
		return nil, fmt.Errorf("cluster: successor %s: %w", succData, err)
	}
	defer succ.close()
	if _, err := succ.cmd("PROMOTE"); err != nil {
		// An already-promoted successor answers "ERR not a replica" —
		// tolerate it so a crashed-and-rerun failover converges.
		if !strings.Contains(err.Error(), "not a replica") {
			return nil, fmt.Errorf("cluster: promoting %s: %w", succData, err)
		}
	}
	succInfo, err := FetchNodeInfo(succData, 0)
	if err != nil {
		return nil, err
	}
	if succInfo.Shards != m.Shards {
		return nil, fmt.Errorf("cluster: successor runs %d shards, map has %d", succInfo.Shards, m.Shards)
	}
	next := ReassignNode(m, deadData, succInfo.Addr)
	if err := PushMap(succData, next, 0); err != nil {
		return nil, fmt.Errorf("cluster: pushing map to successor: %w", err)
	}
	for _, nd := range next.Nodes() {
		if nd.Data == succData {
			continue
		}
		if err := PushMap(nd.Data, next, 0); err != nil {
			log.Warn("pushing map failed", "node", nd.Data, "err", err)
		}
	}
	log.Info("failover complete", "dead", deadData, "successor", succData,
		"shards", lost, "epoch", next.Epoch)
	return next, nil
}
