package cluster

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"specpmt/internal/repl"
	"specpmt/internal/server"
)

// testNode is one in-process cluster node: server + optional replication
// primary + the cluster wrapper.
type testNode struct {
	srv  *server.Server
	prim *repl.Primary
	node *Node
	addr Addr
}

func startNode(t *testing.T, shards int, withPrim bool) *testNode {
	t.Helper()
	s, err := server.New(server.Config{Engine: "SpecSPMT", Shards: shards, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	tn := &testNode{srv: s, addr: Addr{Data: ln.Addr().String()}}
	if withPrim {
		tn.prim = repl.NewPrimary(s, repl.PrimaryOptions{Logf: t.Logf})
		if err := tn.prim.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tn.prim.Close() })
		tn.addr.Repl = tn.prim.Addr().String()
	}
	tn.node = NewNode(s, tn.prim, tn.addr, NodeOptions{})
	t.Cleanup(tn.node.Close)
	return tn
}

func dialData(t *testing.T, addr string) *server.Client {
	t.Helper()
	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// keysOfShard returns the first n keys that hash to shard.
func keysOfShard(shard, shards int, n int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < n; k++ {
		if server.ShardOf(k, shards) == shard {
			out = append(out, k)
		}
	}
	return out
}

func TestMapWire(t *testing.T) {
	m := &Map{Epoch: 7, Shards: 4, Owners: []Addr{
		{Data: "a:1", Repl: "a:2"},
		{Data: "b:1", Repl: ""},
		{Data: "a:1", Repl: "a:2"},
		{Data: "b:1", Repl: ""},
	}}
	line := strings.TrimRight(string(AppendMap(nil, m)), "\n")
	fs := strings.Fields(line)
	if fs[0] != "MAP" {
		t.Fatalf("bad verb in %q", line)
	}
	got, err := ParseMapFields(fs[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Shards != m.Shards {
		t.Fatalf("roundtrip header mismatch: %+v", got)
	}
	for i := range m.Owners {
		if got.Owners[i] != m.Owners[i] {
			t.Fatalf("owner %d: got %+v want %+v", i, got.Owners[i], m.Owners[i])
		}
	}
	if nodes := m.Nodes(); len(nodes) != 2 || nodes[0].Data != "a:1" || nodes[1].Data != "b:1" {
		t.Fatalf("Nodes() = %+v", nodes)
	}
	if sh := m.NodeShards("b:1"); len(sh) != 2 || sh[0] != 1 || sh[1] != 3 {
		t.Fatalf("NodeShards = %v", sh)
	}

	for _, bad := range [][]string{
		{},                                // truncated
		{"1", "2", "0=a:1/"},              // missing owner token
		{"1", "2", "0=a:1/", "0=b:1/"},    // duplicate shard
		{"1", "2", "0=a:1/", "9=b:1/"},    // shard id out of range
		{"1", "2", "0=a:1/", "1=noslash"}, // malformed address
	} {
		if _, err := ParseMapFields(bad); err == nil {
			t.Fatalf("ParseMapFields(%v) accepted", bad)
		}
	}
}

// TestMigrateLive is the tentpole acceptance test: writes keep flowing
// through map-aware routers while one shard migrates between two live
// nodes, and no committed write is lost or duplicated.
func TestMigrateLive(t *testing.T) {
	const (
		shards   = 4
		migShard = 1
		workers  = 4
		keysPerW = 400
	)
	a := startNode(t, shards, true)
	b := startNode(t, shards, false)
	a.node.Bootstrap()
	if err := b.node.Join(a.addr.Data); err != nil {
		t.Fatal(err)
	}

	view, err := NewView([]string{a.addr.Data})
	if err != nil {
		t.Fatal(err)
	}

	// Each worker owns a disjoint key range and records its last written
	// value — the oracle for the post-migration verify.
	type oracle struct {
		mu   sync.Mutex
		vals map[uint64]uint64
	}
	oracles := make([]*oracle, workers)
	stop := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		oracles[w] = &oracle{vals: map[uint64]uint64{}}
		wg.Add(1)
		go func(w int, o *oracle) {
			defer wg.Done()
			r := NewRouter(view, "text")
			defer r.Close()
			base := uint64(w * keysPerW)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := base + i%keysPerW
				v := k*1000 + i
				if _, err := r.Do(server.Op{Kind: server.OpSet, Key: k, Arg1: v}); err != nil {
					errs <- fmt.Errorf("worker %d SET %d: %w", w, k, err)
					return
				}
				o.mu.Lock()
				o.vals[k] = v
				o.mu.Unlock()
				if i%16 == 0 {
					res, err := r.Do(server.Op{Kind: server.OpGet, Key: k})
					if err != nil {
						errs <- fmt.Errorf("worker %d GET %d: %w", w, k, err)
						return
					}
					if res.Val != v {
						errs <- fmt.Errorf("worker %d read %d=%d, wrote %d", w, k, res.Val, v)
						return
					}
				}
			}
		}(w, oracles[w])
	}

	time.Sleep(100 * time.Millisecond) // let writes accumulate pre-migration
	next, err := Migrate(migShard, b.addr.Data, a.addr.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Owners[migShard].Data != b.addr.Data {
		t.Fatalf("shard %d owned by %s after migration", migShard, next.Owners[migShard].Data)
	}
	time.Sleep(100 * time.Millisecond) // keep writing post-cutover
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// A stale client pinned to the old owner is redirected, carrying the
	// new owner's address.
	sk := keysOfShard(migShard, shards, 1)[0]
	staleC := dialData(t, a.addr.Data)
	_, err = staleC.Set(sk, 1)
	mv := server.AsMoved(err)
	if mv == nil {
		t.Fatalf("stale write to old owner: got %v, want MOVED", err)
	}
	if mv.Shard != migShard || mv.Addr != b.addr.Data || mv.Epoch != next.Epoch {
		t.Fatalf("MOVED = %+v, want shard %d -> %s @%d", mv, migShard, b.addr.Data, next.Epoch)
	}

	// Every committed write is readable through the router at its oracle
	// value — nothing lost, nothing stale.
	r := NewRouter(view, "text")
	defer r.Close()
	for w, o := range oracles {
		o.mu.Lock()
		for k, v := range o.vals {
			res, err := r.Do(server.Op{Kind: server.OpGet, Key: k})
			if err != nil {
				t.Fatalf("verify worker %d key %d: %v", w, k, err)
			}
			if res.Status != server.StatusValue || res.Val != v {
				t.Fatalf("key %d: got (%d,%d), oracle %d", k, res.Status, res.Val, v)
			}
		}
		o.mu.Unlock()
	}

	// The source eventually purges the migrated shard's local copy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cc, err := dialCtl(a.addr.Data, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := fetchDigest(cc, migShard)
		cc.close()
		if err != nil {
			t.Fatal(err)
		}
		if d.Count == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source still holds %d keys of migrated shard", d.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if view.Map().Epoch != next.Epoch {
		t.Fatalf("routers ended on epoch %d, cluster at %d", view.Map().Epoch, next.Epoch)
	}
}

// TestRouterExec covers single-node transactions through the router and
// the cross-node rejection.
func TestRouterExec(t *testing.T) {
	const shards = 4
	a := startNode(t, shards, true)
	b := startNode(t, shards, false)
	a.node.Bootstrap()
	if err := b.node.Join(a.addr.Data); err != nil {
		t.Fatal(err)
	}
	m, err := Migrate(0, b.addr.Data, a.addr.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Owners[0].Data != b.addr.Data {
		t.Fatal("migration did not move shard 0")
	}
	view, err := NewView([]string{a.addr.Data})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(view, "text")
	defer r.Close()

	sameShard := keysOfShard(1, shards, 2)
	if !r.SameNode(sameShard) {
		t.Fatal("same-shard keys must be same-node")
	}
	results, _, err := r.Exec([]server.Op{
		{Kind: server.OpSet, Key: sameShard[0], Arg1: 10},
		{Kind: server.OpSet, Key: sameShard[1], Arg1: 20},
	})
	if err != nil || len(results) != 2 {
		t.Fatalf("Exec: %v (%d results)", err, len(results))
	}

	k0 := keysOfShard(0, shards, 1)[0] // owned by b
	k1 := keysOfShard(1, shards, 1)[0] // owned by a
	if r.SameNode([]uint64{k0, k1}) {
		t.Fatal("cross-node keys reported same-node")
	}
	if _, _, err := r.Exec([]server.Op{
		{Kind: server.OpSet, Key: k0, Arg1: 1},
		{Kind: server.OpSet, Key: k1, Arg1: 2},
	}); err != ErrCrossNode {
		t.Fatalf("cross-node Exec: %v, want ErrCrossNode", err)
	}
}

// TestFailover kills the primary node and promotes its replica: the
// replica's Node adopts the failover map, turns writable, and serves every
// committed key.
func TestFailover(t *testing.T) {
	const shards = 4
	const keys = 300
	a := startNode(t, shards, true)
	a.node.Bootstrap()

	// Successor: a full replica of a, wrapped as a cluster node that owns
	// nothing until failover reassigns a's shards.
	s, err := server.New(server.Config{Engine: "SpecSPMT", Shards: shards, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	rep, err := repl.NewReplica(s, a.addr.Repl, repl.ReplicaOptions{
		RetryEvery: 20 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	t.Cleanup(func() { rep.Close() })
	s.OnPromote(rep.Promote)
	succAddr := Addr{Data: ln.Addr().String()}
	succ := NewNode(s, nil, succAddr, NodeOptions{})
	t.Cleanup(succ.Close)
	if err := succ.Join(a.addr.Data); err != nil {
		t.Fatal(err)
	}

	c := dialData(t, a.addr.Data)
	for k := uint64(0); k < keys; k++ {
		if _, err := c.Set(k, k+7); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for rep.AppliedLSN() < a.prim.Log().Head() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, head %d", rep.AppliedLSN(), a.prim.Log().Head())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Node death.
	a.prim.Close()
	a.srv.Close()

	next, err := Failover(a.addr.Data, succAddr.Data, succAddr.Data, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range next.Owners {
		if o.Data != succAddr.Data {
			t.Fatalf("shard %d still owned by %s after failover", i, o.Data)
		}
	}

	// A router seeded with both nodes rides the failover: the dead seed is
	// skipped, the new map adopted, every key served by the successor.
	view, err := NewView([]string{a.addr.Data, succAddr.Data})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(view, "text")
	defer r.Close()
	for k := uint64(0); k < keys; k++ {
		res, err := r.Do(server.Op{Kind: server.OpGet, Key: k})
		if err != nil {
			t.Fatalf("GET %d after failover: %v", k, err)
		}
		if res.Status != server.StatusValue || res.Val != k+7 {
			t.Fatalf("key %d: got (%d,%d), want %d", k, res.Status, res.Val, k+7)
		}
	}
	// And it is writable.
	if _, err := r.Do(server.Op{Kind: server.OpSet, Key: 1, Arg1: 99}); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
}
