package cluster

import (
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"

	"specpmt/internal/obs"
	"specpmt/internal/repl"
	"specpmt/internal/server"
)

// NodeOptions configures a cluster node wrapper.
type NodeOptions struct {
	Log *slog.Logger
	// Rec, when non-nil, records SpanMigrate spans for migration pull
	// sessions on this node.
	Rec *obs.SpanRecorder
}

// Node makes one specpmt-server cluster-aware: it installs the extension
// verbs (CLUSTER/CLUSTERSET/NODEINFO/MIG*/DIGEST) on the server's text
// protocol, keeps the node's copy of the cluster map in sync with the
// server's route table, runs migration pullers on the destination side,
// and purges shard data the node has migrated away.
//
// The cluster map is deliberately volatile: it lives in memory and in the
// coordinator's pushes, not in PM. A node that restarts comes up
// standalone (no route table — it serves everything) until the operator
// or coordinator re-pushes a map; committed shard data, by contrast, is
// always crash-persistent. Keeping membership out of the durability story
// means the paper's recovery invariants stay exactly as they were — the
// crashtest registry needs no notion of epochs.
type Node struct {
	srv  *server.Server
	prim *repl.Primary
	self Addr
	log  *slog.Logger
	rec  *obs.SpanRecorder

	mu      sync.Mutex
	cur     *Map
	pullers map[int]*puller
	closed  bool
	wg      sync.WaitGroup

	migPulls atomic.Uint64
	migDone  atomic.Uint64
	purged   atomic.Uint64
	adopts   atomic.Uint64
	staleSet atomic.Uint64
}

// NewNode wraps srv (and its replication primary, when it has one) as a
// cluster node advertising self. It registers the extension-verb handler
// and a STATS hook on srv; the node starts with no map (standalone
// behaviour) until Bootstrap, Join, or a CLUSTERSET push installs one.
func NewNode(srv *server.Server, prim *repl.Primary, self Addr, opts NodeOptions) *Node {
	n := &Node{
		srv:     srv,
		prim:    prim,
		self:    self,
		log:     opts.Log,
		rec:     opts.Rec,
		pullers: map[int]*puller{},
	}
	if n.log == nil {
		n.log = slog.Default()
	}
	n.log = n.log.With("self", self.Data)
	srv.OnExtCommand(n.handleCommand)
	srv.SetStatsHook(n.emitStats)
	return n
}

// Self returns the node's advertised addresses.
func (n *Node) Self() Addr { return n.self }

// Map returns the node's current cluster map (nil before one is installed).
func (n *Node) Map() *Map {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cur
}

// Bootstrap installs the single-node map: every shard owned by self,
// epoch 1. The first node of a cluster calls this; the rest Join.
func (n *Node) Bootstrap() {
	n.adopt(Uniform(n.srv.Shards(), n.self))
}

// Join fetches the cluster map from a seed node and adopts it.
func (n *Node) Join(seed string) error {
	m, err := FetchMap(seed, 0)
	if err != nil {
		return err
	}
	if ok, err := n.adopt(m); !ok {
		return fmt.Errorf("cluster: joining via %s: %w", seed, err)
	}
	return nil
}

// adopt installs m when it is strictly newer than the current map,
// updating the server's route table, unfreezing and purging shards the
// node no longer owns. Returns (false, reason) when the map is stale or
// incompatible; an equal epoch is not an error (idempotent re-push) but
// adopts nothing.
func (n *Node) adopt(m *Map) (bool, error) {
	if m.Shards != n.srv.Shards() {
		return false, fmt.Errorf("cluster: map has %d shards, node runs %d", m.Shards, n.srv.Shards())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false, fmt.Errorf("cluster: node closed")
	}
	if n.cur != nil && m.Epoch <= n.cur.Epoch {
		if m.Epoch == n.cur.Epoch {
			return false, nil
		}
		n.staleSet.Add(1)
		return false, fmt.Errorf("cluster: stale epoch %d, have %d", m.Epoch, n.cur.Epoch)
	}
	prev := n.cur
	n.cur = m
	n.adopts.Add(1)
	n.srv.SetRoute(m.Epoch, m.OwnerStrings(), n.self.Data)
	// Shards that just moved away: release any admission freeze (parked
	// requests wake and get MOVED) and drop the local copy of their data.
	var lost []int
	if prev != nil {
		for _, s := range prev.NodeShards(n.self.Data) {
			if m.Owners[s].Data != n.self.Data {
				lost = append(lost, s)
			}
		}
	}
	for _, s := range lost {
		n.srv.UnfreezeShard(s)
	}
	if len(lost) > 0 {
		n.wg.Add(1)
		go n.purgeShards(lost)
	}
	n.log.Info("adopted cluster map", "epoch", m.Epoch,
		"owned", len(m.NodeShards(n.self.Data)), "lost", lost)
	return true, nil
}

// purgeShards deletes the local data of shards that migrated away, in
// batched transactions. Committed DELs ship to this node's own replicas
// like any write, so a full replica of this node converges to the same
// post-migration state.
func (n *Node) purgeShards(shards []int) {
	defer n.wg.Done()
	want := map[int]bool{}
	for _, s := range shards {
		want[s] = true
	}
	var keys []uint64
	var kshard []int
	n.srv.Freeze(func() {
		n.srv.RangeAll(func(sh int, k, _ uint64) bool {
			if want[sh] {
				keys = append(keys, k)
				kshard = append(kshard, sh)
			}
			return true
		})
	})
	const batch = 128
	ops := make([]server.Op, 0, batch)
	flush := func() bool {
		if len(ops) == 0 {
			return true
		}
		if _, err := n.srv.Apply(ops, nil, nil); err != nil {
			n.log.Warn("purge failed", "err", err)
			return false
		}
		n.purged.Add(uint64(len(ops)))
		ops = ops[:0]
		return true
	}
	// One Apply per shard batch keeps each purge transaction single-shard.
	for _, s := range shards {
		for i, k := range keys {
			if kshard[i] != s {
				continue
			}
			ops = append(ops, server.Op{Kind: server.OpDel, Key: k})
			if len(ops) >= batch && !flush() {
				return
			}
		}
		if !flush() {
			return
		}
	}
	n.log.Info("purged migrated shards", "shards", shards, "keys", len(keys))
}

// digestShard folds the shard's committed pairs into an order-independent
// digest under a full freeze — a consistent cut with no transaction in
// flight, which is exactly the state the migration cutover compares.
func (n *Node) digestShard(shard int) (Digest, error) {
	var d Digest
	err := n.srv.Freeze(func() {
		n.srv.RangeAll(func(sh int, k, v uint64) bool {
			if sh == shard {
				d.add(k, v)
			}
			return true
		})
	})
	return d, err
}

// Close stops the node's pullers and waits for background work. The
// wrapped server is not closed.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	pls := make([]*puller, 0, len(n.pullers))
	for _, pl := range n.pullers {
		pls = append(pls, pl)
	}
	n.mu.Unlock()
	for _, pl := range pls {
		pl.stop()
	}
	n.wg.Wait()
}

func (n *Node) emitStats(emit func(name string, val uint64)) {
	n.mu.Lock()
	var epoch, owned uint64
	if n.cur != nil {
		epoch = n.cur.Epoch
		owned = uint64(len(n.cur.NodeShards(n.self.Data)))
	}
	pulls := uint64(len(n.pullers))
	n.mu.Unlock()
	emit("cluster_epoch", epoch)
	emit("cluster_owned_shards", owned)
	emit("cluster_active_pulls", pulls)
	emit("cluster_migrations_started", n.migPulls.Load())
	emit("cluster_migrations_done", n.migDone.Load())
	emit("cluster_purged_keys", n.purged.Load())
	emit("cluster_map_adopts", n.adopts.Load())
	emit("cluster_stale_map_pushes", n.staleSet.Load())
}

// handleCommand is the server.ExtCommand hook: the cluster control verbs.
// Verbs are uppercase; args are only valid for the duration of the call
// and are copied where retained. Every reply is a single line.
func (n *Node) handleCommand(verb string, args [][]byte) ([]byte, bool) {
	switch verb {
	case "CLUSTER":
		m := n.Map()
		if m == nil {
			return []byte("ERR no cluster map\n"), true
		}
		return AppendMap(nil, m), true

	case "CLUSTERSET":
		fs := make([]string, len(args))
		for i, a := range args {
			fs[i] = string(a)
		}
		m, err := ParseMapFields(fs)
		if err != nil {
			return []byte("ERR " + err.Error() + "\n"), true
		}
		if _, err := n.adopt(m); err != nil {
			return []byte("ERR " + err.Error() + "\n"), true
		}
		return []byte("OK\n"), true

	case "NODEINFO":
		repl := n.self.Repl
		if repl == "" {
			repl = "-"
		}
		var epoch uint64
		if m := n.Map(); m != nil {
			epoch = m.Epoch
		}
		return []byte(fmt.Sprintf("NODE %s %s %d %d\n", n.self.Data, repl, n.srv.Shards(), epoch)), true

	case "MIGPULL":
		if len(args) != 2 {
			return []byte("ERR usage: MIGPULL <shard> <source-repl-addr>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		if err := n.startPull(shard, string(args[1])); err != nil {
			return []byte("ERR " + err.Error() + "\n"), true
		}
		return []byte("OK\n"), true

	case "MIGSTAT":
		if len(args) != 1 {
			return []byte("ERR usage: MIGSTAT <shard>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		st := n.pullStat(shard)
		return []byte(fmt.Sprintf("MIG %d %s %d %d\n", shard, st.Phase, st.Applied, st.SnapKeys)), true

	case "MIGCANCEL":
		if len(args) != 1 {
			return []byte("ERR usage: MIGCANCEL <shard>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		n.stopPull(shard)
		return []byte("OK\n"), true

	case "MIGFREEZE":
		if len(args) != 1 {
			return []byte("ERR usage: MIGFREEZE <shard>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		if n.prim == nil {
			return []byte("ERR no replication primary\n"), true
		}
		// Freeze admission first, then drain everything already admitted:
		// when Freeze returns, every committed transaction touching the
		// shard has been published to the log, so ShardHead is final.
		n.srv.FreezeShard(shard)
		var head uint64
		if err := n.srv.Freeze(func() { head = n.prim.ShardHead(shard) }); err != nil {
			n.srv.UnfreezeShard(shard)
			return []byte("ERR " + err.Error() + "\n"), true
		}
		n.log.Info("froze shard for cutover", "shard", shard, "head", head)
		return []byte(fmt.Sprintf("FROZEN %d %d\n", shard, head)), true

	case "MIGUNFREEZE":
		if len(args) != 1 {
			return []byte("ERR usage: MIGUNFREEZE <shard>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		n.srv.UnfreezeShard(shard)
		return []byte("OK\n"), true

	case "DIGEST":
		if len(args) != 1 {
			return []byte("ERR usage: DIGEST <shard>\n"), true
		}
		shard, ok := n.parseShard(args[0])
		if !ok {
			return []byte("ERR bad shard\n"), true
		}
		d, err := n.digestShard(shard)
		if err != nil {
			return []byte("ERR " + err.Error() + "\n"), true
		}
		return []byte(fmt.Sprintf("DIGEST %d %d %016x %016x\n", shard, d.Count, d.Xor, d.Sum)), true
	}
	return nil, false
}

func (n *Node) parseShard(b []byte) (int, bool) {
	v, err := strconv.Atoi(string(b))
	if err != nil || v < 0 || v >= n.srv.Shards() {
		return 0, false
	}
	return v, true
}
