package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// ctlTimeout is the default per-command deadline for control-plane calls
// (map fetch/push, migration verbs). Control commands are tiny
// single-line exchanges; anything slower means the peer is wedged.
const ctlTimeout = 5 * time.Second

// ctl is a one-shot control-plane connection to a node's data port,
// speaking the text protocol's extension verbs. Unlike server.Client it
// never pipelines — every call is one line out, one line back — which
// keeps the coordinator logic trivially sequential.
type ctl struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// dialCtl connects and consumes the server banner.
func dialCtl(addr string, timeout time.Duration) (*ctl, error) {
	if timeout <= 0 {
		timeout = ctlTimeout
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cc := &ctl{c: c, br: bufio.NewReaderSize(c, 1<<14), bw: bufio.NewWriterSize(c, 1<<12)}
	c.SetReadDeadline(time.Now().Add(timeout))
	if _, err := cc.br.ReadString('\n'); err != nil { // banner
		c.Close()
		return nil, fmt.Errorf("cluster: reading banner from %s: %w", addr, err)
	}
	return cc, nil
}

func (cc *ctl) close() { cc.c.Close() }

// cmd sends one command line and returns the one reply line (trimmed, no
// newline). An ERR reply becomes an error.
func (cc *ctl) cmd(line string) (string, error) {
	cc.c.SetWriteDeadline(time.Now().Add(ctlTimeout))
	if _, err := cc.bw.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := cc.bw.Flush(); err != nil {
		return "", err
	}
	cc.c.SetReadDeadline(time.Now().Add(ctlTimeout))
	reply, err := cc.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	reply = strings.TrimRight(reply, "\r\n")
	if strings.HasPrefix(reply, "ERR ") {
		return "", fmt.Errorf("cluster: %s: %s", strings.Fields(line)[0], reply[4:])
	}
	return reply, nil
}

// expectOK runs cmd and requires an OK reply.
func (cc *ctl) expectOK(line string) error {
	reply, err := cc.cmd(line)
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("cluster: %s: unexpected reply %q", strings.Fields(line)[0], reply)
	}
	return nil
}

// FetchMap asks one node for its current cluster map (CLUSTER verb).
func FetchMap(addr string, timeout time.Duration) (*Map, error) {
	cc, err := dialCtl(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer cc.close()
	reply, err := cc.cmd("CLUSTER")
	if err != nil {
		return nil, err
	}
	fs := strings.Fields(reply)
	if len(fs) < 1 || fs[0] != "MAP" {
		return nil, fmt.Errorf("cluster: bad CLUSTER reply %q from %s", reply, addr)
	}
	return ParseMapFields(fs[1:])
}

// PushMap pushes a map to one node (CLUSTERSET). The node adopts it when
// the epoch is newer and replies OK either way (idempotent); a lower epoch
// than the node's current map is an error.
func PushMap(addr string, m *Map, timeout time.Duration) error {
	cc, err := dialCtl(addr, timeout)
	if err != nil {
		return err
	}
	defer cc.close()
	line := string(AppendMap(nil, m))
	return cc.expectOK("CLUSTERSET" + strings.TrimRight(line, "\n")[3:]) // swap MAP verb for CLUSTERSET
}

// NodeInfo is one node's self-description (NODEINFO verb).
type NodeInfo struct {
	Addr   Addr
	Shards int
	Epoch  uint64
}

// FetchNodeInfo asks one node for its advertised addresses and map epoch.
func FetchNodeInfo(addr string, timeout time.Duration) (NodeInfo, error) {
	cc, err := dialCtl(addr, timeout)
	if err != nil {
		return NodeInfo{}, err
	}
	defer cc.close()
	reply, err := cc.cmd("NODEINFO")
	if err != nil {
		return NodeInfo{}, err
	}
	fs := strings.Fields(reply)
	if len(fs) != 5 || fs[0] != "NODE" {
		return NodeInfo{}, fmt.Errorf("cluster: bad NODEINFO reply %q from %s", reply, addr)
	}
	shards, err1 := strconv.Atoi(fs[3])
	epoch, err2 := strconv.ParseUint(fs[4], 10, 64)
	if err1 != nil || err2 != nil {
		return NodeInfo{}, fmt.Errorf("cluster: bad NODEINFO reply %q from %s", reply, addr)
	}
	repl := fs[2]
	if repl == "-" {
		repl = ""
	}
	return NodeInfo{Addr: Addr{Data: fs[1], Repl: repl}, Shards: shards, Epoch: epoch}, nil
}

// MigStat is a migration puller's progress snapshot (MIGSTAT verb).
type MigStat struct {
	Shard    int
	Phase    string // none | connect | snap | tail | failed | stopped
	Applied  uint64 // LSN of the last record applied for the shard
	SnapKeys uint64
}

func fetchMigStat(cc *ctl, shard int) (MigStat, error) {
	reply, err := cc.cmd(fmt.Sprintf("MIGSTAT %d", shard))
	if err != nil {
		return MigStat{}, err
	}
	fs := strings.Fields(reply)
	if len(fs) != 5 || fs[0] != "MIG" {
		return MigStat{}, fmt.Errorf("cluster: bad MIGSTAT reply %q", reply)
	}
	sh, err1 := strconv.Atoi(fs[1])
	applied, err2 := strconv.ParseUint(fs[3], 10, 64)
	keys, err3 := strconv.ParseUint(fs[4], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return MigStat{}, fmt.Errorf("cluster: bad MIGSTAT reply %q", reply)
	}
	return MigStat{Shard: sh, Phase: fs[2], Applied: applied, SnapKeys: keys}, nil
}

// Digest is the order-independent shard content summary both sides of a
// migration compute under Freeze; equal digests mean byte-for-byte equal
// shard state (count + xor + sum of a mixed key/value hash).
type Digest struct {
	Count uint64
	Xor   uint64
	Sum   uint64
}

func (d Digest) String() string { return fmt.Sprintf("%d/%016x/%016x", d.Count, d.Xor, d.Sum) }

// mix64 is splitmix64's finalizer — the same avalanche the shard placement
// hash uses, applied to a key/value pair for digesting.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (d *Digest) add(key, val uint64) {
	h := mix64(key ^ mix64(val+0x9e3779b97f4a7c15))
	d.Count++
	d.Xor ^= h
	d.Sum += h
}

func fetchDigest(cc *ctl, shard int) (Digest, error) {
	reply, err := cc.cmd(fmt.Sprintf("DIGEST %d", shard))
	if err != nil {
		return Digest{}, err
	}
	fs := strings.Fields(reply)
	if len(fs) != 5 || fs[0] != "DIGEST" {
		return Digest{}, fmt.Errorf("cluster: bad DIGEST reply %q", reply)
	}
	count, err1 := strconv.ParseUint(fs[2], 10, 64)
	xor, err2 := strconv.ParseUint(fs[3], 16, 64)
	sum, err3 := strconv.ParseUint(fs[4], 16, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return Digest{}, fmt.Errorf("cluster: bad DIGEST reply %q", reply)
	}
	return Digest{Count: count, Xor: xor, Sum: sum}, nil
}
