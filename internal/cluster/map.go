// Package cluster turns standalone specpmt-servers into a sharded cluster:
// a versioned cluster map assigns each global shard to one node, a routing
// layer redirects misdirected requests with MOVED replies (and follows them
// client-side), live shard migration moves a shard between nodes without
// stopping writes, and per-shard failover promotes a dead node's replica
// and reassigns its shards.
//
// The design keeps the paper's per-shard transaction engines fully
// independent — every node runs the same global shard count, so the
// key→shard placement function (server.ShardOf) is cluster-wide and only
// the shard→node assignment moves. Coordination is deliberately thin: the
// map is a single epoch-numbered line, pushed over the existing text
// protocol as extension verbs (server.OnExtCommand) and gossiped between
// nodes; there is no consensus layer — the highest epoch wins, and epochs
// are only minted by one coordinator action at a time (migration cutover,
// failover).
//
// Live migration reuses internal/repl's machinery end to end: the
// destination pulls a single-shard feed (HELLO with a shard filter → SNAP
// of just that shard's pairs → filtered record tail), the source freezes
// the shard at admission and drains its group-commit pipelines (one
// server.Freeze), both sides compare an order-independent digest, and the
// epoch bump republishes ownership. No committed transaction is lost or
// duplicated: ownership only transfers after the destination has applied
// exactly the source's published history for the shard (digest-verified).
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Addr is one node's advertised addresses: the data port clients speak the
// wire protocols to, and the replication listener other nodes pull shard
// feeds from ("" when the node has none).
type Addr struct {
	Data string
	Repl string
}

// Map is one epoch of the cluster map: Owners[shard] is the node owning
// that shard. Maps are immutable once published; every change mints a new
// epoch.
type Map struct {
	Epoch  uint64
	Shards int
	Owners []Addr
}

// Clone returns a deep copy (for minting the next epoch).
func (m *Map) Clone() *Map {
	return &Map{Epoch: m.Epoch, Shards: m.Shards, Owners: append([]Addr(nil), m.Owners...)}
}

// OwnerStrings projects the map onto the server's route table form: the
// owning data address per shard.
func (m *Map) OwnerStrings() []string {
	out := make([]string, len(m.Owners))
	for i, a := range m.Owners {
		out[i] = a.Data
	}
	return out
}

// NodeShards returns the shards owned by the node with the given data
// address, ascending.
func (m *Map) NodeShards(data string) []int {
	var out []int
	for i, a := range m.Owners {
		if a.Data == data {
			out = append(out, i)
		}
	}
	return out
}

// Nodes returns the distinct node addresses in the map, sorted by data
// address for deterministic iteration.
func (m *Map) Nodes() []Addr {
	seen := map[string]Addr{}
	for _, a := range m.Owners {
		if a.Data != "" {
			seen[a.Data] = a
		}
	}
	out := make([]Addr, 0, len(seen))
	for _, a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Data < out[j].Data })
	return out
}

// addrToken renders one owner as the wire token <data>/<repl>.
func addrToken(a Addr) string { return a.Data + "/" + a.Repl }

func parseAddrToken(tok string) (Addr, error) {
	i := strings.LastIndexByte(tok, '/')
	if i < 0 {
		return Addr{}, fmt.Errorf("cluster: malformed address token %q", tok)
	}
	return Addr{Data: tok[:i], Repl: tok[i+1:]}, nil
}

// AppendMap renders the map as the one-line wire form
//
//	MAP <epoch> <shards> <id>=<data>/<repl> ...
//
// (newline-terminated). CLUSTERSET pushes carry the same fields after the
// verb.
func AppendMap(dst []byte, m *Map) []byte {
	dst = append(dst, "MAP "...)
	dst = strconv.AppendUint(dst, m.Epoch, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(m.Shards), 10)
	for i, a := range m.Owners {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, '=')
		dst = append(dst, addrToken(a)...)
	}
	return append(dst, '\n')
}

// ParseMapFields decodes the fields of a MAP line or a CLUSTERSET command
// after the verb: <epoch> <shards> <id>=<data>/<repl> ...
func ParseMapFields(fields []string) (*Map, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("cluster: truncated map")
	}
	epoch, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad epoch %q", fields[0])
	}
	shards, err := strconv.Atoi(fields[1])
	if err != nil || shards < 1 || shards > 64 {
		return nil, fmt.Errorf("cluster: bad shard count %q", fields[1])
	}
	if len(fields) != 2+shards {
		return nil, fmt.Errorf("cluster: map has %d owner tokens, want %d", len(fields)-2, shards)
	}
	m := &Map{Epoch: epoch, Shards: shards, Owners: make([]Addr, shards)}
	for _, tok := range fields[2:] {
		eq := strings.IndexByte(tok, '=')
		if eq < 0 {
			return nil, fmt.Errorf("cluster: malformed owner token %q", tok)
		}
		id, err := strconv.Atoi(tok[:eq])
		if err != nil || id < 0 || id >= shards {
			return nil, fmt.Errorf("cluster: bad shard id in %q", tok)
		}
		a, err := parseAddrToken(tok[eq+1:])
		if err != nil {
			return nil, err
		}
		if m.Owners[id].Data != "" {
			return nil, fmt.Errorf("cluster: duplicate owner for shard %d", id)
		}
		m.Owners[id] = a
	}
	for i, a := range m.Owners {
		if a.Data == "" {
			return nil, fmt.Errorf("cluster: shard %d has no owner", i)
		}
	}
	return m, nil
}

// Uniform builds the bootstrap map: every shard owned by self, epoch 1.
func Uniform(shards int, self Addr) *Map {
	m := &Map{Epoch: 1, Shards: shards, Owners: make([]Addr, shards)}
	for i := range m.Owners {
		m.Owners[i] = self
	}
	return m
}

// Reassign mints the next epoch with the given shard moved to owner.
func Reassign(m *Map, shard int, owner Addr) (*Map, error) {
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: no shard %d", shard)
	}
	next := m.Clone()
	next.Epoch++
	next.Owners[shard] = owner
	return next, nil
}

// ReassignNode mints the next epoch with every shard owned by `from` (data
// address) moved to `to` — the failover map change.
func ReassignNode(m *Map, from string, to Addr) *Map {
	next := m.Clone()
	next.Epoch++
	for i, a := range next.Owners {
		if a.Data == from {
			next.Owners[i] = to
		}
	}
	return next
}
