package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"specpmt/internal/server"
)

// View is a shared, refreshable copy of the cluster map for clients. Many
// Routers (one per load-generator goroutine) share one View, so a single
// MOVED redirect refreshes the map for the whole fleet.
type View struct {
	mu    sync.RWMutex
	m     *Map
	seeds []string

	refreshes atomic.Uint64
}

// NewView fetches the initial map from the first reachable seed.
func NewView(seeds []string) (*View, error) {
	v := &View{seeds: seeds}
	var lastErr error
	for _, s := range seeds {
		m, err := FetchMap(s, 0)
		if err == nil {
			v.m = m
			return v, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: no reachable seed: %w", lastErr)
}

// Map returns the current map.
func (v *View) Map() *Map {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m
}

// Refreshes reports how many refreshes actually advanced the epoch.
func (v *View) Refreshes() uint64 { return v.refreshes.Load() }

// adopt installs m if it is newer than the current map.
func (v *View) adopt(m *Map) {
	v.mu.Lock()
	if m.Epoch > v.m.Epoch {
		v.m = m
		v.refreshes.Add(1)
	}
	v.mu.Unlock()
}

// RefreshFrom re-fetches the map from one address (typically the new owner
// named by a MOVED redirect — the one node guaranteed to have the fresh
// epoch).
func (v *View) RefreshFrom(addr string) error {
	m, err := FetchMap(addr, 0)
	if err != nil {
		return err
	}
	v.adopt(m)
	return nil
}

// Refresh re-fetches the map from any reachable node of the current map,
// falling back to the seeds — the path a client takes when its target node
// died.
func (v *View) Refresh() error {
	tried := map[string]bool{}
	var lastErr error
	for _, nd := range v.Map().Nodes() {
		tried[nd.Data] = true
		if err := v.RefreshFrom(nd.Data); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	for _, s := range v.seeds {
		if tried[s] {
			continue
		}
		if err := v.RefreshFrom(s); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return fmt.Errorf("cluster: refresh found no reachable node: %w", lastErr)
}

// ErrCrossNode is returned by Router.Exec when a transaction's keys map to
// more than one node — cross-node transactions are not supported; the
// caller should redraw its keys (Router.SameNode).
var ErrCrossNode = errors.New("cluster: transaction keys span nodes")

// routerBackoff paces retries after a transport error or redirect storm.
const routerBackoff = 25 * time.Millisecond

// Router routes single operations and single-node transactions to the
// owning node, following MOVED redirects and riding out failovers by
// refreshing its View and retrying until RetryFor elapses. NOT safe for
// concurrent use — each client goroutine owns one Router; the View is the
// shared part.
type Router struct {
	view  *View
	proto string
	// RetryFor bounds how long one operation retries through redirects,
	// dead connections, and map refreshes before giving up (default 15s —
	// enough to ride out a coordinator-driven failover).
	RetryFor time.Duration

	conns map[string]*server.Client

	// Per-router tallies, merged by the caller into its report.
	Moved     uint64
	Retries   uint64
	OpsByNode map[string]uint64
}

// NewRouter builds a router over a shared view speaking proto ("text" or
// "bin") to every node.
func NewRouter(view *View, proto string) *Router {
	return &Router{
		view:      view,
		proto:     proto,
		RetryFor:  15 * time.Second,
		conns:     map[string]*server.Client{},
		OpsByNode: map[string]uint64{},
	}
}

// Close drops every connection.
func (r *Router) Close() {
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = map[string]*server.Client{}
}

func (r *Router) conn(addr string) (*server.Client, error) {
	if c := r.conns[addr]; c != nil {
		return c, nil
	}
	c, err := server.DialProto(addr, 2*time.Second, r.proto)
	if err != nil {
		return nil, err
	}
	r.conns[addr] = c
	return c, nil
}

func (r *Router) dropConn(addr string) {
	if c := r.conns[addr]; c != nil {
		c.Close()
		delete(r.conns, addr)
	}
}

// AddrFor returns the data address currently owning the key's shard.
func (r *Router) AddrFor(key uint64) string {
	m := r.view.Map()
	return m.Owners[server.ShardOf(key, m.Shards)].Data
}

// SameNode reports whether all keys currently route to one node — the
// precondition for Exec.
func (r *Router) SameNode(keys []uint64) bool {
	if len(keys) < 2 {
		return true
	}
	first := r.AddrFor(keys[0])
	for _, k := range keys[1:] {
		if r.AddrFor(k) != first {
			return false
		}
	}
	return true
}

// Do executes one operation against the owning node, following redirects.
func (r *Router) Do(op server.Op) (server.OpResult, error) {
	var res server.OpResult
	err := r.retryLoop(func() error {
		addr := r.AddrFor(op.Key)
		c, err := r.conn(addr)
		if err != nil {
			return err
		}
		switch op.Kind {
		case server.OpGet:
			res, err = c.Get(op.Key)
		case server.OpSet:
			res, err = c.Set(op.Key, op.Arg1)
		case server.OpDel:
			res, err = c.Del(op.Key)
		case server.OpCAS:
			res, err = c.CAS(op.Key, op.Arg1, op.Arg2)
		default:
			return fmt.Errorf("cluster: unroutable op kind %d", op.Kind)
		}
		if err != nil {
			return r.noteFailure(addr, err)
		}
		r.OpsByNode[addr]++
		return nil
	})
	return res, err
}

// Exec executes ops as one transaction on the node owning all their keys.
func (r *Router) Exec(ops []server.Op) ([]server.OpResult, int64, error) {
	var results []server.OpResult
	var modelNs int64
	err := r.retryLoop(func() error {
		addr := r.AddrFor(ops[0].Key)
		for _, op := range ops[1:] {
			if r.AddrFor(op.Key) != addr {
				return ErrCrossNode
			}
		}
		c, err := r.conn(addr)
		if err != nil {
			return err
		}
		results, modelNs, err = c.Exec(ops)
		if err != nil {
			return r.noteFailure(addr, err)
		}
		r.OpsByNode[addr] += uint64(len(ops))
		return nil
	})
	return results, modelNs, err
}

// noteFailure classifies one failed attempt: a MOVED redirect refreshes
// the view from the new owner (connection stays healthy); anything else —
// a dead node, a poisoned stream, a frozen-shard admission timeout —
// drops the connection so the retry re-dials.
func (r *Router) noteFailure(addr string, err error) error {
	if mv := server.AsMoved(err); mv != nil {
		r.Moved++
		if mv.Addr != "" {
			r.view.RefreshFrom(mv.Addr)
		} else {
			r.view.Refresh()
		}
		return err
	}
	r.dropConn(addr)
	return err
}

// retryLoop drives attempt until success, ErrCrossNode (surfaced to the
// caller), or the retry budget runs out. Redirects retry immediately;
// transport errors refresh the map and back off — the sequence that rides
// out a mid-run failover.
func (r *Router) retryLoop(attempt func() error) error {
	deadline := time.Now().Add(r.RetryFor)
	var err error
	for try := 0; ; try++ {
		err = attempt()
		if err == nil || errors.Is(err, ErrCrossNode) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: giving up after %s: %w", r.RetryFor, err)
		}
		r.Retries++
		if server.AsMoved(err) == nil {
			// Not a redirect: the node may be gone; learn the new map
			// before retrying.
			r.view.Refresh()
			time.Sleep(routerBackoff)
		}
	}
}
