// Package spht implements an SPHT-style redo-logging persistent transaction
// (Castro et al., FAST'21) as configured in the SpecPMT paper's evaluation:
// transactions buffer write intents in a volatile write set, persist a single
// redo log record — flush plus one fence — at commit, and leave data
// persistence to a background replayer thread that applies the log to the
// persistent data off the critical path (the paper uses SPHT's forward
// linking version with one background replayer).
//
// Costs charged on the application core: per-access redirection overhead
// (reads must consult the write set, writes are buffered then applied),
// the commit-time log persist, and the occasional log-area reset. The
// replayer's data flushes run on a separate core whose time does not extend
// the application's critical path, matching the paper's setup of a dedicated
// replayer thread.
package spht

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

const (
	magic = 0x5350485452454430 // "SPHTRED0"

	offMagic      = 0
	offLogArea    = 8
	offLogCap     = 16
	offReplayHead = 24
	offLogGen     = 32

	recHeader = 8 + 4 + 4 + 4 // timestamp, total size, nentries, log generation
	entHeader = 8 + 4         // addr, size
	recFooter = 8             // checksum
)

// ErrLogFull is returned when a single transaction cannot fit in the log.
var ErrLogFull = errors.New("spht: redo log full")

// Options configures the engine.
type Options struct {
	// LogCap is the redo log capacity in bytes (default 4 MiB).
	LogCap int
	// ReplayLag is how many committed records may await background replay
	// before the replayer catches up (default 4).
	ReplayLag int
	// RedirectLoadNs and RedirectStoreNs model the address-redirection cost
	// of out-of-place designs (§8: "they require additional address
	// translation for every memory access").
	RedirectLoadNs  int64
	RedirectStoreNs int64
}

func (o *Options) setDefaults() {
	if o.LogCap == 0 {
		o.LogCap = 4 << 20
	}
	if o.ReplayLag == 0 {
		o.ReplayLag = 16
	}
	if o.RedirectLoadNs == 0 {
		o.RedirectLoadNs = 3
	}
	if o.RedirectStoreNs == 0 {
		o.RedirectStoreNs = 6
	}
}

// Engine is the SPHT-style redo engine.
type Engine struct {
	env         txn.Env
	opt         Options
	bg          *pmem.Core // replayer core
	logArea     pmem.Addr
	logCap      int
	tail        int // volatile append offset
	gen         uint32
	replayedOff int
	pending     []pendingRec
	open        bool

	// cur is the reusable transaction object (one open tx per engine) and
	// recBuf the redo-record staging buffer, recycled across commits.
	// rangePool recycles the range slices handed to pending records once the
	// replayer retires them.
	cur       tx
	recBuf    []byte
	rangePool [][]txn.WriteRange
}

type pendingRec struct {
	endOff int
	// ranges is the commit's own copy of the write-set ranges: the write
	// set itself is reset and reused by the next transaction while the
	// record is still awaiting replay.
	ranges []txn.WriteRange
}

// grabRanges returns an empty range slice, reusing capacity retired by the
// replayer when available.
func (e *Engine) grabRanges() []txn.WriteRange {
	if n := len(e.rangePool); n > 0 {
		rs := e.rangePool[n-1]
		e.rangePool = e.rangePool[:n-1]
		return rs
	}
	return nil
}

func init() {
	txn.Register("SPHT", func(env txn.Env) (txn.Engine, error) { return New(env, Options{}) })
}

// New attaches to (or initialises) an SPHT engine at env.Root.
func New(env txn.Env, opt Options) (*Engine, error) {
	opt.setDefaults()
	e := &Engine{env: env, opt: opt, bg: env.Dev.NewCore()}
	e.bg.SetTrackName("replayer")
	c := env.Core
	if c.LoadUint64(env.Root+offMagic) == magic {
		e.logArea = pmem.Addr(c.LoadUint64(env.Root + offLogArea))
		e.logCap = int(c.LoadUint64(env.Root + offLogCap))
		// tail is volatile; recovery rediscovers the durable tail by scan.
		e.tail = int(c.LoadUint64(env.Root + offReplayHead))
		e.replayedOff = e.tail
		e.gen = c.LoadUint32(env.Root + offLogGen)
		return e, nil
	}
	area, err := env.LogHeap.Alloc(opt.LogCap)
	if err != nil {
		return nil, fmt.Errorf("spht: allocating log area: %w", err)
	}
	e.logArea, e.logCap = area, opt.LogCap
	c.StoreUint64(env.Root+offLogArea, uint64(area))
	c.StoreUint64(env.Root+offLogCap, uint64(opt.LogCap))
	c.StoreUint64(env.Root+offReplayHead, 0)
	c.StoreUint32(env.Root+offLogGen, 1)
	e.gen = 1
	c.StoreUint64(env.Root+offMagic, magic)
	c.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *Engine) Name() string { return "SPHT" }

// Close drains the background replayer.
func (e *Engine) Close() error {
	e.replay(len(e.pending))
	return nil
}

// Begin implements txn.Engine.
func (e *Engine) Begin() txn.Tx {
	if e.open {
		panic("spht: engine supports one open transaction per core")
	}
	e.open = true
	e.env.Core.Stats.TxBegun++
	e.env.Core.TraceTxBegin()
	t := &e.cur
	if t.e == nil {
		t.e = e
		t.ws = txn.NewWriteSet()
	}
	t.reset()
	return t
}

type tx struct {
	e    *Engine
	ws   *txn.WriteSet
	vals [][]byte
	done bool
	// arena backs the buffered value copies in vals.
	arena txn.Arena
}

// reset readies the reusable tx, keeping the write-set, vals slice, and
// arena capacity warm.
func (t *tx) reset() {
	t.ws.Reset()
	t.vals = t.vals[:0]
	t.done = false
	t.arena.Reset()
}

// Store buffers the write intent; nothing touches persistent data yet.
func (t *tx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("spht: use of finished transaction")
	}
	c := t.e.env.Core
	t.ws.Add(addr, len(data))
	val := t.arena.Grab(len(data))
	copy(val, data)
	t.vals = append(t.vals, val)
	lines := int64((len(data) + pmem.LineSize - 1) / pmem.LineSize)
	c.Compute(t.e.opt.RedirectStoreNs + lines) // buffer insert + copy
	c.Stats.Stores++
	c.Stats.StoreBytes += uint64(len(data))
}

// StoreUint64 implements txn.Tx.
func (t *tx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Load reads memory and overlays the transaction's own write intents.
func (t *tx) Load(addr pmem.Addr, buf []byte) {
	c := t.e.env.Core
	c.Compute(t.e.opt.RedirectLoadNs)
	c.Load(addr, buf)
	// Overlay buffered writes, newest-first wins by applying in order.
	for i, r := range t.ws.Ranges() {
		lo, hi := r.Addr, r.Addr+pmem.Addr(r.Size)
		qlo, qhi := addr, addr+pmem.Addr(len(buf))
		if lo >= qhi || qlo >= hi {
			continue
		}
		start := max64(lo, qlo)
		end := min64(hi, qhi)
		copy(buf[start-qlo:end-qlo], t.vals[i][start-lo:end-lo])
	}
}

// LoadUint64 implements txn.Tx.
func (t *tx) LoadUint64(addr pmem.Addr) uint64 {
	var b [8]byte
	t.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Compute implements txn.Tx.
func (t *tx) Compute(ns int64) { t.e.env.Core.Compute(ns) }

// Commit persists one redo record with a single fence, applies the write set
// to the (volatile view of the) data, and hands data persistence to the
// background replayer.
func (t *tx) Commit() error {
	if t.done {
		return errors.New("spht: transaction already finished")
	}
	t.done = true
	t.e.open = false
	e := t.e
	c := e.env.Core
	commitStart := c.Now()
	if t.ws.Len() == 0 {
		c.Stats.TxCommitted++
		c.TraceTxCommit(commitStart, 0, 0)
		return nil
	}
	// Encode the record.
	size := recHeader + recFooter
	for _, r := range t.ws.Ranges() {
		size += entHeader + r.Size
	}
	if size > e.logCap {
		e.open = false
		c.Stats.TxAborted++
		c.TraceTxAbort()
		return ErrLogFull
	}
	if e.tail+size > e.logCap {
		if err := e.resetLog(); err != nil {
			c.Stats.TxAborted++
			c.TraceTxAbort()
			return err
		}
	}
	if cap(e.recBuf) < size {
		e.recBuf = make([]byte, size)
	}
	buf := e.recBuf[:size]
	binary.LittleEndian.PutUint64(buf[0:], e.env.TS.Next())
	binary.LittleEndian.PutUint32(buf[8:], uint32(size))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.ws.Len()))
	binary.LittleEndian.PutUint32(buf[16:], e.gen)
	off := recHeader
	for i, r := range t.ws.Ranges() {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r.Addr))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(r.Size))
		copy(buf[off+entHeader:], t.vals[i])
		off += entHeader + r.Size
	}
	binary.LittleEndian.PutUint64(buf[off:], txn.Checksum64(buf[:off]))
	at := e.logArea + pmem.Addr(e.tail)
	c.Store(at, buf)
	// Critical path: persist the record, one fence (SPHT's removal of
	// per-update fences is what lets it beat Kamino-Tx).
	c.PersistBarrier(at, size, pmem.KindLog)
	e.tail += size
	c.Stats.LogRecords++
	c.Stats.AddLiveLog(int64(size))
	c.TraceLogAppend(size)
	// Make the committed values visible in the data image (the volatile
	// snapshot); persistence of these lines is the replayer's job.
	for i, r := range t.ws.Ranges() {
		c.Store(r.Addr, t.vals[i])
	}
	e.pending = append(e.pending, pendingRec{endOff: e.tail, ranges: append(e.grabRanges(), t.ws.Ranges()...)})
	if len(e.pending) > e.opt.ReplayLag {
		e.replay(len(e.pending) - e.opt.ReplayLag)
	}
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, t.ws.Len(), size)
	return nil
}

// Abort discards the volatile write set; nothing persistent happened.
func (t *tx) Abort() error {
	if t.done {
		return errors.New("spht: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.e.env.Core.Stats.TxAborted++
	t.e.env.Core.TraceTxAbort()
	return nil
}

// replay flushes the data lines of the n oldest pending records on the
// background core and advances the durable replay head.
func (e *Engine) replay(n int) {
	if n <= 0 || len(e.pending) == 0 {
		return
	}
	if n > len(e.pending) {
		n = len(e.pending)
	}
	// Replay coalesces: transactions in the batch that touched the same
	// cache lines produce a single write-back per distinct line — the
	// bandwidth advantage of deferring data persistence to a replayer.
	lines := txn.NewWriteSet()
	var endOff int
	for i := 0; i < n; i++ {
		rec := e.pending[i]
		for _, r := range rec.ranges {
			lines.Add(r.Addr, r.Size)
		}
		endOff = rec.endOff
		e.rangePool = append(e.rangePool, rec.ranges[:0])
	}
	for _, l := range lines.Lines() {
		e.bg.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	e.bg.Fence()
	e.bg.StoreUint64(e.env.Root+offReplayHead, uint64(endOff))
	e.bg.PersistBarrier(e.env.Root+offReplayHead, 8, pmem.KindLog)
	e.pending = append(e.pending[:0], e.pending[n:]...)
	e.env.Core.Stats.AddLiveLog(-int64(endOff - e.replayedOff))
	e.replayedOff = endOff
}

// resetLog drains the replayer and rewinds the log area. The persistent log
// generation is bumped so that recovery never mistakes residue of the
// previous pass — whose checksums are still valid — for live records.
func (e *Engine) resetLog() error {
	e.replay(len(e.pending))
	c := e.env.Core
	e.gen++
	c.StoreUint64(e.env.Root+offReplayHead, 0)
	c.StoreUint32(e.env.Root+offLogGen, e.gen)
	c.PersistBarrier(e.env.Root+offReplayHead, 16, pmem.KindLog)
	e.tail = 0
	e.replayedOff = 0
	return nil
}

// Recover applies every committed-but-unreplayed redo record from the
// durable replay head forward, stopping at the first torn record.
func (e *Engine) Recover() error {
	c := e.env.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	head := int(c.LoadUint64(e.env.Root + offReplayHead))
	off := head
	for off+recHeader+recFooter <= e.logCap {
		hdr := make([]byte, recHeader)
		c.Load(e.logArea+pmem.Addr(off), hdr)
		size := int(binary.LittleEndian.Uint32(hdr[8:]))
		n := int(binary.LittleEndian.Uint32(hdr[12:]))
		if size < recHeader+recFooter || off+size > e.logCap || n == 0 {
			break
		}
		rec := make([]byte, size)
		c.Load(e.logArea+pmem.Addr(off), rec)
		if binary.LittleEndian.Uint32(rec[16:]) != e.gen {
			break // record from a previous log generation
		}
		sum := binary.LittleEndian.Uint64(rec[size-recFooter:])
		if txn.Checksum64(rec[:size-recFooter]) != sum {
			break // torn or stale: this commit never became durable
		}
		p := recHeader
		ok := true
		for i := 0; i < n; i++ {
			if p+entHeader > size-recFooter {
				ok = false
				break
			}
			addr := pmem.Addr(binary.LittleEndian.Uint64(rec[p:]))
			sz := int(binary.LittleEndian.Uint32(rec[p+8:]))
			if p+entHeader+sz > size-recFooter {
				ok = false
				break
			}
			c.Store(addr, rec[p+entHeader:p+entHeader+sz])
			c.Flush(addr, sz, pmem.KindData)
			p += entHeader + sz
		}
		if !ok {
			break
		}
		off += size
	}
	c.Fence()
	c.StoreUint64(e.env.Root+offReplayHead, uint64(off))
	c.PersistBarrier(e.env.Root+offReplayHead, 8, pmem.KindLog)
	e.tail = off
	e.replayedOff = off
	e.pending = nil
	return nil
}

func max64(a, b pmem.Addr) pmem.Addr {
	if a > b {
		return a
	}
	return b
}

func min64(a, b pmem.Addr) pmem.Addr {
	if a < b {
		return a
	}
	return b
}
