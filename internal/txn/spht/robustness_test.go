package spht

import (
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
	"specpmt/internal/txn/txntest"
)

func TestRecoverOnGarbageLogNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		w := txntest.NewWorld(32 << 20)
		env := w.Env(false)
		e, err := New(env, Options{LogCap: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		n := len(garbage)
		if n > 4096 {
			n = 4096
		}
		if n > 0 {
			env.Core.Store(e.logArea, garbage[:n])
		}
		defer func() {
			if recover() != nil {
				t.Error("spht recovery panicked on garbage log")
			}
		}()
		if err := e.Recover(); err != nil {
			t.Errorf("recover errored: %v", err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayReadProperty(t *testing.T) {
	// A transactional read over any mix of committed data and buffered
	// writes must equal a reference overlay.
	f := func(baseVal, newVal uint64, writeOff, readOff uint8) bool {
		w := txntest.NewWorld(32 << 20)
		env := w.Env(false)
		e, err := New(env, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		a, _ := w.DataHeap.Alloc(256)
		tx := e.Begin()
		tx.StoreUint64(a+8, baseVal)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Reference image of the region.
		ref := make([]byte, 64)
		env.Core.Load(a, ref)
		tx = e.Begin()
		wo := int(writeOff) % 56
		var nb [8]byte
		for i := 0; i < 8; i++ {
			nb[i] = byte(newVal >> (8 * i))
		}
		tx.Store(a+pmem.Addr(wo), nb[:])
		copy(ref[wo:wo+8], nb[:])
		ro := int(readOff) % 48
		got := make([]byte, 16)
		tx.Load(a+pmem.Addr(ro), got)
		ok := string(got) == string(ref[ro:ro+16])
		tx.Abort()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
