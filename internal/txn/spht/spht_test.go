package spht

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func factory(env txn.Env) (txn.Engine, error) { return New(env, Options{}) }

func TestConformance(t *testing.T) {
	txntest.Run(t, factory)
}

func TestSingleFencePerCommitOnAppCore(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, err := New(env, Options{ReplayLag: 100}) // keep replayer quiet
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	addrs := make([]pmem.Addr, 10)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	before := env.Core.Stats.Fences
	tx := e.Begin()
	for _, a := range addrs {
		tx.StoreUint64(a, 1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.Stats.Fences - before; got != 1 {
		t.Fatalf("app-core fences per commit = %d, want 1", got)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 99)
	if got := tx.LoadUint64(a); got != 99 {
		t.Fatalf("tx should see its own write: got %d", got)
	}
	// Partial overlap: read 16 bytes covering the written 8.
	var buf [16]byte
	tx.Load(a, buf[:])
	if buf[0] != 99 {
		t.Fatalf("overlay read failed: %v", buf)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.LoadUint64(a); got != 1 {
		t.Fatalf("aborted write leaked into memory: %d", got)
	}
}

func TestAbortIsFree(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	before := env.Core.Stats.Snapshot()
	tx := e.Begin()
	tx.StoreUint64(a, 5)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	after := env.Core.Stats
	if after.Fences != before.Fences || after.PMWriteBytes != before.PMWriteBytes {
		t.Fatal("out-of-place abort should touch no persistent state")
	}
}

func TestLogResetGeneration(t *testing.T) {
	// Force many log resets with a tiny log; committed state must survive
	// a crash landing after resets (stale records must not replay).
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, err := New(env, Options{LogCap: 512, ReplayLag: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)
	for v := uint64(1); v <= 50; v++ {
		tx := e.Begin()
		tx.StoreUint64(a, v)
		tx.StoreUint64(b, 1000+v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	w.Dev.Crash(sim.NewRand(11))
	e2, _ := New(w.SameEnv(env), Options{LogCap: 512})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	if got := c.LoadUint64(a); got != 50 {
		t.Fatalf("a=%d want 50", got)
	}
	if got := c.LoadUint64(b); got != 1050 {
		t.Fatalf("b=%d want 1050", got)
	}
}

func TestOversizedTxRejected(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{LogCap: 256})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	tx := e.Begin()
	tx.Store(a, make([]byte, 1024))
	if err := tx.Commit(); err != ErrLogFull {
		t.Fatalf("err=%v want ErrLogFull", err)
	}
	if got := env.Core.LoadUint64(a); got != 0 {
		t.Fatalf("rejected commit leaked data: %d", got)
	}
}

func TestCrashWithReplayLag(t *testing.T) {
	// Committed but unreplayed records must be recovered from the redo log.
	for seed := uint64(0); seed < 8; seed++ {
		w := txntest.NewWorld(32 << 20)
		env := w.Env(false)
		e, _ := New(env, Options{ReplayLag: 1000}) // replayer never runs
		a, _ := w.DataHeap.Alloc(64)
		for v := uint64(1); v <= 20; v++ {
			tx := e.Begin()
			tx.StoreUint64(a, v)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Skip Close (it would drain the replayer): crash with lag.
		w.Dev.Crash(sim.NewRand(seed))
		e2, _ := New(w.SameEnv(env), Options{})
		if err := e2.Recover(); err != nil {
			t.Fatal(err)
		}
		if got := w.Dev.NewCore().LoadUint64(a); got != 20 {
			t.Fatalf("seed %d: a=%d want 20", seed, got)
		}
		e2.Close()
	}
}

func TestRegisteredName(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	e, err := txn.New("SPHT", w.Env(false))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Name() != "SPHT" {
		t.Fatalf("name = %q", e.Name())
	}
}
