// Package txntest is a conformance battery for txn.Engine implementations.
// Every engine package runs the same suite so that the crash-consistency
// contract — committed transactions are durable and atomic, uncommitted
// transactions leave no observable effect — is enforced uniformly.
package txntest

import (
	"fmt"
	"testing"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
)

// World is a device plus the conventional region layout used by tests and
// the harness: a root page for engines, a data heap, and a log heap.
type World struct {
	Dev      *pmem.Device
	Core     *pmem.Core
	DataHeap *pmalloc.Heap
	LogHeap  *pmalloc.Heap
	TS       *txn.Timestamp
	roots    pmem.Addr
	nextRoot int
}

// NewWorld builds a world over a device of size bytes. The first page holds
// engine roots; data occupies [PageSize, size/4); logs and engine-private
// areas (including Kamino's backup copy, which mirrors the data region)
// occupy [size/4, size).
func NewWorld(size int) *World {
	dev := pmem.NewDevice(pmem.Config{Size: size})
	return &World{
		Dev:      dev,
		Core:     dev.NewCore(),
		DataHeap: pmalloc.NewHeap(pmem.PageSize, pmem.Addr(size/4)),
		LogHeap:  pmalloc.NewHeap(pmem.Addr(size/4), pmem.Addr(size)),
		TS:       &txn.Timestamp{},
		roots:    0,
	}
}

// Env returns a fresh engine Env. Each call hands out a distinct root slot
// and may hand out a distinct core.
func (w *World) Env(newCore bool) txn.Env {
	root := w.roots + pmem.Addr(w.nextRoot*txn.RootSize)
	w.nextRoot++
	core := w.Core
	if newCore {
		core = w.Dev.NewCore()
	}
	return txn.Env{Dev: w.Dev, Core: core, Heap: w.DataHeap, LogHeap: w.LogHeap, Root: root, TS: w.TS}
}

// SameEnv rebuilds an Env bound to an existing root (post-crash reattach).
func (w *World) SameEnv(env txn.Env) txn.Env {
	out := env
	out.Core = w.Dev.NewCore()
	return out
}

// Factory builds an engine for the conformance suite.
type Factory func(env txn.Env) (txn.Engine, error)

// Run executes the conformance battery against the factory.
func Run(t *testing.T, f Factory) {
	t.Helper()
	t.Run("CommitDurable", func(t *testing.T) { commitDurable(t, f) })
	t.Run("AbortRestores", func(t *testing.T) { abortRestores(t, f) })
	t.Run("UncommittedRevoked", func(t *testing.T) { uncommittedRevoked(t, f) })
	t.Run("SequentialCommits", func(t *testing.T) { sequentialCommits(t, f) })
	t.Run("RandomCrashPoints", func(t *testing.T) { randomCrashPoints(t, f) })
	t.Run("RepeatedUpdateSameTx", func(t *testing.T) { repeatedUpdate(t, f) })
	t.Run("RecoverIdempotent", func(t *testing.T) { recoverIdempotent(t, f) })
	t.Run("EmptyCommit", func(t *testing.T) { emptyCommit(t, f) })
	t.Run("AbortCommitInterleave", func(t *testing.T) { abortCommitInterleave(t, f) })
	t.Run("StatsSanity", func(t *testing.T) { statsSanity(t, f) })
}

func mustEngine(t *testing.T, f Factory, env txn.Env) txn.Engine {
	t.Helper()
	e, err := f(env)
	if err != nil {
		t.Fatalf("engine construction: %v", err)
	}
	return e
}

// commitDurable: committed values survive a clean crash plus recovery.
func commitDurable(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)

	tx := e.Begin()
	tx.StoreUint64(a, 0xAAAA)
	tx.StoreUint64(b, 0xBBBB)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	w.Dev.CrashClean()
	e2 := mustEngine(t, f, w.SameEnv(env))
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	c := w.Dev.NewCore()
	if got := c.LoadUint64(a); got != 0xAAAA {
		t.Fatalf("a=%#x after crash, want 0xAAAA", got)
	}
	if got := c.LoadUint64(b); got != 0xBBBB {
		t.Fatalf("b=%#x after crash, want 0xBBBB", got)
	}
	e2.Close()
}

// abortRestores: an aborted transaction leaves no trace in normal execution.
func abortRestores(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)

	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 2)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := w.Core.LoadUint64(a); got != 1 {
		t.Fatalf("a=%d after abort, want 1", got)
	}
	// The engine must still be usable.
	tx = e.Begin()
	tx.StoreUint64(a, 3)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := w.Core.LoadUint64(a); got != 3 {
		t.Fatalf("a=%d after post-abort commit, want 3", got)
	}
}

// uncommittedRevoked: crash strikes mid-transaction; recovery restores the
// last committed values regardless of which dirty lines happened to evict.
func uncommittedRevoked(t *testing.T, f Factory) {
	for seed := uint64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := NewWorld(32 << 20)
			env := w.Env(false)
			e := mustEngine(t, f, env)
			a, _ := w.DataHeap.Alloc(64)
			b, _ := w.DataHeap.Alloc(64)

			tx := e.Begin()
			tx.StoreUint64(a, 10)
			tx.StoreUint64(b, 20)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx = e.Begin()
			tx.StoreUint64(a, 11)
			tx.StoreUint64(b, 21)
			// no commit
			e.Close()
			w.Dev.Crash(sim.NewRand(seed))
			e2 := mustEngine(t, f, w.SameEnv(env))
			if err := e2.Recover(); err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			c := w.Dev.NewCore()
			if got := c.LoadUint64(a); got != 10 {
				t.Fatalf("a=%d after recovery, want 10", got)
			}
			if got := c.LoadUint64(b); got != 20 {
				t.Fatalf("b=%d after recovery, want 20", got)
			}
		})
	}
}

// sequentialCommits: a chain of transactions over the same locations ends in
// the final committed state after a crash.
func sequentialCommits(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	const n = 4
	addrs := make([]pmem.Addr, n)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	for round := uint64(1); round <= 25; round++ {
		tx := e.Begin()
		for i, a := range addrs {
			tx.StoreUint64(a, round*100+uint64(i))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	w.Dev.Crash(sim.NewRand(7))
	e2 := mustEngine(t, f, w.SameEnv(env))
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	for i, a := range addrs {
		want := uint64(25*100 + i)
		if got := c.LoadUint64(a); got != want {
			t.Fatalf("addrs[%d]=%d want %d", i, got, want)
		}
	}
}

// randomCrashPoints: the heart of the battery. Transactions write a PRNG
// stream of values; the crash lands after a random transaction, possibly
// with one transaction left open; recovery must reproduce the committed
// prefix exactly.
func randomCrashPoints(t *testing.T, f Factory) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRand(seed)
			w := NewWorld(32 << 20)
			env := w.Env(false)
			e := mustEngine(t, f, env)
			const nAddrs = 16
			addrs := make([]pmem.Addr, nAddrs)
			for i := range addrs {
				addrs[i], _ = w.DataHeap.Alloc(64)
			}
			oracle := map[pmem.Addr]uint64{}
			nTx := rng.Intn(30) + 1
			crashMidTx := rng.Float64() < 0.5
			for i := 0; i < nTx; i++ {
				tx := e.Begin()
				writes := map[pmem.Addr]uint64{}
				for j := 0; j < rng.Intn(6)+1; j++ {
					a := addrs[rng.Intn(nAddrs)]
					v := rng.Uint64()
					tx.StoreUint64(a, v)
					writes[a] = v
				}
				if i == nTx-1 && crashMidTx {
					break // leave the last transaction open
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				for a, v := range writes {
					oracle[a] = v
				}
			}
			e.Close()
			w.Dev.Crash(rng.Split())
			e2 := mustEngine(t, f, w.SameEnv(env))
			if err := e2.Recover(); err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			c := w.Dev.NewCore()
			for a, want := range oracle {
				if got := c.LoadUint64(a); got != want {
					t.Fatalf("addr %d = %#x after recovery, want %#x (nTx=%d midTx=%v)",
						a, got, want, nTx, crashMidTx)
				}
			}
		})
	}
}

// repeatedUpdate: multiple updates to one location within a transaction
// commit to the last value and recover to it.
func repeatedUpdate(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	for v := uint64(1); v <= 10; v++ {
		tx.StoreUint64(a, v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	w.Dev.Crash(sim.NewRand(3))
	e2 := mustEngine(t, f, w.SameEnv(env))
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 10 {
		t.Fatalf("a=%d want 10", got)
	}
}

// recoverIdempotent: running recovery twice is harmless.
func recoverIdempotent(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 42)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 43) // left open
	e.Close()
	w.Dev.Crash(sim.NewRand(9))
	e2 := mustEngine(t, f, w.SameEnv(env))
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 42 {
		t.Fatalf("a=%d want 42", got)
	}
}

// The extended battery: additional behaviours every engine must satisfy.

// emptyCommit: a transaction with no writes commits trivially and durably
// changes nothing.
func emptyCommit(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 5)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatalf("empty commit: %v", err)
	}
	tx = e.Begin()
	_ = tx.LoadUint64(a) // read-only transaction
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	if got := w.Core.LoadUint64(a); got != 5 {
		t.Fatalf("a=%d want 5", got)
	}
}

// abortCommitInterleave: randomized mixes of committed and aborted
// transactions; the state must track exactly the committed subset.
func abortCommitInterleave(t *testing.T, f Factory) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := sim.NewRand(seed)
		w := NewWorld(32 << 20)
		env := w.Env(false)
		e := mustEngine(t, f, env)
		const nAddrs = 8
		addrs := make([]pmem.Addr, nAddrs)
		for i := range addrs {
			addrs[i], _ = w.DataHeap.Alloc(64)
		}
		oracle := map[pmem.Addr]uint64{}
		for i := 0; i < 40; i++ {
			tx := e.Begin()
			writes := map[pmem.Addr]uint64{}
			for j := 0; j < rng.Intn(4)+1; j++ {
				a := addrs[rng.Intn(nAddrs)]
				v := rng.Uint64()
				tx.StoreUint64(a, v)
				writes[a] = v
			}
			if rng.Float64() < 0.4 {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for a, v := range writes {
				oracle[a] = v
			}
		}
		// In normal execution (no crash) the architectural state must match.
		for a, want := range oracle {
			if got := w.Core.LoadUint64(a); got != want {
				t.Fatalf("seed %d: addr %d = %#x want %#x", seed, a, got, want)
			}
		}
		// And it must survive a crash.
		e.Close()
		w.Dev.Crash(rng.Split())
		e2 := mustEngine(t, f, w.SameEnv(env))
		if err := e2.Recover(); err != nil {
			t.Fatal(err)
		}
		e2.Close()
		c := w.Dev.NewCore()
		for a, want := range oracle {
			if got := c.LoadUint64(a); got != want {
				t.Fatalf("seed %d post-crash: addr %d = %#x want %#x", seed, a, got, want)
			}
		}
	}
}

// statsSanity: engines account their work.
func statsSanity(t *testing.T, f Factory) {
	w := NewWorld(32 << 20)
	env := w.Env(false)
	e := mustEngine(t, f, env)
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The engine may run on env.Core or on its own cores; sum over all.
	// At minimum one fence and one committed transaction must show up on
	// the env core OR the engine is hardware (own core) — detect via the
	// env core first.
	total := env.Core.Stats.Snapshot()
	if total.TxCommitted == 0 {
		// Hardware engines count on their own CPU core; the conformance
		// contract only requires that commits are not free.
		return
	}
	if total.Fences == 0 {
		t.Fatal("commit produced no persist barrier at all")
	}
}
