// Package txn defines the engine-agnostic persistent memory transaction API
// shared by every crash-consistency scheme in this repository: the PMDK-style
// undo baseline, Kamino-Tx, SPHT, and the paper's contribution, software
// SpecPMT (package spec).
//
// The API mirrors the classical persistent transaction interface the paper
// preserves (Figure 3): tx_begin / transactional loads and stores /
// tx_commit, plus post-crash Recover. Logging is implicit in Store — the
// paper notes splog calls are inserted by programmer or compiler after each
// durable update; here the engine's Store plays that role.
package txn

import (
	"fmt"
	"sort"
	"sync/atomic"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
)

// Tx is one open transaction. Implementations are not safe for concurrent
// use; one goroutine drives one Tx.
type Tx interface {
	// Load reads len(buf) bytes at addr, observing the transaction's own
	// uncommitted writes (needed by redo-style engines).
	Load(addr pmem.Addr, buf []byte)
	// LoadUint64 reads a little-endian uint64 at addr.
	LoadUint64(addr pmem.Addr) uint64
	// Store transactionally writes data at addr.
	Store(addr pmem.Addr, data []byte)
	// StoreUint64 transactionally writes a little-endian uint64 at addr.
	StoreUint64(addr pmem.Addr, v uint64)
	// Compute models non-memory work inside the transaction.
	Compute(ns int64)
	// Commit makes the transaction's writes crash-atomic and durable.
	Commit() error
	// Abort rolls the transaction back during normal execution.
	Abort() error
}

// DeferredCommitTx is implemented by transactions that can commit
// speculatively: CommitNoFence persists the commit record's flushes into
// the core's write pending queue but defers the trailing ordering fence to
// a later pmem.Core.Fence on the same core. Until that fence retires, a
// crash may lose the transaction — but only together with every later
// transaction on the same core (recovery yields a prefix of the commit
// order), which makes the deferral safe as long as no externally visible
// acknowledgement is released before the fence. This is the server-level
// analogue of SpecPMT's speculative persistence: execution runs past an
// outstanding persist, and publication waits for the fence.
type DeferredCommitTx interface {
	Tx
	// CommitNoFence commits without the trailing ordering fence. On error
	// the transaction is rolled back exactly as a failed Commit would be.
	CommitNoFence() error
}

// Engine is a crash-consistency scheme bound to one device region.
type Engine interface {
	// Name identifies the engine in reports ("PMDK", "SpecSPMT", ...).
	Name() string
	// Begin opens a transaction on the engine's core.
	Begin() Tx
	// Recover restores a consistent persistent state after a crash. It must
	// be called on a freshly constructed engine attached to the same root.
	Recover() error
	// Close stops background work (reclamation, replay) and releases the
	// engine. The engine must not be used afterwards.
	Close() error
}

// Env bundles the resources an engine operates on.
type Env struct {
	Dev  *pmem.Device
	Core *pmem.Core
	// Heap allocates application data.
	Heap *pmalloc.Heap
	// LogHeap allocates log blocks and other engine-private areas.
	LogHeap *pmalloc.Heap
	// Root is a line-aligned, engine-private persistent area (at least
	// RootSize bytes) where the engine keeps whatever it needs to find its
	// state again after a crash.
	Root pmem.Addr
	// TS supplies commit timestamps (stands in for rdtscp, §4.1).
	TS *Timestamp
}

// RootSize is the number of bytes engines may use at Env.Root.
const RootSize = 256

// Timestamp is a monotonic commit-timestamp source shared by all cores of a
// device — the simulation's stand-in for the rdtscp instruction the paper
// uses to order commits across threads.
type Timestamp struct {
	c atomic.Uint64
}

// Next returns the next timestamp; values are unique and increasing.
func (t *Timestamp) Next() uint64 { return t.c.Add(1) }

// Last returns the most recently issued timestamp.
func (t *Timestamp) Last() uint64 { return t.c.Load() }

// Checksum64 is FNV-1a, used as the commit marker of log records: a record
// whose stored checksum matches its contents is committed (§4.1: "the
// checksum also serves as the transaction's commit status"), which saves
// the dedicated commit flag and its extra fence.
func Checksum64(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	// Guard against the degenerate all-zeroes record checksumming to a
	// well-known constant that freshly-zeroed memory could also hold.
	if h == 0 {
		h = offset
	}
	return h
}

// WriteSet tracks the distinct byte ranges a transaction updated, in first-
// touch order, and the distinct cache lines they span. Engines use it to
// flush updated data at commit and to detect repeated updates.
type WriteSet struct {
	ranges []WriteRange
	lines  map[uint64]struct{}
	lineSl []uint64
	byAddr map[pmem.Addr]int // addr -> index of last range starting there
}

// WriteRange is one recorded update.
type WriteRange struct {
	Addr pmem.Addr
	Size int
}

// NewWriteSet returns an empty write set.
func NewWriteSet() *WriteSet {
	return &WriteSet{lines: make(map[uint64]struct{}), byAddr: make(map[pmem.Addr]int)}
}

// Add records an update of n bytes at addr.
func (w *WriteSet) Add(addr pmem.Addr, n int) {
	w.ranges = append(w.ranges, WriteRange{addr, n})
	w.byAddr[addr] = len(w.ranges) - 1
	if n <= 0 {
		return
	}
	first, last := pmem.LineOf(addr), pmem.LineOf(addr+pmem.Addr(n-1))
	for l := first; l <= last; l++ {
		if _, ok := w.lines[l]; !ok {
			w.lines[l] = struct{}{}
			w.lineSl = append(w.lineSl, l)
		}
	}
}

// Seen reports whether an update starting exactly at addr was recorded, and
// the index of the most recent one.
func (w *WriteSet) Seen(addr pmem.Addr) (int, bool) {
	i, ok := w.byAddr[addr]
	return i, ok
}

// Ranges returns the recorded updates in first-touch order.
func (w *WriteSet) Ranges() []WriteRange { return w.ranges }

// Lines returns the distinct touched cache lines sorted ascending, so that
// commit-time data flushes drain in the most favourable (most sequential)
// order the hardware could achieve.
func (w *WriteSet) Lines() []uint64 {
	sort.Slice(w.lineSl, func(i, j int) bool { return w.lineSl[i] < w.lineSl[j] })
	return w.lineSl
}

// Len returns the number of recorded updates.
func (w *WriteSet) Len() int { return len(w.ranges) }

// Bytes returns the total updated byte count (double-counting overlaps, as
// logging does).
func (w *WriteSet) Bytes() int {
	n := 0
	for _, r := range w.ranges {
		n += r.Size
	}
	return n
}

// Reset empties the write set, retaining capacity.
func (w *WriteSet) Reset() {
	w.ranges = w.ranges[:0]
	w.lineSl = w.lineSl[:0]
	for k := range w.lines {
		delete(w.lines, k)
	}
	for k := range w.byAddr {
		delete(w.byAddr, k)
	}
}

// Factory constructs an engine over an Env.
type Factory func(Env) (Engine, error)

var registry = map[string]Factory{}

// Register adds a named engine factory. Engine packages call it from init.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("txn: duplicate engine %q", name))
	}
	registry[name] = f
}

// New constructs the named engine.
func New(name string, env Env) (Engine, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("txn: unknown engine %q", name)
	}
	return f(env)
}

// Engines lists the registered engine names, sorted.
func Engines() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
