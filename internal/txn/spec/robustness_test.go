package spec

import (
	"strings"
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
	"specpmt/internal/txn/txntest"
)

// Recovery code parses bytes that a crash may have torn arbitrarily; no
// input may panic it.

func TestDecodeEntriesNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < recHeader+recFooter {
			return true
		}
		defer func() {
			if recover() != nil {
				t.Errorf("decodeEntries panicked on %d bytes", len(raw))
			}
		}()
		decodeEntries(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScanGarbageBlockNeverPanics(t *testing.T) {
	f := func(seedBytes []byte) bool {
		w := txntest.NewWorld(16 << 20)
		env := w.Env(false)
		e, err := New(env, Options{BlockSize: 1024, DisableReclaim: true})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		// Scribble garbage straight into the head block's payload.
		b := e.ch.blocks[0]
		n := len(seedBytes)
		if n > 1024-blockHeader {
			n = 1024 - blockHeader
		}
		if n > 0 {
			env.Core.Store(b+blockHeader, seedBytes[:n])
		}
		defer func() {
			if recover() != nil {
				t.Error("scanAll panicked on scribbled block")
			}
		}()
		e.ch.scanAll(env.Core, func(loc recLoc, rec []byte) bool { return true })
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverOnScribbledLogRestoresPrefix(t *testing.T) {
	// Whatever garbage lands after the last committed record, recovery must
	// still restore every committed value and leave the engine usable.
	for seed := uint64(0); seed < 10; seed++ {
		w := txntest.NewWorld(32 << 20)
		env := w.Env(false)
		e, _ := New(env, Options{DisableReclaim: true})
		a, _ := w.DataHeap.Alloc(64)
		for v := uint64(1); v <= 3; v++ {
			tx := e.Begin()
			tx.StoreUint64(a, v)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Scribble beyond the committed tail.
		tailBlock := e.ch.blocks[len(e.ch.blocks)-1]
		used := e.ch.used
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = byte(seed*31 + uint64(i)*7)
		}
		if used+len(garbage) < e.ch.payload() {
			env.Core.Store(tailBlock+pmem.Addr(blockHeader+used), garbage)
			env.Core.PersistBarrier(tailBlock+pmem.Addr(blockHeader+used), len(garbage), pmem.KindLog)
		}
		e.Close()
		w.Dev.CrashClean()
		e2, _ := New(w.SameEnv(env), Options{})
		if err := e2.Recover(); err != nil {
			t.Fatal(err)
		}
		if got := w.Dev.NewCore().LoadUint64(a); got != 3 {
			t.Fatalf("seed %d: a=%d want 3", seed, got)
		}
		// Engine stays usable after recovering over garbage.
		tx := e2.Begin()
		tx.StoreUint64(a, 4)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		e2.Close()
	}
}

func TestDumpLogSmoke(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	for v := uint64(1); v <= 3; v++ {
		tx := e.Begin()
		tx.StoreUint64(a, v)
		tx.Commit()
	}
	var sb strings.Builder
	e.DumpLog(&sb)
	out := sb.String()
	for _, want := range []string{"speculative log", "block 0", "fresh", "stale", "3 committed record(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DumpLog missing %q:\n%s", want, out)
		}
	}
	if e.IndexSize() != 1 || e.Blocks() != 1 {
		t.Fatalf("IndexSize=%d Blocks=%d", e.IndexSize(), e.Blocks())
	}
}

func TestChecksumSaltDiffersAcrossOffsets(t *testing.T) {
	w := txntest.NewWorld(16 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	defer e.Close()
	c := e.ch
	if c.salt(recLoc{c.blocks[0], 0}) == c.salt(recLoc{c.blocks[0], 64}) {
		t.Fatal("salt must vary with record offset")
	}
}
