package spec

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func factory(env txn.Env) (txn.Engine, error) { return New(env, Options{}) }

func factoryDP(env txn.Env) (txn.Engine, error) {
	return New(env, Options{DataPersist: true})
}

func TestConformanceSpecSPMT(t *testing.T) {
	txntest.Run(t, factory)
}

func TestConformanceSpecSPMTDP(t *testing.T) {
	txntest.Run(t, factoryDP)
}

func TestConformanceWithAggressiveReclaim(t *testing.T) {
	// A tiny block size and threshold force block chaining and reclamation
	// inside the ordinary conformance battery.
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) {
		return New(env, Options{BlockSize: 512, ReclaimThreshold: 256})
	})
}

func TestSingleFencePerCommit(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, err := New(env, Options{DisableReclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	addrs := make([]pmem.Addr, 20)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	before := env.Core.Stats.Fences
	tx := e.Begin()
	for _, a := range addrs {
		tx.StoreUint64(a, 7)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.Stats.Fences - before; got != 1 {
		t.Fatalf("fences per commit = %d, want exactly 1 (Figure 2 right)", got)
	}
}

func TestNoDataFlushWithoutDP(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	before := env.Core.Stats.PMDataBytes
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.Stats.PMDataBytes - before; got != 0 {
		t.Fatalf("SpecSPMT flushed %d data bytes; data persistence should be elided", got)
	}
}

func TestDPFlushesData(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DataPersist: true, DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if env.Core.Stats.PMDataBytes == 0 {
		t.Fatal("SpecSPMT-DP must flush data at commit")
	}
	if got := env.Core.Stats.Fences; got > 5 { // init barriers + 1 commit fence
		t.Fatalf("DP should still use a single commit fence; total=%d", got)
	}
}

func TestLogWritesAreSequential(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	defer e.Close()
	addrs := make([]pmem.Addr, 64)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(4096) // scattered data addresses
	}
	before := env.Core.Stats.Snapshot()
	for r := 0; r < 8; r++ {
		tx := e.Begin()
		for _, a := range addrs {
			tx.StoreUint64(a, uint64(r))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	seq := env.Core.Stats.SeqLines - before.SeqLines
	rnd := env.Core.Stats.RandLines - before.RandLines
	if seq < rnd {
		t.Fatalf("log appends should drain mostly sequentially: seq=%d rand=%d", seq, rnd)
	}
}

func TestReclamationBoundsLiveLog(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, err := New(env, Options{BlockSize: 4096, ReclaimThreshold: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)
	for i := uint64(0); i < 3000; i++ {
		tx := e.Begin()
		tx.StoreUint64(a, i)
		tx.StoreUint64(b, i*2)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if env.Core.Stats.ReclaimCycles == 0 {
		t.Fatal("reclamation never triggered")
	}
	// Two hot data words: the live log must stay near the threshold, far
	// below the ~160KB that 3000 unreclaimed records would occupy.
	if e.LiveLogBytes() > 32<<10 {
		t.Fatalf("live log grew to %d bytes despite reclamation", e.LiveLogBytes())
	}
	// Correctness after heavy reclamation.
	e.Close()
	w.Dev.Crash(sim.NewRand(5))
	e2, _ := New(w.SameEnv(env), Options{BlockSize: 4096})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	if got := c.LoadUint64(a); got != 2999 {
		t.Fatalf("a=%d want 2999", got)
	}
	if got := c.LoadUint64(b); got != 5998 {
		t.Fatalf("b=%d want 5998", got)
	}
}

func TestExplicitReclaimNow(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 1024, DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	for i := uint64(0); i < 200; i++ {
		tx := e.Begin()
		tx.StoreUint64(a, i)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := e.LiveLogBytes()
	if err := e.ReclaimNow(); err != nil {
		t.Fatal(err)
	}
	if e.LiveLogBytes() >= liveBefore {
		t.Fatalf("explicit reclaim did not shrink log: %d -> %d", liveBefore, e.LiveLogBytes())
	}
	// Value still recoverable from the compacted log.
	w.Dev.CrashClean()
	e2, _ := New(w.SameEnv(env), Options{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 199 {
		t.Fatalf("a=%d want 199", got)
	}
}

func TestReclaimTwoFences(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 1024, DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	for i := uint64(0); i < 100; i++ {
		tx := e.Begin()
		tx.StoreUint64(a, i)
		tx.Commit()
	}
	before := e.bg.Stats.Fences
	if err := e.ReclaimNow(); err != nil {
		t.Fatal(err)
	}
	if got := e.bg.Stats.Fences - before; got != 2 {
		t.Fatalf("reclamation cycle used %d fences, want 2 (§4.2)", got)
	}
}

func TestTxTooLarge(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 512})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	prev := e.env.Core.LoadUint64(a)
	tx := e.Begin()
	tx.Store(a, make([]byte, 1024))
	if err := tx.Commit(); err != ErrTxTooLarge {
		t.Fatalf("err=%v want ErrTxTooLarge", err)
	}
	if got := e.env.Core.LoadUint64(a); got != prev {
		t.Fatal("failed commit must restore in-place data")
	}
}

func TestRecoverAfterTornRecord(t *testing.T) {
	// Corrupt the newest record's bytes: recovery must stop there and keep
	// everything before it.
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	a, _ := w.DataHeap.Alloc(64)
	for i := uint64(1); i <= 5; i++ {
		tx := e.Begin()
		tx.StoreUint64(a, i)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Locate the last record and corrupt one persisted byte of its value.
	ie := e.index[a]
	corrupt := ie.rec.block + pmem.Addr(blockHeader+ie.rec.off+ie.valOff)
	e.Close()
	w.Dev.CrashClean()
	c := w.Dev.NewCore()
	var bad [1]byte
	c.Load(corrupt, bad[:])
	bad[0] ^= 0xFF
	c.Store(corrupt, bad[:])
	c.PersistBarrier(corrupt, 1, pmem.KindData)
	e2, _ := New(w.SameEnv(env), Options{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 4 {
		t.Fatalf("a=%d after torn-record recovery, want previous commit 4", got)
	}
}

func TestRecycledBlockCannotAlias(t *testing.T) {
	// Fill a chain, reclaim (freeing blocks), keep going: freed blocks are
	// reused; their residual records must never be replayed. This is the
	// incarnation-salt property.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 512, ReclaimThreshold: 1024})
	addrs := make([]pmem.Addr, 8)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	for round := uint64(0); round < 400; round++ {
		tx := e.Begin()
		for j, a := range addrs {
			tx.StoreUint64(a, round*10+uint64(j))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	w.Dev.Crash(sim.NewRand(2))
	e2, _ := New(w.SameEnv(env), Options{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	for j, a := range addrs {
		want := uint64(399*10 + j)
		if got := c.LoadUint64(a); got != want {
			t.Fatalf("addrs[%d]=%d want %d", j, got, want)
		}
	}
}

func TestLiveLogApproxOneRecordPerDatum(t *testing.T) {
	// After reclamation the live log should be close to one entry per hot
	// datum — the basis of the paper's ~3x memory-overhead characterisation.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 4096, DisableReclaim: true})
	defer e.Close()
	const n = 32
	addrs := make([]pmem.Addr, n)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	for round := 0; round < 50; round++ {
		tx := e.Begin()
		for _, a := range addrs {
			tx.StoreUint64(a, uint64(round))
		}
		tx.Commit()
	}
	if err := e.ReclaimNow(); err != nil {
		t.Fatal(err)
	}
	perDatum := (entHeader + 8)
	ideal := int64(n*perDatum + recHeader + recFooter)
	// The tail block is never compacted, so allow a couple of records slack.
	if e.LiveLogBytes() > 3*ideal+int64(n*perDatum) {
		t.Fatalf("live log %dB; ideal ~%dB", e.LiveLogBytes(), ideal)
	}
}
