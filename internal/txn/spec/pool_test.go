package spec

import (
	"sync"
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func poolEnvs(w *txntest.World, n int) []txn.Env {
	envs := make([]txn.Env, n)
	for i := range envs {
		envs[i] = w.Env(true)
	}
	return envs
}

func TestPoolDisjointThreads(t *testing.T) {
	const threads, perThread = 4, 50
	w := txntest.NewWorld(64 << 20)
	envs := poolEnvs(w, threads)
	p, err := NewPool(envs, Options{BlockSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([][]pmem.Addr, threads)
	for i := range addrs {
		addrs[i] = make([]pmem.Addr, 4)
		for j := range addrs[i] {
			addrs[i][j], _ = w.DataHeap.Alloc(64)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := p.Engine(i)
			for r := uint64(1); r <= perThread; r++ {
				tx := e.Begin()
				for j, a := range addrs[i] {
					tx.StoreUint64(a, uint64(i*1000)+r*10+uint64(j))
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	w.Dev.Crash(sim.NewRand(3))
	// Reattach each thread engine and run merged recovery.
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	p2, err := NewPool(envs2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	c := w.Dev.NewCore()
	for i := range addrs {
		for j, a := range addrs[i] {
			want := uint64(i*1000) + perThread*10 + uint64(j)
			if got := c.LoadUint64(a); got != want {
				t.Fatalf("thread %d addr %d: got %d want %d", i, j, got, want)
			}
		}
	}
}

func TestPoolSharedAddressTimestampOrder(t *testing.T) {
	// Two threads update the same location under a lock (caller-provided
	// isolation, §4.3.3). After a crash, merged recovery must restore the
	// globally last committed value, which requires timestamp-ordered
	// replay across the two private logs.
	const threads, rounds = 2, 100
	w := txntest.NewWorld(64 << 20)
	envs := poolEnvs(w, threads)
	p, err := NewPool(envs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := w.DataHeap.Alloc(64)
	var mu sync.Mutex
	last := uint64(0)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := p.Engine(i)
			for r := 0; r < rounds; r++ {
				mu.Lock()
				v := uint64(i+1)*1_000_000 + uint64(r)
				tx := e.Begin()
				tx.StoreUint64(shared, v)
				if err := tx.Commit(); err != nil {
					t.Error(err)
					mu.Unlock()
					return
				}
				last = v
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	p.Close()
	w.Dev.CrashClean()
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	p2, err := NewPool(envs2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := w.Dev.NewCore().LoadUint64(shared); got != last {
		t.Fatalf("shared=%d want last committed %d", got, last)
	}
}

func TestPoolUncommittedTailRevoked(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	envs := poolEnvs(w, 2)
	p, err := NewPool(envs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.DataHeap.Alloc(64)
	e0 := p.Engine(0)
	tx := e0.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Thread 1 starts but never commits an update of a.
	e1 := p.Engine(1)
	tx = e1.Begin()
	tx.StoreUint64(a, 2)
	p.Close()
	w.Dev.Crash(sim.NewRand(17))
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	p2, _ := NewPool(envs2, Options{})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 1 {
		t.Fatalf("a=%d want 1 (thread 1's open tx revoked)", got)
	}
}

func TestPoolUsableAfterRecovery(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	envs := poolEnvs(w, 2)
	p, _ := NewPool(envs, Options{})
	a, _ := w.DataHeap.Alloc(64)
	tx := p.Engine(0).Begin()
	tx.StoreUint64(a, 5)
	tx.Commit()
	p.Close()
	w.Dev.CrashClean()
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	p2, _ := NewPool(envs2, Options{})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Post-recovery transactions must work and survive another crash.
	tx = p2.Engine(1).Begin()
	tx.StoreUint64(a, 6)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	w.Dev.CrashClean()
	var envs3 []txn.Env
	for _, env := range envs {
		envs3 = append(envs3, w.SameEnv(env))
	}
	p3, _ := NewPool(envs3, Options{})
	if err := p3.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 6 {
		t.Fatalf("a=%d want 6", got)
	}
}

func TestPoolConcurrentReclamation(t *testing.T) {
	// Reclamation is thread-local in the software design (each thread owns
	// its chain and index); threads reclaiming aggressively while others
	// commit must neither race nor lose committed data.
	const threads, rounds = 4, 150
	w := txntest.NewWorld(256 << 20)
	envs := poolEnvs(w, threads)
	p, err := NewPool(envs, Options{BlockSize: 2048, ReclaimThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]pmem.Addr, threads)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := p.Engine(i)
			for r := uint64(1); r <= rounds; r++ {
				tx := e.Begin()
				tx.StoreUint64(addrs[i], r)
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	reclaims := uint64(0)
	for i := 0; i < threads; i++ {
		reclaims += p.Engine(i).env.Core.Stats.ReclaimCycles
	}
	if reclaims == 0 {
		t.Fatal("no reclamation cycles ran despite the tiny threshold")
	}
	p.Close()
	w.Dev.Crash(sim.NewRand(21))
	var envs2 []txn.Env
	for _, env := range envs {
		envs2 = append(envs2, w.SameEnv(env))
	}
	p2, _ := NewPool(envs2, Options{BlockSize: 2048})
	if err := p2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	c := w.Dev.NewCore()
	for i := range addrs {
		if got := c.LoadUint64(addrs[i]); got != rounds {
			t.Fatalf("thread %d: got %d want %d", i, got, rounds)
		}
	}
}
