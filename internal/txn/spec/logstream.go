package spec

import (
	"encoding/binary"
	"fmt"

	"specpmt/internal/pmalloc"
	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// The speculative log area is a chain of fixed-size log blocks (§4.1,
// Figure 6): each thread-private area is a sequence of blocks connected by
// forward block pointers, holding log records in chronological order. New
// records are only appended; reclamation splices compacted blocks in at the
// chain head and frees the stale prefix.
//
// Block layout:
//
//	[ next block address : 8 bytes ]
//	[ incarnation        : 8 bytes ]
//	[ payload: records ...         ]
//
// Records are contiguous within one block; when a record does not fit in the
// remaining payload a pad marker closes the block and the record starts in a
// freshly linked block. Record layout:
//
//	[ size u32 | nentries u32 | timestamp u64 | entries... | checksum u64 ]
//	entry: [ addr u64 | size u32 | value bytes ]
//
// The checksum doubles as the commit marker (§4.1): a record is committed
// iff its stored checksum matches its contents. It is salted with the
// containing block's incarnation and the record's offset, so residual bytes
// of recycled blocks can never masquerade as live records.
const (
	blockHeader = 16
	recHeader   = 4 + 4 + 8 // size, nentries, timestamp
	recFooter   = 8         // salted checksum
	entHeader   = 8 + 4     // addr, size
	padMarker   = 0xFFFFFFFF
)

// errRecordTooLarge reports a transaction whose record exceeds one block.
var errRecordTooLarge = fmt.Errorf("spec: transaction record exceeds log block payload")

// recLoc identifies a record (or an entry inside one) by block address and
// byte offset within the block payload — stable across chain splices.
type recLoc struct {
	block pmem.Addr
	off   int
}

// chain is a thread-private log block chain.
type chain struct {
	core  *pmem.Core
	heap  *pmalloc.Heap
	ts    *txn.Timestamp
	bsize int

	blocks []pmem.Addr
	used   int // payload bytes used in the final block
	incarn map[pmem.Addr]uint64
	// unflushed tracks device ranges written since the last flushPending —
	// record bytes, pad markers, block headers, and next pointers — so the
	// single commit fence persists everything a record's validity needs.
	unflushed []span
}

type span struct {
	addr pmem.Addr
	n    int
}

func (c *chain) payload() int { return c.bsize - blockHeader }

// newChain allocates the first block of a fresh chain.
func newChain(core *pmem.Core, heap *pmalloc.Heap, ts *txn.Timestamp, bsize int) (*chain, error) {
	c := &chain{core: core, heap: heap, ts: ts, bsize: bsize, incarn: map[pmem.Addr]uint64{}}
	if _, err := c.appendBlock(); err != nil {
		return nil, err
	}
	return c, nil
}

// openChain rebuilds the volatile state of an existing chain by walking the
// persistent next pointers from head. The used-offset of the final block is
// unknown until a scan; callers that intend to append must scan first (the
// engine's Recover does).
func openChain(core *pmem.Core, heap *pmalloc.Heap, ts *txn.Timestamp, bsize int, head pmem.Addr) *chain {
	c := &chain{core: core, heap: heap, ts: ts, bsize: bsize, incarn: map[pmem.Addr]uint64{}}
	for b := head; b != 0; {
		c.blocks = append(c.blocks, b)
		c.incarn[b] = core.LoadUint64(b + 8)
		b = pmem.Addr(core.LoadUint64(b))
	}
	return c
}

// head returns the first block of the chain.
func (c *chain) head() pmem.Addr { return c.blocks[0] }

// appendBlock allocates, initialises, and links a new tail block.
func (c *chain) appendBlock() (pmem.Addr, error) {
	b, err := c.heap.Alloc(c.bsize)
	if err != nil {
		return 0, fmt.Errorf("spec: allocating log block: %w", err)
	}
	inc := c.ts.Next()
	c.core.StoreUint64(b, 0)
	c.core.StoreUint64(b+8, inc)
	c.incarn[b] = inc
	c.track(span{b, blockHeader})
	if n := len(c.blocks); n > 0 {
		prev := c.blocks[n-1]
		c.core.StoreUint64(prev, uint64(b))
		c.track(span{prev, 8})
	}
	c.blocks = append(c.blocks, b)
	c.used = 0
	return b, nil
}

func (c *chain) track(sp span) { c.unflushed = append(c.unflushed, sp) }

// salt computes the checksum salt for a record at loc.
func (c *chain) salt(loc recLoc) uint64 {
	return c.incarn[loc.block] ^ (uint64(loc.off) * 0x9e3779b97f4a7c15)
}

// appendRecord writes rec (a fully encoded record whose final 8 bytes will
// be overwritten with the salted checksum) at the tail and returns its
// location. The bytes are volatile until flushPending + fence.
func (c *chain) appendRecord(rec []byte) (recLoc, error) {
	if len(rec) > c.payload() {
		return recLoc{}, errRecordTooLarge
	}
	if c.used+len(rec) > c.payload() {
		if c.payload()-c.used >= 4 {
			var pad [4]byte
			binary.LittleEndian.PutUint32(pad[:], padMarker)
			at := c.blocks[len(c.blocks)-1] + pmem.Addr(blockHeader+c.used)
			c.core.Store(at, pad[:])
			c.track(span{at, 4})
		}
		if _, err := c.appendBlock(); err != nil {
			return recLoc{}, err
		}
	}
	loc := recLoc{c.blocks[len(c.blocks)-1], c.used}
	sum := txn.Checksum64(rec[:len(rec)-recFooter]) ^ c.salt(loc)
	binary.LittleEndian.PutUint64(rec[len(rec)-recFooter:], sum)
	at := loc.block + pmem.Addr(blockHeader+loc.off)
	c.core.Store(at, rec)
	c.track(span{at, len(rec)})
	c.used += len(rec)
	return loc, nil
}

// sealTail closes the current tail block with a pad marker so that a scan
// continues into the next chain block instead of stopping at dead space.
// Used when a chain is spliced ahead of other blocks (compaction): unlike an
// active tail, a spliced block's free space must not read as "end of log".
func (c *chain) sealTail() {
	if c.payload()-c.used >= 4 {
		var pad [4]byte
		binary.LittleEndian.PutUint32(pad[:], padMarker)
		at := c.blocks[len(c.blocks)-1] + pmem.Addr(blockHeader+c.used)
		c.core.Store(at, pad[:])
		c.track(span{at, 4})
	}
}

// flushPending issues CLWB for everything written since the last call. The
// caller follows with the (single) commit fence.
func (c *chain) flushPending(kind pmem.Kind) {
	for _, sp := range c.unflushed {
		c.core.Flush(sp.addr, sp.n, kind)
	}
	c.unflushed = c.unflushed[:0]
}

// scanRecord decodes the record at loc using core (which may differ from the
// chain's owner, e.g. the reclaimer core). It returns the raw record bytes
// (header through checksum) and whether the record is committed.
func (c *chain) scanRecord(core *pmem.Core, loc recLoc) (rec []byte, committed bool) {
	limit := c.payload() - loc.off
	if limit < recHeader+recFooter {
		return nil, false
	}
	var hdr [recHeader]byte
	core.Load(loc.block+pmem.Addr(blockHeader+loc.off), hdr[:])
	size := int(binary.LittleEndian.Uint32(hdr[:]))
	if size == int(uint32(padMarker)) || size < recHeader+recFooter || size > limit {
		return nil, false
	}
	rec = make([]byte, size)
	core.Load(loc.block+pmem.Addr(blockHeader+loc.off), rec)
	want := binary.LittleEndian.Uint64(rec[size-recFooter:])
	got := txn.Checksum64(rec[:size-recFooter]) ^ c.salt(loc)
	return rec, got == want
}

// scanEntry is one decoded log entry.
type scanEntry struct {
	Addr pmem.Addr
	Val  []byte
	// ValOff is the offset of the value bytes within the record.
	ValOff int
}

// decodeEntries parses a committed record's entries. Returns nil if the
// entry structure is malformed (cannot happen for checksum-valid records
// written by this code, but recovery is defensive).
func decodeEntries(rec []byte) (ts uint64, ents []scanEntry) {
	if len(rec) < recHeader+recFooter {
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(rec[4:]))
	ts = binary.LittleEndian.Uint64(rec[8:])
	p := recHeader
	end := len(rec) - recFooter
	for i := 0; i < n; i++ {
		if p+entHeader > end {
			return ts, nil
		}
		a := pmem.Addr(binary.LittleEndian.Uint64(rec[p:]))
		sz := int(binary.LittleEndian.Uint32(rec[p+8:]))
		if sz < 0 || p+entHeader+sz > end {
			return ts, nil
		}
		ents = append(ents, scanEntry{Addr: a, Val: rec[p+entHeader : p+entHeader+sz], ValOff: p + entHeader})
		p += entHeader + sz
	}
	return ts, ents
}

// scanAll walks the chain from its head and calls fn for each committed
// record in chain order, stopping at the first uncommitted/torn record
// (§4.1: "the recovery stops once a corrupted log record is encountered
// because there should not be fresh records afterward"). It returns the
// location one past the final committed record, which is where appending may
// resume.
func (c *chain) scanAll(core *pmem.Core, fn func(loc recLoc, rec []byte) bool) (tailBlock int, tailOff int) {
	for bi, b := range c.blocks {
		off := 0
		for {
			limit := c.payload() - off
			if limit < recHeader+recFooter {
				break // block exhausted; continue with next
			}
			var szb [4]byte
			core.Load(b+pmem.Addr(blockHeader+off), szb[:])
			if binary.LittleEndian.Uint32(szb[:]) == padMarker {
				break // explicit pad: rest of block is dead space
			}
			rec, committed := c.scanRecord(core, recLoc{b, off})
			if !committed {
				return bi, off
			}
			if fn != nil && !fn(recLoc{b, off}, rec) {
				return bi, off
			}
			off += len(rec)
		}
		if bi == len(c.blocks)-1 {
			return bi, off
		}
	}
	return 0, 0
}

// resumeAt positions the append cursor. Blocks after tailBlock are discarded
// from the volatile view (they contain nothing committed) and freed.
func (c *chain) resumeAt(tailBlock, tailOff int) {
	for _, b := range c.blocks[tailBlock+1:] {
		delete(c.incarn, b)
		c.heap.Free(b, c.bsize)
	}
	c.blocks = c.blocks[:tailBlock+1]
	c.used = tailOff
	// The discarded blocks are unreachable after the next pointer of the
	// tail block is cleared; clear it so a later crash cannot resurrect
	// them.
	tb := c.blocks[tailBlock]
	c.core.StoreUint64(tb, 0)
	c.track(span{tb, 8})
}

// replacePrefix splices compacted blocks in place of the chain prefix
// [0, keepFrom). newBlocks must already hold their records; this routine
// links them ahead of blocks[keepFrom], persists the links (fence one), and
// returns the new head for the caller to persist in its root (fence two) —
// matching the two-fence reclamation cycle of §4.2.
//
// The displaced prefix blocks are returned, NOT freed: until the new head
// pointer is durable, a crash recovers through the old head, so the old
// blocks must stay intact. The caller frees them after its head-pointer
// persist barrier.
func (c *chain) replacePrefix(core *pmem.Core, newBlocks []pmem.Addr, newIncarn map[pmem.Addr]uint64, newUsed int, keepFrom int) (newHead pmem.Addr, displaced []pmem.Addr) {
	keep := c.blocks[keepFrom:]
	if len(newBlocks) > 0 {
		last := newBlocks[len(newBlocks)-1]
		if len(keep) > 0 {
			core.StoreUint64(last, uint64(keep[0]))
		} else {
			core.StoreUint64(last, 0)
		}
		core.Flush(last, 8, pmem.KindGC)
	}
	core.Fence() // fence one: new blocks and their links are durable
	displaced = append(displaced, c.blocks[:keepFrom]...)
	for _, b := range displaced {
		delete(c.incarn, b)
	}
	for b, inc := range newIncarn {
		c.incarn[b] = inc
	}
	c.blocks = append(append([]pmem.Addr{}, newBlocks...), keep...)
	if len(keep) == 0 {
		c.used = newUsed
	}
	return c.blocks[0], displaced
}

// Little-endian scratch helpers shared across the package.
func putU64(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
func putU32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
func getU64(b []byte, off int) uint64    { return binary.LittleEndian.Uint64(b[off:]) }
func getU32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off:]) }

// freeBlocks returns displaced blocks to the heap once they are unreachable.
func (c *chain) freeBlocks(blocks []pmem.Addr) {
	for _, b := range blocks {
		c.heap.Free(b, c.bsize)
	}
}
