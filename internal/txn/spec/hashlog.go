package spec

import (
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// HashEngine is the memory-space-efficient alternative the paper considers
// and rejects in §4: "set a limit of only one log record for each datum...
// a hash table indexed by each datum's address... Such a design conserves
// memory space but sacrifices spatial locality... with the hash table
// approach incurring 3.2× slowdown over the sequential log design."
//
// Each datum owns one fixed-size slot in a persistent hash table; every
// commit rewrites and flushes the touched slots — random persistent memory
// writes instead of the sequential appends of the chained-block design. The
// engine exists to reproduce that ablation; it trades the sequential
// design's total-order recovery story for bounded memory, and its recovery
// has a documented window (slots overwritten by a commit whose marker never
// persisted cannot roll back further than the previous slot value).
type HashEngine struct {
	env   txn.Env
	opt   HashOptions
	table pmem.Addr
	slots int
	// slotOf caches each address's slot index (volatile; rebuilt on scan).
	slotOf map[pmem.Addr]int
	used   map[int]pmem.Addr
	open   bool

	// cur is the reusable transaction object (one open tx per engine) and
	// slotBuf the slot staging buffer, recycled across commits.
	cur     hashTx
	slotBuf []byte
}

// HashOptions configures HashEngine.
type HashOptions struct {
	// Slots is the hash table capacity (default 65536).
	Slots int
}

const (
	hashMagic = 0x5350454348415348 // "SPECHASH"

	offHashTable = 8
	offHashSlots = 16
	offCommitTS  = 24

	slotSize   = 128
	slotHeader = 8 + 4 + 4 + 8 // addr, size, pad, ts
	slotValCap = slotSize - slotHeader - 8
)

// ErrValueTooLarge reports a value exceeding the fixed slot capacity.
var ErrValueTooLarge = errors.New("spec: value exceeds hash-log slot capacity")

// ErrTableFull reports hash table exhaustion.
var ErrTableFull = errors.New("spec: hash-log table full")

func init() {
	txn.Register("SpecSPMT-Hash", func(env txn.Env) (txn.Engine, error) {
		return NewHash(env, HashOptions{})
	})
}

// NewHash attaches to (or initialises) a hash-log engine at env.Root.
func NewHash(env txn.Env, opt HashOptions) (*HashEngine, error) {
	if opt.Slots == 0 {
		opt.Slots = 1 << 16
	}
	e := &HashEngine{env: env, opt: opt, slotOf: map[pmem.Addr]int{}, used: map[int]pmem.Addr{}}
	c := env.Core
	if c.LoadUint64(env.Root+offMagic) == hashMagic {
		e.table = pmem.Addr(c.LoadUint64(env.Root + offHashTable))
		e.slots = int(c.LoadUint64(env.Root + offHashSlots))
		return e, nil
	}
	tbl, err := env.LogHeap.Alloc(opt.Slots * slotSize)
	if err != nil {
		return nil, fmt.Errorf("spec: allocating hash-log table: %w", err)
	}
	e.table = tbl
	e.slots = opt.Slots
	c.StoreUint64(env.Root+offHashTable, uint64(tbl))
	c.StoreUint64(env.Root+offHashSlots, uint64(opt.Slots))
	c.StoreUint64(env.Root+offCommitTS, 0)
	c.StoreUint64(env.Root+offMagic, hashMagic)
	c.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *HashEngine) Name() string { return "SpecSPMT-Hash" }

// Close implements txn.Engine.
func (e *HashEngine) Close() error { return nil }

// Begin implements txn.Engine.
func (e *HashEngine) Begin() txn.Tx {
	if e.open {
		panic("spec: hash engine supports one open transaction per core")
	}
	e.open = true
	e.env.Core.Stats.TxBegun++
	e.env.Core.TraceTxBegin()
	t := &e.cur
	if t.e == nil {
		t.e = e
		t.byAddr = map[pmem.Addr]int{}
		t.old = map[pmem.Addr][]byte{}
	}
	t.reset()
	return t
}

type hashTx struct {
	e      *HashEngine
	ents   []pendingEnt
	byAddr map[pmem.Addr]int
	old    map[pmem.Addr][]byte
	done   bool
	err    error
	arena  txn.Arena
}

// reset readies the reusable tx, keeping maps, slices, and arena capacity.
func (t *hashTx) reset() {
	t.ents = t.ents[:0]
	clear(t.byAddr)
	clear(t.old)
	t.done = false
	t.err = nil
	t.arena.Reset()
}

// Load implements txn.Tx.
func (t *hashTx) Load(addr pmem.Addr, buf []byte) { t.e.env.Core.Load(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *hashTx) LoadUint64(addr pmem.Addr) uint64 { return t.e.env.Core.LoadUint64(addr) }

// Compute implements txn.Tx.
func (t *hashTx) Compute(ns int64) { t.e.env.Core.Compute(ns) }

// StoreUint64 implements txn.Tx.
func (t *hashTx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	putU64(b[:], 0, v)
	t.Store(addr, b[:])
}

// Store implements txn.Tx.
func (t *hashTx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("spec: use of finished transaction")
	}
	if len(data) > slotValCap {
		t.err = ErrValueTooLarge
		return
	}
	c := t.e.env.Core
	if _, seen := t.old[addr]; !seen {
		prev := t.arena.Grab(len(data))
		c.Load(addr, prev)
		t.old[addr] = prev
	}
	c.Store(addr, data)
	if i, ok := t.byAddr[addr]; ok && len(t.ents[i].val) == len(data) {
		copy(t.ents[i].val, data)
		return
	}
	t.byAddr[addr] = len(t.ents)
	val := t.arena.Grab(len(data))
	copy(val, data)
	t.ents = append(t.ents, pendingEnt{addr: addr, val: val})
}

func (e *HashEngine) slotIndex(addr pmem.Addr) (int, error) {
	if i, ok := e.slotOf[addr]; ok {
		return i, nil
	}
	h := int((uint64(addr) * 0x9e3779b97f4a7c15) % uint64(e.slots))
	for probe := 0; probe < e.slots; probe++ {
		i := (h + probe) % e.slots
		if owner, taken := e.used[i]; !taken || owner == addr {
			e.used[i] = addr
			e.slotOf[addr] = i
			return i, nil
		}
	}
	return 0, ErrTableFull
}

func (e *HashEngine) slotAddr(i int) pmem.Addr { return e.table + pmem.Addr(i*slotSize) }

// Commit writes one slot per updated datum — a scattered, random-address
// persistent write pattern — flushes them, fences, then persists the commit
// timestamp with a second barrier.
func (t *hashTx) Commit() error {
	if t.done {
		return errors.New("spec: transaction already finished")
	}
	t.done = true
	e := t.e
	e.open = false
	c := e.env.Core
	if t.err != nil {
		t.restoreOld()
		c.Stats.TxAborted++
		c.TraceTxAbort()
		return t.err
	}
	commitStart := c.Now()
	if len(t.ents) == 0 {
		c.Stats.TxCommitted++
		c.TraceTxCommit(commitStart, 0, 0)
		return nil
	}
	ts := e.env.TS.Next()
	logBytes := 0
	for _, en := range t.ents {
		i, err := e.slotIndex(en.addr)
		if err != nil {
			t.restoreOld()
			c.Stats.TxAborted++
			c.TraceTxAbort()
			return err
		}
		n := slotHeader + len(en.val) + 8
		if cap(e.slotBuf) < n {
			e.slotBuf = make([]byte, n)
		}
		slot := e.slotBuf[:n]
		putU64(slot, 0, uint64(en.addr))
		putU32(slot, 8, uint32(len(en.val)))
		putU64(slot, 16, ts)
		copy(slot[slotHeader:], en.val)
		putU64(slot, slotHeader+len(en.val), txn.Checksum64(slot[:slotHeader+len(en.val)]))
		at := e.slotAddr(i)
		c.Store(at, slot)
		c.Flush(at, len(slot), pmem.KindLog)
		c.Stats.LogRecords++
		c.TraceLogAppend(len(slot))
		logBytes += len(slot)
	}
	c.Fence()
	c.StoreUint64(e.env.Root+offCommitTS, ts)
	c.PersistBarrier(e.env.Root+offCommitTS, 8, pmem.KindLog)
	c.Stats.TxCommitted++
	c.TraceTxCommit(commitStart, len(t.ents), logBytes)
	return nil
}

// Abort implements txn.Tx.
func (t *hashTx) Abort() error {
	if t.done {
		return errors.New("spec: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.restoreOld()
	t.e.env.Core.Stats.TxAborted++
	t.e.env.Core.TraceTxAbort()
	return nil
}

func (t *hashTx) restoreOld() {
	c := t.e.env.Core
	for addr, val := range t.old {
		c.Store(addr, val)
	}
}

// Recover replays every slot whose checksum is valid and whose timestamp is
// within the durable commit horizon.
func (e *HashEngine) Recover() error {
	c := e.env.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	horizon := c.LoadUint64(e.env.Root + offCommitTS)
	e.slotOf = map[pmem.Addr]int{}
	e.used = map[int]pmem.Addr{}
	touched := txn.NewWriteSet()
	for i := 0; i < e.slots; i++ {
		at := e.slotAddr(i)
		var hdr [slotHeader]byte
		c.Load(at, hdr[:])
		size := int(getU32(hdr[:], 8))
		ts := getU64(hdr[:], 16)
		if size == 0 || size > slotValCap {
			continue
		}
		slot := make([]byte, slotHeader+size+8)
		c.Load(at, slot)
		if txn.Checksum64(slot[:slotHeader+size]) != getU64(slot, slotHeader+size) {
			continue
		}
		if ts > horizon {
			continue // written by a commit that never became durable
		}
		addr := pmem.Addr(getU64(slot, 0))
		c.Store(addr, slot[slotHeader:slotHeader+size])
		touched.Add(addr, size)
		e.used[i] = addr
		e.slotOf[addr] = i
	}
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	return nil
}
