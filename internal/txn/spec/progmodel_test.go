package spec

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
	"specpmt/internal/txn/undo"
)

func TestSealSwitchesToUndoEngine(t *testing.T) {
	// §4.3.1: run under SpecPMT, seal, continue under PMDK-style undo
	// logging at the same root, crash, and verify both eras' data.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, err := New(env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 100)
	tx.StoreUint64(b, 200)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	// Sealed data must already be durable without any log replay.
	var buf [8]byte
	w.Dev.ReadPersisted(a, buf[:])
	if got := le64(buf[:]); got != 100 {
		t.Fatalf("sealed data not durable: %d", got)
	}
	// A fresh undo engine initialises at the same root (magic was cleared).
	ue, err := undo.New(env, undo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tx = ue.Begin()
	tx.StoreUint64(a, 101)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = ue.Begin()
	tx.StoreUint64(b, 999) // interrupted
	ue.Close()
	w.Dev.Crash(sim.NewRand(4))
	ue2, err := undo.New(w.SameEnv(env), undo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ue2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer ue2.Close()
	c := w.Dev.NewCore()
	if got := c.LoadUint64(a); got != 101 {
		t.Fatalf("a=%d want 101 (committed under undo era)", got)
	}
	if got := c.LoadUint64(b); got != 200 {
		t.Fatalf("b=%d want 200 (sealed SpecPMT value, undo-era tx revoked)", got)
	}
}

func TestSealRejectsOpenTransaction(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	e, _ := New(w.Env(false), Options{})
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := e.Seal(); err == nil {
		t.Fatal("Seal must refuse while a transaction is open")
	}
	tx.Commit()
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCoversExternalData(t *testing.T) {
	// §4.3.2: data written outside any SpecPMT transaction ("external")
	// has no log coverage. Without a checkpoint, an interrupted transaction
	// over it cannot be revoked; with one, it can.
	for seed := uint64(0); seed < 8; seed++ {
		w := txntest.NewWorld(64 << 20)
		env := w.Env(false)
		e, _ := New(env, Options{})
		ext, _ := w.DataHeap.Alloc(256)
		// External producer writes and persists the region directly.
		for i := 0; i < 4; i++ {
			env.Core.StoreUint64(ext+pmem.Addr(i*8), uint64(1000+i))
		}
		env.Core.PersistBarrier(ext, 32, pmem.KindData)
		if e.Covered(ext, 32) {
			t.Fatal("external data must not be covered before checkpoint")
		}
		if err := e.Checkpoint(ext, 32); err != nil {
			t.Fatal(err)
		}
		if !e.Covered(ext, 32) {
			t.Fatal("checkpointed data must be covered")
		}
		// Interrupted transaction over the adopted region.
		tx := e.Begin()
		for i := 0; i < 4; i++ {
			tx.StoreUint64(ext+pmem.Addr(i*8), 7777)
		}
		e.Close()
		w.Dev.Crash(sim.NewRand(seed))
		e2, _ := New(w.SameEnv(env), Options{})
		if err := e2.Recover(); err != nil {
			t.Fatal(err)
		}
		e2.Close()
		c := w.Dev.NewCore()
		for i := 0; i < 4; i++ {
			if got := c.LoadUint64(ext + pmem.Addr(i*8)); got != uint64(1000+i) {
				t.Fatalf("seed %d: external word %d = %d, want %d", seed, i, got, 1000+i)
			}
		}
	}
}

func TestCheckpointLargeRegionChunks(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{BlockSize: 2048})
	defer e.Close()
	ext, _ := w.DataHeap.Alloc(16 << 10)
	env.Core.StoreUint64(ext+8000, 42)
	env.Core.PersistBarrier(ext+8000, 8, pmem.KindData)
	if err := e.Checkpoint(ext, 16<<10); err != nil {
		t.Fatal(err)
	}
	if !e.Covered(ext, 16<<10) {
		t.Fatal("large region should be fully covered after chunked checkpoint")
	}
}

func TestCoveredPartialGap(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	e, _ := New(w.Env(false), Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(128)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	tx.StoreUint64(a+16, 2) // gap at a+8
	tx.Commit()
	if e.Covered(a, 24) {
		t.Fatal("region with an uncovered gap reported covered")
	}
	if !e.Covered(a, 8) {
		t.Fatal("exactly-logged prefix should be covered")
	}
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

var _ txn.Engine = (*Engine)(nil)

func TestCheckpointRejectsOpenTransaction(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	e, _ := New(w.Env(false), Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := e.Checkpoint(a, 8); err == nil {
		t.Fatal("Checkpoint must refuse while a transaction is open")
	}
	tx.Commit()
	if err := e.Checkpoint(a, 8); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(a, 0); err != nil {
		t.Fatal("zero-size checkpoint should be a no-op")
	}
}

func TestSealedEngineRefusesOperations(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	e, _ := New(w.Env(false), Options{})
	if err := e.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := e.Seal(); err == nil {
		t.Fatal("double Seal should fail (engine already retired)")
	}
	if err := e.Checkpoint(4096, 8); err == nil {
		t.Fatal("Checkpoint after Seal should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Begin after Seal should panic")
		}
	}()
	e.Begin()
}
