package spec

import (
	"sync"
)

// Background reclamation (§4.2): "Log reclamation occurs in the background
// on a dedicated thread. Reclamation is triggered explicitly through an API
// or implicitly when a transaction execution finds the memory space overhead
// reaching a tunable threshold."
//
// The default engine runs reclamation cycles synchronously at the trigger
// point (cost still charged to the dedicated background core, so modeled
// timing is identical); BackgroundReclaim moves the cycle onto a real
// goroutine, overlapping reclamation with the application exactly as the
// paper's software design does — at the price of the drawbacks the paper
// itself lists for it (a dedicated core and trigger tuning, §5).
//
// Synchronisation: the reclaimer snapshots and rewrites chain and index
// state under e.bgmu; the transaction path takes the same lock only for the
// brief index/chain updates at commit, never while waiting on simulated
// persistence.

// reclaimDaemon is the dedicated reclamation goroutine.
type reclaimDaemon struct {
	e      *Engine
	wake   chan struct{}
	quit   chan struct{}
	done   sync.WaitGroup
	failMu sync.Mutex
	failed error
}

func newReclaimDaemon(e *Engine) *reclaimDaemon {
	d := &reclaimDaemon{e: e, wake: make(chan struct{}, 1), quit: make(chan struct{})}
	d.done.Add(1)
	// The daemon goroutine drives its own core against the shared device;
	// device-level locking must stay on for its lifetime.
	e.env.Dev.ForceShared()
	go d.loop()
	return d
}

func (d *reclaimDaemon) loop() {
	defer d.done.Done()
	for {
		select {
		case <-d.quit:
			// Drain a coalesced trigger before exiting so stop() never
			// drops requested work: on a single-CPU machine the daemon
			// may only be scheduled for the first time at shutdown.
			select {
			case <-d.wake:
				d.runCycle()
			default:
			}
			return
		case <-d.wake:
			d.runCycle()
		}
	}
}

// runCycle executes one reclamation cycle, recording the first failure.
func (d *reclaimDaemon) runCycle() {
	d.e.bgmu.Lock()
	err := d.e.reclaimLocked()
	d.e.bgmu.Unlock()
	if err != nil {
		d.failMu.Lock()
		if d.failed == nil {
			d.failed = err
		}
		d.failMu.Unlock()
	}
}

// signal requests a cycle; coalesces if one is already pending.
func (d *reclaimDaemon) signal() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// stop drains the daemon and returns any failure it hit.
func (d *reclaimDaemon) stop() error {
	close(d.quit)
	d.done.Wait()
	d.failMu.Lock()
	defer d.failMu.Unlock()
	return d.failed
}
